// Benchmarks: one per paper table/figure (regenerating its measurement
// kernel at per-iteration granularity) plus ablations for the design
// decisions called out in DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem .
//
// The per-experiment benches measure the simulation machinery's
// throughput (how fast this reproduction regenerates the paper's data);
// domain metrics (miss ratios, overflow counts) are attached via
// b.ReportMetric so regressions in *results*, not just speed, show up.
package memories

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"runtime"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/internal/host"
	"memories/internal/obs"
	"memories/internal/sdram"
	"memories/internal/simbase"
	"memories/internal/tracefile"
	"memories/internal/workload"
	"memories/internal/workload/splash"
)

func benchCPUs() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7} }

// --- Table 3: trace-driven C simulator vs the board ---

func BenchmarkTable3TraceSim(b *testing.B) {
	sim := simbase.MustNewTraceSim([]simbase.TraceNodeConfig{{
		CPUs:     benchCPUs(),
		Geometry: addr.MustGeometry(64*addr.MB, 128, 4),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}})
	gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 1 * addr.GB, WriteFraction: 0.3, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		sim.Process(tracefile.Record{Addr: ref.Addr &^ 7, Cmd: cmd, SrcID: uint8(ref.CPU)})
	}
	b.ReportMetric(sim.NodeStats(0).MissRatio(), "missratio")
}

func BenchmarkTable3BoardSnoop(b *testing.B) {
	board := core.MustNewBoard(SingleL3Board(64*MB, 4, 128))
	gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 1 * addr.GB, WriteFraction: 0.3, Seed: 7})
	cycle := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		cycle += 48 // ~20% utilization arrival spacing
		board.Snoop(&bus.Transaction{Cmd: cmd, Addr: ref.Addr, Size: 128, SrcID: ref.CPU, Cycle: cycle})
	}
	board.Flush()
	b.ReportMetric(board.Node(0).MissRatio(), "missratio")
}

// --- ISSUE 10: compiled protocol engine vs parsed-table lookup ---

// protocolLookupSequence is a fixed pseudo-random walk over the cells a
// MESI controller actually visits; both lookup benches replay it so
// their ns/op compare like for like.
func protocolLookupSequence() []struct {
	op coherence.Op
	st coherence.State
	sn coherence.SnoopIn
} {
	type cell = struct {
		op coherence.Op
		st coherence.State
		sn coherence.SnoopIn
	}
	tab := coherence.MESI()
	var seq []cell
	x := uint64(0x9e3779b97f4a7c15)
	for len(seq) < 1024 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		op := coherence.Op(x % uint64(coherence.NumOps))
		st := coherence.State((x >> 8) % uint64(coherence.NumStates))
		sn := coherence.SnoopIn((x >> 16) % uint64(coherence.NumSnoopIns))
		if _, ok := tab.Lookup(op, st, sn); !ok {
			continue // MESI leaves Owned undefined
		}
		seq = append(seq, cell{op, st, sn})
	}
	return seq
}

// BenchmarkProtocolEngineLookup is the hot-path cost the board pays per
// transition with the compiled engine (the node controller's table
// walk, §3.2). Must stay 0 allocs/op: the benchdiff gate holds it to
// the same budget as the table it replaced.
func BenchmarkProtocolEngineLookup(b *testing.B) {
	eng, err := coherence.Compile(coherence.MESI())
	if err != nil {
		b.Fatal(err)
	}
	seq := protocolLookupSequence()
	var sink coherence.State
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := seq[i&(len(seq)-1)]
		sink = eng.Lookup(c.op, c.st, c.sn).Next
	}
	_ = sink
}

// BenchmarkProtocolTableLookup is the pre-compiler reference: the same
// walk through the sparse parsed Table.
func BenchmarkProtocolTableLookup(b *testing.B) {
	tab := coherence.MESI()
	seq := protocolLookupSequence()
	var sink coherence.State
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := seq[i&(len(seq)-1)]
		sink = tab.MustLookup(c.op, c.st, c.sn).Next
	}
	_ = sink
}

// BenchmarkProtocolCheck prices the exhaustive model check a protocol
// pays once at load time (three caches, full reachable state space).
func BenchmarkProtocolCheck(b *testing.B) {
	tab := coherence.MESI()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coherence.Check(tab); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ISSUE 5: observability overhead on the Table 3 snoop kernel ---

// BenchmarkObsOverhead measures the live-observability tax on the exact
// Table3BoardSnoop kernel: detached (no registry), attached with
// tracing off (the steady state the ≤2% budget applies to), and
// attached with tracing on (ring writes included). All three must stay
// zero-allocation; detached vs attached-off is the gated delta.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, attach, traceOn bool) {
		board := core.MustNewBoard(SingleL3Board(64*MB, 4, 128))
		if attach {
			reg := obs.NewRegistry()
			hub := obs.NewTraceHub(io.Discard)
			if err := board.Observe(reg, hub, "bench", 1<<14); err != nil {
				b.Fatal(err)
			}
			if traceOn {
				board.Tracer().Enable(obs.Filter{})
			}
		}
		gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 1 * addr.GB, WriteFraction: 0.3, Seed: 7})
		cycle := uint64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ref, _ := gen.Next()
			cmd := bus.Read
			if ref.Write {
				cmd = bus.RWITM
			}
			cycle += 48
			board.Snoop(&bus.Transaction{Cmd: cmd, Addr: ref.Addr, Size: 128, SrcID: ref.CPU, Cycle: cycle})
		}
		board.Flush()
		b.ReportMetric(board.Node(0).MissRatio(), "missratio")
	}
	b.Run("detached", func(b *testing.B) { run(b, false, false) })
	b.Run("attached-trace-off", func(b *testing.B) { run(b, true, false) })
	b.Run("attached-trace-on", func(b *testing.B) { run(b, true, true) })
}

// --- Table 2 bigmem corner: the paper's largest advertised config ---

// bigmemFlag gates the fully allocated 8 GB directory benchmark, which
// commits ~512 MB of packed tag words. Run with:
//
//	go test -run '^$' -bench Table2BigMem -bigmem .
var bigmemFlag = flag.Bool("bigmem", false, "enable the fully allocated 8 GB directory benchmark")

// BenchmarkTable2BigMemSnoop measures snoop throughput against the 8 GB,
// 128 B-line Table 2 corner with the directory fully resident — the
// configuration whose footprint the packed single-word layout exists to
// make practical (64M slots x 8 B = 512 MB, vs ~1.1 GB across the old
// parallel arrays). The random working set spans the whole 8 GB so
// probes walk the full packed array.
func BenchmarkTable2BigMemSnoop(b *testing.B) {
	if !*bigmemFlag {
		b.Skip("pass -bigmem to run the 8 GB fully allocated directory benchmark")
	}
	board := core.MustNewBoard(SingleL3Board(8*GB, 1, 128))
	// Commit the whole directory up front: one fill per slot.
	cycle := uint64(0)
	slots := board.DirectorySlots(0)
	for i := int64(0); i < slots; i++ {
		cycle += 24
		board.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: uint64(i) * 128, Size: 128, SrcID: 0, Cycle: cycle})
	}
	board.Flush()
	if board.DirectoryResident(0) != slots {
		b.Fatalf("directory not fully resident: %d of %d", board.DirectoryResident(0), slots)
	}
	gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 8 * addr.GB, WriteFraction: 0.3, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		cycle += 48
		board.Snoop(&bus.Transaction{Cmd: cmd, Addr: ref.Addr, Size: 128, SrcID: ref.CPU, Cycle: cycle})
	}
	board.Flush()
	b.ReportMetric(board.Node(0).MissRatio(), "missratio")
	b.ReportMetric(float64(board.DirectoryBytes(0))/float64(slots), "B/slot")
}

// --- Table 4: execution-driven simulation ---

func BenchmarkTable4Augmint(b *testing.B) {
	cfg := simbase.DefaultAugmintConfig()
	cfg.WorkPerInstr = 400
	aug, err := simbase.NewAugmint(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fft := splash.NewFFT(splash.FFTConfig{NumCPUs: 8, M: 16, Seed: 3})
	b.ResetTimer()
	aug.Run(fft, uint64(b.N))
	if aug.Checksum() == 0 && b.N > 10 {
		b.Fatal("interpreter work eliminated")
	}
}

func BenchmarkTable4HostRealTime(b *testing.B) {
	h := host.MustNew(host.DefaultConfig(), splash.NewFFT(splash.FFTConfig{NumCPUs: 8, M: 16, Seed: 3}))
	b.ResetTimer()
	h.Run(uint64(b.N))
	b.ReportMetric(h.EstimatedRuntimeSeconds(), "modelsec")
}

// --- Figures 8/9: database cache sweeps ---

func benchHostBoard(b *testing.B, bcfg core.Config, gen workload.Generator) (*core.Board, *host.Host) {
	b.Helper()
	hcfg := host.DefaultConfig()
	hcfg.L2Bytes = 1 * addr.MB
	hcfg.L2Assoc = 1
	board := core.MustNewBoard(bcfg)
	h := host.MustNew(hcfg, gen)
	h.Bus().Attach(board)
	return board, h
}

func BenchmarkFig8MultiConfigSweep(b *testing.B) {
	bcfg := MultiConfigBoard(benchCPUs(), 128, 8, 2*MB, 4*MB, 8*MB, 16*MB)
	board, h := benchHostBoard(b, bcfg, workload.NewTPCC(workload.ScaledTPCCConfig(2048)))
	b.ResetTimer()
	h.Run(uint64(b.N))
	board.Flush()
	b.ReportMetric(board.Node(3).MissRatio(), "missratio16MB")
}

func BenchmarkFig9FourNodePartition(b *testing.B) {
	var nodes []core.NodeConfig
	for n := 0; n < 4; n++ {
		nodes = append(nodes, core.NodeConfig{
			Name:     string(rune('a' + n)),
			CPUs:     []int{n * 2, n*2 + 1},
			Geometry: addr.MustGeometry(4*addr.MB, 128, 8),
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		})
	}
	board, h := benchHostBoard(b, core.Config{Nodes: nodes}, workload.NewTPCC(workload.ScaledTPCCConfig(2048)))
	b.ResetTimer()
	h.Run(uint64(b.N))
	board.Flush()
}

// --- Figure 10: miss-ratio profiling with the journaling disturbance ---

func BenchmarkFig10ProfiledRun(b *testing.B) {
	gen := workload.WithDisturbance(
		workload.NewTPCC(workload.ScaledTPCCConfig(2048)),
		workload.DisturbanceConfig{PeriodRefs: 400_000, BurstRefs: 40_000, JournalBytes: 64 * addr.MB})
	bcfg := SingleL3Board(64*MB, 8, 128)
	bcfg.ProfileBucketCycles = 2_000_000
	board, h := benchHostBoard(b, bcfg, gen)
	b.ResetTimer()
	h.Run(uint64(b.N))
	board.Flush()
}

// --- Tables 5/6: SPLASH2 kernels through the host ---

func BenchmarkTable5SplashHost(b *testing.B) {
	for _, name := range splash.Names() {
		b.Run(name, func(b *testing.B) {
			h := host.MustNew(host.DefaultConfig(), splash.New(name, splash.SizePaper, 8, 3))
			b.ResetTimer()
			h.Run(uint64(b.N))
			st := h.Stats()
			if st.Instructions > 0 {
				b.ReportMetric(float64(st.L2Misses)/float64(st.Instructions)*1000, "missper1000instr")
			}
		})
	}
}

func BenchmarkTable6ClassicSizes(b *testing.B) {
	hcfg := host.DefaultConfig()
	hcfg.L2Bytes = 1 * addr.MB
	hcfg.L2Assoc = 4
	h := host.MustNew(hcfg, splash.New(splash.NameOcean, splash.SizeClassic, 8, 3))
	b.ResetTimer()
	h.Run(uint64(b.N))
}

// --- Figure 11: L3 sweep over a SPLASH2 kernel ---

func BenchmarkFig11BarnesSweep(b *testing.B) {
	hcfg := host.DefaultConfig()
	hcfg.L1Bytes = 16 * addr.KB
	hcfg.L2Bytes = 256 * addr.KB
	bcfg := MultiConfigBoard(benchCPUs(), 128, 4, 512*KB, 1*MB, 2*MB, 4*MB)
	board := core.MustNewBoard(bcfg)
	h := host.MustNew(hcfg, splash.New(splash.NameBarnes, splash.SizeClassic, 8, 3))
	h.Bus().Attach(board)
	b.ResetTimer()
	h.Run(uint64(b.N))
	board.Flush()
}

// --- Figure 12: multi-node intervention breakdown ---

func BenchmarkFig12FMMTwoNode(b *testing.B) {
	nodes := []core.NodeConfig{
		{Name: "a", CPUs: []int{0, 1, 2, 3}, Geometry: addr.MustGeometry(64*addr.MB, 1024, 4), Policy: cache.LRU, Protocol: coherence.MESI()},
		{Name: "b", CPUs: []int{4, 5, 6, 7}, Geometry: addr.MustGeometry(64*addr.MB, 1024, 4), Policy: cache.LRU, Protocol: coherence.MESI()},
	}
	board := core.MustNewBoard(core.Config{Nodes: nodes})
	h := host.MustNew(host.DefaultConfig(), splash.New(splash.NameFMM, splash.SizeClassic, 8, 3))
	h.Bus().Attach(board)
	b.ResetTimer()
	h.Run(uint64(b.N))
	board.Flush()
	v := board.Node(0)
	if tot := v.SatL3 + v.SatModInt + v.SatShrInt + v.SatMemory; tot > 0 {
		b.ReportMetric(float64(v.SatModInt+v.SatShrInt)/float64(tot), "interventionfrac")
	}
}

// --- Ablations (DESIGN.md §4) ---

// AblationProtocolTables compares the three built-in protocols on one
// write-heavy stream: protocol choice is data, so swapping tables costs
// no code.
func BenchmarkAblationProtocol(b *testing.B) {
	for _, name := range []string{"msi", "mesi", "moesi"} {
		b.Run(name, func(b *testing.B) {
			nodes := []core.NodeConfig{
				{Name: "a", CPUs: []int{0, 1, 2, 3}, Geometry: addr.MustGeometry(8*addr.MB, 128, 4), Policy: cache.LRU, Protocol: coherence.Builtin(name)},
				{Name: "b", CPUs: []int{4, 5, 6, 7}, Geometry: addr.MustGeometry(8*addr.MB, 128, 4), Policy: cache.LRU, Protocol: coherence.Builtin(name)},
			}
			board := core.MustNewBoard(core.Config{Nodes: nodes})
			gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 64 * addr.MB, WriteFraction: 0.4, Seed: 5})
			cycle := uint64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, _ := gen.Next()
				cmd := bus.Read
				if ref.Write {
					cmd = bus.RWITM
				}
				cycle += 48
				board.Snoop(&bus.Transaction{Cmd: cmd, Addr: ref.Addr, Size: 128, SrcID: ref.CPU, Cycle: cycle})
			}
			board.Flush()
			wb := board.Counters().Value("nodea.writeback") + board.Counters().Value("nodeb.writeback")
			b.ReportMetric(float64(wb)/float64(b.N), "writebacks/op")
		})
	}
}

// AblationBufferDepth sweeps the transaction-buffer depth under a bursty
// arrival pattern and reports how often it would have overflowed — the
// paper's 512 entries exist precisely to make this number zero at real
// utilizations.
func BenchmarkAblationBufferDepth(b *testing.B) {
	for _, depth := range []int{16, 64, 512} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			bcfg := SingleL3Board(64*MB, 8, 128)
			bcfg.BufferDepth = depth
			board := core.MustNewBoard(bcfg)
			rng := workload.NewRNG(9)
			cycle := uint64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Bursty: clumps of back-to-back ops, then a gap.
				if i%64 < 48 {
					cycle += 2
				} else {
					cycle += 180
				}
				board.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: uint64(rng.Intn(1<<28)) &^ 127, Size: 128, SrcID: int(rng.Intn(8)), Cycle: cycle})
			}
			board.Flush()
			b.ReportMetric(float64(board.Counters().Value("buffer.overflow"))/float64(b.N), "overflow/op")
		})
	}
}

// AblationReplacement compares the replacement policies on a skewed
// stream.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, pol := range []cache.Policy{cache.LRU, cache.PLRU, cache.FIFO, cache.Random} {
		b.Run(pol.String(), func(b *testing.B) {
			bcfg := SingleL3Board(8*MB, 8, 128)
			bcfg.Nodes[0].Policy = pol
			board := core.MustNewBoard(bcfg)
			gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 64 * addr.MB, Seed: 5})
			cycle := uint64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, _ := gen.Next()
				cycle += 48
				board.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: ref.Addr, Size: 128, SrcID: ref.CPU, Cycle: cycle})
			}
			board.Flush()
			b.ReportMetric(board.Node(0).MissRatio(), "missratio")
		})
	}
}

// AblationInclusive quantifies the §3.4 passive (non-inclusive)
// limitation: the same raw stream through a board-style passive L2+L3
// model and an inclusive oracle, reporting the miss-ratio divergence.
func BenchmarkAblationInclusive(b *testing.B) {
	s := simbase.MustNewInclusiveSim(simbase.InclusiveConfig{
		NumCPUs: 8,
		L2:      addr.MustGeometry(64*addr.KB, 128, 2),
		L3:      addr.MustGeometry(512*addr.KB, 128, 4),
		Policy:  cache.LRU,
	})
	gen := workload.NewZipfian(workload.ZipfConfig{
		NumCPUs: 8, FootprintByte: 16 * addr.MB, Skew: 1.4, Seed: 3,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, _ := gen.Next()
		s.Reference(ref.Addr&^127, ref.CPU)
	}
	b.ReportMetric(s.Stats().Divergence(), "divergence")
}

// AblationLockStep quantifies the cost of the board's lock-step design
// (§3.1): a four-node lock-step board must wait for the slowest node's
// SDRAM on every transaction, while four independent single-node boards
// pace themselves. The metric is worst-case queue depth under the same
// bursty stream — the pressure the 512-entry buffers absorb.
func BenchmarkAblationLockStep(b *testing.B) {
	mkNodes := func(n int) []core.NodeConfig {
		var nodes []core.NodeConfig
		for i := 0; i < n; i++ {
			nodes = append(nodes, core.NodeConfig{
				Name:     string(rune('a' + i)),
				CPUs:     benchCPUs(),
				Geometry: addr.MustGeometry(int64(8<<i)*addr.MB, 128, 4),
				Policy:   cache.LRU,
				Protocol: coherence.MESI(),
				Group:    i,
			})
		}
		return nodes
	}
	feed := func(b *testing.B, boards []*core.Board) {
		rng := workload.NewRNG(9)
		cycle := uint64(0)
		var maxDepth int
		for i := 0; i < b.N; i++ {
			if i%64 < 48 {
				cycle += 3
			} else {
				cycle += 200
			}
			tx := bus.Transaction{Cmd: bus.Read, Addr: uint64(rng.Intn(1<<28)) &^ 127, Size: 128, SrcID: int(rng.Intn(8)), Cycle: cycle}
			depth := 0
			for _, board := range boards {
				t := tx
				board.Snoop(&t)
				if d := board.PendingDepth(); d > depth {
					depth = d
				}
			}
			if depth > maxDepth {
				maxDepth = depth
			}
		}
		for _, board := range boards {
			board.Flush()
		}
		b.ReportMetric(float64(maxDepth), "maxqueue")
	}
	b.Run("lockstep4", func(b *testing.B) {
		board := core.MustNewBoard(core.Config{Nodes: mkNodes(4)})
		b.ResetTimer()
		feed(b, []*core.Board{board})
	})
	b.Run("freerunning4x1", func(b *testing.B) {
		var boards []*core.Board
		for i := 0; i < 4; i++ {
			boards = append(boards, core.MustNewBoard(core.Config{Nodes: mkNodes(4)[i : i+1]}))
		}
		b.ResetTimer()
		feed(b, boards)
	})
}

// --- Sharded snoop pipeline ---

// BenchmarkBoardSnoopParallel drives a four-node board through the
// sharded pipeline. Run with -cpu 1,2,4,8: the shard count follows
// GOMAXPROCS, so the -cpu 1 run is the serial baseline and the ratio of
// ns/op across -cpu values is the pipeline speedup (the bench CI job
// checks it). The missratio metric must be identical at every -cpu —
// sharding is deterministic — which the CI job also checks.
func BenchmarkBoardSnoopParallel(b *testing.B) {
	var nodes []core.NodeConfig
	for i := 0; i < 4; i++ {
		nodes = append(nodes, core.NodeConfig{
			Name:     string(rune('a' + i)),
			CPUs:     []int{2 * i, 2*i + 1},
			Geometry: addr.MustGeometry(16*addr.MB, 128, 8),
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		})
	}
	sb, err := core.NewShardedBoard(core.Config{Nodes: nodes}, core.ShardedConfig{})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 64 * addr.MB, WriteFraction: 0.3, Seed: 7})
	txs := make([]bus.Transaction, b.N)
	cycle := uint64(0)
	for i := range txs {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		cycle += 48
		txs[i] = bus.Transaction{Cmd: cmd, Addr: ref.Addr &^ 127, Size: 128, SrcID: ref.CPU, Cycle: cycle}
	}
	b.ResetTimer()
	sb.Start()
	f := sb.NewFeeder()
	for i := range txs {
		f.Snoop(txs[i])
	}
	f.Flush()
	sb.Stop()
	b.StopTimer()
	var misses, refs uint64
	for i := 0; i < sb.NumNodes(); i++ {
		misses += sb.Node(i).Misses()
		refs += sb.Node(i).Refs()
	}
	if refs > 0 {
		b.ReportMetric(float64(misses)/float64(refs), "missratio")
	}
	b.ReportMetric(float64(sb.Shards()), "shards")
}

// BenchmarkBoardSustainedTxPerSec is the raw-speed headline number: the
// four-node board driven flat-out through the MPSC-ring pipeline at an
// explicit shard count, with workers pinned to their NUMA placement. The
// tx/s metric is gated higher-is-better in CI (benchdiff -gate-up), so
// once a rate is in the baseline it becomes a floor — the board's
// real-time claim, ratcheted. Run with -cpu 8 so the key matches the CI
// baseline regardless of the runner's core count.
func BenchmarkBoardSustainedTxPerSec(b *testing.B) {
	const mask = 1<<16 - 1
	gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 64 * addr.MB, WriteFraction: 0.3, Seed: 7})
	txs := make([]bus.Transaction, mask+1)
	for i := range txs {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		txs[i] = bus.Transaction{Cmd: cmd, Addr: ref.Addr &^ 127, Size: 128, SrcID: ref.CPU}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			var nodes []core.NodeConfig
			for i := 0; i < 4; i++ {
				nodes = append(nodes, core.NodeConfig{
					Name:     string(rune('a' + i)),
					CPUs:     []int{2 * i, 2*i + 1},
					Geometry: addr.MustGeometry(16*addr.MB, 128, 8),
					Policy:   cache.LRU,
					Protocol: coherence.MESI(),
				})
			}
			sb, err := core.NewShardedBoard(core.Config{Nodes: nodes},
				core.ShardedConfig{Shards: shards, Pin: true})
			if err != nil {
				b.Fatal(err)
			}
			cycle := uint64(0)
			b.ResetTimer()
			sb.Start()
			f := sb.NewFeeder()
			for i := 0; i < b.N; i++ {
				tx := txs[i&mask]
				cycle += 48
				tx.Cycle = cycle
				f.Snoop(tx)
			}
			f.Flush()
			sb.Stop()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
			b.ReportMetric(float64(sb.Shards()), "shards")
		})
	}
}

// --- Trace pipeline (ISSUE 3): format codecs and batched ingest ---

// benchTraceRecords builds a bus-realistic record stream: Zipfian
// addresses (so v2 deltas have real-trace statistics, not best-case
// strides) with the Table 3 command mix.
func benchTraceRecords(n int) []tracefile.Record {
	gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 1 * addr.GB, WriteFraction: 0.3, Seed: 7})
	recs := make([]tracefile.Record, n)
	for i := range recs {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		recs[i] = tracefile.Record{Addr: ref.Addr &^ 127, Cmd: cmd, SrcID: uint8(ref.CPU)}
	}
	return recs
}

func benchTraceWrite(b *testing.B, format tracefile.Format) {
	recs := benchTraceRecords(1 << 16)
	var buf bytes.Buffer
	w, err := tracefile.NewWriterFormat(&buf, format)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&(1<<16-1) == 0 && i > 0 {
			// Restart the sink so memory stays bounded at any b.N; the
			// reset cost is amortized over 64Ki records.
			b.StopTimer()
			buf.Reset()
			w, _ = tracefile.NewWriterFormat(&buf, format)
			b.StartTimer()
		}
		if err := w.Write(recs[i&(1<<16-1)]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf.Len())/float64((b.N-1)&(1<<16-1)+1), "bytes/record")
}

func BenchmarkTraceWriteV1(b *testing.B) { benchTraceWrite(b, tracefile.FormatV1) }
func BenchmarkTraceWriteV2(b *testing.B) { benchTraceWrite(b, tracefile.FormatV2) }

func benchTraceRead(b *testing.B, format tracefile.Format) {
	recs := benchTraceRecords(1 << 16)
	var buf bytes.Buffer
	w, err := tracefile.NewWriterFormat(&buf, format)
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	var sink uint64
	b.SetBytes(int64(len(data) / len(recs)))
	b.ResetTimer()
	var r tracefile.RecordReader
	for i := 0; i < b.N; i++ {
		if i&(1<<16-1) == 0 {
			var err error
			if r, err = tracefile.Open(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
		rec, err := r.Next()
		if err != nil {
			b.Fatal(err)
		}
		sink += rec.Addr
	}
	b.StopTimer()
	// ns/rec mirrors ns/op here (one op is one record); it exists so the
	// benchdiff ratio gate can compare this against the pipeline
	// benchmark below, whose op is a whole stream pass.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/rec")
	if sink == 0 && b.N > 1 {
		b.Fatal("decode eliminated")
	}
}

func BenchmarkTraceReadV1(b *testing.B) { benchTraceRead(b, tracefile.FormatV1) }
func BenchmarkTraceReadV2(b *testing.B) { benchTraceRead(b, tracefile.FormatV2) }

// BenchmarkTraceReadV2Pipeline measures the production decode path —
// tracefile.ForEachBatch with GOMAXPROCS decode workers — over the same
// record stream as BenchmarkTraceReadV1/V2. Run it with -cpu 1,2,4 to
// see block-level decode parallelism; the CI gate requires its ns/rec
// to beat the v1 per-record reader by at least 2x at the runner's core
// count.
//
// Each pass decodes the full 64Ki-record stream, so at fixed small
// -benchtime=Nx the ns/op column overstates per-record cost; the ns/rec
// metric divides by the records actually decoded and is accurate at any
// -benchtime. Gate on ns/rec, not ns/op.
func BenchmarkTraceReadV2Pipeline(b *testing.B) {
	recs := benchTraceRecords(1 << 16)
	var buf bytes.Buffer
	w, err := tracefile.NewWriterFormat(&buf, tracefile.FormatV2)
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	workers := runtime.GOMAXPROCS(0)
	var sink, processed uint64
	b.ResetTimer()
	for processed < uint64(b.N) {
		n, err := tracefile.ForEachBatch(bytes.NewReader(data), workers, func(batch []tracefile.Record) error {
			for i := range batch {
				sink += batch[i].Addr
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		processed += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(processed), "ns/rec")
	b.ReportMetric(float64(workers), "workers")
	if sink == 0 {
		b.Fatal("decode eliminated")
	}
}

// BenchmarkSnoopBatch is the batched counterpart of
// BenchmarkTable3BoardSnoop: the same board and stream, ingested through
// Board.SnoopBatch in feeder-sized chunks. ns/op is per transaction, so
// the delta against Table3BoardSnoop is the per-call dispatch overhead
// the batch path removes.
func BenchmarkSnoopBatch(b *testing.B) {
	const batch = 256
	board := core.MustNewBoard(SingleL3Board(64*MB, 4, 128))
	gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 1 * addr.GB, WriteFraction: 0.3, Seed: 7})
	txs := make([]bus.Transaction, 1<<16)
	for i := range txs {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		txs[i] = bus.Transaction{Cmd: cmd, Addr: ref.Addr, Size: 128, SrcID: ref.CPU}
	}
	cycle := uint64(0)
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		n := batch
		if b.N-done < n {
			n = b.N - done
		}
		base := done & (1<<16 - 1)
		if base+n > len(txs) {
			base = 0
		}
		chunk := txs[base : base+n]
		for i := range chunk {
			cycle += 48
			chunk[i].Cycle = cycle
		}
		board.SnoopBatch(chunk)
	}
	board.Flush()
	b.ReportMetric(board.Node(0).MissRatio(), "missratio")
}

// --- Checkpoint serialization (crash-safe snapshots) ---

// BenchmarkCheckpointWrite measures full-board snapshot serialization —
// packed directory words, tag-store timing state, and the counter bank
// through the section-framed container (CRC-32 per section plus the
// whole-file digest). SetBytes makes the MB/s column the gated metric:
// a checkpoint of the warmed 2 MB board must not get slower to produce,
// since cmd/experiments and cmd/tracesim write these at every
// -checkpoint-every boundary.
func BenchmarkCheckpointWrite(b *testing.B) {
	board := core.MustNewBoard(SingleL3Board(2*MB, 4, 128))
	gen := workload.NewZipfian(workload.ZipfConfig{NumCPUs: 8, FootprintByte: 64 * addr.MB, WriteFraction: 0.3, Seed: 7})
	cycle := uint64(0)
	for i := 0; i < 1<<16; i++ {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		cycle += 48
		board.Snoop(&bus.Transaction{Cmd: cmd, Addr: ref.Addr, Size: 128, SrcID: ref.CPU, Cycle: cycle})
	}
	board.Flush()
	var buf bytes.Buffer
	if err := board.WriteCheckpoint(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := board.WriteCheckpoint(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationSDRAMPacing compares tag-store timings: the stock 42%-of-bus
// model against a hypothetical full-speed SDRAM, measuring queue pressure.
func BenchmarkAblationSDRAMPacing(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  sdram.Config
	}{
		{"stock42pct", sdram.DefaultConfig()},
		{"fullspeed", sdram.Config{Banks: 16, ChannelGap: 1, BankBusy: 2}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			bcfg := SingleL3Board(64*MB, 8, 128)
			bcfg.Nodes[0].SDRAM = tc.cfg
			board := core.MustNewBoard(bcfg)
			rng := workload.NewRNG(9)
			cycle := uint64(0)
			var maxDepth int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%64 < 48 {
					cycle += 2
				} else {
					cycle += 180
				}
				board.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: uint64(rng.Intn(1<<28)) &^ 127, Size: 128, SrcID: int(rng.Intn(8)), Cycle: cycle})
				if d := board.PendingDepth(); d > maxDepth {
					maxDepth = d
				}
			}
			board.Flush()
			b.ReportMetric(float64(maxDepth), "maxqueue")
		})
	}
}

// --- Discrete-event host: the event-wheel scheduler (DESIGN.md §4e) ---

// BenchmarkHostStep measures the merged-stream host's per-reference step
// and reports emulated bus cycles per wall-clock second — the rate
// real-time emulation lives or dies by. emc/s is gated HIGHER-is-better
// in the throughput job.
func BenchmarkHostStep(b *testing.B) {
	h := host.MustNew(host.DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Step()
	}
	b.ReportMetric(float64(h.Bus().Cycle())/b.Elapsed().Seconds(), "emc/s")
}

// computeGen spaces a stream's references out in emulated time (each
// ref stands for instrScale times more computation) and relocates them
// to a private region, so the bus settles into the low-utilization band
// (~10-15% busy) the wheel targets — the regime where lock-step polling
// wastes almost every cycle evaluation.
type computeGen struct {
	workload.Generator
	offset     uint64
	instrScale uint64
}

func (g computeGen) Next() (workload.Ref, bool) {
	r, ok := g.Generator.Next()
	r.Addr += g.offset
	r.Instrs *= g.instrScale
	return r, ok
}

// benchPerCPUHost builds the scaling benchmark's machine: `active`
// compute-heavy Zipf streams inside an ncpu-way SMP, each over its own
// region with a tail that spills the 1MB L2 — sustained sparse misses,
// not cold-start or ping-pong saturation.
func benchPerCPUHost(ncpu, active int, engine host.Engine) *host.Host {
	cfg := host.DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.L1Bytes = 32 * addr.KB
	cfg.L2Bytes = 1 * addr.MB
	cfg.IOFraction = 0
	streams := make([]workload.Generator, ncpu)
	for i := 0; i < active; i++ {
		streams[i] = computeGen{
			Generator: workload.NewZipfian(workload.ZipfConfig{
				NumCPUs:       1,
				FootprintByte: 2 * addr.MB,
				WriteFraction: 0.2,
				Seed:          11 + uint64(i),
			}),
			offset:     uint64(i+1) << 30,
			instrScale: 24,
		}
	}
	return host.MustNewPerCPU(cfg, streams, engine)
}

// hostScaleFlag keeps the scaling suite out of the default `-bench .`
// sweep: one op emulates a 50k-cycle slab (up to ~20ms on the lock-step
// side), so the stock 20000x BENCHTIME would take minutes. The bench and
// throughput Make targets run it explicitly:
//
//	go test -run '^$' -bench HostStepScaling -hostscale -benchtime 30x .
var hostScaleFlag = flag.Bool("hostscale", false, "enable the host event-wheel scaling suite (multi-ms ops; pair with a small -benchtime)")

// BenchmarkHostStepScaling is the scheduler scaling gate: the same 8
// busy streams inside machines of growing size, under both per-CPU
// engines. One benchmark op advances the emulation by a fixed slab of
// bus cycles, so ns/op is directly the cost of emulated time and the
// two derived metrics feed the CI gates: ns/emc (lower is better)
// drives the cross-engine ratio gate — the wheel must beat lock-step
// polling by >=10x at 256 CPUs — and emc/s is the ratcheted
// emulated-cycles-per-second floor.
func BenchmarkHostStepScaling(b *testing.B) {
	if !*hostScaleFlag {
		b.Skip("pass -hostscale to run the event-wheel scaling suite (use a small -benchtime like 30x)")
	}
	const active = 8
	const slab = 50_000 // emulated bus cycles per op
	for _, eng := range []struct {
		name   string
		engine host.Engine
	}{
		{"wheel", host.EngineWheel},
		{"lockstep", host.EngineLockStep},
	} {
		for _, ncpu := range []int{8, 64, 256} {
			b.Run(fmt.Sprintf("engine=%s/cpus=%d", eng.name, ncpu), func(b *testing.B) {
				h := benchPerCPUHost(ncpu, active, eng.engine)
				var target uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					target += slab
					h.RunCycles(target)
				}
				sec := b.Elapsed().Seconds()
				emc := float64(target)
				b.ReportMetric(emc/sec, "emc/s")
				b.ReportMetric(sec*1e9/emc, "ns/emc")
				b.ReportMetric(h.Bus().Utilization()*100, "busbusy%")
			})
		}
	}
}
