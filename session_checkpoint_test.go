package memories

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"time"
)

func testSession(t *testing.T) *Session {
	t.Helper()
	gen := NewTPCC(ScaledTPCCConfig(8192))
	s, err := NewSession(DefaultHostConfig(), SingleL3Board(8*MB, 4, 128), gen)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionCheckpointResumeEquivalence is the facade-level oracle: a
// session checkpointed mid-run and restored into a fresh twin must
// finish with counters bit-identical to an uninterrupted run.
func TestSessionCheckpointResumeEquivalence(t *testing.T) {
	const half = 30_000
	path := filepath.Join(t.TempDir(), "session.ckpt")

	ref := testSession(t)
	ref.Run(2 * half)

	s := testSession(t)
	s.Run(half)
	if err := s.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	resumed := testSession(t)
	if _, err := resumed.Restore(path); err != nil {
		t.Fatal(err)
	}
	resumed.Run(half)

	if got, want := resumed.Host.Stats(), ref.Host.Stats(); got != want {
		t.Fatalf("host stats diverged:\n got %+v\nwant %+v", got, want)
	}
	for name, want := range ref.Board.Counters().Snapshot() {
		if got := resumed.Board.Counters().Value(name); got != want {
			t.Fatalf("board counter %s = %d, want %d", name, got, want)
		}
	}
}

// TestFaultSessionCheckpointResume covers the injector RNG + shadow
// path of the snapshot.
func TestFaultSessionCheckpointResume(t *testing.T) {
	mk := func() (*Session, *FaultInjector) {
		gen := NewTPCC(ScaledTPCCConfig(8192))
		bcfg := SingleL3Board(8*MB, 4, 128)
		bcfg.ECC = true
		s, inj, err := NewFaultSession(DefaultHostConfig(), bcfg, FaultConfig{
			Seed:        3,
			DropProb:    0.001,
			DupProb:     0.001,
			BitFlipProb: 0.0005,
			Shadow:      true,
		}, gen)
		if err != nil {
			t.Fatal(err)
		}
		return s, inj
	}
	// Scrub at the midpoint in both runs: restore verifies ECC as the
	// directory loads and repairs any latent soft error, so a bit-exact
	// comparison needs the uninterrupted run healed at the same point.
	const half = 20_000
	ref, _ := mk()
	ref.Run(half)
	ref.Board.ScrubNow()
	ref.Run(half)

	path := filepath.Join(t.TempDir(), "faults.ckpt")
	s, _ := mk()
	s.Run(half)
	s.Board.ScrubNow()
	if err := s.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	resumed, _ := mk()
	if _, err := resumed.Restore(path); err != nil {
		t.Fatal(err)
	}
	resumed.Run(half)

	for name, want := range ref.Board.Counters().Snapshot() {
		if got := resumed.Board.Counters().Value(name); got != want {
			t.Fatalf("counter %s = %d, want %d", name, got, want)
		}
	}
}

// TestSessionRestoreRejectsMismatch: a snapshot from a different
// session shape is a CorruptError, not a silent misload.
func TestSessionRestoreRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.ckpt")
	s := testSession(t)
	s.Run(1000)
	if err := s.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	gen := NewTPCH(ScaledTPCHConfig(8192))
	other, err := NewSession(DefaultHostConfig(), SingleL3Board(8*MB, 4, 128), gen)
	if err != nil {
		t.Fatal(err)
	}
	_, err = other.Restore(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

// TestSessionCheckpointSplashRejected: goroutine-backed kernels cannot
// be snapshotted and must say so.
func TestSessionCheckpointSplashRejected(t *testing.T) {
	gen := NewSplash("lu", "test", 4, 1)
	if gen == nil {
		t.Skip("no splash kernel available")
	}
	s, err := NewSession(DefaultHostConfig(), SingleL3Board(8*MB, 4, 128), gen)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	if err := s.Checkpoint(filepath.Join(t.TempDir(), "x.ckpt")); err == nil {
		t.Fatal("splash session checkpoint succeeded")
	}
}

// An obs-enabled session carries its registry counters through the
// snapshot: the sampler's own counters and board mirrors resume instead
// of restarting from zero.
func TestSessionCheckpointCarriesObsCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.ckpt")

	s := testSession(t)
	var jsonl bytes.Buffer
	h, err := s.EnableObs("", time.Hour, &jsonl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	s.Run(20_000)
	h.Registry.Counter("replay.ticks").Add(42)
	if err := s.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	s2 := testSession(t)
	var jsonl2 bytes.Buffer
	h2, err := s2.EnableObs("", time.Hour, &jsonl2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if _, err := s2.Restore(path); err != nil {
		t.Fatal(err)
	}

	// Registry-owned counters travel in the obs.counters section; board
	// mirrors are derived from the (also restored) bank.
	if got := h2.Registry.Counter("replay.ticks").Value(); got != 42 {
		t.Fatalf("registry counter = %d, want 42 after restore", got)
	}
	got := s2.Board.Counters().Snapshot()
	for name, v := range s.Board.Counters().Snapshot() {
		if got[name] != v {
			t.Fatalf("board counter %s = %d, want %d", name, got[name], v)
		}
	}
}

// A plain session restores a snapshot taken by an obs-enabled twin by
// ignoring the obs section, and vice versa (Has() guards the optional
// section).
func TestSessionRestoreWithoutObsIgnoresObsSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.ckpt")

	s := testSession(t)
	h, err := s.EnableObs("", time.Hour, io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	s.Run(10_000)
	if err := s.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	plain := testSession(t)
	if _, err := plain.Restore(path); err != nil {
		t.Fatal(err)
	}
	got := plain.Board.Counters().Snapshot()
	for name, v := range s.Board.Counters().Snapshot() {
		if got[name] != v {
			t.Fatalf("board counter %s = %d, want %d after obs-to-plain restore", name, got[name], v)
		}
	}
}
