package memories_test

import (
	"fmt"

	"memories"
)

// Example shows the minimal session: a workload on the modeled host with
// the board passively emulating one L3.
func Example() {
	gen := memories.NewTPCC(memories.ScaledTPCCConfig(4096))
	s, err := memories.NewSession(
		memories.DefaultHostConfig(),
		memories.SingleL3Board(32*memories.MB, 8, 128),
		gen)
	if err != nil {
		panic(err)
	}
	s.Run(50_000)
	v := s.Board.Node(0)
	fmt.Println("geometry:", v.Geometry)
	fmt.Println("saw traffic:", v.Refs() > 0)
	// Output:
	// geometry: 32MB 8-way, 128B lines
	// saw traffic: true
}

// ExampleMultiConfigBoard evaluates three cache sizes against one
// workload in a single run — the paper's multiple-configuration mode.
func ExampleMultiConfigBoard() {
	cfg := memories.MultiConfigBoard([]int{0, 1, 2, 3, 4, 5, 6, 7}, 128, 4,
		4*memories.MB, 16*memories.MB, 64*memories.MB)
	s, err := memories.NewSession(memories.DefaultHostConfig(), cfg,
		memories.NewTPCC(memories.ScaledTPCCConfig(4096)))
	if err != nil {
		panic(err)
	}
	s.Run(100_000)
	m0 := s.Board.Node(0).MissRatio()
	m2 := s.Board.Node(2).MissRatio()
	fmt.Println("bigger cache misses less:", m2 <= m0)
	// Output:
	// bigger cache misses less: true
}

// ExampleParseProtocol loads a custom coherence protocol from the
// paper's map-file format and checks which states it uses.
func ExampleParseProtocol() {
	tab, err := memories.ParseProtocol(`protocol tiny-msi
read I none -> S allocate fetch-memory
read I shared -> S allocate fetch-memory
read I modified -> S allocate fetch-intervention
read S * -> S -
read M * -> M -
write I * -> M allocate fetch-memory invalidate-others
write S * -> M invalidate-others
write M * -> M -
castout I * -> M allocate
castout S * -> M -
castout M * -> M -
snoop-read I * -> I -
snoop-read S * -> S respond-shared
snoop-read M * -> S respond-modified writeback
snoop-write I * -> I -
snoop-write S * -> I -
snoop-write M * -> I respond-modified
snoop-castout I * -> I -
snoop-castout S * -> S -
snoop-castout M * -> M -
`)
	if err != nil {
		panic(err)
	}
	fmt.Println("protocol:", tab.Name)
	fmt.Println("states:", tab.States())
	// Output:
	// protocol: tiny-msi
	// states: [I S M]
}

// ExampleSession_Console drives the board through the console software.
func ExampleSession_Console() {
	s, err := memories.NewSession(
		memories.DefaultHostConfig(),
		memories.SingleL3Board(8*memories.MB, 4, 128),
		memories.NewUniform(8, 64*memories.MB, 0.3, 1))
	if err != nil {
		panic(err)
	}
	s.Run(10_000)
	type liner interface{ Execute(string) error }
	var c liner = s.Console(noopWriter{})
	fmt.Println("nodes command ok:", c.Execute("nodes") == nil)
	fmt.Println("bad command rejected:", c.Execute("selfdestruct") != nil)
	// Output:
	// nodes command ok: true
	// bad command rejected: true
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }
