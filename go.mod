module memories

go 1.22
