package memories

import (
	"bytes"
	"testing"

	"memories/internal/addr"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/internal/faults"
	"memories/internal/host"
	"memories/internal/hotspot"
	"memories/internal/numa"
	"memories/internal/simbase"
	"memories/internal/tracefile"
	"memories/internal/workload"
	"memories/internal/workload/splash"
)

// TestIntegrationCaptureReplayMatchesBoard exercises the full trace
// pipeline: the board captures the bus stream it is emulating, the
// capture is dumped to the on-disk format, and replaying that file
// through the trace-driven simulator with the same cache configuration
// reproduces the board's own statistics exactly. This is the off-line
// analysis workflow of §2.3 closing the loop with §4.1's validation.
func TestIntegrationCaptureReplayMatchesBoard(t *testing.T) {
	bcfg := SingleL3Board(4*MB, 4, 128)
	bcfg.TraceCapacity = 1 << 20
	gen := NewTPCC(ScaledTPCCConfig(4096))
	s, err := NewSession(DefaultHostConfig(), bcfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(150_000)
	if s.Board.Trace().Dropped() != 0 {
		t.Fatal("capture memory overflowed; grow TraceCapacity for this test")
	}

	var buf bytes.Buffer
	if err := s.Board.Trace().Dump(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := tracefile.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sim := simbase.MustNewTraceSim([]simbase.TraceNodeConfig{{
		CPUs:     []int{0, 1, 2, 3, 4, 5, 6, 7},
		Geometry: addr.MustGeometry(4*addr.MB, 128, 4),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}})
	if _, err := sim.Run(r); err != nil {
		t.Fatal(err)
	}

	bv, sv := s.Board.Node(0), sim.NodeStats(0)
	if bv.ReadHit != sv.ReadHit || bv.ReadMiss != sv.ReadMiss ||
		bv.WriteHit != sv.WriteHit || bv.WriteMiss != sv.WriteMiss {
		t.Fatalf("replay diverged: board %+v vs replay %+v", bv, sv)
	}
}

// TestIntegrationHotspotMode attaches the hot-spot profiler (the §2.3
// FPGA reprogramming mode) to a live host and confirms it finds the OLTP
// hot set.
func TestIntegrationHotspotMode(t *testing.T) {
	prof, err := hotspot.New(hotspot.Config{Granularity: 4096, MaxBlocks: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h := host.MustNew(host.DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	h.Bus().Attach(prof)
	h.Run(200_000)
	if prof.Total() == 0 {
		t.Fatal("profiler saw nothing")
	}
	top := prof.Top(10)
	if len(top) == 0 || top[0].Total() < 2 {
		t.Fatalf("no hot pages found: %+v", top)
	}
	if c := prof.Concentration(100); c <= 0.01 {
		t.Fatalf("OLTP concentration %.3f implausibly flat", c)
	}
}

// TestIntegrationNUMAMode attaches the NUMA directory emulator to a live
// host running the sharing-heavy FMM kernel and confirms remote traffic
// and interventions appear.
func TestIntegrationNUMAMode(t *testing.T) {
	cfg := numa.Config{
		HomeInterleaveBytes: 4 * addr.KB,
		Directory:           addr.MustGeometry(1*addr.MB, 128, 4),
	}
	for n := 0; n < 4; n++ {
		cfg.Nodes = append(cfg.Nodes, numa.NodeConfig{
			CPUs:   []int{n * 2, n*2 + 1},
			L3:     addr.MustGeometry(4*addr.MB, 128, 4),
			Policy: cache.LRU,
		})
	}
	emu := numa.MustNew(cfg)
	hcfg := host.DefaultConfig()
	hcfg.L2Bytes = 256 * addr.KB
	h := host.MustNew(hcfg, splash.New(splash.NameFMM, splash.SizeClassic, 8, 3))
	h.Bus().Attach(emu)
	h.Run(300_000)

	var local, remote, interv uint64
	for n := 0; n < 4; n++ {
		v := emu.Node(n)
		local += v.Local
		remote += v.Remote
	}
	interv = emu.Counters().Value("numa0.intervention.supplied") +
		emu.Counters().Value("numa1.intervention.supplied") +
		emu.Counters().Value("numa2.intervention.supplied") +
		emu.Counters().Value("numa3.intervention.supplied")
	if local == 0 || remote == 0 {
		t.Fatalf("local=%d remote=%d: interleaving broken", local, remote)
	}
	// 4KB interleave over 4 nodes: ~3/4 of requests are remote.
	frac := float64(remote) / float64(local+remote)
	if frac < 0.5 || frac > 0.95 {
		t.Fatalf("remote fraction %.2f implausible for 4-way interleave", frac)
	}
	if interv == 0 {
		t.Fatal("FMM produced no NUMA interventions")
	}
}

// TestIntegrationBoardAndNUMATogether runs both observers on one bus —
// the board is passive, so observers compose freely.
func TestIntegrationBoardAndNUMATogether(t *testing.T) {
	board := core.MustNewBoard(SingleL3Board(8*MB, 4, 128))
	prof, err := hotspot.New(hotspot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := host.MustNew(host.DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	h.Bus().Attach(board)
	h.Bus().Attach(prof)
	h.Run(100_000)
	board.Flush()
	if board.Node(0).Refs() == 0 || prof.Total() == 0 {
		t.Fatal("composed observers missed traffic")
	}
	// Both observers saw the same memory-op count.
	boardOps := board.Counters().Value("filter.accepted")
	if boardOps != prof.Total() {
		t.Fatalf("board accepted %d vs profiler %d", boardOps, prof.Total())
	}
}

// TestIntegrationRetryProtocolEndToEnd forces the board's overflow-retry
// path (§3.3) against a live host: with a pathologically small
// transaction buffer and RetryOnOverflow set, the board posts bus
// retries, the processors back off and re-issue, and the run still
// completes with consistent statistics. This is the one situation where
// "the MemorIES board could alter system bus behavior" — which the test
// also shows never happens with the stock 512-entry buffer.
func TestIntegrationRetryProtocolEndToEnd(t *testing.T) {
	run := func(depth int) (*core.Board, *host.Host) {
		bcfg := SingleL3Board(8*MB, 4, 128)
		bcfg.BufferDepth = depth
		bcfg.RetryOnOverflow = true
		board := core.MustNewBoard(bcfg)
		hcfg := host.DefaultConfig()
		hcfg.L2Bytes = 64 * addr.KB // hot bus
		h := host.MustNew(hcfg, workload.NewUniform(workload.UniformConfig{
			NumCPUs: 8, FootprintByte: 32 * addr.MB, WriteFraction: 0.3, Seed: 4,
		}))
		h.Bus().Attach(board)
		if got := h.Run(150_000); got != 150_000 {
			t.Fatalf("host stalled at %d refs", got)
		}
		board.Flush()
		return board, h
	}

	// Stock buffer: passive, zero retries (the paper's lab experience).
	board, h := run(core.DefaultBufferDepth)
	if h.Stats().Retried != 0 || board.Counters().Value("buffer.retry-posted") != 0 {
		t.Fatalf("stock buffer caused retries: host %d, board %d",
			h.Stats().Retried, board.Counters().Value("buffer.retry-posted"))
	}

	// Pathological 2-entry buffer: retries happen, are honored, and the
	// two sides agree on the count.
	board, h = run(2)
	if h.Stats().Retried == 0 {
		t.Fatal("2-entry buffer never forced a retry")
	}
	if h.Stats().Retried != board.Counters().Value("buffer.retry-posted") {
		t.Fatalf("retry accounting disagrees: host %d vs board %d",
			h.Stats().Retried, board.Counters().Value("buffer.retry-posted"))
	}
}

// TestIntegrationFaultInjectedOverflowRetry drives the overflow-retry
// path with the *stock* 512-entry buffer: an injected transaction burst
// is the only way to fill it (the paper never saw it fire, and
// TestIntegrationRetryProtocolEndToEnd confirms nominal traffic keeps it
// nearly empty). Count-only mode shows the burst genuinely pushes the
// buffer past its depth; retry mode shows the resulting combined
// RespRetry reaches the host, which backs off, re-issues, and completes.
func TestIntegrationFaultInjectedOverflowRetry(t *testing.T) {
	run := func(retryOnOverflow bool) (*core.Board, *host.Host) {
		bcfg := SingleL3Board(8*MB, 4, 128)
		bcfg.RetryOnOverflow = retryOnOverflow
		board := core.MustNewBoard(bcfg)
		inj, err := faults.New(board, faults.Config{Seed: 9, BurstProb: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		h := host.MustNew(host.DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
		h.Bus().Attach(inj)
		if got := h.Run(100_000); got != 100_000 {
			t.Fatalf("host stalled at %d refs", got)
		}
		board.Flush()
		if board.Counters().Value("faults.bursts") == 0 {
			t.Fatal("no bursts injected; raise BurstProb or refs")
		}
		return board, h
	}

	// Count-only mode: the burst drives occupancy beyond the hardware
	// depth (the model keeps processing, so the high-water mark shows how
	// far past 512 the burst went).
	board, h := run(false)
	if hw := board.Counters().Value("buffer.high-water"); hw <= core.DefaultBufferDepth {
		t.Fatalf("burst high-water %d never exceeded the %d-entry buffer", hw, core.DefaultBufferDepth)
	}
	if board.Counters().Value("buffer.overflow") == 0 {
		t.Fatal("no overflow events counted")
	}
	if h.Stats().Retried != 0 {
		t.Fatal("count-only mode must stay passive on the bus")
	}

	// Retry mode: the full buffer posts a combined RespRetry that the
	// host observes and honors.
	board, h = run(true)
	if board.Counters().Value("buffer.retry-posted") == 0 {
		t.Fatal("full buffer posted no retries")
	}
	if h.Stats().Retried == 0 {
		t.Fatal("host never observed a combined RespRetry")
	}
	if h.Stats().RetryExhausted != 0 {
		t.Fatalf("%d transactions exhausted the retry limit; drain is wedged", h.Stats().RetryExhausted)
	}
}

// TestIntegrationConsoleDrivenReconfiguration reproduces the dynamic
// reprogramming workflow: measure, reprogram a bigger cache through the
// console, measure again, and confirm the bigger cache misses less on the
// same (deterministic) workload.
func TestIntegrationConsoleDrivenReconfiguration(t *testing.T) {
	run := func(setup []string) float64 {
		gen := NewTPCC(ScaledTPCCConfig(4096))
		s, err := NewSession(DefaultHostConfig(), SingleL3Board(2*MB, 4, 128), gen)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		c := s.Console(&out)
		for _, cmd := range setup {
			if err := c.Execute(cmd); err != nil {
				t.Fatalf("%q: %v (output %s)", cmd, err, out.String())
			}
		}
		s.Run(200_000)
		return s.Board.Node(0).MissRatio()
	}
	small := run(nil)
	big := run([]string{"reprogram 0 size=16MB assoc=8"})
	if big >= small {
		t.Fatalf("console-configured 16MB cache (%.4f) not better than 2MB (%.4f)", big, small)
	}
}
