// Package interposer implements the board's foreign-bus attachment
// (paper §3): "the ability to ... connect to an interposer card to take
// measurements from systems with a different bus architecture, such as
// an Intel X86 platform. Different bus architecture measurements require
// protocol conversion on the interposer card, reprogramming of the FPGA,
// or changing the command map file if the protocol is similar."
//
// The card observes transactions in a foreign command vocabulary (a
// P6-style front-side bus here), translates them through a command map —
// loadable from the same style of text file as the protocol tables — and
// forwards them to any 6xx-side observer (normally the MemorIES board).
// Commands with no mapping are filtered and counted, exactly like the
// address filter's rejects.
package interposer

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"memories/internal/bus"
)

// FSBCommand is a P6-style front-side-bus transaction type.
type FSBCommand uint8

const (
	// BRL: Bus Read Line — a cacheable line fetch.
	BRL FSBCommand = iota
	// BRIL: Bus Read and Invalidate Line — fetch with intent to modify.
	BRIL
	// BIL: Bus Invalidate Line — ownership claim without data.
	BIL
	// BWL: Bus Write Line — an explicit writeback of a dirty line.
	BWL
	// MemRead8 / MemWrite8: uncacheable partial transfers.
	MemRead8
	MemWrite8
	// IORead32 / IOWrite32: I/O port accesses.
	IORead32
	IOWrite32
	// IntA: interrupt acknowledge.
	IntA
	// Special: special cycles (halt, shutdown, flush acknowledge).
	Special

	numFSBCommands = int(Special) + 1
)

var fsbNames = [numFSBCommands]string{
	"brl", "bril", "bil", "bwl", "memread8", "memwrite8",
	"ioread32", "iowrite32", "inta", "special",
}

// String returns the FSB mnemonic.
func (c FSBCommand) String() string {
	if int(c) < numFSBCommands {
		return fsbNames[c]
	}
	return fmt.Sprintf("fsb(%d)", uint8(c))
}

// ParseFSBCommand parses an FSB mnemonic.
func ParseFSBCommand(s string) (FSBCommand, error) {
	for i, n := range fsbNames {
		if strings.EqualFold(s, n) {
			return FSBCommand(i), nil
		}
	}
	return 0, fmt.Errorf("interposer: unknown FSB command %q", s)
}

// NumFSBCommands returns the size of the foreign command vocabulary.
func NumFSBCommands() int { return numFSBCommands }

// Transaction is one foreign-bus operation as observed by the card.
type Transaction struct {
	Cmd     FSBCommand
	Addr    uint64
	AgentID int // requesting bus agent
	Size    int
	Cycle   uint64
}

// CommandMap translates foreign commands to 6xx commands. Unmapped
// entries are filtered.
type CommandMap struct {
	to     [numFSBCommands]bus.Command
	mapped [numFSBCommands]bool
}

// Set maps a foreign command.
func (m *CommandMap) Set(from FSBCommand, to bus.Command) {
	m.to[from] = to
	m.mapped[from] = true
}

// Lookup returns the translation and whether one exists.
func (m *CommandMap) Lookup(from FSBCommand) (bus.Command, bool) {
	return m.to[from], m.mapped[from]
}

// P6Map returns the stock command map for a P6-style FSB: line reads and
// ownership traffic translate to their 6xx equivalents; partials, I/O,
// and interrupt cycles map to the filtered classes so the board's
// address filter rejects them with proper accounting.
func P6Map() *CommandMap {
	m := &CommandMap{}
	m.Set(BRL, bus.Read)
	m.Set(BRIL, bus.RWITM)
	m.Set(BIL, bus.DClaim)
	m.Set(BWL, bus.Castout)
	m.Set(IORead32, bus.IORead)
	m.Set(IOWrite32, bus.IOWrite)
	m.Set(IntA, bus.Interrupt)
	// MemRead8/MemWrite8 and Special stay unmapped: the card drops them
	// before they reach the board (they carry no cache-line semantics).
	return m
}

// WriteMapFile serializes a command map in the text format:
//
//	command-map <name>
//	map <fsb-command> <6xx-command>
func WriteMapFile(w io.Writer, name string, m *CommandMap) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "command-map %s\n", name)
	for c := 0; c < numFSBCommands; c++ {
		if to, ok := m.Lookup(FSBCommand(c)); ok {
			fmt.Fprintf(bw, "map %s %s\n", FSBCommand(c), to)
		}
	}
	return bw.Flush()
}

// ParseMapFile parses the command-map text format. Later lines override
// earlier ones; '#' starts a comment.
func ParseMapFile(r io.Reader) (name string, m *CommandMap, err error) {
	m = &CommandMap{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case strings.EqualFold(fields[0], "command-map") && len(fields) == 2:
			name = fields[1]
		case strings.EqualFold(fields[0], "map") && len(fields) == 3:
			from, err := ParseFSBCommand(fields[1])
			if err != nil {
				return "", nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			to, ok := parseBusCommand(fields[2])
			if !ok {
				return "", nil, fmt.Errorf("line %d: unknown 6xx command %q", lineNo, fields[2])
			}
			m.Set(from, to)
		default:
			return "", nil, fmt.Errorf("line %d: cannot parse %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return "", nil, err
	}
	if name == "" {
		return "", nil, fmt.Errorf("interposer: map file missing command-map directive")
	}
	return name, m, nil
}

func parseBusCommand(s string) (bus.Command, bool) {
	for c := 0; c < bus.NumCommands(); c++ {
		if strings.EqualFold(s, bus.Command(c).String()) {
			return bus.Command(c), true
		}
	}
	return 0, false
}

// Stats counts the card's activity.
type Stats struct {
	Observed   uint64 // foreign transactions seen
	Translated uint64 // forwarded to the 6xx-side observer
	Dropped    uint64 // unmapped commands filtered on the card
}

// Card is the interposer: it receives foreign-bus transactions and
// forwards translated ones to a 6xx-side snooper (the board).
type Card struct {
	cmap   *CommandMap
	target bus.Snooper
	stats  Stats
}

// New builds a card with the given map and target observer.
func New(cmap *CommandMap, target bus.Snooper) (*Card, error) {
	if cmap == nil || target == nil {
		return nil, fmt.Errorf("interposer: command map and target required")
	}
	return &Card{cmap: cmap, target: target}, nil
}

// Stats returns a copy of the card statistics.
func (c *Card) Stats() Stats { return c.stats }

// Observe translates and forwards one foreign transaction, returning the
// target's snoop response (retry propagates back to the foreign bus).
func (c *Card) Observe(ftx Transaction) bus.SnoopResponse {
	c.stats.Observed++
	to, ok := c.cmap.Lookup(ftx.Cmd)
	if !ok {
		c.stats.Dropped++
		return bus.RespNull
	}
	c.stats.Translated++
	return c.target.Snoop(&bus.Transaction{
		Cmd:   to,
		Addr:  ftx.Addr,
		Size:  ftx.Size,
		SrcID: ftx.AgentID,
		Cycle: ftx.Cycle,
	})
}
