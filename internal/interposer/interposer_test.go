package interposer

import (
	"strings"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/core"
)

func testBoard(t *testing.T) *core.Board {
	t.Helper()
	return core.MustNewBoard(core.Config{Nodes: []core.NodeConfig{{
		Name:     "a",
		CPUs:     []int{0, 1, 2, 3},
		Geometry: addr.MustGeometry(64*addr.KB, 128, 4),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}}})
}

func mustNewCard(t *testing.T, cmap *CommandMap, target bus.Snooper) *Card {
	t.Helper()
	c, err := New(cmap, target)
	if err != nil {
		t.Fatalf("interposer.New: %v", err)
	}
	return c
}

func TestFSBCommandRoundTrip(t *testing.T) {
	for c := FSBCommand(0); int(c) < NumFSBCommands(); c++ {
		got, err := ParseFSBCommand(c.String())
		if err != nil || got != c {
			t.Errorf("ParseFSBCommand(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseFSBCommand("halt"); err == nil {
		t.Error("unknown FSB command accepted")
	}
}

func TestP6MapTranslations(t *testing.T) {
	m := P6Map()
	want := map[FSBCommand]bus.Command{
		BRL:       bus.Read,
		BRIL:      bus.RWITM,
		BIL:       bus.DClaim,
		BWL:       bus.Castout,
		IORead32:  bus.IORead,
		IOWrite32: bus.IOWrite,
		IntA:      bus.Interrupt,
	}
	for from, to := range want {
		got, ok := m.Lookup(from)
		if !ok || got != to {
			t.Errorf("P6Map[%v] = %v,%v want %v", from, got, ok, to)
		}
	}
	for _, unmapped := range []FSBCommand{MemRead8, MemWrite8, Special} {
		if _, ok := m.Lookup(unmapped); ok {
			t.Errorf("%v should be unmapped", unmapped)
		}
	}
}

func TestCardForwardsToBoard(t *testing.T) {
	b := testBoard(t)
	card := mustNewCard(t, P6Map(), b)
	cycle := uint64(0)
	issue := func(cmd FSBCommand, a uint64, agent int) {
		cycle += 100
		card.Observe(Transaction{Cmd: cmd, Addr: a, AgentID: agent, Size: 64, Cycle: cycle})
	}
	issue(BRL, 0x4000, 0)   // read miss
	issue(BRL, 0x4000, 1)   // read hit
	issue(BRIL, 0x8000, 0)  // write miss
	issue(BIL, 0x4000, 2)   // upgrade (write hit on shared)
	issue(BWL, 0xC000, 3)   // castout allocate
	issue(MemRead8, 0x0, 0) // dropped on the card
	issue(IORead32, 0x0, 0) // forwarded, filtered by the board
	b.Flush()

	v := b.Node(0)
	if v.ReadMiss != 1 || v.ReadHit != 1 {
		t.Fatalf("reads: %+v", v)
	}
	if v.WriteMiss != 1 || v.WriteHit != 1 {
		t.Fatalf("writes: %+v", v)
	}
	bank := b.Counters()
	if bank.Value("nodea.castout.allocated") != 1 {
		t.Fatal("BWL did not become a castout")
	}
	if bank.Value("filter.rejected.io") != 1 {
		t.Fatal("translated IORead32 not filtered by the board")
	}
	st := card.Stats()
	if st.Observed != 7 || st.Dropped != 1 || st.Translated != 6 {
		t.Fatalf("card stats: %+v", st)
	}
}

func TestCardPropagatesRetry(t *testing.T) {
	bcfg := core.Config{
		Nodes: []core.NodeConfig{{
			Name:     "a",
			CPUs:     []int{0},
			Geometry: addr.MustGeometry(64*addr.KB, 128, 4),
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		}},
		BufferDepth:     2,
		RetryOnOverflow: true,
	}
	b := core.MustNewBoard(bcfg)
	card := mustNewCard(t, P6Map(), b)
	sawRetry := false
	for i := 0; i < 32; i++ {
		resp := card.Observe(Transaction{Cmd: BRL, Addr: uint64(i) * 128, AgentID: 0, Size: 64, Cycle: uint64(i)})
		if resp == bus.RespRetry {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("overflow retry did not propagate through the card")
	}
}

func TestMapFileRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteMapFile(&sb, "p6", P6Map()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "command-map p6") || !strings.Contains(text, "map brl read") {
		t.Fatalf("map file:\n%s", text)
	}
	name, m, err := ParseMapFile(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if name != "p6" {
		t.Fatalf("name = %q", name)
	}
	for c := 0; c < NumFSBCommands(); c++ {
		want, wantOK := P6Map().Lookup(FSBCommand(c))
		got, gotOK := m.Lookup(FSBCommand(c))
		if want != got || wantOK != gotOK {
			t.Fatalf("command %v: (%v,%v) vs (%v,%v)", FSBCommand(c), got, gotOK, want, wantOK)
		}
	}
}

func TestParseMapFileErrors(t *testing.T) {
	cases := []string{
		"map brl read\n",                    // missing directive
		"command-map x\nmap zap read\n",     // bad FSB command
		"command-map x\nmap brl explode\n",  // bad 6xx command
		"command-map x\nnonsense line ok\n", // unparseable
	}
	for _, src := range cases {
		if _, _, err := ParseMapFile(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// Comments and overrides work.
	src := "command-map y # a custom platform\nmap brl read\nmap brl rwitm\n"
	_, m, err := ParseMapFile(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Lookup(BRL); got != bus.RWITM {
		t.Fatal("later map line did not override")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, testBoard(t)); err == nil {
		t.Fatal("nil map accepted")
	}
	if _, err := New(P6Map(), nil); err == nil {
		t.Fatal("nil target accepted")
	}
}
