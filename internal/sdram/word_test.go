package sdram

import (
	"math/rand"
	"testing"
)

func TestWordPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tag := rng.Uint64() & WordTagMask
		state := uint8(rng.Intn(1 << WordStateBits))
		rank := uint8(rng.Intn(1 << WordRankBits))
		check := uint8(rng.Intn(1 << WordCheckBits))
		w := PackWord(tag, state, rank, check)
		if w.Tag() != tag || w.State() != state || w.Rank() != rank || w.Check() != check {
			t.Fatalf("round trip: packed (%#x,%d,%d,%#x) got (%#x,%d,%d,%#x)",
				tag, state, rank, check, w.Tag(), w.State(), w.Rank(), w.Check())
		}
	}
}

func TestWordFieldSettersIsolate(t *testing.T) {
	w := PackWord(0x1ffff_ffff_ffff, 0xf, 0x7, 0xff) // all fields saturated
	if got := w.WithState(3); got.State() != 3 || got.Tag() != w.Tag() || got.Rank() != w.Rank() || got.Check() != w.Check() {
		t.Fatalf("WithState disturbed other fields: %#x", uint64(got))
	}
	if got := w.WithRank(2); got.Rank() != 2 || got.Tag() != w.Tag() || got.State() != w.State() || got.Check() != w.Check() {
		t.Fatalf("WithRank disturbed other fields: %#x", uint64(got))
	}
	if got := w.WithCheck(0x55); got.Check() != 0x55 || got.Tag() != w.Tag() || got.State() != w.State() || got.Rank() != w.Rank() {
		t.Fatalf("WithCheck disturbed other fields: %#x", uint64(got))
	}
}

func TestWordLayoutCoversUint64(t *testing.T) {
	if WordCheckBits+WordRankBits+WordStateBits+WordTagBits != 64 {
		t.Fatalf("field widths sum to %d, want 64",
			WordCheckBits+WordRankBits+WordStateBits+WordTagBits)
	}
	if WordPayloadBits != WordTagBits+WordStateBits {
		t.Fatal("WordPayloadBits out of sync with field widths")
	}
}

func TestZeroWordIsSelfConsistent(t *testing.T) {
	// EncodeECC(0,0) == 0, so an all-zero word is a valid invalid entry:
	// fresh directories need no ECC initialization pass.
	if EncodeWordECC(0) != 0 {
		t.Fatalf("EncodeWordECC(0) = %#x, want 0", uint64(EncodeWordECC(0)))
	}
	if w, res := CheckWordECC(0); res != ECCOK || w != 0 {
		t.Fatalf("CheckWordECC(0) = %#x, %v; want 0, ECCOK", uint64(w), res)
	}
}

// TestWordECCMatchesUnpacked proves the in-word check byte is the same
// SECDED code the unpacked (tag64, state8) layout used, for every
// representable tag/state value: same encoding, and the same correction
// on any single payload-bit flip.
func TestWordECCMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		tag := rng.Uint64() & WordTagMask
		state := uint8(rng.Intn(1 << WordStateBits))
		if EncodeECC(tag, state) != EncodeWordECC(PackWord(tag, state, 0, 0)).Check() {
			t.Fatalf("check byte differs for tag %#x state %d", tag, state)
		}
		w := EncodeWordECC(PackWord(tag, state, uint8(rng.Intn(8)), 0))
		bit := rng.Intn(WordPayloadBits)
		var corrupted Word
		if bit < WordTagBits {
			corrupted = PackWord(tag^1<<bit, state, w.Rank(), w.Check())
		} else {
			corrupted = PackWord(tag, state^1<<(bit-WordTagBits), w.Rank(), w.Check())
		}
		fixed, res := CheckWordECC(corrupted)
		if res != ECCCorrected {
			t.Fatalf("payload bit %d flip: result %v, want ECCCorrected", bit, res)
		}
		if fixed != w {
			t.Fatalf("payload bit %d flip: corrected to %#x, want %#x", bit, uint64(fixed), uint64(w))
		}
	}
}

func TestWordECCCheckBitFlipHeals(t *testing.T) {
	w := EncodeWordECC(PackWord(0xdeadbeef, 3, 5, 0))
	for bit := 0; bit < WordCheckBits; bit++ {
		corrupted := w ^ 1<<bit
		fixed, res := CheckWordECC(corrupted)
		if res != ECCCorrected || fixed != w {
			t.Fatalf("check bit %d flip: got %#x/%v, want %#x/ECCCorrected",
				bit, uint64(fixed), res, uint64(w))
		}
	}
}

func TestWordECCDoubleFlipUncorrectable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		tag := rng.Uint64() & WordTagMask
		state := uint8(rng.Intn(1 << WordStateBits))
		w := EncodeWordECC(PackWord(tag, state, 0, 0))
		b1 := rng.Intn(WordPayloadBits)
		b2 := rng.Intn(WordPayloadBits)
		if b1 == b2 {
			continue
		}
		corrupted := w
		for _, b := range []int{b1, b2} {
			if b < WordTagBits {
				corrupted ^= 1 << (WordTagShift + b)
			} else {
				corrupted ^= 1 << (WordStateShift + b - WordTagBits)
			}
		}
		if _, res := CheckWordECC(corrupted); res != ECCUncorrectable {
			t.Fatalf("double flip %d,%d: result %v, want ECCUncorrectable", b1, b2, res)
		}
	}
}

func TestWordECCIgnoresRank(t *testing.T) {
	// Rank bits carry replacement metadata and are outside the protected
	// payload — touching them must not require an ECC re-encode.
	w := EncodeWordECC(PackWord(0x1234, 2, 0, 0))
	for r := uint8(0); r <= WordRankMax; r++ {
		if got, res := CheckWordECC(w.WithRank(r)); res != ECCOK || got != w.WithRank(r) {
			t.Fatalf("rank %d: got %v", r, res)
		}
	}
}

func TestNonPow2BankSelectionModulo(t *testing.T) {
	// Regression for the bank-selection fix: with a non-power-of-two bank
	// count the set must map by modulo, so sets 0 and 3 share bank 0 (and
	// conflict), while set 1 lands on its own bank (channel-limited only).
	ts := New(Config{Banks: 3, ChannelGap: 5, BankBusy: 20})
	ts.Schedule(0, 0) // bank 0 busy until 20
	if done := ts.Schedule(0, 3); done != 40 {
		t.Fatalf("set 3 on banks=3: done = %d, want 40 (bank 0 conflict)", done)
	}
	if ts.Stats().BankConflicts != 1 {
		t.Fatalf("BankConflicts = %d, want 1", ts.Stats().BankConflicts)
	}
	ts2 := New(Config{Banks: 3, ChannelGap: 5, BankBusy: 20})
	ts2.Schedule(0, 0)
	if done := ts2.Schedule(0, 1); done != 25 {
		t.Fatalf("set 1 on banks=3: done = %d, want 25 (channel gap only)", done)
	}
	if ts2.Stats().BankConflicts != 0 {
		t.Fatalf("BankConflicts = %d, want 0", ts2.Stats().BankConflicts)
	}
	// Power-of-two path unchanged: set 17 on 16 banks maps to bank 1.
	ts3 := New(DefaultConfig())
	ts3.Schedule(0, 1)
	ts3.Schedule(0, 17)
	if ts3.Stats().BankConflicts != 1 {
		t.Fatalf("pow2 mask path: BankConflicts = %d, want 1", ts3.Stats().BankConflicts)
	}
}
