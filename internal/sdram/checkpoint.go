package sdram

import "memories/internal/checkpoint"

// SaveState serializes the tag-store scheduler horizon and statistics.
// The configuration itself is not stored; the restorer must be built
// with the same timing, which the per-bank slice length cross-checks.
func (t *TagStore) SaveState(e *checkpoint.Enc) {
	e.U64(t.channelFree)
	e.U64Slice(t.bankFree)
	e.U64(t.stats.Ops)
	e.U64(t.stats.BusyCycles)
	e.U64(t.stats.BankConflicts)
	e.U64(t.stats.StallCycles)
	e.U64(t.stats.InjectedStallCycles)
}

// RestoreState loads a checkpointed scheduler state into an identically
// configured store.
func (t *TagStore) RestoreState(d *checkpoint.Dec) error {
	channelFree := d.U64()
	bankFree := d.U64Slice()
	if d.Err() != nil {
		return d.Err()
	}
	if len(bankFree) != len(t.bankFree) {
		return d.Failf("bank count %d != configured %d", len(bankFree), len(t.bankFree))
	}
	t.channelFree = channelFree
	copy(t.bankFree, bankFree)
	t.stats.Ops = d.U64()
	t.stats.BusyCycles = d.U64()
	t.stats.BankConflicts = d.U64()
	t.stats.StallCycles = d.U64()
	t.stats.InjectedStallCycles = d.U64()
	return d.Err()
}
