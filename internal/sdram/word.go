package sdram

// Packed directory words.
//
// The board stores each emulated line's Tag, State, and LRU information
// in a single SDRAM word (paper §3, §3.3) — that packing is how 8 GB of
// emulated cache fits in 1 GB of SDRAM. Word mirrors that entry format
// in software: one uint64 per slot holding the tag, the coherence state,
// the replacement rank, and the SECDED check byte, so a directory probe
// touches exactly one machine word instead of three or four parallel
// arrays.
//
//	 63            15 14   11 10    8 7        0
//	┌────────────────┬───────┬───────┬──────────┐
//	│   tag (49b)    │ state │ rank  │  check   │
//	└────────────────┴───────┴───────┴──────────┘
//
// The check byte protects tag and state (the payload) with the same
// SECDED code as EncodeECC/CheckECC: the 49-bit tag occupies payload
// bits 0–48 and the 4-bit state payload bits 64–67, so syndrome
// positions — and therefore correction behavior — are identical to the
// unpacked (tag64, state8) layout for every representable bit. The rank
// bits hold replacement metadata (LRU recency rank or the FIFO rotation
// pointer) and are not ECC-protected, matching the unpacked layout where
// replacer state lived outside the protected entry.
type Word uint64

const (
	// WordCheckBits is the width of the SECDED check byte (bits 0–7).
	WordCheckBits = 8
	// WordRankBits is the width of the replacement-rank field (bits 8–10).
	WordRankBits = 3
	// WordStateBits is the width of the coherence-state field (bits 11–14).
	WordStateBits = 4
	// WordTagBits is the width of the tag field (bits 15–63). With 128 B
	// lines and direct mapping this addresses 2^56 bytes of physical
	// memory — far beyond the paper's machines.
	WordTagBits = 49

	// WordRankShift, WordStateShift, and WordTagShift position each field.
	WordRankShift  = WordCheckBits
	WordStateShift = WordRankShift + WordRankBits
	WordTagShift   = WordStateShift + WordStateBits

	// WordCheckMask, WordRankMask, WordStateMask, and WordTagMask are the
	// in-place (unshifted) field masks.
	WordCheckMask = 1<<WordCheckBits - 1
	WordRankMask  = 1<<WordRankBits - 1
	WordStateMask = 1<<WordStateBits - 1
	WordTagMask   = 1<<WordTagBits - 1

	// WordPayloadBits is the ECC-protected payload width: tag plus state.
	// Fault injectors draw bit positions from this domain (bit < WordTagBits
	// flips a tag bit, otherwise a state bit).
	WordPayloadBits = WordTagBits + WordStateBits

	// WordRankMax is the largest replacement rank the in-word field holds;
	// caches with more ways than this keep ranks in a side array.
	WordRankMax = WordRankMask
)

// PackWord assembles a directory word from its fields. Arguments wider
// than their fields are masked.
func PackWord(tag uint64, state, rank, check uint8) Word {
	return Word(tag&WordTagMask)<<WordTagShift |
		Word(state&WordStateMask)<<WordStateShift |
		Word(rank&WordRankMask)<<WordRankShift |
		Word(check)
}

// Tag returns the stored tag.
func (w Word) Tag() uint64 { return uint64(w) >> WordTagShift }

// State returns the stored coherence state.
func (w Word) State() uint8 { return uint8(w>>WordStateShift) & WordStateMask }

// Rank returns the stored replacement rank.
func (w Word) Rank() uint8 { return uint8(w>>WordRankShift) & WordRankMask }

// Check returns the stored SECDED check byte.
func (w Word) Check() uint8 { return uint8(w) }

// WithState returns w with the state field replaced.
func (w Word) WithState(s uint8) Word {
	return w&^(WordStateMask<<WordStateShift) | Word(s&WordStateMask)<<WordStateShift
}

// WithRank returns w with the rank field replaced.
func (w Word) WithRank(r uint8) Word {
	return w&^(WordRankMask<<WordRankShift) | Word(r&WordRankMask)<<WordRankShift
}

// WithCheck returns w with the check byte replaced.
func (w Word) WithCheck(c uint8) Word { return w&^WordCheckMask | Word(c) }

// EncodeWordECC returns w with its check byte refreshed from the current
// tag and state. An all-zero word is self-consistent (EncodeECC(0,0) == 0),
// so a freshly zeroed directory needs no initialization pass.
func EncodeWordECC(w Word) Word {
	return w.WithCheck(EncodeECC(w.Tag(), w.State()))
}

// CheckWordECC verifies a packed word against its in-word check byte. On
// a single-bit payload or check-bit error it returns the corrected word
// (check byte re-encoded, rank preserved) with ECCCorrected; on a
// multi-bit error it returns w unchanged with ECCUncorrectable. A
// "correction" that lands outside the tag or state field — only possible
// when three or more flips alias to a valid syndrome — is demoted to
// ECCUncorrectable rather than silently widening a field.
func CheckWordECC(w Word) (Word, ECCResult) {
	tag, state, res := CheckECC(w.Tag(), w.State(), w.Check())
	switch res {
	case ECCOK:
		return w, ECCOK
	case ECCCorrected:
		if tag > WordTagMask || state > WordStateMask {
			return w, ECCUncorrectable
		}
		return PackWord(tag, state, w.Rank(), EncodeECC(tag, state)), ECCCorrected
	default:
		return w, ECCUncorrectable
	}
}
