// Package sdram models the SDRAM DIMMs that hold the emulated caches'
// tag/state/LRU tables on the MemorIES board.
//
// Paper §3.3: "The throughput of the SDRAMs implementing state/Tag/LRU
// functions is roughly 42% of the maximum 6xx bus bandwidth. In order to
// handle occasional bursts exceeding 42% bus utilization, MemorIES
// provides transaction buffers between the 6xx bus and the cache control
// logic."
//
// Each directory operation is a read-modify-write of one tag-table entry:
// it occupies the SDRAM channel for a minimum gap and keeps the addressed
// bank busy for a recovery time. With the default parameters the sustained
// random-access throughput is ~1 operation per 23 bus cycles — 42% of the
// peak memory-operation rate of a 100 MHz 6xx bus moving 128-byte lines
// (one op per ~9.6 cycles). The node controllers use the model to pace
// their 512-entry transaction buffers; if a burst overflows them, the
// address filter posts a bus retry (the event the paper reports never
// happening in months of lab use at 2-20% utilization).
package sdram

// Config sets the tag-store timing, all in bus cycles.
type Config struct {
	// Banks is the number of independent SDRAM banks; the tag table is
	// interleaved across them by set index.
	Banks int
	// ChannelGap is the minimum number of cycles between operation starts
	// on the shared channel (command/data bus occupancy).
	ChannelGap uint64
	// BankBusy is how long an operation keeps its bank busy (row cycle
	// time; covers the read-modify-write of the tag entry).
	BankBusy uint64
}

// DefaultConfig returns timing calibrated to the paper's 42% figure for a
// 100 MHz 6xx bus: channel-limited throughput of one directory operation
// per 23 bus cycles.
func DefaultConfig() Config {
	// Four 64MB DIMMs per node controller (paper §3), each with four
	// internal banks: sixteen banks interleaved by set index.
	return Config{Banks: 16, ChannelGap: 23, BankBusy: 46}
}

// Stats counts tag-store activity.
type Stats struct {
	Ops                 uint64 // operations performed
	BusyCycles          uint64 // cycles the channel was occupied
	BankConflicts       uint64 // ops delayed by a busy bank beyond the channel gap
	StallCycles         uint64 // total cycles ops waited beyond their arrival
	InjectedStallCycles uint64 // cycles of externally injected controller stalls
}

// TagStore is the timing model for one node controller's tag/state SDRAM.
// It is a pure scheduler: callers ask when an operation issued "now" for a
// given set would complete, and the store advances its internal busy
// horizon. Not safe for concurrent use.
type TagStore struct {
	cfg         Config
	bankMask    int64    // Banks-1 when Banks is a power of two, else -1
	channelFree uint64   // earliest cycle the channel can start a new op
	bankFree    []uint64 // earliest cycle each bank can start a new op
	stats       Stats
}

// New creates a tag store with the given timing. Banks must be positive
// and timing nonzero.
func New(cfg Config) *TagStore {
	if cfg.Banks <= 0 || cfg.ChannelGap == 0 || cfg.BankBusy == 0 {
		panic("sdram: invalid configuration")
	}
	mask := int64(cfg.Banks - 1)
	if cfg.Banks&(cfg.Banks-1) != 0 {
		mask = -1
	}
	return &TagStore{cfg: cfg, bankMask: mask, bankFree: make([]uint64, cfg.Banks)}
}

// Config returns the timing configuration.
func (t *TagStore) Config() Config { return t.cfg }

// Stats returns a copy of the accumulated statistics.
func (t *TagStore) Stats() Stats { return t.stats }

// NextFree returns the earliest cycle at which a new operation could start
// on the channel (ignoring bank state, which depends on the set).
func (t *TagStore) NextFree() uint64 { return t.channelFree }

// Idle reports whether an operation arriving at cycle now would start
// immediately.
func (t *TagStore) Idle(now uint64) bool { return t.channelFree <= now }

// Stall pushes the channel-free horizon forward by the given number of
// cycles from now, modeling a transient node-controller stall (a hung
// refresh, a re-calibration, an injected fault). Buffered transactions
// keep queueing while the channel is stalled, which is how fault
// injection drives the transaction buffers toward overflow.
func (t *TagStore) Stall(now, cycles uint64) {
	if t.channelFree < now {
		t.channelFree = now
	}
	t.channelFree += cycles
	t.stats.InjectedStallCycles += cycles
}

// Schedule issues a directory operation for the given set at cycle now and
// returns the cycle at which it completes. Operations are serviced in call
// order (the node controller drains its transaction buffer FIFO).
func (t *TagStore) Schedule(now uint64, set int64) (done uint64) {
	var bank int64
	if t.bankMask >= 0 {
		bank = set & t.bankMask
	} else {
		bank = set % int64(t.cfg.Banks)
	}
	start := now
	if t.channelFree > start {
		start = t.channelFree
	}
	if bf := t.bankFree[bank]; bf > start {
		start = bf
		t.stats.BankConflicts++
	}
	t.stats.StallCycles += start - now
	t.channelFree = start + t.cfg.ChannelGap
	t.bankFree[bank] = start + t.cfg.BankBusy
	t.stats.Ops++
	t.stats.BusyCycles += t.cfg.ChannelGap
	done = start + t.cfg.BankBusy
	return done
}

// SustainedOpsPerCycle returns the best-case steady-state operation rate,
// the number compared against bus bandwidth to derive the 42% figure.
func (t *TagStore) SustainedOpsPerCycle() float64 {
	// With enough banks the channel gap is the binding constraint.
	channelRate := 1.0 / float64(t.cfg.ChannelGap)
	bankRate := float64(t.cfg.Banks) / float64(t.cfg.BankBusy)
	if bankRate < channelRate {
		return bankRate
	}
	return channelRate
}
