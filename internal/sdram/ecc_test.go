package sdram

import "testing"

// eccSamples is a spread of payloads: corners, walking bits, and a few
// pseudo-random values.
func eccSamples() []struct {
	tag   uint64
	state uint8
} {
	out := []struct {
		tag   uint64
		state uint8
	}{
		{0, 0}, {^uint64(0), 0xff}, {0, 4}, {1, 1}, {0xdeadbeefcafe, 3},
	}
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 16; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out = append(out, struct {
			tag   uint64
			state uint8
		}{x, uint8(x >> 56)})
	}
	return out
}

func TestECCCleanRoundTrip(t *testing.T) {
	for _, s := range eccSamples() {
		code := EncodeECC(s.tag, s.state)
		tag, st, res := CheckECC(s.tag, s.state, code)
		if res != ECCOK || tag != s.tag || st != s.state {
			t.Fatalf("clean check of (%#x,%#x) = (%#x,%#x,%v)", s.tag, s.state, tag, st, res)
		}
	}
}

// TestECCSingleBitExhaustive flips every one of the 80 codeword bits (72
// data + 8 check) for every sample and demands exact correction.
func TestECCSingleBitExhaustive(t *testing.T) {
	for _, s := range eccSamples() {
		code := EncodeECC(s.tag, s.state)
		for bit := 0; bit < 80; bit++ {
			tag, state, c := s.tag, s.state, code
			switch {
			case bit < 64:
				tag ^= 1 << uint(bit)
			case bit < 72:
				state ^= 1 << uint(bit-64)
			default:
				c ^= 1 << uint(bit-72)
			}
			gotTag, gotState, res := CheckECC(tag, state, c)
			if res != ECCCorrected {
				t.Fatalf("bit %d of (%#x,%#x): result %v, want corrected", bit, s.tag, s.state, res)
			}
			if gotTag != s.tag || gotState != s.state {
				t.Fatalf("bit %d of (%#x,%#x): corrected to (%#x,%#x)", bit, s.tag, s.state, gotTag, gotState)
			}
		}
	}
}

// TestECCDoubleBitDetected flips every pair of data bits for a handful of
// samples: SECDED must flag them uncorrectable, never "correct" into a
// third value silently.
func TestECCDoubleBitDetected(t *testing.T) {
	samples := eccSamples()[:4]
	for _, s := range samples {
		code := EncodeECC(s.tag, s.state)
		for a := 0; a < 72; a++ {
			for b := a + 1; b < 72; b++ {
				tag, state := s.tag, s.state
				for _, bit := range []int{a, b} {
					if bit < 64 {
						tag ^= 1 << uint(bit)
					} else {
						state ^= 1 << uint(bit-64)
					}
				}
				if _, _, res := CheckECC(tag, state, code); res != ECCUncorrectable {
					t.Fatalf("bits %d+%d of (%#x,%#x): result %v, want uncorrectable", a, b, s.tag, s.state, res)
				}
			}
		}
	}
}

func TestTagStoreStall(t *testing.T) {
	ts := New(DefaultConfig())
	ts.Schedule(0, 0)
	free := ts.NextFree()
	ts.Stall(free, 500)
	if got := ts.NextFree(); got != free+500 {
		t.Fatalf("stall moved horizon to %d, want %d", got, free+500)
	}
	if ts.Stats().InjectedStallCycles != 500 {
		t.Fatalf("InjectedStallCycles = %d", ts.Stats().InjectedStallCycles)
	}
	// A stall issued in the past still pushes forward from "now".
	ts.Stall(ts.NextFree()+1000, 100)
	if got, want := ts.NextFree(), free+500+1000+100; got != uint64(want) {
		t.Fatalf("late stall horizon %d, want %d", got, want)
	}
}
