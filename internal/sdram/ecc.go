package sdram

import "math/bits"

// SECDED protection for tag-store entries.
//
// The paper's board keeps the emulated caches' tag/state/LRU tables in
// commodity SDRAM DIMMs and never discusses soft errors — a defensible
// omission for week-long lab runs, but not for the months-long production
// deployments this reproduction targets. Each 72-bit directory entry
// (64-bit tag + 8-bit state) is protected by an 8-bit SECDED code: a
// 7-bit Hamming check over the data plus one overall-parity bit. A single
// flipped bit anywhere in the 80-bit codeword is corrected exactly; any
// even number of flips is detected as uncorrectable, and the scrub pass
// repairs the entry by invalidating it (safe in a non-inclusive emulated
// cache: the line simply re-misses).

// ECCResult classifies the outcome of an ECC check.
type ECCResult int

const (
	// ECCOK: the entry matches its check byte.
	ECCOK ECCResult = iota
	// ECCCorrected: a single-bit error was found and corrected; the
	// returned tag/state are the repaired values.
	ECCCorrected
	// ECCUncorrectable: a multi-bit error was detected; the entry cannot
	// be trusted and must be invalidated.
	ECCUncorrectable
)

// eccDataBits is the protected payload width: 64 tag bits + 8 state bits.
const eccDataBits = 72

var (
	// eccPos[k] is the 1-based codeword position of data bit k (positions
	// that are powers of two belong to the check bits).
	eccPos [eccDataBits]uint8
	// eccBitAt inverts eccPos: codeword position -> data bit, -1 if the
	// position holds a check bit or is out of range.
	eccBitAt [128]int8
	// eccTab[i][b] folds byte i of the payload (bytes 0-7 = tag, byte 8 =
	// state) into a 7-bit syndrome (low bits) and a parity bit (bit 7).
	eccTab [9][256]uint8
)

func init() {
	for i := range eccBitAt {
		eccBitAt[i] = -1
	}
	pos := uint8(1)
	for k := 0; k < eccDataBits; k++ {
		pos++
		for pos&(pos-1) == 0 {
			pos++
		}
		eccPos[k] = pos
		eccBitAt[pos] = int8(k)
	}
	for byteIdx := 0; byteIdx < 9; byteIdx++ {
		for v := 0; v < 256; v++ {
			var folded uint8
			for b := 0; b < 8; b++ {
				if v>>b&1 == 1 {
					folded ^= eccPos[byteIdx*8+b] | 0x80
				}
			}
			eccTab[byteIdx][v] = folded
		}
	}
}

// eccRaw returns the data syndrome (low 7 bits) and data parity (bit 7)
// of a payload.
func eccRaw(tag uint64, state uint8) uint8 {
	return eccTab[0][tag&0xff] ^
		eccTab[1][tag>>8&0xff] ^
		eccTab[2][tag>>16&0xff] ^
		eccTab[3][tag>>24&0xff] ^
		eccTab[4][tag>>32&0xff] ^
		eccTab[5][tag>>40&0xff] ^
		eccTab[6][tag>>48&0xff] ^
		eccTab[7][tag>>56&0xff] ^
		eccTab[8][state]
}

// EncodeECC computes the SECDED check byte for a directory entry: low 7
// bits are the Hamming check bits, bit 7 is overall parity over the whole
// codeword (data + check bits).
func EncodeECC(tag uint64, state uint8) uint8 {
	r := eccRaw(tag, state)
	check := r & 0x7f
	par := r>>7 ^ uint8(bits.OnesCount8(check))&1
	return check | par<<7
}

// CheckECC verifies a directory entry against its stored check byte. On a
// single-bit error (in the data, the check bits, or the parity bit
// itself) it returns the corrected tag and state with ECCCorrected; on a
// multi-bit error it returns the inputs unchanged with ECCUncorrectable.
func CheckECC(tag uint64, state uint8, code uint8) (uint64, uint8, ECCResult) {
	r := eccRaw(tag, state)
	storedCheck := code & 0x7f
	synd := (r & 0x7f) ^ storedCheck
	total := r>>7 ^ uint8(bits.OnesCount8(storedCheck))&1 ^ code>>7
	if synd == 0 {
		if total == 0 {
			return tag, state, ECCOK
		}
		// Only the overall parity bit flipped; the data is intact.
		return tag, state, ECCCorrected
	}
	if total == 0 {
		// Nonzero syndrome with even overall parity: two (or an even
		// number of) bits flipped.
		return tag, state, ECCUncorrectable
	}
	if synd&(synd-1) == 0 {
		// A check bit flipped; the data is intact (re-encoding heals the
		// stored code).
		return tag, state, ECCCorrected
	}
	if k := eccBitAt[synd]; k >= 0 {
		if k < 64 {
			return tag ^ 1<<uint(k), state, ECCCorrected
		}
		return tag, state ^ 1<<uint(k-64), ECCCorrected
	}
	// Syndrome points outside the codeword: corrupt beyond repair.
	return tag, state, ECCUncorrectable
}
