package sdram

import (
	"math/rand"
	"testing"
)

func TestScheduleImmediateWhenIdle(t *testing.T) {
	ts := New(DefaultConfig())
	done := ts.Schedule(100, 0)
	if want := uint64(100 + 46); done != want {
		t.Fatalf("done = %d, want %d", done, want)
	}
	if ts.Stats().StallCycles != 0 {
		t.Fatal("idle op stalled")
	}
}

func TestChannelGapEnforced(t *testing.T) {
	ts := New(Config{Banks: 8, ChannelGap: 10, BankBusy: 12})
	// Different banks so only the channel gap binds.
	ts.Schedule(0, 0)
	done := ts.Schedule(0, 1)
	// Second op starts at 10 (channel), finishes 22.
	if done != 22 {
		t.Fatalf("done = %d, want 22", done)
	}
	if ts.Stats().StallCycles != 10 {
		t.Fatalf("stall = %d, want 10", ts.Stats().StallCycles)
	}
}

func TestBankConflictDelaysBeyondChannel(t *testing.T) {
	ts := New(Config{Banks: 4, ChannelGap: 5, BankBusy: 20})
	ts.Schedule(0, 0)         // bank 0 busy until 20, channel until 5
	done := ts.Schedule(0, 4) // same bank (4 % 4 == 0)
	if done != 40 {
		t.Fatalf("done = %d, want 40 (start 20 + busy 20)", done)
	}
	if ts.Stats().BankConflicts != 1 {
		t.Fatalf("BankConflicts = %d, want 1", ts.Stats().BankConflicts)
	}
}

func TestNonPow2Banks(t *testing.T) {
	ts := New(Config{Banks: 3, ChannelGap: 5, BankBusy: 6})
	// Sets 0..5 must map across all 3 banks without panicking.
	for s := int64(0); s < 6; s++ {
		ts.Schedule(0, s)
	}
	if ts.Stats().Ops != 6 {
		t.Fatalf("Ops = %d", ts.Stats().Ops)
	}
}

func TestIdleAndNextFree(t *testing.T) {
	ts := New(Config{Banks: 4, ChannelGap: 10, BankBusy: 10})
	if !ts.Idle(0) {
		t.Fatal("fresh store not idle")
	}
	ts.Schedule(0, 0)
	if ts.Idle(5) {
		t.Fatal("store idle during channel gap")
	}
	if !ts.Idle(10) {
		t.Fatal("store not idle after channel gap")
	}
	if ts.NextFree() != 10 {
		t.Fatalf("NextFree = %d, want 10", ts.NextFree())
	}
}

func TestSustainedThroughputMatches42Percent(t *testing.T) {
	ts := New(DefaultConfig())
	// Peak memory-op rate on a 100MHz 6xx bus with 128B lines and a
	// 16B-wide data path: one op per 1+8 = 9.6-ish cycles. The paper's
	// 42% of that is ~0.0437 ops/cycle; our default sustains 1/23.
	got := ts.SustainedOpsPerCycle()
	busPeak := 1.0 / 9.6
	frac := got / busPeak
	if frac < 0.38 || frac > 0.46 {
		t.Fatalf("sustained/buspeak = %.3f, want ~0.42", frac)
	}
}

func TestSustainedRateUnderRandomLoad(t *testing.T) {
	// Saturate the store with back-to-back random-set ops and measure the
	// realized rate; it must match SustainedOpsPerCycle within 10%.
	ts := New(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	const ops = 20000
	var now, last uint64
	for i := 0; i < ops; i++ {
		done := ts.Schedule(now, int64(rng.Intn(1<<16)))
		last = done
		// Arrivals are instantaneous (worst-case burst).
	}
	rate := float64(ops) / float64(last)
	want := ts.SustainedOpsPerCycle()
	// Random bank conflicts cost ~ChannelGap/Banks extra per op, so the
	// realized rate sits a few percent under nominal.
	if rate < want*0.85 || rate > want*1.01 {
		t.Fatalf("measured rate %.5f vs nominal %.5f", rate, want)
	}
}

func TestScheduleMonotonicCompletion(t *testing.T) {
	ts := New(DefaultConfig())
	rng := rand.New(rand.NewSource(9))
	var now, prev uint64
	for i := 0; i < 5000; i++ {
		now += uint64(rng.Intn(30))
		done := ts.Schedule(now, int64(rng.Intn(1024)))
		if done < prev {
			// FIFO service: completions may tie but never reorder in a
			// single-channel model.
			t.Fatalf("completion went backwards: %d after %d", done, prev)
		}
		prev = done
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Banks: 0, ChannelGap: 1, BankBusy: 1},
		{Banks: 4, ChannelGap: 0, BankBusy: 1},
		{Banks: 4, ChannelGap: 1, BankBusy: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
