package sdram

import (
	"errors"
	"testing"

	"memories/internal/checkpoint"
)

func TestTagStoreCheckpointRoundTrip(t *testing.T) {
	ts := New(DefaultConfig())
	ts.channelFree = 777
	for i := range ts.bankFree {
		ts.bankFree[i] = uint64(1000 + 3*i)
	}
	ts.stats = Stats{Ops: 1, BusyCycles: 2, BankConflicts: 3, StallCycles: 4, InjectedStallCycles: 5}

	var e checkpoint.Enc
	ts.SaveState(&e)

	ts2 := New(DefaultConfig())
	d := checkpoint.NewDec("sdram", 0, e.Bytes())
	if err := ts2.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if ts2.channelFree != ts.channelFree {
		t.Fatalf("channelFree %d != saved %d", ts2.channelFree, ts.channelFree)
	}
	for i := range ts.bankFree {
		if ts2.bankFree[i] != ts.bankFree[i] {
			t.Fatalf("bankFree[%d] = %d, want %d", i, ts2.bankFree[i], ts.bankFree[i])
		}
	}
	if ts2.stats != ts.stats {
		t.Fatalf("stats %+v != saved %+v", ts2.stats, ts.stats)
	}
}

// The per-bank horizon slice length cross-checks the configuration: a
// snapshot from a store with a different bank count is corruption.
func TestTagStoreRestoreBankMismatch(t *testing.T) {
	ts := New(DefaultConfig())
	var e checkpoint.Enc
	ts.SaveState(&e)

	small := DefaultConfig()
	small.Banks = 4
	err := New(small).RestoreState(checkpoint.NewDec("sdram", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", err)
	}
}
