package simbase

import (
	"testing"

	"memories/internal/addr"
	"memories/internal/cache"
	"memories/internal/workload"
)

func inclusiveCfg(l3KB int64) InclusiveConfig {
	return InclusiveConfig{
		NumCPUs: 4,
		L2:      addr.MustGeometry(16*addr.KB, 128, 2),
		L3:      addr.MustGeometry(l3KB*addr.KB, 128, 4),
		Policy:  cache.LRU,
	}
}

func TestInclusiveSimValidation(t *testing.T) {
	if _, err := NewInclusiveSim(InclusiveConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := inclusiveCfg(64)
	cfg.NumCPUs = 0
	if _, err := NewInclusiveSim(cfg); err == nil {
		t.Fatal("zero CPUs accepted")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	// Tiny direct-mapped L3 so a conflicting fill back-invalidates the
	// inclusive model's L2 while the passive model's L2 keeps its line.
	cfg := InclusiveConfig{
		NumCPUs: 1,
		L2:      addr.MustGeometry(16*addr.KB, 128, 2),
		L3:      addr.MustGeometry(512, 128, 1), // 4 sets direct mapped
		Policy:  cache.LRU,
	}
	s := MustNewInclusiveSim(cfg)
	s.Reference(0x0000, 0)
	s.Reference(0x0200, 0) // same L3 set: evicts 0x0, kills inclusive L2 copy
	if got := s.Stats().BackInvalidates; got != 1 {
		t.Fatalf("BackInvalidates = %d, want 1", got)
	}
	// Re-reference 0x0: the passive model's L2 still has it (no L3 refs);
	// the inclusive model re-misses all the way through.
	before := s.Stats()
	s.Reference(0x0000, 0)
	after := s.Stats()
	if after.PassiveL3Refs != before.PassiveL3Refs {
		t.Fatal("passive L2 lost a line it should have kept")
	}
	if after.InclusiveMisses != before.InclusiveMisses+1 {
		t.Fatal("back-invalidated line did not re-miss in the inclusive model")
	}
}

// TestPassiveMatchesInclusiveForBigL3: when the L3 never evicts (bigger
// than the touched footprint), the two models agree exactly — the
// limitation only bites under replacement.
func TestPassiveMatchesInclusiveForBigL3(t *testing.T) {
	s := MustNewInclusiveSim(inclusiveCfg(16 * 1024)) // 16MB L3
	gen := workload.NewZipfian(workload.ZipfConfig{
		NumCPUs: 4, FootprintByte: 4 * addr.MB, WriteFraction: 0, Seed: 3,
	})
	for i := 0; i < 100000; i++ {
		ref, _ := gen.Next()
		s.Reference(ref.Addr&^127, ref.CPU)
	}
	st := s.Stats()
	if st.BackInvalidates != 0 {
		t.Fatalf("16MB L3 on a 4MB footprint back-invalidated %d lines", st.BackInvalidates)
	}
	if st.PassiveMisses != st.InclusiveMisses || st.PassiveL3Refs != st.InclusiveL3Refs {
		t.Fatalf("no-eviction models diverged: %+v", st)
	}
}

// TestPassiveDivergesUnderPressure: with an L3 barely larger than the
// L2s and a footprint far beyond both, back-invalidation appears and the
// passive emulation visibly underestimates the inclusive design's L3
// reference traffic — the §3.4 effect, quantified.
func TestPassiveDivergesUnderPressure(t *testing.T) {
	s := MustNewInclusiveSim(inclusiveCfg(64)) // 64KB L3 vs 4x16KB L2
	gen := workload.NewZipfian(workload.ZipfConfig{
		NumCPUs: 4, FootprintByte: 1 * addr.MB, Skew: 1.5, WriteFraction: 0, Seed: 3,
	})
	for i := 0; i < 200000; i++ {
		ref, _ := gen.Next()
		s.Reference(ref.Addr&^127, ref.CPU)
	}
	st := s.Stats()
	if st.BackInvalidates == 0 {
		t.Fatal("no back-invalidations under heavy L3 pressure")
	}
	if st.InclusiveL3Refs <= st.PassiveL3Refs {
		t.Fatalf("inclusive L3 traffic (%d) not above passive (%d); back-invalidation cost invisible",
			st.InclusiveL3Refs, st.PassiveL3Refs)
	}
	if st.Divergence() == 0 {
		t.Fatal("zero divergence under pressure; the §3.4 limitation would be invisible")
	}
	t.Logf("passive %.4f vs inclusive %.4f (divergence %.1f%%), %d back-invalidations, L3 refs %d vs %d",
		st.PassiveMissRatio(), st.InclusiveMissRatio(), st.Divergence()*100,
		st.BackInvalidates, st.PassiveL3Refs, st.InclusiveL3Refs)
}
