// Package simbase implements the two software baselines the paper
// compares MemorIES against in §4: a trace-driven cache simulator (the
// "C simulator" of Table 3, which was also used to validate the board
// design — a role it keeps here, as the differential-testing oracle for
// internal/core) and an Augmint-like execution-driven simulator
// (Table 4).
package simbase

import (
	"fmt"
	"io"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/tracefile"
)

// TraceNodeConfig mirrors core.NodeConfig for the software simulator.
type TraceNodeConfig struct {
	CPUs     []int
	Geometry addr.Geometry
	Policy   cache.Policy
	Protocol *coherence.Table
}

// TraceNodeStats are the per-node results, directly comparable with
// core.NodeView.
type TraceNodeStats struct {
	ReadHit   uint64
	ReadMiss  uint64
	WriteHit  uint64
	WriteMiss uint64
	SatL3     uint64
	SatModInt uint64
	SatShrInt uint64
	SatMemory uint64
	Castouts  uint64
	Evictions uint64
}

// Refs returns local references (reads + writes).
func (s TraceNodeStats) Refs() uint64 {
	return s.ReadHit + s.ReadMiss + s.WriteHit + s.WriteMiss
}

// Misses returns read + write misses.
func (s TraceNodeStats) Misses() uint64 { return s.ReadMiss + s.WriteMiss }

// MissRatio returns misses over references.
func (s TraceNodeStats) MissRatio() float64 {
	if s.Refs() == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Refs())
}

// TraceSim is the trace-driven simulator: functionally identical cache
// emulation to the board, with no timing model, no transaction buffers,
// and no SDRAM pacing — it just grinds through records one at a time the
// way the paper's C simulator did.
type TraceSim struct {
	nodes    []*traceNode
	cpuOwner map[int]*traceNode
	// Filtered counts non-memory or unassigned records skipped.
	Filtered uint64
	// Processed counts records applied to the caches.
	Processed uint64
}

type traceNode struct {
	cfg   TraceNodeConfig
	eng   *coherence.Engine // compiled protocol; lookups are branch-free
	dir   *cache.Cache
	stats TraceNodeStats
}

// NewTraceSim builds a simulator over one or more emulated nodes, all in
// a single snoop domain (the common single-group configuration).
func NewTraceSim(nodes []TraceNodeConfig) (*TraceSim, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("simbase: need at least one node")
	}
	s := &TraceSim{cpuOwner: make(map[int]*traceNode)}
	for i, nc := range nodes {
		if nc.Protocol == nil {
			return nil, fmt.Errorf("simbase: node %d has no protocol", i)
		}
		eng, err := coherence.Compile(nc.Protocol)
		if err != nil {
			return nil, fmt.Errorf("simbase: node %d: %w", i, err)
		}
		dir, err := cache.New(cache.Config{Geometry: nc.Geometry, Policy: nc.Policy})
		if err != nil {
			return nil, fmt.Errorf("simbase: node %d: %v", i, err)
		}
		n := &traceNode{cfg: nc, eng: eng, dir: dir}
		for _, id := range nc.CPUs {
			if s.cpuOwner[id] != nil {
				return nil, fmt.Errorf("simbase: CPU %d assigned twice", id)
			}
			s.cpuOwner[id] = n
		}
		s.nodes = append(s.nodes, n)
	}
	return s, nil
}

// MustNewTraceSim is NewTraceSim for known-good configurations.
func MustNewTraceSim(nodes []TraceNodeConfig) *TraceSim {
	s, err := NewTraceSim(nodes)
	if err != nil {
		panic(err)
	}
	return s
}

// NodeStats returns the statistics of node i.
func (s *TraceSim) NodeStats(i int) TraceNodeStats { return s.nodes[i].stats }

// Process applies one trace record.
func (s *TraceSim) Process(rec tracefile.Record) {
	if !rec.Cmd.IsMemoryOp() {
		s.Filtered++
		return
	}
	local := s.cpuOwner[int(rec.SrcID)]
	if local == nil {
		s.Filtered++
		return
	}
	s.Processed++

	// Combined snoop input from the peers.
	snoopIn := coherence.SnoopNone
	for _, peer := range s.nodes {
		if peer == local {
			continue
		}
		st := coherence.State(peer.dir.Probe(rec.Addr))
		switch {
		case st.IsDirty():
			snoopIn = coherence.SnoopModified
		case st.IsValid() && snoopIn == coherence.SnoopNone:
			snoopIn = coherence.SnoopShared
		}
	}
	local.local(rec, snoopIn)
	for _, peer := range s.nodes {
		if peer != local {
			peer.snoop(rec)
		}
	}
}

// ProcessBatch applies a decoded batch of records in order; it is the
// slab-oriented counterpart of Process used by the streaming v2 pipeline.
func (s *TraceSim) ProcessBatch(recs []tracefile.Record) {
	for i := range recs {
		s.Process(recs[i])
	}
}

// Run drains a trace reader (either format) through the simulator,
// returning the record count.
func (s *TraceSim) Run(r tracefile.RecordReader) (uint64, error) {
	var n uint64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		s.Process(rec)
		n++
	}
}

func traceOpFor(cmd bus.Command, local bool) (coherence.Op, bool) {
	switch cmd {
	case bus.Read:
		if local {
			return coherence.LocalRead, true
		}
		return coherence.SnoopRead, true
	case bus.RWITM, bus.DClaim, bus.Flush:
		if local {
			return coherence.LocalWrite, true
		}
		return coherence.SnoopWrite, true
	case bus.Castout, bus.Clean:
		if local {
			return coherence.LocalCastout, true
		}
		return coherence.SnoopCastout, true
	default:
		return 0, false
	}
}

func (n *traceNode) local(rec tracefile.Record, snoopIn coherence.SnoopIn) {
	op, ok := traceOpFor(rec.Cmd, true)
	if !ok {
		return
	}
	cur := coherence.State(n.dir.Access(rec.Addr))
	e := n.eng.Lookup(op, cur, snoopIn)
	hit := cur.IsValid()
	switch op {
	case coherence.LocalRead:
		if hit {
			n.stats.ReadHit++
		} else {
			n.stats.ReadMiss++
		}
	case coherence.LocalWrite:
		if hit {
			n.stats.WriteHit++
		} else {
			n.stats.WriteMiss++
		}
	case coherence.LocalCastout:
		n.stats.Castouts++
	}
	if op == coherence.LocalRead || op == coherence.LocalWrite {
		switch {
		case hit:
			n.stats.SatL3++
		case snoopIn == coherence.SnoopModified:
			n.stats.SatModInt++
		case snoopIn == coherence.SnoopShared:
			n.stats.SatShrInt++
		default:
			n.stats.SatMemory++
		}
	}
	n.apply(rec.Addr, cur, e)
}

func (n *traceNode) snoop(rec tracefile.Record) {
	op, ok := traceOpFor(rec.Cmd, false)
	if !ok {
		return
	}
	cur := coherence.State(n.dir.Probe(rec.Addr))
	e := n.eng.Lookup(op, cur, coherence.SnoopNone)
	n.apply(rec.Addr, cur, e)
}

func (n *traceNode) apply(a uint64, cur coherence.State, e coherence.Entry) {
	switch {
	case cur == coherence.Invalid && e.Actions.Has(coherence.ActAllocate):
		_, evicted := n.dir.Fill(a, uint8(e.Next))
		if evicted {
			n.stats.Evictions++
		}
	case cur != coherence.Invalid && e.Next == coherence.Invalid:
		n.dir.Invalidate(a)
	case cur != coherence.Invalid && e.Next != cur:
		n.dir.SetState(a, uint8(e.Next))
	}
}
