package simbase

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/cache"
)

// InclusiveSim quantifies the board's §3.4 limitation. MemorIES is
// passive: "when a line gets replaced in the L3 cache, the line cannot be
// invalidated in the lower levels (L1 and L2). Therefore, it cannot
// emulate accurately a fully-inclusive L3 cache."
//
// The simulator runs one *raw* (pre-L2) reference stream through two
// complete L2+L3 models side by side:
//
//   - the passive model, matching reality under the board: private L2s
//     whose misses feed an L3 that never back-invalidates them;
//   - an inclusive oracle: identical L2s and L3, but every L3 eviction
//     back-invalidates the L2s, so lines the processors still wanted
//     re-miss — first into the L3, sometimes all the way to memory.
//
// The divergence between the two L3 miss ratios is the emulation error
// the paper concedes. Note the raw stream is required: a captured *bus*
// trace is already L2-filtered and cannot reveal when a back-invalidated
// line would have been re-referenced — which is exactly why the paper
// notes that "all trace driven simulations using bus traces also have
// the same limitation".
type InclusiveSim struct {
	passive   *twoLevel
	inclusive *twoLevel
	stats     InclusiveStats
}

// twoLevel is one private-L2s-plus-shared-L3 model.
type twoLevel struct {
	l2        []*cache.Cache
	l3        *cache.Cache
	inclusive bool

	l3Refs, l3Misses, backInvals uint64
}

func (m *twoLevel) reference(a uint64, cpu int) {
	if m.l2[cpu].Access(a) != cache.StateInvalid {
		return // L2 hit: invisible below
	}
	m.l3Refs++
	if m.l3.Access(a) == cache.StateInvalid {
		m.l3Misses++
		victim, evicted := m.l3.Fill(a, 1)
		if evicted && m.inclusive {
			for _, l2 := range m.l2 {
				if _, found := l2.Invalidate(victim.Addr); found {
					m.backInvals++
				}
			}
		}
	}
	m.l2[cpu].Fill(a, 1)
}

// InclusiveStats are the paired results.
type InclusiveStats struct {
	Refs uint64 // raw references processed

	PassiveL3Refs   uint64
	PassiveMisses   uint64
	InclusiveL3Refs uint64
	InclusiveMisses uint64
	BackInvalidates uint64 // L2 lines killed by inclusive L3 evictions
}

// PassiveMissRatio returns the board-style L3 miss ratio.
func (s InclusiveStats) PassiveMissRatio() float64 {
	if s.PassiveL3Refs == 0 {
		return 0
	}
	return float64(s.PassiveMisses) / float64(s.PassiveL3Refs)
}

// InclusiveMissRatio returns the oracle inclusive L3 miss ratio.
func (s InclusiveStats) InclusiveMissRatio() float64 {
	if s.InclusiveL3Refs == 0 {
		return 0
	}
	return float64(s.InclusiveMisses) / float64(s.InclusiveL3Refs)
}

// Divergence returns the relative error of the passive emulation against
// the inclusive oracle (0 = identical).
func (s InclusiveStats) Divergence() float64 {
	inc := s.InclusiveMissRatio()
	if inc == 0 {
		return 0
	}
	d := s.PassiveMissRatio()/inc - 1
	if d < 0 {
		return -d
	}
	return d
}

// InclusiveConfig sizes the paired models.
type InclusiveConfig struct {
	NumCPUs int
	L2      addr.Geometry // private L2, per CPU
	L3      addr.Geometry // the emulated cache under study
	Policy  cache.Policy
}

// NewInclusiveSim builds the paired simulator.
func NewInclusiveSim(cfg InclusiveConfig) (*InclusiveSim, error) {
	if cfg.NumCPUs <= 0 {
		return nil, fmt.Errorf("simbase: NumCPUs must be positive")
	}
	if cfg.L2.Sets == 0 || cfg.L3.Sets == 0 {
		return nil, fmt.Errorf("simbase: L2 and L3 geometries required")
	}
	build := func(inclusive bool) (*twoLevel, error) {
		l3, err := cache.New(cache.Config{Geometry: cfg.L3, Policy: cfg.Policy})
		if err != nil {
			return nil, err
		}
		m := &twoLevel{l3: l3, inclusive: inclusive}
		for i := 0; i < cfg.NumCPUs; i++ {
			l2, err := cache.New(cache.Config{Geometry: cfg.L2, Policy: cfg.Policy})
			if err != nil {
				return nil, err
			}
			m.l2 = append(m.l2, l2)
		}
		return m, nil
	}
	passive, err := build(false)
	if err != nil {
		return nil, err
	}
	inclusive, err := build(true)
	if err != nil {
		return nil, err
	}
	return &InclusiveSim{passive: passive, inclusive: inclusive}, nil
}

// MustNewInclusiveSim is NewInclusiveSim for known-good configurations.
func MustNewInclusiveSim(cfg InclusiveConfig) *InclusiveSim {
	s, err := NewInclusiveSim(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Reference processes one raw (pre-L2) reference through both models.
func (s *InclusiveSim) Reference(a uint64, cpu int) {
	s.stats.Refs++
	s.passive.reference(a, cpu%len(s.passive.l2))
	s.inclusive.reference(a, cpu%len(s.inclusive.l2))
}

// Stats returns the paired results.
func (s *InclusiveSim) Stats() InclusiveStats {
	st := s.stats
	st.PassiveL3Refs = s.passive.l3Refs
	st.PassiveMisses = s.passive.l3Misses
	st.InclusiveL3Refs = s.inclusive.l3Refs
	st.InclusiveMisses = s.inclusive.l3Misses
	st.BackInvalidates = s.inclusive.backInvals
	return st
}
