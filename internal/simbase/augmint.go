package simbase

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/cache"
	"memories/internal/workload"
)

// Augmint is an execution-driven simulator in the style of the Augmint
// toolkit the paper benchmarks against in Table 4. Where the board (and
// the host it rides on) observe references at bus speed, an
// execution-driven simulator must *interpret every instruction* of the
// workload and run each memory reference through a software cache model.
// That interpretation is exactly where the 100-1000x slowdowns of §4.2
// come from, so this model performs real per-instruction work — its
// measured wall-clock time is the Table 4 baseline.
type Augmint struct {
	cfg   AugmintConfig
	l1    []*cache.Cache
	l2    []*cache.Cache
	stats AugmintStats

	// checksum accumulates per-instruction interpreter work; keeping it
	// as state stops the compiler from discarding the loop.
	checksum uint64
}

// AugmintConfig sizes the simulated target machine.
type AugmintConfig struct {
	NumCPUs int
	// WorkPerInstr is the number of interpreter operations performed per
	// simulated instruction (decode + execute + address translation);
	// higher is slower, as with more detailed simulators.
	WorkPerInstr int
	// L1Bytes/L2Bytes size the simulated caches (direct-mapped here, as
	// the original toolkit's fast mode).
	L1Bytes  int64
	L2Bytes  int64
	LineSize int64
}

// DefaultAugmintConfig simulates the paper's 8-way target.
func DefaultAugmintConfig() AugmintConfig {
	return AugmintConfig{
		NumCPUs:      8,
		WorkPerInstr: 12,
		L1Bytes:      64 * addr.KB,
		L2Bytes:      8 * addr.MB,
		LineSize:     128,
	}
}

// AugmintStats are the simulation results.
type AugmintStats struct {
	Refs         uint64
	Instructions uint64
	L1Misses     uint64
	L2Misses     uint64
}

// NewAugmint builds the simulator.
func NewAugmint(cfg AugmintConfig) (*Augmint, error) {
	if cfg.NumCPUs <= 0 {
		return nil, fmt.Errorf("simbase: NumCPUs must be positive")
	}
	if cfg.WorkPerInstr <= 0 {
		cfg.WorkPerInstr = 12
	}
	a := &Augmint{cfg: cfg}
	for i := 0; i < cfg.NumCPUs; i++ {
		g1, err := addr.NewGeometry(cfg.L1Bytes, cfg.LineSize, 1)
		if err != nil {
			return nil, err
		}
		g2, err := addr.NewGeometry(cfg.L2Bytes, cfg.LineSize, 1)
		if err != nil {
			return nil, err
		}
		a.l1 = append(a.l1, cache.MustNew(cache.Config{Geometry: g1, Policy: cache.LRU}))
		a.l2 = append(a.l2, cache.MustNew(cache.Config{Geometry: g2, Policy: cache.LRU}))
	}
	return a, nil
}

// Stats returns the results so far.
func (a *Augmint) Stats() AugmintStats { return a.stats }

// Checksum exposes the interpreter state so callers (and the compiler)
// treat the per-instruction work as live.
func (a *Augmint) Checksum() uint64 { return a.checksum }

// Run interprets up to n references of the workload, returning how many
// were processed.
func (a *Augmint) Run(gen workload.Generator, n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		ref, ok := gen.Next()
		if !ok {
			break
		}
		a.step(ref)
	}
	return i
}

// step interprets one reference: the instructions leading to it, then the
// memory access through the two-level cache model.
func (a *Augmint) step(ref workload.Ref) {
	a.stats.Refs++
	a.stats.Instructions += ref.Instrs

	// Instruction interpretation: decode/dispatch work per instruction.
	work := ref.Instrs * uint64(a.cfg.WorkPerInstr)
	c := a.checksum
	for j := uint64(0); j < work; j++ {
		c = c*6364136223846793005 + 1442695040888963407 // LCG step per op
	}
	a.checksum = c

	cpu := ref.CPU % a.cfg.NumCPUs
	if a.l1[cpu].Access(ref.Addr) == cache.StateInvalid {
		a.stats.L1Misses++
		if a.l2[cpu].Access(ref.Addr) == cache.StateInvalid {
			a.stats.L2Misses++
			a.l2[cpu].Fill(ref.Addr, 1)
		}
		a.l1[cpu].Fill(ref.Addr, 1)
	}
}
