package simbase

import "memories/internal/checkpoint"

// SaveState serializes the trace simulator: global record counts and,
// per node, the directory image and result counters. Node configuration
// is cross-checked structurally by the cache restore, not stored.
func (s *TraceSim) SaveState(e *checkpoint.Enc) {
	e.U64(s.Filtered)
	e.U64(s.Processed)
	e.U32(uint32(len(s.nodes)))
	for _, n := range s.nodes {
		n.dir.SaveState(e)
		e.U64(n.stats.ReadHit)
		e.U64(n.stats.ReadMiss)
		e.U64(n.stats.WriteHit)
		e.U64(n.stats.WriteMiss)
		e.U64(n.stats.SatL3)
		e.U64(n.stats.SatModInt)
		e.U64(n.stats.SatShrInt)
		e.U64(n.stats.SatMemory)
		e.U64(n.stats.Castouts)
		e.U64(n.stats.Evictions)
	}
}

// RestoreState loads a checkpointed simulator state into an identically
// configured one.
func (s *TraceSim) RestoreState(d *checkpoint.Dec) error {
	filtered := d.U64()
	processed := d.U64()
	if got, want := int(d.U32()), len(s.nodes); got != want {
		return d.Failf("node count %d != configured %d", got, want)
	}
	for _, n := range s.nodes {
		if _, err := n.dir.RestoreState(d); err != nil {
			return err
		}
		n.stats.ReadHit = d.U64()
		n.stats.ReadMiss = d.U64()
		n.stats.WriteHit = d.U64()
		n.stats.WriteMiss = d.U64()
		n.stats.SatL3 = d.U64()
		n.stats.SatModInt = d.U64()
		n.stats.SatShrInt = d.U64()
		n.stats.SatMemory = d.U64()
		n.stats.Castouts = d.U64()
		n.stats.Evictions = d.U64()
	}
	if d.Err() != nil {
		return d.Err()
	}
	s.Filtered = filtered
	s.Processed = processed
	return nil
}
