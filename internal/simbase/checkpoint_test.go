package simbase

import (
	"errors"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/checkpoint"
	"memories/internal/coherence"
	"memories/internal/tracefile"
)

func ckptNodeConfig() []TraceNodeConfig {
	return []TraceNodeConfig{{
		CPUs:     []int{0, 1, 2, 3},
		Geometry: addr.MustGeometry(256*addr.KB, 128, 4),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}}
}

// feed drives n deterministic records (mixed reads and stores from all
// four CPUs) through the simulator.
func feed(s *TraceSim, seed uint64, n int) {
	a := seed
	for i := 0; i < n; i++ {
		a = a*6364136223846793005 + 1442695040888963407
		rec := tracefile.Record{
			Addr:  ((a >> 16) % (1 << 22)) &^ 7,
			Cmd:   bus.Read,
			SrcID: uint8(i % 4),
		}
		if i%3 == 0 {
			rec.Cmd = bus.RWITM
		}
		s.Process(rec)
	}
}

// Save mid-replay, restore into a twin, continue both on the same tail:
// the per-node results and global counts must stay identical — the
// resume guarantee cmd/tracesim depends on.
func TestTraceSimCheckpointContinuation(t *testing.T) {
	s := MustNewTraceSim(ckptNodeConfig())
	feed(s, 42, 10_000)

	var e checkpoint.Enc
	s.SaveState(&e)

	s2 := MustNewTraceSim(ckptNodeConfig())
	d := checkpoint.NewDec("tracesim", 0, e.Bytes())
	if err := s2.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d unread payload bytes", d.Remaining())
	}
	if s2.Processed != s.Processed || s2.Filtered != s.Filtered {
		t.Fatalf("counts (%d,%d) != saved (%d,%d)", s2.Processed, s2.Filtered, s.Processed, s.Filtered)
	}

	feed(s, 7, 5_000)
	feed(s2, 7, 5_000)
	if s2.NodeStats(0) != s.NodeStats(0) {
		t.Fatalf("node stats diverge after resume:\n%+v\n%+v", s2.NodeStats(0), s.NodeStats(0))
	}
	if s2.Processed != s.Processed || s2.Filtered != s.Filtered {
		t.Fatalf("counts diverge after resume: (%d,%d) vs (%d,%d)",
			s2.Processed, s2.Filtered, s.Processed, s.Filtered)
	}
}

// A snapshot from a different node topology is rejected as corruption.
func TestTraceSimRestoreNodeCountMismatch(t *testing.T) {
	s := MustNewTraceSim(ckptNodeConfig())
	feed(s, 1, 100)
	var e checkpoint.Enc
	s.SaveState(&e)

	two := append(ckptNodeConfig(), ckptNodeConfig()...)
	two[1].CPUs = []int{4, 5, 6, 7}
	err := MustNewTraceSim(two).RestoreState(checkpoint.NewDec("tracesim", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", err)
	}
}
