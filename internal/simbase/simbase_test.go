package simbase

import (
	"bytes"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/internal/tracefile"
	"memories/internal/workload"
)

func traceNodeCfg(cpus []int, sizeKB int64, assoc int) TraceNodeConfig {
	return TraceNodeConfig{
		CPUs:     cpus,
		Geometry: addr.MustGeometry(sizeKB*addr.KB, 128, assoc),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}
}

func TestTraceSimBasics(t *testing.T) {
	s := MustNewTraceSim([]TraceNodeConfig{traceNodeCfg([]int{0, 1}, 64, 4)})
	s.Process(tracefile.Record{Addr: 0x1000, Cmd: bus.Read, SrcID: 0})
	s.Process(tracefile.Record{Addr: 0x1000, Cmd: bus.Read, SrcID: 1})
	s.Process(tracefile.Record{Addr: 0x1000, Cmd: bus.IORead, SrcID: 0}) // filtered
	s.Process(tracefile.Record{Addr: 0x1000, Cmd: bus.Read, SrcID: 9})   // unassigned
	st := s.NodeStats(0)
	if st.ReadMiss != 1 || st.ReadHit != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Filtered != 2 || s.Processed != 2 {
		t.Fatalf("filtered=%d processed=%d", s.Filtered, s.Processed)
	}
	if st.MissRatio() != 0.5 {
		t.Fatalf("miss ratio = %v", st.MissRatio())
	}
}

func TestTraceSimValidation(t *testing.T) {
	if _, err := NewTraceSim(nil); err == nil {
		t.Fatal("accepted empty config")
	}
	nc := traceNodeCfg([]int{0}, 64, 4)
	nc.Protocol = nil
	if _, err := NewTraceSim([]TraceNodeConfig{nc}); err == nil {
		t.Fatal("accepted nil protocol")
	}
	if _, err := NewTraceSim([]TraceNodeConfig{
		traceNodeCfg([]int{0}, 64, 4),
		traceNodeCfg([]int{0}, 64, 4),
	}); err == nil {
		t.Fatal("accepted duplicate CPU")
	}
}

func TestTraceSimRunFromFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := tracefile.NewWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.Write(tracefile.Record{Addr: uint64(i%8) * 128, Cmd: bus.Read, SrcID: uint8(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := tracefile.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := MustNewTraceSim([]TraceNodeConfig{traceNodeCfg([]int{0, 1}, 64, 4)})
	n, err := s.Run(r)
	if err != nil || n != 100 {
		t.Fatalf("Run = %d, %v", n, err)
	}
	st := s.NodeStats(0)
	if st.ReadMiss != 8 || st.ReadHit != 92 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDifferentialBoardVsTraceSim is the validation exercise the paper
// itself performed ("a trace-driven C simulator ... was used as one of
// the methods to validate the MemorIES design"): identical streams
// through the board (with its buffers, SDRAM pacing, lock-step service)
// and the functional simulator must produce identical cache statistics.
func TestDifferentialBoardVsTraceSim(t *testing.T) {
	boardCfg := core.Config{Nodes: []core.NodeConfig{
		{
			Name:     "a",
			CPUs:     []int{0, 1, 2, 3},
			Geometry: addr.MustGeometry(128*addr.KB, 128, 4),
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		},
		{
			Name:     "b",
			CPUs:     []int{4, 5, 6, 7},
			Geometry: addr.MustGeometry(64*addr.KB, 128, 2),
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		},
	}}
	b := core.MustNewBoard(boardCfg)
	s := MustNewTraceSim([]TraceNodeConfig{
		{CPUs: []int{0, 1, 2, 3}, Geometry: addr.MustGeometry(128*addr.KB, 128, 4), Policy: cache.LRU, Protocol: coherence.MESI()},
		{CPUs: []int{4, 5, 6, 7}, Geometry: addr.MustGeometry(64*addr.KB, 128, 2), Policy: cache.LRU, Protocol: coherence.MESI()},
	})

	rng := workload.NewRNG(1234)
	cmds := []bus.Command{bus.Read, bus.Read, bus.Read, bus.RWITM, bus.DClaim, bus.Castout, bus.IORead}
	cycle := uint64(0)
	for i := 0; i < 300000; i++ {
		cmd := cmds[rng.Intn(int64(len(cmds)))]
		a := uint64(rng.Intn(1<<21)) &^ 127 // 2MB footprint, heavy conflict
		src := int(rng.Intn(8))
		cycle += 1 + uint64(rng.Intn(60))
		b.Snoop(&bus.Transaction{Cmd: cmd, Addr: a, Size: 128, SrcID: src, Cycle: cycle})
		s.Process(tracefile.Record{Addr: a, Cmd: cmd, SrcID: uint8(src)})
	}
	b.Flush()

	for i := 0; i < 2; i++ {
		bv := b.Node(i)
		sv := s.NodeStats(i)
		if bv.ReadHit != sv.ReadHit || bv.ReadMiss != sv.ReadMiss ||
			bv.WriteHit != sv.WriteHit || bv.WriteMiss != sv.WriteMiss {
			t.Fatalf("node %d hit/miss diverged: board %+v vs sim %+v", i, bv, sv)
		}
		if bv.SatL3 != sv.SatL3 || bv.SatModInt != sv.SatModInt ||
			bv.SatShrInt != sv.SatShrInt || bv.SatMemory != sv.SatMemory {
			t.Fatalf("node %d satisfaction diverged: board %+v vs sim %+v", i, bv, sv)
		}
		if bv.Evictions != sv.Evictions {
			t.Fatalf("node %d evictions diverged: %d vs %d", i, bv.Evictions, sv.Evictions)
		}
	}
}

func TestAugmintInterpretsInstructions(t *testing.T) {
	a, err := NewAugmint(DefaultAugmintConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniform(workload.UniformConfig{NumCPUs: 8, FootprintByte: 4 * addr.MB, Seed: 1})
	n := a.Run(gen, 10000)
	if n != 10000 {
		t.Fatalf("Run = %d", n)
	}
	st := a.Stats()
	if st.Refs != 10000 || st.Instructions == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.L1Misses == 0 || st.L2Misses == 0 {
		t.Fatalf("cache model inert: %+v", st)
	}
	if a.Checksum() == 0 {
		t.Fatal("interpreter work optimized away")
	}
}

func TestAugmintStopsAtStreamEnd(t *testing.T) {
	a, _ := NewAugmint(DefaultAugmintConfig())
	gen := workload.Limit(workload.NewUniform(workload.UniformConfig{NumCPUs: 2, FootprintByte: addr.MB}), 50)
	if n := a.Run(gen, 1000); n != 50 {
		t.Fatalf("Run = %d, want 50", n)
	}
}

func TestAugmintValidation(t *testing.T) {
	cfg := DefaultAugmintConfig()
	cfg.NumCPUs = 0
	if _, err := NewAugmint(cfg); err == nil {
		t.Fatal("accepted zero CPUs")
	}
	cfg = DefaultAugmintConfig()
	cfg.L1Bytes = 100
	if _, err := NewAugmint(cfg); err == nil {
		t.Fatal("accepted bad geometry")
	}
}
