package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/host"
	"memories/internal/stats"
	"memories/internal/workload/splash"
)

// splashHostRun runs one kernel on a host with the given L2 and returns
// the host (for stats).
func splashHostRun(name string, size splash.Size, l2Bytes int64, l2Assoc int, refs, seed uint64) (*host.Host, error) {
	hcfg := host.DefaultConfig()
	hcfg.L2Bytes = l2Bytes
	hcfg.L2Assoc = l2Assoc
	gen := splash.New(name, size, hcfg.NumCPUs, seed)
	if gen == nil {
		return nil, fmt.Errorf("unknown kernel %q", name)
	}
	h, err := host.New(hcfg, gen)
	if err != nil {
		return nil, err
	}
	h.Run(refs)
	return h, nil
}

// paperFootprintsGB and paperRuntimes record Table 5's published values
// for side-by-side comparison in the output.
var paperTable5 = map[string]struct {
	footprintGB  float64
	runtimeBig   int // seconds, 8MB 4-way L2
	runtimeSmall int // seconds, 1MB direct-mapped L2
}{
	splash.NameFMM:    {8.34, 633, 653},
	splash.NameFFT:    {12.58, 777, 853},
	splash.NameOcean:  {14.5, 860, 971},
	splash.NameWater:  {1.38, 1794, 2008},
	splash.NameBarnes: {3.1, 2021, 2082},
}

// runTable5 reproduces Table 5: the SPLASH2 applications' memory
// footprints at full size and their runtimes with the two L2
// configurations the S7A supports at boot (8MB 4-way vs 1MB
// direct-mapped). Runtimes are modeled from a fixed work sample; the
// shape claim is that shrinking the L2 slows every application, modestly.
func runTable5(p Preset) (*Result, error) {
	t := stats.NewTable(
		"TABLE 5. SPLASH2 Application Characteristics (8 processors)",
		"Application", "Footprint (GB)", "Paper (GB)",
		"Runtime 8MB 4-way (model s)", "Runtime 1MB DM (model s)",
		"Paper (s)", "Paper (s)")

	res := &Result{}
	for _, name := range splash.Names() {
		gen := splash.New(name, splash.SizePaper, 8, p.SplashSeed)
		gb := splash.FootprintGB(gen)
		ref := paperTable5[name]

		big, err := splashHostRun(name, splash.SizePaper, 8*addr.MB, 4, p.Table56Refs, p.SplashSeed)
		if err != nil {
			return nil, err
		}
		small, err := splashHostRun(name, splash.SizePaper, 1*addr.MB, 1, p.Table56Refs, p.SplashSeed)
		if err != nil {
			return nil, err
		}
		bigSec := big.EstimatedRuntimeSeconds()
		smallSec := small.EstimatedRuntimeSeconds()
		t.AddRow(name, gb, ref.footprintGB, bigSec, smallSec, ref.runtimeBig, ref.runtimeSmall)

		if gb < ref.footprintGB*0.85 || gb > ref.footprintGB*1.15 {
			return nil, fmt.Errorf("table5 %s: footprint %.2fGB vs paper %.2fGB (>15%% off)", name, gb, ref.footprintGB)
		}
		if smallSec <= bigSec {
			return nil, fmt.Errorf("table5 %s: 1MB DM L2 (%.3fs) not slower than 8MB 4-way (%.3fs)",
				name, smallSec, bigSec)
		}
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		fmt.Sprintf("runtimes modeled over a %d-reference sample of each kernel; the paper's column shows full-run wall clock", p.Table56Refs),
		"shape: every application runs slower with the 1MB direct-mapped L2, as in the paper",
	)
	return res, nil
}

// paperTable6 records the published miss rates (misses per 1000
// instructions).
var paperTable6 = map[string]struct{ classic, paper float64 }{
	splash.NameFMM:    {0.33, 0.7},
	splash.NameFFT:    {5.5, 0.3},
	splash.NameOcean:  {3.7, 8.2},
	splash.NameWater:  {0.073, 0.2},
	splash.NameBarnes: {0.11, 0.3},
}

// runTable6 reproduces Table 6: miss rates (per 1000 instructions) for
// the classic SPLASH2 problem sizes on a 1MB 4-way cache versus the
// paper's full sizes on an 8MB 2-way L2. The paper's point: the scalings
// used in simulation studies mispredict full-size behaviour — most
// applications miss *more* at full size, while FFT misses far *less*.
func runTable6(p Preset) (*Result, error) {
	t := stats.NewTable(
		"TABLE 6. Miss Rates (misses per 1000 instructions)",
		"Application", "Classic size, 1MB 4-way", "Full size, 8MB 2-way",
		"Paper classic", "Paper full")

	rate := func(h *host.Host) float64 {
		s := h.Stats()
		return stats.Ratio(s.L2Misses, s.Instructions) * 1000
	}

	res := &Result{}
	for _, name := range splash.Names() {
		classicHost, err := splashHostRun(name, splash.SizeClassic, 1*addr.MB, 4, p.Table56Refs, p.SplashSeed)
		if err != nil {
			return nil, err
		}
		paperHost, err := splashHostRun(name, splash.SizePaper, 8*addr.MB, 2, p.Table56Refs, p.SplashSeed)
		if err != nil {
			return nil, err
		}
		classic, full := rate(classicHost), rate(paperHost)
		ref := paperTable6[name]
		t.AddRow(name, classic, full, ref.classic, ref.paper)

		if name == splash.NameFFT {
			if full > classic*0.5 {
				return nil, fmt.Errorf("table6 fft: full-size rate %.2f not well below classic %.2f", full, classic)
			}
		} else if full < classic*1.01 {
			return nil, fmt.Errorf("table6 %s: full-size rate %.2f not above classic %.2f", name, full, classic)
		}
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"shape: FFT's full-size miss rate drops well below the scaled size; every other application misses more at full size — scaled studies are optimistic (paper §5.3)",
		"absolute rates differ from the paper because the synthetic kernels emit only cache-relevant references (pure register/L1 work is folded into per-reference instruction counts)",
	)
	return res, nil
}
