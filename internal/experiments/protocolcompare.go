package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/core"
	"memories/internal/parallel"
	"memories/internal/stats"
	"memories/internal/workload"
	"memories/protocols"
)

// runProtocolCompare exercises the board's defining feature — the
// protocol is a loadable table, not wired logic (§3.2) — by running the
// identical TPC-C stream (the fig8 workload) under all four shipped
// protocols on a two-node snooping board and comparing the coherence
// traffic each table generates. Every table is loaded from its map
// file through the full compile + model-check gauntlet, exactly the
// path a user-supplied protocol takes.
func runProtocolCompare(p Preset) (*Result, error) {
	hcfg := dbHostConfig(p)
	if hcfg.NumCPUs%2 != 0 {
		return nil, fmt.Errorf("protocolcompare: need an even CPU count, got %d", hcfg.NumCPUs)
	}
	half := hcfg.NumCPUs / 2
	cpusA, cpusB := allCPUs(hcfg.NumCPUs)[:half], allCPUs(hcfg.NumCPUs)[half:]
	cacheBytes := p.Fig9CacheMB * addr.MB
	refs := p.Fig8Short

	names := []string{"msi", "mesi", "moesi", "write-once"}
	type row struct {
		name                string
		refs, misses        uint64
		upgrades            uint64
		invalidations       uint64
		writebacks          uint64
		satModInt, satShrIn uint64
	}
	rows, err := parallel.Map(p.Parallel, len(names), func(i int) (row, error) {
		tab, err := protocols.Load(names[i])
		if err != nil {
			return row{}, err
		}
		pp := p
		pp.Protocol = tab
		// Two nodes share snoop group 0, so cross-node references to
		// TPC-C's shared tables produce real snoop traffic.
		nodes := []core.NodeConfig{
			stdNode(pp, "a", cpusA, cacheBytes, 128, 8, 0),
			stdNode(pp, "b", cpusB, cacheBytes, 128, 8, 0),
		}
		newGen := func() workload.Generator { return workload.NewTPCC(workload.ScaledTPCCConfig(p.TPCCFactor)) }
		b, _, err := boardRun(pp, names[i], hcfg, newGen, core.Config{Nodes: nodes}, refs)
		if err != nil {
			return row{}, err
		}
		r := row{name: names[i]}
		for n := 0; n < b.NumNodes(); n++ {
			v := b.Node(n)
			r.refs += v.Refs()
			r.misses += v.Misses()
		}
		snap := b.Counters().Snapshot()
		for _, node := range []string{"nodea.", "nodeb."} {
			r.upgrades += snap[node+"upgrades"]
			r.invalidations += snap[node+"snoop.invalidated"]
			r.writebacks += snap[node+"writeback"]
			r.satModInt += snap[node+"satisfied.mod-int"]
			r.satShrIn += snap[node+"satisfied.shr-int"]
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		"PROTOCOL COMPARISON. Identical TPC-C stream, four loadable protocol tables",
		"protocol", "miss ratio", "upgrades", "invalidations", "writebacks", "mod-int", "shr-int")
	for _, r := range rows {
		t.AddRow(r.name, stats.Ratio(r.misses, r.refs),
			r.upgrades, r.invalidations, r.writebacks, r.satModInt, r.satShrIn)
	}
	res := &Result{Tables: []*stats.Table{t}}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"2 nodes x %d CPUs, %s per node, %d refs; every table loaded from protocols/*.map via compile + model check",
		half, addr.FormatSize(cacheBytes), refs))

	// Shape checks.
	byName := map[string]row{}
	for _, r := range rows {
		byName[r.name] = r
	}
	msi, mesi, moesi, wonce := byName["msi"], byName["mesi"], byName["moesi"], byName["write-once"]

	// Same deterministic stream: every protocol must see the same
	// references (protocols change sourcing and traffic, not the
	// reference stream).
	for _, r := range rows {
		if r.refs != mesi.refs {
			return nil, fmt.Errorf("protocolcompare: %s saw %d refs, mesi %d — streams diverged",
				r.name, r.refs, mesi.refs)
		}
	}
	// MSI has no Exclusive state, so a read followed by a private write
	// always pays an S->M upgrade that MESI's silent E->M avoids.
	if msi.upgrades <= mesi.upgrades {
		return nil, fmt.Errorf("protocolcompare: msi upgrades (%d) not above mesi (%d)",
			msi.upgrades, mesi.upgrades)
	}
	// MOESI's Owned state keeps dirty data supplying interventions
	// instead of writing back on a snooped read.
	if moesi.writebacks > mesi.writebacks {
		return nil, fmt.Errorf("protocolcompare: moesi writebacks (%d) above mesi (%d)",
			moesi.writebacks, mesi.writebacks)
	}
	if moesi.satModInt < mesi.satModInt {
		return nil, fmt.Errorf("protocolcompare: moesi mod-int satisfaction (%d) below mesi (%d)",
			moesi.satModInt, mesi.satModInt)
	}
	// Write-once differs from MESI only in where a write miss sources
	// its data (memory, never intervention), which this counter model
	// does not price — identical miss counts are the expected result
	// and prove the stream really is protocol-independent.
	if wonce.misses != mesi.misses {
		return nil, fmt.Errorf("protocolcompare: write-once misses (%d) diverge from mesi (%d)",
			wonce.misses, mesi.misses)
	}
	res.Notes = append(res.Notes,
		"shape: msi pays upgrades mesi avoids via E; moesi trades writebacks for dirty interventions; write-once tracks mesi at this abstraction")
	return res, nil
}
