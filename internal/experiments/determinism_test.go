package experiments

import (
	"bytes"
	"io"
	"testing"
	"time"

	"memories/internal/addr"
	"memories/internal/host"
	"memories/internal/obs"
	"memories/internal/workload"
)

// obsRun executes one experiment with a live sampler attached to a
// fresh registry and returns the final rendered snapshot (Prometheus
// text) plus the snapshot itself.
func obsRun(t *testing.T, id string, parallel int) (string, *obs.Snapshot) {
	t.Helper()
	reg := obs.NewRegistry()
	sampler := &obs.Sampler{Reg: reg, Interval: 10 * time.Millisecond, JSONL: io.Discard}
	sampler.Start()
	_, err := RunWith(id, ScaleCI, Options{Parallel: parallel, Obs: reg})
	sampler.Stop()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.String(), snap
}

// TestSnapshotDeterministic is the ISSUE 5 determinism criterion: a
// serial run and a -parallel run of the same experiment, each with a
// live sampler snapshotting mid-flight, end with bit-identical final
// registry snapshots — every board publishes exact values at its
// quiesce point, so concurrency and sampling cadence leave no residue.
func TestSnapshotDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-experiment determinism skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("full-experiment determinism skipped under the race detector (package timeout)")
	}
	// A board-driven experiment only: table1/table3 and friends compute
	// from models or the software simulator and publish no board scopes.
	for _, id := range []string{"fig8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serialProm, serialSnap := obsRun(t, id, 1)
			parProm, _ := obsRun(t, id, 8)
			if serialProm != parProm {
				t.Errorf("final Prometheus snapshots differ between -parallel 1 and 8:\n--- serial ---\n%s--- parallel ---\n%s",
					serialProm, parProm)
			}
			if len(serialSnap.Counters) == 0 {
				t.Fatal("experiment published no counters")
			}
			// JSON-lines rendering of the same snapshot is deterministic too.
			var a, b bytes.Buffer
			if err := obs.WriteJSON(&a, serialSnap); err != nil {
				t.Fatal(err)
			}
			if err := obs.WriteJSON(&b, serialSnap); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Error("JSON rendering not deterministic")
			}
		})
	}
}

// TestObsRerunSameScopeFails documents the one-scope-per-run rule: a
// second board attaching under an already-used scope on the same
// registry fails loudly instead of silently double-counting. This is
// what a caller hits when re-running the same experiment ID against the
// same Options.Obs registry.
func TestObsRerunSameScopeFails(t *testing.T) {
	hcfg := host.DefaultConfig()
	newGen := func() workload.Generator {
		return workload.NewZipfian(workload.ZipfConfig{
			NumCPUs: hcfg.NumCPUs, FootprintByte: 32 * addr.MB, WriteFraction: 0.25, Seed: 9,
		})
	}
	p := Preset{Obs: obs.NewRegistry(), ObsScope: "fig8"}
	sizes := []int64{2 * 1024 * 1024}
	if _, err := cacheSweep(p, "tpcc.long", hcfg, newGen, sizes, 128, 4, 10_000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cacheSweep(p, "tpcc.long", hcfg, newGen, sizes, 128, 4, 10_000, 1); err == nil {
		t.Fatal("second sweep on the same registry scope did not fail")
	}
}
