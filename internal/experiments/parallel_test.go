package experiments

import (
	"testing"

	"memories/internal/addr"
	"memories/internal/host"
	"memories/internal/workload"
)

// TestSweepParallelEquivalence: the rig's sweep primitives produce
// bit-identical per-node views (hits, misses, interventions, castouts —
// every field) at every parallelism level, because each sweep point owns
// a fresh board, host, and seeded generator.
func TestSweepParallelEquivalence(t *testing.T) {
	hcfg := host.DefaultConfig()
	newGen := func() workload.Generator {
		return workload.NewZipfian(workload.ZipfConfig{
			NumCPUs: hcfg.NumCPUs, FootprintByte: 32 * addr.MB, WriteFraction: 0.25, Seed: 9,
		})
	}
	// Six sizes = two board batches, so batch-level parallelism is real.
	sizes := []int64{addr.MB, 2 * addr.MB, 4 * addr.MB, 8 * addr.MB, 16 * addr.MB, 32 * addr.MB}
	refs := uint64(120_000)
	pars := []int{4, 8}
	if raceDetectorEnabled {
		refs = 20_000
		pars = []int{4}
	}

	serialViews, err := cacheSweep(Preset{}, "serial", hcfg, newGen, sizes, 128, 4, refs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range pars {
		views, err := cacheSweep(Preset{}, "par", hcfg, newGen, sizes, 128, 4, refs, par)
		if err != nil {
			t.Fatal(err)
		}
		if len(views) != len(serialViews) {
			t.Fatalf("par %d: %d views, serial %d", par, len(views), len(serialViews))
		}
		for i := range views {
			if views[i] != serialViews[i] {
				t.Fatalf("par %d: size %s view %+v, serial %+v",
					par, addr.FormatSize(sizes[i]), views[i], serialViews[i])
			}
		}
	}

	serialMiss, err := procSweep(Preset{}, "serial", hcfg, newGen, 2*addr.MB, 128, 4, refs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	parMiss, err := procSweep(Preset{}, "par", hcfg, newGen, 2*addr.MB, 128, 4, refs, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if parMiss != serialMiss {
		t.Fatalf("procSweep par 8 miss ratio %v, serial %v", parMiss, serialMiss)
	}
}

// deterministicCells strips the wall-clock columns of table3 (measured
// simulator time and the speedup derived from it), which vary run to run
// even serially; everything else must be byte-identical.
func deterministicCells(res *Result) [][]string {
	var out [][]string
	for _, tb := range res.Tables {
		for _, row := range tb.Rows {
			switch tb.Title {
			case "TABLE 3. Execution Times of C Simulator vs. MemorIES":
				out = append(out, []string{row[0], row[2]})
			default:
				out = append(out, row)
			}
		}
	}
	return out
}

// TestRunWithParallelEquivalence is the ISSUE's acceptance check: the
// Table 3 and Fig 8 sweeps report identical miss ratios and counters
// whether run with -parallel 1 or -parallel 8.
func TestRunWithParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-experiment equivalence skipped in -short mode")
	}
	if raceDetectorEnabled {
		// Determinism, not synchronization, is under test here; the
		// race-enabled interleaving coverage for the rig comes from
		// TestSweepParallelEquivalence and internal/parallel's tests.
		t.Skip("full-experiment equivalence skipped under the race detector (package timeout)")
	}
	for _, id := range []string{"table3", "fig8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial, err := RunWith(id, ScaleCI, Options{Parallel: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunWith(id, ScaleCI, Options{Parallel: 8})
			if err != nil {
				t.Fatal(err)
			}
			sc, pc := deterministicCells(serial), deterministicCells(par)
			if len(sc) != len(pc) {
				t.Fatalf("row count %d vs %d", len(pc), len(sc))
			}
			for i := range sc {
				if len(sc[i]) != len(pc[i]) {
					t.Fatalf("row %d width differs", i)
				}
				for j := range sc[i] {
					if sc[i][j] != pc[i][j] {
						t.Errorf("row %d col %d: parallel %q, serial %q", i, j, pc[i][j], sc[i][j])
					}
				}
			}
		})
	}
}
