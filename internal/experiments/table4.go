package experiments

import (
	"fmt"
	"time"

	"memories/internal/simbase"
	"memories/internal/stats"
	"memories/internal/workload/splash"
)

// runTable4 reproduces Table 4: execution time of the Augmint-style
// execution-driven simulator versus MemorIES (whose "execution time" is
// simply the host machine's run time, since the board emulates in real
// time) for FFT at growing problem sizes.
//
// The Augmint cost is measured on a sample of the reference stream and
// extrapolated to a full transform — running 2^26-point transforms
// through an interpreter at full length is exactly the "several days"
// problem the paper is about.
func runTable4(p Preset) (*Result, error) {
	t := stats.NewTable(
		"TABLE 4. Execution Time of Augmint vs. MemorIES (FFT)",
		"FFT size m", "References/transform", "Augmint (extrapolated)", "MemorIES (host run time)", "Slowdown")

	augTimes := make([]time.Duration, len(p.Table4Ms))
	memTimes := make([]time.Duration, len(p.Table4Ms))
	for i, m := range p.Table4Ms {
		fft := splash.NewFFT(splash.FFTConfig{NumCPUs: 8, M: m, Seed: p.SplashSeed})
		refs := fft.RefsPerTransform()
		instrs := fft.InstrsPerTransform()

		// Measure the execution-driven simulator on a sample. The
		// detailed interpreter performs per-instruction decode/execute
		// work plus a two-level cache model per reference.
		cfg := simbase.DefaultAugmintConfig()
		cfg.WorkPerInstr = 400
		aug, err := simbase.NewAugmint(cfg)
		if err != nil {
			return nil, err
		}
		sample := p.Table4SampleRefs
		if sample > refs {
			sample = refs
		}
		start := time.Now()
		aug.Run(fft, sample)
		perRef := float64(time.Since(start)) / float64(sample)
		augTimes[i] = time.Duration(perRef * float64(refs))

		// MemorIES time: the host executes the transform in real time;
		// the board keeps up by construction (§3.3).
		const cpuHz, ncpu, cpi = 262e6, 8, 6
		memTimes[i] = time.Duration(float64(instrs) * cpi / cpuHz / ncpu * float64(time.Second))

		t.AddRow(m, refs, fmtDuration(augTimes[i]), fmtDuration(memTimes[i]),
			fmt.Sprintf("%.0fx", float64(augTimes[i])/float64(memTimes[i])))
	}

	res := &Result{
		Tables: []*stats.Table{t},
		Notes: []string{
			"Augmint column measured on a sampled prefix and scaled to one full transform",
			"MemorIES column models the 8-way 262MHz host executing the transform; the board adds no slowdown",
			"paper-scale sizes (m=20..26) available with -scale paper",
		},
	}

	// Shape: the execution-driven simulator is at least an order of
	// magnitude slower at every size, and both times grow with m.
	for i := range p.Table4Ms {
		if float64(augTimes[i]) < 10*float64(memTimes[i]) {
			return nil, fmt.Errorf("table4: m=%d slowdown only %.1fx, want >= 10x",
				p.Table4Ms[i], float64(augTimes[i])/float64(memTimes[i]))
		}
	}
	for i := 1; i < len(augTimes); i++ {
		if augTimes[i] <= augTimes[i-1] || memTimes[i] <= memTimes[i-1] {
			return nil, fmt.Errorf("table4: times did not grow with m")
		}
	}
	return res, nil
}
