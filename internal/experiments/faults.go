package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/core"
	"memories/internal/faults"
	"memories/internal/host"
	"memories/internal/parallel"
	"memories/internal/stats"
	"memories/internal/workload"
)

// runFaults is the one experiment with no counterpart in the paper: it
// measures what §3.3 only asserts. Three questions, one table each:
//
//  1. Soft errors: with tag-store bit flips injected at a swept rate, how
//     far does the board's miss ratio drift from a fault-free run, with
//     and without the ECC scrub? (Scrub on: drift must stay under 0.1%.
//     Scrub off: the golden-shadow divergence counter must catch it.)
//  2. Stream faults: drops, duplicates, and stalls must never cause
//     divergence between the board and the golden shadow fed from the
//     drain hook — the shadow sees the post-fault stream by construction.
//  3. Forced overflow: an injected transaction burst must fill the
//     512-entry buffer and drive the combined-Retry path end to end —
//     while the fault-free run preserves the paper's "retry never fired"
//     observation at nominal utilization.
func runFaults(p Preset) (*Result, error) {
	hcfg := dbHostConfig(p)
	newGen := func() workload.Generator {
		return workload.NewTPCC(workload.ScaledTPCCConfig(p.TPCCFactor))
	}
	const cacheBytes = 1 * addr.MB

	type runOut struct {
		view core.NodeView
		div  faults.DivergenceReport
		inj  *faults.Injector
		h    *host.Host
	}
	// faultRun wires host -> injector -> board and runs the workload.
	faultRun := func(bcfg core.Config, fcfg faults.Config) (runOut, error) {
		bcfg.Nodes = []core.NodeConfig{stdNode(p, "f", allCPUs(hcfg.NumCPUs), cacheBytes, 128, 8, 0)}
		b, err := core.NewBoard(bcfg)
		if err != nil {
			return runOut{}, err
		}
		fcfg.Shadow = true
		inj, err := faults.New(b, fcfg)
		if err != nil {
			return runOut{}, err
		}
		h, err := host.New(hcfg, newGen())
		if err != nil {
			return runOut{}, err
		}
		h.Bus().Attach(inj)
		h.Run(p.FaultsRefs)
		b.Flush()
		return runOut{view: b.Node(0), div: inj.CheckDivergence(), inj: inj, h: h}, nil
	}

	res := &Result{}

	// Fault-free baseline (through a zero-rate injector, so the shadow
	// machinery itself is under differential test).
	clean, err := faultRun(core.Config{}, faults.Config{Seed: 7})
	if err != nil {
		return nil, err
	}
	if clean.div.Delta != 0 {
		return nil, fmt.Errorf("faults: golden shadow diverges on a fault-free run (delta %d)", clean.div.Delta)
	}
	cleanMiss := clean.view.MissRatio()

	// 1. Bit-flip sweep, scrub on vs off: 2*len(rates) independent runs
	// (each builds its own board, injector, and host), executed up to
	// p.Parallel at a time; rows and shape checks happen afterwards in
	// sweep order. Even tasks are scrub-on, odd scrub-off, for rate i/2.
	t1 := stats.NewTable(
		"FAULTS. Tag-store bit flips: miss-ratio drift vs fault-free run",
		"flip rate", "scrub", "flips", "miss ratio", "drift", "divergence")
	sweep, err := parallel.Map(p.Parallel, 2*len(p.FaultsRates), func(i int) (runOut, error) {
		bcfg := core.Config{}
		if i%2 == 0 {
			bcfg.ECC = true
			bcfg.ScrubIntervalCycles = p.FaultsScrubCycles
		}
		return faultRun(bcfg, faults.Config{Seed: 7, BitFlipProb: p.FaultsRates[i/2]})
	})
	if err != nil {
		return nil, err
	}
	for i, out := range sweep {
		rate, scrub := p.FaultsRates[i/2], i%2 == 0
		miss := out.view.MissRatio()
		drift := miss - cleanMiss
		if drift < 0 {
			drift = -drift
		}
		label := "off"
		if scrub {
			label = "on"
		}
		flips := out.inj.Board().Counters().Counter("faults.bitflips").Value()
		t1.AddRow(fmt.Sprintf("%.0e", rate), label, flips, miss, drift, out.div.Delta)
		if scrub {
			if drift >= 0.001 {
				return nil, fmt.Errorf("faults: scrub-on drift %.5f at rate %.0e exceeds 0.1%%", drift, rate)
			}
		} else if rate >= p.FaultsRates[len(p.FaultsRates)-1] && out.div.Delta == 0 {
			return nil, fmt.Errorf("faults: scrub-off run at rate %.0e not detected by divergence counter", rate)
		}
	}
	res.Tables = append(res.Tables, t1)

	// 2. Stream faults: drops, duplicates, stalls. The board and the
	// shadow must agree exactly — the shadow is defined over the stream
	// the directories actually processed.
	stream, err := faultRun(core.Config{}, faults.Config{
		Seed: 11, DropProb: 0.01, DupProb: 0.01, StallProb: 1e-4, StallCycles: 2000,
	})
	if err != nil {
		return nil, err
	}
	if stream.div.Delta != 0 {
		return nil, fmt.Errorf("faults: stream faults caused board/shadow divergence (delta %d)", stream.div.Delta)
	}
	bank := stream.inj.Board().Counters()
	t2 := stats.NewTable(
		"FAULTS. Stream faults (drop/dup/stall): board vs golden shadow",
		"dropped", "duplicated", "stalls", "stall cycles", "divergence")
	t2.AddRow(
		bank.Counter("faults.dropped").Value(),
		bank.Counter("faults.duplicated").Value(),
		bank.Counter("faults.stalls").Value(),
		stream.inj.Board().TagStoreStats(0).InjectedStallCycles,
		stream.div.Delta)
	res.Tables = append(res.Tables, t2)

	// 3. Forced overflow: nominal run must keep the paper's zero-retry
	// record; the burst run must fill the buffer and exercise the retry
	// protocol end to end.
	t3 := stats.NewTable(
		"FAULTS. Forced buffer overflow and the 6xx retry path",
		"run", "bursts", "high-water", "retries posted", "host re-issues", "exhausted")
	nominal, err := faultRun(core.Config{RetryOnOverflow: true}, faults.Config{Seed: 13})
	if err != nil {
		return nil, err
	}
	nb := nominal.inj.Board().Counters()
	t3.AddRow("nominal",
		nb.Counter("faults.bursts").Value(),
		nb.Counter("buffer.high-water").Value(),
		nb.Counter("buffer.retry-posted").Value(),
		nominal.h.Stats().Retried,
		nominal.h.Stats().RetryExhausted)
	if nominal.h.Stats().Retried != 0 {
		return nil, fmt.Errorf("faults: nominal run posted %d retries; the paper's zero-retry observation must hold",
			nominal.h.Stats().Retried)
	}
	burst, err := faultRun(core.Config{RetryOnOverflow: true},
		faults.Config{Seed: 13, BurstProb: p.FaultsBurstProb})
	if err != nil {
		return nil, err
	}
	bb := burst.inj.Board().Counters()
	t3.AddRow("burst",
		bb.Counter("faults.bursts").Value(),
		bb.Counter("buffer.high-water").Value(),
		bb.Counter("buffer.retry-posted").Value(),
		burst.h.Stats().Retried,
		burst.h.Stats().RetryExhausted)
	res.Tables = append(res.Tables, t3)
	if bb.Counter("faults.bursts").Value() == 0 {
		return nil, fmt.Errorf("faults: burst run injected no bursts; raise FaultsBurstProb")
	}
	if hw, depth := bb.Counter("buffer.high-water").Value(), uint64(core.DefaultBufferDepth); hw < depth {
		return nil, fmt.Errorf("faults: burst high-water %d never filled the %d-entry buffer", hw, depth)
	}
	if bb.Counter("buffer.retry-posted").Value() == 0 || burst.h.Stats().Retried == 0 {
		return nil, fmt.Errorf("faults: forced overflow produced no observed retries (posted %d, host %d)",
			bb.Counter("buffer.retry-posted").Value(), burst.h.Stats().Retried)
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("fault-free miss ratio %.4f over %d refs; scrub interval %d cycles",
			cleanMiss, p.FaultsRefs, p.FaultsScrubCycles),
		"shape: scrub-on drift < 0.1% at every flip rate; scrub-off corruption detected by the divergence counter; stream faults never diverge; forced overflow fills the buffer and drives host re-issues while the nominal run keeps the paper's zero-retry record")
	return res, nil
}
