package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/host"
	"memories/internal/parallel"
	"memories/internal/stats"
	"memories/internal/workload"
	"memories/internal/workload/splash"
)

// runFig11 reproduces Figure 11: L3 miss ratio versus L3 size for the
// five SPLASH2 applications, with all 8 processors sharing one L3. The
// paper's claim: "the miss ratios and miss rates are monotonically
// decreasing, further suggesting an incentive for large L3 caches", and
// "for no L3 cache size do we see performance degradation".
func runFig11(p Preset) (*Result, error) {
	hcfg := host.DefaultConfig()
	hcfg.L1Bytes = p.Fig11L1Bytes
	hcfg.L2Bytes = p.Fig11L2Bytes
	hcfg.L2Assoc = 4

	sizes := make([]int64, len(p.Fig11SizesKB))
	for i, kb := range p.Fig11SizesKB {
		sizes[i] = kb * addr.KB
	}

	t := stats.NewTable(
		fmt.Sprintf("FIGURE 11. L3 Miss Ratio vs. L3 Size (%s sizes, %s L2)",
			p.Fig11Size, addr.FormatSize(p.Fig11L2Bytes)),
		append([]string{"Application"}, sizeLabels(sizes)...)...)

	res := &Result{}
	names := splash.Names()
	// One independent sweep per application, run concurrently; rows are
	// added afterwards in the registry's order.
	perApp, err := parallel.Map(p.Parallel, len(names), func(ai int) ([]float64, error) {
		name := names[ai]
		newGen := func() workload.Generator { return splash.New(name, p.Fig11Size, hcfg.NumCPUs, p.SplashSeed) }
		views, err := cacheSweep(p, name, hcfg, newGen, sizes, 128, 4, p.Fig11Refs, p.Parallel)
		if err != nil {
			return nil, err
		}
		miss := make([]float64, len(views))
		for i, v := range views {
			miss[i] = v.MissRatio()
		}
		return miss, nil
	})
	if err != nil {
		return nil, err
	}
	for ai, name := range names {
		miss := perApp[ai]
		cells := make([]interface{}, 0, len(miss)+1)
		cells = append(cells, name)
		for _, m := range miss {
			cells = append(cells, m)
		}
		t.AddRow(cells...)

		if err := monotoneNonincreasing(sizes, miss, 0.01, "fig11 "+name); err != nil {
			return nil, err
		}
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"shape: miss ratio monotonically nonincreasing in L3 size for every application — no size degrades performance (paper §5.3)",
		"paper-scale sizes (32MB-512MB L3, full problem sizes) available with -scale paper",
	)
	return res, nil
}

func sizeLabels(sizes []int64) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = addr.FormatSize(s)
	}
	return out
}
