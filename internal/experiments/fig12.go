package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/core"
	"memories/internal/host"
	"memories/internal/stats"
	"memories/internal/workload"
	"memories/internal/workload/splash"
)

// fig12Breakdown is the Figure 12 classification: where an L2 miss was
// satisfied, as fractions of all L2 misses.
type fig12Breakdown struct {
	L3, ModInt, ShrInt, Memory float64
}

func (b fig12Breakdown) interventions() float64 { return b.ModInt + b.ShrInt }

// runFig12 reproduces Figure 12: for FFT, Ocean, and FMM in two NUMA-ish
// configurations (2 nodes x 4 processors and 4 nodes x 2 processors),
// where is an L2 miss satisfied — the local L3, another node's modified
// copy (mod-int), another node's shared copy (shr-int), or memory.
func runFig12(p Preset) (*Result, error) {
	hcfg := host.DefaultConfig()
	apps := []string{splash.NameFFT, splash.NameOcean, splash.NameFMM}
	shapes := [][2]int{{2, 4}, {4, 2}} // nodes x procs-per-node

	measure := func(name string, nodesN, procs int) (fig12Breakdown, error) {
		var nodes []core.NodeConfig
		for n := 0; n < nodesN; n++ {
			cpus := make([]int, procs)
			for j := range cpus {
				cpus[j] = n*procs + j
			}
			nodes = append(nodes, stdNode(p, fmt.Sprintf("n%d", n), cpus,
				p.Fig12CacheMB*addr.MB, p.Fig12LineB, 4, 0))
		}
		newGen := func() workload.Generator { return splash.New(name, p.Fig12Size, hcfg.NumCPUs, p.SplashSeed) }
		b, _, err := boardRun(p, fmt.Sprintf("%s.%dx%d", name, nodesN, procs), hcfg, newGen, core.Config{Nodes: nodes}, p.Fig12Refs)
		if err != nil {
			return fig12Breakdown{}, err
		}
		var l3, mod, shr, mem uint64
		for i := range nodes {
			v := b.Node(i)
			l3 += v.SatL3
			mod += v.SatModInt
			shr += v.SatShrInt
			mem += v.SatMemory
		}
		tot := l3 + mod + shr + mem
		if tot == 0 {
			return fig12Breakdown{}, fmt.Errorf("fig12 %s: no L2 misses observed", name)
		}
		f := float64(tot)
		return fig12Breakdown{
			L3:     float64(l3) / f,
			ModInt: float64(mod) / f,
			ShrInt: float64(shr) / f,
			Memory: float64(mem) / f,
		}, nil
	}

	t := stats.NewTable(
		fmt.Sprintf("FIGURE 12. Where an L2 Miss is Satisfied (%s per-node L3, %dB L3 lines)",
			addr.FormatSize(p.Fig12CacheMB*addr.MB), p.Fig12LineB),
		"Application", "Config", "L3", "mod-int", "shr-int", "memory")

	results := map[string]map[string]fig12Breakdown{}
	for _, name := range apps {
		results[name] = map[string]fig12Breakdown{}
		for _, sh := range shapes {
			label := fmt.Sprintf("%dx%d", sh[0], sh[1])
			bd, err := measure(name, sh[0], sh[1])
			if err != nil {
				return nil, err
			}
			results[name][label] = bd
			t.AddRow(name, label, bd.L3, bd.ModInt, bd.ShrInt, bd.Memory)
		}
	}
	res := &Result{Tables: []*stats.Table{t}}

	// Shape 1: FMM has markedly more intervention traffic than FFT and
	// Ocean ("FMM has a significant amount of modified and shared
	// intervention traffic relative to the other applications").
	for _, label := range []string{"2x4", "4x2"} {
		fmm := results[splash.NameFMM][label].interventions()
		fft := results[splash.NameFFT][label].interventions()
		ocean := results[splash.NameOcean][label].interventions()
		if fmm < fft*1.5 || fmm < ocean+0.02 {
			return nil, fmt.Errorf("fig12 %s: FMM interventions %.3f not dominant (fft %.3f, ocean %.3f)",
				label, fmm, fft, ocean)
		}
		if ocean > 0.05 {
			return nil, fmt.Errorf("fig12 %s: Ocean interventions %.3f too high for a nearest-neighbor code", label, ocean)
		}
	}
	// Shape 2: more processors per node satisfy more misses in the local
	// L3 (shared prefetch within the node).
	for _, name := range apps {
		if results[name]["2x4"].L3+0.005 < results[name]["4x2"].L3 {
			return nil, fmt.Errorf("fig12 %s: L3 share with 4 procs/node (%.3f) below 2 procs/node (%.3f)",
				name, results[name]["2x4"].L3, results[name]["4x2"].L3)
		}
	}
	res.Notes = append(res.Notes,
		"shape: FFT and Ocean show small intervention shares (little sharing); FMM shows heavy intervention traffic — the paper's guidance that FMM-like codes need efficient cache-to-cache transfers",
		"shape: more processors per L3 raise the locally satisfied share",
	)
	return res, nil
}
