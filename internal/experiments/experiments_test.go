package experiments

import (
	"strings"
	"testing"

	"memories/internal/addr"
)

func TestScaleParsing(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
	}{{"ci", ScaleCI}, {"default", ScaleDefault}, {"", ScaleDefault}, {"paper", ScalePaper}, {"PAPER", ScalePaper}} {
		got, err := ParseScale(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted unknown scale")
	}
}

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	want := []string{"faults", "fig1", "fig10", "fig11", "fig12", "fig8", "fig9", "hostscale", "protocolcompare", "table1", "table2", "table3", "table4", "table5", "table6"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("no title for %s", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", ScaleCI); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestStaticExhibits(t *testing.T) {
	for _, id := range []string{"table1", "fig1"} {
		res, err := Run(id, ScaleCI)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		if !strings.Contains(res.String(), res.Title) {
			t.Fatalf("%s: String() missing title", id)
		}
	}
}

// TestAllExperimentsReproduceShapes is the repository's headline test: at
// CI scale, every table and figure regenerates and satisfies the paper's
// qualitative claims. Skipped under -short (it simulates tens of millions
// of references).
func TestAllExperimentsReproduceShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment reproduction skipped in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, ScaleCI)
			if err != nil {
				t.Fatalf("shape violation or failure: %v", err)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			t.Logf("\n%s", res.String())
		})
	}
}

// TestTable2FullFillSmall runs the -bigmem full-fill path at a small
// size: every slot resident, inside the 9 B/slot budget, and reported.
func TestTable2FullFillSmall(t *testing.T) {
	note, err := runTable2FullFill(16 * addr.MB)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "131072 slots resident") || !strings.Contains(note, "B/slot") {
		t.Fatalf("unexpected bigmem note: %q", note)
	}
}
