package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/core"
	"memories/internal/stats"
	"memories/internal/workload"
)

// runFig10 reproduces Figure 10 / case study 2: the TPC-C miss-ratio
// profile over a long run shows periodic spikes — at every emulated cache
// size — caused by an OS file-system journaling bug; fixing the bug (here:
// not injecting the disturbance) removes them.
func runFig10(p Preset) (*Result, error) {
	hcfg := dbHostConfig(p)
	disturb := workload.DisturbanceConfig{
		PeriodRefs:   p.Fig10PeriodRefs,
		BurstRefs:    p.Fig10BurstRefs,
		JournalBytes: 64 * addr.MB,
	}
	nodes := []core.NodeConfig{
		stdNode(p, "small", allCPUs(hcfg.NumCPUs), p.Fig10SmallMB*addr.MB, 128, 1, 0),
		stdNode(p, "big", allCPUs(hcfg.NumCPUs), p.Fig10BigMB*addr.MB, 128, 8, 1),
	}
	bcfg := core.Config{Nodes: nodes, ProfileBucketCycles: p.Fig10BucketCyc}

	run := func(buggy bool) (*core.Board, error) {
		newGen := func() workload.Generator {
			g := workload.Generator(workload.NewTPCC(workload.ScaledTPCCConfig(p.TPCCFactor)))
			if buggy {
				g = workload.WithDisturbance(g, disturb)
			}
			return g
		}
		label := "fixed"
		if buggy {
			label = "buggy"
		}
		b, _, err := boardRun(p, label, hcfg, newGen, bcfg, p.Fig10Refs)
		return b, err
	}

	buggy, err := run(true)
	if err != nil {
		return nil, err
	}
	fixed, err := run(false)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	const spikeFactor = 1.3
	labels := []string{
		fmt.Sprintf("%dMB direct-mapped", p.Fig10SmallMB),
		fmt.Sprintf("%dMB 8-way", p.Fig10BigMB),
	}
	var periods [2]int
	for i := 0; i < 2; i++ {
		prof := buggy.Profile(i)
		fixedProf := fixed.Profile(i)
		// Analyze the trailing 60% of the run: the cold-start ramp would
		// otherwise register as spurious spikes.
		tail, fixedTail := prof.Tail(0.6), fixedProf.Tail(0.6)
		t := stats.NewTable(
			fmt.Sprintf("FIGURE 10. TPC-C Miss Ratio Profile, %s L3", labels[i]),
			"Profile", "mean miss ratio", "spikes (steady state)", "period (buckets)", "sparkline")
		t.AddRow("with OS journaling bug", prof.Mean(),
			len(tail.Spikes(spikeFactor)), tail.DominantPeriod(spikeFactor), prof.Sparkline())
		t.AddRow("after OS fix", fixedProf.Mean(),
			len(fixedTail.Spikes(spikeFactor)), fixedTail.DominantPeriod(spikeFactor), fixedProf.Sparkline())
		res.Tables = append(res.Tables, t)
		periods[i] = tail.DominantPeriod(spikeFactor)

		if len(tail.Spikes(spikeFactor)) < 3 {
			return nil, fmt.Errorf("fig10 %s: journaling bug produced only %d spikes",
				labels[i], len(tail.Spikes(spikeFactor)))
		}
		if got := len(fixedTail.Spikes(spikeFactor)); got > len(tail.Spikes(spikeFactor))/3 {
			return nil, fmt.Errorf("fig10 %s: OS fix left %d spikes (buggy run had %d)",
				labels[i], got, len(tail.Spikes(spikeFactor)))
		}
	}

	// The spike period must be consistent across cache sizes (the
	// paper's tell that the cause is software, not cache design).
	if periods[0] > 0 && periods[1] > 0 {
		lo, hi := periods[0], periods[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > lo*2 {
			return nil, fmt.Errorf("fig10: spike periods disagree across cache sizes (%d vs %d buckets)",
				periods[0], periods[1])
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("journaling disturbance: burst of %d refs every %d refs over a 64MB journal",
			disturb.BurstRefs, disturb.PeriodRefs),
		"shape: periodic spikes at every cache size with a common period; eliminated by the OS fix",
	)
	return res, nil
}
