package experiments

import (
	"fmt"
	"time"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/core"
	"memories/internal/parallel"
	"memories/internal/simbase"
	"memories/internal/stats"
	"memories/internal/tracefile"
	"memories/internal/workload"
)

// runTable3 reproduces Table 3: wall-clock execution time of the
// trace-driven C simulator versus the board for growing trace sizes. The
// simulator time is *measured* (it really runs); the MemorIES time comes
// from the real-time model of §4.1 (a 100MHz bus at 20% utilization),
// exactly how the paper derived its column.
func runTable3(p Preset) (*Result, error) {
	model := core.PaperRealTimeModel()
	t := stats.NewTable(
		"TABLE 3. Execution Times of C Simulator vs. MemorIES",
		"Trace size (vectors)", "C simulator (measured)", "MemorIES (real-time model)", "Speedup")

	// The trace mixes skewed OLTP-like records with castouts, the kind
	// of bus trace the board collects. Records regenerate per size from
	// the same seed so bigger rows extend smaller ones.
	maxSize := p.Table3Sizes[len(p.Table3Sizes)-1]
	measured := make([]time.Duration, len(p.Table3Sizes))
	modeled := make([]time.Duration, len(p.Table3Sizes))

	// Each trace size replays from its own simulator and generator, so
	// the sizes run concurrently up to p.Parallel. The simulator's cache
	// statistics are bit-identical at any parallelism; only the measured
	// wall-clock column varies run to run (as it does serially), and the
	// ~8x gaps between consecutive sizes keep the growth check robust to
	// contention between concurrent rows.
	err := parallel.ForEach(p.Parallel, len(p.Table3Sizes), func(i int) error {
		size := p.Table3Sizes[i]
		if size > maxSize {
			return fmt.Errorf("table3: sizes must be ascending")
		}
		sim := simbase.MustNewTraceSim([]simbase.TraceNodeConfig{{
			CPUs:     allCPUs(8),
			Geometry: addr.MustGeometry(64*addr.MB, 128, 4),
			Policy:   cache.LRU,
			Protocol: p.protocol(),
		}})
		gen := workload.NewZipfian(workload.ZipfConfig{
			NumCPUs: 8, FootprintByte: 1 * addr.GB, WriteFraction: 0.3, Seed: 7,
		})
		start := time.Now()
		for n := uint64(0); n < size; n++ {
			ref, _ := gen.Next()
			cmd := bus.Read
			if ref.Write {
				cmd = bus.RWITM
			}
			sim.Process(tracefile.Record{Addr: ref.Addr &^ 7, Cmd: cmd, SrcID: uint8(ref.CPU)})
		}
		measured[i] = time.Since(start)
		modeled[i] = model.Duration(size)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, size := range p.Table3Sizes {
		speedup := float64(measured[i]) / float64(modeled[i])
		t.AddRow(size, fmtDuration(measured[i]), fmtDuration(modeled[i]), fmt.Sprintf("%.1fx", speedup))
	}

	res := &Result{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("MemorIES column: %.0f MHz bus at %.0f%% utilization, %.0f cycles/vector (paper §4.1); it reproduces the paper's column exactly",
				model.BusClockMHz, model.Utilization*100, model.CyclesPerOp),
			"C-simulator column is measured on this machine; the paper's ran on a 133MHz host, so the absolute gap here is smaller — the shape claim is that the board wins and the simulator cost grows without bound",
			"paper-scale row (10 billion vectors) available with -scale paper",
		},
	}

	// Shape: the board is faster at every size and the simulator's cost
	// grows with trace size (the paper's "software simulation becomes
	// prohibitive as trace sizes grow").
	for i := range p.Table3Sizes {
		if measured[i] <= modeled[i] {
			return nil, fmt.Errorf("table3: simulator (%v) not slower than board (%v) at %d vectors",
				measured[i], modeled[i], p.Table3Sizes[i])
		}
	}
	for i := 1; i < len(measured); i++ {
		if measured[i] <= measured[i-1] {
			return nil, fmt.Errorf("table3: simulator time did not grow with trace size")
		}
	}
	return res, nil
}

// fmtDuration renders durations in the paper's style.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1f hours", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1f minutes", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2f seconds", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0f us", float64(d)/float64(time.Microsecond))
	}
}
