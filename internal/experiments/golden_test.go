package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"memories/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from this run's output")

// table3Title is the rendered title whose timing columns (measured
// simulator wall clock and the speedup derived from it) are
// nondeterministic and must be masked before a golden comparison.
const table3Title = "TABLE 3. Execution Times of C Simulator vs. MemorIES"

// normalizeResult deep-copies a result with the wall-clock cells of
// table3 replaced by a fixed token, so the rendered text is bit-stable
// run to run. Everything else passes through untouched: any change to a
// miss ratio, a table shape, or a note is a golden diff.
func normalizeResult(res *Result) *Result {
	out := &Result{ID: res.ID, Title: res.Title, Notes: res.Notes}
	for _, tb := range res.Tables {
		cp := &stats.Table{Title: tb.Title, Headers: tb.Headers}
		for _, row := range tb.Rows {
			r := append([]string(nil), row...)
			if tb.Title == table3Title && len(r) >= 4 {
				r[1] = "<wall-clock>"
				r[3] = "<speedup>"
			}
			cp.Rows = append(cp.Rows, r)
		}
		out.Tables = append(out.Tables, cp)
	}
	return out
}

// TestExperimentsGolden locks the rendered output of the paper's key
// figures at CI scale against checked-in golden files. Run with -update
// to rewrite them after an intentional change:
//
//	go test ./internal/experiments/ -run TestExperimentsGolden -update
func TestExperimentsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("golden regeneration skipped under the race detector (covered by the plain CI job)")
	}
	for _, id := range []string{"fig8", "fig9", "fig11", "hostscale", "protocolcompare", "table3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := RunWith(id, ScaleCI, Options{Parallel: 1})
			if err != nil {
				t.Fatal(err)
			}
			got := normalizeResult(res).String()
			path := filepath.Join("testdata", "golden", id+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from %s (re-run with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
					id, path, got, want)
			}
		})
	}
}
