package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/parallel"
	"memories/internal/stats"
	"memories/internal/workload"
)

// runFig8 reproduces Figure 8: L3 miss ratio versus cache size for short
// and long traces, for TPC-C and TPC-H. The short-trace curves must
// overstate the miss ratio at large caches and flatten early ("using too
// small a trace may suggest that larger caches have no impact"), while
// the long-trace curves keep improving.
func runFig8(p Preset) (*Result, error) {
	hcfg := dbHostConfig(p)
	sizes := make([]int64, len(p.Fig8SizesMB))
	for i, mb := range p.Fig8SizesMB {
		sizes[i] = mb * addr.MB
	}

	type series struct {
		workload string
		label    string
		refs     uint64
		miss     []float64
	}
	// The four workload x trace-length series are independent sweeps; the
	// rig runs them (and their internal batches) concurrently up to
	// p.Parallel, with results landing in fixed index order.
	combos := []series{
		{workload: "tpcc", label: "long", refs: p.Fig8Long},
		{workload: "tpcc", label: "short", refs: p.Fig8Short},
		{workload: "tpch", label: "long", refs: p.Fig8Long},
		{workload: "tpch", label: "short", refs: p.Fig8Short},
	}
	all, err := parallel.Map(p.Parallel, len(combos), func(i int) (series, error) {
		s := combos[i]
		newGen := func() workload.Generator { return workload.NewTPCC(workload.ScaledTPCCConfig(p.TPCCFactor)) }
		if s.workload == "tpch" {
			newGen = func() workload.Generator { return workload.NewTPCH(workload.ScaledTPCHConfig(p.TPCHFactor)) }
		}
		views, err := cacheSweep(p, s.workload+"."+s.label, hcfg, newGen, sizes, 128, 8, s.refs, p.Parallel)
		if err != nil {
			return series{}, err
		}
		for _, v := range views {
			s.miss = append(s.miss, v.MissRatio())
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for w := 0; w < 2; w++ {
		long, short := all[2*w], all[2*w+1]
		t := stats.NewTable(
			fmt.Sprintf("FIGURE 8 (%s). L3 Miss Ratio for Different Trace Lengths", long.workload),
			"L3 size", "long trace", "short trace")
		for i, size := range sizes {
			t.AddRow(addr.FormatSize(size), long.miss[i], short.miss[i])
		}
		res.Tables = append(res.Tables, t)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: long trace %d refs, short trace %d refs (host workload references)",
			long.workload, long.refs, short.refs))
	}

	// Shape checks per workload.
	for w := 0; w < 2; w++ {
		long, short := all[2*w], all[2*w+1]
		name := long.workload
		last := len(sizes) - 1

		if err := monotoneNonincreasing(p.Fig8SizesMB, long.miss, 0.02, name+" long trace"); err != nil {
			return nil, err
		}
		// Long trace: clear overall improvement from smallest to largest.
		if long.miss[last] > long.miss[0]*0.90 {
			return nil, fmt.Errorf("fig8 %s: long trace barely improves with cache size (%.4f -> %.4f)",
				name, long.miss[0], long.miss[last])
		}
		// Short trace overstates the miss ratio at the largest cache.
		minFactor := 1.25
		if name == "tpch" {
			// TPC-H's scan-dominated stream shows a smaller (but still
			// directional) trace-length effect, as in the paper's right
			// panel.
			minFactor = 1.02
		}
		if short.miss[last] < long.miss[last]*minFactor {
			return nil, fmt.Errorf("fig8 %s: short trace does not overstate the miss ratio at %s (short %.4f vs long %.4f)",
				name, addr.FormatSize(sizes[last]), short.miss[last], long.miss[last])
		}
		// Short trace flattens: its relative improvement over the top
		// size step is smaller than the long trace's.
		longGain := 1 - long.miss[last]/long.miss[last-1]
		shortGain := 1 - short.miss[last]/short.miss[last-1]
		if shortGain >= longGain {
			return nil, fmt.Errorf("fig8 %s: short trace did not flatten (top-step gain short %.3f vs long %.3f)",
				name, shortGain, longGain)
		}
	}
	res.Notes = append(res.Notes,
		"shape: long-trace curves keep falling; short-trace curves flatten and overstate the large-cache miss ratio (the paper's 'off by 100% or more')")
	return res, nil
}
