package experiments

import "memories/internal/stats"

// Table 1 and Figure 1 are context exhibits in the paper (motivation, not
// measurements); they are reproduced verbatim so the harness covers every
// numbered table and figure.

func runTable1(_ Preset) (*Result, error) {
	t := stats.NewTable(
		"TABLE 1. Simulated Cache Sizes vs. Actual Cache Sizes in Previous Studies",
		"Year", "Application", "Problem size", "Sim. CPUs", "Simulated L2", "Machine L2", "Machine L3")
	rows := [][]string{
		{"1995", "FFT", "64K points", "16-64", "8KB-1MB", "512KB", "n/a"},
		{"1995", "Barnes-Hut", "16K bodies", "16-64", "8KB-1MB", "512KB", "n/a"},
		{"1995", "Water", "512 molecules", "16-64", "8KB-1MB", "512KB", "n/a"},
		{"1997", "FFT", "64K points", "32-64", "8KB-1MB", "4MB", "32MB"},
		{"1997", "Barnes-Hut", "16K bodies", "32-64", "8KB-1MB", "4MB", "32MB"},
		{"1997", "Water", "512 molecules", "32-64", "8KB-1MB", "4MB", "32MB"},
		{"1999", "FFT", "64K points", "32-64", "128KB-512KB", "8MB", "32MB"},
		{"1999", "Barnes-Hut", "16K bodies", "32-64", "n/a", "8MB", "32MB"},
		{"1999", "Water", "512 molecules", "32-64", "128KB-512KB", "8MB", "32MB"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3], r[4], r[5], r[6])
	}
	return &Result{
		Tables: []*stats.Table{t},
		Notes: []string{
			"static context table, transcribed from the paper (sources WOT+95, FW97, MNL+97, BDH+99, FW99)",
			"the splash kernels' SizeClassic presets match the problem sizes here",
		},
	}, nil
}

func runFig1(_ Preset) (*Result, error) {
	t := stats.NewTable(
		"FIGURE 1. L2/L3 cache sizes in current systems and projected growth",
		"System generation", "L2/L3 size range")
	t.AddRow("1999 (current; e.g. IBM RS/6000 S7A)", "4MB - 32MB")
	t.AddRow("next generation (projected)", "32MB - 128MB")
	t.AddRow("following generation (projected)", "128MB - 1GB+")
	return &Result{
		Tables: []*stats.Table{t},
		Notes: []string{
			"static projection chart, reproduced as a range table",
			"the board's 2MB-8GB emulation range (Table 2) covers the whole projection",
		},
	}, nil
}
