// Package experiments regenerates every table and figure of the paper's
// evaluation (§4-§5). Each experiment builds the workloads, hosts, and
// board configurations it needs, runs them, renders the same rows/series
// the paper reports, and then *checks the shape* of the result against
// the paper's qualitative claims — who wins, which way a curve bends,
// where a trend reverses. Absolute numbers are not expected to match (the
// substrate is a software model, not an S7A), and EXPERIMENTS.md records
// both sides.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"memories/internal/addr"
	"memories/internal/coherence"
	"memories/internal/obs"
	"memories/internal/stats"
	"memories/internal/workload/splash"
)

// Scale selects how much work an experiment does.
type Scale int

const (
	// ScaleCI is sized for automated tests: every experiment finishes in
	// seconds and every shape check must pass.
	ScaleCI Scale = iota
	// ScaleDefault is the cmd/experiments default: a few minutes total,
	// with clearer curves.
	ScaleDefault
	// ScalePaper uses the paper's own parameters (150GB databases, 10B
	// reference traces). Provided for completeness; a full run takes
	// many hours of simulation.
	ScalePaper
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case ScaleCI:
		return "ci"
	case ScaleDefault:
		return "default"
	case ScalePaper:
		return "paper"
	}
	return "scale(?)"
}

// ParseScale parses a scale name.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "ci":
		return ScaleCI, nil
	case "default", "":
		return ScaleDefault, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q", s)
}

// Preset bundles every scale-dependent parameter.
type Preset struct {
	Scale Scale

	// Parallel bounds how many independent sweep points (board runs) an
	// experiment executes concurrently. Every sweep point builds its own
	// board, host, and seeded generator, so results are bit-identical at
	// any setting; 1 is the serial golden run. Set via RunWith.
	Parallel int

	// Database workloads (Figures 8-10).
	TPCCFactor int64 // footprint divisor vs the paper's 150GB
	TPCHFactor int64 // footprint divisor vs the paper's 100GB
	// DBHostL2Bytes/Assoc configure the host L2 for the database runs;
	// small scales use the S7A's 1MB direct-mapped boot option so that
	// scaled-down L3 sweeps stay meaningful.
	DBHostL2Bytes int64
	DBHostL2Assoc int

	Fig8SizesMB []int64
	Fig8Long    uint64
	Fig8Short   uint64

	Fig9CacheMB int64
	Fig9Long    uint64
	Fig9Short   uint64

	Fig10Refs       uint64
	Fig10PeriodRefs uint64
	Fig10BurstRefs  uint64
	Fig10BucketCyc  uint64
	Fig10SmallMB    int64
	Fig10BigMB      int64

	// Baseline comparisons (Tables 3-4).
	Table3Sizes      []uint64
	Table4Ms         []int
	Table4SampleRefs uint64

	// SPLASH2 experiments (Tables 5-6, Figures 11-12).
	Table56Refs  uint64
	Fig11Size    splash.Size
	Fig11SizesKB []int64
	Fig11L1Bytes int64
	Fig11L2Bytes int64
	Fig11Refs    uint64
	Fig12Size    splash.Size
	Fig12CacheMB int64
	Fig12LineB   int64
	Fig12Refs    uint64
	SplashSeed   uint64

	// Discrete-event host scaling (the hostscale experiment).
	HostScaleCPUs   []int  // machine sizes swept by hostscale
	HostScaleActive int    // busy streams per sweep point; the rest idle
	HostScaleCycles uint64 // bus cycles emulated per sweep point

	// NumCPUs, when positive, overrides host.Config.NumCPUs wherever an
	// experiment builds a host, and narrows the hostscale sweep to that
	// single machine size. Set via Options.NumCPUs / cmd/experiments
	// -cpus; 0 keeps each experiment's own default.
	NumCPUs int

	// BigMem gates the fully allocated big-memory corners (the 8 GB
	// Table 2 directory: 64M packed slots, 512 MB resident). Off by
	// default; set via Options.BigMem / cmd/experiments -bigmem.
	BigMem bool

	// Protocol, when non-nil, is the coherence protocol every emulated
	// node the experiment builds runs under — the board's per-node
	// protocol loading (§3.2) surfaced as cmd/experiments -protocol.
	// nil keeps the MESI default every golden run was recorded with.
	// The table must already be verified (compiled and model-checked);
	// node construction compiles it again regardless.
	Protocol *coherence.Table

	// Obs, when non-nil, makes every board the experiment builds attach
	// its counter bank to this registry under "<ObsScope>.<run label>.*"
	// so a live sampler (cmd/experiments -obs) can watch the run. Set via
	// Options.Obs; nil costs the boards nothing.
	Obs *obs.Registry
	// ObsScope is the registry name root for this experiment's boards
	// (normally the experiment ID). Set by RunWith.
	ObsScope string

	// Fault-injection experiment (not from the paper: it stresses the
	// reliability claims §3.3 only asserts).
	FaultsRefs        uint64    // workload references per run
	FaultsScrubCycles uint64    // background scrub interval, bus cycles
	FaultsRates       []float64 // tag-store bit-flip probabilities per bus op
	FaultsBurstProb   float64   // burst probability for the overflow run
}

// protocol returns the coherence protocol the experiment's emulated
// nodes run under: Preset.Protocol when set, the MESI default
// otherwise.
func (p Preset) protocol() *coherence.Table {
	if p.Protocol != nil {
		return p.Protocol
	}
	return coherence.MESI()
}

// PresetFor returns the parameters for a scale.
func PresetFor(s Scale) Preset {
	switch s {
	case ScalePaper:
		return Preset{
			Scale:      s,
			TPCCFactor: 1, TPCHFactor: 1,
			DBHostL2Bytes: 8 * addr.MB, DBHostL2Assoc: 4,
			Fig8SizesMB: []int64{16, 32, 64, 128, 256, 512, 1024},
			Fig8Long:    10_000_000_000, Fig8Short: 20_000_000,
			Fig9CacheMB: 64, Fig9Long: 10_000_000_000, Fig9Short: 45_000_000,
			Fig10Refs: 2_000_000_000, Fig10PeriodRefs: 50_000_000, Fig10BurstRefs: 2_000_000,
			Fig10BucketCyc: 500_000_000, Fig10SmallMB: 16, Fig10BigMB: 1024,
			Table3Sizes: []uint64{32_768, 262_144, 10_000_000, 10_000_000_000},
			Table4Ms:    []int{20, 22, 24, 26}, Table4SampleRefs: 2_000_000,
			Table56Refs:  50_000_000,
			Fig11Size:    splash.SizePaper,
			Fig11SizesKB: []int64{32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024},
			Fig11L1Bytes: 64 * addr.KB, Fig11L2Bytes: 8 * addr.MB, Fig11Refs: 50_000_000,
			Fig12Size: splash.SizePaper, Fig12CacheMB: 64, Fig12LineB: 1024, Fig12Refs: 50_000_000,
			SplashSeed:    3,
			HostScaleCPUs: []int{8, 64, 256, 1024}, HostScaleActive: 8, HostScaleCycles: 20_000_000,
			FaultsRefs: 20_000_000, FaultsScrubCycles: 100_000,
			FaultsRates:     []float64{1e-5, 1e-4, 1e-3, 1e-2},
			FaultsBurstProb: 1e-4,
		}
	case ScaleDefault:
		return Preset{
			Scale:      s,
			TPCCFactor: 2048, TPCHFactor: 1024,
			DBHostL2Bytes: 1 * addr.MB, DBHostL2Assoc: 1,
			Fig8SizesMB: []int64{2, 4, 8, 16, 32},
			Fig8Long:    12_000_000, Fig8Short: 250_000,
			Fig9CacheMB: 4, Fig9Long: 6_000_000, Fig9Short: 250_000,
			Fig10Refs: 8_000_000, Fig10PeriodRefs: 500_000, Fig10BurstRefs: 50_000,
			Fig10BucketCyc: 2_500_000, Fig10SmallMB: 8, Fig10BigMB: 64,
			Table3Sizes: []uint64{32_768, 262_144, 2_000_000, 10_000_000},
			Table4Ms:    []int{14, 16, 18, 20}, Table4SampleRefs: 400_000,
			Table56Refs:  3_000_000,
			Fig11Size:    splash.SizeClassic,
			Fig11SizesKB: []int64{512, 1024, 2048, 4096},
			Fig11L1Bytes: 16 * addr.KB, Fig11L2Bytes: 256 * addr.KB, Fig11Refs: 4_000_000,
			Fig12Size: splash.SizeClassic, Fig12CacheMB: 64, Fig12LineB: 1024, Fig12Refs: 4_000_000,
			SplashSeed:    3,
			HostScaleCPUs: []int{8, 64, 256}, HostScaleActive: 8, HostScaleCycles: 2_000_000,
			FaultsRefs: 1_500_000, FaultsScrubCycles: 50_000,
			FaultsRates:     []float64{1e-4, 1e-3, 1e-2},
			FaultsBurstProb: 1e-3,
		}
	default: // ScaleCI
		return Preset{
			Scale:      s,
			TPCCFactor: 2048, TPCHFactor: 1024,
			DBHostL2Bytes: 1 * addr.MB, DBHostL2Assoc: 1,
			Fig8SizesMB: []int64{2, 4, 8, 16},
			Fig8Long:    6_000_000, Fig8Short: 150_000,
			Fig9CacheMB: 4, Fig9Long: 3_000_000, Fig9Short: 150_000,
			Fig10Refs: 4_000_000, Fig10PeriodRefs: 400_000, Fig10BurstRefs: 40_000,
			Fig10BucketCyc: 2_000_000, Fig10SmallMB: 8, Fig10BigMB: 64,
			Table3Sizes: []uint64{32_768, 262_144, 2_000_000},
			Table4Ms:    []int{14, 16, 18}, Table4SampleRefs: 150_000,
			Table56Refs:  2_000_000,
			Fig11Size:    splash.SizeClassic,
			Fig11SizesKB: []int64{512, 1024, 2048, 4096},
			Fig11L1Bytes: 16 * addr.KB, Fig11L2Bytes: 256 * addr.KB, Fig11Refs: 2_000_000,
			Fig12Size: splash.SizeClassic, Fig12CacheMB: 64, Fig12LineB: 1024, Fig12Refs: 2_000_000,
			SplashSeed:    3,
			HostScaleCPUs: []int{8, 64, 256}, HostScaleActive: 8, HostScaleCycles: 400_000,
			FaultsRefs: 400_000, FaultsScrubCycles: 25_000,
			FaultsRates:     []float64{1e-3, 1e-2},
			FaultsBurstProb: 2e-3,
		}
	}
}

// Result is one experiment's regenerated output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// String renders the result for the CLI.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// runner regenerates one table/figure and validates its shape.
type runner struct {
	title string
	run   func(Preset) (*Result, error)
}

var registry = map[string]runner{
	"table1":    {"Simulated vs actual cache sizes in previous studies", runTable1},
	"table2":    {"Cache emulation parameter ranges (executable spec)", runTable2},
	"fig1":      {"System cache size ranges, current and projected", runFig1},
	"table3":    {"Execution time: trace-driven C simulator vs MemorIES", runTable3},
	"table4":    {"Execution time: Augmint vs MemorIES (FFT)", runTable4},
	"fig8":      {"L3 miss ratio vs cache size for short and long traces", runFig8},
	"fig9":      {"L3 miss ratio vs processors per L3, short vs long traces", runFig9},
	"fig10":     {"TPC-C miss-ratio profile with OS journaling spikes", runFig10},
	"table5":    {"SPLASH2 application characteristics", runTable5},
	"table6":    {"SPLASH2 miss rates: scaled vs full problem sizes", runTable6},
	"fig11":     {"L3 miss ratio vs L3 size for SPLASH2 applications", runFig11},
	"fig12":     {"Where an L2 miss is satisfied (FFT, Ocean, FMM)", runFig12},
	"faults":    {"Fault injection: tag-store soft errors, scrub, and forced overflow retries", runFaults},
	"hostscale": {"Event-wheel host scaling: dispatched events vs lock-step polls", runHostScale},

	"protocolcompare": {"Coherence traffic under MSI vs MESI vs MOESI vs write-once (TPC-C)", runProtocolCompare},
}

// IDs returns the experiment identifiers in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered title for an experiment ID.
func Title(id string) string { return registry[id].title }

// Options adjusts how an experiment runs without changing what it
// computes.
type Options struct {
	// Parallel bounds the number of sweep points run concurrently inside
	// the experiment. 0 means GOMAXPROCS; 1 is the serial golden run.
	Parallel int
	// BigMem enables the fully allocated big-memory corners (table2's
	// 8 GB directory run: ~512 MB RAM and tens of seconds).
	BigMem bool
	// Obs attaches every board the experiment builds to this metrics
	// registry (see Preset.Obs). Each experiment run needs a fresh
	// registry scope, so re-running the same ID against the same
	// registry fails with a duplicate-prefix error.
	Obs *obs.Registry
	// NumCPUs, when positive, overrides the emulated machine size (see
	// Preset.NumCPUs). 0 keeps the preset defaults.
	NumCPUs int
	// Protocol, when non-nil, replaces MESI as the coherence protocol
	// on every emulated node (see Preset.Protocol).
	Protocol *coherence.Table
}

// Run regenerates one experiment at the given scale, serially — the
// deterministic golden path. Equivalent to RunWith with Parallel: 1.
func Run(id string, scale Scale) (*Result, error) {
	return RunWith(id, scale, Options{Parallel: 1})
}

// RunWith regenerates one experiment at the given scale with the given
// options. The returned error is non-nil if the experiment could not run
// or its result violates the paper's qualitative shape.
func RunWith(id string, scale Scale, opts Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	p := PresetFor(scale)
	p.Parallel = opts.Parallel
	if p.Parallel <= 0 {
		p.Parallel = runtime.GOMAXPROCS(0)
	}
	p.BigMem = opts.BigMem
	p.Obs = opts.Obs
	p.ObsScope = id
	p.NumCPUs = opts.NumCPUs
	p.Protocol = opts.Protocol
	res, err := r.run(p)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	return res, nil
}
