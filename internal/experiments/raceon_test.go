//go:build race

package experiments

// raceDetectorEnabled lets the expensive equivalence tests shrink under
// `go test -race`: the race detector multiplies the experiment shape
// checks' runtime past the per-package test timeout, and the
// equivalence tests assert determinism, not synchronization. A reduced
// parallel sweep still runs under race for interleaving coverage.
const raceDetectorEnabled = true
