package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/host"
	"memories/internal/parallel"
	"memories/internal/stats"
	"memories/internal/workload"
)

// hostScaleConfig is the per-CPU host used by the scaling sweep: small
// private caches so megabyte streams generate dense coherence traffic,
// and a little I/O so DMA events ride the wheel too.
func hostScaleConfig(ncpu int) host.Config {
	cfg := host.DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.L1Bytes = 8 * addr.KB
	cfg.L2Bytes = 64 * addr.KB
	cfg.IOFraction = 0.002
	return cfg
}

// hostScaleStreams builds `active` single-CPU Zipf streams over a shared
// region (remaining CPUs idle), so the busy actors conflict and exercise
// upgrades, invalidations, and interventions.
func hostScaleStreams(ncpu, active int, seed uint64) []workload.Generator {
	streams := make([]workload.Generator, ncpu)
	for i := 0; i < active; i++ {
		streams[i] = workload.NewZipfian(workload.ZipfConfig{
			NumCPUs:       1,
			FootprintByte: addr.MB,
			WriteFraction: 0.3,
			Seed:          seed + uint64(i),
		})
	}
	return streams
}

// runHostScale demonstrates the discrete-event host's scaling claim: the
// work per emulated bus cycle is proportional to *bus events*, not to the
// machine size. Each sweep point runs the same 8 busy streams inside a
// progressively larger SMP and reports the events the wheel dispatched
// against the per-cycle polls a lock-step loop would have evaluated
// (cycles x CPUs). The wheel row stays flat as CPUs grow; the poll count
// explodes - that ratio is the emulation-speed headroom.
//
// Every point also re-runs under the retained lock-step engine and
// requires bit-identical statistics, event counts, and bus clocks: the
// equivalence oracle at experiment scope.
func runHostScale(p Preset) (*Result, error) {
	sweep := p.HostScaleCPUs
	if p.NumCPUs > 0 {
		sweep = []int{p.NumCPUs}
	}
	cycles := p.HostScaleCycles
	const seed = 21

	type point struct {
		ncpu   int
		active int
		events uint64
		st     host.Stats
		bst    busStatsLike
		busPct float64
	}
	pts, err := parallel.Map(p.Parallel, len(sweep), func(i int) (point, error) {
		ncpu := sweep[i]
		active := p.HostScaleActive
		if active > ncpu {
			active = ncpu
		}
		run := func(engine host.Engine) (*host.Host, error) {
			h, err := host.NewPerCPU(hostScaleConfig(ncpu), hostScaleStreams(ncpu, active, seed), engine)
			if err != nil {
				return nil, err
			}
			h.RunCycles(cycles)
			return h, nil
		}
		wheel, err := run(host.EngineWheel)
		if err != nil {
			return point{}, err
		}
		lock, err := run(host.EngineLockStep)
		if err != nil {
			return point{}, err
		}
		if wheel.Stats() != lock.Stats() {
			return point{}, fmt.Errorf("hostscale: %d CPUs: wheel and lock-step stats diverge:\n %+v\n %+v",
				ncpu, wheel.Stats(), lock.Stats())
		}
		if wheel.Events() != lock.Events() {
			return point{}, fmt.Errorf("hostscale: %d CPUs: wheel dispatched %d events, lock-step %d",
				ncpu, wheel.Events(), lock.Events())
		}
		if wheel.Bus().Stats() != lock.Bus().Stats() {
			return point{}, fmt.Errorf("hostscale: %d CPUs: bus stats diverge between engines", ncpu)
		}
		bs := wheel.Bus().Stats()
		return point{
			ncpu:   ncpu,
			active: active,
			events: wheel.Events(),
			st:     wheel.Stats(),
			bst:    busStatsLike{Transactions: bs.Transactions, BusyCycles: bs.BusyCycles},
			busPct: 100 * float64(bs.BusyCycles) / float64(wheel.Bus().Cycle()),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("HOST SCALING. Event-wheel dispatches vs. lock-step polls over %d bus cycles", cycles),
		"CPUs", "busy", "refs", "bus txns", "bus busy%", "events", "lock-step polls", "polls/event")
	for _, pt := range pts {
		polls := cycles * uint64(pt.ncpu)
		t.AddRow(pt.ncpu, pt.active, pt.st.Refs, pt.bst.Transactions,
			fmt.Sprintf("%.1f%%", pt.busPct), pt.events, polls,
			float64(polls)/float64(pt.events))
	}
	res := &Result{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("%d conflicting Zipf streams (seed %d) inside machines of growing size; idle CPUs are never scheduled", pts[0].active, seed),
			"every point re-ran under the lock-step engine with bit-identical stats, events, and bus clock",
		},
	}

	// Shape: the busy work is size-invariant — every sweep point with the
	// same busy-stream count dispatches the same events and bus traffic —
	// while the lock-step poll count grows with the machine.
	for _, pt := range pts {
		if pt.st.L2Misses == 0 || pt.st.Invalidations == 0 {
			return nil, fmt.Errorf("hostscale: degenerate run at %d CPUs (stats %+v); streams must conflict",
				pt.ncpu, pt.st)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].active != pts[0].active {
			continue // a narrowed sweep can clamp the busy count
		}
		if pts[i].events != pts[0].events || pts[i].st != pts[0].st {
			return nil, fmt.Errorf("hostscale: events/stats changed with machine size (%d CPUs: %d events, %d CPUs: %d events) — idle CPUs must cost zero",
				pts[0].ncpu, pts[0].events, pts[i].ncpu, pts[i].events)
		}
	}
	if n := len(pts); n > 1 {
		first := float64(cycles*uint64(pts[0].ncpu)) / float64(pts[0].events)
		last := float64(cycles*uint64(pts[n-1].ncpu)) / float64(pts[n-1].events)
		if last <= first {
			return nil, fmt.Errorf("hostscale: polls/event did not grow with machine size (%.1f -> %.1f)", first, last)
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"shape: polls/event grows %.1fx from %d to %d CPUs while dispatched events stay constant",
			last/first, pts[0].ncpu, pts[n-1].ncpu))
	}
	return res, nil
}

// busStatsLike keeps only the bus columns the table reports, so the
// sweep's result type stays comparable.
type busStatsLike struct {
	Transactions uint64
	BusyCycles   uint64
}
