package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/parallel"
	"memories/internal/stats"
	"memories/internal/workload"
)

// runFig9 reproduces Figure 9: L3 miss ratio as a function of how many of
// the 8 processors share each fixed-size L3 cache, for a short and a long
// trace. The paper's key result is the trend reversal: with a short trace
// more sharing looks better (processors prefetch shared data for each
// other, and cold misses dominate), while the long trace's steady state
// shows more sharing is worse (the cache must hold the union of the
// sharers' working sets).
func runFig9(p Preset) (*Result, error) {
	hcfg := dbHostConfig(p)
	newGen := func() workload.Generator {
		return workload.NewTPCC(workload.ScaledTPCCConfig(p.TPCCFactor))
	}
	procCounts := []int{1, 2, 4, 8}
	cacheBytes := p.Fig9CacheMB * addr.MB

	// 2*len(procCounts) independent sweeps: even tasks are the long
	// trace, odd tasks the short one, for procCounts[i/2] per node.
	flat, err := parallel.Map(p.Parallel, 2*len(procCounts), func(i int) (float64, error) {
		refs, trace := p.Fig9Long, "long"
		if i%2 == 1 {
			refs, trace = p.Fig9Short, "short"
		}
		scope := fmt.Sprintf("procs%d.%s", procCounts[i/2], trace)
		return procSweep(p, scope, hcfg, newGen, cacheBytes, 128, 8, refs, procCounts[i/2], p.Parallel)
	})
	if err != nil {
		return nil, err
	}
	long := make([]float64, len(procCounts))
	short := make([]float64, len(procCounts))
	for i := range procCounts {
		long[i], short[i] = flat[2*i], flat[2*i+1]
	}

	t := stats.NewTable(
		fmt.Sprintf("FIGURE 9. L3 Miss Ratio vs. Processors per %s L3", addr.FormatSize(cacheBytes)),
		"Processors per L3", "long trace", "short trace")
	for i, procs := range procCounts {
		t.AddRow(procs, long[i], short[i])
	}
	res := &Result{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("TPC-C, 8 processors total; long %d refs, short %d refs", p.Fig9Long, p.Fig9Short),
			"configurations with more than four L3s run as multiple board passes (the board has four node controllers)",
		},
	}

	// Shape: the long trace worsens with sharing; the short trace
	// improves — the trend must reverse.
	if long[len(long)-1] < long[0]*1.05 {
		return nil, fmt.Errorf("fig9: long trace does not worsen with sharing (1 proc %.4f vs 8 procs %.4f)",
			long[0], long[len(long)-1])
	}
	if short[0] < short[len(short)-1]*1.05 {
		return nil, fmt.Errorf("fig9: short trace does not improve with sharing (1 proc %.4f vs 8 procs %.4f)",
			short[0], short[len(short)-1])
	}
	for i := 1; i < len(procCounts); i++ {
		if long[i] < long[i-1]*0.98 {
			return nil, fmt.Errorf("fig9: long trace not monotone rising at %d procs (%.4f -> %.4f)",
				procCounts[i], long[i-1], long[i])
		}
		if short[i] > short[i-1]*1.02 {
			return nil, fmt.Errorf("fig9: short trace not monotone falling at %d procs (%.4f -> %.4f)",
				procCounts[i], short[i-1], short[i])
		}
	}
	res.Notes = append(res.Notes,
		"shape: trend reversal reproduced — short traces say share more, steady state says share less")
	return res, nil
}
