package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/cache"
	"memories/internal/core"
	"memories/internal/host"
	"memories/internal/parallel"
	"memories/internal/workload"
)

// allCPUs returns [0..n).
func allCPUs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// stdNode builds a standard LRU node configuration running the
// preset's coherence protocol (MESI unless -protocol overrode it).
func stdNode(p Preset, name string, cpus []int, sizeBytes, lineBytes int64, assoc, group int) core.NodeConfig {
	return core.NodeConfig{
		Name:     name,
		CPUs:     cpus,
		Geometry: addr.MustGeometry(sizeBytes, lineBytes, assoc),
		Policy:   cache.LRU,
		Protocol: p.protocol(),
		Group:    group,
	}
}

// dbHostConfig is the host used for the database case studies at the
// preset's scale.
func dbHostConfig(p Preset) host.Config {
	cfg := host.DefaultConfig()
	cfg.L2Bytes = p.DBHostL2Bytes
	cfg.L2Assoc = p.DBHostL2Assoc
	if p.NumCPUs > 0 {
		cfg.NumCPUs = p.NumCPUs
	}
	return cfg
}

// boardRun wires a fresh host (from cfg and generator factory) to a fresh
// board and runs refs references, flushing the board at the end. When the
// preset carries a registry, the board's counters appear under
// "<ObsScope>.<label>.*" for the duration of the run; label must be
// unique within the experiment.
func boardRun(p Preset, label string, hcfg host.Config, newGen func() workload.Generator, bcfg core.Config, refs uint64) (*core.Board, *host.Host, error) {
	b, err := core.NewBoard(bcfg)
	if err != nil {
		return nil, nil, err
	}
	if p.Obs != nil {
		prefix := p.ObsScope
		if prefix == "" {
			prefix = "experiment"
		}
		if label != "" {
			prefix += "." + label
		}
		if err := b.Observe(p.Obs, nil, prefix, 0); err != nil {
			return nil, nil, err
		}
	}
	h, err := host.New(hcfg, newGen())
	if err != nil {
		return nil, nil, err
	}
	h.Bus().Attach(b)
	h.Run(refs)
	b.Flush()
	// Publish the exact post-flush counters so a sampler's final snapshot
	// matches the end-of-run tables.
	b.PublishObs()
	return b, h, nil
}

// cacheSweep measures one emulated-cache configuration per size, all
// observing the same workload stream. Sizes run in batches of four —
// one per node controller, each in its own snoop group (the board's
// multiple-configuration mode, §2.2) — so every batch needs only one
// host run, and the deterministic generators guarantee every batch sees
// an identical stream. Batches are fully independent (fresh board, host,
// and seeded generator each), so up to par of them run concurrently;
// results are bit-identical at every par.
func cacheSweep(p Preset, scope string, hcfg host.Config, newGen func() workload.Generator, sizes []int64, lineBytes int64, assoc int, refs uint64, par int) ([]core.NodeView, error) {
	nBatches := (len(sizes) + core.MaxNodes - 1) / core.MaxNodes
	batches, err := parallel.Map(par, nBatches, func(bi int) ([]core.NodeView, error) {
		start := bi * core.MaxNodes
		end := min(start+core.MaxNodes, len(sizes))
		var nodes []core.NodeConfig
		for i, size := range sizes[start:end] {
			nodes = append(nodes, stdNode(p, fmt.Sprintf("s%d", start+i), allCPUs(hcfg.NumCPUs), size, lineBytes, assoc, i))
		}
		b, _, err := boardRun(p, sweepLabel(scope, bi), hcfg, newGen, core.Config{Nodes: nodes}, refs)
		if err != nil {
			return nil, err
		}
		out := make([]core.NodeView, len(nodes))
		for i := range nodes {
			out[i] = b.Node(i)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	views := make([]core.NodeView, 0, len(sizes))
	for _, b := range batches {
		views = append(views, b...)
	}
	return views, nil
}

// procSweep measures the aggregate miss ratio when the host's CPUs are
// split into nodes of `procs` processors, each with its own cache of
// cacheBytes. More than four nodes take multiple board runs (the paper's
// board has four controllers); results aggregate across runs.
func procSweep(p Preset, scope string, hcfg host.Config, newGen func() workload.Generator, cacheBytes, lineBytes int64, assoc int, refs uint64, procs, par int) (float64, error) {
	if hcfg.NumCPUs%procs != 0 {
		return 0, fmt.Errorf("experiments: %d CPUs not divisible by %d per node", hcfg.NumCPUs, procs)
	}
	nodesNeeded := hcfg.NumCPUs / procs
	nBatches := (nodesNeeded + core.MaxNodes - 1) / core.MaxNodes
	type tally struct{ miss, refs uint64 }
	tallies, err := parallel.Map(par, nBatches, func(batch int) (tally, error) {
		var nodes []core.NodeConfig
		for n := batch * core.MaxNodes; n < nodesNeeded && n < (batch+1)*core.MaxNodes; n++ {
			cpus := make([]int, procs)
			for j := range cpus {
				cpus[j] = n*procs + j
			}
			nodes = append(nodes, stdNode(p, fmt.Sprintf("n%d", n), cpus, cacheBytes, lineBytes, assoc, 0))
		}
		b, _, err := boardRun(p, sweepLabel(scope, batch), hcfg, newGen, core.Config{Nodes: nodes}, refs)
		if err != nil {
			return tally{}, err
		}
		var t tally
		for i := range nodes {
			v := b.Node(i)
			t.miss += v.Misses()
			t.refs += v.Refs()
		}
		return t, nil
	})
	if err != nil {
		return 0, err
	}
	var missSum, refSum uint64
	for _, t := range tallies {
		missSum += t.miss
		refSum += t.refs
	}
	if refSum == 0 {
		return 0, fmt.Errorf("experiments: proc sweep saw no references")
	}
	return float64(missSum) / float64(refSum), nil
}

// sweepLabel names one sweep batch's board in the metrics registry.
func sweepLabel(scope string, batch int) string {
	if scope == "" {
		return fmt.Sprintf("batch%d", batch)
	}
	return fmt.Sprintf("%s.batch%d", scope, batch)
}

// monotoneNonincreasing checks a curve falls (within a relative
// tolerance) as the x axis grows.
func monotoneNonincreasing(xs []int64, ys []float64, tol float64, what string) error {
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]*(1+tol) {
			return fmt.Errorf("%s: not monotone at %d (%.4f -> %.4f)", what, xs[i], ys[i-1], ys[i])
		}
	}
	return nil
}
