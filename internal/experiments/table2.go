package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/internal/stats"
)

// runTable2 reproduces Table 2 ("Summary of Cache Emulation Parameters")
// as an executable specification: for every corner of the advertised
// parameter space — 2MB to 8GB capacity, direct-mapped to 8-way, 128B to
// 16KB lines, 1 to 8 processors per shared cache node — it actually
// constructs a board with that configuration and pushes traffic through
// it. A range the implementation cannot emulate fails the experiment.
func runTable2(p Preset) (*Result, error) {
	t := stats.NewTable(
		"TABLE 2. Summary of Cache Emulation Parameters",
		"Feature", "Paper range", "Verified configurations")

	type corner struct {
		size  int64
		line  int64
		assoc int
		cpus  int
	}
	corners := []corner{
		{2 * addr.MB, 128, 1, 1},       // minimum everything
		{2 * addr.MB, 128, 8, 8},       // min size, max assoc/CPUs
		{8 * addr.GB, 16 * 1024, 8, 8}, // maximum everything
		{8 * addr.GB, 128, 1, 1},       // max size, min line/assoc
		{64 * addr.MB, 1024, 4, 4},     // a mid-range point
		{256 * addr.MB, 16 * 1024, 2, 2},
	}
	verified := 0
	for _, c := range corners {
		g, err := addr.NewGeometry(c.size, c.line, c.assoc)
		if err != nil {
			return nil, fmt.Errorf("table2: geometry %v rejected: %v", c, err)
		}
		cpus := make([]int, c.cpus)
		for i := range cpus {
			cpus[i] = i
		}
		b, err := core.NewBoard(core.Config{Nodes: []core.NodeConfig{{
			Name:     "a",
			CPUs:     cpus,
			Geometry: g,
			Policy:   cache.LRU,
			Protocol: p.protocol(),
		}}})
		if err != nil {
			return nil, fmt.Errorf("table2: board rejected %v: %v", c, err)
		}
		// Exercise the corner: miss, hit, castout, eviction pressure.
		cycle := uint64(0)
		for i := 0; i < 2000; i++ {
			cycle += 100
			a := uint64(i) * uint64(c.line) * 7 // stride across sets
			b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: a, Size: int(c.line), SrcID: i % c.cpus, Cycle: cycle})
			cycle += 100
			b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: a, Size: int(c.line), SrcID: i % c.cpus, Cycle: cycle})
		}
		b.Flush()
		v := b.Node(0)
		if v.ReadMiss == 0 || v.ReadHit == 0 {
			return nil, fmt.Errorf("table2: corner %v produced no hits or no misses (%+v)", c, v)
		}
		verified++
	}

	t.AddRow("Cache size", "2MB - 8GB", "2MB, 64MB, 256MB, 8GB")
	t.AddRow("Cache associativity", "direct mapped to 8-way", "1, 2, 4, 8 ways")
	t.AddRow("Processors per shared cache node", "1 - 8", "1, 2, 4, 8")
	t.AddRow("Cache line size", "128B - 16KB", "128B, 1KB, 16KB")
	notes := []string{
		fmt.Sprintf("%d corner configurations constructed and exercised end-to-end (hits, misses, evictions)", verified),
	}
	if p.BigMem {
		note, err := runTable2BigMem()
		if err != nil {
			return nil, err
		}
		notes = append(notes, note)
	} else {
		notes = append(notes,
			"the 8GB/128B corner above touches only a stride through its 64M tag entries; pass -bigmem for the fully allocated run")
	}
	return &Result{
		Tables: []*stats.Table{t},
		Notes:  notes,
	}, nil
}

// runTable2BigMem promotes the paper's largest advertised configuration —
// an 8 GB emulated cache with 128 B lines, the Table 2 corner that
// motivates the single-SDRAM-word entry format (§3.3) — from a
// stride-touch smoke test to a real run: every one of the 64M directory
// slots is filled through the bus, so the packed tag store is fully
// resident in memory, and the note reports the realized footprint. With
// the packed layout (and ECC in-word) that is 8 bytes per slot — 512 MB,
// comfortably inside the board's 1 GB SDRAM budget, where the old
// parallel-array layout needed tags+state+ECC+stamps spread across
// ~18 bytes per slot.
func runTable2BigMem() (string, error) {
	return runTable2FullFill(8 * addr.GB)
}

// runTable2FullFill fills every directory slot of a size/128B/1-way
// board through the bus and checks residency and the per-slot budget.
// Split out from runTable2BigMem so tests can run it at a small size.
func runTable2FullFill(size int64) (string, error) {
	g, err := addr.NewGeometry(size, 128, 1)
	if err != nil {
		return "", fmt.Errorf("table2 bigmem: %v", err)
	}
	b, err := core.NewBoard(core.Config{
		Nodes: []core.NodeConfig{{
			Name:     "big",
			CPUs:     []int{0},
			Geometry: g,
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		}},
		ECC: true,
	})
	if err != nil {
		return "", fmt.Errorf("table2 bigmem: board rejected: %v", err)
	}
	lines := g.Lines()
	cycle := uint64(0)
	for i := int64(0); i < lines; i++ {
		cycle += 24
		b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: uint64(i) * 128, Size: 128, SrcID: 0, Cycle: cycle})
	}
	b.Flush()
	resident := b.DirectoryResident(0) // O(1): no 64M-slot scan
	if resident != lines {
		return "", fmt.Errorf("table2 bigmem: %d of %d slots resident after full fill", resident, lines)
	}
	bytes := b.DirectoryBytes(0)
	perSlot := float64(bytes) / float64(lines)
	if perSlot > 9 {
		return "", fmt.Errorf("table2 bigmem: %.2f bytes/slot exceeds the 9 B/slot budget", perSlot)
	}
	return fmt.Sprintf(
		"bigmem: %s/128B corner fully allocated — %d slots resident, %s directory footprint (%.2f B/slot with in-word ECC)",
		addr.FormatSize(size), lines, addr.FormatSize(bytes), perSlot), nil
}
