package experiments

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/internal/stats"
)

// runTable2 reproduces Table 2 ("Summary of Cache Emulation Parameters")
// as an executable specification: for every corner of the advertised
// parameter space — 2MB to 8GB capacity, direct-mapped to 8-way, 128B to
// 16KB lines, 1 to 8 processors per shared cache node — it actually
// constructs a board with that configuration and pushes traffic through
// it. A range the implementation cannot emulate fails the experiment.
func runTable2(_ Preset) (*Result, error) {
	t := stats.NewTable(
		"TABLE 2. Summary of Cache Emulation Parameters",
		"Feature", "Paper range", "Verified configurations")

	type corner struct {
		size  int64
		line  int64
		assoc int
		cpus  int
	}
	corners := []corner{
		{2 * addr.MB, 128, 1, 1},       // minimum everything
		{2 * addr.MB, 128, 8, 8},       // min size, max assoc/CPUs
		{8 * addr.GB, 16 * 1024, 8, 8}, // maximum everything
		{8 * addr.GB, 128, 1, 1},       // max size, min line/assoc
		{64 * addr.MB, 1024, 4, 4},     // a mid-range point
		{256 * addr.MB, 16 * 1024, 2, 2},
	}
	verified := 0
	for _, c := range corners {
		g, err := addr.NewGeometry(c.size, c.line, c.assoc)
		if err != nil {
			return nil, fmt.Errorf("table2: geometry %v rejected: %v", c, err)
		}
		cpus := make([]int, c.cpus)
		for i := range cpus {
			cpus[i] = i
		}
		b, err := core.NewBoard(core.Config{Nodes: []core.NodeConfig{{
			Name:     "a",
			CPUs:     cpus,
			Geometry: g,
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		}}})
		if err != nil {
			return nil, fmt.Errorf("table2: board rejected %v: %v", c, err)
		}
		// Exercise the corner: miss, hit, castout, eviction pressure.
		cycle := uint64(0)
		for i := 0; i < 2000; i++ {
			cycle += 100
			a := uint64(i) * uint64(c.line) * 7 // stride across sets
			b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: a, Size: int(c.line), SrcID: i % c.cpus, Cycle: cycle})
			cycle += 100
			b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: a, Size: int(c.line), SrcID: i % c.cpus, Cycle: cycle})
		}
		b.Flush()
		v := b.Node(0)
		if v.ReadMiss == 0 || v.ReadHit == 0 {
			return nil, fmt.Errorf("table2: corner %v produced no hits or no misses (%+v)", c, v)
		}
		verified++
	}

	t.AddRow("Cache size", "2MB - 8GB", "2MB, 64MB, 256MB, 8GB")
	t.AddRow("Cache associativity", "direct mapped to 8-way", "1, 2, 4, 8 ways")
	t.AddRow("Processors per shared cache node", "1 - 8", "1, 2, 4, 8")
	t.AddRow("Cache line size", "128B - 16KB", "128B, 1KB, 16KB")
	return &Result{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("%d corner configurations constructed and exercised end-to-end (hits, misses, evictions)", verified),
			"an 8GB directory at 128B lines allocates 64M tag entries — the test touches only a stride through it",
		},
	}, nil
}
