package experiments

import (
	"testing"

	"memories/internal/workload/splash"
)

func TestPresetsAreInternallyConsistent(t *testing.T) {
	for _, scale := range []Scale{ScaleCI, ScaleDefault, ScalePaper} {
		p := PresetFor(scale)
		if p.Scale != scale {
			t.Errorf("%v: Scale field mismatch", scale)
		}
		if p.Fig8Long <= p.Fig8Short {
			t.Errorf("%v: fig8 long (%d) not above short (%d)", scale, p.Fig8Long, p.Fig8Short)
		}
		if p.Fig9Long <= p.Fig9Short {
			t.Errorf("%v: fig9 long not above short", scale)
		}
		if len(p.Fig8SizesMB) < 3 {
			t.Errorf("%v: fig8 needs at least 3 sizes", scale)
		}
		for i := 1; i < len(p.Fig8SizesMB); i++ {
			if p.Fig8SizesMB[i] <= p.Fig8SizesMB[i-1] {
				t.Errorf("%v: fig8 sizes not ascending", scale)
			}
		}
		for i := 1; i < len(p.Table3Sizes); i++ {
			if p.Table3Sizes[i] <= p.Table3Sizes[i-1] {
				t.Errorf("%v: table3 sizes not ascending", scale)
			}
		}
		for i := 1; i < len(p.Table4Ms); i++ {
			if p.Table4Ms[i] <= p.Table4Ms[i-1] {
				t.Errorf("%v: table4 m values not ascending", scale)
			}
		}
		if p.Fig10BurstRefs >= p.Fig10PeriodRefs {
			t.Errorf("%v: journaling burst not shorter than its period", scale)
		}
		// The profile must have enough buckets for spike analysis: at
		// least ~10 periods in the run.
		if p.Fig10Refs/p.Fig10PeriodRefs < 8 {
			t.Errorf("%v: fig10 run covers only %d journaling periods", scale, p.Fig10Refs/p.Fig10PeriodRefs)
		}
		if p.TPCCFactor < 1 || p.TPCHFactor < 1 {
			t.Errorf("%v: footprint factors must be >= 1", scale)
		}
		if p.DBHostL2Bytes <= 0 || p.Fig11L2Bytes <= 0 {
			t.Errorf("%v: host cache sizes unset", scale)
		}
	}
}

func TestPaperPresetUsesPaperParameters(t *testing.T) {
	p := PresetFor(ScalePaper)
	if p.TPCCFactor != 1 || p.TPCHFactor != 1 {
		t.Error("paper preset must use full database footprints")
	}
	if p.Fig8Long != 10_000_000_000 {
		t.Error("paper preset must use the 10B-reference long trace")
	}
	if p.Fig9Short != 45_000_000 {
		t.Error("paper preset must use the 45M-reference short trace of Figure 9")
	}
	if p.Fig11Size != splash.SizePaper || p.Fig12Size != splash.SizePaper {
		t.Error("paper preset must use full SPLASH2 problem sizes")
	}
	if p.Table4Ms[0] != 20 || p.Table4Ms[len(p.Table4Ms)-1] != 26 {
		t.Error("paper preset must sweep FFT m=20..26 (Table 4)")
	}
	if p.Table3Sizes[len(p.Table3Sizes)-1] != 10_000_000_000 {
		t.Error("paper preset must include the 10B-vector Table 3 row")
	}
}

func TestCIPresetIsSmallEnough(t *testing.T) {
	p := PresetFor(ScaleCI)
	if p.Fig8Long > 10_000_000 || p.Fig9Long > 5_000_000 {
		t.Error("CI preset too slow for automated tests")
	}
	if p.Fig11Size == splash.SizePaper {
		t.Error("CI preset should use classic SPLASH2 sizes for the board sweeps")
	}
}
