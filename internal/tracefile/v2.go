// Trace format version 2 ("MIES0002"): block-framed varint delta
// encoding. Version 1 spends a fixed 8 bytes per bus reference; almost
// all of that is address entropy that successive references do not have
// — bus traffic is bursty and spatially local, so the doubleword-granular
// address deltas between consecutive records are small. V2 exploits that:
//
//	file    := "MIES0002" block*
//	block   := count:u32le  payloadLen:u32le  crc32(payload):u32le  payload
//	payload := record*                            (exactly count records)
//	record  := tag [cmd src]? zigzag-uvarint(Δ(addr>>3))
//
// The tag byte packs command and source bus ID into one byte for the
// common case (cmd <= 14, src <= 15: tag = cmd<<4 | src); rarer values
// escape with tag 0xF0 followed by the full cmd and src bytes. The
// address is carried as the zigzag-encoded delta of the doubleword
// index (addr>>3) from the previous record in the same block; the first
// record of a block deltas from zero. A typical record is therefore 2-4
// bytes instead of 8.
//
// Deltas reset at every block boundary, so blocks decode independently:
// that is what lets ForEachBatch fan block decoding out across workers
// and re-deliver the batches in file order, and what keeps a single
// flipped bit from poisoning more than one block (each block carries a
// CRC-32 of its payload).
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"

	"memories/internal/bus"
	"memories/internal/parallel"
)

// MagicV2 identifies a version-2 MemorIES trace file.
const MagicV2 = "MIES0002"

// DefaultBlockRecords is the number of records per block sealed by a
// V2Writer: large enough to amortize the 12-byte header and give decode
// workers meaningful slabs, small enough that a corrupt block loses
// little and streaming readers stay cache-resident.
const DefaultBlockRecords = 4096

const (
	blockHeaderSize = 12
	// maxBlockRecords bounds the per-block record count a reader will
	// accept, so a corrupt header cannot demand an absurd allocation.
	maxBlockRecords = 1 << 20
	// maxRecordBytes is the worst-case encoded record: escape tag (3
	// bytes) plus a maximal 10-byte varint.
	maxRecordBytes = 13
	// minRecordBytes is the best case: packed tag plus a 1-byte varint.
	minRecordBytes = 2
)

// ErrCorrupt is returned when a v2 block fails its CRC or its payload
// does not decode to exactly the advertised record count.
var ErrCorrupt = errors.New("tracefile: corrupt v2 block")

// appendRecordV2 appends one encoded record to dst, returning the
// extended slice and the new previous-doubleword value.
func appendRecordV2(dst []byte, prev uint64, r Record) ([]byte, uint64, error) {
	if r.Addr&7 != 0 {
		return dst, prev, fmt.Errorf("%w: %#x", ErrUnaligned, r.Addr)
	}
	if r.Addr >= MaxAddr {
		return dst, prev, fmt.Errorf("%w: %#x", ErrAddrRange, r.Addr)
	}
	if r.Cmd <= 14 && r.SrcID <= 15 {
		dst = append(dst, byte(r.Cmd)<<4|r.SrcID)
	} else {
		dst = append(dst, 0xF0, byte(r.Cmd), r.SrcID)
	}
	word := r.Addr >> 3
	d := int64(word - prev)
	dst = binary.AppendUvarint(dst, uint64(d<<1)^uint64(d>>63))
	return dst, word, nil
}

// decodeBlockV2 decodes a block payload holding count records, appending
// them to dst (typically recs[:0] of a reused slab). The payload must be
// consumed exactly.
//
// This is the inner loop of the streaming trace pipeline, so it is
// written for speed: dst is pre-sized and stored by index, and while at
// least maxRecordBytes remain the varint is extracted from a single
// 8-byte little-endian load instead of a byte-at-a-time loop. That load
// is always sufficient for well-formed data — deltas are doubleword
// indices below MaxAddr>>3 (2^48), so their zigzag encoding fits 7
// varint bytes; anything needing more is corrupt and takes the slow
// path, which rejects it.
func decodeBlockV2(payload []byte, count int, dst []Record) ([]Record, error) {
	base := len(dst)
	if cap(dst) < base+count {
		dst = append(dst, make([]Record, count)...)
	} else {
		dst = dst[:base+count]
	}
	var prev uint64
	i := 0
	n := 0
	for ; n < count && len(payload)-i >= maxRecordBytes; n++ {
		recStart := i
		tag := payload[i]
		i++
		var cmd, src uint8
		if tag < 0xF0 {
			cmd, src = tag>>4, tag&0xF
		} else {
			if tag != 0xF0 {
				return dst[:base+n], ErrCorrupt
			}
			cmd, src = payload[i], payload[i+1]
			i += 2
		}
		x := binary.LittleEndian.Uint64(payload[i:])
		// Varint length from the continuation bits, then a branch-free
		// 8→7-bit fold: delta lengths vary record to record, so a
		// byte-at-a-time loop pays a branch misprediction per record.
		nb := bits.TrailingZeros64(^x&0x8080808080808080) >> 3
		if nb >= 8 {
			// A 9- or 10-byte varint: legal varint64 space but out of
			// range for any valid delta here — defer the whole record to
			// the checked slow path, which rejects or accepts it byte by
			// byte.
			i = recStart
			break
		}
		x &= 1<<(8*uint(nb)+8) - 1 // keep the nb+1 participating bytes
		x &= 0x7F7F7F7F7F7F7F7F    // drop the continuation bits
		x = (x & 0x007F007F007F007F) | ((x & 0x7F007F007F007F00) >> 1)
		x = (x & 0x00003FFF00003FFF) | ((x & 0x3FFF00003FFF0000) >> 2)
		u := (x & 0x000000000FFFFFFF) | ((x & 0x0FFFFFFF00000000) >> 4)
		i += nb + 1
		d := int64(u>>1) ^ -int64(u&1)
		prev += uint64(d)
		if prev >= MaxAddr>>3 {
			return dst[:base+n], ErrCorrupt
		}
		dst[base+n] = Record{Addr: prev << 3, Cmd: bus.Command(cmd), SrcID: src}
	}
	// Checked tail: the last few records of the block (and any escape to
	// the >8-byte varint case above).
	for ; n < count; n++ {
		if i >= len(payload) {
			return dst[:base+n], ErrCorrupt
		}
		tag := payload[i]
		i++
		var cmd, src uint8
		if tag >= 0xF0 {
			if tag != 0xF0 || i+2 > len(payload) {
				return dst[:base+n], ErrCorrupt
			}
			cmd, src = payload[i], payload[i+1]
			i += 2
		} else {
			cmd, src = tag>>4, tag&0xF
		}
		u, n2 := binary.Uvarint(payload[i:])
		if n2 <= 0 {
			return dst[:base+n], ErrCorrupt
		}
		i += n2
		d := int64(u>>1) ^ -int64(u&1)
		prev += uint64(d)
		if prev >= MaxAddr>>3 {
			return dst[:base+n], ErrCorrupt
		}
		dst[base+n] = Record{Addr: prev << 3, Cmd: bus.Command(cmd), SrcID: src}
	}
	if i != len(payload) {
		return dst[:base+n], ErrCorrupt
	}
	return dst, nil
}

// V2Writer streams records as version-2 blocks. Not safe for concurrent
// use; for parallel encoding see EncodeV2Blocks.
type V2Writer struct {
	bw           *bufio.Writer
	payload      []byte
	n            int
	prev         uint64
	blockRecords int
	count        uint64
	hdr          [blockHeaderSize]byte
}

// NewV2Writer writes the v2 magic and returns a block writer sealing
// blocks of DefaultBlockRecords records.
func NewV2Writer(w io.Writer) (*V2Writer, error) {
	return NewV2WriterBlock(w, DefaultBlockRecords)
}

// NewV2WriterBlock is NewV2Writer with an explicit block size.
func NewV2WriterBlock(w io.Writer, blockRecords int) (*V2Writer, error) {
	if blockRecords <= 0 || blockRecords > maxBlockRecords {
		return nil, fmt.Errorf("tracefile: block size %d out of range (1..%d)", blockRecords, maxBlockRecords)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(MagicV2); err != nil {
		return nil, err
	}
	return &V2Writer{bw: bw, blockRecords: blockRecords}, nil
}

// Write appends one record, sealing a block when it fills. The hot path
// is allocation-free once the payload buffer has grown to steady state.
func (w *V2Writer) Write(r Record) error {
	payload, prev, err := appendRecordV2(w.payload, w.prev, r)
	if err != nil {
		return err
	}
	w.payload, w.prev = payload, prev
	w.n++
	w.count++
	if w.n >= w.blockRecords {
		return w.seal()
	}
	return nil
}

// seal frames and writes the current block, if any.
func (w *V2Writer) seal() error {
	if w.n == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(w.hdr[0:], uint32(w.n))
	binary.LittleEndian.PutUint32(w.hdr[4:], uint32(len(w.payload)))
	binary.LittleEndian.PutUint32(w.hdr[8:], crc32.ChecksumIEEE(w.payload))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.payload); err != nil {
		return err
	}
	w.payload = w.payload[:0]
	w.n = 0
	w.prev = 0
	return nil
}

// Count returns the number of records written.
func (w *V2Writer) Count() uint64 { return w.count }

// Flush seals the partial block and drains the buffered writer. The
// writer remains usable; a subsequent Write starts a new block.
func (w *V2Writer) Flush() error {
	if err := w.seal(); err != nil {
		return err
	}
	return w.bw.Flush()
}

// V2Reader streams records from a version-2 trace: it decodes a block at
// a time into a reused slab and serves records from it, replacing v1's
// per-record io.ReadFull with a slab decode.
type V2Reader struct {
	br    *bufio.Reader
	frame []byte
	recs  []Record
	pos   int
	count uint64
	hdr   [blockHeaderSize]byte
}

// NewV2Reader validates the v2 magic and returns a reader.
func NewV2Reader(r io.Reader) (*V2Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if err := expectMagic(br, MagicV2); err != nil {
		return nil, err
	}
	return newV2Reader(br), nil
}

func newV2Reader(br *bufio.Reader) *V2Reader {
	return &V2Reader{br: br}
}

// readBlockRaw reads and sanity-checks one block header, then fills
// frame (reused, regrown as needed) with the raw payload. The CRC from
// the header is returned unverified — checkBlockCRC runs separately so
// the parallel pipeline can push that work onto decode workers. It
// returns io.EOF only at a clean block boundary; a torn header or
// payload yields a wrapped io.ErrUnexpectedEOF.
func readBlockRaw(br *bufio.Reader, frame []byte) (count int, crc uint32, _ []byte, err error) {
	var hdr [blockHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, frame, io.EOF
		}
		return 0, 0, frame, fmt.Errorf("tracefile: torn v2 block header: %w", io.ErrUnexpectedEOF)
	}
	count = int(binary.LittleEndian.Uint32(hdr[0:]))
	plen := int(binary.LittleEndian.Uint32(hdr[4:]))
	crc = binary.LittleEndian.Uint32(hdr[8:])
	if count < 1 || count > maxBlockRecords ||
		plen < count*minRecordBytes || plen > count*maxRecordBytes {
		return 0, 0, frame, fmt.Errorf("%w: implausible header (count=%d, payload=%d)", ErrCorrupt, count, plen)
	}
	if cap(frame) < plen {
		frame = make([]byte, plen)
	}
	frame = frame[:plen]
	if _, err := io.ReadFull(br, frame); err != nil {
		return 0, 0, frame, fmt.Errorf("tracefile: torn v2 block payload: %w", io.ErrUnexpectedEOF)
	}
	return count, crc, frame, nil
}

// checkBlockCRC verifies a raw payload against its header CRC.
func checkBlockCRC(payload []byte, crc uint32) error {
	if crc32.ChecksumIEEE(payload) != crc {
		return fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return nil
}

// loadBlock decodes the next block into the record slab.
func (r *V2Reader) loadBlock() error {
	count, crc, frame, err := readBlockRaw(r.br, r.frame)
	r.frame = frame
	if err != nil {
		return err
	}
	if err := checkBlockCRC(frame, crc); err != nil {
		return err
	}
	recs, err := decodeBlockV2(frame, count, r.recs[:0])
	r.recs = recs
	if err != nil {
		return err
	}
	r.pos = 0
	return nil
}

// Next returns the next record, or io.EOF after the last block. A torn
// or corrupt block yields a wrapped io.ErrUnexpectedEOF or ErrCorrupt.
func (r *V2Reader) Next() (Record, error) {
	if r.pos >= len(r.recs) {
		if err := r.loadBlock(); err != nil {
			return Record{}, err
		}
	}
	rec := r.recs[r.pos]
	r.pos++
	r.count++
	return rec, nil
}

// Count returns the number of records read so far.
func (r *V2Reader) Count() uint64 { return r.count }

// ForEachBatch streams a trace of either format to emit as decoded
// record batches, auto-detecting the magic. The batch slice is reused
// between calls: emit must finish with it before returning. For v2
// traces, up to `workers` blocks are CRC-checked and decoded
// concurrently (via internal/parallel) and the batches delivered
// strictly in file order, so the consumer sees exactly the sequential
// record stream; workers <= 1 decodes inline. It returns the number of
// records delivered.
func ForEachBatch(r io.Reader, workers int, emit func([]Record) error) (uint64, error) {
	br := bufio.NewReaderSize(r, 1<<18)
	magic, err := readMagic(br)
	if err != nil {
		return 0, err
	}
	switch magic {
	case Magic:
		return v1Batches(br, emit)
	case MagicV2:
		return v2Batches(br, workers, emit)
	}
	return 0, fmt.Errorf("tracefile: bad magic %q", magic)
}

// v1Batches slab-decodes fixed-size v1 records.
func v1Batches(br *bufio.Reader, emit func([]Record) error) (uint64, error) {
	const batch = DefaultBlockRecords
	raw := make([]byte, batch*RecordSize)
	recs := make([]Record, 0, batch)
	var total uint64
	for {
		n, err := io.ReadFull(br, raw)
		if n%RecordSize != 0 {
			return total, fmt.Errorf("tracefile: torn record after %d: %w", total+uint64(n/RecordSize), io.ErrUnexpectedEOF)
		}
		recs = recs[:0]
		for i := 0; i < n; i += RecordSize {
			recs = append(recs, Unpack(binary.LittleEndian.Uint64(raw[i:])))
		}
		if len(recs) > 0 {
			total += uint64(len(recs))
			if eerr := emit(recs); eerr != nil {
				return total, eerr
			}
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// v2Batches reads a window of raw block frames, decodes them on up to
// `workers` workers, and emits the decoded batches in file order.
func v2Batches(br *bufio.Reader, workers int, emit func([]Record) error) (uint64, error) {
	if workers < 1 {
		workers = 1
	}
	type slot struct {
		frame []byte
		recs  []Record
		count int
		crc   uint32
	}
	slots := make([]slot, workers)
	var total uint64
	for {
		// Fill the window serially (the file is one stream).
		filled := 0
		var readErr error
		for filled < workers {
			s := &slots[filled]
			count, crc, frame, err := readBlockRaw(br, s.frame)
			s.frame = frame
			if err != nil {
				readErr = err
				break
			}
			s.count = count
			s.crc = crc
			filled++
		}
		// CRC-check and decode the window concurrently, results slotted
		// by index. Hashing in the workers keeps the serial reader thread
		// down to header parsing and byte shuffling.
		if filled > 0 {
			err := parallel.ForEach(workers, filled, func(i int) error {
				if cerr := checkBlockCRC(slots[i].frame, slots[i].crc); cerr != nil {
					return cerr
				}
				recs, derr := decodeBlockV2(slots[i].frame, slots[i].count, slots[i].recs[:0])
				slots[i].recs = recs
				return derr
			})
			if err != nil {
				return total, err
			}
			for i := 0; i < filled; i++ {
				total += uint64(len(slots[i].recs))
				if err := emit(slots[i].recs); err != nil {
					return total, err
				}
			}
		}
		if readErr == io.EOF {
			return total, nil
		}
		if readErr != nil {
			return total, readErr
		}
	}
}

// EncodeV2Blocks writes a v2 trace from successive record batches
// returned by next (nil ends the stream). Each non-empty batch becomes
// exactly one block; up to `workers` batches are encoded concurrently
// (via internal/parallel) and written strictly in call order, so the
// output is byte-identical at any worker count. Batches must remain
// untouched until the following next call returns. Returns the records
// written.
func EncodeV2Blocks(w io.Writer, workers int, next func() []Record) (uint64, error) {
	if workers < 1 {
		workers = 1
	}
	bw := bufio.NewWriterSize(w, 1<<18)
	if _, err := bw.WriteString(MagicV2); err != nil {
		return 0, err
	}
	window := make([][]Record, 0, workers)
	blobs := make([][]byte, workers)
	var total uint64
	done := false
	for !done {
		window = window[:0]
		for len(window) < workers {
			batch := next()
			if batch == nil {
				done = true
				break
			}
			if len(batch) == 0 {
				continue
			}
			if len(batch) > maxBlockRecords {
				return total, fmt.Errorf("tracefile: batch of %d exceeds block limit %d", len(batch), maxBlockRecords)
			}
			window = append(window, batch)
		}
		if len(window) == 0 {
			continue
		}
		err := parallel.ForEach(workers, len(window), func(i int) error {
			blob := blobs[i][:0]
			if cap(blob) == 0 {
				blob = make([]byte, 0, blockHeaderSize+len(window[i])*4)
			}
			blob = blob[:blockHeaderSize]
			var prev uint64
			var err error
			for _, rec := range window[i] {
				if blob, prev, err = appendRecordV2(blob, prev, rec); err != nil {
					return err
				}
			}
			payload := blob[blockHeaderSize:]
			binary.LittleEndian.PutUint32(blob[0:], uint32(len(window[i])))
			binary.LittleEndian.PutUint32(blob[4:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(blob[8:], crc32.ChecksumIEEE(payload))
			blobs[i] = blob
			return nil
		})
		if err != nil {
			return total, err
		}
		for i := range window {
			if _, err := bw.Write(blobs[i]); err != nil {
				return total, err
			}
			total += uint64(len(window[i]))
		}
	}
	return total, bw.Flush()
}
