package tracefile

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"memories/internal/bus"
)

// testRecords builds a trace mixing bursty spatial locality (small
// deltas, the case v2 compresses) with far jumps, backward deltas, and
// escape-path records (cmd > 14 or src > 15).
func testRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, 0, n)
	addr := uint64(1) << 20
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0: // far jump
			addr = uint64(rng.Int63n(int64(MaxAddr>>3))) << 3
		case 1: // backward step
			if addr >= 4096 {
				addr -= uint64(rng.Intn(512)) * 8
			}
		default: // sequential-ish burst
			addr += uint64(rng.Intn(16)) * 8
		}
		if addr >= MaxAddr {
			addr = MaxAddr - 8
		}
		r := Record{
			Addr:  addr &^ 7,
			Cmd:   bus.Command(rng.Intn(bus.NumCommands())),
			SrcID: uint8(rng.Intn(12)),
		}
		if rng.Intn(20) == 0 { // escape path: src out of packed range
			r.SrcID = uint8(16 + rng.Intn(240))
		}
		if rng.Intn(20) == 0 { // escape path: cmd out of packed range
			r.Cmd = bus.Command(15 + rng.Intn(241))
		}
		recs = append(recs, r)
	}
	return recs
}

func writeV2(t *testing.T, recs []Record, blockRecords int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewV2WriterBlock(&buf, blockRecords)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readAll(t *testing.T, r RecordReader) []Record {
	t.Helper()
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

func TestV2RoundTrip(t *testing.T) {
	want := testRecords(10000, 7)
	data := writeV2(t, want, 512)
	r, err := NewV2Reader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if r.Count() != uint64(len(want)) {
		t.Fatalf("reader count = %d", r.Count())
	}
}

// TestV2MatchesV1 proves the v2 round-trip is bit-identical to v1: the
// same record stream written through both formats reads back equal,
// record for record.
func TestV2MatchesV1(t *testing.T) {
	recs := testRecords(5000, 13)

	var v1buf bytes.Buffer
	w1, err := NewWriter(&v1buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w1.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	v2data := writeV2(t, recs, DefaultBlockRecords)

	r1, err := Open(bytes.NewReader(v1buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Open(bytes.NewReader(v2data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.(*Reader); !ok {
		t.Fatalf("Open(v1) = %T, want *Reader", r1)
	}
	if _, ok := r2.(*V2Reader); !ok {
		t.Fatalf("Open(v2) = %T, want *V2Reader", r2)
	}
	g1, g2 := readAll(t, r1), readAll(t, r2)
	if len(g1) != len(recs) || len(g2) != len(recs) {
		t.Fatalf("lengths: v1=%d v2=%d want %d", len(g1), len(g2), len(recs))
	}
	for i := range recs {
		if g1[i] != g2[i] {
			t.Fatalf("record %d: v1=%+v v2=%+v", i, g1[i], g2[i])
		}
	}

	// The compression claim: on this bursty trace, v2 should beat v1's
	// fixed 8 bytes/record by a wide margin.
	if len(v2data)*2 > v1buf.Len() {
		t.Fatalf("v2 size %d not < half of v1 size %d", len(v2data), v1buf.Len())
	}
}

func TestV2WriterRejectsBadRecords(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewV2Writer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Addr: 0x1001}); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned: err = %v", err)
	}
	if err := w.Write(Record{Addr: MaxAddr}); !errors.Is(err, ErrAddrRange) {
		t.Fatalf("out of range: err = %v", err)
	}
	if _, err := NewV2WriterBlock(&buf, 0); err == nil {
		t.Fatal("block size 0 accepted")
	}
	if _, err := NewV2WriterBlock(&buf, maxBlockRecords+1); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestV2TruncatedBlock(t *testing.T) {
	data := writeV2(t, testRecords(100, 3), 64)

	// Torn payload: cut mid-block.
	r, err := NewV2Reader(bytes.NewReader(data[:len(data)-5]))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		if _, lastErr = r.Next(); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, io.ErrUnexpectedEOF) {
		t.Fatalf("torn payload error = %v, want ErrUnexpectedEOF", lastErr)
	}

	// Torn header: cut inside the second block's 12-byte header.
	hdrEnd := len(MagicV2) + blockHeaderSize
	r, err = NewV2Reader(bytes.NewReader(data[:hdrEnd-4]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn header error = %v, want ErrUnexpectedEOF", err)
	}

	// Clean EOF at a block boundary is NOT an error.
	r, err = NewV2Reader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r); len(got) != 100 {
		t.Fatalf("clean read got %d records", len(got))
	}
}

func TestV2CorruptCRC(t *testing.T) {
	data := writeV2(t, testRecords(100, 5), 64)

	// Flip one payload bit: CRC catches it.
	mut := append([]byte(nil), data...)
	mut[len(MagicV2)+blockHeaderSize+3] ^= 0x40
	r, err := NewV2Reader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped bit error = %v, want ErrCorrupt", err)
	}

	// Implausible header (count way beyond payload) is rejected before
	// any allocation.
	mut = append([]byte(nil), data...)
	mut[len(MagicV2)] = 0xFF
	mut[len(MagicV2)+1] = 0xFF
	mut[len(MagicV2)+2] = 0xFF
	r, err = NewV2Reader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible header error = %v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	if _, err := Open(bytes.NewReader([]byte("MIES9999"))); err == nil {
		t.Fatal("unknown magic accepted")
	}
	if _, err := Open(bytes.NewReader([]byte("MI"))); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Format
	}{{"v1", FormatV1}, {"1", FormatV1}, {Magic, FormatV1}, {"v2", FormatV2}, {"2", FormatV2}, {MagicV2, FormatV2}} {
		got, err := ParseFormat(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFormat(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseFormat("v3"); err == nil {
		t.Fatal("ParseFormat accepted v3")
	}
	if FormatV1.String() != "v1" || FormatV2.String() != "v2" {
		t.Fatal("Format.String mismatch")
	}
}

// TestCopyRecordsConvert drives the tracegen-convert path: v1 -> v2 ->
// v1 through CopyRecords must reproduce the original stream, and the
// writer/reader counts must agree at every hop.
func TestCopyRecordsConvert(t *testing.T) {
	recs := testRecords(3000, 29)
	var v1 bytes.Buffer
	w1, err := NewWriterFormat(&v1, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w1.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}

	hop := func(data []byte, f Format) []byte {
		t.Helper()
		r, err := Open(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		w, err := NewWriterFormat(&out, f)
		if err != nil {
			t.Fatal(err)
		}
		n, err := CopyRecords(w, r)
		if err != nil {
			t.Fatal(err)
		}
		if n != uint64(len(recs)) || w.Count() != n || r.Count() != n {
			t.Fatalf("copied %d (writer %d, reader %d), want %d", n, w.Count(), r.Count(), len(recs))
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}

	v2data := hop(v1.Bytes(), FormatV2)
	back := hop(v2data, FormatV1)
	if !bytes.Equal(back, v1.Bytes()) {
		t.Fatal("v1 -> v2 -> v1 conversion is not byte-identical")
	}

	// Errors from the source must surface, reporting progress so far.
	r, err := Open(bytes.NewReader(v2data[:len(v2data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w, err := NewWriterFormat(&out, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CopyRecords(w, r); err == nil {
		t.Fatal("truncated source copied without error")
	}
}

func TestCaptureDumpFormatV2(t *testing.T) {
	c := NewCapture(100)
	for i := 0; i < 10; i++ {
		if _, err := c.Add(Record{Addr: uint64(i) * 128, Cmd: bus.Read, SrcID: uint8(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.DumpFormat(&buf, FormatV2); err != nil {
		t.Fatal(err)
	}
	r, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if len(got) != 10 {
		t.Fatalf("got %d records", len(got))
	}
	for i, rec := range got {
		if rec.Addr != uint64(i)*128 || rec.SrcID != uint8(i) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
}

// TestForEachBatchMatchesSerial proves batch delivery is in file order
// and record-identical to the streaming readers, for both formats and
// several worker counts.
func TestForEachBatchMatchesSerial(t *testing.T) {
	want := testRecords(9000, 17)

	var v1buf bytes.Buffer
	w1, err := NewWriter(&v1buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want {
		if err := w1.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	// Odd block size so the final block is partial.
	v2data := writeV2(t, want, 700)

	for _, tc := range []struct {
		name string
		data []byte
	}{{"v1", v1buf.Bytes()}, {"v2", v2data}} {
		for _, workers := range []int{1, 2, 4} {
			var got []Record
			n, err := ForEachBatch(bytes.NewReader(tc.data), workers, func(batch []Record) error {
				got = append(got, batch...)
				return nil
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if n != uint64(len(want)) || len(got) != len(want) {
				t.Fatalf("%s workers=%d: delivered %d/%d records", tc.name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: record %d = %+v, want %+v", tc.name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestForEachBatchPropagatesErrors(t *testing.T) {
	data := writeV2(t, testRecords(100, 23), 32)
	sentinel := errors.New("stop")
	_, err := ForEachBatch(bytes.NewReader(data), 2, func([]Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("emit error = %v", err)
	}
	mut := append([]byte(nil), data...)
	mut[len(MagicV2)+blockHeaderSize] ^= 1
	_, err = ForEachBatch(bytes.NewReader(mut), 2, func([]Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt block error = %v", err)
	}
	if _, err := ForEachBatch(bytes.NewReader([]byte("MIESXXXX")), 1, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestEncodeV2BlocksDeterministic proves parallel encode produces
// byte-identical output at every worker count, equal to the serial
// V2Writer with the same block size.
func TestEncodeV2BlocksDeterministic(t *testing.T) {
	recs := testRecords(5000, 29)
	const block = 512
	want := writeV2(t, recs, block)

	chunk := func() func() []Record {
		i := 0
		return func() []Record {
			if i >= len(recs) {
				return nil
			}
			end := i + block
			if end > len(recs) {
				end = len(recs)
			}
			b := recs[i:end]
			i = end
			return b
		}
	}
	for _, workers := range []int{1, 3, 8} {
		var buf bytes.Buffer
		n, err := EncodeV2Blocks(&buf, workers, chunk())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != uint64(len(recs)) {
			t.Fatalf("workers=%d: wrote %d records", workers, n)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d: output differs from serial writer", workers)
		}
	}
}

func TestEncodeV2BlocksRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	big := make([]Record, maxBlockRecords+1)
	done := false
	_, err := EncodeV2Blocks(&buf, 2, func() []Record {
		if done {
			return nil
		}
		done = true
		return big
	})
	if err == nil {
		t.Fatal("oversized batch accepted")
	}
	done = false
	_, err = EncodeV2Blocks(&buf, 2, func() []Record {
		if done {
			return nil
		}
		done = true
		return []Record{{Addr: 3}}
	})
	if !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned record error = %v", err)
	}
}

// TestV2WriteAllocFree asserts the v2 hot write path is allocation-free
// at steady state (ISSUE 3 acceptance criterion).
func TestV2WriteAllocFree(t *testing.T) {
	w, err := NewV2WriterBlock(io.Discard, 256)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Addr: 0x1000, Cmd: bus.Read, SrcID: 3}
	// Warm up past buffer growth: several full blocks.
	for i := 0; i < 2048; i++ {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		rec.Addr += 64
	}
	allocs := testing.AllocsPerRun(4096, func() {
		rec.Addr += 64
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("V2Writer.Write allocates %.2f/op, want 0", allocs)
	}
}

// TestV2ReadAllocFree asserts the v2 hot read path is allocation-free at
// steady state: uniform block sizes, so frame/record slabs stabilize
// after the first block.
func TestV2ReadAllocFree(t *testing.T) {
	// Constant stride => every record encodes to the same width, so
	// every block payload is the same size and the reused frame slab
	// never regrows mid-stream.
	recs := make([]Record, 1<<16)
	for i := range recs {
		recs[i] = Record{Addr: uint64(i) * 64, Cmd: bus.Read, SrcID: 3}
	}
	data := writeV2(t, recs, 256)
	r, err := NewV2Reader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: a few blocks settle the slab capacities.
	for i := 0; i < 2048; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(16384, func() {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("V2Reader.Next allocates %.2f/op, want 0", allocs)
	}
}
