package tracefile

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"memories/internal/bus"
)

// fuzzRecords deterministically maps arbitrary fuzz bytes onto a valid
// record stream: 10 bytes per record — 8 address bytes (masked aligned
// and in range), one command, one source ID. Both escape paths (cmd >
// 14, src > 15) are reachable.
func fuzzRecords(data []byte) []Record {
	var recs []Record
	for len(data) >= 10 {
		addr := binary.LittleEndian.Uint64(data) % MaxAddr &^ 7
		recs = append(recs, Record{
			Addr:  addr,
			Cmd:   bus.Command(data[8]),
			SrcID: data[9],
		})
		data = data[10:]
	}
	return recs
}

// FuzzRoundTripV2 exercises the v2 block codec from both directions:
// any record stream derived from the input must survive an encode/
// decode round trip bit-identically (and match what v1 says about the
// same records), and the raw input bytes themselves, framed as a v2
// file body, must never panic the reader — only return an error.
func FuzzRoundTripV2(f *testing.F) {
	// Seed corpus: empty, single record, a sequential burst, escape
	// commands/sources, max-address and zero-address edges, and raw
	// garbage for the decoder direction.
	f.Add([]byte{})
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0, 1, 2})
	seq := make([]byte, 0, 100)
	for i := 0; i < 10; i++ {
		var rec [10]byte
		binary.LittleEndian.PutUint64(rec[:8], uint64(0x1000+i*64))
		rec[8], rec[9] = 0, 3
		seq = append(seq, rec[:]...)
	}
	f.Add(seq)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255}) // both escapes
	maxRec := make([]byte, 10)
	binary.LittleEndian.PutUint64(maxRec, MaxAddr-8)
	f.Add(maxRec)
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("MIES0002 not a real block"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: encode/decode round trip over derived records,
		// with a small block size so multi-block paths are hot.
		recs := fuzzRecords(data)
		var buf bytes.Buffer
		w, err := NewV2WriterBlock(&buf, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			// Cross-check against the v1 packer: any record v2 accepts,
			// v1 must accept, and vice versa.
			_, v1err := r.Pack()
			if err := w.Write(r); (err == nil) != (v1err == nil) {
				t.Fatalf("v1/v2 accept disagree for %+v: v1=%v v2=%v", r, v1err, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewV2Reader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range recs {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d = %+v, want %+v", i, got, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("after %d records: %v, want EOF", len(recs), err)
		}

		// Direction 2: the raw fuzz input as an untrusted v2 body must
		// never panic — torn, corrupt, or implausible blocks are errors.
		body := append([]byte(MagicV2), data...)
		ur, err := NewV2Reader(bytes.NewReader(body))
		if err != nil {
			return
		}
		for {
			if _, err := ur.Next(); err != nil {
				break
			}
		}
		// Same body through the batch path, at two worker counts.
		for _, workers := range []int{1, 2} {
			_, _ = ForEachBatch(bytes.NewReader(body), workers, func([]Record) error { return nil })
		}
	})
}
