//go:build !linux && !darwin

package tracefile

import "errors"

// mmapFile reports mmap as unavailable; ForEachBatchFile falls back to
// the streaming reader.
func mmapFile(f interface{ Fd() uintptr }, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("tracefile: mmap unsupported on this platform")
}
