// Package tracefile implements the bus-trace format used by the MemorIES
// board's trace-collection mode. Paper §2.3: "The current revision of the
// MemorIES board is capable of collecting traces containing up to 1
// billion 8-byte wide bus references at a time", later dumped to disk on
// the console machine for off-line analysis.
//
// Each reference is packed into exactly 8 bytes:
//
//	bits 63..16  physical address >> 3 (8-byte aligned; 48 bits => 2 PB)
//	bits 15..8   bus command
//	bits  7..0   source bus ID
//
// A file is the 8-byte magic "MIES0001" followed by little-endian records.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"memories/internal/bus"
)

// Magic identifies a MemorIES trace file (format version 1).
const Magic = "MIES0001"

// RecordSize is the on-disk size of one bus reference.
const RecordSize = 8

// MaxAddr is the largest encodable address (exclusive bound).
const MaxAddr = uint64(1) << 51

// ErrUnaligned is returned when an address' low 3 bits are nonzero; the
// 6xx bus carries nothing narrower than a doubleword.
var ErrUnaligned = errors.New("tracefile: address not 8-byte aligned")

// ErrAddrRange is returned when an address exceeds the 48-bit packed field.
var ErrAddrRange = errors.New("tracefile: address out of encodable range")

// Record is one bus reference.
type Record struct {
	Addr  uint64
	Cmd   bus.Command
	SrcID uint8
}

// Pack encodes the record into its 8-byte representation.
func (r Record) Pack() (uint64, error) {
	if r.Addr&7 != 0 {
		return 0, fmt.Errorf("%w: %#x", ErrUnaligned, r.Addr)
	}
	if r.Addr >= MaxAddr {
		return 0, fmt.Errorf("%w: %#x", ErrAddrRange, r.Addr)
	}
	return (r.Addr>>3)<<16 | uint64(r.Cmd)<<8 | uint64(r.SrcID), nil
}

// Unpack decodes an 8-byte representation.
func Unpack(v uint64) Record {
	return Record{
		Addr:  (v >> 16) << 3,
		Cmd:   bus.Command(v >> 8),
		SrcID: uint8(v),
	}
}

// FromTransaction converts a bus transaction to a trace record.
func FromTransaction(tx *bus.Transaction) Record {
	src := tx.SrcID
	if src < 0 {
		src = 0
	}
	return Record{Addr: tx.Addr &^ 7, Cmd: tx.Cmd, SrcID: uint8(src)}
}

// Writer streams trace records to an io.Writer.
type Writer struct {
	bw    *bufio.Writer
	count uint64
	buf   [RecordSize]byte
}

// NewWriter writes the file magic and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	v, err := r.Pack()
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(w.buf[:], v)
	if _, err := w.bw.Write(w.buf[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams trace records from an io.Reader.
type Reader struct {
	br    *bufio.Reader
	count uint64
	buf   [RecordSize]byte
}

// NewReader validates the file magic and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if err := expectMagic(br, Magic); err != nil {
		return nil, err
	}
	return &Reader{br: br}, nil
}

// Next returns the next record, or io.EOF after the last one. A torn final
// record yields io.ErrUnexpectedEOF.
func (r *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(r.br, r.buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("tracefile: torn record after %d: %w", r.count, err)
	}
	r.count++
	return Unpack(binary.LittleEndian.Uint64(r.buf[:])), nil
}

// Count returns the number of records read so far.
func (r *Reader) Count() uint64 { return r.count }

// Capture models the board's on-board trace memory: a bounded in-memory
// record buffer. Once full, further records are dropped and counted, like
// the hardware running out of its 1GB (up to 8GB) of DRAM.
type Capture struct {
	limit   int
	records []uint64
	dropped uint64
}

// NewCapture creates a capture buffer holding at most limit records.
// The board's stock configuration (1GB of SDRAM) holds 128Mi records;
// callers pick the limit that matches the emulated memory population.
func NewCapture(limit int) *Capture {
	if limit <= 0 {
		panic("tracefile: capture limit must be positive")
	}
	return &Capture{limit: limit}
}

// Add appends a record if space remains, reporting whether it was stored.
func (c *Capture) Add(r Record) (bool, error) {
	if len(c.records) >= c.limit {
		c.dropped++
		return false, nil
	}
	v, err := r.Pack()
	if err != nil {
		return false, err
	}
	c.records = append(c.records, v)
	return true, nil
}

// Len returns the number of stored records.
func (c *Capture) Len() int { return len(c.records) }

// Dropped returns how many records arrived after the buffer filled.
func (c *Capture) Dropped() uint64 { return c.dropped }

// Full reports whether the capture memory is exhausted.
func (c *Capture) Full() bool { return len(c.records) >= c.limit }

// Record returns the i-th stored record.
func (c *Capture) Record(i int) Record { return Unpack(c.records[i]) }

// Dump writes the captured trace as a version-1 file (the "dump to a
// disk in the console machine" step); see DumpFormat for v2.
func (c *Capture) Dump(w io.Writer) error {
	return c.DumpFormat(w, FormatV1)
}

// Reset clears the capture buffer for a new collection window.
func (c *Capture) Reset() {
	c.records = c.records[:0]
	c.dropped = 0
}
