package tracefile

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"memories/internal/parallel"
)

// Zero-copy v2 ingest: when the trace is a regular file on a platform
// with mmap, the whole file is mapped read-only and MIES0002 blocks are
// decoded in place — header parsing walks the mapping and each decode
// worker's payload slice aliases it, eliminating the read+copy per
// block that the bufio path pays (readBlockRaw's io.ReadFull into a
// frame buffer). Everything downstream of the framing is shared with
// the streaming reader (checkBlockCRC, decodeBlockV2), so the two paths
// cannot drift: same plausibility checks, same CRC, same record stream,
// same errors at the same byte offsets.
//
// The fallback ladder is total — v1 traces, non-regular sources (pipes,
// sockets), platforms without mmap, and any map failure all land on the
// existing ForEachBatch reader with the file untouched at offset 0.

// mmapForceFallback forces ForEachBatchFile onto the streaming-reader
// path; the forced-fallback test uses it to prove the ladder yields
// identical results.
var mmapForceFallback bool

// ForEachBatchFile is ForEachBatch for a named trace file. V2 traces on
// mmap-capable platforms decode zero-copy from the mapped region; v1
// traces, map failures, and mmap-less platforms fall back to the
// streaming reader transparently. The emitted batches and the returned
// record count are identical on both paths.
func ForEachBatchFile(path string, workers int, emit func([]Record) error) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if !mmapForceFallback {
		if st, serr := f.Stat(); serr == nil && st.Mode().IsRegular() && st.Size() > int64(len(MagicV2)) {
			if data, unmap, merr := mmapFile(f, st.Size()); merr == nil {
				if string(data[:len(MagicV2)]) == MagicV2 {
					total, derr := v2BatchesMapped(data[len(MagicV2):], workers, emit)
					if uerr := unmap(); derr == nil {
						derr = uerr
					}
					return total, derr
				}
				_ = unmap() // v1 or foreign magic: stream it instead
			}
		}
	}
	return ForEachBatch(f, workers, emit)
}

// nextBlockMapped frames the next block at the start of data, returning
// its header fields, the in-place payload slice, and the total bytes
// consumed. It applies exactly readBlockRaw's checks: io.EOF only at a
// clean block boundary, torn header/payload as io.ErrUnexpectedEOF, and
// the same implausible-header rejection.
func nextBlockMapped(data []byte) (count int, crc uint32, payload []byte, n int, err error) {
	if len(data) == 0 {
		return 0, 0, nil, 0, io.EOF
	}
	if len(data) < blockHeaderSize {
		return 0, 0, nil, 0, fmt.Errorf("tracefile: torn v2 block header: %w", io.ErrUnexpectedEOF)
	}
	count = int(binary.LittleEndian.Uint32(data[0:]))
	plen := int(binary.LittleEndian.Uint32(data[4:]))
	crc = binary.LittleEndian.Uint32(data[8:])
	if count < 1 || count > maxBlockRecords ||
		plen < count*minRecordBytes || plen > count*maxRecordBytes {
		return 0, 0, nil, 0, fmt.Errorf("%w: implausible header (count=%d, payload=%d)", ErrCorrupt, count, plen)
	}
	if len(data)-blockHeaderSize < plen {
		return 0, 0, nil, 0, fmt.Errorf("tracefile: torn v2 block payload: %w", io.ErrUnexpectedEOF)
	}
	return count, crc, data[blockHeaderSize : blockHeaderSize+plen], blockHeaderSize + plen, nil
}

// v2BatchesMapped is v2Batches over an in-memory block region (the
// mapped file past the magic): same windowing, same worker fan-out,
// same in-order emit — but the payload slices alias data instead of
// being copied into reused frames. Record slabs are still per-slot and
// reused across windows, so steady state allocates nothing.
func v2BatchesMapped(data []byte, workers int, emit func([]Record) error) (uint64, error) {
	if workers < 1 {
		workers = 1
	}
	type slot struct {
		payload []byte
		recs    []Record
		count   int
		crc     uint32
	}
	slots := make([]slot, workers)
	var total uint64
	for {
		filled := 0
		var readErr error
		for filled < workers {
			count, crc, payload, n, err := nextBlockMapped(data)
			if err != nil {
				readErr = err
				break
			}
			s := &slots[filled]
			s.count, s.crc, s.payload = count, crc, payload
			data = data[n:]
			filled++
		}
		if filled > 0 {
			err := parallel.ForEach(workers, filled, func(i int) error {
				if cerr := checkBlockCRC(slots[i].payload, slots[i].crc); cerr != nil {
					return cerr
				}
				recs, derr := decodeBlockV2(slots[i].payload, slots[i].count, slots[i].recs[:0])
				slots[i].recs = recs
				return derr
			})
			if err != nil {
				return total, err
			}
			for i := 0; i < filled; i++ {
				total += uint64(len(slots[i].recs))
				if err := emit(slots[i].recs); err != nil {
					return total, err
				}
			}
		}
		if readErr == io.EOF {
			return total, nil
		}
		if readErr != nil {
			return total, readErr
		}
	}
}
