package tracefile

import (
	"bufio"
	"fmt"
	"io"
)

// Format selects a trace file format version.
type Format int

const (
	// FormatV1 is the fixed 8-byte record format ("MIES0001").
	FormatV1 Format = 1
	// FormatV2 is the block-framed varint delta format ("MIES0002").
	FormatV2 Format = 2
)

// String returns the flag spelling of the format ("v1" / "v2").
func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat parses a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1", "1", Magic:
		return FormatV1, nil
	case "v2", "2", MagicV2:
		return FormatV2, nil
	}
	return 0, fmt.Errorf("tracefile: unknown format %q (want v1 or v2)", s)
}

// RecordReader is the streaming side shared by both format readers.
type RecordReader interface {
	// Next returns the next record, or io.EOF after the last one.
	Next() (Record, error)
	// Count returns the number of records read so far.
	Count() uint64
}

// RecordWriter is the streaming side shared by both format writers.
type RecordWriter interface {
	Write(Record) error
	Flush() error
	Count() uint64
}

// readMagic consumes and returns the 8-byte file magic.
func readMagic(br *bufio.Reader) (string, error) {
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return "", fmt.Errorf("tracefile: reading magic: %w", err)
	}
	return string(head), nil
}

// expectMagic consumes the file magic and checks it is exactly want.
func expectMagic(br *bufio.Reader, want string) error {
	got, err := readMagic(br)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("tracefile: bad magic %q (want %q)", got, want)
	}
	return nil
}

// Open auto-detects the trace format from the file magic and returns a
// streaming reader for it. This is what every trace consumer should
// use unless it needs a version-specific API.
func Open(r io.Reader) (RecordReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := readMagic(br)
	if err != nil {
		return nil, err
	}
	switch magic {
	case Magic:
		return &Reader{br: br}, nil
	case MagicV2:
		return newV2Reader(br), nil
	}
	return nil, fmt.Errorf("tracefile: bad magic %q", magic)
}

// NewWriterFormat returns a record writer producing the given format.
func NewWriterFormat(w io.Writer, f Format) (RecordWriter, error) {
	switch f {
	case FormatV1:
		return NewWriter(w)
	case FormatV2:
		return NewV2Writer(w)
	}
	return nil, fmt.Errorf("tracefile: unknown format %v", f)
}

// CopyRecords streams every record from r into w, returning how many
// were copied. It does not Flush w; the caller owns finalization.
func CopyRecords(w RecordWriter, r RecordReader) (uint64, error) {
	var n uint64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := w.Write(rec); err != nil {
			return n, err
		}
		n++
	}
}

// DumpFormat writes the captured trace in the requested format;
// Capture.Dump remains the v1 shorthand.
func (c *Capture) DumpFormat(w io.Writer, f Format) error {
	tw, err := NewWriterFormat(w, f)
	if err != nil {
		return err
	}
	for _, v := range c.records {
		if err := tw.Write(Unpack(v)); err != nil {
			return err
		}
	}
	return tw.Flush()
}
