package tracefile

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"memories/internal/bus"
)

// collect appends emitted batches into one flat slice (copying, since
// batch slices are reused between emit calls).
func collect(out *[]Record) func([]Record) error {
	return func(batch []Record) error {
		*out = append(*out, batch...)
		return nil
	}
}

// writeTempTrace writes raw trace bytes to a file in t.TempDir.
func writeTempTrace(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.mies")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestForEachBatchFileMatchesReader: the mapped path and the streaming
// reader deliver the identical record stream for a v2 file, at several
// worker counts and block sizes.
func TestForEachBatchFileMatchesReader(t *testing.T) {
	recs := testRecords(10_000, 42)
	for _, blockRecords := range []int{16, 512, 4096} {
		data := writeV2(t, recs, blockRecords)
		path := writeTempTrace(t, data)
		for _, workers := range []int{1, 2, 4} {
			var viaReader, viaFile []Record
			rn, err := ForEachBatch(bytes.NewReader(data), workers, collect(&viaReader))
			if err != nil {
				t.Fatal(err)
			}
			fn, err := ForEachBatchFile(path, workers, collect(&viaFile))
			if err != nil {
				t.Fatalf("block=%d workers=%d: %v", blockRecords, workers, err)
			}
			if rn != fn || len(viaReader) != len(viaFile) {
				t.Fatalf("block=%d workers=%d: reader %d recs, mapped %d", blockRecords, workers, rn, fn)
			}
			for i := range viaReader {
				if viaReader[i] != viaFile[i] {
					t.Fatalf("block=%d workers=%d: record %d = %+v, reader %+v",
						blockRecords, workers, i, viaFile[i], viaReader[i])
				}
			}
		}
	}
}

// TestForEachBatchFileV1Fallback: a v1 file through ForEachBatchFile
// takes the reader path (wrong magic for in-place decode) and still
// yields the full stream.
func TestForEachBatchFileV1Fallback(t *testing.T) {
	recs := []Record{
		{Addr: 0x1000, Cmd: bus.Read, SrcID: 1},
		{Addr: 0x2000, Cmd: bus.RWITM, SrcID: 2},
		{Addr: 0x3000, Cmd: bus.Castout, SrcID: 3},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := writeTempTrace(t, buf.Bytes())
	var got []Record
	n, err := ForEachBatchFile(path, 2, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(recs) || len(got) != len(recs) {
		t.Fatalf("delivered %d records, want %d", n, len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestForEachBatchFileForcedFallback is the forced-fallback proof: with
// the mmap path disabled (emulating an mmap-less platform or a failed
// map), ForEachBatchFile must deliver the identical stream through the
// streaming reader.
func TestForEachBatchFileForcedFallback(t *testing.T) {
	recs := testRecords(5_000, 99)
	data := writeV2(t, recs, 256)
	path := writeTempTrace(t, data)

	var mapped []Record
	if _, err := ForEachBatchFile(path, 2, collect(&mapped)); err != nil {
		t.Fatal(err)
	}

	mmapForceFallback = true
	defer func() { mmapForceFallback = false }()
	var fallback []Record
	n, err := ForEachBatchFile(path, 2, collect(&fallback))
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(recs) || len(fallback) != len(mapped) {
		t.Fatalf("fallback delivered %d records, mapped path %d", len(fallback), len(mapped))
	}
	for i := range mapped {
		if fallback[i] != mapped[i] {
			t.Fatalf("record %d = %+v via fallback, %+v via mmap", i, fallback[i], mapped[i])
		}
	}
}

// TestV2MappedCorruptionParity: torn headers, torn payloads, corrupt
// CRCs, and implausible headers must fail on the mapped path exactly
// where the streaming reader fails, with the same records delivered
// before the error.
func TestV2MappedCorruptionParity(t *testing.T) {
	recs := testRecords(2_000, 7)
	good := writeV2(t, recs, 128)
	// End of the first block: magic + header + its payload length.
	firstEnd := len(MagicV2) + blockHeaderSize + int(binary.LittleEndian.Uint32(good[len(MagicV2)+4:]))
	mutate := map[string]func([]byte) []byte{
		"torn header":  func(b []byte) []byte { return b[:firstEnd+5] },
		"torn payload": func(b []byte) []byte { return b[:len(b)-3] },
		"flipped bit":  func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)/2] ^= 0x40; return c },
		"bad count": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[len(MagicV2):], maxBlockRecords+1)
			return c
		},
	}
	for name, mut := range mutate {
		data := mut(good)
		path := writeTempTrace(t, data)
		var viaReader, viaFile []Record
		rn, rerr := ForEachBatch(bytes.NewReader(data), 2, collect(&viaReader))
		fn, ferr := ForEachBatchFile(path, 2, collect(&viaFile))
		if (rerr == nil) != (ferr == nil) {
			t.Fatalf("%s: reader err %v, mapped err %v", name, rerr, ferr)
		}
		if rerr == nil {
			t.Fatalf("%s: corruption went unnoticed", name)
		}
		if rn != fn || len(viaReader) != len(viaFile) {
			t.Fatalf("%s: reader emitted %d, mapped %d", name, rn, fn)
		}
		for i := range viaReader {
			if viaReader[i] != viaFile[i] {
				t.Fatalf("%s: record %d diverges", name, i)
			}
		}
	}
}

// FuzzV2MmapDecode feeds arbitrary bytes to the in-place block decoder
// as an untrusted v2 body and cross-checks it against the streaming
// reader: neither may panic, both must agree on success vs failure, and
// the records delivered (including any prefix before an error) must be
// identical.
func FuzzV2MmapDecode(f *testing.F) {
	f.Add([]byte{})
	var valid bytes.Buffer
	if w, err := NewV2WriterBlock(&valid, 16); err == nil {
		for _, r := range testRecords(100, 3) {
			if err := w.Write(r); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid.Bytes()[len(MagicV2):])
	f.Add([]byte("\x01\x00\x00\x00\x02\x00\x00\x00\xff\xff\xff\xff\x13\x00"))
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Add([]byte("short"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, workers := range []int{1, 2} {
			var mapped, streamed []Record
			mn, merr := v2BatchesMapped(data, workers, collect(&mapped))
			body := append([]byte(MagicV2), data...)
			sn, serr := ForEachBatch(bytes.NewReader(body), workers, collect(&streamed))
			if (merr == nil) != (serr == nil) {
				t.Fatalf("workers=%d: mapped err %v, reader err %v", workers, merr, serr)
			}
			if mn != sn || len(mapped) != len(streamed) {
				t.Fatalf("workers=%d: mapped %d records, reader %d", workers, mn, sn)
			}
			for i := range mapped {
				if mapped[i] != streamed[i] {
					t.Fatalf("workers=%d: record %d = %+v mapped, %+v reader", workers, i, mapped[i], streamed[i])
				}
			}
		}
	})
}
