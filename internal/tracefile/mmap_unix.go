//go:build linux || darwin

package tracefile

import (
	"fmt"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The returned release func
// must be called exactly once when decoding finishes; the mapping (and
// every payload slice aliasing it) is invalid afterwards.
func mmapFile(f interface{ Fd() uintptr }, size int64) ([]byte, func() error, error) {
	if size <= 0 || uint64(size) > uint64(^uint(0)>>1) {
		return nil, nil, fmt.Errorf("tracefile: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("tracefile: mmap: %w", err)
	}
	// Readahead hint only; ingest walks the file front to back.
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	return data, func() error { return syscall.Munmap(data) }, nil
}
