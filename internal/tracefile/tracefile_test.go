package tracefile

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"memories/internal/bus"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(addr uint64, cmd, src uint8) bool {
		r := Record{
			Addr:  (addr % (MaxAddr >> 3)) << 3, // aligned, in range
			Cmd:   bus.Command(cmd % uint8(bus.NumCommands())),
			SrcID: src,
		}
		v, err := r.Pack()
		if err != nil {
			return false
		}
		return Unpack(v) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPackRejectsUnaligned(t *testing.T) {
	_, err := Record{Addr: 0x1001}.Pack()
	if !errors.Is(err, ErrUnaligned) {
		t.Fatalf("err = %v, want ErrUnaligned", err)
	}
}

func TestPackRejectsHugeAddr(t *testing.T) {
	_, err := Record{Addr: MaxAddr}.Pack()
	if !errors.Is(err, ErrAddrRange) {
		t.Fatalf("err = %v, want ErrAddrRange", err)
	}
	// Largest encodable address round-trips.
	r := Record{Addr: MaxAddr - 8}
	v, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if Unpack(v).Addr != MaxAddr-8 {
		t.Fatal("max address did not round-trip")
	}
}

func TestFromTransaction(t *testing.T) {
	tx := &bus.Transaction{Cmd: bus.RWITM, Addr: 0x12345601, SrcID: 5}
	r := FromTransaction(tx)
	if r.Addr != 0x12345600 || r.Cmd != bus.RWITM || r.SrcID != 5 {
		t.Fatalf("FromTransaction = %+v", r)
	}
	// Negative (passive observer) source IDs clamp to 0.
	r = FromTransaction(&bus.Transaction{Cmd: bus.Read, Addr: 0x100, SrcID: -1})
	if r.SrcID != 0 {
		t.Fatalf("SrcID = %d, want 0", r.SrcID)
	}
}

func TestWriteReadFile(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var want []Record
	for i := 0; i < 1000; i++ {
		r := Record{
			Addr:  uint64(rng.Intn(1<<30)) &^ 7,
			Cmd:   bus.Command(rng.Intn(bus.NumCommands())),
			SrcID: uint8(rng.Intn(12)),
		}
		want = append(want, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 1000 {
		t.Fatalf("writer count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(Magic)+1000*RecordSize {
		t.Fatalf("file size = %d", buf.Len())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, wantRec := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wantRec {
			t.Fatalf("record %d = %+v, want %+v", i, got, wantRec)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if r.Count() != 1000 {
		t.Fatalf("reader count = %d", r.Count())
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTMIES0"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("MI"))); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestReaderTornRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{Addr: 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3] // tear the record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn record error = %v", err)
	}
}

func TestCaptureLimitAndDrop(t *testing.T) {
	c := NewCapture(3)
	for i := 0; i < 5; i++ {
		stored, err := c.Add(Record{Addr: uint64(i) * 8})
		if err != nil {
			t.Fatal(err)
		}
		if want := i < 3; stored != want {
			t.Fatalf("Add #%d stored=%v, want %v", i, stored, want)
		}
	}
	if c.Len() != 3 || c.Dropped() != 2 || !c.Full() {
		t.Fatalf("capture state: len=%d dropped=%d full=%v", c.Len(), c.Dropped(), c.Full())
	}
	if got := c.Record(2).Addr; got != 16 {
		t.Fatalf("Record(2).Addr = %d", got)
	}
	c.Reset()
	if c.Len() != 0 || c.Dropped() != 0 || c.Full() {
		t.Fatal("Reset incomplete")
	}
}

func TestCaptureDumpRoundTrip(t *testing.T) {
	c := NewCapture(100)
	for i := 0; i < 10; i++ {
		c.Add(Record{Addr: uint64(i) * 128, Cmd: bus.Read, SrcID: uint8(i)})
	}
	var buf bytes.Buffer
	if err := c.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Addr != uint64(i)*128 || rec.SrcID != uint8(i) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatal("expected EOF")
	}
}

func TestCapturePanicsOnBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCapture(0) did not panic")
		}
	}()
	NewCapture(0)
}
