package workload

import (
	"fmt"

	"memories/internal/addr"
)

// TPCCConfig parameterizes the OLTP (TPC-C-like) generator. The defaults
// model the paper's environment: a 150GB database on an 8-way SMP.
type TPCCConfig struct {
	// NumCPUs is the number of host processors running transactions.
	NumCPUs int
	// DatabaseBytes is the size of the row storage (the paper's runs used
	// a 150GB TPC-C database). Each processor works mostly within its own
	// partition of it ("the processors all access their different data
	// sets. These data sets do not overlap completely" — §5.1).
	DatabaseBytes int64
	// SharedBytes is the commonly accessed table space (item, warehouse,
	// district): rows every processor touches. Zero derives it as
	// DatabaseBytes/16.
	SharedBytes int64
	// IndexBytes is the shared B-tree index working storage.
	IndexBytes int64
	// LogBytes is the circular redo-log region.
	LogBytes int64
	// RecordBytes is the row/popularity granularity.
	RecordBytes int64
	// MinWorkingSet is the smallest (hottest) working-set level of the
	// nested per-processor pyramid; levels grow 4x from here to the full
	// partition, with each larger level accessed half as often.
	MinWorkingSet int64
	// WriteFraction is the store probability for row accesses.
	WriteFraction float64
	// SharedFraction is the probability that a row access goes to the
	// globally shared tables instead of the CPU's own partition.
	SharedFraction float64
	// IndexFraction and LogFraction are the probabilities of an index
	// probe and a log append, respectively.
	IndexFraction float64
	LogFraction   float64
	// Seed makes the stream reproducible.
	Seed uint64
}

// DefaultTPCCConfig returns the paper-scale OLTP model.
func DefaultTPCCConfig() TPCCConfig {
	return TPCCConfig{
		NumCPUs:        8,
		DatabaseBytes:  150 * addr.GB,
		IndexBytes:     2 * addr.GB,
		LogBytes:       256 * addr.MB,
		RecordBytes:    128,
		MinWorkingSet:  512 * addr.KB,
		WriteFraction:  0.30,
		SharedFraction: 0.22,
		IndexFraction:  0.16,
		LogFraction:    0.04,
		Seed:           1,
	}
}

// ScaledTPCCConfig shrinks the footprint by factor (for fast experiment
// presets) while preserving the structure; factor 1 is paper scale.
func ScaledTPCCConfig(factor int64) TPCCConfig {
	cfg := DefaultTPCCConfig()
	if factor > 1 {
		cfg.DatabaseBytes /= factor
		cfg.IndexBytes /= factor
		cfg.LogBytes /= factor
		if cfg.IndexBytes < 2*addr.MB {
			cfg.IndexBytes = 2 * addr.MB
		}
		if cfg.LogBytes < addr.MB {
			cfg.LogBytes = addr.MB
		}
	}
	return cfg
}

// TPCC is the OLTP reference generator: nested per-processor working
// sets over a partitioned row space, a shared hot-table space, a very hot
// index, and a sequential shared log.
type TPCC struct {
	cfg    TPCCConfig
	rows   Region
	shared Region
	index  Region
	log    Region

	r         *RNG
	privPyr   *Pyramid // per-CPU partition working sets
	sharedPyr *Pyramid // shared hot tables
	indexZipf *Zipf    // index page popularity (very hot upper levels)

	cpu    int
	logPos int64
}

// NewTPCC builds the generator.
func NewTPCC(cfg TPCCConfig) *TPCC {
	if cfg.NumCPUs <= 0 {
		panic("workload: NumCPUs must be positive")
	}
	if cfg.RecordBytes <= 0 {
		cfg.RecordBytes = 128
	}
	if cfg.SharedBytes <= 0 {
		cfg.SharedBytes = cfg.DatabaseBytes / 16
		if cfg.SharedBytes < addr.MB {
			cfg.SharedBytes = addr.MB
		}
	}
	if cfg.MinWorkingSet <= 0 {
		cfg.MinWorkingSet = 512 * addr.KB
	}
	l := NewLayout()
	t := &TPCC{
		cfg:    cfg,
		rows:   l.Region(cfg.DatabaseBytes),
		shared: l.Region(cfg.SharedBytes),
		index:  l.Region(cfg.IndexBytes),
		log:    l.Region(cfg.LogBytes),
		r:      NewRNG(cfg.Seed),
	}
	part := t.rows.Size / int64(cfg.NumCPUs)
	t.privPyr = NewPyramid(part, cfg.MinWorkingSet, cfg.RecordBytes, 4, 0.5)
	t.sharedPyr = NewPyramid(t.shared.Size, cfg.MinWorkingSet, cfg.RecordBytes, 4, 0.5)
	t.indexZipf = NewZipf(t.r, 1.6, t.index.Slots(cfg.RecordBytes))
	return t
}

// Name implements Generator.
func (t *TPCC) Name() string { return fmt.Sprintf("tpcc-%s", addr.FormatSize(t.cfg.DatabaseBytes)) }

// Footprint implements Generator.
func (t *TPCC) Footprint() int64 {
	return t.rows.Size + t.shared.Size + t.index.Size + t.log.Size
}

// Next implements Generator.
func (t *TPCC) Next() (Ref, bool) {
	cpu := t.cpu
	t.cpu = (t.cpu + 1) % t.cfg.NumCPUs

	roll := t.r.Float()
	switch {
	case roll < t.cfg.LogFraction:
		// Sequential shared log append: every CPU writes the same tail.
		a := t.log.At(t.logPos)
		t.logPos += 64
		return Ref{Addr: a, Write: true, CPU: cpu, Instrs: 4}, true

	case roll < t.cfg.LogFraction+t.cfg.IndexFraction:
		// Index probe: read-mostly, extremely hot upper levels.
		slot := t.indexZipf.Sample()
		scattered := slot * 2654435761 % t.index.Slots(t.cfg.RecordBytes)
		return Ref{
			Addr:   t.index.Slot(scattered, t.cfg.RecordBytes),
			Write:  t.r.Chance(0.02),
			CPU:    cpu,
			Instrs: 5,
		}, true

	case roll < t.cfg.LogFraction+t.cfg.IndexFraction+t.cfg.SharedFraction:
		// Shared hot tables: nested working sets touched by every CPU.
		return Ref{
			Addr:   t.shared.At(t.sharedPyr.Sample(t.r)),
			Write:  t.r.Chance(t.cfg.WriteFraction),
			CPU:    cpu,
			Instrs: 4,
		}, true

	default:
		// The CPU's own partition: nested transaction working sets.
		part := t.rows.Size / int64(t.cfg.NumCPUs)
		off := int64(cpu)*part + t.privPyr.Sample(t.r)
		return Ref{
			Addr:   t.rows.At(off),
			Write:  t.r.Chance(t.cfg.WriteFraction),
			CPU:    cpu,
			Instrs: 4,
		}, true
	}
}
