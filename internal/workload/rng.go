package workload

import "math"

// RNG is a small, fast, deterministic generator (xorshift64*), used by
// every workload so that streams are reproducible without carrying
// math/rand state into hot loops. It is exported for the splash
// subpackage's kernels.
type RNG struct {
	state uint64
}

// NewRNG seeds the generator; a zero seed is remapped to a fixed odd
// constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("workload: Intn bound must be positive")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float returns a value in [0, 1).
func (r *RNG) Float() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Chance reports true with probability p.
func (r *RNG) Chance(p float64) bool { return r.Float() < p }

// Zipf samples from an approximate Zipf distribution over [0, n) with
// skew s > 1, using inverse-CDF sampling on the continuous bounded-Pareto
// approximation. Rank 0 is the hottest. This is the record-popularity
// model for OLTP row access: a few rows are very hot, with a long tail.
type Zipf struct {
	r       *RNG
	n       float64
	oneMinS float64 // 1 - s
	scale   float64 // n^(1-s) - 1
}

// NewZipf builds a sampler over [0, n) with skew s (s > 1).
func NewZipf(r *RNG, s float64, n int64) *Zipf {
	if n <= 0 {
		panic("workload: zipf range must be positive")
	}
	if s <= 1.0 {
		panic("workload: zipf skew must exceed 1")
	}
	oneMinS := 1 - s
	return &Zipf{
		r:       r,
		n:       float64(n),
		oneMinS: oneMinS,
		scale:   math.Pow(float64(n), oneMinS) - 1,
	}
}

// Sample returns a rank in [0, n), rank 0 hottest.
func (z *Zipf) Sample() int64 {
	u := z.r.Float()
	// Inverse CDF of bounded Pareto on [1, n]: x = (1 + u*(n^(1-s)-1))^(1/(1-s))
	x := math.Pow(1+u*z.scale, 1/z.oneMinS)
	i := int64(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= int64(z.n) {
		i = int64(z.n) - 1
	}
	return i
}
