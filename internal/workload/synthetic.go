package workload

// Synthetic primitive generators. They are the calibration workloads for
// the baseline-simulator comparisons (Table 3 traces) and the unit tests'
// ground truth, and they compose into the database models.

// UniformConfig parameterizes a uniform random generator.
type UniformConfig struct {
	NumCPUs       int
	FootprintByte int64
	WriteFraction float64
	Seed          uint64
}

// Uniform emits uniformly random references over its footprint, the
// worst-case cache workload.
type Uniform struct {
	cfg    UniformConfig
	region Region
	r      *RNG
	cpu    int
}

// NewUniform builds a uniform generator over a fresh layout.
func NewUniform(cfg UniformConfig) *Uniform {
	if cfg.NumCPUs <= 0 {
		panic("workload: NumCPUs must be positive")
	}
	l := NewLayout()
	return &Uniform{cfg: cfg, region: l.Region(cfg.FootprintByte), r: NewRNG(cfg.Seed)}
}

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Footprint implements Generator.
func (u *Uniform) Footprint() int64 { return u.region.Size }

// Next implements Generator.
func (u *Uniform) Next() (Ref, bool) {
	cpu := u.cpu
	u.cpu = (u.cpu + 1) % u.cfg.NumCPUs
	a := u.region.At(u.r.Intn(u.region.Size) &^ 7)
	return Ref{
		Addr:   a,
		Write:  u.r.Chance(u.cfg.WriteFraction),
		CPU:    cpu,
		Instrs: 3,
	}, true
}

// StrideConfig parameterizes a sequential/strided generator.
type StrideConfig struct {
	NumCPUs       int
	FootprintByte int64
	Stride        int64
	WriteFraction float64
	Seed          uint64
}

// Stride sweeps each CPU through its own partition with a fixed stride,
// the best-case streaming workload (pure spatial locality, zero reuse
// below the footprint).
type Stride struct {
	cfg    StrideConfig
	region Region
	r      *RNG
	cpu    int
	pos    []int64
}

// NewStride builds a strided generator; stride defaults to 128.
func NewStride(cfg StrideConfig) *Stride {
	if cfg.NumCPUs <= 0 {
		panic("workload: NumCPUs must be positive")
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 128
	}
	l := NewLayout()
	return &Stride{
		cfg:    cfg,
		region: l.Region(cfg.FootprintByte),
		r:      NewRNG(cfg.Seed),
		pos:    make([]int64, cfg.NumCPUs),
	}
}

// Name implements Generator.
func (s *Stride) Name() string { return "stride" }

// Footprint implements Generator.
func (s *Stride) Footprint() int64 { return s.region.Size }

// Next implements Generator.
func (s *Stride) Next() (Ref, bool) {
	cpu := s.cpu
	s.cpu = (s.cpu + 1) % s.cfg.NumCPUs
	part := s.region.Size / int64(s.cfg.NumCPUs)
	off := int64(cpu)*part + s.pos[cpu]
	s.pos[cpu] = (s.pos[cpu] + s.cfg.Stride) % part
	return Ref{
		Addr:   s.region.At(off),
		Write:  s.r.Chance(s.cfg.WriteFraction),
		CPU:    cpu,
		Instrs: 2,
	}, true
}

// ZipfConfig parameterizes a skewed-popularity generator.
type ZipfConfig struct {
	NumCPUs       int
	FootprintByte int64
	SlotBytes     int64 // granularity of popularity (record size)
	Skew          float64
	WriteFraction float64
	Seed          uint64
}

// Zipfian emits references whose slot popularity follows a Zipf
// distribution — the canonical model for skewed record access and the
// backbone of the OLTP generator.
type Zipfian struct {
	cfg    ZipfConfig
	region Region
	r      *RNG
	z      *Zipf
	cpu    int
}

// NewZipfian builds a Zipf generator. SlotBytes defaults to 128, Skew to
// 1.2.
func NewZipfian(cfg ZipfConfig) *Zipfian {
	if cfg.NumCPUs <= 0 {
		panic("workload: NumCPUs must be positive")
	}
	if cfg.SlotBytes <= 0 {
		cfg.SlotBytes = 128
	}
	if cfg.Skew == 0 {
		cfg.Skew = 1.2
	}
	l := NewLayout()
	region := l.Region(cfg.FootprintByte)
	r := NewRNG(cfg.Seed)
	return &Zipfian{
		cfg:    cfg,
		region: region,
		r:      r,
		z:      NewZipf(r, cfg.Skew, region.Slots(cfg.SlotBytes)),
	}
}

// Name implements Generator.
func (z *Zipfian) Name() string { return "zipf" }

// Footprint implements Generator.
func (z *Zipfian) Footprint() int64 { return z.region.Size }

// Next implements Generator.
func (z *Zipfian) Next() (Ref, bool) {
	cpu := z.cpu
	z.cpu = (z.cpu + 1) % z.cfg.NumCPUs
	slot := z.z.Sample()
	// Scatter ranks across the region so that popularity is not spatially
	// correlated (hot records are not adjacent on disk pages).
	scattered := slot * 2654435761 % z.region.Slots(z.cfg.SlotBytes)
	return Ref{
		Addr:   z.region.Slot(scattered, z.cfg.SlotBytes),
		Write:  z.r.Chance(z.cfg.WriteFraction),
		CPU:    cpu,
		Instrs: 3,
	}, true
}
