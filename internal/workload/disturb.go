package workload

import "memories/internal/addr"

// DisturbanceConfig models the OS file-system journaling bug of case
// study 2 (Figure 10): every few minutes the OS sweeps a journal region,
// displacing the workload's working set and spiking the miss ratio at
// every emulated cache size.
type DisturbanceConfig struct {
	// PeriodRefs is the number of workload references between bursts
	// (the paper's spikes recur every ~5 minutes, about 2 billion bus
	// references at that system's rates; presets scale this down).
	PeriodRefs uint64
	// BurstRefs is the length of each journaling sweep.
	BurstRefs uint64
	// JournalBytes is the size of the journal address space; sweeps
	// append through it, so journal lines are always cold.
	JournalBytes int64
	// CPU is the processor running the OS daemon.
	CPU int
}

// DefaultDisturbanceConfig returns a visible journaling bug: bursts of
// 60k references every 1M references over a 256MB journal.
func DefaultDisturbanceConfig() DisturbanceConfig {
	return DisturbanceConfig{
		PeriodRefs:   1_000_000,
		BurstRefs:    60_000,
		JournalBytes: 256 * addr.MB,
	}
}

// WithDisturbance wraps g so that journaling bursts interleave with the
// base workload. Disabling the bug (the paper's "upon fixing the problem
// in the OS the spikes were eliminated") is simply not wrapping.
func WithDisturbance(g Generator, cfg DisturbanceConfig) Generator {
	if cfg.PeriodRefs == 0 || cfg.BurstRefs == 0 || cfg.JournalBytes <= 0 {
		panic("workload: invalid disturbance configuration")
	}
	// The journal must not collide with workload regions, so place it far
	// above any plausible workload footprint (layouts allocate upward from
	// 1MB; no workload approaches 2^50).
	journal := Region{Base: 1 << 50, Size: cfg.JournalBytes}
	return &disturbed{g: g, cfg: cfg, journal: journal}
}

type disturbed struct {
	g       Generator
	cfg     DisturbanceConfig
	journal Region

	sinceBurst uint64
	burstLeft  uint64
	journalPos int64
}

func (d *disturbed) Name() string     { return d.g.Name() + "+journaling" }
func (d *disturbed) Footprint() int64 { return d.g.Footprint() + d.journal.Size }

func (d *disturbed) Next() (Ref, bool) {
	if d.burstLeft > 0 {
		d.burstLeft--
		a := d.journal.At(d.journalPos)
		d.journalPos += 64
		return Ref{Addr: a, Write: true, CPU: d.cfg.CPU, Instrs: 2}, true
	}
	d.sinceBurst++
	if d.sinceBurst >= d.cfg.PeriodRefs {
		d.sinceBurst = 0
		d.burstLeft = d.cfg.BurstRefs
	}
	return d.g.Next()
}
