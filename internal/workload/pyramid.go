package workload

// Pyramid models nested hierarchical working sets: level k spans the
// first Sizes[k] bytes of a region (each level containing the previous),
// and is chosen with probability proportional to Weights[k]. Accesses are
// uniform within the chosen level.
//
// This is the working-set structure that cache-size sweeps respond to: a
// cache of capacity C captures exactly the levels that fit in C, so the
// steady-state miss ratio falls smoothly as C grows, while a short trace
// only ever touches a fraction of the big levels — the mechanism behind
// the paper's trace-length case study (Figure 8). Database workloads are
// built on it: transaction-local rows at the bottom, warehouse/district
// working sets in the middle, the full table at the top.
type Pyramid struct {
	sizes  []int64
	cum    []float64 // cumulative selection probabilities
	slotSz int64
}

// NewPyramid builds a pyramid over a span of `total` bytes: the smallest
// level is minLevel bytes, each level is `growth` times larger, and each
// larger level is chosen `damp` times less often (0 < damp < 1). The top
// level always spans the full total. Slot granularity is slotSize bytes.
func NewPyramid(total, minLevel, slotSize int64, growth int64, damp float64) *Pyramid {
	if total <= 0 || minLevel <= 0 || slotSize <= 0 || growth < 2 || damp <= 0 || damp >= 1 {
		panic("workload: invalid pyramid parameters")
	}
	if minLevel > total {
		minLevel = total
	}
	p := &Pyramid{slotSz: slotSize}
	var weights []float64
	w := 1.0
	for s := minLevel; s < total; s *= growth {
		p.sizes = append(p.sizes, s)
		weights = append(weights, w)
		w *= damp
	}
	p.sizes = append(p.sizes, total)
	weights = append(weights, w)
	var sum float64
	for _, x := range weights {
		sum += x
	}
	acc := 0.0
	p.cum = make([]float64, len(weights))
	for i, x := range weights {
		acc += x / sum
		p.cum[i] = acc
	}
	return p
}

// Levels returns the level sizes, smallest first.
func (p *Pyramid) Levels() []int64 {
	out := make([]int64, len(p.sizes))
	copy(out, p.sizes)
	return out
}

// Sample returns a byte offset within the pyramid's span, aligned to the
// slot size.
func (p *Pyramid) Sample(r *RNG) int64 {
	u := r.Float()
	level := len(p.cum) - 1
	for i, c := range p.cum {
		if u < c {
			level = i
			break
		}
	}
	slots := p.sizes[level] / p.slotSz
	if slots <= 0 {
		slots = 1
	}
	return r.Intn(slots) * p.slotSz
}

// ExpectedTouched estimates the distinct bytes touched after n samples:
// each level contributes min(level size, samples into it * slot size).
// Used by tests and calibration, not the hot path.
func (p *Pyramid) ExpectedTouched(n uint64) int64 {
	var total int64
	prev := 0.0
	for i, c := range p.cum {
		frac := c - prev
		prev = c
		into := int64(float64(n) * frac * float64(p.slotSz))
		if into > p.sizes[i] {
			into = p.sizes[i]
		}
		total += into
	}
	if total > p.sizes[len(p.sizes)-1] {
		total = p.sizes[len(p.sizes)-1]
	}
	return total
}
