package workload

import (
	"testing"

	"memories/internal/addr"
)

func TestLayoutRegionsDisjoint(t *testing.T) {
	l := NewLayout()
	a := l.Region(10 * addr.MB)
	b := l.Region(1)
	c := l.Region(3 * addr.GB)
	regions := []Region{a, b, c}
	for i, r := range regions {
		for j, s := range regions {
			if i == j {
				continue
			}
			if r.Contains(s.Base) || s.Contains(r.Base) {
				t.Fatalf("regions %d and %d overlap: %+v %+v", i, j, r, s)
			}
		}
	}
	if a.Base == 0 {
		t.Fatal("layout allocated at address 0")
	}
}

func TestRegionAtWraps(t *testing.T) {
	r := Region{Base: 0x1000, Size: 256}
	if got := r.At(0); got != 0x1000 {
		t.Fatalf("At(0) = %#x", got)
	}
	if got := r.At(256); got != 0x1000 {
		t.Fatalf("At(size) should wrap, got %#x", got)
	}
	if got := r.At(-1); got != 0x10ff {
		t.Fatalf("At(-1) = %#x, want last byte", got)
	}
}

func TestRegionSlots(t *testing.T) {
	r := Region{Base: 0x1000, Size: 1024}
	if got := r.Slots(128); got != 8 {
		t.Fatalf("Slots = %d", got)
	}
	if got := r.Slot(8, 128); got != 0x1000 {
		t.Fatalf("Slot wraps: got %#x", got)
	}
	if got := r.Slot(3, 128); got != 0x1000+3*128 {
		t.Fatalf("Slot(3) = %#x", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(100)
	diff := false
	a2 := NewRNG(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float out of range: %v", f)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	r := NewRNG(7)
	z := NewZipf(r, 1.5, 1_000_000)
	const n = 100000
	inTop := 0
	for i := 0; i < n; i++ {
		if z.Sample() < 1000 { // top 0.1% of ranks
			inTop++
		}
	}
	frac := float64(inTop) / n
	if frac < 0.4 {
		t.Fatalf("top-1000 ranks got %.2f of accesses, want heavy concentration", frac)
	}
	// But the tail is not empty either.
	tail := 0
	for i := 0; i < n; i++ {
		if z.Sample() >= 100000 {
			tail++
		}
	}
	if tail == 0 {
		t.Fatal("zipf tail never sampled")
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRNG(8)
	z := NewZipf(r, 1.2, 100)
	for i := 0; i < 100000; i++ {
		s := z.Sample()
		if s < 0 || s >= 100 {
			t.Fatalf("sample %d out of range", s)
		}
	}
}

func TestLimitEndsStream(t *testing.T) {
	g := Limit(NewUniform(UniformConfig{NumCPUs: 2, FootprintByte: addr.MB}), 10)
	count := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		count++
		if count > 20 {
			t.Fatal("Limit did not stop the stream")
		}
	}
	if count != 10 {
		t.Fatalf("got %d refs, want 10", count)
	}
}

func TestUniformSpreadsCPUsAndAddresses(t *testing.T) {
	g := NewUniform(UniformConfig{NumCPUs: 4, FootprintByte: addr.MB, WriteFraction: 0.5, Seed: 3})
	cpuSeen := map[int]int{}
	writes := 0
	for i := 0; i < 4000; i++ {
		ref, ok := g.Next()
		if !ok {
			t.Fatal("uniform ended")
		}
		cpuSeen[ref.CPU]++
		if ref.Write {
			writes++
		}
		if ref.CPU < 0 || ref.CPU >= 4 {
			t.Fatalf("bad CPU %d", ref.CPU)
		}
		if ref.Instrs == 0 {
			t.Fatal("zero instruction count")
		}
	}
	for cpu, n := range cpuSeen {
		if n != 1000 {
			t.Fatalf("cpu %d issued %d refs, want 1000 (round robin)", cpu, n)
		}
	}
	if writes < 1600 || writes > 2400 {
		t.Fatalf("writes = %d, want ~2000", writes)
	}
}

func TestStrideIsSequentialPerCPU(t *testing.T) {
	g := NewStride(StrideConfig{NumCPUs: 2, FootprintByte: addr.MB, Stride: 128})
	var prev [2]uint64
	for i := 0; i < 100; i++ {
		ref, _ := g.Next()
		if prev[ref.CPU] != 0 && ref.Addr != prev[ref.CPU]+128 {
			t.Fatalf("cpu %d: addr %#x after %#x, want +128", ref.CPU, ref.Addr, prev[ref.CPU])
		}
		prev[ref.CPU] = ref.Addr
	}
}

func TestStridePartitionsDisjoint(t *testing.T) {
	g := NewStride(StrideConfig{NumCPUs: 4, FootprintByte: 4 * addr.MB})
	seen := map[int]map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		ref, _ := g.Next()
		if seen[ref.CPU] == nil {
			seen[ref.CPU] = map[uint64]bool{}
		}
		seen[ref.CPU][ref.Addr] = true
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			for addr := range seen[a] {
				if seen[b][addr] {
					t.Fatalf("cpus %d and %d both touched %#x", a, b, addr)
				}
			}
		}
	}
}

func TestZipfianStaysInRegion(t *testing.T) {
	g := NewZipfian(ZipfConfig{NumCPUs: 2, FootprintByte: 16 * addr.MB, Seed: 4})
	for i := 0; i < 50000; i++ {
		ref, _ := g.Next()
		if ref.Addr < 1<<20 || ref.Addr >= uint64(1<<20)+uint64(g.Footprint())+uint64(1<<20) {
			t.Fatalf("address %#x escaped region", ref.Addr)
		}
	}
}

func TestTPCCDeterministicAndInBounds(t *testing.T) {
	cfg := ScaledTPCCConfig(1024) // ~150MB
	g1, g2 := NewTPCC(cfg), NewTPCC(cfg)
	for i := 0; i < 20000; i++ {
		r1, _ := g1.Next()
		r2, _ := g2.Next()
		if r1 != r2 {
			t.Fatalf("tpcc not deterministic at ref %d: %+v vs %+v", i, r1, r2)
		}
		if r1.CPU < 0 || r1.CPU >= cfg.NumCPUs {
			t.Fatalf("bad cpu %d", r1.CPU)
		}
	}
}

func TestTPCCMixesReadsWritesAndRegions(t *testing.T) {
	g := NewTPCC(ScaledTPCCConfig(1024))
	writes, logRefs := 0, 0
	const n = 50000
	for i := 0; i < n; i++ {
		ref, _ := g.Next()
		if ref.Write {
			writes++
		}
		if g.log.Contains(ref.Addr) {
			logRefs++
		}
	}
	if writes < n/10 || writes > n/2 {
		t.Fatalf("writes = %d of %d, outside OLTP range", writes, n)
	}
	if logRefs == 0 {
		t.Fatal("no log traffic generated")
	}
}

func TestTPCCFootprintScales(t *testing.T) {
	small := NewTPCC(ScaledTPCCConfig(1024))
	big := NewTPCC(ScaledTPCCConfig(256))
	if small.Footprint() >= big.Footprint() {
		t.Fatal("scaling did not shrink footprint")
	}
}

func TestTPCHScanDominates(t *testing.T) {
	cfg := ScaledTPCHConfig(1024)
	g := NewTPCH(cfg)
	inFact := 0
	const n = 50000
	for i := 0; i < n; i++ {
		ref, _ := g.Next()
		if g.fact.Contains(ref.Addr) {
			inFact++
		}
	}
	frac := float64(inFact) / n
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("fact-table fraction = %.2f, want ~0.7", frac)
	}
}

func TestDisturbanceInjectsBursts(t *testing.T) {
	base := NewUniform(UniformConfig{NumCPUs: 2, FootprintByte: addr.MB, Seed: 5})
	cfg := DisturbanceConfig{PeriodRefs: 100, BurstRefs: 20, JournalBytes: addr.MB, CPU: 0}
	g := WithDisturbance(base, cfg)
	journal := 0
	const n = 1200
	for i := 0; i < n; i++ {
		ref, _ := g.Next()
		if ref.Addr >= 1<<50 {
			journal++
			if !ref.Write {
				t.Fatal("journal refs must be writes")
			}
			if ref.CPU != 0 {
				t.Fatal("journal refs must come from the daemon CPU")
			}
		}
	}
	// 1200 refs at period 100 burst 20: each period contributes 20 journal
	// refs per 120 emitted, so expect n/6 = 200.
	if journal < 150 || journal > 250 {
		t.Fatalf("journal refs = %d, want ~200", journal)
	}
	if g.Name() != "uniform+journaling" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestDisturbanceJournalAlwaysFresh(t *testing.T) {
	base := NewUniform(UniformConfig{NumCPUs: 1, FootprintByte: addr.MB, Seed: 6})
	g := WithDisturbance(base, DisturbanceConfig{PeriodRefs: 10, BurstRefs: 5, JournalBytes: 64 * addr.MB})
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		ref, _ := g.Next()
		if ref.Addr >= 1<<50 {
			if seen[ref.Addr] {
				t.Fatalf("journal address %#x reused too soon", ref.Addr)
			}
			seen[ref.Addr] = true
		}
	}
}

func TestDescribe(t *testing.T) {
	g := NewUniform(UniformConfig{NumCPUs: 1, FootprintByte: 8 * addr.MB})
	if got := Describe(g); got != "uniform (8MB footprint)" {
		t.Fatalf("Describe = %q", got)
	}
}
