package workload

import (
	"fmt"

	"memories/internal/checkpoint"
)

// State returns the RNG's raw xorshift state for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a checkpointed RNG state. Zero is remapped the same
// way NewRNG remaps a zero seed (xorshift's all-zero fixed point).
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}

// Checkpointer is implemented by generators whose position in the
// reference stream can be saved and restored. The splash kernels do not
// implement it (their state lives in goroutine stacks); Host.SaveState
// surfaces that as an error rather than writing a partial snapshot.
type Checkpointer interface {
	SaveState(e *checkpoint.Enc) error
	RestoreState(d *checkpoint.Dec) error
}

// decCPU reads a CPU cursor and clamps it into [0, n): a corrupt value
// must not index past per-CPU state slices.
func decCPU(d *checkpoint.Dec, n int) int {
	cpu := int(d.U32())
	if cpu < 0 || cpu >= n {
		cpu = 0
	}
	return cpu
}

// SaveState implements Checkpointer.
func (u *Uniform) SaveState(e *checkpoint.Enc) error {
	e.U64(u.r.state)
	e.U32(uint32(u.cpu))
	return nil
}

// RestoreState implements Checkpointer.
func (u *Uniform) RestoreState(d *checkpoint.Dec) error {
	u.r.SetState(d.U64())
	u.cpu = decCPU(d, u.cfg.NumCPUs)
	return d.Err()
}

// SaveState implements Checkpointer.
func (s *Stride) SaveState(e *checkpoint.Enc) error {
	e.U64(s.r.state)
	e.U32(uint32(s.cpu))
	e.I64Slice(s.pos)
	return nil
}

// RestoreState implements Checkpointer.
func (s *Stride) RestoreState(d *checkpoint.Dec) error {
	s.r.SetState(d.U64())
	s.cpu = decCPU(d, s.cfg.NumCPUs)
	pos := d.I64Slice()
	if d.Err() != nil {
		return d.Err()
	}
	if len(pos) != len(s.pos) {
		return d.Failf("stride cursor count %d != %d CPUs", len(pos), len(s.pos))
	}
	copy(s.pos, pos)
	return nil
}

// SaveState implements Checkpointer.
func (z *Zipfian) SaveState(e *checkpoint.Enc) error {
	e.U64(z.r.state)
	e.U32(uint32(z.cpu))
	return nil
}

// RestoreState implements Checkpointer.
func (z *Zipfian) RestoreState(d *checkpoint.Dec) error {
	z.r.SetState(d.U64())
	z.cpu = decCPU(d, z.cfg.NumCPUs)
	return d.Err()
}

// SaveState implements Checkpointer. The pyramids and Zipf samplers are
// immutable after construction; only the RNG and cursors move.
func (t *TPCC) SaveState(e *checkpoint.Enc) error {
	e.U64(t.r.state)
	e.U32(uint32(t.cpu))
	e.I64(t.logPos)
	return nil
}

// RestoreState implements Checkpointer.
func (t *TPCC) RestoreState(d *checkpoint.Dec) error {
	t.r.SetState(d.U64())
	t.cpu = decCPU(d, t.cfg.NumCPUs)
	t.logPos = d.I64()
	return d.Err()
}

// SaveState implements Checkpointer.
func (t *TPCH) SaveState(e *checkpoint.Enc) error {
	e.U64(t.r.state)
	e.U32(uint32(t.cpu))
	e.I64Slice(t.scanPos)
	return nil
}

// RestoreState implements Checkpointer.
func (t *TPCH) RestoreState(d *checkpoint.Dec) error {
	t.r.SetState(d.U64())
	t.cpu = decCPU(d, t.cfg.NumCPUs)
	pos := d.I64Slice()
	if d.Err() != nil {
		return d.Err()
	}
	if len(pos) != len(t.scanPos) {
		return d.Failf("tpch scan cursor count %d != %d CPUs", len(pos), len(t.scanPos))
	}
	copy(t.scanPos, pos)
	return nil
}

// SaveState implements Checkpointer.
func (w *Web) SaveState(e *checkpoint.Enc) error {
	e.U64(w.r.state)
	e.U32(uint32(w.cpu))
	e.I64(w.logPos)
	e.U32(uint32(len(w.st)))
	for _, s := range w.st {
		e.I64(s.docBase)
		e.I64(s.docLeft)
		e.I64(s.conn)
	}
	return nil
}

// RestoreState implements Checkpointer.
func (w *Web) RestoreState(d *checkpoint.Dec) error {
	w.r.SetState(d.U64())
	w.cpu = decCPU(d, w.cfg.NumCPUs)
	w.logPos = d.I64()
	n := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(w.st) {
		return d.Failf("web per-CPU state count %d != %d CPUs", n, len(w.st))
	}
	for i := range w.st {
		w.st[i].docBase = d.I64()
		w.st[i].docLeft = d.I64()
		w.st[i].conn = d.I64()
	}
	return d.Err()
}

// checkpointerFor returns g as a Checkpointer, or an error naming the
// generator when its stream position cannot be serialized.
func checkpointerFor(g Generator) (Checkpointer, error) {
	if c, ok := g.(Checkpointer); ok {
		return c, nil
	}
	return nil, fmt.Errorf("workload: generator %q is not checkpointable", g.Name())
}

// SaveState implements Checkpointer by delegating to the wrapped
// generator after the remaining-reference budget.
func (l *limited) SaveState(e *checkpoint.Enc) error {
	c, err := checkpointerFor(l.g)
	if err != nil {
		return err
	}
	e.U64(l.left)
	return c.SaveState(e)
}

// RestoreState implements Checkpointer.
func (l *limited) RestoreState(d *checkpoint.Dec) error {
	c, err := checkpointerFor(l.g)
	if err != nil {
		return err
	}
	l.left = d.U64()
	return c.RestoreState(d)
}

// SaveState implements Checkpointer: burst phase, then the inner stream.
func (dg *disturbed) SaveState(e *checkpoint.Enc) error {
	c, err := checkpointerFor(dg.g)
	if err != nil {
		return err
	}
	e.U64(dg.sinceBurst)
	e.U64(dg.burstLeft)
	e.I64(dg.journalPos)
	return c.SaveState(e)
}

// RestoreState implements Checkpointer.
func (dg *disturbed) RestoreState(d *checkpoint.Dec) error {
	c, err := checkpointerFor(dg.g)
	if err != nil {
		return err
	}
	dg.sinceBurst = d.U64()
	dg.burstLeft = d.U64()
	dg.journalPos = d.I64()
	return c.RestoreState(d)
}
