package workload

import (
	"testing"

	"memories/internal/addr"
)

func TestPyramidLevels(t *testing.T) {
	p := NewPyramid(64*addr.MB, addr.MB, 128, 4, 0.5)
	levels := p.Levels()
	want := []int64{addr.MB, 4 * addr.MB, 16 * addr.MB, 64 * addr.MB}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}

func TestPyramidTopLevelAlwaysFullSpan(t *testing.T) {
	p := NewPyramid(100*addr.MB, addr.MB, 128, 4, 0.5) // 100MB not a power of 4 multiple
	levels := p.Levels()
	if levels[len(levels)-1] != 100*addr.MB {
		t.Fatalf("top level = %d, want full span", levels[len(levels)-1])
	}
}

func TestPyramidMinLevelClamped(t *testing.T) {
	p := NewPyramid(addr.MB, 16*addr.MB, 128, 4, 0.5)
	if len(p.Levels()) != 1 || p.Levels()[0] != addr.MB {
		t.Fatalf("levels = %v", p.Levels())
	}
}

func TestPyramidSampleBoundsAndAlignment(t *testing.T) {
	p := NewPyramid(8*addr.MB, 256*addr.KB, 128, 4, 0.5)
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		off := p.Sample(r)
		if off < 0 || off >= 8*addr.MB {
			t.Fatalf("offset %d out of span", off)
		}
		if off%128 != 0 {
			t.Fatalf("offset %d not slot aligned", off)
		}
	}
}

func TestPyramidConcentratesOnSmallLevels(t *testing.T) {
	p := NewPyramid(64*addr.MB, addr.MB, 128, 4, 0.5)
	r := NewRNG(4)
	const n = 200000
	inHot := 0
	for i := 0; i < n; i++ {
		if p.Sample(r) < addr.MB {
			inHot++
		}
	}
	// The 1MB level gets ~8/15 of the probability mass directly, plus its
	// share of the bigger uniform levels.
	frac := float64(inHot) / n
	if frac < 0.45 || frac > 0.70 {
		t.Fatalf("hot-level fraction = %.3f, want ~0.55", frac)
	}
}

func TestPyramidTouchedGrowsSublinearly(t *testing.T) {
	p := NewPyramid(1*addr.GB, addr.MB, 128, 4, 0.5)
	small := p.ExpectedTouched(10_000)
	big := p.ExpectedTouched(10_000_000)
	if big <= small {
		t.Fatal("touched footprint must grow with samples")
	}
	// 1000x the samples must touch far less than 1000x the bytes.
	if big >= small*200 {
		t.Fatalf("touched grew linearly: %d -> %d", small, big)
	}
}

func TestPyramidInvalidParamsPanic(t *testing.T) {
	cases := []func(){
		func() { NewPyramid(0, 1, 128, 4, 0.5) },
		func() { NewPyramid(addr.MB, 0, 128, 4, 0.5) },
		func() { NewPyramid(addr.MB, addr.KB, 0, 4, 0.5) },
		func() { NewPyramid(addr.MB, addr.KB, 128, 1, 0.5) },
		func() { NewPyramid(addr.MB, addr.KB, 128, 4, 0) },
		func() { NewPyramid(addr.MB, addr.KB, 128, 4, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
