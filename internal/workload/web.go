package workload

import (
	"fmt"

	"memories/internal/addr"
)

// WebConfig parameterizes the web-server workload (§5.3 closes with "We
// can also use the MemorIES board for scaling studies involving
// transaction processing, decision support, and web server workloads").
// The model is a static-content server: a large document store with
// Zipf-popular documents streamed sequentially per request, hot per-
// connection socket buffers, shared kernel protocol-control structures,
// and an access log.
type WebConfig struct {
	NumCPUs int
	// DocBytes is the document store (disk cache) size.
	DocBytes int64
	// MeanDocBytes is the average document length; requests stream a
	// whole document through the cache hierarchy.
	MeanDocBytes int64
	// Connections is the number of simultaneously active connections;
	// each owns a socket-buffer slot.
	Connections int
	// Skew is the document-popularity Zipf skew (>1).
	Skew float64
	Seed uint64
}

// DefaultWebConfig returns a 1999-scale busy static server: 16GB of
// content, 8KB mean documents, 4096 connections.
func DefaultWebConfig() WebConfig {
	return WebConfig{
		NumCPUs:      8,
		DocBytes:     16 * addr.GB,
		MeanDocBytes: 8 * addr.KB,
		Connections:  4096,
		Skew:         1.3,
		Seed:         6,
	}
}

// ScaledWebConfig shrinks the content store by factor.
func ScaledWebConfig(factor int64) WebConfig {
	cfg := DefaultWebConfig()
	if factor > 1 {
		cfg.DocBytes /= factor
		if cfg.DocBytes < 4*addr.MB {
			cfg.DocBytes = 4 * addr.MB
		}
	}
	return cfg
}

// Web is the web-server reference generator.
type Web struct {
	cfg     WebConfig
	docs    Region
	sockets Region
	kernel  Region
	logreg  Region

	r       *RNG
	docZipf *Zipf

	cpu    int
	st     []webCPUState
	logPos int64
}

type webCPUState struct {
	docBase int64 // current document's base offset
	docLeft int64 // bytes left to stream
	conn    int64 // connection owning the current request
}

// NewWeb builds the generator.
func NewWeb(cfg WebConfig) *Web {
	if cfg.NumCPUs <= 0 {
		panic("workload: NumCPUs must be positive")
	}
	if cfg.MeanDocBytes <= 0 {
		cfg.MeanDocBytes = 8 * addr.KB
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 1024
	}
	if cfg.Skew <= 1 {
		cfg.Skew = 1.3
	}
	l := NewLayout()
	w := &Web{
		cfg:     cfg,
		docs:    l.Region(cfg.DocBytes),
		sockets: l.Region(int64(cfg.Connections) * 16 * addr.KB),
		kernel:  l.Region(8 * addr.MB),
		logreg:  l.Region(64 * addr.MB),
		r:       NewRNG(cfg.Seed),
		st:      make([]webCPUState, cfg.NumCPUs),
	}
	w.docZipf = NewZipf(w.r, cfg.Skew, w.docs.Size/cfg.MeanDocBytes)
	return w
}

// Name implements Generator.
func (w *Web) Name() string { return fmt.Sprintf("web-%s", addr.FormatSize(w.cfg.DocBytes)) }

// Footprint implements Generator.
func (w *Web) Footprint() int64 {
	return w.docs.Size + w.sockets.Size + w.kernel.Size + w.logreg.Size
}

// Next implements Generator.
func (w *Web) Next() (Ref, bool) {
	cpu := w.cpu
	w.cpu = (w.cpu + 1) % w.cfg.NumCPUs
	s := &w.st[cpu]

	if s.docLeft <= 0 {
		// Finish the previous request: append to the access log and run
		// the kernel protocol path, then pick the next document.
		switch w.r.Intn(3) {
		case 0:
			a := w.logreg.At(w.logPos)
			w.logPos += 64
			return Ref{Addr: a, Write: true, CPU: cpu, Instrs: 4}, true
		case 1:
			// Kernel TCP/route structures: small, shared, read-mostly.
			a := w.kernel.At(w.r.Intn(w.kernel.Size) &^ 63)
			return Ref{Addr: a, Write: w.r.Chance(0.2), CPU: cpu, Instrs: 8}, true
		}
		doc := w.docZipf.Sample()
		scattered := doc * 2654435761 % (w.docs.Size / w.cfg.MeanDocBytes)
		s.docBase = scattered * w.cfg.MeanDocBytes
		// Document lengths vary 1x-4x around the mean.
		s.docLeft = w.cfg.MeanDocBytes * (1 + w.r.Intn(4)) / 2
		s.conn = w.r.Intn(int64(w.cfg.Connections))
	}

	// Stream the document: read content, with a socket-buffer write per
	// few content lines (send batching).
	off := s.docBase + (w.cfg.MeanDocBytes - s.docLeft)
	s.docLeft -= 64
	if s.docLeft%256 == 192 {
		a := w.sockets.Slot(s.conn, 16*addr.KB) + (uint64(off)%uint64(16*addr.KB))&^63
		return Ref{Addr: a, Write: true, CPU: cpu, Instrs: 3}, true
	}
	return Ref{Addr: w.docs.At(off), Write: false, CPU: cpu, Instrs: 3}, true
}
