package workload

import (
	"fmt"

	"memories/internal/addr"
)

// TPCHConfig parameterizes the decision-support (TPC-H-like) generator:
// table scans over a large fact table, repeated reads of medium dimension
// tables, and random probes of per-query hash-join tables.
type TPCHConfig struct {
	NumCPUs int
	// FactBytes is the scan-dominated fact table (the paper's runs used a
	// 100GB database).
	FactBytes int64
	// DimBytes is the dimension tables re-read by every query.
	DimBytes int64
	// HashBytes is the shared hash-join working storage.
	HashBytes int64
	// ScanFraction, DimFraction: probability mix; the remainder probes
	// the hash tables.
	ScanFraction float64
	DimFraction  float64
	Seed         uint64
}

// DefaultTPCHConfig returns the paper-scale DSS model.
func DefaultTPCHConfig() TPCHConfig {
	return TPCHConfig{
		NumCPUs:      8,
		FactBytes:    100 * addr.GB,
		DimBytes:     1 * addr.GB,
		HashBytes:    512 * addr.MB,
		ScanFraction: 0.70,
		DimFraction:  0.15,
		Seed:         2,
	}
}

// ScaledTPCHConfig shrinks the footprint by factor, preserving structure.
func ScaledTPCHConfig(factor int64) TPCHConfig {
	cfg := DefaultTPCHConfig()
	if factor > 1 {
		cfg.FactBytes /= factor
		cfg.DimBytes /= factor
		cfg.HashBytes /= factor
		if cfg.HashBytes < addr.MB {
			cfg.HashBytes = addr.MB
		}
	}
	return cfg
}

// TPCH is the DSS reference generator.
type TPCH struct {
	cfg  TPCHConfig
	fact Region
	dim  Region
	hash Region

	r        *RNG
	hashZipf *Zipf
	dimPyr   *Pyramid
	cpu      int
	scanPos  []int64 // per-CPU fact-scan cursor
}

// NewTPCH builds the generator.
func NewTPCH(cfg TPCHConfig) *TPCH {
	if cfg.NumCPUs <= 0 {
		panic("workload: NumCPUs must be positive")
	}
	l := NewLayout()
	t := &TPCH{
		cfg:     cfg,
		fact:    l.Region(cfg.FactBytes),
		dim:     l.Region(cfg.DimBytes),
		hash:    l.Region(cfg.HashBytes),
		r:       NewRNG(cfg.Seed),
		scanPos: make([]int64, cfg.NumCPUs),
	}
	t.hashZipf = NewZipf(t.r, 1.1, t.hash.Slots(64))
	minLevel := t.dim.Size / 256
	if minLevel < 64<<10 {
		minLevel = 64 << 10
	}
	t.dimPyr = NewPyramid(t.dim.Size, minLevel, 128, 4, 0.5)
	return t
}

// Name implements Generator.
func (t *TPCH) Name() string { return fmt.Sprintf("tpch-%s", addr.FormatSize(t.cfg.FactBytes)) }

// Footprint implements Generator.
func (t *TPCH) Footprint() int64 { return t.fact.Size + t.dim.Size + t.hash.Size }

// Next implements Generator.
func (t *TPCH) Next() (Ref, bool) {
	cpu := t.cpu
	t.cpu = (t.cpu + 1) % t.cfg.NumCPUs

	roll := t.r.Float()
	switch {
	case roll < t.cfg.ScanFraction:
		// Parallel partitioned scan of the fact table: pure streaming.
		part := t.fact.Size / int64(t.cfg.NumCPUs)
		off := int64(cpu)*part + t.scanPos[cpu]
		t.scanPos[cpu] = (t.scanPos[cpu] + 64) % part
		return Ref{Addr: t.fact.At(off), Write: false, CPU: cpu, Instrs: 3}, true

	case roll < t.cfg.ScanFraction+t.cfg.DimFraction:
		// Dimension tables: nested working sets shared by every query —
		// a cache big enough to retain a level keeps its accesses.
		return Ref{Addr: t.dim.At(t.dimPyr.Sample(t.r)), Write: false, CPU: cpu, Instrs: 4}, true

	default:
		// Hash-join build/probe: skewed random access, mixed read/write.
		slot := t.hashZipf.Sample() * 2654435761 % t.hash.Slots(64)
		return Ref{
			Addr:   t.hash.At(slot * 64),
			Write:  t.r.Chance(0.4),
			CPU:    cpu,
			Instrs: 6,
		}, true
	}
}
