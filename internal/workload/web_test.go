package workload

import (
	"testing"

	"memories/internal/addr"
)

func TestWebDeterministicAndBounded(t *testing.T) {
	cfg := ScaledWebConfig(4096)
	a, b := NewWeb(cfg), NewWeb(cfg)
	limit := uint64(a.Footprint()) + (64 << 20)
	for i := 0; i < 50000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("web not deterministic at ref %d", i)
		}
		if ra.Addr > limit {
			t.Fatalf("address %#x beyond footprint", ra.Addr)
		}
		if ra.CPU < 0 || ra.CPU >= cfg.NumCPUs || ra.Instrs == 0 {
			t.Fatalf("bad ref %+v", ra)
		}
	}
}

func TestWebTouchesAllRegions(t *testing.T) {
	w := NewWeb(ScaledWebConfig(4096))
	var docs, socks, kernel, logs int
	for i := 0; i < 100000; i++ {
		ref, _ := w.Next()
		switch {
		case w.docs.Contains(ref.Addr):
			docs++
		case w.sockets.Contains(ref.Addr):
			socks++
		case w.kernel.Contains(ref.Addr):
			kernel++
		case w.logreg.Contains(ref.Addr):
			logs++
		}
	}
	if docs == 0 || socks == 0 || kernel == 0 || logs == 0 {
		t.Fatalf("regions: docs=%d sockets=%d kernel=%d log=%d", docs, socks, kernel, logs)
	}
	// Document streaming dominates a static server.
	if docs < socks {
		t.Fatalf("doc reads (%d) should outnumber socket writes (%d)", docs, socks)
	}
}

func TestWebLogIsAppendOnly(t *testing.T) {
	w := NewWeb(ScaledWebConfig(4096))
	var prev uint64
	for i := 0; i < 200000; i++ {
		ref, _ := w.Next()
		if !w.logreg.Contains(ref.Addr) {
			continue
		}
		if !ref.Write {
			t.Fatal("log accesses must be writes")
		}
		if prev != 0 && ref.Addr <= prev && ref.Addr != w.logreg.Base {
			t.Fatalf("log went backwards: %#x after %#x", ref.Addr, prev)
		}
		prev = ref.Addr
	}
}

func TestWebHotDocsConcentrate(t *testing.T) {
	w := NewWeb(ScaledWebConfig(1024)) // 16MB of docs
	counts := map[int64]int{}
	total := 0
	for i := 0; i < 200000; i++ {
		ref, _ := w.Next()
		if w.docs.Contains(ref.Addr) {
			counts[int64(ref.Addr-w.docs.Base)/w.cfg.MeanDocBytes]++
			total++
		}
	}
	// Top 10 documents should capture a sizable share of traffic.
	top := 0
	for i := 0; i < 10; i++ {
		best, bestK := 0, int64(-1)
		for k, n := range counts {
			if n > best {
				best, bestK = n, k
			}
		}
		top += best
		delete(counts, bestK)
	}
	if frac := float64(top) / float64(total); frac < 0.10 {
		t.Fatalf("top-10 docs got %.3f of traffic; popularity skew missing", frac)
	}
}

func TestWebFootprintScales(t *testing.T) {
	if NewWeb(ScaledWebConfig(4096)).Footprint() >= NewWeb(ScaledWebConfig(16)).Footprint() {
		t.Fatal("scaling did not shrink footprint")
	}
	// Minimum clamp.
	tiny := ScaledWebConfig(1 << 40)
	if tiny.DocBytes < 4*addr.MB {
		t.Fatal("doc store clamped below minimum")
	}
}
