package splash

import (
	"testing"

	"memories/internal/workload"
)

func TestNewKnowsAllNames(t *testing.T) {
	for _, name := range Names() {
		g := New(name, SizeTest, 4, 1)
		if g == nil {
			t.Fatalf("New(%q) = nil", name)
		}
		for i := 0; i < 1000; i++ {
			ref, ok := g.Next()
			if !ok {
				t.Fatalf("%s: stream ended (kernels are infinite)", name)
			}
			if ref.CPU < 0 || ref.CPU >= 4 {
				t.Fatalf("%s: bad cpu %d", name, ref.CPU)
			}
			if ref.Instrs == 0 {
				t.Fatalf("%s: zero instruction count", name)
			}
		}
	}
	if New("quake", SizeTest, 4, 1) != nil {
		t.Fatal("New accepted unknown kernel")
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, name := range Names() {
		a := New(name, SizeTest, 4, 7)
		b := New(name, SizeTest, 4, 7)
		for i := 0; i < 5000; i++ {
			ra, _ := a.Next()
			rb, _ := b.Next()
			if ra != rb {
				t.Fatalf("%s: diverged at ref %d", name, i)
			}
		}
	}
}

// TestPaperFootprints checks Table 5's memory footprints (decimal GB).
func TestPaperFootprints(t *testing.T) {
	cases := []struct {
		name string
		want float64 // GB from Table 5
		tol  float64
	}{
		{NameFMM, 8.34, 0.6},
		{NameFFT, 12.58, 0.6},
		{NameOcean, 14.5, 0.9},
		{NameWater, 1.38, 0.15},
		{NameBarnes, 3.1, 0.3},
	}
	for _, c := range cases {
		g := New(c.name, SizePaper, 8, 1)
		got := FootprintGB(g)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s footprint = %.2fGB, paper says %.2fGB", c.name, got, c.want)
		}
	}
}

func TestClassicSizesMuchSmaller(t *testing.T) {
	for _, name := range Names() {
		paper := New(name, SizePaper, 8, 1)
		classic := New(name, SizeClassic, 8, 1)
		if classic.Footprint()*8 > paper.Footprint() {
			t.Errorf("%s: classic footprint %.3fGB not much smaller than paper %.3fGB",
				name, FootprintGB(classic), FootprintGB(paper))
		}
	}
}

func TestKernelsStayInFootprint(t *testing.T) {
	for _, name := range Names() {
		g := New(name, SizeTest, 4, 2)
		// Regions are allocated from 1MB upward, contiguous with 1MB
		// alignment padding; a generous upper bound is footprint + 64MB.
		limit := uint64(g.Footprint()) + (64 << 20)
		for i := 0; i < 50000; i++ {
			ref, _ := g.Next()
			if ref.Addr > limit {
				t.Fatalf("%s: address %#x beyond footprint bound %#x", name, ref.Addr, limit)
			}
		}
	}
}

func TestFFTMoreInstructionsAtLargerSize(t *testing.T) {
	small := NewFFT(FFTConfig{NumCPUs: 4, M: 12, Seed: 1})
	big := NewFFT(FFTConfig{NumCPUs: 4, M: 28, Seed: 1})
	var smallInstrs, bigInstrs uint64
	for i := 0; i < 10000; i++ {
		rs, _ := small.Next()
		rb, _ := big.Next()
		smallInstrs += rs.Instrs
		bigInstrs += rb.Instrs
	}
	if bigInstrs <= smallInstrs {
		t.Fatalf("fft m28 instrs %d not above m12 %d (log-n compute scaling)", bigInstrs, smallInstrs)
	}
}

func TestFFTBlockReuse(t *testing.T) {
	// The blocked compute phase must revisit each line PassesPerBlock
	// times before moving on; measure unique lines over a window.
	g := NewFFT(FFTConfig{NumCPUs: 1, M: 14, PassesPerBlock: 4, BlockBytes: 8 << 10, Seed: 1})
	lines := map[uint64]int{}
	for i := 0; i < 4*(8<<10)/64; i++ {
		ref, _ := g.Next()
		lines[ref.Addr>>6]++
	}
	reused := 0
	for _, n := range lines {
		if n >= 2 {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("no block reuse observed in fft compute phase")
	}
}

func TestOceanMultigridLevels(t *testing.T) {
	o := NewOcean(OceanConfig{NumCPUs: 4, N: 1024, Seed: 1})
	if len(o.levels) < 3 {
		t.Fatalf("ocean built %d levels, want >= 3", len(o.levels))
	}
	for i := 1; i < len(o.levels); i++ {
		if o.levels[i].Size >= o.levels[i-1].Size {
			t.Fatalf("level %d (%d) not smaller than level %d (%d)",
				i, o.levels[i].Size, i-1, o.levels[i-1].Size)
		}
	}
}

func TestOceanTouchesAllLevels(t *testing.T) {
	o := NewOcean(OceanConfig{NumCPUs: 2, N: 256, Seed: 1})
	touched := make([]bool, len(o.levels))
	for i := 0; i < 3_000_000; i++ {
		ref, _ := o.Next()
		for li, lv := range o.levels {
			if lv.Contains(ref.Addr) {
				touched[li] = true
				break
			}
		}
		all := true
		for _, tt := range touched {
			all = all && tt
		}
		if all {
			return
		}
	}
	t.Fatalf("not all multigrid levels touched: %v", touched)
}

func TestBarnesUpperTreeLevelsAreHot(t *testing.T) {
	b := NewBarnes(BarnesConfig{NumCPUs: 4, Bodies: 64 << 10, Seed: 1})
	rootLine := b.cellAddr(0, 0) >> 6
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		ref, _ := b.Next()
		if ref.Addr>>6 == rootLine {
			hits++
		}
	}
	// Every walk touches the root: walks are ~1/(depth+2) of refs.
	if hits < n/50 {
		t.Fatalf("root cell hit %d times in %d refs; tree walks missing", hits, n)
	}
}

func TestBarnesWritesBodiesAndCells(t *testing.T) {
	b := NewBarnes(BarnesConfig{NumCPUs: 2, Bodies: 4096, Seed: 2})
	bodyWrites, cellWrites := 0, 0
	for i := 0; i < 200000; i++ {
		ref, _ := b.Next()
		if !ref.Write {
			continue
		}
		if b.bodies.Contains(ref.Addr) {
			bodyWrites++
		} else if b.tree.Contains(ref.Addr) {
			cellWrites++
		}
	}
	if bodyWrites == 0 || cellWrites == 0 {
		t.Fatalf("bodyWrites=%d cellWrites=%d; both phases must write", bodyWrites, cellWrites)
	}
}

func TestFMMHasRemoteWrites(t *testing.T) {
	f := NewFMM(FMMConfig{NumCPUs: 4, Particles: 64 << 10, Seed: 3})
	perCPUBoxBytes := f.perCPUBox * f.boxBytes
	remoteWrites := 0
	for i := 0; i < 200000; i++ {
		ref, _ := f.Next()
		if !ref.Write || !f.boxes.Contains(ref.Addr) {
			continue
		}
		owner := int((ref.Addr - f.boxes.Base) / uint64(perCPUBoxBytes))
		if owner != ref.CPU && owner < f.cfg.NumCPUs {
			remoteWrites++
		}
	}
	if remoteWrites == 0 {
		t.Fatal("fmm produced no remote box writes; intervention traffic would be zero")
	}
}

func TestWaterNeighborLocality(t *testing.T) {
	w := NewWater(WaterConfig{NumCPUs: 4, Molecules: 8192, Seed: 4})
	local, remote := 0, 0
	part := w.cfg.Molecules / 4 * w.cfg.MoleculeBytes
	for i := 0; i < 200000; i++ {
		ref, _ := w.Next()
		if !w.molecules.Contains(ref.Addr) || ref.Write {
			continue
		}
		ownerPart := int64(ref.Addr-w.molecules.Base) / part
		if int(ownerPart) == ref.CPU {
			local++
		} else {
			remote++
		}
	}
	if local == 0 || remote == 0 {
		t.Fatalf("local=%d remote=%d; want mostly-local with some boundary sharing", local, remote)
	}
	if float64(local)/float64(local+remote) < 0.7 {
		t.Fatalf("locality %.2f too low", float64(local)/float64(local+remote))
	}
}

func TestWaterHighComputeIntensity(t *testing.T) {
	w := New(NameWater, SizeTest, 2, 1)
	f := New(NameOcean, SizeTest, 2, 1)
	var wi, fi uint64
	var wc, fc int
	for i := 0; i < 10000; i++ {
		rw, _ := w.Next()
		rf, _ := f.Next()
		wi += rw.Instrs
		fi += rf.Instrs
		wc++
		fc++
	}
	if float64(wi)/float64(wc) <= float64(fi)/float64(fc) {
		t.Fatal("water should have higher instructions per reference than ocean")
	}
}

func TestSizeString(t *testing.T) {
	if SizePaper.String() != "paper" || SizeClassic.String() != "classic" || SizeTest.String() != "test" {
		t.Fatal("size names wrong")
	}
}

var _ workload.Generator = (*FFT)(nil)
var _ workload.Generator = (*Ocean)(nil)
var _ workload.Generator = (*Barnes)(nil)
var _ workload.Generator = (*FMM)(nil)
var _ workload.Generator = (*Water)(nil)
