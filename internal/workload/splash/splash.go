// Package splash provides synthetic access-pattern kernels standing in
// for the SPLASH2 applications the paper runs at full problem sizes
// (§5.3, Tables 5-6, Figures 11-12): FFT, Ocean, Barnes-Hut, FMM, and
// Water-Spatial.
//
// We cannot execute the real binaries, so each kernel reproduces the
// memory-system structure that drives the paper's observations:
//
//   - total footprint at both the paper's large sizes and the classic
//     1995 SPLASH2-paper sizes (Table 1);
//   - hierarchical working sets (so that L3 miss ratio falls smoothly
//     with cache size, Figure 11);
//   - per-processor partitioning with the application's characteristic
//     sharing intensity (FFT/Ocean low, FMM high — Figure 12);
//   - compute intensity via per-reference instruction counts, so that
//     misses per 1000 instructions (Table 6) are meaningful.
//
// All kernels are infinite streams (iterating timesteps/transforms);
// experiments bound them with workload.Limit.
package splash

import "memories/internal/workload"

// Kernel names, used by New and in reports.
const (
	NameFFT    = "fft"
	NameOcean  = "ocean"
	NameBarnes = "barnes"
	NameFMM    = "fmm"
	NameWater  = "water"
)

// Names lists all kernels in the order the paper's tables use.
func Names() []string {
	return []string{NameFMM, NameFFT, NameOcean, NameWater, NameBarnes}
}

// Size selects a problem-size preset.
type Size int

const (
	// SizePaper is the full problem size used in this paper's runs
	// (Table 5: FMM 4M particles, FFT -m28, Ocean -n8194, Water 125^3,
	// Barnes 16M bodies).
	SizePaper Size = iota
	// SizeClassic is the scaled size used by the original SPLASH2
	// characterization and the simulation studies of Table 1 (FFT 64K
	// points, Barnes 16K bodies, Water 512 molecules, ...).
	SizeClassic
	// SizeTest is a miniature preset for unit tests and CI.
	SizeTest
)

// String returns the preset name.
func (s Size) String() string {
	switch s {
	case SizePaper:
		return "paper"
	case SizeClassic:
		return "classic"
	case SizeTest:
		return "test"
	}
	return "size(?)"
}

// New constructs the named kernel at the given size for ncpu processors.
// It returns nil for unknown names.
func New(name string, size Size, ncpu int, seed uint64) workload.Generator {
	switch name {
	case NameFFT:
		return NewFFT(FFTConfig{NumCPUs: ncpu, M: fftM(size), Seed: seed})
	case NameOcean:
		return NewOcean(OceanConfig{NumCPUs: ncpu, N: oceanN(size), Seed: seed})
	case NameBarnes:
		return NewBarnes(BarnesConfig{NumCPUs: ncpu, Bodies: barnesBodies(size), Seed: seed})
	case NameFMM:
		return NewFMM(FMMConfig{NumCPUs: ncpu, Particles: fmmParticles(size), Seed: seed})
	case NameWater:
		return NewWater(WaterConfig{NumCPUs: ncpu, Molecules: waterMolecules(size), Seed: seed})
	}
	return nil
}

func fftM(s Size) int {
	switch s {
	case SizePaper:
		return 28 // 2^28 points, 12.9GB over three arrays
	case SizeClassic:
		return 16 // 64K points
	default:
		return 12
	}
}

func oceanN(s Size) int {
	switch s {
	case SizePaper:
		return 8194
	case SizeClassic:
		return 258
	default:
		return 258
	}
}

func barnesBodies(s Size) int64 {
	switch s {
	case SizePaper:
		return 16 << 20 // 16M bodies
	case SizeClassic:
		return 16 << 10 // 16K bodies
	default:
		return 2048
	}
}

func fmmParticles(s Size) int64 {
	switch s {
	case SizePaper:
		return 4 << 20 // 4M particles
	case SizeClassic:
		return 16 << 10
	default:
		return 2048
	}
}

func waterMolecules(s Size) int64 {
	switch s {
	case SizePaper:
		return 125 * 125 * 125 // 1.95M molecules (125^3)
	case SizeClassic:
		return 512
	default:
		return 1000
	}
}

// FootprintGB is a reporting convenience: the kernel footprint in decimal
// gigabytes, the unit Table 5 uses.
func FootprintGB(g workload.Generator) float64 {
	return float64(g.Footprint()) / 1e9
}

// round64 rounds n up to a multiple of 64 so regions pack whole lines.
func round64(n int64) int64 { return (n + 63) &^ 63 }

// sizeOrMin returns v, or min when v is smaller.
func sizeOrMin(v, min int64) int64 {
	if v < min {
		return min
	}
	return v
}
