package splash

import (
	"fmt"

	"memories/internal/workload"
)

// WaterConfig parameterizes the Water-Spatial kernel. The paper runs
// 125^3 = 1.95M molecules (1.38GB).
type WaterConfig struct {
	NumCPUs int
	// Molecules is the molecule count.
	Molecules int64
	// MoleculeBytes is per-molecule storage (positions, velocities,
	// forces for 3 atoms); 712B reproduces the paper's 1.38GB at 125^3.
	MoleculeBytes int64
	// NeighborReads is how many neighbor molecules each update reads
	// (the cutoff-radius interaction count).
	NeighborReads int
	Seed          uint64
}

// Water models the spatial-decomposition water simulation: each processor
// sweeps its own molecules, reading a handful of spatially nearby
// neighbors per update. The spatial sort makes neighbors mostly local
// (cross-partition only at the boundaries), and force computation is
// expensive, so Water has both the smallest footprint and the lowest
// miss rate per instruction of the suite (Tables 5-6).
type Water struct {
	cfg       WaterConfig
	molecules workload.Region
	forces    workload.Region // per-CPU partial-force accumulators
	global    workload.Region // shared reduction accumulators
	r         *workload.RNG

	forcesPer int64 // partial-force bytes per CPU
	cpu       int
	st        []waterCPUState
}

type waterCPUState struct {
	mol       int64 // molecule cursor within this CPU's partition
	neighbors int   // pending neighbor reads for the current molecule
	reduce    int64 // pending global-reduction writes
	forceOff  int64 // cursor within this CPU's partial-force array
	tick      int   // interleave counter for accumulator accesses
}

// NewWater builds the kernel.
func NewWater(cfg WaterConfig) *Water {
	if cfg.NumCPUs <= 0 {
		panic("splash: NumCPUs must be positive")
	}
	if cfg.Molecules < int64(cfg.NumCPUs)*4 {
		panic(fmt.Sprintf("splash: water molecules=%d too few", cfg.Molecules))
	}
	if cfg.MoleculeBytes <= 0 {
		cfg.MoleculeBytes = 712
	}
	if cfg.NeighborReads <= 0 {
		cfg.NeighborReads = 6
	}
	l := workload.NewLayout()
	w := &Water{
		cfg:       cfg,
		molecules: l.Region(cfg.Molecules * cfg.MoleculeBytes),
		global:    l.Region(1 << 20),
		r:         workload.NewRNG(cfg.Seed),
		st:        make([]waterCPUState, cfg.NumCPUs),
	}
	// Per-processor partial-force accumulators (one slot per molecule the
	// CPU owns): ~2MB per CPU at the paper's 125^3 size — resident in an
	// 8MB L2 but thrashing the 1MB direct-mapped alternative, the source
	// of Table 5's runtime gap for Water.
	w.forcesPer = sizeOrMin(round64(cfg.Molecules/int64(cfg.NumCPUs)*8), 64<<10)
	w.forces = l.Region(w.forcesPer * int64(cfg.NumCPUs))
	return w
}

// Name implements workload.Generator.
func (w *Water) Name() string { return fmt.Sprintf("water-%dk", w.cfg.Molecules/1024) }

// Footprint implements workload.Generator.
func (w *Water) Footprint() int64 { return w.molecules.Size + w.forces.Size + w.global.Size }

// Next implements workload.Generator.
func (w *Water) Next() (workload.Ref, bool) {
	cpu := w.cpu
	w.cpu = (w.cpu + 1) % w.cfg.NumCPUs
	s := &w.st[cpu]
	part := w.cfg.Molecules / int64(w.cfg.NumCPUs)
	myMol := int64(cpu)*part + s.mol

	// Interleave partial-force accumulation with the molecule work.
	s.tick++
	if s.tick%4 == 0 {
		a := w.forces.At(int64(cpu)*w.forcesPer + s.forceOff)
		s.forceOff = (s.forceOff + 64) % w.forcesPer
		return workload.Ref{Addr: a, Write: true, CPU: cpu, Instrs: 6}, true
	}

	if s.reduce > 0 {
		// End-of-step global reductions: small shared read-modify-write
		// region, contended by every processor.
		s.reduce--
		a := w.global.At(w.r.Intn(w.global.Size) &^ 63)
		return workload.Ref{Addr: a, Write: true, CPU: cpu, Instrs: 5}, true
	}

	if s.neighbors > 0 {
		// Neighbor reads within the cutoff radius: spatially sorted, so
		// the neighbor index is close to the current molecule; boundary
		// molecules read into the adjacent processor's partition.
		s.neighbors--
		delta := w.r.Intn(64) - 32
		idx := (myMol + delta + w.cfg.Molecules) % w.cfg.Molecules
		a := w.molecules.Slot(idx, w.cfg.MoleculeBytes)
		return workload.Ref{Addr: a, Write: false, CPU: cpu, Instrs: 14}, true
	}

	// Update the current molecule, then schedule its neighbor reads.
	a := w.molecules.Slot(myMol, w.cfg.MoleculeBytes)
	s.neighbors = w.cfg.NeighborReads
	s.mol++
	if s.mol >= part {
		s.mol = 0
		s.reduce = 16
	}
	return workload.Ref{Addr: a, Write: true, CPU: cpu, Instrs: 12}, true
}
