package splash

import (
	"fmt"

	"memories/internal/workload"
)

// OceanConfig parameterizes the Ocean kernel. The paper runs
// "OCEAN -n8194": a 8194x8194 double-precision grid per field, 14.5GB
// across the solver's ~20 field arrays and their multigrid pyramids.
type OceanConfig struct {
	NumCPUs int
	// N is the fine-grid dimension (points per side).
	N int
	// Fields is the number of grid-sized arrays the solver maintains
	// (default 20, sized to reproduce the paper's 14.5GB footprint for
	// N=8194 including multigrid levels).
	Fields int
	Seed   uint64
}

// Ocean models the multigrid ocean-current solver: red-black stencil
// sweeps over row-partitioned grids, with coarser multigrid levels swept
// far more often per byte (they stay cache-resident, giving the smooth
// miss-ratio-vs-cache-size curve of Figure 11), and nearest-neighbor
// sharing at partition boundaries only (low intervention traffic,
// Figure 12).
type Ocean struct {
	cfg     OceanConfig
	levels  []workload.Region // levels[0] is the fine grid for all fields
	scratch workload.Region   // per-CPU row/column temporaries
	r       *workload.RNG

	scratchPer int64 // scratch bytes per CPU
	cpu        int
	st         []oceanCPUState
}

type oceanCPUState struct {
	level      int   // current multigrid level
	sweep      int   // sweeps completed at this level this cycle
	off        int64 // byte cursor within this CPU's band
	neighbors  int   // pending boundary-exchange reads
	scratchOff int64 // cursor within this CPU's scratch arrays
	tick       int   // interleave counter for scratch accesses
}

// multigrid V-cycle schedule: how many sweeps each level gets per cycle.
// Coarser levels are cheaper, so the solver visits them more times.
func oceanSweeps(level int) int { return 1 << level }

// NewOcean builds the kernel.
func NewOcean(cfg OceanConfig) *Ocean {
	if cfg.NumCPUs <= 0 {
		panic("splash: NumCPUs must be positive")
	}
	if cfg.N < 34 {
		panic(fmt.Sprintf("splash: ocean N=%d too small", cfg.N))
	}
	if cfg.Fields <= 0 {
		cfg.Fields = 20
	}
	l := workload.NewLayout()
	o := &Ocean{cfg: cfg, r: workload.NewRNG(cfg.Seed)}
	// Multigrid pyramid: halve the dimension per level until the level
	// drops below the 1MB region granularity or has fewer than 8 rows
	// per CPU. The depth of the pyramid below the cache size is what
	// differentiates scaled and full-size miss rates (Table 6): at the
	// classic 258-point size a quarter of the sweep traffic lands on
	// cache-resident coarse grids, at 8194 points almost none does.
	for n := int64(cfg.N); ; n /= 2 {
		bytes := n * n * 8 * int64(cfg.Fields)
		if bytes < 1<<20 || n/int64(cfg.NumCPUs) < 8 {
			break
		}
		o.levels = append(o.levels, l.Region(bytes))
	}
	if len(o.levels) == 0 {
		panic("splash: ocean grid too small for CPU count")
	}
	// Per-CPU scratch: the solver's O(n) row/column temporaries and
	// reduction buffers (about n * 8 bytes per field). At the paper's
	// 8194-point grid this is ~1.3MB per processor — resident in an 8MB
	// L2 but not in the 1MB direct-mapped alternative, which is part of
	// why Table 5's Ocean runtime degrades on the small L2.
	o.scratchPer = sizeOrMin(round64(int64(cfg.N)*8*int64(cfg.Fields)), 64<<10)
	o.scratch = l.Region(o.scratchPer * int64(cfg.NumCPUs))
	o.st = make([]oceanCPUState, cfg.NumCPUs)
	return o
}

// Name implements workload.Generator.
func (o *Ocean) Name() string { return fmt.Sprintf("ocean-n%d", o.cfg.N) }

// Footprint implements workload.Generator.
func (o *Ocean) Footprint() int64 {
	total := o.scratch.Size
	for _, lv := range o.levels {
		total += lv.Size
	}
	return total
}

// bandBytes is the size of one CPU's row band at the given level.
func (o *Ocean) bandBytes(level int) int64 {
	return o.levels[level].Size / int64(o.cfg.NumCPUs)
}

// Next implements workload.Generator.
func (o *Ocean) Next() (workload.Ref, bool) {
	cpu := o.cpu
	o.cpu = (o.cpu + 1) % o.cfg.NumCPUs
	s := &o.st[cpu]
	lv := o.levels[s.level]
	band := o.bandBytes(s.level)
	base := int64(cpu) * band

	// Interleave scratch-array traffic with the grid sweeps: every
	// fourth reference works on the CPU's private temporaries, cycling
	// through them fast enough that they reward a cache they fit in.
	s.tick++
	if s.tick%4 == 0 {
		a := o.scratch.At(int64(cpu)*o.scratchPer + s.scratchOff)
		s.scratchOff = (s.scratchOff + 64) % o.scratchPer
		return workload.Ref{Addr: a, Write: s.tick%8 == 0, CPU: cpu, Instrs: 5}, true
	}

	// Boundary exchange: at the start of each sweep, read a few lines of
	// the neighboring CPU's edge rows — the only shared data in Ocean.
	if s.neighbors > 0 {
		s.neighbors--
		nb := (cpu + 1) % o.cfg.NumCPUs
		a := lv.At(int64(nb)*band + int64(s.neighbors)*64)
		return workload.Ref{Addr: a, Write: false, CPU: cpu, Instrs: 4}, true
	}

	// Red-black stencil sweep: sequential read-modify-write through the
	// band. The five-point stencil's row-above/row-below reads fall in
	// the same band and are folded into the per-reference instruction
	// count (they hit L1 for row-major sweeps).
	a := lv.At(base + s.off)
	write := s.off%128 == 64 // update every other emitted point
	s.off += 64
	if s.off >= band {
		s.off = 0
		s.sweep++
		s.neighbors = 8
		if s.sweep >= oceanSweeps(s.level) {
			s.sweep = 0
			s.level++
			if s.level >= len(o.levels) {
				s.level = 0 // next timestep: back to the fine grid
			}
		}
	}
	return workload.Ref{Addr: a, Write: write, CPU: cpu, Instrs: 6}, true
}
