package splash

import (
	"fmt"

	"memories/internal/workload"
)

// FFTConfig parameterizes the six-step FFT kernel. The paper runs
// "FFT -m28 -l7": 2^28 complex points with 128-byte cache lines,
// 12.58GB across the source, destination, and transpose-scratch arrays.
type FFTConfig struct {
	NumCPUs int
	// M is log2 of the number of complex (16-byte) points.
	M int
	// PassesPerBlock is how many times a cache-blocked chunk is re-swept
	// before moving on (the blocked butterfly stages). Larger problem
	// sizes do more stages per block, which is why the full-size FFT has
	// a *lower* miss rate per instruction than the classic size
	// (Table 6). Zero selects a size-appropriate default.
	PassesPerBlock int
	// BlockBytes is the cache-blocking granularity (default 2MB, sized to
	// sit inside an 8MB per-CPU L2 but overflow the 1MB direct-mapped
	// boot alternative — which is why Table 5 shows FFT slowing down on
	// the small L2). Clamped to the per-CPU partition size.
	BlockBytes int64
	Seed       uint64
}

// FFT is the six-step FFT kernel: blocked local butterflies over each
// processor's partition, a strided all-to-all transpose through a scratch
// array, and a twiddle-table sweep. Sharing is low (transpose reads
// only), matching the paper's observation that FFT has few interventions.
type FFT struct {
	cfg     FFTConfig
	src     workload.Region
	dst     workload.Region
	scratch workload.Region
	twiddle workload.Region
	r       *workload.RNG

	partBytes int64
	cpu       int
	st        []fftCPUState
}

type fftCPUState struct {
	phase    int   // 0 = blocked compute, 1 = transpose, 2 = twiddle
	blockOff int64 // start of current block within the partition
	pass     int   // pass index within the block
	off      int64 // offset within the block / phase cursor
	rd       bool  // transpose toggle: read (true) or write (false) next
}

// NewFFT builds the kernel.
func NewFFT(cfg FFTConfig) *FFT {
	if cfg.NumCPUs <= 0 {
		panic("splash: NumCPUs must be positive")
	}
	if cfg.M < 8 || cfg.M > 34 {
		panic(fmt.Sprintf("splash: fft M=%d out of range [8,34]", cfg.M))
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 2 << 20
	}
	if cfg.PassesPerBlock <= 0 {
		// Stage count grows with log n: deeper transforms re-use each
		// blocked chunk more before it leaves the cache.
		cfg.PassesPerBlock = cfg.M / 4
		if cfg.PassesPerBlock < 2 {
			cfg.PassesPerBlock = 2
		}
	}
	points := int64(1) << cfg.M
	arrayBytes := points * 16
	twiddleBytes := sizeOrMin(round64((int64(1)<<(cfg.M/2))*16), 1<<16)
	l := workload.NewLayout()
	f := &FFT{
		cfg:     cfg,
		src:     l.Region(arrayBytes),
		dst:     l.Region(arrayBytes),
		scratch: l.Region(arrayBytes),
		twiddle: l.Region(twiddleBytes),
		r:       workload.NewRNG(cfg.Seed),
		st:      make([]fftCPUState, cfg.NumCPUs),
	}
	f.partBytes = arrayBytes / int64(cfg.NumCPUs)
	if f.cfg.BlockBytes > f.partBytes {
		f.cfg.BlockBytes = f.partBytes
	}
	return f
}

// Name implements workload.Generator.
func (f *FFT) Name() string { return fmt.Sprintf("fft-m%d", f.cfg.M) }

// Footprint implements workload.Generator.
func (f *FFT) Footprint() int64 {
	return f.src.Size + f.dst.Size + f.scratch.Size + f.twiddle.Size
}

// instrsPerRef models butterfly compute per emitted reference; the log n
// factor is what lowers the full-size miss rate per instruction.
func (f *FFT) instrsPerRef() uint64 { return uint64(f.cfg.M / 2) }

// RefsPerTransform returns how many references one complete transform
// (all phases, all CPUs) emits; Table 4's execution-time extrapolations
// use it to scale sampled per-reference costs to a full run.
func (f *FFT) RefsPerTransform() uint64 {
	arrayBytes := uint64(f.src.Size)
	ncpu := uint64(f.cfg.NumCPUs)
	compute := arrayBytes / 64 * uint64(f.cfg.PassesPerBlock)
	transpose := arrayBytes / 8 / 64 * 2
	twiddle := uint64(f.twiddle.Size) / 64 * ncpu
	return compute + transpose + twiddle
}

// InstrsPerTransform returns the instruction count of one complete
// transform, consistent with the Instrs fields the generator emits.
func (f *FFT) InstrsPerTransform() uint64 {
	arrayBytes := uint64(f.src.Size)
	ncpu := uint64(f.cfg.NumCPUs)
	compute := arrayBytes / 64 * uint64(f.cfg.PassesPerBlock) * f.instrsPerRef()
	transpose := arrayBytes / 8 / 64 * 2 * 2
	twiddle := uint64(f.twiddle.Size) / 64 * ncpu * 3
	return compute + transpose + twiddle
}

// Next implements workload.Generator.
func (f *FFT) Next() (workload.Ref, bool) {
	cpu := f.cpu
	f.cpu = (f.cpu + 1) % f.cfg.NumCPUs
	s := &f.st[cpu]
	base := int64(cpu) * f.partBytes

	switch s.phase {
	case 0: // blocked butterflies over own partition
		a := f.src.At(base + s.blockOff + s.off)
		write := false
		if s.pass == f.cfg.PassesPerBlock-1 {
			// Final pass writes results to the destination array.
			a = f.dst.At(base + s.blockOff + s.off)
			write = true
		}
		s.off += 64
		if s.off >= f.cfg.BlockBytes {
			s.off = 0
			s.pass++
			if s.pass >= f.cfg.PassesPerBlock {
				s.pass = 0
				s.blockOff += f.cfg.BlockBytes
				if s.blockOff >= f.partBytes {
					s.blockOff = 0
					s.phase = 1
				}
			}
		}
		return workload.Ref{Addr: a, Write: write, CPU: cpu, Instrs: f.instrsPerRef()}, true

	case 1: // transpose: strided reads across all partitions, local writes
		if s.rd = !s.rd; s.rd {
			// Column-major gather: successive reads stride by one "row"
			// of sqrt(n) points, touching all processors' partitions of
			// the destination array (the low-sharing cross-CPU phase).
			rowBytes := int64(1) << ((f.cfg.M / 2) + 4) // sqrt(n) points * 16B
			idx := (s.off/64*rowBytes + int64(cpu)*128) % f.dst.Size
			s.off += 64
			if s.off >= f.partBytes/8 {
				s.off = 0
				s.phase = 2
			}
			return workload.Ref{Addr: f.dst.At(idx), Write: false, CPU: cpu, Instrs: 2}, true
		}
		// Sequential scatter into the scratch array's own partition.
		return workload.Ref{Addr: f.scratch.At(base + s.off), Write: true, CPU: cpu, Instrs: 2}, true

	default: // twiddle sweep: small shared read-only table
		a := f.twiddle.At(s.off)
		s.off += 64
		if s.off >= f.twiddle.Size {
			s.off = 0
			s.phase = 0 // next transform iteration
		}
		return workload.Ref{Addr: a, Write: false, CPU: cpu, Instrs: 3}, true
	}
}
