package splash

import (
	"fmt"

	"memories/internal/workload"
)

// BarnesConfig parameterizes the Barnes-Hut N-body kernel. The paper runs
// 16M bodies (3.1GB).
type BarnesConfig struct {
	NumCPUs int
	// Bodies is the particle count.
	Bodies int64
	// BodyBytes is per-body storage (position, velocity, acceleration,
	// work lists); 160B reproduces the paper's 3.1GB at 16M bodies
	// together with the octree cells.
	BodyBytes int64
	Seed      uint64
}

// Barnes models the Barnes-Hut force-calculation phase: each processor
// sweeps its own bodies and, per body, walks the shared octree from the
// root. Upper tree levels have exponentially few cells and are read by
// every walk, forming a small, very hot, read-shared working set; leaves
// are cold. A periodic tree-build phase writes cells, creating the
// moderate invalidation traffic of a read-mostly shared structure.
type Barnes struct {
	cfg    BarnesConfig
	bodies workload.Region
	tree   workload.Region
	r      *workload.RNG

	levels    []int64 // cell count per tree level
	levelOff  []int64 // byte offset of each level within the tree region
	cellBytes int64

	cpu int
	st  []barnesCPUState
}

type barnesCPUState struct {
	body      int64 // index within this CPU's body partition
	walkLevel int   // current level of the in-progress tree walk (-1: read body)
	walkCell  int64 // subtree selector accumulated during the walk
	building  int64 // pending tree-build cell writes
}

// NewBarnes builds the kernel.
func NewBarnes(cfg BarnesConfig) *Barnes {
	if cfg.NumCPUs <= 0 {
		panic("splash: NumCPUs must be positive")
	}
	if cfg.Bodies < int64(cfg.NumCPUs)*8 {
		panic(fmt.Sprintf("splash: barnes bodies=%d too few", cfg.Bodies))
	}
	if cfg.BodyBytes <= 0 {
		cfg.BodyBytes = 160
	}
	const cellBytes = 128
	// Octree: levels grow 8x; stop when the level has ~bodies/8 cells
	// (leaves hold ~8 bodies each).
	var levels []int64
	cells := int64(1)
	total := int64(0)
	for total+cells <= cfg.Bodies/4 {
		levels = append(levels, cells)
		total += cells
		cells *= 8
	}
	if len(levels) == 0 {
		levels = []int64{1}
		total = 1
	}
	l := workload.NewLayout()
	b := &Barnes{
		cfg:       cfg,
		bodies:    l.Region(cfg.Bodies * cfg.BodyBytes),
		tree:      l.Region(total * cellBytes),
		r:         workload.NewRNG(cfg.Seed),
		levels:    levels,
		cellBytes: cellBytes,
		st:        make([]barnesCPUState, cfg.NumCPUs),
	}
	off := int64(0)
	for _, n := range levels {
		b.levelOff = append(b.levelOff, off)
		off += n * cellBytes
	}
	for i := range b.st {
		b.st[i].walkLevel = -1
	}
	return b
}

// Name implements workload.Generator.
func (b *Barnes) Name() string { return fmt.Sprintf("barnes-%dk", b.cfg.Bodies/1024) }

// Footprint implements workload.Generator.
func (b *Barnes) Footprint() int64 { return b.bodies.Size + b.tree.Size }

// cellAddr returns the address of a cell at (level, index mod level size).
func (b *Barnes) cellAddr(level int, idx int64) uint64 {
	n := b.levels[level]
	return b.tree.At(b.levelOff[level] + (idx%n)*b.cellBytes)
}

// Next implements workload.Generator.
func (b *Barnes) Next() (workload.Ref, bool) {
	cpu := b.cpu
	b.cpu = (b.cpu + 1) % b.cfg.NumCPUs
	s := &b.st[cpu]

	// Tree-build phase: a burst of shared cell writes after a partition
	// sweep completes.
	if s.building > 0 {
		s.building--
		level := len(b.levels) - 1 - int(s.building)%2 // mostly leaf levels
		if level < 0 {
			level = 0
		}
		a := b.cellAddr(level, b.r.Intn(b.levels[level]))
		return workload.Ref{Addr: a, Write: true, CPU: cpu, Instrs: 6}, true
	}

	partBodies := b.cfg.Bodies / int64(b.cfg.NumCPUs)
	if s.walkLevel < 0 {
		// Read the next body of this CPU's partition, then start a walk.
		idx := int64(cpu)*partBodies + s.body
		a := b.bodies.Slot(idx, b.cfg.BodyBytes)
		s.walkLevel = 0
		s.walkCell = b.r.Intn(1 << 30)
		return workload.Ref{Addr: a, Write: false, CPU: cpu, Instrs: 4}, true
	}

	// Walk one level of the octree. The subtree selector makes the walk
	// spatially coherent: the same body descends toward the same leaves.
	level := s.walkLevel
	a := b.cellAddr(level, s.walkCell>>(uint(len(b.levels)-1-level)*3))
	s.walkLevel++
	if s.walkLevel >= len(b.levels) {
		// Walk done: write the body's updated acceleration.
		s.walkLevel = -1
		idx := int64(cpu)*partBodies + s.body
		s.body++
		if s.body >= partBodies {
			s.body = 0
			s.building = 64 // tree-build burst between timesteps
		}
		return workload.Ref{
			Addr:   b.bodies.Slot(idx, b.cfg.BodyBytes) + 64,
			Write:  true,
			CPU:    cpu,
			Instrs: 8,
		}, true
	}
	return workload.Ref{Addr: a, Write: false, CPU: cpu, Instrs: 8}, true
}
