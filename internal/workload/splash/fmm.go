package splash

import (
	"fmt"

	"memories/internal/workload"
)

// FMMConfig parameterizes the Fast Multipole Method kernel. The paper
// runs 4M particles (8.34GB).
type FMMConfig struct {
	NumCPUs int
	// Particles is the particle count.
	Particles int64
	// ParticleBytes is per-particle storage including local expansions;
	// 2048B reproduces the paper's 8.34GB at 4M particles together with
	// the box expansions.
	ParticleBytes int64
	// RemoteWriteFraction is the probability that an interaction writes
	// into another processor's box expansion — the migratory sharing
	// that makes FMM the intervention-heavy application of Figure 12.
	RemoteWriteFraction float64
	Seed                uint64
}

// FMM models the FMM downward pass: each processor sweeps the particles
// of its own boxes, reads the multipole expansions of interaction-list
// boxes owned by other processors, and accumulates into expansions —
// frequently into *remote* boxes. Those remote read-modify-writes make
// lines migrate between processors dirty, producing the "significant
// amount of modified and shared intervention traffic" the paper reports
// for FMM.
type FMM struct {
	cfg       FMMConfig
	particles workload.Region
	boxes     workload.Region
	r         *workload.RNG

	boxCount  int64
	boxBytes  int64
	perCPUBox int64

	cpu int
	st  []fmmCPUState
}

type fmmCPUState struct {
	box      int64 // box index within this CPU's share
	particle int64 // particle cursor within the box
	interact int64 // pending interaction-list operations
	upward   int64 // pending upward-pass multipole writes
}

// particlesPerBox matches the SPLASH2 default cost model (~64/box).
const fmmParticlesPerBox = 64

// NewFMM builds the kernel.
func NewFMM(cfg FMMConfig) *FMM {
	if cfg.NumCPUs <= 0 {
		panic("splash: NumCPUs must be positive")
	}
	if cfg.Particles < int64(cfg.NumCPUs)*fmmParticlesPerBox {
		panic(fmt.Sprintf("splash: fmm particles=%d too few", cfg.Particles))
	}
	if cfg.ParticleBytes <= 0 {
		cfg.ParticleBytes = 2048
	}
	if cfg.RemoteWriteFraction == 0 {
		cfg.RemoteWriteFraction = 0.3
	}
	l := workload.NewLayout()
	f := &FMM{
		cfg:       cfg,
		particles: l.Region(cfg.Particles * cfg.ParticleBytes),
		r:         workload.NewRNG(cfg.Seed),
		boxBytes:  1024,
	}
	f.boxCount = cfg.Particles / fmmParticlesPerBox
	f.boxes = l.Region(f.boxCount * f.boxBytes)
	f.perCPUBox = f.boxCount / int64(cfg.NumCPUs)
	if f.perCPUBox == 0 {
		f.perCPUBox = 1
	}
	f.st = make([]fmmCPUState, cfg.NumCPUs)
	return f
}

// Name implements workload.Generator.
func (f *FMM) Name() string { return fmt.Sprintf("fmm-%dk", f.cfg.Particles/1024) }

// Footprint implements workload.Generator.
func (f *FMM) Footprint() int64 { return f.particles.Size + f.boxes.Size }

// multipoleAddr returns the multipole-expansion line of box idx (read by
// every interaction partner, rewritten once per timestep).
func (f *FMM) multipoleAddr(idx int64) uint64 { return f.boxes.Slot(idx, f.boxBytes) + 128 }

// localExpAddr returns the local-expansion line of box idx (accumulated
// into by the box's owner, occasionally by remote processors).
func (f *FMM) localExpAddr(idx int64) uint64 { return f.boxes.Slot(idx, f.boxBytes) + 256 }

// Next implements workload.Generator.
func (f *FMM) Next() (workload.Ref, bool) {
	cpu := f.cpu
	f.cpu = (f.cpu + 1) % f.cfg.NumCPUs
	s := &f.st[cpu]
	myBox := int64(cpu)*f.perCPUBox + s.box

	if s.upward > 0 {
		// Upward pass: recompute this CPU's own boxes' multipole
		// expansions once per timestep. These writes are what
		// periodically invalidate the read-shared multipole lines in
		// other processors' caches.
		s.upward--
		own := int64(cpu)*f.perCPUBox + s.upward%f.perCPUBox
		return workload.Ref{Addr: f.multipoleAddr(own), Write: true, CPU: cpu, Instrs: 12}, true
	}

	if s.interact > 0 {
		// Downward pass interaction list. Odd steps read a partner
		// box's multipole expansion: read-mostly shared data whose
		// footprint scales with the box count — resident at the classic
		// size (256 boxes), far beyond an 8MB cache at 4M particles,
		// which is why the full-size FMM misses more per instruction
		// (Table 6). Partners mix spatial neighbors with distant boxes
		// from the multipole lists.
		s.interact--
		neighbor := (myBox + f.r.Intn(27) - 13 + f.boxCount) % f.boxCount
		if f.r.Chance(0.35) {
			neighbor = f.r.Intn(f.boxCount)
		}
		if s.interact%2 == 1 {
			return workload.Ref{Addr: f.multipoleAddr(neighbor), Write: false, CPU: cpu, Instrs: 10}, true
		}
		// Even steps accumulate into a local expansion — usually this
		// box's own, sometimes a remote box's (the migratory write that
		// drives FMM's intervention traffic, Figure 12).
		target := myBox
		if f.r.Chance(f.cfg.RemoteWriteFraction) {
			target = neighbor
		}
		ref := workload.Ref{Addr: f.localExpAddr(target), Write: true, CPU: cpu, Instrs: 10}
		if s.interact == 0 {
			// Interaction phase done; move to the next box.
			s.box = (s.box + 1) % f.perCPUBox
			s.particle = 0
			if s.box == 0 {
				s.upward = f.perCPUBox // next timestep's upward pass
			}
		}
		return ref, true
	}

	// Sweep the particles of the current box (sequential, private). The
	// sweep is sampled: one emitted reference covers four particles'
	// worth of position reads and force updates (folded into Instrs), so
	// the expansion/interaction traffic keeps its real share of the
	// reference stream.
	pBase := myBox * fmmParticlesPerBox
	idx := pBase + s.particle*4
	a := f.particles.Slot(idx, f.cfg.ParticleBytes)
	write := s.particle%4 == 3
	s.particle++
	if s.particle >= fmmParticlesPerBox/4 {
		s.interact = 54 // 27 interaction boxes x (read + accumulate)
	}
	return workload.Ref{Addr: a, Write: write, CPU: cpu, Instrs: 36}, true
}
