// Package workload generates the synthetic memory-reference streams that
// stand in for the paper's production workloads: TPC-C and TPC-H database
// runs (Figures 8-10) and the SPLASH2 kernels at full problem sizes
// (Tables 5-6, Figures 11-12; see the splash subpackage).
//
// We cannot run a 150GB DB2 instance against a software bus, so each
// generator reproduces the *memory-system structure* the case studies
// depend on: total footprint, hierarchical working sets, per-processor
// data affinity vs shared regions, read/write mix, and sharing intensity.
// Every generator is deterministic for a given seed, which is what makes
// the differential tests between the board and the baseline simulators
// meaningful.
package workload

import "memories/internal/addr"

// Ref is a single processor memory reference, before any cache filtering.
type Ref struct {
	// Addr is the physical byte address.
	Addr uint64
	// Write marks store references.
	Write bool
	// CPU is the issuing processor (0-based host CPU ID).
	CPU int
	// Instrs is the number of instructions the processor executed to
	// produce this reference (including the reference itself). Miss rates
	// "per 1000 instructions" (Table 6) divide by the sum of this field.
	Instrs uint64
}

// Generator produces a reference stream. Implementations are not safe for
// concurrent use.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Next returns the next reference; ok is false when a finite workload
	// has completed. Infinite workloads always return ok = true.
	Next() (ref Ref, ok bool)
	// Footprint returns the total bytes the workload can touch.
	Footprint() int64
}

// ErrReporter is an optional Generator extension for streams that can
// end abnormally (trace readers hitting a truncated file, network
// feeds). After Next returns ok=false, a non-nil Err means the stream
// failed rather than completed; the host surfaces it through Host.Err
// instead of ErrExhausted.
type ErrReporter interface {
	Err() error
}

// Layout hands out disjoint address regions. Regions are aligned to 1MB
// and separated so that distinct data structures never share a cache line
// even at the board's maximum 16KB line size.
type Layout struct {
	next uint64
}

// NewLayout returns a layout allocating from a nonzero base (address 0 is
// left unused to keep zero-valued addresses recognizable in tests).
func NewLayout() *Layout { return &Layout{next: 1 << 20} }

// Region reserves size bytes (rounded up to 1MB) and returns the region.
func (l *Layout) Region(size int64) Region {
	if size <= 0 {
		panic("workload: region size must be positive")
	}
	const align = 1 << 20
	sz := (uint64(size) + align - 1) &^ (align - 1)
	r := Region{Base: l.next, Size: int64(sz)}
	l.next += sz
	return r
}

// Region is a contiguous address range owned by one data structure.
type Region struct {
	Base uint64
	Size int64
}

// At returns the address at byte offset off, wrapping modulo the region
// size so generators can index freely.
func (r Region) At(off int64) uint64 {
	if r.Size == 0 {
		panic("workload: empty region")
	}
	o := off % r.Size
	if o < 0 {
		o += r.Size
	}
	return r.Base + uint64(o)
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a uint64) bool {
	return a >= r.Base && a < r.Base+uint64(r.Size)
}

// Slot returns the address of slot i when the region is viewed as an
// array of slotSize-byte elements (wrapping modulo the slot count).
func (r Region) Slot(i int64, slotSize int64) uint64 {
	n := r.Size / slotSize
	if n <= 0 {
		panic("workload: slot size exceeds region")
	}
	s := i % n
	if s < 0 {
		s += n
	}
	return r.Base + uint64(s*slotSize)
}

// Slots returns how many slotSize-byte elements fit in the region.
func (r Region) Slots(slotSize int64) int64 { return r.Size / slotSize }

// Limit wraps a generator and ends the stream after n references; it
// models "trace length" in the short-vs-long trace experiments.
func Limit(g Generator, n uint64) Generator { return &limited{g: g, left: n} }

type limited struct {
	g    Generator
	left uint64
}

func (l *limited) Name() string     { return l.g.Name() }
func (l *limited) Footprint() int64 { return l.g.Footprint() }

func (l *limited) Next() (Ref, bool) {
	if l.left == 0 {
		return Ref{}, false
	}
	l.left--
	return l.g.Next()
}

// Describe renders a one-line workload summary for reports.
func Describe(g Generator) string {
	return g.Name() + " (" + addr.FormatSize(g.Footprint()) + " footprint)"
}
