package workload

import (
	"strings"
	"testing"

	"memories/internal/addr"
)

// TestGeneratorNamesAndFootprints exercises the Name/Footprint contract
// of every generator in the package.
func TestGeneratorNamesAndFootprints(t *testing.T) {
	gens := []struct {
		g          Generator
		wantName   string
		wantedSize int64 // minimum footprint
	}{
		{NewUniform(UniformConfig{NumCPUs: 2, FootprintByte: 8 * addr.MB}), "uniform", 8 * addr.MB},
		{NewStride(StrideConfig{NumCPUs: 2, FootprintByte: 8 * addr.MB}), "stride", 8 * addr.MB},
		{NewZipfian(ZipfConfig{NumCPUs: 2, FootprintByte: 8 * addr.MB}), "zipf", 8 * addr.MB},
		{NewTPCC(ScaledTPCCConfig(4096)), "tpcc-", 30 * addr.MB},
		{NewTPCH(ScaledTPCHConfig(4096)), "tpch-", 20 * addr.MB},
		{NewWeb(ScaledWebConfig(4096)), "web-", 4 * addr.MB},
	}
	for _, c := range gens {
		if !strings.HasPrefix(c.g.Name(), c.wantName) {
			t.Errorf("Name = %q, want prefix %q", c.g.Name(), c.wantName)
		}
		if c.g.Footprint() < c.wantedSize {
			t.Errorf("%s: footprint %d below %d", c.g.Name(), c.g.Footprint(), c.wantedSize)
		}
		if d := Describe(c.g); !strings.Contains(d, "footprint") {
			t.Errorf("Describe(%s) = %q", c.g.Name(), d)
		}
	}
}

func TestDefaultConfigsArePaperScale(t *testing.T) {
	if DefaultTPCCConfig().DatabaseBytes != 150*addr.GB {
		t.Error("TPC-C default must be the paper's 150GB")
	}
	if DefaultTPCHConfig().FactBytes != 100*addr.GB {
		t.Error("TPC-H default must be the paper's 100GB")
	}
	if DefaultWebConfig().DocBytes != 16*addr.GB {
		t.Error("web default changed")
	}
	if DefaultDisturbanceConfig().PeriodRefs == 0 {
		t.Error("default disturbance period unset")
	}
}

func TestGeneratorPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { NewUniform(UniformConfig{NumCPUs: 0, FootprintByte: addr.MB}) },
		func() { NewStride(StrideConfig{NumCPUs: 0, FootprintByte: addr.MB}) },
		func() { NewZipfian(ZipfConfig{NumCPUs: 0, FootprintByte: addr.MB}) },
		func() { NewTPCC(TPCCConfig{}) },
		func() { NewTPCH(TPCHConfig{}) },
		func() { NewWeb(WebConfig{}) },
		func() {
			WithDisturbance(NewUniform(UniformConfig{NumCPUs: 1, FootprintByte: addr.MB}),
				DisturbanceConfig{})
		},
		func() { NewRNG(1).Intn(0) },
		func() { NewZipf(NewRNG(1), 0.5, 100) },
		func() { NewZipf(NewRNG(1), 1.5, 0) },
		func() { NewLayout().Region(0) },
		func() { Region{}.At(0) },
		func() { Region{Base: 0, Size: 64}.Slot(0, 128) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
