package workload

import (
	"testing"

	"memories/internal/addr"
	"memories/internal/checkpoint"
)

// generators under test: every Checkpointer implementation, including
// the wrappers.
func checkpointableGenerators() map[string]func() Generator {
	return map[string]func() Generator{
		"uniform": func() Generator {
			return NewUniform(UniformConfig{NumCPUs: 4, FootprintByte: 8 * addr.MB, WriteFraction: 0.3, Seed: 5})
		},
		"stride": func() Generator {
			return NewStride(StrideConfig{NumCPUs: 4, FootprintByte: 8 * addr.MB, Seed: 5})
		},
		"zipf": func() Generator {
			return NewZipfian(ZipfConfig{NumCPUs: 4, FootprintByte: 8 * addr.MB, Seed: 5})
		},
		"tpcc": func() Generator { return NewTPCC(ScaledTPCCConfig(4096)) },
		"tpch": func() Generator { return NewTPCH(ScaledTPCHConfig(4096)) },
		"web":  func() Generator { return NewWeb(ScaledWebConfig(4096)) },
		"limited-tpcc": func() Generator {
			return Limit(NewTPCC(ScaledTPCCConfig(4096)), 100_000)
		},
		"disturbed-tpcc": func() Generator {
			cfg := DefaultDisturbanceConfig()
			cfg.PeriodRefs, cfg.BurstRefs = 500, 50
			return WithDisturbance(NewTPCC(ScaledTPCCConfig(4096)), cfg)
		},
	}
}

// TestGeneratorCheckpointContinuation: saving a generator mid-stream
// and restoring into a fresh twin must continue the exact sequence the
// original produces.
func TestGeneratorCheckpointContinuation(t *testing.T) {
	for name, mk := range checkpointableGenerators() {
		t.Run(name, func(t *testing.T) {
			orig := mk()
			for i := 0; i < 5000; i++ {
				if _, ok := orig.Next(); !ok {
					t.Fatal("stream ended early")
				}
			}
			var e checkpoint.Enc
			ck, ok := orig.(Checkpointer)
			if !ok {
				t.Fatalf("%s does not implement Checkpointer", name)
			}
			if err := ck.SaveState(&e); err != nil {
				t.Fatal(err)
			}
			fresh := mk()
			d := checkpoint.NewDec("gen", 0, e.Bytes())
			if err := fresh.(Checkpointer).RestoreState(d); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5000; i++ {
				want, wok := orig.Next()
				got, gok := fresh.Next()
				if got != want || gok != wok {
					t.Fatalf("ref %d diverged: got %+v/%v, want %+v/%v", i, got, gok, want, wok)
				}
			}
		})
	}
}

// TestSplashNotCheckpointable: the goroutine-backed kernels must be
// reported, not silently mis-snapshotted.
func TestLimitedRejectsNonCheckpointable(t *testing.T) {
	g := Limit(&fake{}, 10)
	var e checkpoint.Enc
	if err := g.(Checkpointer).SaveState(&e); err == nil {
		t.Fatal("limited over non-checkpointable generator saved")
	}
}

type fake struct{}

func (f *fake) Name() string      { return "fake" }
func (f *fake) Next() (Ref, bool) { return Ref{}, false }
func (f *fake) Footprint() int64  { return 0 }

// TestRNGStateRoundTrip covers the zero-state remap.
func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(77)
	r.Uint64()
	s := r.State()
	r2 := NewRNG(1)
	r2.SetState(s)
	if r.Uint64() != r2.Uint64() {
		t.Fatal("restored RNG diverged")
	}
	r3 := NewRNG(1)
	r3.SetState(0)
	if r3.Uint64() == 0 {
		t.Fatal("zero state not remapped")
	}
}
