package console

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"memories/internal/addr"
	"memories/internal/obs"
)

// This file implements the console's live-observability commands:
// `metrics`, `watch`, and the `trace on/off/status` controls for the
// snoop event tracer. They bind to an obs.Registry/TraceHub via SetObs;
// without it the commands report that observability is not attached
// (the classic board's console could always read counters because it
// WAS the sampler; here sampling is opt-in).

// obsBinding carries the console's view of the observability layer.
type obsBinding struct {
	reg *obs.Registry
	hub *obs.TraceHub
	// publish forces a fresh mirror publish at a quiesce point before a
	// synchronous read, so `metrics` shows exact current values when the
	// board is idle. May be nil when only live sampling is wanted.
	publish func()
}

// SetObs binds the console to the observability layer. publish, when
// non-nil, is invoked before each synchronous snapshot to force-refresh
// mirror values (safe only when the board is quiescent, which holds for
// the interactive console between `run` steps).
func (c *Console) SetObs(reg *obs.Registry, hub *obs.TraceHub, publish func()) {
	c.obs = &obsBinding{reg: reg, hub: hub, publish: publish}
}

func (c *Console) snapshotNow() (*obs.Snapshot, error) {
	if c.obs == nil || c.obs.reg == nil {
		return nil, fmt.Errorf("observability not attached (start with -obs)")
	}
	if c.obs.publish != nil {
		c.obs.publish()
	} else {
		c.obs.reg.Request()
	}
	return c.obs.reg.Snapshot(), nil
}

// metrics dumps the registry snapshot as "name value" lines, optionally
// filtered by prefix.
func (c *Console) metrics(args []string) error {
	prefix := ""
	if len(args) > 0 {
		prefix = args[0]
	}
	snap, err := c.snapshotNow()
	if err != nil {
		return err
	}
	out := snap.Dump(prefix)
	if out == "" {
		fmt.Fprintf(c.out, "no metrics match prefix %q\n", prefix)
		return nil
	}
	fmt.Fprint(c.out, out)
	return nil
}

const (
	watchMaxCount      = 1000
	watchMaxIntervalMS = 60_000
)

// watch prints a metric prefix repeatedly: `watch <prefix> [count]
// [interval-ms]` (defaults: 5 samples, 500ms). Counts and intervals are
// clamped to keep scripted consoles bounded.
func (c *Console) watch(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: watch <prefix> [count] [interval-ms]")
	}
	prefix := args[0]
	count, intervalMS := 5, 500
	var err error
	if len(args) > 1 {
		if count, err = strconv.Atoi(args[1]); err != nil || count < 1 {
			return fmt.Errorf("bad count %q", args[1])
		}
	}
	if len(args) > 2 {
		if intervalMS, err = strconv.Atoi(args[2]); err != nil || intervalMS < 0 {
			return fmt.Errorf("bad interval %q", args[2])
		}
	}
	if count > watchMaxCount {
		count = watchMaxCount
	}
	if intervalMS > watchMaxIntervalMS {
		intervalMS = watchMaxIntervalMS
	}
	for i := 0; i < count; i++ {
		if i > 0 {
			time.Sleep(time.Duration(intervalMS) * time.Millisecond)
		}
		snap, err := c.snapshotNow()
		if err != nil {
			return err
		}
		fmt.Fprintf(c.out, "--- sample %d/%d ---\n", i+1, count)
		out := snap.Dump(prefix)
		if out == "" {
			fmt.Fprintf(c.out, "no metrics match prefix %q\n", prefix)
		} else {
			fmt.Fprint(c.out, out)
		}
	}
	return nil
}

// snoopTrace handles `trace on|off|status`: control of the snoop event
// tracer rings (distinct from the board's bulk trace-capture memory,
// which keeps the bare `trace`, `trace reset`, and `trace dump` forms).
func (c *Console) snoopTrace(args []string) error {
	if c.obs == nil || c.obs.hub == nil {
		return fmt.Errorf("snoop tracing not attached (start with -obs)")
	}
	hub := c.obs.hub
	switch args[0] {
	case "off":
		hub.Disable()
		captured, dropped := hub.Totals()
		fmt.Fprintf(c.out, "snoop trace off: %d captured, %d dropped, %d drained\n",
			captured, dropped, hub.Drained())
		return nil
	case "status":
		on, f := hub.Enabled()
		captured, dropped := hub.Totals()
		state := "off"
		if on {
			state = "on (" + f.String() + ")"
		}
		fmt.Fprintf(c.out, "snoop trace %s: %d captured, %d dropped, %d drained\n",
			state, captured, dropped, hub.Drained())
		return nil
	case "on":
		f, err := parseTraceFilter(args[1:])
		if err != nil {
			return err
		}
		hub.Enable(f)
		fmt.Fprintf(c.out, "snoop trace on: %s\n", f.String())
		return nil
	}
	return fmt.Errorf("usage: trace on [addr=<lo>:<hi>] [cpus=<a,b,...>] | trace off | trace status")
}

// parseTraceFilter parses `addr=<lo>:<hi>` (sizes accepted: 64KB:1MB)
// and `cpus=<a,b,...>` arguments into an obs.Filter.
func parseTraceFilter(args []string) (obs.Filter, error) {
	var f obs.Filter
	for _, kv := range args {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return f, fmt.Errorf("expected key=value, got %q", kv)
		}
		switch k {
		case "addr":
			lo, hi, ok := strings.Cut(v, ":")
			if !ok {
				return f, fmt.Errorf("expected addr=<lo>:<hi>, got %q", kv)
			}
			l, err := parseAddr(lo)
			if err != nil {
				return f, err
			}
			h, err := parseAddr(hi)
			if err != nil {
				return f, err
			}
			if h <= l {
				return f, fmt.Errorf("empty address range %q", v)
			}
			f.AddrLo, f.AddrHi = l, h
		case "cpus":
			for _, s := range strings.Split(v, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || id < 0 || id > 255 {
					return f, fmt.Errorf("bad cpu list %q", v)
				}
				f.CPUs.Set(id)
			}
		default:
			return f, fmt.Errorf("unknown trace parameter %q", k)
		}
	}
	return f, nil
}

// parseAddr accepts hex (0x...), decimal, or size notation (64KB).
func parseAddr(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad address %q", s)
		}
		return v, nil
	}
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v, nil
	}
	if v, err := addr.ParseSize(s); err == nil {
		return uint64(v), nil
	}
	return 0, fmt.Errorf("bad address %q", s)
}
