package console

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"memories/internal/obs"
)

// FuzzConsoleCommand throws arbitrary command lines at a fully wired
// console (board + registry + trace hub): any input must either execute
// or return an error — never panic, never corrupt the board.
//
// Two command families are skipped, not because they crash but because
// they are unsuitable for a fuzz loop: `trace dump <path>` writes files
// at an attacker-chosen path, and `reprogram` with a fuzzed size can
// legitimately allocate a directory of many gigabytes.
func FuzzConsoleCommand(f *testing.F) {
	seeds := []string{
		"help",
		"metrics",
		"metrics board.filter",
		"watch board 2 0",
		"trace on addr=0x0:64KB cpus=0,1",
		"trace status",
		"trace off",
		"trace on addr=1MB:2MB",
		"stats nodea.read",
		"nodes",
		"node 0",
		"occupancy 0",
		"dirstat 0",
		"profile 0",
		"protocol 0 moesi",
		"reset-counters",
		"trace",
		"trace reset",
		"# comment",
		"",
		"version",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		fields := strings.Fields(line)
		if len(fields) > 0 {
			switch fields[0] {
			case "reprogram", "loadmap":
				return // can allocate unbounded directory / enter line mode
			case "trace":
				if len(fields) > 1 && fields[1] == "dump" {
					return // writes a file at the given path
				}
			case "watch":
				if watchSleepBudgetMS(fields) > 20 {
					return // a valid watch can sleep count × interval
				}
			}
		}
		b := testBoard(t)
		reg := obs.NewRegistry()
		hub := obs.NewTraceHub(io.Discard)
		if err := b.Observe(reg, hub, "board", 64); err != nil {
			t.Fatal(err)
		}
		c := New(b, io.Discard)
		c.SetObs(reg, hub, b.PublishObs)
		_ = c.Execute(line) // errors are fine; panics are not
		// The board must still work after whatever just happened.
		feed(b, 4)
		if got := b.Counters().Value("filter.accepted"); got != 4 {
			t.Fatalf("board broken after %q: accepted = %d", line, got)
		}
	})
}

// watchSleepBudgetMS mirrors the watch command's argument parsing and
// returns the total sleep it would perform, in milliseconds; forms that
// error out sleep nothing.
func watchSleepBudgetMS(fields []string) int {
	count, intervalMS := 5, 500
	if len(fields) >= 3 {
		v, err := strconv.Atoi(fields[2])
		if err != nil || v < 1 {
			return 0
		}
		count = v
	}
	if len(fields) >= 4 {
		v, err := strconv.Atoi(fields[3])
		if err != nil || v < 0 {
			return 0
		}
		intervalMS = v
	}
	if count > watchMaxCount {
		count = watchMaxCount
	}
	if intervalMS > watchMaxIntervalMS {
		intervalMS = watchMaxIntervalMS
	}
	return (count - 1) * intervalMS
}
