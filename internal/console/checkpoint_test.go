package console

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// The default hooks snapshot and restore the bound board: stats dumped
// after a checkpoint/restore cycle into a fresh board match the
// original's.
func TestConsoleCheckpointRestoreCommands(t *testing.T) {
	path := filepath.Join(t.TempDir(), "board.ckpt")
	b := testBoard(t)
	feed(b, 500)
	out := run(t, b, "checkpoint "+path)
	if !strings.Contains(out, "checkpoint written to "+path) {
		t.Fatalf("output %q missing confirmation", out)
	}
	want := run(t, b, "stats")

	b2 := testBoard(t)
	out = run(t, b2, "restore "+path, "stats")
	if !strings.Contains(out, "state restored from "+path) {
		t.Fatalf("output %q missing confirmation", out)
	}
	stats := run(t, b2, "stats")
	if stats != want {
		t.Fatalf("restored stats differ:\n%s\nvs\n%s", stats, want)
	}
}

// Command-syntax and I/O failures surface as errors, not panics.
func TestConsoleCheckpointErrors(t *testing.T) {
	b := testBoard(t)
	var out bytes.Buffer
	c := New(b, &out)
	if err := c.Execute("checkpoint"); err == nil {
		t.Fatal("bare checkpoint accepted")
	}
	if err := c.Execute("restore"); err == nil {
		t.Fatal("bare restore accepted")
	}
	if err := c.Execute("restore " + filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("restore of a missing file succeeded")
	}
}

// SetCheckpoint swaps in session-scope hooks; nil arguments keep the
// defaults.
func TestConsoleSetCheckpoint(t *testing.T) {
	b := testBoard(t)
	var out bytes.Buffer
	c := New(b, &out)
	var saved, loaded string
	c.SetCheckpoint(
		func(path string) error { saved = path; return nil },
		func(path string) error { loaded = path; return nil },
	)
	if err := c.Execute("checkpoint one.ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := c.Execute("restore two.ckpt"); err != nil {
		t.Fatal(err)
	}
	if saved != "one.ckpt" || loaded != "two.ckpt" {
		t.Fatalf("hooks saw (%q, %q)", saved, loaded)
	}

	c.SetCheckpoint(nil, func(string) error { return fmt.Errorf("boom") })
	if saved != "one.ckpt" {
		t.Fatal("nil save hook clobbered the previous one")
	}
	if err := c.Execute("restore x"); err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom from replacement hook", err)
	}
}
