package console

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/internal/tracefile"
)

func testBoard(t *testing.T) *core.Board {
	t.Helper()
	return core.MustNewBoard(core.Config{
		Nodes: []core.NodeConfig{{
			Name:     "a",
			CPUs:     []int{0, 1},
			Geometry: addr.MustGeometry(64*addr.KB, 128, 4),
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		}},
		ProfileBucketCycles: 1000,
		TraceCapacity:       16,
	})
}

func run(t *testing.T, b *core.Board, cmds ...string) string {
	t.Helper()
	var out bytes.Buffer
	c := New(b, &out)
	if err := c.Run(strings.NewReader(strings.Join(cmds, "\n"))); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func feed(b *core.Board, n int) {
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += 100
		b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: uint64(i%8) * 128, Size: 128, SrcID: i % 2, Cycle: cycle})
	}
	b.Flush()
}

func TestHelpAndVersion(t *testing.T) {
	out := run(t, testBoard(t), "help", "version")
	if !strings.Contains(out, "reprogram") || !strings.Contains(out, "MemorIES console") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestNodesAndNodeDetail(t *testing.T) {
	b := testBoard(t)
	feed(b, 100)
	out := run(t, b, "nodes", "node 0")
	if !strings.Contains(out, "64KB 4-way") {
		t.Fatalf("missing geometry:\n%s", out)
	}
	if !strings.Contains(out, "miss ratio") {
		t.Fatalf("missing miss ratio:\n%s", out)
	}
	if !strings.Contains(out, "satisfied") {
		t.Fatalf("missing breakdown:\n%s", out)
	}
}

func TestStatsDump(t *testing.T) {
	b := testBoard(t)
	feed(b, 10)
	out := run(t, b, "stats nodea.read")
	if !strings.Contains(out, "nodea.read.hit") || !strings.Contains(out, "nodea.read.miss") {
		t.Fatalf("stats dump:\n%s", out)
	}
	if strings.Contains(out, "filter.") {
		t.Fatal("prefix filter leaked")
	}
}

func TestReprogramCommand(t *testing.T) {
	b := testBoard(t)
	out := run(t, b, "reprogram 0 size=128KB assoc=8 policy=plru")
	if !strings.Contains(out, "128KB 8-way") {
		t.Fatalf("reprogram output:\n%s", out)
	}
	if got := b.Node(0).Geometry; got != "128KB 8-way, 128B lines" {
		t.Fatalf("board geometry = %q", got)
	}
}

func TestReprogramErrors(t *testing.T) {
	b := testBoard(t)
	out := run(t, b,
		"reprogram 0 size=100", // not pow2
		"reprogram 0 nonsense", // not k=v
		"reprogram 0 weird=1",  // unknown key
		"reprogram 9 size=1MB", // bad index
	)
	if got := strings.Count(out, "error:"); got != 4 {
		t.Fatalf("want 4 errors, output:\n%s", out)
	}
}

func TestReprogramAllKeys(t *testing.T) {
	b := testBoard(t)
	out := run(t, b, "reprogram 0 size=256KB line=256 assoc=2 policy=fifo group=3 cpus=0,1,3 protocol=msi")
	if !strings.Contains(out, "256KB 2-way, 256B lines") {
		t.Fatalf("reprogram output:\n%s", out)
	}
	v := b.Node(0)
	if v.Protocol != "msi" {
		t.Fatalf("protocol = %q", v.Protocol)
	}
	cfg := b.Config().Nodes[0]
	if cfg.Group != 3 || len(cfg.CPUs) != 3 || cfg.CPUs[2] != 3 {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.Policy.String() != "fifo" {
		t.Fatalf("policy = %v", cfg.Policy)
	}
	// Error paths for each key.
	out = run(t, b,
		"reprogram 0 line=333",
		"reprogram 0 assoc=x",
		"reprogram 0 group=x",
		"reprogram 0 cpus=1,x",
		"reprogram 0 policy=mru",
		"reprogram 0 protocol=none",
	)
	if got := strings.Count(out, "error:"); got != 6 {
		t.Fatalf("want 6 errors:\n%s", out)
	}
}

func TestProfileDisabled(t *testing.T) {
	b := core.MustNewBoard(core.Config{Nodes: []core.NodeConfig{{
		Name:     "a",
		CPUs:     []int{0},
		Geometry: addr.MustGeometry(64*addr.KB, 128, 4),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}}})
	out := run(t, b, "profile 0", "trace")
	if !strings.Contains(out, "error: profiling disabled") {
		t.Fatalf("profile:\n%s", out)
	}
	if !strings.Contains(out, "trace mode disabled") {
		t.Fatalf("trace:\n%s", out)
	}
}

func TestProtocolCommandUsage(t *testing.T) {
	b := testBoard(t)
	out := run(t, b, "protocol 0")
	if !strings.Contains(out, "error:") {
		t.Fatal("missing-arg protocol accepted")
	}
}

func TestProtocolCommand(t *testing.T) {
	b := testBoard(t)
	run(t, b, "protocol 0 moesi")
	if got := b.Node(0).Protocol; got != "moesi" {
		t.Fatalf("protocol = %q", got)
	}
	out := run(t, b, "protocol 0 bogus")
	if !strings.Contains(out, "error:") {
		t.Fatal("bad protocol accepted")
	}
}

func TestLoadMapInline(t *testing.T) {
	b := testBoard(t)
	mapText, err := coherence.MapFileString(coherence.MSI())
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	cmds := append([]string{"loadmap 0"}, strings.Split(mapText, "\n")...)
	cmds = append(cmds, "end")
	out := run(t, b, cmds...)
	if !strings.Contains(out, "protocol loaded: msi") {
		t.Fatalf("loadmap output:\n%s", out)
	}
	if b.Node(0).Protocol != "msi" {
		t.Fatal("protocol not applied")
	}
}

func TestLoadMapRejectsInvalidTable(t *testing.T) {
	b := testBoard(t)
	out := run(t, b, "loadmap 0", "protocol broken", "read I * -> S allocate fetch-memory", "end")
	if !strings.Contains(out, "error:") {
		t.Fatal("incomplete protocol accepted")
	}
}

func TestOccupancyAndProfile(t *testing.T) {
	b := testBoard(t)
	feed(b, 200)
	out := run(t, b, "occupancy 0", "profile 0")
	if !strings.Contains(out, "valid lines") {
		t.Fatalf("occupancy:\n%s", out)
	}
	if !strings.Contains(out, "buckets") {
		t.Fatalf("profile:\n%s", out)
	}
}

func TestTraceStatus(t *testing.T) {
	b := testBoard(t)
	feed(b, 5)
	out := run(t, b, "trace")
	if !strings.Contains(out, "5 records captured") {
		t.Fatalf("trace:\n%s", out)
	}
}

func TestTraceDumpAndReset(t *testing.T) {
	b := testBoard(t)
	feed(b, 5)
	path := filepath.Join(t.TempDir(), "console.trace")
	out := run(t, b, "trace dump "+path, "trace reset", "trace")
	if !strings.Contains(out, "dumped 5 records") {
		t.Fatalf("dump:\n%s", out)
	}
	if !strings.Contains(out, "0 records captured") {
		t.Fatalf("reset:\n%s", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := tracefile.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("dumped file has %d records", n)
	}
	// Bad arguments error out.
	out = run(t, b, "trace dump", "trace frobnicate")
	if strings.Count(out, "error:") != 2 {
		t.Fatalf("bad trace args:\n%s", out)
	}
}

func TestResetCounters(t *testing.T) {
	b := testBoard(t)
	feed(b, 10)
	run(t, b, "reset-counters")
	if b.Node(0).Refs() != 0 {
		t.Fatal("counters not cleared")
	}
}

func TestUnknownAndEmptyCommands(t *testing.T) {
	b := testBoard(t)
	out := run(t, b, "", "# comment", "frobnicate")
	if got := strings.Count(out, "error:"); got != 1 {
		t.Fatalf("want exactly 1 error, got output:\n%s", out)
	}
}

func TestQuitStopsRun(t *testing.T) {
	b := testBoard(t)
	var out bytes.Buffer
	c := New(b, &out)
	if err := c.Run(strings.NewReader("version\nquit\nversion\n")); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "MemorIES console"); got != 1 {
		t.Fatalf("quit did not stop the loop: %d replies", got)
	}
}

func TestDirstat(t *testing.T) {
	b := testBoard(t)
	feed(b, 200)
	out := run(t, b, "dirstat", "dirstat 0")
	if !strings.Contains(out, "bytes/slot") || !strings.Contains(out, "footprint") {
		t.Fatalf("dirstat:\n%s", out)
	}
	if !strings.Contains(out, "occupancy") {
		t.Fatalf("dirstat missing occupancy:\n%s", out)
	}
	// 64KB/128B/4-way LRU directory: 512 slots, exactly 8 bytes/slot.
	if !strings.Contains(out, "slots      512") || !strings.Contains(out, "bytes/slot 8.00") {
		t.Fatalf("dirstat geometry:\n%s", out)
	}
	// The O(1) resident count must agree with the scanning occupancy path.
	if got, want := b.DirectoryResident(0), b.DirectoryOccupancy(0); got != want {
		t.Fatalf("DirectoryResident %d != DirectoryOccupancy %d", got, want)
	}
	if err := run0(b, "dirstat 9"); err == nil {
		t.Fatal("dirstat with a bad node index did not fail")
	}
}

// run0 executes one command and returns its error (run fatals on error).
func run0(b *core.Board, cmd string) error {
	var out bytes.Buffer
	return New(b, &out).Execute(cmd)
}
