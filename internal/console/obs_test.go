package console

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/internal/obs"
)

// obsConsole builds a console whose board is attached to a fresh
// registry + trace hub, with quiesce-point publishing — the same wiring
// Session.Console uses when -obs is on.
func obsConsole(t *testing.T) (*core.Board, *bytes.Buffer, *Console) {
	t.Helper()
	b := testBoard(t)
	reg := obs.NewRegistry()
	hub := obs.NewTraceHub(io.Discard)
	if err := b.Observe(reg, hub, "board", 256); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c := New(b, &out)
	c.SetObs(reg, hub, b.PublishObs)
	return b, &out, c
}

func TestObsCommandsRequireAttachment(t *testing.T) {
	b := testBoard(t)
	out := run(t, b, "metrics", "watch board", "trace on", "trace status")
	if got := strings.Count(out, "error:"); got != 4 {
		t.Fatalf("want 4 attachment errors, got:\n%s", out)
	}
	if !strings.Contains(out, "start with -obs") {
		t.Fatalf("missing -obs hint:\n%s", out)
	}
}

func TestMetricsCommand(t *testing.T) {
	b, out, c := obsConsole(t)
	feed(b, 10)
	if err := c.Execute("metrics board.filter"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "board.filter.accepted 10") {
		t.Fatalf("metrics output:\n%s", out.String())
	}
	out.Reset()
	if err := c.Execute("metrics no.such.prefix"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `no metrics match prefix "no.such.prefix"`) {
		t.Fatalf("empty-prefix output:\n%s", out.String())
	}
}

func TestWatchCommand(t *testing.T) {
	b, out, c := obsConsole(t)
	feed(b, 5)
	if err := c.Execute("watch board.filter 3 0"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Count(got, "--- sample") != 3 {
		t.Fatalf("watch output:\n%s", got)
	}
	if strings.Count(got, "board.filter.accepted 5") != 3 {
		t.Fatalf("watch values:\n%s", got)
	}
	for _, bad := range []string{"watch", "watch p x", "watch p 1 x"} {
		if err := c.Execute(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestSnoopTraceCommands(t *testing.T) {
	b, out, c := obsConsole(t)
	if err := c.Execute("trace on addr=0x0:64KB cpus=0,1"); err != nil {
		t.Fatal(err)
	}
	if !b.Tracer().Enabled() {
		t.Fatal("trace on did not enable the tracer")
	}
	feed(b, 8) // addresses 0..7*128, all inside the window
	if err := c.Execute("trace status"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snoop trace on") || !strings.Contains(out.String(), "8 captured") {
		t.Fatalf("status output:\n%s", out.String())
	}
	out.Reset()
	if err := c.Execute("trace off"); err != nil {
		t.Fatal(err)
	}
	if b.Tracer().Enabled() {
		t.Fatal("trace off left the tracer enabled")
	}
	if !strings.Contains(out.String(), "snoop trace off") {
		t.Fatalf("off output:\n%s", out.String())
	}

	// The legacy capture-trace command is still reachable.
	out.Reset()
	if err := c.Execute("trace"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "records captured") {
		t.Fatalf("legacy trace output:\n%s", out.String())
	}

	for _, bad := range []string{
		"trace on addr=5",         // missing :hi
		"trace on addr=9:5",       // empty range
		"trace on addr=x:y",       // unparsable
		"trace on cpus=0,999",     // cpu out of range
		"trace on nonsense",       // not key=value
		"trace on weird=1",        // unknown key
		"trace on addr=64KB:64KB", // empty range, size notation
	} {
		if err := c.Execute(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseAddrForms(t *testing.T) {
	cases := map[string]uint64{
		"0x1000": 0x1000,
		"4096":   4096,
		"64KB":   64 * 1024,
		"1MB":    1 << 20,
	}
	for in, want := range cases {
		got, err := parseAddr(in)
		if err != nil || got != want {
			t.Errorf("parseAddr(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := parseAddr("zzz"); err == nil {
		t.Error("parseAddr accepted garbage")
	}
}

// TestConsoleObsConcurrentReader is the console leg of the ISSUE 5 race
// stress: `metrics` and `watch` readers snapshot a live registry while
// shard workers keep publishing mirrors. The console here deliberately
// has no quiesce-point publish (publish == nil), so reads go through
// Request/Snapshot like any live sampler.
func TestConsoleObsConcurrentReader(t *testing.T) {
	reg := obs.NewRegistry()
	// Same node shape as testBoard, minus the capture/profile features
	// the sharded pipeline refuses.
	cfg := core.Config{Nodes: []core.NodeConfig{{
		Name:     "a",
		CPUs:     []int{0, 1},
		Geometry: addr.MustGeometry(64*addr.KB, 128, 4),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}}}
	sb, err := core.NewShardedBoard(cfg, core.ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Observe(reg, nil, "board", 0); err != nil {
		t.Fatal(err)
	}
	c := New(testBoard(t), io.Discard)
	c.SetObs(reg, nil, nil)

	sb.Start()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f := sb.NewFeeder()
		cycle := uint64(0)
		for i := 0; i < 60_000; i++ {
			cycle += 48
			f.Snoop(bus.Transaction{Cmd: bus.Read, Addr: uint64(i%512) * 128, Size: 128, SrcID: i % 2, Cycle: cycle})
		}
		f.Flush()
		close(done)
	}()
	for {
		if err := c.Execute("metrics board"); err != nil {
			t.Fatal(err)
		}
		if err := c.Execute("watch board.shard0 2 0"); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			wg.Wait()
			sb.Stop()
			sb.PublishObs()
			if got := core.FoldShardCounters(reg.Snapshot(), "board")["filter.accepted"]; got != 60_000 {
				t.Fatalf("final accepted = %d, want 60000", got)
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
