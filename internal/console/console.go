// Package console implements the MemorIES console software: the paper's
// operating environment drives the board from a PC over an AMCC parallel
// port, performing "power-up initialization of the MemorIES board, cache
// parameter setting, and statistics extraction" (§2).
//
// The parallel port is replaced by a line-oriented text protocol over any
// io.Reader/io.Writer pair, so the same command set works interactively
// (cmd/console), in scripts, and in tests.
package console

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"memories/internal/addr"
	"memories/internal/cache"
	"memories/internal/checkpoint"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/protocols"
)

// Console binds a command interpreter to a board.
type Console struct {
	board *core.Board
	out   io.Writer
	// pendingMap accumulates a multi-line "loadmap" protocol definition.
	pendingMap  []string
	pendingNode int
	// obs binds the live-observability commands (metrics, watch,
	// trace on/off); nil until SetObs.
	obs *obsBinding
	// saveCkpt/loadCkpt back the checkpoint/restore commands. They
	// default to board-only snapshots; SetCheckpoint replaces them with
	// richer hooks (e.g. full-session snapshots from cmd/console).
	saveCkpt func(path string) error
	loadCkpt func(path string) error
}

// New creates a console for the given board, writing replies to out.
func New(b *core.Board, out io.Writer) *Console {
	c := &Console{board: b, out: out}
	c.saveCkpt = b.WriteCheckpointFile
	c.loadCkpt = func(path string) error {
		snap, err := checkpoint.ReadFile(path)
		if err != nil {
			return err
		}
		rep, err := core.RestoreBoard(b, snap)
		if err != nil {
			return err
		}
		if rep.ECCCorrected+rep.ECCInvalidated > 0 {
			fmt.Fprintf(c.out, "restore: ECC repaired %d word(s), invalidated %d\n",
				rep.ECCCorrected, rep.ECCInvalidated)
		}
		return nil
	}
	return c
}

// SetCheckpoint replaces the board-only checkpoint/restore hooks, so an
// embedding session can snapshot more than the board (host, workload,
// injector state).
func (c *Console) SetCheckpoint(save, load func(path string) error) {
	if save != nil {
		c.saveCkpt = save
	}
	if load != nil {
		c.loadCkpt = load
	}
}

// Run reads commands from r until EOF or the "quit" command.
func (c *Console) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := c.Execute(line); err != nil {
			fmt.Fprintf(c.out, "error: %v\n", err)
		}
	}
	return sc.Err()
}

// Execute runs a single command line.
func (c *Console) Execute(line string) error {
	if c.pendingMap != nil {
		if strings.TrimSpace(line) == "end" {
			return c.finishLoadMap()
		}
		c.pendingMap = append(c.pendingMap, line)
		return nil
	}
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil
	}
	switch fields[0] {
	case "help":
		c.help()
		return nil
	case "stats":
		prefix := ""
		if len(fields) > 1 {
			prefix = fields[1]
		}
		fmt.Fprint(c.out, c.board.Counters().Dump(prefix))
		return nil
	case "nodes":
		c.nodes()
		return nil
	case "node":
		return c.node(fields[1:])
	case "occupancy":
		return c.occupancy(fields[1:])
	case "dirstat":
		return c.dirstat(fields[1:])
	case "profile":
		return c.profile(fields[1:])
	case "reprogram":
		return c.reprogram(fields[1:])
	case "protocol":
		return c.protocol(fields[1:])
	case "loadmap":
		return c.loadMap(fields[1:])
	case "reset-counters":
		c.board.Counters().ResetAll()
		fmt.Fprintln(c.out, "counters cleared")
		return nil
	case "scrub":
		if !c.board.Config().ECC {
			return fmt.Errorf("ECC disabled on this board (enable core.Config.ECC)")
		}
		corrected, invalidated := c.board.ScrubNow()
		fmt.Fprintf(c.out, "scrub: %d corrected, %d invalidated\n", corrected, invalidated)
		return nil
	case "checkpoint":
		if len(fields) != 2 {
			return fmt.Errorf("usage: checkpoint <path>")
		}
		if err := c.saveCkpt(fields[1]); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "checkpoint written to %s\n", fields[1])
		return nil
	case "restore":
		if len(fields) != 2 {
			return fmt.Errorf("usage: restore <path>")
		}
		if err := c.loadCkpt(fields[1]); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "state restored from %s\n", fields[1])
		return nil
	case "metrics":
		return c.metrics(fields[1:])
	case "watch":
		return c.watch(fields[1:])
	case "trace":
		// "on"/"off"/"status" control the snoop event tracer; everything
		// else is the bulk trace-capture memory.
		if len(fields) > 1 {
			switch fields[1] {
			case "on", "off", "status":
				return c.snoopTrace(fields[1:])
			}
		}
		return c.trace(fields[1:])
	case "version":
		fmt.Fprintln(c.out, "MemorIES console, board revision 1 (software emulation)")
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", fields[0])
	}
}

func (c *Console) help() {
	fmt.Fprint(c.out, `commands:
  help                          this text
  version                       board/console revision
  nodes                         summary of all emulated nodes
  node <i>                      details of node i
  stats [prefix]                dump counters (optionally filtered)
  occupancy <i>                 directory occupancy of node i
  dirstat [i]                   directory geometry and footprint (all nodes
                                without an index); occupancy is O(1)
  profile <i>                   miss-ratio profile sparkline of node i
  reprogram <i> k=v ...         set cache parameters of node i
                                (size, assoc, line, policy, group, cpus, protocol)
  protocol <i> <msi|mesi|moesi> load a built-in protocol table
  loadmap <i>                   load a protocol map file; end with "end"
  reset-counters                clear the counter bank
  scrub                         run an ECC scrub pass over every directory
  checkpoint <path>             write a crash-safe state snapshot
  restore <path>                restore a snapshot written by checkpoint
  metrics [prefix]              dump the live metrics registry (needs -obs)
  watch <prefix> [n] [ms]       sample a metric prefix n times every ms
  trace                         trace-capture status
  trace reset                   clear the trace memory
  trace dump <path>             write the captured trace to a file
  trace on [addr=lo:hi] [cpus=a,b]  enable the snoop event tracer
  trace off                     disable the snoop event tracer
  trace status                  snoop tracer state and totals
  quit                          leave the console
`)
}

func (c *Console) nodes() {
	for i := 0; i < c.board.NumNodes(); i++ {
		v := c.board.Node(i)
		fmt.Fprintf(c.out, "node %d (%s): %s, protocol %s, refs %d, miss ratio %.4f\n",
			i, v.Name, v.Geometry, v.Protocol, v.Refs(), v.MissRatio())
	}
}

func (c *Console) node(args []string) error {
	i, err := c.nodeIndex(args)
	if err != nil {
		return err
	}
	v := c.board.Node(i)
	fmt.Fprintf(c.out, "node %d (%s)\n", i, v.Name)
	fmt.Fprintf(c.out, "  cache      %s\n", v.Geometry)
	fmt.Fprintf(c.out, "  protocol   %s\n", v.Protocol)
	fmt.Fprintf(c.out, "  reads      %d hit / %d miss\n", v.ReadHit, v.ReadMiss)
	fmt.Fprintf(c.out, "  writes     %d hit / %d miss\n", v.WriteHit, v.WriteMiss)
	fmt.Fprintf(c.out, "  miss ratio %.4f\n", v.MissRatio())
	fmt.Fprintf(c.out, "  satisfied  l3 %d, mod-int %d, shr-int %d, memory %d\n",
		v.SatL3, v.SatModInt, v.SatShrInt, v.SatMemory)
	fmt.Fprintf(c.out, "  castouts   %d, evictions %d\n", v.Castouts, v.Evictions)
	return nil
}

func (c *Console) occupancy(args []string) error {
	i, err := c.nodeIndex(args)
	if err != nil {
		return err
	}
	total := c.board.DirectoryOccupancy(i)
	v := c.board.Node(i)
	fmt.Fprintf(c.out, "node %d: %d valid lines\n", i, total)
	bank := c.board.Counters()
	names := bank.Group("node" + v.Name + ".occupancy")
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(c.out, "  %s %d\n", name, bank.Value(name))
	}
	return nil
}

// dirstat prints each directory's geometry, packed-slot footprint, and
// occupancy. The resident count comes from the directory's O(1) counter,
// so dirstat stays cheap even on an 8 GB (64M-slot) directory.
func (c *Console) dirstat(args []string) error {
	first, last := 0, c.board.NumNodes()-1
	if len(args) > 0 {
		i, err := c.nodeIndex(args)
		if err != nil {
			return err
		}
		first, last = i, i
	}
	var totalBytes int64
	for i := first; i <= last; i++ {
		v := c.board.Node(i)
		slots := c.board.DirectorySlots(i)
		bytes := c.board.DirectoryBytes(i)
		resident := c.board.DirectoryResident(i)
		fmt.Fprintf(c.out, "node %d (%s): %s\n", i, v.Name, v.Geometry)
		fmt.Fprintf(c.out, "  slots      %d\n", slots)
		fmt.Fprintf(c.out, "  bytes/slot %.2f\n", float64(bytes)/float64(slots))
		fmt.Fprintf(c.out, "  footprint  %s\n", addr.FormatSize(bytes))
		fmt.Fprintf(c.out, "  resident   %d lines (%.1f%% occupancy)\n",
			resident, 100*float64(resident)/float64(slots))
		totalBytes += bytes
	}
	if first != last {
		fmt.Fprintf(c.out, "total directory footprint %s\n", addr.FormatSize(totalBytes))
	}
	return nil
}

func (c *Console) profile(args []string) error {
	i, err := c.nodeIndex(args)
	if err != nil {
		return err
	}
	prof := c.board.Profile(i)
	if prof == nil {
		return fmt.Errorf("profiling disabled (set ProfileBucketCycles)")
	}
	fmt.Fprintf(c.out, "buckets %d, mean %.4f\n", prof.Len(), prof.Mean())
	fmt.Fprintf(c.out, "[%s]\n", prof.Sparkline())
	if period := prof.DominantPeriod(2); period > 0 {
		fmt.Fprintf(c.out, "periodic spikes every ~%d buckets\n", period)
	}
	return nil
}

func (c *Console) nodeIndex(args []string) (int, error) {
	if len(args) < 1 {
		return 0, fmt.Errorf("node index required")
	}
	i, err := strconv.Atoi(args[0])
	if err != nil || i < 0 || i >= c.board.NumNodes() {
		return 0, fmt.Errorf("bad node index %q", args[0])
	}
	return i, nil
}

// reprogram parses "k=v" pairs and reconfigures the node.
func (c *Console) reprogram(args []string) error {
	i, err := c.nodeIndex(args)
	if err != nil {
		return err
	}
	nc := c.board.Config().Nodes[i]
	size, line, assoc := nc.Geometry.SizeBytes, nc.Geometry.LineSize, nc.Geometry.Assoc
	for _, kv := range args[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("expected key=value, got %q", kv)
		}
		switch k {
		case "size":
			if size, err = addr.ParseSize(v); err != nil {
				return err
			}
		case "line":
			if line, err = addr.ParseSize(v); err != nil {
				return err
			}
		case "assoc":
			if assoc, err = strconv.Atoi(v); err != nil {
				return fmt.Errorf("bad assoc %q", v)
			}
		case "policy":
			if nc.Policy, err = cache.ParsePolicy(v); err != nil {
				return err
			}
		case "group":
			if nc.Group, err = strconv.Atoi(v); err != nil {
				return fmt.Errorf("bad group %q", v)
			}
		case "protocol":
			// Shipped protocols resolve through the embedded map files,
			// so every name the console accepts is compiled and
			// model-checked on load (write-once works here too, not
			// just the builtin trio).
			tab, err := protocols.Load(v)
			if err != nil {
				return fmt.Errorf("unknown protocol %q", v)
			}
			nc.Protocol = tab
		case "cpus":
			var cpus []int
			for _, s := range strings.Split(v, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					return fmt.Errorf("bad cpu list %q", v)
				}
				cpus = append(cpus, id)
			}
			nc.CPUs = cpus
		default:
			return fmt.Errorf("unknown parameter %q", k)
		}
	}
	g, err := addr.NewGeometry(size, line, assoc)
	if err != nil {
		return err
	}
	nc.Geometry = g
	if err := c.board.Reprogram(i, nc); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "node %d reprogrammed: %s\n", i, g)
	return nil
}

func (c *Console) protocol(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: protocol <node> <name>")
	}
	return c.reprogram([]string{args[0], "protocol=" + args[1]})
}

func (c *Console) loadMap(args []string) error {
	i, err := c.nodeIndex(args)
	if err != nil {
		return err
	}
	c.pendingMap = []string{}
	c.pendingNode = i
	fmt.Fprintln(c.out, "enter protocol map, finish with \"end\"")
	return nil
}

func (c *Console) finishLoadMap() error {
	text := strings.Join(c.pendingMap, "\n")
	c.pendingMap = nil
	tab, err := coherence.ParseMapFileString(text)
	if err != nil {
		return err
	}
	// The full load-time gauntlet: compile (typed structural errors)
	// plus the exhaustive model check — a user-typed protocol must be
	// proven coherent before it reaches a node controller.
	if err := coherence.Check(tab); err != nil {
		return err
	}
	nc := c.board.Config().Nodes[c.pendingNode]
	nc.Protocol = tab
	if err := c.board.Reprogram(c.pendingNode, nc); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "node %d protocol loaded: %s\n", c.pendingNode, tab.Name)
	return nil
}

func (c *Console) trace(args []string) error {
	capture := c.board.Trace()
	if capture == nil {
		fmt.Fprintln(c.out, "trace mode disabled")
		return nil
	}
	if len(args) == 0 {
		fmt.Fprintf(c.out, "trace: %d records captured, %d dropped, full=%v\n",
			capture.Len(), capture.Dropped(), capture.Full())
		return nil
	}
	switch args[0] {
	case "reset":
		capture.Reset()
		fmt.Fprintln(c.out, "trace memory cleared")
		return nil
	case "dump":
		if len(args) != 2 {
			return fmt.Errorf("usage: trace dump <path>")
		}
		f, err := os.Create(args[1])
		if err != nil {
			return err
		}
		if err := capture.Dump(f); err != nil {
			f.Close()
			return err
		}
		// A close/sync failure here means a silently truncated trace
		// file, so both must surface as command errors.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "dumped %d records to %s\n", capture.Len(), args[1])
		return nil
	}
	return fmt.Errorf("usage: trace [reset|dump <path>]")
}
