// Package core implements the MemorIES board itself: the paper's primary
// contribution (§3). The board attaches to a host 6xx bus as a purely
// passive snooper and emulates up to four shared-cache nodes in real time.
//
// The functional decomposition follows the seven-FPGA hardware design
// (Figure 7):
//
//   - the address filter rejects non-memory traffic (I/O register
//     accesses, interrupts, syncs) and transactions from unassigned bus
//     IDs, and owns the transaction buffer whose overflow would force a
//     bus retry (§3.3);
//   - the global events section counts bus-wide statistics and timestamps;
//   - four node controllers, always stepped in lock-step (§3.1), each
//     maintain one emulated cache's tag/state directory in a
//     throughput-limited SDRAM model and run a programmable protocol
//     table (§3.2);
//   - the console port (internal/console) programs cache parameters,
//     loads protocol tables, and extracts the 40-bit counter bank.
//
// Everything the board reports is derived from the bus transaction stream
// alone: it never injects traffic (the single exception being the
// overflow retry, which the paper reports never firing in months of lab
// use) and never invalidates host caches — which is why, exactly as §3.4
// concedes, the emulated caches are non-inclusive.
package core

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/obs"
	"memories/internal/sdram"
	"memories/internal/stats"
	"memories/internal/tracefile"
)

// MaxNodes is the number of node-controller FPGAs on the board.
const MaxNodes = 4

// DefaultBufferDepth is the per-node transaction buffer depth (§3.3:
// "the node controller FPGAs contain 512 transaction buffer entries").
const DefaultBufferDepth = 512

// NodeConfig describes one emulated shared-cache node.
type NodeConfig struct {
	// Name labels the node in counter names ("a" through "d" by default).
	Name string
	// CPUs lists the host bus IDs whose traffic is local to this node.
	CPUs []int
	// Geometry is the emulated cache shape (2MB-8GB, 1-8 ways, 128B-16KB
	// lines per Table 2).
	Geometry addr.Geometry
	// Policy is the replacement algorithm.
	Policy cache.Policy
	// Protocol is the coherence lookup table loaded into this controller;
	// different nodes may run different protocols in the same run (§3.2).
	Protocol *coherence.Table
	// Group is the snoop universe. Nodes in the same group emulate nodes
	// of the same target machine and snoop each other; nodes in different
	// groups are independent alternative configurations (§2.2, Figure 4).
	Group int
	// SDRAM overrides the tag-store timing; zero value selects the
	// default 42%-of-bus-bandwidth model.
	SDRAM sdram.Config
}

// Config describes the whole board.
type Config struct {
	// Nodes configures 1 to 4 node controllers.
	Nodes []NodeConfig
	// BufferDepth is the transaction buffer depth (default 512).
	BufferDepth int
	// RetryOnOverflow makes the address filter actually post bus retries
	// when the buffer fills. The hardware has this wired; the paper never
	// saw it fire, and leaving it false (count-only) keeps the board
	// strictly passive even under artificial overload.
	RetryOnOverflow bool
	// ProfileBucketCycles enables per-node miss-ratio time series with
	// the given bucket width in bus cycles (0 disables). This is the
	// Figure 10 profiling mechanism.
	ProfileBucketCycles uint64
	// TraceCapacity enables the trace-collection mode with an on-board
	// memory of this many 8-byte records (0 disables). §2.3 puts the
	// stock board at 128Mi records (1GB), 1Gi with 8GB DRAM.
	TraceCapacity int
	// ECC protects every node's tag-store entries with a SECDED check
	// byte so that injected (or modeled) SDRAM soft errors can be
	// detected and repaired. The hardware board had no such protection;
	// production-length runs need it.
	ECC bool
	// ScrubIntervalCycles runs a background ECC scrub pass over every
	// node directory each time the bus clock advances by this many
	// cycles (0 disables background scrubbing; ScrubNow remains
	// available). Requires ECC.
	ScrubIntervalCycles uint64
}

// MaxBusID is the largest assignable bus ID. The trace format carries
// source IDs in a single byte, and the hardware filter FPGA matches on
// an 8-bit bus tag, so the bound is inherent to the design; it is also
// what lets every per-CPU lookup on the hot path be a dense slice index
// instead of a map probe.
const MaxBusID = 255

// Board is the MemorIES emulator.
type Board struct {
	cfg      Config
	bank     *stats.Bank
	nodes    []*node
	cpuOwner [][]*node // bus ID -> owning node per group (dense, nil holes)
	queue    []pending
	qhead    int // queue[:qhead] already drained; see enqueue/drain
	capture  *tracefile.Capture

	// cached global counters (hot path)
	cAccepted, cRejectedIO, cRejectedOther, cUnassigned *stats.Counter
	cOverflow, cRetryPosted                             *stats.Counter
	cBufferHigh, cCycles                                *stats.Counter
	cTraceCaptured, cTraceDropped                       *stats.Counter
	cRejectedRetried                                    *stats.Counter
	cScrubPasses                                        *stats.Counter
	cByCmd                                              []*stats.Counter
	cPerCPU                                             []*stats.Counter // bus ID indexed, nil holes
	lastCycle                                           uint64
	justEnqueued                                        bool
	nextScrub                                           uint64
	onDrain                                             func(seq, cycle uint64, cmd bus.Command, addr uint64, src int)

	// batchByCmd is SnoopBatch's per-command accumulator, kept on the
	// board so the batch path allocates nothing.
	batchByCmd []uint64

	// Observability attachments (see observe.go). Both are nil until
	// Observe/SetMirror/SetTracer; the hot path pays one nil check each
	// when detached and one inlined atomic flag probe when attached.
	mirror *obs.Mirror
	tracer *obs.Tracer
}

// pending is a buffered transaction awaiting directory service.
type pending struct {
	seq   uint64
	cycle uint64
	cmd   bus.Command
	addr  uint64
	src   int
}

// NewBoard validates the configuration and powers up the board with all
// directories invalid and all counters zero.
func NewBoard(cfg Config) (*Board, error) {
	if len(cfg.Nodes) == 0 || len(cfg.Nodes) > MaxNodes {
		return nil, fmt.Errorf("core: need 1-%d nodes, got %d", MaxNodes, len(cfg.Nodes))
	}
	if cfg.BufferDepth == 0 {
		cfg.BufferDepth = DefaultBufferDepth
	}
	if cfg.BufferDepth < 1 {
		return nil, fmt.Errorf("core: buffer depth %d invalid", cfg.BufferDepth)
	}
	if cfg.ScrubIntervalCycles > 0 && !cfg.ECC {
		return nil, fmt.Errorf("core: scrub interval requires ECC")
	}
	b := &Board{
		cfg:      cfg,
		bank:     stats.NewBank(),
		cpuOwner: make([][]*node, MaxBusID+1),
		cPerCPU:  make([]*stats.Counter, MaxBusID+1),
	}
	names := map[string]bool{}
	for i := range cfg.Nodes {
		nc := &cfg.Nodes[i]
		if nc.Name == "" {
			nc.Name = string(rune('a' + i))
		}
		if names[nc.Name] {
			return nil, fmt.Errorf("core: duplicate node name %q", nc.Name)
		}
		names[nc.Name] = true
		n, err := newNode(b, *nc, cfg.ProfileBucketCycles)
		if err != nil {
			return nil, err
		}
		b.nodes = append(b.nodes, n)
	}
	// Validate CPU assignment: within one group, a CPU may belong to at
	// most one node. (newNode has already bounds-checked every ID.)
	for _, n := range b.nodes {
		for _, id := range n.cfg.CPUs {
			for _, owner := range b.cpuOwner[id] {
				if owner.cfg.Group == n.cfg.Group {
					return nil, fmt.Errorf("core: bus ID %d assigned to nodes %q and %q in group %d",
						id, owner.cfg.Name, n.cfg.Name, n.cfg.Group)
				}
			}
			b.cpuOwner[id] = append(b.cpuOwner[id], n)
		}
	}
	if cfg.TraceCapacity > 0 {
		b.capture = tracefile.NewCapture(cfg.TraceCapacity)
	}
	b.initGlobalCounters()
	return b, nil
}

// MustNewBoard is NewBoard for statically known-good configurations.
func MustNewBoard(cfg Config) *Board {
	b, err := NewBoard(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

func (b *Board) initGlobalCounters() {
	b.cAccepted = b.bank.Counter("filter.accepted")
	b.cRejectedIO = b.bank.Counter("filter.rejected.io")
	b.cRejectedOther = b.bank.Counter("filter.rejected.other")
	b.cUnassigned = b.bank.Counter("filter.unassigned")
	b.cRejectedRetried = b.bank.Counter("filter.rejected.retried")
	b.cOverflow = b.bank.Counter("buffer.overflow")
	b.cRetryPosted = b.bank.Counter("buffer.retry-posted")
	b.cBufferHigh = b.bank.Counter("buffer.high-water")
	b.cScrubPasses = b.bank.Counter("scrub.passes")
	for c := 0; c < bus.NumCommands(); c++ {
		b.cByCmd = append(b.cByCmd, b.bank.Counter("bus.ops."+bus.Command(c).String()))
	}
	b.cCycles = b.bank.Counter("bus.cycles")
	b.cTraceCaptured = b.bank.Counter("trace.captured")
	b.cTraceDropped = b.bank.Counter("trace.dropped")
	// Per-CPU global operation counters for every assigned bus ID.
	for id, owners := range b.cpuOwner {
		if len(owners) > 0 {
			b.cPerCPU[id] = b.bank.Counter(fmt.Sprintf("bus.cpu%02d.ops", id))
		}
	}
	b.batchByCmd = make([]uint64, len(b.cByCmd))
}

// owners returns the nodes owning bus ID id (nil for unassigned or
// out-of-range IDs, including the negative IDs of passive observers).
func (b *Board) owners(id int) []*node {
	if uint(id) >= uint(len(b.cpuOwner)) {
		return nil
	}
	return b.cpuOwner[id]
}

// BusID implements bus.Snooper: negative, so the board observes every
// transaction including those from all CPUs.
func (b *Board) BusID() int { return -1 }

// Counters exposes the board's counter bank (the console reads it).
func (b *Board) Counters() *stats.Bank { return b.bank }

// Config returns the board configuration.
func (b *Board) Config() Config { return b.cfg }

// NumNodes returns the number of configured node controllers.
func (b *Board) NumNodes() int { return len(b.nodes) }

// Trace returns the capture memory, or nil when trace mode is off.
func (b *Board) Trace() *tracefile.Capture { return b.capture }

// LastCycle returns the bus cycle of the most recent observed transaction.
func (b *Board) LastCycle() uint64 { return b.lastCycle }

// Snoop implements bus.Snooper: the board's entire observation path.
func (b *Board) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	b.justEnqueued = false
	// Service a pending sampler request at this safe point: the previous
	// transaction is fully accounted, this one not yet begun.
	if m := b.mirror; m != nil && m.Requested() {
		m.Publish()
	}
	b.lastCycle = tx.Cycle
	b.cCycles.Reset()
	b.cCycles.Add(tx.Cycle)
	if int(tx.Cmd) < len(b.cByCmd) {
		b.cByCmd[tx.Cmd].Inc()
	}

	// Address filter: reject non-memory operations outright.
	if !tx.Cmd.IsMemoryOp() {
		if tx.Cmd == bus.IORead || tx.Cmd == bus.IOWrite {
			b.cRejectedIO.Inc()
		} else {
			b.cRejectedOther.Inc()
		}
		return bus.RespNull
	}
	// Reject traffic from bus IDs not assigned to any emulated node.
	if len(b.owners(tx.SrcID)) == 0 {
		b.cUnassigned.Inc()
		return bus.RespNull
	}
	b.cPerCPU[tx.SrcID].Inc()

	// Trace collection mode.
	if b.capture != nil {
		if stored, err := b.capture.Add(tracefile.FromTransaction(tx)); err == nil && stored {
			b.cTraceCaptured.Inc()
		} else {
			b.cTraceDropped.Inc()
		}
	}

	// Background scrub: repair tag-store soft errors on a fixed cadence
	// before they can steer directory transitions.
	if iv := b.cfg.ScrubIntervalCycles; iv > 0 && tx.Cycle >= b.nextScrub {
		b.ScrubNow()
		b.nextScrub = tx.Cycle + iv
	}

	// Drain whatever the SDRAMs have finished by now, then admit the new
	// transaction into the lock-step buffer.
	b.drain(tx.Cycle)
	if len(b.queue)-b.qhead >= b.cfg.BufferDepth {
		b.cOverflow.Inc()
		if b.cfg.RetryOnOverflow {
			b.cRetryPosted.Inc()
			return bus.RespRetry
		}
		// Count-only mode still processes the transaction (the model
		// equivalent of the buffer never actually losing work).
	}
	b.cAccepted.Inc()
	if tr := b.tracer; tr != nil && tr.Enabled() {
		tr.Record(tx.Cycle, tx.Addr, uint8(tx.Cmd), uint8(tx.SrcID))
	}
	b.enqueue(pending{seq: tx.Seq, cycle: tx.Cycle, cmd: tx.Cmd, addr: tx.Addr, src: tx.SrcID})
	b.justEnqueued = true
	if hw := uint64(len(b.queue) - b.qhead); hw > b.cBufferHigh.Value() {
		b.cBufferHigh.Reset()
		b.cBufferHigh.Add(hw)
	}
	// The transaction stays buffered until its combined response is known
	// (ObserveResponse); it is serviced at the next bus event or Flush.
	return bus.RespNull
}

// enqueue admits one pending transaction, recycling the drained prefix
// of the queue's backing array before growing it: the queue is a ring in
// all but name, so a board in steady state never re-allocates it.
func (b *Board) enqueue(p pending) {
	if len(b.queue) == cap(b.queue) && b.qhead > 0 {
		n := copy(b.queue, b.queue[b.qhead:])
		b.queue = b.queue[:n]
		b.qhead = 0
	}
	b.queue = append(b.queue, p)
}

// SnoopBatch observes a slice of transactions exactly as consecutive
// Snoop calls would — same filter decisions, same drain timing, same
// counter values — while amortizing the per-transaction bookkeeping:
// the cycle gauge and buffer high-water are folded once per batch, and
// per-command counts accumulate in a scratch array before a single
// saturating Add each. It is bit-identical to the serial path (proven
// by TestSnoopBatchMatchesSerial) but cannot post overflow retries,
// because the combined-response window for each transaction has closed
// by the time a batch is handed over; boards configured with
// RetryOnOverflow must use Snoop.
func (b *Board) SnoopBatch(txs []bus.Transaction) {
	if b.cfg.RetryOnOverflow {
		panic("core: SnoopBatch on a RetryOnOverflow board; responses are asynchronous")
	}
	if len(txs) == 0 {
		return
	}
	b.justEnqueued = false
	byCmd := b.batchByCmd
	var accepted, overflow uint64
	hw := b.cBufferHigh.Value()
	scrubIv := b.cfg.ScrubIntervalCycles
	// Tracing state is sampled once per batch: a tracer enabled mid-batch
	// starts capturing at the next batch boundary. This keeps the per-
	// transaction cost of a disabled tracer at a register test.
	tr := b.tracer
	traceOn := tr != nil && tr.Enabled()
	for i := range txs {
		tx := &txs[i]
		if int(tx.Cmd) < len(byCmd) {
			byCmd[tx.Cmd]++
		}
		if !tx.Cmd.IsMemoryOp() {
			if tx.Cmd == bus.IORead || tx.Cmd == bus.IOWrite {
				b.cRejectedIO.Inc()
			} else {
				b.cRejectedOther.Inc()
			}
			continue
		}
		if len(b.owners(tx.SrcID)) == 0 {
			b.cUnassigned.Inc()
			continue
		}
		b.cPerCPU[tx.SrcID].Inc()
		if b.capture != nil {
			if stored, err := b.capture.Add(tracefile.FromTransaction(tx)); err == nil && stored {
				b.cTraceCaptured.Inc()
			} else {
				b.cTraceDropped.Inc()
			}
		}
		if scrubIv > 0 && tx.Cycle >= b.nextScrub {
			b.ScrubNow()
			b.nextScrub = tx.Cycle + scrubIv
		}
		b.drain(tx.Cycle)
		if len(b.queue)-b.qhead >= b.cfg.BufferDepth {
			overflow++
		}
		accepted++
		if traceOn {
			tr.Record(tx.Cycle, tx.Addr, uint8(tx.Cmd), uint8(tx.SrcID))
		}
		b.enqueue(pending{seq: tx.Seq, cycle: tx.Cycle, cmd: tx.Cmd, addr: tx.Addr, src: tx.SrcID})
		if occ := uint64(len(b.queue) - b.qhead); occ > hw {
			hw = occ
		}
	}
	b.lastCycle = txs[len(txs)-1].Cycle
	b.cCycles.Reset()
	b.cCycles.Add(b.lastCycle)
	for cmd, n := range byCmd {
		if n > 0 {
			b.cByCmd[cmd].Add(n)
			byCmd[cmd] = 0
		}
	}
	b.cAccepted.Add(accepted)
	b.cOverflow.Add(overflow)
	if hw > b.cBufferHigh.Value() {
		b.cBufferHigh.Reset()
		b.cBufferHigh.Add(hw)
	}
	// One sampler probe per batch, at the batch-end safe point.
	if m := b.mirror; m != nil && m.Requested() {
		m.Publish()
	}
}

// ObserveResponse implements bus.ResponseObserver: §3.3's filter rule —
// a memory operation that another bus device retried never happened, so
// it must not occupy transaction-buffer space or touch the directories.
func (b *Board) ObserveResponse(tx *bus.Transaction, combined bus.SnoopResponse) {
	if combined == bus.RespRetry && b.justEnqueued {
		b.queue = b.queue[:len(b.queue)-1] // pop the entry Snoop just pushed
		if b.qhead == len(b.queue) {
			b.queue = b.queue[:0]
			b.qhead = 0
		}
		b.cRejectedRetried.Inc()
		// The accepted counter tracked the enqueue; take it back.
		// (40-bit counters cannot decrement; account the rejection
		// separately and report accepted net of retried in dumps.)
	}
	b.justEnqueued = false
}

// drain services buffered transactions whose lock-step SDRAM slot starts
// by the given cycle. Serviced entries advance qhead rather than
// re-slicing the queue, so the backing array is reused (enqueue
// compacts) instead of sliding toward a re-allocation per wrap.
func (b *Board) drain(now uint64) {
	for b.qhead < len(b.queue) {
		p := b.queue[b.qhead]
		// Lock-step: every node controller performs its directory
		// operation for this transaction in the same service slot, so
		// the op starts when the slowest node's SDRAM channel is free.
		// Bank recovery overlaps with the next op (pipelining), so the
		// sustained rate is one op per channel gap, the 42% figure.
		start := p.cycle
		for _, n := range b.nodes {
			if nf := n.tags.NextFree(); nf > start {
				start = nf
			}
		}
		if start > now {
			return
		}
		for _, n := range b.nodes {
			n.tags.Schedule(start, n.setOf(p.addr))
		}
		b.process(p)
		if b.onDrain != nil {
			b.onDrain(p.seq, p.cycle, p.cmd, p.addr, p.src)
		}
		b.qhead++
	}
	b.queue = b.queue[:0]
	b.qhead = 0
}

// Flush services every buffered transaction regardless of timing; callers
// use it at end of run before reading counters.
func (b *Board) Flush() {
	b.drain(^uint64(0))
}

// PendingDepth returns the current transaction-buffer occupancy.
func (b *Board) PendingDepth() int { return len(b.queue) - b.qhead }

// process applies one memory operation to every emulated node, group by
// group: the node owning the requesting CPU performs the local
// transition with the snoop input combined from its group peers; the
// peers perform the matching snoop transition.
func (b *Board) process(p pending) {
	for _, local := range b.owners(p.src) {
		// Combined snoop input from the other nodes of this group.
		snoopIn := coherence.SnoopNone
		for _, peer := range b.nodes {
			if peer == local || peer.cfg.Group != local.cfg.Group {
				continue
			}
			st := coherence.State(peer.dir.Probe(p.addr))
			switch {
			case st.IsDirty():
				snoopIn = coherence.SnoopModified
			case st.IsValid() && snoopIn == coherence.SnoopNone:
				snoopIn = coherence.SnoopShared
			}
		}
		local.local(p, snoopIn)
		for _, peer := range b.nodes {
			if peer != local && peer.cfg.Group == local.cfg.Group {
				peer.snoop(p)
			}
		}
	}
}

// SetDrainObserver registers fn to be called for every transaction the
// moment its directory operation is performed (in drain order). The
// fault-injection layer uses it to keep a golden software shadow in
// perfect step with the board: the shadow sees exactly the stream the
// directories saw, after buffering, retries, and injected faults. The
// seq argument is the transaction's bus issue sequence number; the
// sharded pipeline's merge stage keys on it to restore global order.
func (b *Board) SetDrainObserver(fn func(seq, cycle uint64, cmd bus.Command, addr uint64, src int)) {
	b.onDrain = fn
}

// ScrubNow runs one ECC scrub pass over every node directory and returns
// the totals. It is a no-op (0, 0) when ECC is disabled.
func (b *Board) ScrubNow() (corrected, invalidated uint64) {
	if !b.cfg.ECC {
		return 0, 0
	}
	for _, n := range b.nodes {
		rep := n.dir.Scrub()
		n.cECCCorrected.Add(uint64(rep.Corrected))
		n.cECCInvalidated.Add(uint64(rep.Invalidated))
		corrected += uint64(rep.Corrected)
		invalidated += uint64(rep.Invalidated)
	}
	b.cScrubPasses.Inc()
	return corrected, invalidated
}

// DirectorySlots returns the number of tag slots in node i's directory;
// fault injectors pick corruption targets from [0, DirectorySlots).
func (b *Board) DirectorySlots(i int) int64 { return b.nodes[i].dir.SlotCount() }

// DirectoryBytes returns the backing-store footprint of node i's
// directory in bytes: the packed tag words plus any replacement-policy
// sidecars. This is the number compared against the board's 1 GB of
// SDRAM when sizing emulated caches (paper §3.3).
func (b *Board) DirectoryBytes(i int) int64 { return b.nodes[i].dir.DirectoryBytes() }

// DirectoryResident returns the number of valid lines in node i's
// directory in O(1) from the directory's resident-line counter. Unlike
// DirectoryOccupancy it does not refresh the per-state occupancy
// counters, which requires a full scan.
func (b *Board) DirectoryResident(i int) int64 { return b.nodes[i].dir.ValidCount() }

// CorruptDirectory XORs the given masks into slot `slot` of node i's
// directory without updating its ECC byte — the model of an SDRAM soft
// error striking the tag store. It reports whether the slot held a valid
// line. The board's own counters do not record the event; the injector
// owns fault accounting.
func (b *Board) CorruptDirectory(i int, slot int64, tagXor uint64, stateXor uint8) bool {
	return b.nodes[i].dir.CorruptSlot(slot, tagXor, stateXor)
}

// StallTagStores freezes every node controller's SDRAM channel for the
// given number of cycles starting at the board's last observed bus cycle,
// modeling a transient controller stall. Buffered transactions keep
// accumulating while the channel is down, which is how injected stalls
// push the transaction buffers toward overflow.
func (b *Board) StallTagStores(cycles uint64) {
	for _, n := range b.nodes {
		n.tags.Stall(b.lastCycle, cycles)
	}
}

// TagStoreStats returns the SDRAM timing-model statistics of node i.
func (b *Board) TagStoreStats(i int) sdram.Stats { return b.nodes[i].tags.Stats() }

// Reprogram reconfigures node i at run time (console "cache parameter
// setting"): the directory is cleared, counters are preserved. The new
// configuration must keep the node's name.
func (b *Board) Reprogram(i int, nc NodeConfig) error {
	if i < 0 || i >= len(b.nodes) {
		return fmt.Errorf("core: no node %d", i)
	}
	b.Flush()
	old := b.nodes[i]
	if nc.Name == "" {
		nc.Name = old.cfg.Name
	}
	if nc.Name != old.cfg.Name {
		return fmt.Errorf("core: reprogram cannot rename node %q", old.cfg.Name)
	}
	n, err := newNode(b, nc, b.cfg.ProfileBucketCycles)
	if err != nil {
		return err
	}
	// Rebuild CPU ownership for this node.
	for id, owners := range b.cpuOwner {
		keep := owners[:0]
		for _, o := range owners {
			if o != old {
				keep = append(keep, o)
			}
		}
		b.cpuOwner[id] = keep
	}
	for _, id := range nc.CPUs {
		for _, owner := range b.cpuOwner[id] {
			if owner.cfg.Group == nc.Group {
				return fmt.Errorf("core: bus ID %d already owned in group %d", id, nc.Group)
			}
		}
	}
	b.nodes[i] = n
	b.cfg.Nodes[i] = nc
	for _, id := range nc.CPUs {
		b.cpuOwner[id] = append(b.cpuOwner[id], n)
		if b.cPerCPU[id] == nil {
			b.cPerCPU[id] = b.bank.Counter(fmt.Sprintf("bus.cpu%02d.ops", id))
		}
	}
	return nil
}
