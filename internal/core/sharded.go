package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/numa"
	"memories/internal/stats"
)

// This file implements the sharded snoop pipeline: a parallel execution
// layer over the lock-step Board that splits the tag-lookup/state-update
// hot path into address-interleaved shards, one worker goroutine each.
//
// Sharding is by set-index bits. The shard selector is the low
// shardBits of the line-granular address, taken just above the largest
// line offset among the configured nodes, so that
//
//   - every cache line maps to exactly one shard (no line is ever split
//     across shards), and
//   - every node's directory sets partition cleanly across shards: shard
//     s owns exactly the sets whose index is ≡ s modulo the shard count.
//
// Each shard therefore owns a disjoint slice of every node's SDRAM
// tag/state directory — including its ECC scrub — and runs the full
// local+snoop group protocol for its addresses without ever reading or
// writing another shard's state. That is what makes the snoop hot path
// lock-free: the only synchronization is the fan-out handoff — a
// bounded MPSC ring per shard (ring.go) — and the only shared-state
// operation is the final counter aggregation after the workers have
// quiesced.
//
// Determinism: a shard drains its ring in position order and each
// producer's enqueues claim strictly increasing positions, so the
// per-shard transaction order is the feed order restricted to that
// shard, exactly as with the channel the ring replaced. Every
// directory outcome (hit/miss, eviction, snoop intervention) depends
// only on the per-set reference order, and each set lives in exactly
// one shard — so a pipelined run produces bit-identical per-node
// counters to a serial Board fed the same stream, regardless of how
// goroutines interleave. Only the queue-occupancy telemetry
// ("buffer.*") differs, because each shard paces its own slice of the
// SDRAM channel instead of one channel pacing everything.

// DefaultBatchSize is the fan-out granularity: transactions are handed
// to shard workers in batches to amortize handoff synchronization.
const DefaultBatchSize = 128

// DefaultQueueDepth is the per-shard ring capacity, in batches.
const DefaultQueueDepth = 64

// ShardedConfig tunes the parallel pipeline around a board Config.
type ShardedConfig struct {
	// Shards is the number of address-interleaved shards; it must be a
	// power of two. Zero selects GOMAXPROCS rounded down to a power of
	// two. The count is clamped so that every node keeps at least one
	// set per shard (tiny directories cannot split eight ways).
	Shards int
	// BatchSize is the fan-out batch granularity (default
	// DefaultBatchSize).
	BatchSize int
	// QueueDepth is the per-shard ring capacity in batches (default
	// DefaultQueueDepth, rounded up to a power of two). It bounds
	// feeder run-ahead and with it the pipeline's memory footprint.
	QueueDepth int
	// Pin locks each shard worker to an OS thread and binds it to one
	// host CPU chosen from the machine's NUMA topology
	// (numa.Topology.PlaceShards), so a shard's tag-directory pages —
	// first touched by its worker — stay node-local. On platforms
	// without thread affinity the workers are still thread-locked but
	// roam freely.
	Pin bool
	// Topology overrides the detected host topology when pinning;
	// nil detects the real machine. Ignored unless Pin is set.
	Topology *numa.Topology
}

// DrainEvent is one directory operation as replayed by the merge stage,
// in global issue order.
type DrainEvent struct {
	Seq   uint64
	Cycle uint64
	Cmd   bus.Command
	Addr  uint64
	Src   int
}

// ShardedBoard runs one logical MemorIES board as a set of
// address-interleaved shard boards with a fan-out/merge pipeline around
// them. Construct with NewShardedBoard; feed either synchronously with
// Snoop (no goroutines, the `-parallel 1` golden path) or through
// Start/NewFeeder/Stop for the pipelined mode.
type ShardedBoard struct {
	cfg       Config
	scfg      ShardedConfig
	shards    []*Board
	shardBits uint
	hashShift uint

	started   bool
	stopped   bool
	rings     []*txRing
	wg        sync.WaitGroup
	pools     []*sync.Pool // per-shard batch arenas (recycled slices)
	placement [][]int      // per-shard pinned CPU set (nil = unpinned)

	observer func(DrainEvent)
	events   [][]DrainEvent // per-shard drain logs, merged at Stop/Flush
}

// NewShardedBoard validates the configuration and builds one shard
// board per shard. The board Config must not enable features that
// require a synchronous or globally ordered view of the stream:
// RetryOnOverflow (the retry response cannot be delivered from a
// pipeline stage back into the bus cycle that produced it),
// TraceCapacity, and ProfileBucketCycles are rejected.
func NewShardedBoard(cfg Config, scfg ShardedConfig) (*ShardedBoard, error) {
	switch {
	case cfg.RetryOnOverflow:
		return nil, fmt.Errorf("core: sharded board cannot post overflow retries (responses are asynchronous)")
	case cfg.TraceCapacity > 0:
		return nil, fmt.Errorf("core: sharded board does not support trace capture")
	case cfg.ProfileBucketCycles > 0:
		return nil, fmt.Errorf("core: sharded board does not support miss-ratio profiling")
	}
	if scfg.Shards == 0 {
		scfg.Shards = pow2Floor(runtime.GOMAXPROCS(0))
	}
	if scfg.Shards < 1 || !addr.IsPow2(int64(scfg.Shards)) {
		return nil, fmt.Errorf("core: shard count %d is not a power of two", scfg.Shards)
	}
	if scfg.BatchSize <= 0 {
		scfg.BatchSize = DefaultBatchSize
	}
	if scfg.QueueDepth <= 0 {
		scfg.QueueDepth = DefaultQueueDepth
	}

	// Validate the node set once (NewBoard will re-validate per shard).
	probe, err := NewBoard(cfg)
	if err != nil {
		return nil, err
	}

	// The shard selector must sit inside every node's set-index bit
	// range: at or above the largest line offset, and below the top of
	// the smallest (lineBits+indexBits) span. Clamp the shard count to
	// whatever the tightest node allows.
	hashShift := uint(0)
	maxBits := ^uint(0)
	for _, nc := range probe.Config().Nodes {
		lineBits := addr.Log2(nc.Geometry.LineSize)
		if lineBits > hashShift {
			hashShift = lineBits
		}
	}
	for _, nc := range probe.Config().Nodes {
		span := addr.Log2(nc.Geometry.LineSize) + addr.Log2(nc.Geometry.Sets)
		if span <= hashShift {
			maxBits = 0
			break
		}
		if b := span - hashShift; b < maxBits {
			maxBits = b
		}
	}
	shardBits := uint(addr.Log2(int64(scfg.Shards)))
	if shardBits > maxBits {
		shardBits = maxBits
	}
	scfg.Shards = 1 << shardBits

	sb := &ShardedBoard{
		cfg:       cfg,
		scfg:      scfg,
		shardBits: shardBits,
		hashShift: hashShift,
	}
	sb.pools = make([]*sync.Pool, scfg.Shards)
	for s := 0; s < scfg.Shards; s++ {
		shard, err := NewBoard(cfg)
		if err != nil {
			return nil, err
		}
		sb.shards = append(sb.shards, shard)
		// One arena per shard: batches for shard s are recycled only
		// through shard s's pool, so with pinned workers the Put side
		// runs on the worker's CPU and reuse stays node-local.
		sb.pools[s] = &sync.Pool{New: func() any {
			b := make([]bus.Transaction, 0, scfg.BatchSize)
			return &b
		}}
	}
	sb.events = make([][]DrainEvent, scfg.Shards)
	if scfg.Pin {
		topo := numa.DetectTopology()
		if scfg.Topology != nil {
			topo = *scfg.Topology
		}
		sb.placement = topo.PlaceShards(scfg.Shards)
	} else {
		sb.placement = make([][]int, scfg.Shards)
	}
	return sb, nil
}

// ShardPlacement returns the host CPUs shard s's worker pins to (nil
// when unpinned), for diagnostics and tests.
func (sb *ShardedBoard) ShardPlacement(s int) []int { return sb.placement[s] }

// pow2Floor rounds n down to a power of two (minimum 1).
func pow2Floor(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// Shards returns the effective shard count after clamping.
func (sb *ShardedBoard) Shards() int { return len(sb.shards) }

// NumNodes returns the number of configured node controllers.
func (sb *ShardedBoard) NumNodes() int { return sb.shards[0].NumNodes() }

// ShardOf returns the shard owning address a.
func (sb *ShardedBoard) ShardOf(a uint64) int {
	return int((a >> sb.hashShift) & uint64(len(sb.shards)-1))
}

// Shard exposes shard s's underlying board for tests and diagnostics.
func (sb *ShardedBoard) Shard(s int) *Board { return sb.shards[s] }

// SetOrderedDrainObserver registers fn to receive every drained
// directory operation in global issue order (ascending Seq) when the
// run completes (at Stop for a pipelined run, at Flush for a
// synchronous one). Sequence numbers are stamped by the Feeder; with
// more than one feeder the per-feeder streams are each in order but the
// interleaving follows Seq, so callers that need a total order across
// producers must issue from a single feeder. Must be set before Start.
func (sb *ShardedBoard) SetOrderedDrainObserver(fn func(DrainEvent)) {
	if sb.started {
		panic("core: SetOrderedDrainObserver after Start")
	}
	sb.observer = fn
	for s, shard := range sb.shards {
		s := s
		shard.SetDrainObserver(func(seq, cycle uint64, cmd bus.Command, a uint64, src int) {
			sb.events[s] = append(sb.events[s], DrainEvent{Seq: seq, Cycle: cycle, Cmd: cmd, Addr: a, Src: src})
		})
	}
}

// Snoop routes one transaction to its shard synchronously (no pipeline
// goroutines). This is the deterministic golden path: the caller's
// stream order is preserved per shard exactly as the pipelined mode
// preserves a single feeder's order. It must not be mixed with
// Start/NewFeeder.
func (sb *ShardedBoard) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	if sb.started {
		panic("core: synchronous Snoop on a started pipeline")
	}
	return sb.shards[sb.ShardOf(tx.Addr)].Snoop(tx)
}

// Start launches one worker goroutine per shard. After Start, feed
// transactions through feeders obtained from NewFeeder; every feeder
// must be Flushed before Stop is called.
func (sb *ShardedBoard) Start() {
	if sb.started {
		panic("core: Start called twice")
	}
	sb.started = true
	sb.rings = make([]*txRing, len(sb.shards))
	for s := range sb.shards {
		sb.rings[s] = newTxRing(sb.scfg.QueueDepth)
		sb.wg.Add(1)
		go sb.worker(s)
	}
}

// worker drains shard s's ring, applying each batch to the shard board
// through the amortized batch ingest (bit-identical to per-transaction
// Snoop; the config restrictions NewShardedBoard enforces are exactly
// SnoopBatch's preconditions). It is the only goroutine that ever
// touches that board. With Pin set it locks itself to an OS thread and
// binds that thread to its placed CPU; the thread is intentionally
// never unlocked, so the runtime retires it with the goroutine instead
// of returning a pinned thread to the scheduler pool.
func (sb *ShardedBoard) worker(s int) {
	defer sb.wg.Done()
	if sb.scfg.Pin {
		runtime.LockOSThread()
		if cpus := sb.placement[s]; len(cpus) > 0 {
			_ = numa.PinThread(cpus) // best-effort: a denied pin just loses locality
		}
	}
	shard, ring, pool := sb.shards[s], sb.rings[s], sb.pools[s]
	for {
		bp, ok := ring.Dequeue()
		if !ok {
			return
		}
		shard.SnoopBatch(*bp)
		*bp = (*bp)[:0]
		pool.Put(bp)
	}
}

// Stop closes the ingress rings, waits for every shard worker to
// drain, flushes the shard boards (servicing any transactions still in
// their lock-step buffers), and replays the merged drain log to the
// ordered observer. After Stop the aggregated Counters/Node views are
// stable. Feeders must all be Flushed before Stop.
func (sb *ShardedBoard) Stop() {
	if !sb.started || sb.stopped {
		return
	}
	sb.stopped = true
	for _, r := range sb.rings {
		r.Close()
	}
	sb.wg.Wait()
	for _, shard := range sb.shards {
		shard.Flush()
	}
	sb.replayMerged()
}

// Flush completes a synchronous (never started) run: it flushes every
// shard board and replays the merged drain log. Pipelined runs use Stop
// instead.
func (sb *ShardedBoard) Flush() {
	if sb.started {
		panic("core: Flush on a started pipeline; use Stop")
	}
	for _, shard := range sb.shards {
		shard.Flush()
	}
	sb.replayMerged()
}

// replayMerged is the merge stage: it restores global issue order from
// the per-shard drain logs and hands the stream to the observer. Each
// shard's log is in its feed order; merging on Seq therefore preserves
// per-CPU (indeed, per-feeder total) ordering.
func (sb *ShardedBoard) replayMerged() {
	if sb.observer == nil {
		return
	}
	var total int
	for _, ev := range sb.events {
		total += len(ev)
	}
	merged := make([]DrainEvent, 0, total)
	for s := range sb.events {
		merged = append(merged, sb.events[s]...)
		sb.events[s] = nil
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	for _, ev := range merged {
		sb.observer(ev)
	}
}

// gaugeCounter reports counters that snapshot a level rather than
// accumulate events; aggregation takes the maximum across shards
// instead of the sum.
func gaugeCounter(name string) bool {
	return name == "bus.cycles" || name == "buffer.high-water"
}

// Counters aggregates the shard banks into one 40-bit counter bank, the
// view the console would extract from a monolithic board: event
// counters sum (saturating at the 40-bit ceiling exactly as a hardware
// counter would), level gauges take the maximum. Call it only when the
// workers are quiescent (after Stop, or any time in synchronous mode).
func (sb *ShardedBoard) Counters() *stats.Bank {
	merged := stats.NewBank()
	for _, shard := range sb.shards {
		bank := shard.Counters()
		for _, name := range bank.Names() {
			v := bank.Value(name)
			c := merged.Counter(name)
			if gaugeCounter(name) {
				if v > c.Value() {
					c.Reset()
					c.Add(v)
				}
			} else {
				c.Add(v)
			}
		}
	}
	return merged
}

// Node aggregates node i's view across shards.
func (sb *ShardedBoard) Node(i int) NodeView {
	v := sb.shards[0].Node(i)
	for _, shard := range sb.shards[1:] {
		w := shard.Node(i)
		v.ReadHit += w.ReadHit
		v.ReadMiss += w.ReadMiss
		v.WriteHit += w.WriteHit
		v.WriteMiss += w.WriteMiss
		v.SatL3 += w.SatL3
		v.SatModInt += w.SatModInt
		v.SatShrInt += w.SatShrInt
		v.SatMemory += w.SatMemory
		v.Castouts += w.Castouts
		v.Evictions += w.Evictions
	}
	return v
}

// ScrubNow runs one ECC scrub pass on every shard's directory slice and
// returns the totals. Like Counters, it requires quiescent workers.
func (sb *ShardedBoard) ScrubNow() (corrected, invalidated uint64) {
	for _, shard := range sb.shards {
		c, i := shard.ScrubNow()
		corrected += c
		invalidated += i
	}
	return corrected, invalidated
}

// Feeder is one producer's ingress port into the pipeline. It batches
// transactions per shard and stamps them with a feeder-local sequence
// number. A Feeder is not safe for concurrent use; concurrent producers
// each create their own.
type Feeder struct {
	sb   *ShardedBoard
	bufs []*[]bus.Transaction
	seq  uint64
}

// NewFeeder returns a new ingress port. Safe to call concurrently from
// multiple producers after Start.
func (sb *ShardedBoard) NewFeeder() *Feeder {
	if !sb.started {
		panic("core: NewFeeder before Start")
	}
	return &Feeder{sb: sb, bufs: make([]*[]bus.Transaction, len(sb.shards))}
}

// Snoop enqueues one transaction for its owning shard, stamping the
// feeder-local sequence number. The transaction is taken by value: the
// caller may reuse its struct immediately.
func (f *Feeder) Snoop(tx bus.Transaction) {
	tx.Seq = f.seq
	f.seq++
	s := f.sb.ShardOf(tx.Addr)
	buf := f.bufs[s]
	if buf == nil {
		buf = f.sb.pools[s].Get().(*[]bus.Transaction)
		f.bufs[s] = buf
	}
	*buf = append(*buf, tx)
	if len(*buf) >= f.sb.scfg.BatchSize {
		f.sb.rings[s].Enqueue(buf)
		f.bufs[s] = nil
	}
}

// Flush hands every partial batch to its shard. Producers must call it
// when their stream ends, before ShardedBoard.Stop.
func (f *Feeder) Flush() {
	for s, buf := range f.bufs {
		if buf != nil && len(*buf) > 0 {
			f.sb.rings[s].Enqueue(buf)
			f.bufs[s] = nil
		}
	}
}
