package core

import (
	"fmt"

	"memories/internal/obs"
)

// This file wires boards into the observability layer (internal/obs).
// The contract on both sides: the board's snoop loop remains the sole
// writer of its counter bank; obs gets a Mirror the loop republishes on
// request, and an optional lock-free Tracer the loop records accepted
// transactions into while enabled. Attachment must happen before the
// board (or pipeline) starts observing traffic.

// SetMirror attaches a counter mirror. The snoop path services mirror
// requests at its safe points (between transactions; at batch ends).
// Call before the board starts snooping, or from the owner goroutine.
func (b *Board) SetMirror(m *obs.Mirror) { b.mirror = m }

// Mirror returns the attached counter mirror, or nil.
func (b *Board) Mirror() *obs.Mirror { return b.mirror }

// SetTracer attaches a snoop event tracer. The snoop path records every
// accepted memory transaction into it while it is enabled.
func (b *Board) SetTracer(t *obs.Tracer) { b.tracer = t }

// Tracer returns the attached snoop tracer, or nil.
func (b *Board) Tracer() *obs.Tracer { return b.tracer }

// PublishObs force-publishes the mirror from a quiesce point (after
// Flush, end of run), making the final counter values visible to
// samplers exactly. No-op when no mirror is attached.
func (b *Board) PublishObs() {
	if b.mirror != nil {
		b.mirror.Publish()
	}
}

// Observe attaches the board to a registry (and optionally a trace hub)
// under the given name prefix: the board's entire counter bank appears
// as "<prefix>.<counter>", and a tracer of traceDepth records (0 =
// obs.DefaultTraceDepth) is registered with the hub when hub != nil.
// Must be called before the board observes traffic.
func (b *Board) Observe(reg *obs.Registry, hub *obs.TraceHub, prefix string, traceDepth int) error {
	m := obs.NewMirror(b.bank)
	if err := reg.AttachMirror(prefix, m); err != nil {
		return err
	}
	b.mirror = m
	if hub != nil {
		t := obs.NewTracer(traceDepth)
		b.tracer = t
		hub.Add(prefix, t)
	}
	return nil
}

// Observe attaches every shard to the registry (and optionally a trace
// hub) as "<prefix>.shard<N>". Per-shard mirrors keep the single-writer
// rule intact — each shard worker republishes its own bank; samplers see
// the per-shard split, and ObservedCounters folds a snapshot back into
// the monolithic-board view. Must be called before Start (or, for
// synchronous use, before the first Snoop).
func (sb *ShardedBoard) Observe(reg *obs.Registry, hub *obs.TraceHub, prefix string, traceDepth int) error {
	if sb.started {
		return fmt.Errorf("core: Observe after Start")
	}
	for s, shard := range sb.shards {
		if err := shard.Observe(reg, hub, fmt.Sprintf("%s.shard%d", prefix, s), traceDepth); err != nil {
			return err
		}
	}
	return nil
}

// PublishObs force-publishes every shard's mirror. Call only when the
// workers are quiescent (after Stop, or any time in synchronous mode).
func (sb *ShardedBoard) PublishObs() {
	for _, shard := range sb.shards {
		shard.PublishObs()
	}
}

// FoldShardCounters folds per-shard counter values from a snapshot back
// into the monolithic-board view, given the prefix passed to Observe:
// "<prefix>.shard<N>.<counter>" entries aggregate to "<counter>" with
// the same semantics as ShardedBoard.Counters (event counters sum,
// level gauges take the maximum). Entries outside the prefix are
// ignored. The determinism suite uses it to prove a live sampler's
// final snapshot equals the quiesced bank aggregation.
func FoldShardCounters(snap *obs.Snapshot, prefix string) map[string]uint64 {
	out := make(map[string]uint64)
	for _, c := range snap.Counters {
		rest, ok := cutPrefix(c.Name, prefix+".shard")
		if !ok {
			continue
		}
		// Skip the shard number up to the next '.'.
		dot := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '.' {
				dot = i
				break
			}
		}
		if dot < 0 {
			continue
		}
		name := rest[dot+1:]
		if gaugeCounter(name) {
			if c.Value > out[name] {
				out[name] = c.Value
			}
		} else {
			out[name] += c.Value
		}
	}
	return out
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}
