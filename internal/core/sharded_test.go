package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/numa"
	"memories/internal/obs"
	"memories/internal/workload"
)

// shardTestConfig is a four-node, two-group board with mixed geometries:
// group 0 partitions the eight CPUs into two nodes, group 1 is an
// independent alternative configuration of the same machine.
func shardTestConfig() Config {
	mk := func(name string, cpus []int, size int64, assoc, group int) NodeConfig {
		return NodeConfig{
			Name:     name,
			CPUs:     cpus,
			Geometry: addr.MustGeometry(size, 128, assoc),
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
			Group:    group,
		}
	}
	return Config{Nodes: []NodeConfig{
		mk("a", []int{0, 1, 2, 3}, 2*addr.MB, 4, 0),
		mk("b", []int{4, 5, 6, 7}, 2*addr.MB, 4, 0),
		mk("c", []int{0, 1, 2, 3}, 8*addr.MB, 8, 1),
		mk("d", []int{4, 5, 6, 7}, 4*addr.MB, 2, 1),
	}}
}

// shardTestStream builds a deterministic transaction stream with the
// full command mix the address filter must handle: reads, write misses,
// castouts, and non-memory traffic.
func shardTestStream(n int) []bus.Transaction {
	gen := workload.NewZipfian(workload.ZipfConfig{
		NumCPUs: 8, FootprintByte: 64 * addr.MB, WriteFraction: 0.3, Seed: 21,
	})
	txs := make([]bus.Transaction, 0, n)
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		ref, _ := gen.Next()
		cycle += 48
		cmd := bus.Read
		switch {
		case i%31 == 0:
			cmd = bus.IORead
		case i%17 == 0:
			cmd = bus.Castout
		case ref.Write:
			cmd = bus.RWITM
		}
		txs = append(txs, bus.Transaction{
			Seq: uint64(i), Cycle: cycle, Cmd: cmd,
			Addr: ref.Addr &^ 127, Size: 128, SrcID: ref.CPU,
		})
	}
	return txs
}

// filterSnapshot drops the counters whose values legitimately depend on
// pipeline occupancy rather than on the reference stream: the
// transaction-buffer telemetry (each shard paces its own slice of the
// SDRAM channel) and, when requested, the bus-cycle gauge (its merged
// value is only defined for a monotone single-feeder stream).
func filterSnapshot(snap map[string]uint64, dropCycleGauge bool) map[string]uint64 {
	out := make(map[string]uint64, len(snap))
	for name, v := range snap {
		if strings.HasPrefix(name, "buffer.") {
			continue
		}
		if dropCycleGauge && gaugeCounter(name) {
			continue
		}
		out[name] = v
	}
	return out
}

func diffSnapshots(t *testing.T, want, got map[string]uint64, label string) {
	t.Helper()
	for name, w := range want {
		if g, ok := got[name]; !ok || g != w {
			t.Errorf("%s: counter %s = %d, want %d", label, name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: unexpected counter %s", label, name)
		}
	}
}

// TestShardedBoardMatchesSerial is the tentpole equivalence proof: the
// same stream through a monolithic Board, a synchronous ShardedBoard,
// and a pipelined ShardedBoard yields bit-identical counters (modulo
// buffer-occupancy telemetry) and the identical drain log.
func TestShardedBoardMatchesSerial(t *testing.T) {
	const n = 120_000
	txs := shardTestStream(n)

	serial := MustNewBoard(shardTestConfig())
	serialReg := obs.NewRegistry()
	if err := serial.Observe(serialReg, nil, "serial", 0); err != nil {
		t.Fatal(err)
	}
	var serialEvents []DrainEvent
	serial.SetDrainObserver(func(seq, cycle uint64, cmd bus.Command, a uint64, src int) {
		serialEvents = append(serialEvents, DrainEvent{Seq: seq, Cycle: cycle, Cmd: cmd, Addr: a, Src: src})
	})
	for i := range txs {
		tx := txs[i]
		serial.Snoop(&tx)
	}
	serial.Flush()
	serial.PublishObs()
	want := filterSnapshot(serial.Counters().Snapshot(), false)

	// The serial board's registry mirror must reproduce the bank exactly.
	serialSnap := serialReg.Snapshot()
	for name, w := range serial.Counters().Snapshot() {
		if got := serialSnap.Value("serial." + name); got != w {
			t.Fatalf("registry serial.%s = %d, bank %d", name, got, w)
		}
	}

	t.Run("synchronous", func(t *testing.T) {
		sb, err := NewShardedBoard(shardTestConfig(), ShardedConfig{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if sb.Shards() != 4 {
			t.Fatalf("shard count clamped to %d", sb.Shards())
		}
		for i := range txs {
			tx := txs[i]
			sb.Snoop(&tx)
		}
		sb.Flush()
		diffSnapshots(t, want, filterSnapshot(sb.Counters().Snapshot(), false), "sync")
	})

	t.Run("pipelined", func(t *testing.T) {
		for _, shards := range []int{1, 2, 8} {
			sb, err := NewShardedBoard(shardTestConfig(), ShardedConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			if err := sb.Observe(reg, nil, "board", 0); err != nil {
				t.Fatal(err)
			}
			var events []DrainEvent
			sb.SetOrderedDrainObserver(func(ev DrainEvent) { events = append(events, ev) })
			sb.Start()
			f := sb.NewFeeder()
			for _, tx := range txs {
				f.Snoop(tx)
			}
			f.Flush()
			sb.Stop()
			diffSnapshots(t, want, filterSnapshot(sb.Counters().Snapshot(), false),
				fmt.Sprintf("pipelined/%d", shards))

			// Registry dump: folding the per-shard mirrors back into the
			// monolithic view must reproduce the serial bank, counter for
			// counter (buffer telemetry aside, as above).
			sb.PublishObs()
			fold := FoldShardCounters(reg.Snapshot(), "board")
			diffSnapshots(t, want, filterSnapshot(fold, false),
				fmt.Sprintf("pipelined/%d registry", shards))

			// The merge stage must reconstruct the serial drain log
			// exactly: same operations, same order, same cycles.
			if len(events) != len(serialEvents) {
				t.Fatalf("pipelined/%d: %d merged events, serial drained %d", shards, len(events), len(serialEvents))
			}
			for i := range events {
				if events[i] != serialEvents[i] {
					t.Fatalf("pipelined/%d: event %d = %+v, serial %+v", shards, i, events[i], serialEvents[i])
				}
			}
			// Per-node views aggregate to the serial views.
			for i := 0; i < serial.NumNodes(); i++ {
				if sb.Node(i) != serial.Node(i) {
					t.Fatalf("pipelined/%d: node %d view %+v, serial %+v", shards, i, sb.Node(i), serial.Node(i))
				}
			}
		}
	})
}

// TestShardedBoardClampsShards: a node too small to split eight ways
// clamps the shard count instead of producing divergent results.
func TestShardedBoardClampsShards(t *testing.T) {
	cfg := Config{Nodes: []NodeConfig{{
		Name: "tiny", CPUs: []int{0},
		// 4 sets: 2KB / (128B * 4 ways).
		Geometry: addr.MustGeometry(2*addr.KB, 128, 4),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}}}
	sb, err := NewShardedBoard(cfg, ShardedConfig{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sb.Shards() != 4 {
		t.Fatalf("shards = %d, want clamp to the node's 4 sets", sb.Shards())
	}
}

// TestShardedBoardRejectsSynchronousFeatures: features that need a
// synchronous or globally ordered stream view must refuse to shard.
func TestShardedBoardRejectsSynchronousFeatures(t *testing.T) {
	base := shardTestConfig()
	for name, mut := range map[string]func(*Config){
		"retry":   func(c *Config) { c.RetryOnOverflow = true },
		"trace":   func(c *Config) { c.TraceCapacity = 1024 },
		"profile": func(c *Config) { c.ProfileBucketCycles = 1000 },
	} {
		cfg := base
		mut(&cfg)
		if _, err := NewShardedBoard(cfg, ShardedConfig{Shards: 2}); err == nil {
			t.Errorf("%s: sharded board accepted unsupported feature", name)
		}
	}
}

// stressConfig is the race-stress board: four identical nodes in one
// snoop group, two CPUs each.
func stressConfig() Config {
	var nodes []NodeConfig
	for i := 0; i < 4; i++ {
		nodes = append(nodes, NodeConfig{
			Name:     string(rune('a' + i)),
			CPUs:     []int{2 * i, 2*i + 1},
			Geometry: addr.MustGeometry(4*addr.MB, 128, 4), // 8192 sets
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		})
	}
	return Config{Nodes: nodes}
}

// stressTx returns producer p's i-th transaction. Producers own
// disjoint sets: line-index bits [2,5) carry the producer ID, above the
// two shard-selector bits, so any interleaving of the eight streams
// yields the same per-set reference order — which is what makes the
// concurrent totals comparable against a serial run.
func stressTx(p int, i int, rng *workload.RNG) bus.Transaction {
	line := (uint64(rng.Intn(1<<22)) &^ (7 << 2)) | uint64(p)<<2
	cmd := bus.Read
	if rng.Chance(0.3) {
		cmd = bus.RWITM
	}
	return bus.Transaction{
		Cycle: uint64(i+1) * 48,
		Cmd:   cmd,
		Addr:  line * 128,
		Size:  128,
		SrcID: p,
	}
}

// TestShardedBoardConcurrentProducerStress drives all shards of a
// four-node board from eight concurrent producers (run under -race in
// CI) and asserts the aggregated counter totals equal a serial Board
// fed the same eight streams.
func TestShardedBoardConcurrentProducerStress(t *testing.T) {
	const producers = 8
	perProducer := 125_000 // 1M transactions total
	if testing.Short() {
		perProducer = 25_000
	}

	sb, err := NewShardedBoard(stressConfig(), ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sb.Start()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			f := sb.NewFeeder()
			rng := workload.NewRNG(uint64(100 + p))
			for i := 0; i < perProducer; i++ {
				f.Snoop(stressTx(p, i, rng))
			}
			f.Flush()
		}(p)
	}
	wg.Wait()
	sb.Stop()

	// Serial reference: the same eight streams, round-robin interleaved
	// on a monolithic board.
	serial := MustNewBoard(stressConfig())
	rngs := make([]*workload.RNG, producers)
	for p := range rngs {
		rngs[p] = workload.NewRNG(uint64(100 + p))
	}
	for i := 0; i < perProducer; i++ {
		for p := 0; p < producers; p++ {
			tx := stressTx(p, i, rngs[p])
			serial.Snoop(&tx)
		}
	}
	serial.Flush()

	// The cycle gauge's merged value is undefined across concurrent
	// producers (arrival order is scheduling-dependent), so it is
	// excluded along with the buffer telemetry; every event counter
	// must match exactly.
	want := filterSnapshot(serial.Counters().Snapshot(), true)
	got := filterSnapshot(sb.Counters().Snapshot(), true)
	diffSnapshots(t, want, got, "stress")

	var refs uint64
	for i := 0; i < 4; i++ {
		refs += sb.Node(i).Refs()
	}
	if refs == 0 {
		t.Fatal("stress run emulated no references")
	}
}

// TestShardedBoardPinnedWorkersStress is the NUMA-placement stress: the
// same multi-producer drive as above but with Pin set, so every shard
// worker locks its OS thread and binds to its placed CPU while
// producers hammer the rings (run under -race in CI). Counters must
// still match the serial reference — pinning is a locality hint, never
// a semantic change.
func TestShardedBoardPinnedWorkersStress(t *testing.T) {
	const producers = 4
	perProducer := 50_000
	if testing.Short() {
		perProducer = 10_000
	}

	// An explicit single-node topology keeps the test deterministic on
	// any host; CPU 0 always exists.
	topo := numa.Topology{Nodes: []numa.TopoNode{{ID: 0, CPUs: []int{0}}}}
	sb, err := NewShardedBoard(stressConfig(), ShardedConfig{Shards: 4, Pin: true, Topology: &topo})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sb.Shards(); s++ {
		if got := sb.ShardPlacement(s); len(got) != 1 || got[0] != 0 {
			t.Fatalf("shard %d placement = %v, want [0]", s, got)
		}
	}
	sb.Start()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			f := sb.NewFeeder()
			rng := workload.NewRNG(uint64(100 + p))
			for i := 0; i < perProducer; i++ {
				f.Snoop(stressTx(p, i, rng))
			}
			f.Flush()
		}(p)
	}
	wg.Wait()
	sb.Stop()

	serial := MustNewBoard(stressConfig())
	rngs := make([]*workload.RNG, producers)
	for p := range rngs {
		rngs[p] = workload.NewRNG(uint64(100 + p))
	}
	for i := 0; i < perProducer; i++ {
		for p := 0; p < producers; p++ {
			tx := stressTx(p, i, rngs[p])
			serial.Snoop(&tx)
		}
	}
	serial.Flush()

	want := filterSnapshot(serial.Counters().Snapshot(), true)
	got := filterSnapshot(sb.Counters().Snapshot(), true)
	diffSnapshots(t, want, got, "pinned stress")
}
