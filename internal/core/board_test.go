package core

import (
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/host"
	"memories/internal/workload"
)

// feeder issues hand-crafted transactions to a board, advancing the bus
// clock generously so SDRAM pacing never defers processing.
type feeder struct {
	board *Board
	cycle uint64
}

func (f *feeder) issue(cmd bus.Command, a uint64, src int) bus.SnoopResponse {
	f.cycle += 100
	return f.board.Snoop(&bus.Transaction{Cmd: cmd, Addr: a, Size: 128, SrcID: src, Cycle: f.cycle})
}

func nodeCfg(name string, cpus []int, sizeKB int64, assoc int, group int) NodeConfig {
	return NodeConfig{
		Name:     name,
		CPUs:     cpus,
		Geometry: addr.MustGeometry(sizeKB*addr.KB, 128, assoc),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
		Group:    group,
	}
}

func twoNodeBoard(t *testing.T) (*Board, *feeder) {
	t.Helper()
	b, err := NewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", []int{0, 1}, 64, 4, 0),
		nodeCfg("b", []int{2, 3}, 64, 4, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	return b, &feeder{board: b}
}

func TestBoardValidation(t *testing.T) {
	if _, err := NewBoard(Config{}); err == nil {
		t.Fatal("accepted zero nodes")
	}
	five := make([]NodeConfig, 5)
	for i := range five {
		five[i] = nodeCfg(string(rune('a'+i)), []int{i}, 64, 4, 0)
	}
	if _, err := NewBoard(Config{Nodes: five}); err == nil {
		t.Fatal("accepted five nodes")
	}
	// Duplicate CPU within one group.
	if _, err := NewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", []int{0}, 64, 4, 0),
		nodeCfg("b", []int{0}, 64, 4, 0),
	}}); err == nil {
		t.Fatal("accepted duplicate CPU in one group")
	}
	// Same CPU across groups is the multi-config mode and must work.
	if _, err := NewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", []int{0}, 64, 4, 0),
		nodeCfg("b", []int{0}, 64, 8, 1),
	}}); err != nil {
		t.Fatalf("multi-config rejected: %v", err)
	}
	// Missing protocol.
	nc := nodeCfg("a", []int{0}, 64, 4, 0)
	nc.Protocol = nil
	if _, err := NewBoard(Config{Nodes: []NodeConfig{nc}}); err == nil {
		t.Fatal("accepted nil protocol")
	}
	// No CPUs.
	nc = nodeCfg("a", nil, 64, 4, 0)
	if _, err := NewBoard(Config{Nodes: []NodeConfig{nc}}); err == nil {
		t.Fatal("accepted node with no CPUs")
	}
}

func TestAddressFilterRejectsNonMemory(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.IORead, 0x1000, 0)
	f.issue(bus.IOWrite, 0x1000, 0)
	f.issue(bus.Interrupt, 0, 0)
	f.issue(bus.Sync, 0, 0)
	b.Flush()
	bank := b.Counters()
	if got := bank.Value("filter.rejected.io"); got != 2 {
		t.Fatalf("rejected.io = %d, want 2", got)
	}
	if got := bank.Value("filter.rejected.other"); got != 2 {
		t.Fatalf("rejected.other = %d, want 2", got)
	}
	if got := bank.Value("filter.accepted"); got != 0 {
		t.Fatalf("accepted = %d, want 0", got)
	}
	if b.Node(0).Refs() != 0 {
		t.Fatal("filtered traffic reached a node controller")
	}
}

func TestAddressFilterRejectsUnassignedCPU(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.Read, 0x2000, 9) // CPU 9 unassigned
	b.Flush()
	if got := b.Counters().Value("filter.unassigned"); got != 1 {
		t.Fatalf("unassigned = %d, want 1", got)
	}
	if b.Node(0).Refs()+b.Node(1).Refs() != 0 {
		t.Fatal("unassigned traffic reached a node")
	}
}

func TestLocalReadMissThenHit(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.Read, 0x4000, 0)
	f.issue(bus.Read, 0x4000, 1) // same node (cpus 0,1)
	b.Flush()
	v := b.Node(0)
	if v.ReadMiss != 1 || v.ReadHit != 1 {
		t.Fatalf("node a: %+v", v)
	}
	if v.SatMemory != 1 || v.SatL3 != 1 {
		t.Fatalf("satisfaction breakdown: %+v", v)
	}
	if v.MissRatio() != 0.5 {
		t.Fatalf("miss ratio = %v", v.MissRatio())
	}
	// Counters mirror the view.
	bank := b.Counters()
	if bank.Value("nodea.read.miss") != 1 || bank.Value("nodea.read.hit") != 1 {
		t.Fatal("counter bank mismatch")
	}
	if bank.Value("nodea.cpu00.miss") != 1 || bank.Value("nodea.cpu01.hit") != 1 {
		t.Fatal("per-CPU counters mismatch")
	}
}

func TestCrossNodeModifiedIntervention(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.RWITM, 0x8000, 0) // node a takes M
	f.issue(bus.Read, 0x8000, 2)  // node b reads: a intervenes
	b.Flush()
	va, vb := b.Node(0), b.Node(1)
	if vb.SatModInt != 1 {
		t.Fatalf("node b satisfied: %+v", vb)
	}
	bank := b.Counters()
	if bank.Value("nodea.intervention.supplied.mod") != 1 {
		t.Fatal("node a did not supply the intervention")
	}
	if bank.Value("nodea.writeback") != 1 {
		t.Fatal("MESI downgrade must write back")
	}
	if bank.Value("nodea.snoop.read.hit") != 1 {
		t.Fatal("snoop read hit not counted")
	}
	_ = va
}

func TestCrossNodeSharedIntervention(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.Read, 0xC000, 0) // node a E
	f.issue(bus.Read, 0xC000, 2) // node b: shr-int
	b.Flush()
	if got := b.Node(1).SatShrInt; got != 1 {
		t.Fatalf("shr-int = %d, want 1", got)
	}
}

func TestRemoteWriteInvalidates(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.Read, 0x10000, 0)  // a holds line
	f.issue(bus.RWITM, 0x10000, 2) // b claims it
	f.issue(bus.Read, 0x10000, 0)  // a must miss now
	b.Flush()
	va := b.Node(0)
	if va.ReadMiss != 2 {
		t.Fatalf("node a read misses = %d, want 2 (invalidated between)", va.ReadMiss)
	}
	if b.Counters().Value("nodea.snoop.invalidated") != 1 {
		t.Fatal("invalidation not counted")
	}
	// And the second miss is satisfied by b's modified copy.
	if va.SatModInt != 1 {
		t.Fatalf("node a satisfaction: %+v", va)
	}
}

func TestGroupsDoNotSnoopEachOther(t *testing.T) {
	b, err := NewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", []int{0, 1}, 64, 4, 0),
		nodeCfg("b", []int{0, 1}, 64, 8, 1), // alternative config, same CPUs
	}})
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{board: b}
	f.issue(bus.Read, 0x4000, 0)
	b.Flush()
	va, vb := b.Node(0), b.Node(1)
	// Both universes observe the read as local and miss to memory: no
	// cross-universe interventions.
	if va.ReadMiss != 1 || vb.ReadMiss != 1 {
		t.Fatalf("both configs must process: a=%+v b=%+v", va, vb)
	}
	if va.SatMemory != 1 || vb.SatMemory != 1 {
		t.Fatalf("cross-group snoop leaked: a=%+v b=%+v", va, vb)
	}
}

func TestCastoutAbsorbedAndAllocated(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.Read, 0x14000, 0)    // line present (E)
	f.issue(bus.Castout, 0x14000, 0) // absorbed, becomes M
	f.issue(bus.Castout, 0x18000, 0) // absent: allocated M
	b.Flush()
	bank := b.Counters()
	if bank.Value("nodea.castout.absorbed") != 1 {
		t.Fatal("castout not absorbed")
	}
	if bank.Value("nodea.castout.allocated") != 1 {
		t.Fatal("castout not allocated")
	}
	// Both lines must now be dirty in the directory.
	f.issue(bus.Read, 0x14000, 2) // node b reads: mod intervention from a
	b.Flush()
	if b.Node(1).SatModInt != 1 {
		t.Fatal("absorbed castout did not leave the line modified")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	// 2KB direct-mapped: 16 sets of 128B.
	b, err := NewBoard(Config{Nodes: []NodeConfig{{
		Name:     "a",
		CPUs:     []int{0},
		Geometry: addr.MustGeometry(2*addr.KB, 128, 1),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{board: b}
	f.issue(bus.RWITM, 0x0000, 0)  // set 0, dirty
	f.issue(bus.RWITM, 0x10000, 0) // same set, evicts dirty victim
	b.Flush()
	bank := b.Counters()
	if bank.Value("nodea.evictions") != 1 || bank.Value("nodea.evictions.dirty") != 1 {
		t.Fatalf("evictions=%d dirty=%d", bank.Value("nodea.evictions"), bank.Value("nodea.evictions.dirty"))
	}
	if bank.Value("nodea.writeback") != 1 {
		t.Fatal("dirty eviction must count a writeback")
	}
}

func TestBufferOverflowCountsAndOptionallyRetries(t *testing.T) {
	mk := func(retry bool) (*Board, int) {
		b, err := NewBoard(Config{
			Nodes:           []NodeConfig{nodeCfg("a", []int{0}, 64, 4, 0)},
			BufferDepth:     4,
			RetryOnOverflow: retry,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Saturating burst: all transactions arrive in consecutive
		// cycles, far faster than one directory op per ~23 cycles.
		retries := 0
		for i := 0; i < 64; i++ {
			tx := &bus.Transaction{Cmd: bus.Read, Addr: uint64(i) * 128, Size: 128, SrcID: 0, Cycle: uint64(i)}
			if b.Snoop(tx) == bus.RespRetry {
				retries++
			}
		}
		return b, retries
	}
	b, retries := mk(false)
	if b.Counters().Value("buffer.overflow") == 0 {
		t.Fatal("overflow burst not detected")
	}
	if retries != 0 {
		t.Fatal("count-only mode posted retries")
	}
	b.Flush()

	b2, retries2 := mk(true)
	if retries2 == 0 {
		t.Fatal("retry mode posted no retries")
	}
	if b2.Counters().Value("buffer.retry-posted") != uint64(retries2) {
		t.Fatal("retry counter mismatch")
	}
}

func TestLockStepPacingDefersProcessing(t *testing.T) {
	b, err := NewBoard(Config{Nodes: []NodeConfig{nodeCfg("a", []int{0}, 64, 4, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	// Burst at cycle ~0: the SDRAM cannot keep up, so the queue builds.
	for i := 0; i < 20; i++ {
		b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: uint64(i) * 4096, Size: 128, SrcID: 0, Cycle: uint64(i)})
	}
	if b.PendingDepth() == 0 {
		t.Fatal("burst did not queue (SDRAM pacing missing)")
	}
	b.Flush()
	if b.PendingDepth() != 0 {
		t.Fatal("Flush left work pending")
	}
	if b.Node(0).Refs() != 20 {
		t.Fatalf("processed %d refs, want 20", b.Node(0).Refs())
	}
}

func TestBufferKeepsUpAtPaperUtilization(t *testing.T) {
	// At <=20% utilization the 512-entry buffer must never overflow —
	// the paper's "never once posted a retry" claim.
	b, err := NewBoard(Config{Nodes: []NodeConfig{nodeCfg("a", []int{0, 1, 2, 3}, 1024, 4, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(1)
	cycle := uint64(0)
	for i := 0; i < 200000; i++ {
		// 20% utilization: one memory op per ~48 cycles (op occupies
		// ~9.6); randomize arrival gaps.
		cycle += 30 + uint64(rng.Intn(37))
		b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: uint64(rng.Intn(1<<28)) &^ 127, Size: 128, SrcID: int(rng.Intn(4)), Cycle: cycle})
	}
	if got := b.Counters().Value("buffer.overflow"); got != 0 {
		t.Fatalf("buffer overflowed %d times at 20%% utilization", got)
	}
	hw := b.Counters().Value("buffer.high-water")
	if hw >= DefaultBufferDepth {
		t.Fatalf("high water %d reached buffer depth", hw)
	}
}

func TestTraceCaptureMode(t *testing.T) {
	b, err := NewBoard(Config{
		Nodes:         []NodeConfig{nodeCfg("a", []int{0}, 64, 4, 0)},
		TraceCapacity: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{board: b}
	for i := 0; i < 12; i++ {
		f.issue(bus.Read, uint64(i)*128, 0)
	}
	f.issue(bus.IORead, 0, 0) // filtered, must not be traced
	b.Flush()
	if b.Trace().Len() != 8 {
		t.Fatalf("captured %d, want 8", b.Trace().Len())
	}
	if b.Counters().Value("trace.captured") != 8 || b.Counters().Value("trace.dropped") != 4 {
		t.Fatalf("capture counters: %s", b.Counters().Dump("trace"))
	}
	rec := b.Trace().Record(3)
	if rec.Addr != 3*128 || rec.Cmd != bus.Read {
		t.Fatalf("record 3 = %+v", rec)
	}
}

func TestMissRatioProfile(t *testing.T) {
	b, err := NewBoard(Config{
		Nodes:               []NodeConfig{nodeCfg("a", []int{0}, 64, 4, 0)},
		ProfileBucketCycles: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{board: b}
	for i := 0; i < 100; i++ {
		f.issue(bus.Read, uint64(i%4)*128, 0) // mostly hits after warmup
	}
	b.Flush()
	prof := b.Profile(0)
	if prof == nil || prof.Len() == 0 {
		t.Fatal("profiling produced no buckets")
	}
	if prof.Mean() >= 0.5 {
		t.Fatalf("profile mean %.2f too high for a hit-dominated stream", prof.Mean())
	}
}

func TestReprogramChangesGeometryKeepsCounters(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.Read, 0x4000, 0)
	b.Flush()
	before := b.Node(0).ReadMiss
	nc := nodeCfg("a", []int{0, 1}, 128, 8, 0)
	if err := b.Reprogram(0, nc); err != nil {
		t.Fatal(err)
	}
	// Directory cleared: the same read misses again.
	f.issue(bus.Read, 0x4000, 0)
	b.Flush()
	v := b.Node(0)
	if v.ReadMiss != before+1 {
		t.Fatalf("read misses = %d, want %d (counters preserved, directory cleared)", v.ReadMiss, before+1)
	}
	if v.Geometry != "128KB 8-way, 128B lines" {
		t.Fatalf("geometry = %q", v.Geometry)
	}
	// Reprogram cannot rename or double-own CPUs.
	bad := nodeCfg("z", []int{0, 1}, 128, 8, 0)
	if err := b.Reprogram(0, bad); err == nil {
		t.Fatal("rename accepted")
	}
	if err := b.Reprogram(7, nc); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestMoreThan400Counters(t *testing.T) {
	// The paper: "The MemorIES board contains more than 400 counters".
	// A fully populated board (4 nodes, 12 CPUs) must honor that.
	cpus := func(lo, hi int) []int {
		var out []int
		for i := lo; i <= hi; i++ {
			out = append(out, i)
		}
		return out
	}
	b, err := NewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", cpus(0, 5), 1024, 4, 0),
		nodeCfg("b", cpus(6, 11), 1024, 4, 0),
		nodeCfg("c", cpus(0, 5), 2048, 8, 1),
		nodeCfg("d", cpus(6, 11), 2048, 8, 1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Counters().Len(); got <= 400 {
		t.Fatalf("board has %d counters, paper says more than 400", got)
	}
}

func TestDifferentProtocolsPerNode(t *testing.T) {
	// §3.2: "Different state table files could be loaded to different
	// node controller FPGAs to experiment with different coherence
	// protocols during the same measurement." Two configs of the same
	// node, one MESI one MSI: after a read miss, a local write upgrade
	// differs (E->M silent vs S->M upgrade).
	msi := nodeCfg("b", []int{0}, 64, 4, 1)
	msi.Protocol = coherence.MSI()
	b, err := NewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", []int{0}, 64, 4, 0),
		msi,
	}})
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{board: b}
	f.issue(bus.Read, 0x4000, 0)
	f.issue(bus.RWITM, 0x4000, 0)
	b.Flush()
	bank := b.Counters()
	if bank.Value("nodea.upgrades") != 0 {
		t.Fatal("MESI write-hit on E must not count an upgrade")
	}
	if bank.Value("nodeb.upgrades") != 1 {
		t.Fatal("MSI write-hit on S must count an upgrade")
	}
}

func TestDirectoryOccupancy(t *testing.T) {
	b, f := twoNodeBoard(t)
	f.issue(bus.Read, 0x4000, 0)
	f.issue(bus.RWITM, 0x8000, 0)
	b.Flush()
	if got := b.DirectoryOccupancy(0); got != 2 {
		t.Fatalf("occupancy = %d, want 2", got)
	}
	bank := b.Counters()
	if bank.Value("nodea.occupancy.E")+bank.Value("nodea.occupancy.M") != 2 {
		t.Fatalf("occupancy counters: %s", bank.Dump("nodea.occupancy"))
	}
}

func TestBoardWithHostIntegration(t *testing.T) {
	hcfg := host.DefaultConfig()
	hcfg.NumCPUs = 8
	hcfg.L2Bytes = 256 * addr.KB // small L2 so plenty of traffic escapes
	gen := workload.NewTPCC(workload.ScaledTPCCConfig(512))
	h := host.MustNew(hcfg, gen)
	b := MustNewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", []int{0, 1, 2, 3, 4, 5, 6, 7}, 4096, 4, 0),
	}})
	h.Bus().Attach(b)
	h.Run(300_000)
	b.Flush()
	v := b.Node(0)
	if v.Refs() == 0 {
		t.Fatal("board saw no traffic")
	}
	mr := v.MissRatio()
	if mr <= 0 || mr >= 1 {
		t.Fatalf("miss ratio = %v", mr)
	}
	// The paper's headline passivity claim: at real utilization the
	// buffers never overflow.
	if b.Counters().Value("buffer.overflow") != 0 {
		t.Fatal("board overflowed under a realistic host")
	}
	// Host L2 misses equal board-visible reads+writes (every L2 miss and
	// upgrade reaches the bus; castouts are separate).
	hs := h.Stats()
	if v.Refs() != hs.L2Misses+hs.Upgrades {
		t.Fatalf("board refs %d != host L2 misses %d + upgrades %d", v.Refs(), hs.L2Misses, hs.Upgrades)
	}
}

// retrier is a bus device that retries the first n transactions it sees.
type retrier struct{ left int }

func (r *retrier) BusID() int { return 30 }
func (r *retrier) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	if r.left > 0 && tx.Cmd.IsMemoryOp() {
		r.left--
		return bus.RespRetry
	}
	return bus.RespNull
}

// TestRetriedOperationsFilteredOut checks §3.3: operations rejected
// (retried) by other bus devices never occupy buffer space or touch the
// emulated directories.
func TestRetriedOperationsFilteredOut(t *testing.T) {
	b := MustNewBoard(Config{Nodes: []NodeConfig{nodeCfg("a", []int{0}, 64, 4, 0)}})
	busLine := bus.New(bus.DefaultConfig())
	busLine.Attach(b)
	r := &retrier{left: 3}
	busLine.Attach(r)

	for i := 0; i < 10; i++ {
		busLine.Issue(&bus.Transaction{Cmd: bus.Read, Addr: 0x4000, Size: 128, SrcID: 0})
		busLine.Idle(100)
	}
	b.Flush()
	v := b.Node(0)
	if got := b.Counters().Value("filter.rejected.retried"); got != 3 {
		t.Fatalf("rejected.retried = %d, want 3", got)
	}
	// 7 operations survive: 1 miss then 6 hits.
	if v.ReadMiss != 1 || v.ReadHit != 6 {
		t.Fatalf("node view after retries: %+v", v)
	}
}

func TestRealTimeModel(t *testing.T) {
	m := PaperRealTimeModel()
	// Table 3: 10 million references -> ~1 second? No: paper says 10M in
	// 1 second (from its table, at 20% utilization): 100MHz*0.2/9.6 =
	// 2.08M ops/s -> 10M refs = 4.8s. The paper's own numbers imply ~2
	// cycles per vector; Table 3 treats trace vectors arriving at 20%
	// of 100MHz directly. Assert the model is self-consistent instead.
	if m.OpsPerSecond() <= 0 {
		t.Fatal("bad rate")
	}
	d1 := m.Duration(10_000_000)
	d2 := m.Duration(20_000_000)
	if d2 <= d1 {
		t.Fatal("duration must grow with trace length")
	}
}

func TestEmulatedSeconds(t *testing.T) {
	b, f := twoNodeBoard(t)
	for i := 0; i < 10; i++ {
		f.issue(bus.Read, uint64(i)*128, 0)
	}
	b.Flush()
	sec := b.EmulatedSeconds(100)
	if sec <= 0 {
		t.Fatalf("EmulatedSeconds = %v", sec)
	}
}
