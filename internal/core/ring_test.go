package core

import (
	"sync"
	"testing"

	"memories/internal/bus"
)

// TestTxRingCapacityRounding: capacity rounds up to a power of two with
// a floor of 2, and every slot starts free.
func TestTxRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
	} {
		r := newTxRing(tc.ask)
		if got := len(r.slots); got != tc.want {
			t.Errorf("newTxRing(%d): %d slots, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestTxRingFIFO: a single producer's batches come out in enqueue
// order, and a closed drained ring reports ok=false.
func TestTxRingFIFO(t *testing.T) {
	r := newTxRing(4)
	const n = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			b := []bus.Transaction{{Seq: uint64(i)}}
			r.Enqueue(&b)
		}
		r.Close()
	}()
	for i := 0; i < n; i++ {
		b, ok := r.Dequeue()
		if !ok {
			t.Fatalf("ring closed early at %d", i)
		}
		if got := (*b)[0].Seq; got != uint64(i) {
			t.Fatalf("batch %d carries seq %d", i, got)
		}
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("Dequeue succeeded on a closed, drained ring")
	}
	<-done
}

// TestTxRingMultiProducerOrder: with several concurrent producers each
// producer's stream is still FIFO and nothing is lost or duplicated —
// the property the deterministic drain merge depends on. Run under
// -race in CI.
func TestTxRingMultiProducerOrder(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	r := newTxRing(8) // small ring: forces producers to block on full slots

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b := []bus.Transaction{{SrcID: p, Seq: uint64(i)}}
				r.Enqueue(&b)
			}
		}(p)
	}
	go func() {
		wg.Wait()
		r.Close()
	}()

	next := [producers]uint64{}
	total := 0
	for {
		b, ok := r.Dequeue()
		if !ok {
			break
		}
		tx := (*b)[0]
		if tx.Seq != next[tx.SrcID] {
			t.Fatalf("producer %d: batch seq %d, want %d", tx.SrcID, tx.Seq, next[tx.SrcID])
		}
		next[tx.SrcID]++
		total++
	}
	if total != producers*perProducer {
		t.Fatalf("drained %d batches, want %d", total, producers*perProducer)
	}
}
