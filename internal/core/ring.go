package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"memories/internal/bus"
)

// This file implements the feeder→shard handoff as a bounded
// multi-producer/single-consumer ring of transaction batches, replacing
// the buffered-channel hop. The design is the classic bounded MPMC
// queue specialized for one consumer: slots carry a per-slot sequence
// number, producers claim positions with one fetch-add on the tail, and
// every slot is written by exactly one producer per lap (the
// "single-writer" property — no slot is ever contended between two
// writers at the same position). The consumer owns the head without any
// atomics on it.
//
// Ordering: a producer's successive Enqueue calls claim strictly
// increasing positions and the consumer drains positions in order, so
// per-producer FIFO — the property the deterministic drain relies on —
// is preserved exactly as it was with a channel. A producer that claims
// position p publishes it by storing seq=p+1 into the slot *after*
// writing the batch pointer; the consumer's matching atomic load
// acquires that write. If a later producer at p+1 publishes first, the
// consumer still waits on p: global slot order is position order.
//
// Capacity bounds feeder run-ahead just like the channel's buffer did:
// a producer whose claimed slot has not been freed by the consumer
// spins (briefly), yields, and finally sleeps until the slot comes
// around.

// cacheLine is the assumed coherence-line size used to pad ring fields
// so that producer-side state (tail), consumer-side state (head), and
// each slot's sequence word live on distinct lines.
const cacheLine = 64

// ringSlot is one batch cell, padded to a full cache line so adjacent
// slots never false-share between the producer publishing slot i and
// the consumer freeing slot i-1.
type ringSlot struct {
	seq   atomic.Uint64
	batch *[]bus.Transaction
	_     [cacheLine - 16]byte
}

// txRing is the bounded MPSC batch ring. Producers call Enqueue
// (blocking when full); the single consumer calls Dequeue (blocking
// when empty) until Close has been observed with the ring drained.
type txRing struct {
	mask  uint64
	slots []ringSlot

	_    [cacheLine]byte // keep tail off the slots header's line
	tail atomic.Uint64   // next position a producer will claim

	_      [cacheLine]byte // producers bang on tail; head is consumer-only
	head   uint64          // next position the consumer will read
	closed atomic.Bool

	_ [cacheLine]byte
}

// newTxRing builds a ring with capacity rounded up to a power of two
// (minimum 2).
func newTxRing(capacity int) *txRing {
	slots := 2
	for slots < capacity {
		slots <<= 1
	}
	r := &txRing{mask: uint64(slots - 1), slots: make([]ringSlot, slots)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// ringWait is the shared backoff ladder for full-ring producers and
// empty-ring consumers: spin a little (the partner is usually one batch
// away), then yield, then sleep so an idle pipeline does not pin a CPU.
func ringWait(spin int) {
	switch {
	case spin < 64:
		// Busy-spin: the wait is usually a few hundred ns.
	case spin < 4096:
		runtime.Gosched()
	default:
		time.Sleep(50 * time.Microsecond)
	}
}

// Enqueue publishes one batch, blocking while the ring is full. Safe
// for any number of concurrent producers.
func (r *txRing) Enqueue(b *[]bus.Transaction) {
	pos := r.tail.Add(1) - 1
	slot := &r.slots[pos&r.mask]
	// The slot is free for position pos once its sequence equals pos
	// (the consumer stores pos after consuming pos-capacity).
	for spin := 0; slot.seq.Load() != pos; spin++ {
		ringWait(spin)
	}
	slot.batch = b
	slot.seq.Store(pos + 1) // publish: batch write happens-before this store
}

// Dequeue removes the next batch in position order, blocking while the
// ring is empty. It returns ok=false once the ring is closed and fully
// drained. Single consumer only.
func (r *txRing) Dequeue() (b *[]bus.Transaction, ok bool) {
	slot := &r.slots[r.head&r.mask]
	for spin := 0; ; spin++ {
		if slot.seq.Load() == r.head+1 {
			break
		}
		// Close happens only after every producer has finished, so a
		// closed ring with tail==head is permanently empty.
		if r.closed.Load() && r.tail.Load() == r.head {
			return nil, false
		}
		ringWait(spin)
	}
	b = slot.batch
	slot.batch = nil
	// Free the slot for the producer that will claim position
	// head+capacity on the next lap.
	slot.seq.Store(r.head + r.mask + 1)
	r.head++
	return b, true
}

// Close marks the ring finished. It must only be called after every
// producer has returned from its last Enqueue (the pipeline guarantees
// this: feeders are flushed before Stop).
func (r *txRing) Close() { r.closed.Store(true) }
