package core

import (
	"fmt"
	"io"

	"memories/internal/checkpoint"
)

// RestoreReport summarizes ECC repairs made while loading directory
// images — new events observed at restore time, counted into the
// board's ecc counters exactly as a scrub pass would.
type RestoreReport struct {
	ECCCorrected   uint64
	ECCInvalidated uint64
}

// fingerprint describes everything about the board configuration that a
// snapshot must match to be applicable: node shapes, protocols, snoop
// groups, CPU assignments, and the behavioral switches that change the
// transaction stream's effect.
func (b *Board) fingerprint() string {
	s := fmt.Sprintf("depth=%d retry=%v ecc=%v scrub=%d profile=%d",
		b.cfg.BufferDepth, b.cfg.RetryOnOverflow, b.cfg.ECC,
		b.cfg.ScrubIntervalCycles, b.cfg.ProfileBucketCycles)
	for _, n := range b.nodes {
		s += fmt.Sprintf(";node %s geom=%s policy=%d proto=%s group=%d cpus=%v sdram=%+v",
			n.cfg.Name, n.cfg.Geometry, n.cfg.Policy, n.cfg.Protocol.Name,
			n.cfg.Group, n.cfg.CPUs, n.cfg.SDRAM)
	}
	return s
}

// AppendSections writes the board's checkpoint sections to an open
// container writer under the given name prefix. The prefix keeps
// multiple boards (shards, or a board alongside a host) apart in one
// file. The board must be quiescent: buffered transactions are part of
// the bus's in-flight state and are flushed, not serialized.
func (b *Board) AppendSections(cw *checkpoint.Writer, prefix string) error {
	if b.PendingDepth() != 0 {
		return fmt.Errorf("core: checkpoint with %d buffered transactions (Flush first)", b.PendingDepth())
	}
	var meta checkpoint.Enc
	meta.Str(b.fingerprint())
	if err := cw.Section(prefix+"board.meta", meta.Bytes()); err != nil {
		return err
	}
	var st checkpoint.Enc
	st.U64(b.lastCycle)
	st.U64(b.nextScrub)
	b.bank.SaveState(&st)
	if err := cw.Section(prefix+"board.state", st.Bytes()); err != nil {
		return err
	}
	for i, n := range b.nodes {
		var dir checkpoint.Enc
		n.dir.SaveState(&dir)
		if err := cw.Section(fmt.Sprintf("%sboard.node%d.dir", prefix, i), dir.Bytes()); err != nil {
			return err
		}
		var tags checkpoint.Enc
		n.tags.SaveState(&tags)
		if err := cw.Section(fmt.Sprintf("%sboard.node%d.tags", prefix, i), tags.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCheckpoint streams a complete board checkpoint to w.
func (b *Board) WriteCheckpoint(w io.Writer) error {
	cw, err := checkpoint.NewWriter(w)
	if err != nil {
		return err
	}
	if err := b.AppendSections(cw, ""); err != nil {
		return err
	}
	return cw.Close()
}

// WriteCheckpointFile writes a board checkpoint crash-safely: temp
// file, fsync, atomic rename.
func (b *Board) WriteCheckpointFile(path string) error {
	return checkpoint.WriteFileAtomic(path, func(cw *checkpoint.Writer) error {
		return b.AppendSections(cw, "")
	})
}

// RestoreBoard loads a snapshot written by WriteCheckpoint into an
// identically configured board. Counter values land in the existing
// bank, so cached counter pointers (the board's own, and any attached
// obs mirror's) stay live. Directory words are ECC-verified as they
// load; repairs are counted into the per-node ecc counters and
// reported. Trace capture and miss-ratio profiles are not part of the
// snapshot; capture memory is reset to empty.
func RestoreBoard(b *Board, snap *checkpoint.Snapshot) (RestoreReport, error) {
	return restoreBoardSections(b, snap, "")
}

func restoreBoardSections(b *Board, snap *checkpoint.Snapshot, prefix string) (RestoreReport, error) {
	var rep RestoreReport
	md, err := snap.Dec(prefix + "board.meta")
	if err != nil {
		return rep, err
	}
	if got, want := md.Str(), b.fingerprint(); got != want {
		return rep, md.Failf("board configuration mismatch: snapshot %q, this board %q", got, want)
	}
	if err := md.Close(); err != nil {
		return rep, err
	}
	st, err := snap.Dec(prefix + "board.state")
	if err != nil {
		return rep, err
	}
	lastCycle := st.U64()
	nextScrub := st.U64()
	if err := b.bank.RestoreState(st); err != nil {
		return rep, err
	}
	if err := st.Close(); err != nil {
		return rep, err
	}
	b.lastCycle = lastCycle
	b.nextScrub = nextScrub
	b.queue = b.queue[:0]
	b.qhead = 0
	b.justEnqueued = false
	if b.capture != nil {
		b.capture.Reset()
	}
	for i, n := range b.nodes {
		dd, err := snap.Dec(fmt.Sprintf("%sboard.node%d.dir", prefix, i))
		if err != nil {
			return rep, err
		}
		crep, err := n.dir.RestoreState(dd)
		if err != nil {
			return rep, err
		}
		if err := dd.Close(); err != nil {
			return rep, err
		}
		if crep.Corrected > 0 {
			n.cECCCorrected.Add(crep.Corrected)
		}
		if crep.Invalidated > 0 {
			n.cECCInvalidated.Add(crep.Invalidated)
		}
		rep.ECCCorrected += crep.Corrected
		rep.ECCInvalidated += crep.Invalidated
		td, err := snap.Dec(fmt.Sprintf("%sboard.node%d.tags", prefix, i))
		if err != nil {
			return rep, err
		}
		if err := n.tags.RestoreState(td); err != nil {
			return rep, err
		}
		if err := td.Close(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// AppendSections writes every shard's sections under shard<i>. prefixes
// plus a sharded.meta header. The pipeline must be quiescent: either
// never started, or stopped.
func (sb *ShardedBoard) AppendSections(cw *checkpoint.Writer, prefix string) error {
	if sb.started && !sb.stopped {
		return fmt.Errorf("core: sharded board checkpoint requires a quiescent pipeline (Stop first)")
	}
	var meta checkpoint.Enc
	meta.U32(uint32(len(sb.shards)))
	if err := cw.Section(prefix+"sharded.meta", meta.Bytes()); err != nil {
		return err
	}
	for i, sh := range sb.shards {
		if err := sh.AppendSections(cw, fmt.Sprintf("%sshard%d.", prefix, i)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCheckpoint streams a sharded-board checkpoint to w.
func (sb *ShardedBoard) WriteCheckpoint(w io.Writer) error {
	cw, err := checkpoint.NewWriter(w)
	if err != nil {
		return err
	}
	if err := sb.AppendSections(cw, ""); err != nil {
		return err
	}
	return cw.Close()
}

// RestoreShardedBoard loads a sharded snapshot into an identically
// configured (and not yet started) sharded board.
func RestoreShardedBoard(sb *ShardedBoard, snap *checkpoint.Snapshot) (RestoreReport, error) {
	var rep RestoreReport
	if sb.started {
		return rep, fmt.Errorf("core: restore into a started sharded board")
	}
	md, err := snap.Dec("sharded.meta")
	if err != nil {
		return rep, err
	}
	if got, want := int(md.U32()), len(sb.shards); got != want {
		return rep, md.Failf("shard count %d != configured %d", got, want)
	}
	if err := md.Close(); err != nil {
		return rep, err
	}
	for i, sh := range sb.shards {
		srep, err := restoreBoardSections(sh, snap, fmt.Sprintf("shard%d.", i))
		if err != nil {
			return rep, err
		}
		rep.ECCCorrected += srep.ECCCorrected
		rep.ECCInvalidated += srep.ECCInvalidated
	}
	return rep, nil
}
