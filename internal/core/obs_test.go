package core

import (
	"io"
	"sync"
	"testing"
	"time"

	"memories/internal/obs"
	"memories/internal/workload"
)

// TestBoardObsAllocFree is the ISSUE 5 hot-path acceptance criterion:
// with a registry mirror and a tracer attached, Snoop and SnoopBatch
// stay zero-allocation — tracing disabled (the steady state), tracing
// enabled (ring writes are in-place), and with a sampler actively
// requesting mirror publishes.
func TestBoardObsAllocFree(t *testing.T) {
	reg := obs.NewRegistry()
	hub := obs.NewTraceHub(io.Discard)
	b := MustNewBoard(shardTestConfig())
	if err := b.Observe(reg, hub, "board", 4096); err != nil {
		t.Fatal(err)
	}
	txs := shardTestStream(4096)
	for i := range txs {
		b.Snoop(&txs[i])
	}
	m, tr := b.Mirror(), b.Tracer()
	if m == nil || tr == nil {
		t.Fatal("Observe did not attach mirror and tracer")
	}

	cycle := txs[len(txs)-1].Cycle
	i := 0
	snoopOne := func() {
		cycle += 48
		tx := txs[i%len(txs)]
		tx.Cycle = cycle
		b.Snoop(&tx)
		i++
	}

	t.Run("snoop/tracing-off", func(t *testing.T) {
		if allocs := testing.AllocsPerRun(10000, snoopOne); allocs != 0 {
			t.Fatalf("Snoop with obs attached allocates %.2f/op, want 0", allocs)
		}
	})
	t.Run("snoop/mirror-publish", func(t *testing.T) {
		before := m.Publishes()
		if allocs := testing.AllocsPerRun(2000, func() {
			m.Request() // sampler asking for a publish every transaction
			snoopOne()
		}); allocs != 0 {
			t.Fatalf("Snoop servicing mirror requests allocates %.2f/op, want 0", allocs)
		}
		if m.Publishes() == before {
			t.Fatal("publish path was not exercised")
		}
	})
	t.Run("snoop/tracing-on", func(t *testing.T) {
		tr.Enable(obs.Filter{})
		defer tr.Disable()
		if allocs := testing.AllocsPerRun(10000, snoopOne); allocs != 0 {
			t.Fatalf("Snoop with tracing enabled allocates %.2f/op, want 0", allocs)
		}
		if tr.Captured() == 0 {
			t.Fatal("tracer captured nothing")
		}
	})

	batch := txs[:64:64]
	snoopBatch := func() {
		for j := range batch {
			cycle += 48
			batch[j].Cycle = cycle
		}
		b.SnoopBatch(batch)
	}
	t.Run("batch/tracing-off", func(t *testing.T) {
		if allocs := testing.AllocsPerRun(500, snoopBatch); allocs != 0 {
			t.Fatalf("SnoopBatch with obs attached allocates %.2f/run, want 0", allocs)
		}
	})
	t.Run("batch/mirror-publish", func(t *testing.T) {
		if allocs := testing.AllocsPerRun(500, func() {
			m.Request()
			snoopBatch()
		}); allocs != 0 {
			t.Fatalf("SnoopBatch servicing mirror requests allocates %.2f/run, want 0", allocs)
		}
	})
	t.Run("batch/tracing-on", func(t *testing.T) {
		tr.Enable(obs.Filter{})
		defer tr.Disable()
		if allocs := testing.AllocsPerRun(500, snoopBatch); allocs != 0 {
			t.Fatalf("SnoopBatch with tracing enabled allocates %.2f/run, want 0", allocs)
		}
	})
}

// TestObserveDoesNotPerturbCounters: the same stream with and without
// an attached registry/tracer yields bit-identical counters — the
// observability layer observes, it never steers.
func TestObserveDoesNotPerturbCounters(t *testing.T) {
	txs := shardTestStream(20_000)

	plain := MustNewBoard(shardTestConfig())
	for i := range txs {
		tx := txs[i]
		plain.Snoop(&tx)
	}
	plain.Flush()

	reg := obs.NewRegistry()
	hub := obs.NewTraceHub(io.Discard)
	observed := MustNewBoard(shardTestConfig())
	if err := observed.Observe(reg, hub, "board", 256); err != nil {
		t.Fatal(err)
	}
	observed.Tracer().Enable(obs.Filter{})
	for i := range txs {
		tx := txs[i]
		observed.Snoop(&tx)
		if i%1000 == 0 {
			observed.Mirror().Request()
		}
	}
	observed.Flush()
	observed.PublishObs()

	diffSnapshots(t, plain.Counters().Snapshot(), observed.Counters().Snapshot(), "observed")

	// The final registry snapshot equals the bank exactly.
	snap := reg.Snapshot()
	for name, want := range plain.Counters().Snapshot() {
		if got := snap.Value("board." + name); got != want {
			t.Errorf("registry board.%s = %d, bank %d", name, got, want)
		}
	}
}

// TestObsConcurrentSamplerStress is the ISSUE 5 race-stress criterion,
// run under -race in CI: eight producers drive a sharded pipeline via
// SnoopBatch while a sampler snapshots the registry, the trace hub
// drains live rings, and an extra reader renders Prometheus text — all
// concurrently. After quiesce the folded registry view must equal the
// aggregated bank counters exactly.
func TestObsConcurrentSamplerStress(t *testing.T) {
	const producers = 8
	perProducer := 40_000
	if testing.Short() {
		perProducer = 8_000
	}

	reg := obs.NewRegistry()
	hub := obs.NewTraceHub(io.Discard)
	sb, err := NewShardedBoard(stressConfig(), ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Observe(reg, hub, "board", 1024); err != nil {
		t.Fatal(err)
	}
	hub.Enable(obs.Filter{})
	sampler := &obs.Sampler{Reg: reg, Interval: time.Millisecond, Hub: hub, JSONL: io.Discard}
	sampler.Start()

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.Request()
			if err := obs.WriteProm(io.Discard, reg.Snapshot()); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	sb.Start()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			f := sb.NewFeeder()
			rng := workload.NewRNG(uint64(300 + p))
			for i := 0; i < perProducer; i++ {
				f.Snoop(stressTx(p, i, rng))
			}
			f.Flush()
		}(p)
	}
	wg.Wait()
	sb.Stop()
	close(stop)
	readerWG.Wait()
	hub.Disable()
	sampler.Stop()

	// Quiesced: force-publish and fold the per-shard registry values back
	// into the monolithic view; every counter must match the banks.
	sb.PublishObs()
	fold := FoldShardCounters(reg.Snapshot(), "board")
	bank := sb.Counters().Snapshot()
	for name, want := range bank {
		if fold[name] != want {
			t.Errorf("folded %s = %d, bank %d", name, fold[name], want)
		}
	}
	for name := range fold {
		if _, ok := bank[name]; !ok {
			t.Errorf("folded view has unknown counter %s", name)
		}
	}

	// Every accepted transaction was offered to exactly one shard tracer:
	// captured + dropped must equal the accepted total.
	captured, dropped := hub.Totals()
	if accepted := bank["filter.accepted"]; captured+dropped != accepted {
		t.Errorf("tracer saw %d (%d captured + %d dropped), accepted %d",
			captured+dropped, captured, dropped, accepted)
	}
	if hub.Drained() == 0 {
		t.Error("live drain never ran")
	}
}

// TestObserveAttachmentErrors covers the wiring failure modes: duplicate
// registry prefixes (board and sharded), attaching after Start, and the
// manual setter/getter pairs used by the console.
func TestObserveAttachmentErrors(t *testing.T) {
	reg := obs.NewRegistry()
	b := MustNewBoard(shardTestConfig())
	if err := b.Observe(reg, nil, "board", 0); err != nil {
		t.Fatal(err)
	}
	b2 := MustNewBoard(shardTestConfig())
	if err := b2.Observe(reg, nil, "board", 0); err == nil {
		t.Fatal("duplicate prefix did not error")
	}

	sb, err := NewShardedBoard(stressConfig(), ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Observe(reg, nil, "pipe", 0); err != nil {
		t.Fatal(err)
	}
	sb2, err := NewShardedBoard(stressConfig(), ShardedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sb2.Observe(reg, nil, "pipe", 0); err == nil {
		t.Fatal("sharded duplicate shard prefix did not error")
	}
	sb.Start()
	if err := sb.Observe(reg, nil, "late", 0); err == nil {
		t.Fatal("Observe after Start did not error")
	}
	sb.Stop()

	// The console wires mirror/tracer by hand via the setters.
	b3 := MustNewBoard(shardTestConfig())
	m := obs.NewMirror(b.bank)
	tr := obs.NewTracer(8)
	b3.SetMirror(m)
	b3.SetTracer(tr)
	if b3.Mirror() != m || b3.Tracer() != tr {
		t.Fatal("setters did not round-trip")
	}
	b3.PublishObs()
}

// TestFoldShardCountersIgnoresForeign pins FoldShardCounters' prefix
// handling: entries outside the prefix, and shard entries with no
// trailing counter name, are skipped.
func TestFoldShardCountersIgnoresForeign(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("other.shard0.miss").Add(5)
	reg.Counter("board.shard0").Add(7) // no trailing ".<counter>"
	reg.Counter("board.shard0.miss").Add(3)
	reg.Counter("board.shard1.miss").Add(4)
	fold := FoldShardCounters(reg.Snapshot(), "board")
	if len(fold) != 1 || fold["miss"] != 7 {
		t.Fatalf("fold = %v, want miss=7 only", fold)
	}
}
