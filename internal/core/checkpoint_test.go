package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"memories/internal/bus"
	"memories/internal/checkpoint"
	"memories/internal/workload"
)

// driveRandom feeds n pseudo-random transactions through a feeder.
func driveRandom(f *feeder, seed uint64, n int) {
	rng := workload.NewRNG(seed)
	for i := 0; i < n; i++ {
		cmd := bus.Read
		switch rng.Intn(4) {
		case 1:
			cmd = bus.RWITM
		case 2:
			cmd = bus.Castout
		}
		f.issue(cmd, uint64(rng.Intn(1<<22))&^127, int(rng.Intn(4)))
	}
	f.board.Flush()
}

// checkpointBytes renders a board to an in-memory checkpoint image.
func checkpointBytes(t *testing.T, b *Board) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBoardCheckpointRoundTrip is the resume-equivalence oracle at the
// board layer: a board checkpointed mid-stream and restored into a
// fresh board must match the original counter-for-counter, both at the
// restore point and after both process the identical remaining stream.
func TestBoardCheckpointRoundTrip(t *testing.T) {
	orig, f := twoNodeBoard(t)
	driveRandom(f, 11, 4000)
	img := checkpointBytes(t, orig)
	snap, err := checkpoint.Decode(img)
	if err != nil {
		t.Fatal(err)
	}

	fresh, _ := twoNodeBoard(t)
	if _, err := RestoreBoard(fresh, snap); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Counters().Snapshot(), orig.Counters().Snapshot(); len(got) != len(want) {
		t.Fatalf("counter count %d != %d", len(got), len(want))
	}
	for name, want := range orig.Counters().Snapshot() {
		if got := fresh.Counters().Value(name); got != want {
			t.Fatalf("restored counter %s = %d, want %d", name, got, want)
		}
	}
	if fresh.LastCycle() != orig.LastCycle() {
		t.Fatalf("lastCycle %d != %d", fresh.LastCycle(), orig.LastCycle())
	}

	// Continue both boards through the same tail; every counter must
	// stay identical (this exercises the restored directory words and
	// tag-store horizons, not just the counters).
	f2 := &feeder{board: fresh, cycle: f.cycle}
	driveRandom(f, 22, 4000)
	driveRandom(f2, 22, 4000)
	for name, want := range orig.Counters().Snapshot() {
		if got := fresh.Counters().Value(name); got != want {
			t.Fatalf("post-resume counter %s = %d, want %d", name, got, want)
		}
	}
	for i := 0; i < orig.NumNodes(); i++ {
		if got, want := fresh.DirectoryResident(i), orig.DirectoryResident(i); got != want {
			t.Fatalf("node %d resident %d != %d", i, got, want)
		}
	}
}

// TestBoardCheckpointConfigMismatch: a snapshot must not restore into a
// board with a different shape, and the rejection is a CorruptError.
func TestBoardCheckpointConfigMismatch(t *testing.T) {
	orig, f := twoNodeBoard(t)
	driveRandom(f, 3, 500)
	snap, err := checkpoint.Decode(checkpointBytes(t, orig))
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", []int{0, 1}, 128, 4, 0), // different size
		nodeCfg("b", []int{2, 3}, 64, 4, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RestoreBoard(other, snap)
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) || ce.Section != "board.meta" {
		t.Fatalf("err = %v, want board.meta CorruptError", err)
	}
}

// TestBoardCheckpointCorruptSection flips one byte of a node directory
// payload and requires the loader to report that section by name and
// offset rather than restore garbage.
func TestBoardCheckpointCorruptSection(t *testing.T) {
	orig, f := twoNodeBoard(t)
	driveRandom(f, 5, 500)
	img := checkpointBytes(t, orig)
	snap, err := checkpoint.Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := snap.Section("board.node0.dir")
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), img...)
	payloadStart := sec.Offset + 1 + int64(len(sec.Name)) + 12
	mut[payloadStart+16] ^= 0x01
	_, err = checkpoint.Decode(mut)
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Section != "board.node0.dir" {
		t.Errorf("Section = %q, want board.node0.dir", ce.Section)
	}
	if ce.Offset != sec.Offset {
		t.Errorf("Offset = %d, want %d", ce.Offset, sec.Offset)
	}
	if !strings.Contains(ce.Error(), "board.node0.dir") {
		t.Errorf("Error() = %q does not name the section", ce.Error())
	}
}

// TestBoardCheckpointECCRepairOnLoad corrupts a directory word (the
// soft-error model: bits flip without the check byte following) before
// the save; the restore must repair it through the SECDED datapath and
// count the correction.
func TestBoardCheckpointECCRepairOnLoad(t *testing.T) {
	mk := func() (*Board, *feeder) {
		b, err := NewBoard(Config{
			ECC: true,
			Nodes: []NodeConfig{
				nodeCfg("a", []int{0, 1}, 64, 4, 0),
				nodeCfg("b", []int{2, 3}, 64, 4, 0),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b, &feeder{board: b}
	}
	orig, f := mk()
	driveRandom(f, 7, 2000)
	// Single-bit tag flip: correctable on load.
	orig.CorruptDirectory(0, 10, 1<<5, 0)
	snap, err := checkpoint.Decode(checkpointBytes(t, orig))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := mk()
	rep, err := RestoreBoard(fresh, snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ECCCorrected != 1 || rep.ECCInvalidated != 0 {
		t.Fatalf("report = %+v, want 1 corrected", rep)
	}
	base := orig.Counters().Value("nodea.ecc.corrected")
	if got := fresh.Counters().Value("nodea.ecc.corrected"); got != base+1 {
		t.Fatalf("ecc.corrected = %d, want %d", got, base+1)
	}
}

// TestShardedCheckpointRoundTrip round-trips a never-started sharded
// board shard by shard.
func TestShardedCheckpointRoundTrip(t *testing.T) {
	mk := func() *ShardedBoard {
		sb, err := NewShardedBoard(Config{Nodes: []NodeConfig{
			nodeCfg("a", []int{0, 1}, 64, 4, 0),
		}}, ShardedConfig{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return sb
	}
	orig := mk()
	rng := workload.NewRNG(9)
	for i := 0; i < 3000; i++ {
		orig.Snoop(&bus.Transaction{
			Cmd: bus.Read, Addr: uint64(rng.Intn(1<<22)) &^ 127,
			Size: 128, SrcID: int(rng.Intn(2)), Cycle: uint64(i * 100),
		})
	}
	orig.Flush()
	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	fresh := mk()
	if _, err := RestoreShardedBoard(fresh, snap); err != nil {
		t.Fatal(err)
	}
	for name, want := range orig.Counters().Snapshot() {
		if got := fresh.Counters().Value(name); got != want {
			t.Fatalf("counter %s = %d, want %d", name, got, want)
		}
	}
}

// TestBoardCheckpointRequiresQuiescence: buffered transactions are bus
// in-flight state and must not silently vanish into a snapshot.
func TestBoardCheckpointRequiresQuiescence(t *testing.T) {
	b, err := NewBoard(Config{Nodes: []NodeConfig{
		nodeCfg("a", []int{0}, 64, 4, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Two transactions in the same cycle: the second stays buffered
	// behind SDRAM pacing.
	b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: 0, Size: 128, SrcID: 0, Cycle: 1})
	b.Snoop(&bus.Transaction{Cmd: bus.Read, Addr: 4096, Size: 128, SrcID: 0, Cycle: 1})
	if b.PendingDepth() == 0 {
		t.Skip("pacing did not buffer; nothing to assert")
	}
	var buf bytes.Buffer
	if err := b.WriteCheckpoint(&buf); err == nil {
		t.Fatal("checkpoint accepted with buffered transactions")
	}
}

// WriteCheckpointFile is the atomic on-disk wrapper: the file it leaves
// behind must read back and restore exactly like the in-memory image.
func TestBoardWriteCheckpointFile(t *testing.T) {
	orig, f := twoNodeBoard(t)
	driveRandom(f, 23, 2000)
	path := filepath.Join(t.TempDir(), "board.ckpt")
	if err := orig.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := twoNodeBoard(t)
	rep, err := RestoreBoard(fresh, snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ECCCorrected != 0 || rep.ECCInvalidated != 0 {
		t.Fatalf("clean file reported ECC repairs: %+v", rep)
	}
	want := orig.Counters().Snapshot()
	for name, v := range fresh.Counters().Snapshot() {
		if v != want[name] {
			t.Fatalf("counter %s = %d, want %d", name, v, want[name])
		}
	}
}
