package core

import (
	"testing"
	"testing/quick"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/host"
	"memories/internal/workload"
)

// checkSingleDirtyOwner verifies that within each snoop group, no line is
// dirty in more than one node's directory — the fundamental coherence
// invariant of an invalidation protocol.
func checkSingleDirtyOwner(t *testing.T, b *Board) {
	t.Helper()
	type key struct {
		group int
		line  uint64
	}
	dirtyOwner := map[key]int{}
	for i := 0; i < b.NumNodes(); i++ {
		group := b.NodeGroup(i)
		b.ForEachLine(i, func(line uint64, st coherence.State) {
			if !st.IsDirty() {
				return
			}
			k := key{group, line}
			if prev, dup := dirtyOwner[k]; dup {
				t.Fatalf("line %#x dirty in nodes %d and %d of group %d", line, prev, i, group)
			}
			dirtyOwner[k] = i
		})
	}
}

// checkDirtySharedExclusion verifies no line is simultaneously dirty in
// one node and valid in another of the same group after a write — i.e.
// writes really did invalidate peers. (Reads of a dirty line legitimately
// leave S copies beside an O owner under MOESI, so this check runs with
// MESI only.)
func checkMESIDirtyExclusive(t *testing.T, b *Board) {
	t.Helper()
	type key struct {
		group int
		line  uint64
	}
	holders := map[key][]coherence.State{}
	for i := 0; i < b.NumNodes(); i++ {
		group := b.NodeGroup(i)
		b.ForEachLine(i, func(line uint64, st coherence.State) {
			k := key{group, line}
			holders[k] = append(holders[k], st)
		})
	}
	for k, states := range holders {
		dirty := 0
		for _, st := range states {
			if st.IsDirty() {
				dirty++
			}
		}
		if dirty > 0 && len(states) > 1 {
			t.Fatalf("line %#x in group %d held by %d nodes with a dirty copy: %v",
				k.line, k.group, len(states), states)
		}
	}
}

// hostDrivenBoard runs a board against a real (coherent) host-generated
// bus stream. Raw random command streams can violate bus preconditions
// that a coherent machine never produces (e.g. a CPU casting out a line
// another node's CPU owns dirty), so invariants are only meaningful over
// host traffic.
func hostDrivenBoard(t *testing.T, protocol func() *coherence.Table, refs uint64) *Board {
	t.Helper()
	mkNode := func(name string, cpus []int, kb int64, assoc, group int) NodeConfig {
		return NodeConfig{
			Name:     name,
			CPUs:     cpus,
			Geometry: addr.MustGeometry(kb*addr.KB, 128, assoc),
			Policy:   cache.LRU,
			Protocol: protocol(),
			Group:    group,
		}
	}
	b := MustNewBoard(Config{Nodes: []NodeConfig{
		mkNode("a", []int{0, 1, 2, 3}, 256, 4, 0),
		mkNode("b", []int{4, 5, 6, 7}, 128, 2, 0),
		mkNode("c", []int{0, 1, 2, 3, 4, 5, 6, 7}, 512, 8, 1),
	}})
	hcfg := host.DefaultConfig()
	hcfg.L2Bytes = 64 * addr.KB // small L2: plenty of bus traffic
	gen := workload.NewZipfian(workload.ZipfConfig{
		NumCPUs: 8, FootprintByte: 8 * addr.MB, WriteFraction: 0.4, Seed: 77,
	})
	h := host.MustNew(hcfg, gen)
	h.Bus().Attach(b)
	h.Run(refs)
	b.Flush()
	return b
}

func TestCoherenceInvariantsUnderHostTraffic(t *testing.T) {
	b := hostDrivenBoard(t, coherence.MESI, 200_000)
	checkSingleDirtyOwner(t, b)
	checkMESIDirtyExclusive(t, b)
}

func TestMSIInvariantsUnderHostTraffic(t *testing.T) {
	b := hostDrivenBoard(t, coherence.MSI, 150_000)
	checkSingleDirtyOwner(t, b)
	checkMESIDirtyExclusive(t, b)
}

func TestMOESISingleDirtyOwnerInvariant(t *testing.T) {
	// MOESI allows S copies beside an Owned line, but never two dirty
	// owners.
	b := hostDrivenBoard(t, coherence.MOESI, 150_000)
	checkSingleDirtyOwner(t, b)
}

// TestBoardCountersConsistency property: read.hit + read.miss equals the
// satisfied-* total for reads+writes, for random command streams.
func TestBoardCountersConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		b := MustNewBoard(Config{Nodes: []NodeConfig{
			nodeCfg("a", []int{0, 1, 2, 3}, 64, 4, 0),
		}})
		rng := workload.NewRNG(seed)
		cmds := []bus.Command{bus.Read, bus.RWITM, bus.DClaim, bus.Castout, bus.IORead}
		cycle := uint64(0)
		for i := 0; i < 5000; i++ {
			cycle += 1 + uint64(rng.Intn(100))
			b.Snoop(&bus.Transaction{
				Cmd:   cmds[rng.Intn(int64(len(cmds)))],
				Addr:  uint64(rng.Intn(1<<20)) &^ 127,
				Size:  128,
				SrcID: int(rng.Intn(4)),
				Cycle: cycle,
			})
		}
		b.Flush()
		v := b.Node(0)
		return v.Refs() == v.SatL3+v.SatModInt+v.SatShrInt+v.SatMemory &&
			v.SatL3 == v.ReadHit+v.WriteHit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
