package core

import (
	"fmt"

	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/sdram"
	"memories/internal/stats"
)

// node is one emulated shared-cache node controller (one FPGA plus its
// four SDRAM DIMMs).
type node struct {
	board *Board
	cfg   NodeConfig
	// eng is the compiled protocol — the dense transition array the
	// controller indexes directly, standing in for the map file loaded
	// into the node controller FPGA (paper §3.2). Compile has proven
	// every reachable cell defined, so lookups are branch-free.
	eng  *coherence.Engine
	dir  *cache.Cache    // tag/state directory; states are coherence.State
	tags *sdram.TagStore // timing model pacing directory operations
	prof *stats.TimeSeries

	// Cached counters (hot path).
	cReadHit, cReadMiss   *stats.Counter
	cWriteHit, cWriteMiss *stats.Counter
	cCastIn, cCastAlloc   *stats.Counter
	cSatL3, cSatModInt    *stats.Counter
	cSatShrInt, cSatMem   *stats.Counter
	cInvalidations        *stats.Counter
	cWritebacks           *stats.Counter
	cEvictions            *stats.Counter
	cEvictDirty           *stats.Counter
	cSnoopReadHit         *stats.Counter
	cSnoopWriteHit        *stats.Counter
	cIntervModSup         *stats.Counter
	cIntervShrSup         *stats.Counter
	cUpgrades             *stats.Counter
	cECCCorrected         *stats.Counter
	cECCInvalidated       *stats.Counter
	cWildState            *stats.Counter
	// perCPUHit/perCPUMiss are bus-ID-indexed dense slices (nil holes
	// for IDs this node does not own); the hot path indexes, never maps.
	perCPUHit  []*stats.Counter
	perCPUMiss []*stats.Counter
	// cTransition counts every (operation, prior state, snoop input)
	// lookup the controller performs — the fine-grained event counters
	// that put the hardware board above 400 counters in total. Snoop-side
	// operations index SnoopNone.
	cTransition [coherence.NumOps][coherence.NumStates][coherence.NumSnoopIns]*stats.Counter
}

func newNode(b *Board, nc NodeConfig, profileBucket uint64) (*node, error) {
	if nc.Protocol == nil {
		return nil, fmt.Errorf("core: node %q has no protocol table", nc.Name)
	}
	eng, err := coherence.Compile(nc.Protocol)
	if err != nil {
		return nil, fmt.Errorf("core: node %q: %w", nc.Name, err)
	}
	if len(nc.CPUs) == 0 {
		return nil, fmt.Errorf("core: node %q owns no CPUs", nc.Name)
	}
	for _, id := range nc.CPUs {
		if id < 0 || id > MaxBusID {
			return nil, fmt.Errorf("core: node %q bus ID %d outside 0..%d", nc.Name, id, MaxBusID)
		}
	}
	dir, err := cache.New(cache.Config{Geometry: nc.Geometry, Policy: nc.Policy, ECC: b.cfg.ECC})
	if err != nil {
		return nil, fmt.Errorf("core: node %q: %v", nc.Name, err)
	}
	sc := nc.SDRAM
	if sc.Banks == 0 {
		sc = sdram.DefaultConfig()
	}
	n := &node{
		board: b,
		cfg:   nc,
		eng:   eng,
		dir:   dir,
		tags:  sdram.New(sc),
	}
	if profileBucket > 0 {
		n.prof = stats.NewTimeSeries(profileBucket)
	}
	n.initCounters(b.bank)
	return n, nil
}

func (n *node) initCounters(bank *stats.Bank) {
	p := "node" + n.cfg.Name + "."
	n.cReadHit = bank.Counter(p + "read.hit")
	n.cReadMiss = bank.Counter(p + "read.miss")
	n.cWriteHit = bank.Counter(p + "write.hit")
	n.cWriteMiss = bank.Counter(p + "write.miss")
	n.cCastIn = bank.Counter(p + "castout.absorbed")
	n.cCastAlloc = bank.Counter(p + "castout.allocated")
	n.cSatL3 = bank.Counter(p + "satisfied.l3")
	n.cSatModInt = bank.Counter(p + "satisfied.mod-int")
	n.cSatShrInt = bank.Counter(p + "satisfied.shr-int")
	n.cSatMem = bank.Counter(p + "satisfied.memory")
	n.cInvalidations = bank.Counter(p + "snoop.invalidated")
	n.cWritebacks = bank.Counter(p + "writeback")
	n.cEvictions = bank.Counter(p + "evictions")
	n.cEvictDirty = bank.Counter(p + "evictions.dirty")
	n.cSnoopReadHit = bank.Counter(p + "snoop.read.hit")
	n.cSnoopWriteHit = bank.Counter(p + "snoop.write.hit")
	n.cIntervModSup = bank.Counter(p + "intervention.supplied.mod")
	n.cIntervShrSup = bank.Counter(p + "intervention.supplied.shr")
	n.cUpgrades = bank.Counter(p + "upgrades")
	n.cECCCorrected = bank.Counter(p + "ecc.corrected")
	n.cECCInvalidated = bank.Counter(p + "ecc.invalidated")
	n.cWildState = bank.Counter(p + "ecc.wild-state")
	maxID := 0
	for _, id := range n.cfg.CPUs {
		if id > maxID {
			maxID = id
		}
	}
	n.perCPUHit = make([]*stats.Counter, maxID+1)
	n.perCPUMiss = make([]*stats.Counter, maxID+1)
	for _, id := range n.cfg.CPUs {
		n.perCPUHit[id] = bank.Counter(fmt.Sprintf("%scpu%02d.hit", p, id))
		n.perCPUMiss[id] = bank.Counter(fmt.Sprintf("%scpu%02d.miss", p, id))
	}
	// Per-state occupancy counters exist for console dumps even though
	// they are computed on demand.
	for st := 1; st < coherence.NumStates; st++ {
		bank.Counter(p + "occupancy." + coherence.State(st).String())
	}
	for op := 0; op < coherence.NumOps; op++ {
		for st := 0; st < coherence.NumStates; st++ {
			for sn := 0; sn < coherence.NumSnoopIns; sn++ {
				name := fmt.Sprintf("%sevent.%s.%s.%s",
					p, coherence.Op(op), coherence.State(st), coherence.SnoopIn(sn))
				n.cTransition[op][st][sn] = bank.Counter(name)
			}
		}
	}
}

// setOf maps an address to this node's directory set (for SDRAM banking).
func (n *node) setOf(a uint64) int64 { return n.cfg.Geometry.Index(a) }

// sanitize guards the protocol lookup against corrupted directory states:
// an injected (or real) soft error can leave a state byte outside the
// compiled protocol's reachable state space — including states that are
// legal for some other protocol (Owned under MESI, Exclusive under MSI)
// but that this table can never produce. A wild state means the entry is
// garbage, so the controller drops the line — the same repair the scrub
// pass applies to uncorrectable entries — counts the event, and proceeds
// as a miss.
func (n *node) sanitize(a uint64, cur coherence.State) coherence.State {
	if n.eng.Uses(cur) || cur == coherence.Invalid {
		return cur
	}
	n.cWildState.Inc()
	n.dir.Invalidate(a)
	return coherence.Invalid
}

// opFor classifies a bus command as a protocol operation.
func opFor(cmd bus.Command, local bool) (coherence.Op, bool) {
	switch cmd {
	case bus.Read:
		if local {
			return coherence.LocalRead, true
		}
		return coherence.SnoopRead, true
	case bus.RWITM, bus.DClaim, bus.Flush:
		if local {
			return coherence.LocalWrite, true
		}
		return coherence.SnoopWrite, true
	case bus.Castout, bus.Clean:
		if local {
			return coherence.LocalCastout, true
		}
		return coherence.SnoopCastout, true
	default: // Push and anything else carries no directory action
		return 0, false
	}
}

// local processes a transaction from one of this node's own CPUs.
func (n *node) local(p pending, snoopIn coherence.SnoopIn) {
	op, ok := opFor(p.cmd, true)
	if !ok {
		return
	}
	cur := n.sanitize(p.addr, coherence.State(n.dir.Access(p.addr)))
	entry := n.eng.Lookup(op, cur, snoopIn)
	n.cTransition[op][cur][snoopIn].Inc()

	// Classification counters.
	isRef := op == coherence.LocalRead || op == coherence.LocalWrite
	hit := cur.IsValid()
	switch op {
	case coherence.LocalRead:
		if hit {
			n.cReadHit.Inc()
		} else {
			n.cReadMiss.Inc()
		}
	case coherence.LocalWrite:
		if hit {
			n.cWriteHit.Inc()
			if cur == coherence.Shared || cur == coherence.Owned {
				n.cUpgrades.Inc()
			}
		} else {
			n.cWriteMiss.Inc()
		}
	case coherence.LocalCastout:
		if hit {
			n.cCastIn.Inc()
		} else {
			n.cCastAlloc.Inc()
		}
	}
	if isRef {
		if hit {
			if c := n.perCPUHit[p.src]; c != nil {
				c.Inc()
			}
		} else if c := n.perCPUMiss[p.src]; c != nil {
			c.Inc()
		}
		// Where was this reference satisfied? (Figure 12 breakdown.)
		switch {
		case hit:
			n.cSatL3.Inc()
		case snoopIn == coherence.SnoopModified:
			n.cSatModInt.Inc()
		case snoopIn == coherence.SnoopShared:
			n.cSatShrInt.Inc()
		default:
			n.cSatMem.Inc()
		}
		if n.prof != nil {
			miss := uint64(0)
			if !hit {
				miss = 1
			}
			n.prof.Observe(p.cycle, miss, 1)
		}
	}

	// Apply the transition.
	n.apply(p.addr, cur, entry)
}

// snoop processes a transaction from another node in the same group.
func (n *node) snoop(p pending) {
	op, ok := opFor(p.cmd, false)
	if !ok {
		return
	}
	cur := n.sanitize(p.addr, coherence.State(n.dir.Probe(p.addr)))
	entry := n.eng.Lookup(op, cur, coherence.SnoopNone)
	n.cTransition[op][cur][coherence.SnoopNone].Inc()

	if cur.IsValid() {
		switch op {
		case coherence.SnoopRead:
			n.cSnoopReadHit.Inc()
		case coherence.SnoopWrite:
			n.cSnoopWriteHit.Inc()
		}
	}
	if entry.Actions.Has(coherence.ActRespondModified) {
		n.cIntervModSup.Inc()
	} else if entry.Actions.Has(coherence.ActRespondShared) {
		n.cIntervShrSup.Inc()
	}
	if op == coherence.SnoopWrite && cur.IsValid() && entry.Next == coherence.Invalid {
		n.cInvalidations.Inc()
	}
	n.apply(p.addr, cur, entry)
}

// apply commits a protocol transition to the directory, handling
// allocation, eviction, writeback, and invalidation.
func (n *node) apply(a uint64, cur coherence.State, e coherence.Entry) {
	if e.Actions.Has(coherence.ActWriteback) {
		n.cWritebacks.Inc()
	}
	switch {
	case cur == coherence.Invalid && e.Actions.Has(coherence.ActAllocate):
		victim, evicted := n.dir.Fill(a, uint8(e.Next))
		if evicted {
			n.cEvictions.Inc()
			if coherence.State(victim.State).IsDirty() {
				// The emulated cache writes the dirty victim back to
				// memory. Being passive, the board cannot invalidate the
				// line in the host's L1/L2 (§3.4's non-inclusive
				// limitation) — it only accounts for the traffic.
				n.cEvictDirty.Inc()
				n.cWritebacks.Inc()
			}
		}
	case cur != coherence.Invalid && e.Next == coherence.Invalid:
		n.dir.Invalidate(a)
	case cur != coherence.Invalid && e.Next != cur:
		n.dir.SetState(a, uint8(e.Next))
	}
}

// NodeView is a read-only summary of one emulated node, assembled from
// the counter bank for reports and tests.
type NodeView struct {
	Name      string
	Geometry  string
	Protocol  string
	ReadHit   uint64
	ReadMiss  uint64
	WriteHit  uint64
	WriteMiss uint64
	SatL3     uint64
	SatModInt uint64
	SatShrInt uint64
	SatMemory uint64
	Castouts  uint64
	Evictions uint64
}

// Node returns the view of node i.
func (b *Board) Node(i int) NodeView {
	n := b.nodes[i]
	return NodeView{
		Name:      n.cfg.Name,
		Geometry:  n.cfg.Geometry.String(),
		Protocol:  n.cfg.Protocol.Name,
		ReadHit:   n.cReadHit.Value(),
		ReadMiss:  n.cReadMiss.Value(),
		WriteHit:  n.cWriteHit.Value(),
		WriteMiss: n.cWriteMiss.Value(),
		SatL3:     n.cSatL3.Value(),
		SatModInt: n.cSatModInt.Value(),
		SatShrInt: n.cSatShrInt.Value(),
		SatMemory: n.cSatMem.Value(),
		Castouts:  n.cCastIn.Value() + n.cCastAlloc.Value(),
		Evictions: n.cEvictions.Value(),
	}
}

// Refs returns the number of local cache references (reads + writes) node
// i has emulated.
func (v NodeView) Refs() uint64 {
	return v.ReadHit + v.ReadMiss + v.WriteHit + v.WriteMiss
}

// Misses returns read + write misses.
func (v NodeView) Misses() uint64 { return v.ReadMiss + v.WriteMiss }

// MissRatio returns misses over references, the paper's primary metric.
func (v NodeView) MissRatio() float64 { return stats.Ratio(v.Misses(), v.Refs()) }

// Profile returns node i's miss-ratio time series (nil if profiling off).
func (b *Board) Profile(i int) *stats.TimeSeries { return b.nodes[i].prof }

// ForEachLine calls fn for every valid line in node i's directory with
// its line address and coherence state. Tests use it to check cross-node
// invariants (e.g. single dirty owner per snoop group).
func (b *Board) ForEachLine(i int, fn func(lineAddr uint64, st coherence.State)) {
	b.nodes[i].dir.ForEachValid(func(a uint64, s uint8) {
		fn(a, coherence.State(s))
	})
}

// NodeGroup returns the snoop group of node i.
func (b *Board) NodeGroup(i int) int { return b.nodes[i].cfg.Group }

// DirectoryOccupancy returns the number of valid lines in node i's
// directory, refreshing the occupancy counters as a side effect.
func (b *Board) DirectoryOccupancy(i int) int64 {
	n := b.nodes[i]
	var counts [coherence.NumStates]int64
	n.dir.ForEachValid(func(_ uint64, st uint8) {
		if int(st) < len(counts) {
			counts[st]++
		}
	})
	p := "node" + n.cfg.Name + ".occupancy."
	var total int64
	for st := 1; st < coherence.NumStates; st++ {
		c := b.bank.Counter(p + coherence.State(st).String())
		c.Reset()
		c.Add(uint64(counts[st]))
		total += counts[st]
	}
	return total
}
