package core

import "time"

// Real-time model (§4.1). The board processes the bus stream at bus
// speed: a trace of N references arriving at a given bus utilization is
// fully emulated in exactly the wall-clock time the host takes to produce
// it. Table 3's "Execution time of MemorIES" column is derived this way
// ("the MemorIES board assumes a 6xx bus speed of 100 MHz with a bus
// utilization of 20%"), and this file reproduces that derivation.

// RealTimeModel captures the two parameters of the derivation.
type RealTimeModel struct {
	// BusClockMHz is the 6xx bus clock (100 in the paper).
	BusClockMHz float64
	// Utilization is the fraction of bus cycles carrying memory
	// operations (0.20 in Table 3).
	Utilization float64
	// CyclesPerOp is the bus occupancy of one trace vector. Table 3's
	// own numbers imply 2 cycles per 8-byte vector (10 million vectors
	// in exactly 1 second at 20% of 100 MHz): the trace stream carries
	// address tenures, not full cache-line data transfers.
	CyclesPerOp float64
}

// PaperRealTimeModel returns the Table 3 parameters; with them, the model
// reproduces the paper's MemorIES column exactly (32768 vectors -> 3.28ms,
// 10 billion -> 16.67 minutes).
func PaperRealTimeModel() RealTimeModel {
	return RealTimeModel{BusClockMHz: 100, Utilization: 0.20, CyclesPerOp: 2}
}

// OpsPerSecond returns the bus-reference arrival rate the model implies.
func (m RealTimeModel) OpsPerSecond() float64 {
	return m.BusClockMHz * 1e6 * m.Utilization / m.CyclesPerOp
}

// Duration returns how long the board takes to emulate n bus references:
// exactly as long as the host takes to issue them.
func (m RealTimeModel) Duration(n uint64) time.Duration {
	sec := float64(n) / m.OpsPerSecond()
	return time.Duration(sec * float64(time.Second))
}

// EmulatedSeconds converts a board cycle horizon into seconds of host
// execution covered so far.
func (b *Board) EmulatedSeconds(busClockMHz float64) float64 {
	return float64(b.lastCycle) / (busClockMHz * 1e6)
}
