package core

import (
	"fmt"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/host"
	"memories/internal/workload"
)

// TestSnoopBatchMatchesSerial proves the batched ingest is bit-identical
// to per-transaction Snoop: same counters (every one, including buffer
// telemetry — a single board sees the same occupancy either way), same
// drain log, same trace capture, for several batch sizes and feature
// configurations.
func TestSnoopBatchMatchesSerial(t *testing.T) {
	const n = 60_000
	txs := shardTestStream(n)

	configs := map[string]func() Config{
		"base": shardTestConfig,
		"trace": func() Config {
			cfg := shardTestConfig()
			cfg.TraceCapacity = 4096
			return cfg
		},
		"scrub": func() Config {
			cfg := shardTestConfig()
			cfg.ECC = true
			cfg.ScrubIntervalCycles = 50_000
			return cfg
		},
		"tiny-buffer": func() Config {
			// Overflow (count-only) path exercised on every transaction
			// burst the SDRAM pacing cannot keep up with.
			cfg := shardTestConfig()
			cfg.BufferDepth = 2
			return cfg
		},
	}

	for name, mkCfg := range configs {
		t.Run(name, func(t *testing.T) {
			serial := MustNewBoard(mkCfg())
			var serialEvents []DrainEvent
			serial.SetDrainObserver(func(seq, cycle uint64, cmd bus.Command, a uint64, src int) {
				serialEvents = append(serialEvents, DrainEvent{Seq: seq, Cycle: cycle, Cmd: cmd, Addr: a, Src: src})
			})
			for i := range txs {
				tx := txs[i]
				serial.Snoop(&tx)
			}
			serial.Flush()
			want := serial.Counters().Snapshot()

			for _, batchSize := range []int{1, 7, 128, n} {
				batched := MustNewBoard(mkCfg())
				var events []DrainEvent
				batched.SetDrainObserver(func(seq, cycle uint64, cmd bus.Command, a uint64, src int) {
					events = append(events, DrainEvent{Seq: seq, Cycle: cycle, Cmd: cmd, Addr: a, Src: src})
				})
				for i := 0; i < len(txs); i += batchSize {
					end := i + batchSize
					if end > len(txs) {
						end = len(txs)
					}
					batch := append([]bus.Transaction(nil), txs[i:end]...)
					batched.SnoopBatch(batch)
				}
				batched.Flush()

				label := fmt.Sprintf("batch=%d", batchSize)
				diffSnapshots(t, want, batched.Counters().Snapshot(), label)
				if len(events) != len(serialEvents) {
					t.Fatalf("%s: %d drain events, serial %d", label, len(events), len(serialEvents))
				}
				for i := range events {
					if events[i] != serialEvents[i] {
						t.Fatalf("%s: event %d = %+v, serial %+v", label, i, events[i], serialEvents[i])
					}
				}
				if sc, bc := serial.Trace(), batched.Trace(); (sc == nil) != (bc == nil) {
					t.Fatalf("%s: capture presence differs", label)
				} else if sc != nil {
					if sc.Len() != bc.Len() || sc.Dropped() != bc.Dropped() {
						t.Fatalf("%s: capture len/dropped %d/%d, serial %d/%d",
							label, bc.Len(), bc.Dropped(), sc.Len(), sc.Dropped())
					}
					for i := 0; i < sc.Len(); i++ {
						if sc.Record(i) != bc.Record(i) {
							t.Fatalf("%s: capture record %d differs", label, i)
						}
					}
				}
				for i := 0; i < serial.NumNodes(); i++ {
					if batched.Node(i) != serial.Node(i) {
						t.Fatalf("%s: node %d view %+v, serial %+v", label, i, batched.Node(i), serial.Node(i))
					}
				}
			}
		})
	}
}

// TestSnoopBatchRejectsRetryBoards: the batch path cannot deliver
// per-transaction retry responses, so a RetryOnOverflow board must
// refuse it loudly rather than silently dropping retries.
func TestSnoopBatchRejectsRetryBoards(t *testing.T) {
	cfg := shardTestConfig()
	cfg.RetryOnOverflow = true
	b := MustNewBoard(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("SnoopBatch on a RetryOnOverflow board did not panic")
		}
	}()
	b.SnoopBatch([]bus.Transaction{{Cmd: bus.Read, Addr: 0x1000, Size: 128}})
}

// TestBoardRejectsBadBusIDs: bus IDs must fit the 8-bit bus tag that the
// trace format and the dense per-CPU slices both rely on.
func TestBoardRejectsBadBusIDs(t *testing.T) {
	for _, id := range []int{-1, MaxBusID + 1} {
		cfg := Config{Nodes: []NodeConfig{{
			CPUs:     []int{id},
			Geometry: addr.MustGeometry(2*addr.MB, 128, 4),
			Policy:   cache.LRU,
			Protocol: coherence.MESI(),
		}}}
		if _, err := NewBoard(cfg); err == nil {
			t.Errorf("NewBoard accepted bus ID %d", id)
		}
	}
	// The top of the range is fine.
	cfg := Config{Nodes: []NodeConfig{{
		CPUs:     []int{MaxBusID},
		Geometry: addr.MustGeometry(2*addr.MB, 128, 4),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}}}
	b := MustNewBoard(cfg)
	tx := bus.Transaction{Cmd: bus.Read, Addr: 0x2000, Size: 128, SrcID: MaxBusID}
	b.Snoop(&tx)
	b.Flush()
	if got := b.Counters().Value("filter.accepted"); got != 1 {
		t.Fatalf("accepted = %d, want 1", got)
	}
	// Unassigned and out-of-range source IDs are filtered, not crashed on.
	for _, src := range []int{-1, 3, 1 << 20} {
		tx := bus.Transaction{Cmd: bus.Read, Addr: 0x3000, Size: 128, SrcID: src}
		b.Snoop(&tx)
	}
	b.Flush()
	if got := b.Counters().Value("filter.unassigned"); got != 3 {
		t.Fatalf("unassigned = %d, want 3", got)
	}
}

// TestBoardSnoopAllocFree is an ISSUE 3 acceptance criterion: the
// steady-state snoop path — filter, counters, SDRAM-paced drain,
// directory transitions, evictions — performs zero heap allocations per
// transaction.
func TestBoardSnoopAllocFree(t *testing.T) {
	b := MustNewBoard(shardTestConfig())
	txs := shardTestStream(4096)
	// Warm up: queue ring and replacement structures reach steady state.
	for i := range txs {
		b.Snoop(&txs[i])
	}
	cycle := txs[len(txs)-1].Cycle
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		cycle += 48
		tx := txs[i%len(txs)]
		tx.Cycle = cycle
		b.Snoop(&tx)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Board.Snoop allocates %.2f/op, want 0", allocs)
	}
}

// TestHostStepAllocFree: the full emulation loop — workload generation,
// private MESI hierarchy, bus issue, board snoop and drain — allocates
// nothing per reference once warm. This is the end-to-end form of the
// ISSUE 3 zero-allocation criterion.
func TestHostStepAllocFree(t *testing.T) {
	gen := workload.NewUniform(workload.UniformConfig{
		NumCPUs:       8,
		FootprintByte: 64 * addr.MB,
		WriteFraction: 0.3,
		Seed:          7,
	})
	h := host.MustNew(host.DefaultConfig(), gen)
	b := MustNewBoard(shardTestConfig())
	h.Bus().Attach(b)
	h.Run(200_000) // warm caches, queue ring, replacement state
	allocs := testing.AllocsPerRun(20000, func() {
		h.Step()
	})
	if allocs != 0 {
		t.Fatalf("host.Step allocates %.2f/op, want 0", allocs)
	}
}

// TestSnoopBatchAllocFree: the batched ingest must allocate nothing
// beyond the caller-owned batch slice.
func TestSnoopBatchAllocFree(t *testing.T) {
	b := MustNewBoard(shardTestConfig())
	txs := shardTestStream(4096)
	b.SnoopBatch(txs)
	cycle := txs[len(txs)-1].Cycle
	batch := make([]bus.Transaction, 64)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		for j := range batch {
			cycle += 48
			batch[j] = txs[(i+j)%len(txs)]
			batch[j].Cycle = cycle
		}
		i += len(batch)
		b.SnoopBatch(batch)
	})
	if allocs != 0 {
		t.Fatalf("Board.SnoopBatch allocates %.2f/run, want 0", allocs)
	}
}
