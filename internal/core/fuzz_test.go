package core

import (
	"bytes"
	"errors"
	"testing"

	"memories/internal/checkpoint"
)

// FuzzCheckpointRestore mutates full board snapshots: restoring any
// byte soup must never panic, and must either succeed or fail with a
// typed *checkpoint.CorruptError — the invariant the rotation fallback
// relies on to skip bad entries.
func FuzzCheckpointRestore(f *testing.F) {
	mkBoard := func() (*Board, error) {
		return NewBoard(Config{
			ECC:   true,
			Nodes: []NodeConfig{nodeCfg("a", []int{0, 1}, 64, 4, 0)},
		})
	}
	seed, err := mkBoard()
	if err != nil {
		f.Fatal(err)
	}
	fd := &feeder{board: seed}
	for i := 0; i < 300; i++ {
		fd.issue(0, uint64(i*128), i%2)
	}
	seed.Flush()
	var buf bytes.Buffer
	if err := seed.WriteCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good, 0, byte(0))
	f.Add(good, len(good)/2, byte(0xff))
	f.Add(good, len(good)-5, byte(0x01))
	f.Add([]byte("MIESCKPT"), 0, byte(0))

	f.Fuzz(func(t *testing.T, data []byte, pos int, xor byte) {
		mut := append([]byte(nil), data...)
		if len(mut) > 0 {
			mut[((pos%len(mut))+len(mut))%len(mut)] ^= xor
		}
		snap, err := checkpoint.Decode(mut)
		if err != nil {
			var ce *checkpoint.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Decode error is %T (%v), want *CorruptError", err, err)
			}
			return
		}
		b, err := mkBoard()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreBoard(b, snap); err != nil {
			var ce *checkpoint.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("RestoreBoard error is %T (%v), want *CorruptError", err, err)
			}
		}
	})
}
