// Package hotspot implements the board's hot-spot identification mode
// (paper §2.3): "The FPGAs can be programmed to treat their private 256MB
// memory as a table of memory read/write frequency counters either on
// cache line basis or page basis. These counters help to identify hot
// spots in cache lines or in memory pages."
package hotspot

import (
	"fmt"
	"sort"

	"memories/internal/addr"
	"memories/internal/bus"
)

// Config parameterizes the profiler.
type Config struct {
	// Granularity is the counting block size: the host line size (128B)
	// for line-level profiling, or the page size (4KB) for page-level.
	Granularity int64
	// MaxBlocks bounds the counter table, modeling the 256MB of private
	// memory per FPGA (256MB / 16B counters = 16Mi blocks). Once full,
	// new blocks are counted as untracked rather than evicting hot
	// entries.
	MaxBlocks int
}

// DefaultConfig profiles at cache-line granularity with the hardware's
// table capacity.
func DefaultConfig() Config {
	return Config{Granularity: 128, MaxBlocks: 16 << 20}
}

// BlockStats are the per-block access counters.
type BlockStats struct {
	Block  uint64 // block base address
	Reads  uint64
	Writes uint64
}

// Total returns reads + writes.
func (b BlockStats) Total() uint64 { return b.Reads + b.Writes }

// Profiler is the hot-spot counter table. It implements bus.Snooper as a
// purely passive observer.
type Profiler struct {
	cfg       Config
	blocks    map[uint64]*BlockStats
	untracked uint64
	total     uint64
}

// New builds a profiler.
func New(cfg Config) (*Profiler, error) {
	if cfg.Granularity <= 0 || !addr.IsPow2(cfg.Granularity) {
		return nil, fmt.Errorf("hotspot: granularity must be a positive power of two")
	}
	if cfg.MaxBlocks <= 0 {
		return nil, fmt.Errorf("hotspot: MaxBlocks must be positive")
	}
	return &Profiler{cfg: cfg, blocks: make(map[uint64]*BlockStats)}, nil
}

// BusID implements bus.Snooper (passive).
func (p *Profiler) BusID() int { return -1 }

// Snoop implements bus.Snooper: counts memory operations per block.
func (p *Profiler) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	if !tx.Cmd.IsMemoryOp() {
		return bus.RespNull
	}
	p.total++
	block := tx.Addr &^ uint64(p.cfg.Granularity-1)
	bs := p.blocks[block]
	if bs == nil {
		if len(p.blocks) >= p.cfg.MaxBlocks {
			p.untracked++
			return bus.RespNull
		}
		bs = &BlockStats{Block: block}
		p.blocks[block] = bs
	}
	if tx.Cmd.IsWrite() {
		bs.Writes++
	} else {
		bs.Reads++
	}
	return bus.RespNull
}

// Tracked returns the number of distinct blocks observed.
func (p *Profiler) Tracked() int { return len(p.blocks) }

// Untracked returns operations dropped after the table filled.
func (p *Profiler) Untracked() uint64 { return p.untracked }

// Total returns all memory operations observed.
func (p *Profiler) Total() uint64 { return p.total }

// Top returns the k hottest blocks by total accesses, descending; ties
// break by ascending address for determinism.
func (p *Profiler) Top(k int) []BlockStats {
	out := make([]BlockStats, 0, len(p.blocks))
	for _, bs := range p.blocks {
		out = append(out, *bs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Block < out[j].Block
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Concentration returns the fraction of all observed operations that hit
// the k hottest blocks — the one-number summary of how spiky the access
// distribution is.
func (p *Profiler) Concentration(k int) float64 {
	if p.total == 0 {
		return 0
	}
	var hot uint64
	for _, bs := range p.Top(k) {
		hot += bs.Total()
	}
	return float64(hot) / float64(p.total)
}

// Reset clears the table for a new measurement window.
func (p *Profiler) Reset() {
	p.blocks = make(map[uint64]*BlockStats)
	p.untracked = 0
	p.total = 0
}
