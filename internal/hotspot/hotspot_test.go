package hotspot

import (
	"testing"

	"memories/internal/bus"
	"memories/internal/workload"
)

func mustNew(t *testing.T, cfg Config) *Profiler {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("hotspot.New: %v", err)
	}
	return p
}

func snoop(p *Profiler, cmd bus.Command, a uint64) {
	p.Snoop(&bus.Transaction{Cmd: cmd, Addr: a, Size: 128})
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Granularity: 100, MaxBlocks: 10}); err == nil {
		t.Fatal("accepted non-pow2 granularity")
	}
	if _, err := New(Config{Granularity: 128, MaxBlocks: 0}); err == nil {
		t.Fatal("accepted zero table")
	}
}

func TestCountsReadsAndWritesPerBlock(t *testing.T) {
	p := mustNew(t, Config{Granularity: 128, MaxBlocks: 100})
	snoop(p, bus.Read, 0x100)
	snoop(p, bus.Read, 0x17f) // same 128B block
	snoop(p, bus.RWITM, 0x100)
	snoop(p, bus.Castout, 0x100)
	snoop(p, bus.Read, 0x200)
	top := p.Top(10)
	if len(top) != 2 {
		t.Fatalf("tracked %d blocks, want 2", len(top))
	}
	if top[0].Block != 0x100 || top[0].Reads != 2 || top[0].Writes != 2 {
		t.Fatalf("hottest = %+v", top[0])
	}
	if p.Total() != 5 {
		t.Fatalf("Total = %d", p.Total())
	}
}

func TestPageGranularity(t *testing.T) {
	p := mustNew(t, Config{Granularity: 4096, MaxBlocks: 100})
	snoop(p, bus.Read, 0x0)
	snoop(p, bus.Read, 0xFFF)
	snoop(p, bus.Read, 0x1000)
	if p.Tracked() != 2 {
		t.Fatalf("Tracked = %d, want 2 pages", p.Tracked())
	}
}

func TestNonMemoryIgnored(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	snoop(p, bus.IORead, 0x100)
	snoop(p, bus.Interrupt, 0x100)
	if p.Total() != 0 || p.Tracked() != 0 {
		t.Fatal("non-memory ops counted")
	}
}

func TestTableCapacity(t *testing.T) {
	p := mustNew(t, Config{Granularity: 128, MaxBlocks: 4})
	for i := 0; i < 10; i++ {
		snoop(p, bus.Read, uint64(i)*128)
	}
	if p.Tracked() != 4 {
		t.Fatalf("Tracked = %d, want 4", p.Tracked())
	}
	if p.Untracked() != 6 {
		t.Fatalf("Untracked = %d, want 6", p.Untracked())
	}
	// Existing blocks keep counting even when the table is full.
	snoop(p, bus.Read, 0)
	if p.Top(1)[0].Total() != 2 {
		t.Fatal("full table stopped counting tracked blocks")
	}
}

func TestTopOrderingAndTies(t *testing.T) {
	p := mustNew(t, Config{Granularity: 128, MaxBlocks: 100})
	for i := 0; i < 3; i++ {
		snoop(p, bus.Read, 0x300)
	}
	snoop(p, bus.Read, 0x100)
	snoop(p, bus.Read, 0x200) // tie with 0x100: lower address first
	top := p.Top(3)
	if top[0].Block != 0x300 {
		t.Fatalf("top = %+v", top)
	}
	if top[1].Block != 0x100 || top[2].Block != 0x200 {
		t.Fatalf("tie break wrong: %+v", top)
	}
	if len(p.Top(1)) != 1 {
		t.Fatal("Top(k) did not truncate")
	}
}

func TestConcentrationDetectsZipfHotSet(t *testing.T) {
	p := mustNew(t, Config{Granularity: 128, MaxBlocks: 1 << 20})
	gen := workload.NewZipfian(workload.ZipfConfig{
		NumCPUs: 1, FootprintByte: 64 << 20, Skew: 1.4, Seed: 5,
	})
	for i := 0; i < 200000; i++ {
		ref, _ := gen.Next()
		cmd := bus.Read
		if ref.Write {
			cmd = bus.RWITM
		}
		snoop(p, cmd, ref.Addr)
	}
	if c := p.Concentration(100); c < 0.3 {
		t.Fatalf("Zipf concentration(100) = %.2f, want hot-spot signal", c)
	}

	p.Reset()
	u := workload.NewUniform(workload.UniformConfig{NumCPUs: 1, FootprintByte: 64 << 20, Seed: 5})
	for i := 0; i < 200000; i++ {
		ref, _ := u.Next()
		snoop(p, bus.Read, ref.Addr)
	}
	if c := p.Concentration(100); c > 0.05 {
		t.Fatalf("uniform concentration(100) = %.2f, want flat", c)
	}
}

func TestReset(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	snoop(p, bus.Read, 0)
	p.Reset()
	if p.Total() != 0 || p.Tracked() != 0 || p.Untracked() != 0 {
		t.Fatal("Reset incomplete")
	}
}
