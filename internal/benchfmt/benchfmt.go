// Package benchfmt parses `go test -bench` output and compares runs, so
// the CI benchmark gate needs no tooling beyond the Go toolchain itself.
// It understands the standard line format
//
//	BenchmarkName[-procs] <iters> <value> ns/op [<value> <unit>]...
//
// aggregates repeated runs (-count=N) by median, and reports regressions
// against a baseline file beyond a relative threshold.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name without the trailing -procs suffix.
	Name string
	// Procs is GOMAXPROCS for the run (the -N name suffix; 1 if absent).
	Procs int
	// NsPerOp is the reported ns/op.
	NsPerOp float64
	// Metrics holds every other reported unit (missratio, B/op, ...).
	Metrics map[string]float64
}

// Key identifies a benchmark variant across runs.
type Key struct {
	Name  string
	Procs int
}

var procSuffix = regexp.MustCompile(`-(\d+)$`)

// Parse reads benchmark lines from r, ignoring everything else (goos
// headers, PASS/ok trailers).
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		res := Result{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
		if m := procSuffix.FindStringSubmatch(res.Name); m != nil {
			res.Procs, _ = strconv.Atoi(m[1])
			res.Name = strings.TrimSuffix(res.Name, m[0])
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value in %q: %v", line, err)
			}
			if fields[i+1] == "ns/op" {
				res.NsPerOp = v
			} else {
				res.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary is the per-variant aggregate of repeated runs.
type Summary struct {
	Key
	// Runs is how many lines were aggregated.
	Runs int
	// NsPerOp is the median ns/op across runs.
	NsPerOp float64
	// Metrics maps each extra unit to its median.
	Metrics map[string]float64
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Summarize groups results by (name, procs) and takes medians, returning
// summaries sorted by name then procs.
func Summarize(results []Result) []Summary {
	byKey := map[Key][]Result{}
	for _, r := range results {
		k := Key{r.Name, r.Procs}
		byKey[k] = append(byKey[k], r)
	}
	out := make([]Summary, 0, len(byKey))
	for k, rs := range byKey {
		s := Summary{Key: k, Runs: len(rs), Metrics: map[string]float64{}}
		ns := make([]float64, len(rs))
		units := map[string][]float64{}
		for i, r := range rs {
			ns[i] = r.NsPerOp
			for u, v := range r.Metrics {
				units[u] = append(units[u], v)
			}
		}
		s.NsPerOp = median(ns)
		for u, vs := range units {
			s.Metrics[u] = median(vs)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Procs < out[j].Procs
	})
	return out
}

// Delta is one baseline-vs-current comparison.
type Delta struct {
	Key
	// Old and New are the median ns/op of baseline and current.
	Old, New float64
	// Ratio is New/Old; 1.20 means 20% slower than baseline.
	Ratio float64
	// Regressed is true when Ratio exceeds the gate's threshold.
	Regressed bool
}

// Compare matches current summaries against baseline ones (by key,
// restricted to names matching filter when non-nil) and flags any whose
// ns/op grew by more than threshold (0.10 = +10%). Benchmarks present on
// only one side are skipped: the gate guards kernels that exist in both.
func Compare(baseline, current []Summary, threshold float64, filter *regexp.Regexp) []Delta {
	base := map[Key]Summary{}
	for _, s := range baseline {
		base[s.Key] = s
	}
	var out []Delta
	for _, cur := range current {
		if filter != nil && !filter.MatchString(cur.Name) {
			continue
		}
		b, ok := base[cur.Key]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		d := Delta{Key: cur.Key, Old: b.NsPerOp, New: cur.NsPerOp, Ratio: cur.NsPerOp / b.NsPerOp}
		d.Regressed = d.Ratio > 1+threshold
		out = append(out, d)
	}
	return out
}

// MetricDelta is one baseline-vs-current comparison of a named metric.
type MetricDelta struct {
	Key
	// Metric is the compared unit ("B/op", "allocs/op", "ns/op", ...).
	Metric string
	// Old and New are the median values of baseline and current.
	Old, New float64
	// Ratio is New/Old (0 when Old is 0; see Regressed for that case).
	Ratio float64
	// HigherBetter records which direction this delta was gated in:
	// false for cost metrics (ns/op, B/op), true for rate metrics
	// (tx/s), where shrinking is the regression.
	HigherBetter bool
	// Regressed is true when the metric moved in the bad direction by
	// more than the gate's threshold — grew, for lower-is-better
	// metrics; shrank, for higher-is-better ones. A zero baseline with
	// a nonzero bad-direction current regresses unconditionally (a
	// formerly allocation-free benchmark that starts allocating trips
	// the gate at any threshold); a zero *current* on a higher-is-better
	// metric likewise always regresses (the rate collapsed).
	Regressed bool
}

// CompareMetric matches current summaries against baseline ones (by key,
// restricted to names matching filter when non-nil) and flags any whose
// named metric grew by more than threshold (0.10 = +10%). "ns/op" is
// accepted as a metric name. Benchmarks where both sides are 0 (e.g.
// allocs/op on an allocation-free path) pass; old 0 with new nonzero
// regresses unconditionally. Benchmarks or metrics present on only one
// side are skipped: the gate guards kernels measured in both runs.
func CompareMetric(baseline, current []Summary, metric string, threshold float64, filter *regexp.Regexp) []MetricDelta {
	return compareMetric(baseline, current, metric, threshold, filter, false)
}

// CompareMetricUp is CompareMetric for higher-is-better metrics (tx/s,
// records/s): a delta regresses when the current value falls below the
// baseline by more than threshold (0.10 = −10%), never on improvement.
// A zero current value with a nonzero baseline regresses
// unconditionally; a zero baseline passes (nothing to ratchet against
// yet — the next refresh records the rate).
func CompareMetricUp(baseline, current []Summary, metric string, threshold float64, filter *regexp.Regexp) []MetricDelta {
	return compareMetric(baseline, current, metric, threshold, filter, true)
}

func compareMetric(baseline, current []Summary, metric string, threshold float64, filter *regexp.Regexp, higherBetter bool) []MetricDelta {
	base := map[Key]Summary{}
	for _, s := range baseline {
		base[s.Key] = s
	}
	value := func(s Summary) (float64, bool) {
		if metric == "ns/op" {
			return s.NsPerOp, true
		}
		v, ok := s.Metrics[metric]
		return v, ok
	}
	var out []MetricDelta
	for _, cur := range current {
		if filter != nil && !filter.MatchString(cur.Name) {
			continue
		}
		b, ok := base[cur.Key]
		if !ok {
			continue
		}
		bv, bok := value(b)
		cv, cok := value(cur)
		if !bok || !cok {
			continue
		}
		d := MetricDelta{Key: cur.Key, Metric: metric, Old: bv, New: cv, HigherBetter: higherBetter}
		switch {
		case bv == 0:
			// No baseline rate to fall below; for cost metrics any new
			// nonzero value is a regression.
			d.Regressed = !higherBetter && cv > 0
		case higherBetter:
			d.Ratio = cv / bv
			// A collapsed rate (0 against a nonzero baseline) fails at
			// any threshold, mirroring the cost metrics' zero-baseline
			// rule.
			d.Regressed = cv == 0 || d.Ratio < 1-threshold
		default:
			d.Ratio = cv / bv
			d.Regressed = d.Ratio > 1+threshold
		}
		out = append(out, d)
	}
	return out
}

// Speedup returns the ns/op ratio between the lowest- and highest-procs
// variants of name (serial time / parallel time), and the procs of each.
func Speedup(summaries []Summary, name string) (ratio float64, loProcs, hiProcs int, err error) {
	var lo, hi *Summary
	for i := range summaries {
		s := &summaries[i]
		if s.Name != name {
			continue
		}
		if lo == nil || s.Procs < lo.Procs {
			lo = s
		}
		if hi == nil || s.Procs > hi.Procs {
			hi = s
		}
	}
	if lo == nil || hi == nil || lo.Procs == hi.Procs {
		return 0, 0, 0, fmt.Errorf("benchfmt: need at least two -cpu variants of %s", name)
	}
	if hi.NsPerOp == 0 {
		return 0, 0, 0, fmt.Errorf("benchfmt: %s-%d reports 0 ns/op", name, hi.Procs)
	}
	return lo.NsPerOp / hi.NsPerOp, lo.Procs, hi.Procs, nil
}

// Ratio compares two different benchmarks by a shared metric: the
// lowest-procs variant of baseName (the serial reference) against the
// best (lowest-valued) variant of newName at any procs. It returns
// baseValue/newValue — 2.0 means the new benchmark is twice as fast —
// plus the procs of each side. This is the cross-benchmark counterpart
// of Speedup, used to gate the v2 trace pipeline against the v1 reader.
func Ratio(summaries []Summary, baseName, newName, metric string) (ratio float64, baseProcs, newProcs int, err error) {
	var base, best *Summary
	for i := range summaries {
		s := &summaries[i]
		switch s.Name {
		case baseName:
			if base == nil || s.Procs < base.Procs {
				base = s
			}
		case newName:
			v, ok := s.Metrics[metric]
			if !ok {
				return 0, 0, 0, fmt.Errorf("benchfmt: %s-%d does not report %s", newName, s.Procs, metric)
			}
			if best == nil || v < best.Metrics[metric] {
				best = s
			}
		}
	}
	if base == nil {
		return 0, 0, 0, fmt.Errorf("benchfmt: no variants of %s found", baseName)
	}
	if best == nil {
		return 0, 0, 0, fmt.Errorf("benchfmt: no variants of %s found", newName)
	}
	bv, ok := base.Metrics[metric]
	if !ok {
		return 0, 0, 0, fmt.Errorf("benchfmt: %s-%d does not report %s", baseName, base.Procs, metric)
	}
	nv := best.Metrics[metric]
	if nv == 0 {
		return 0, 0, 0, fmt.Errorf("benchfmt: %s-%d reports 0 %s", newName, best.Procs, metric)
	}
	return bv / nv, base.Procs, best.Procs, nil
}

// ParityError returns a non-nil error if the named metric differs across
// the -cpu variants of a benchmark — the determinism check for the
// sharded pipeline's missratio.
func ParityError(summaries []Summary, name, metric string) error {
	var have bool
	var first float64
	var firstProcs int
	for _, s := range summaries {
		if s.Name != name {
			continue
		}
		v, ok := s.Metrics[metric]
		if !ok {
			return fmt.Errorf("benchfmt: %s-%d does not report %s", name, s.Procs, metric)
		}
		if !have {
			have, first, firstProcs = true, v, s.Procs
		} else if v != first {
			return fmt.Errorf("benchfmt: %s %s differs across -cpu: %v at -cpu %d vs %v at -cpu %d",
				name, metric, first, firstProcs, v, s.Procs)
		}
	}
	if !have {
		return fmt.Errorf("benchfmt: no variants of %s found", name)
	}
	return nil
}
