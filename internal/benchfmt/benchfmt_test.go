package benchfmt

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: memories
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable3BoardSnoop    	    1000	       501.0 ns/op	         0.5600 missratio
BenchmarkTable3BoardSnoop    	    1000	       499.0 ns/op	         0.5600 missratio
BenchmarkTable3BoardSnoop    	    1000	       520.0 ns/op	         0.5600 missratio
BenchmarkFig8MultiConfigSweep	    1000	      2000 ns/op	         0.1200 missratio16MB
BenchmarkAblationBufferDepth/depth512 	 1000	 300.0 ns/op
BenchmarkBoardSnoopParallel  	    1000	      1200 ns/op	         0.5605 missratio	         1.000 shards
BenchmarkBoardSnoopParallel-8	    1000	       400.0 ns/op	         0.5605 missratio	         8.000 shards
PASS
ok  	memories	1.234s
`

func parseSample(t *testing.T) []Summary {
	t.Helper()
	rs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return Summarize(rs)
}

func find(t *testing.T, ss []Summary, name string, procs int) Summary {
	t.Helper()
	for _, s := range ss {
		if s.Name == name && s.Procs == procs {
			return s
		}
	}
	t.Fatalf("no summary for %s-%d", name, procs)
	return Summary{}
}

func TestParseAndSummarize(t *testing.T) {
	ss := parseSample(t)
	snoop := find(t, ss, "BenchmarkTable3BoardSnoop", 1)
	if snoop.Runs != 3 || snoop.NsPerOp != 501.0 {
		t.Fatalf("median of 3 runs = %+v", snoop)
	}
	if snoop.Metrics["missratio"] != 0.56 {
		t.Fatalf("missratio = %v", snoop.Metrics)
	}
	// The -procs suffix is split off; sub-benchmark names survive. The
	// depth512 name must not have its trailing digits eaten as procs.
	if find(t, ss, "BenchmarkAblationBufferDepth/depth512", 1).NsPerOp != 300 {
		t.Fatal("sub-benchmark with numeric tail misparsed")
	}
	par := find(t, ss, "BenchmarkBoardSnoopParallel", 8)
	if par.NsPerOp != 400 {
		t.Fatalf("procs variant = %+v", par)
	}
}

// TestCompareFlagsSyntheticSlowdown is the gate's own acceptance test: a
// synthetic 20% slowdown of a Table3/Fig8 kernel must trip the 10%
// threshold, while run-to-run noise within the threshold must not.
func TestCompareFlagsSyntheticSlowdown(t *testing.T) {
	base := parseSample(t)
	filter := regexp.MustCompile(`Table3|Fig8`)

	slow := parseSample(t)
	for i := range slow {
		if slow[i].Name == "BenchmarkTable3BoardSnoop" {
			slow[i].NsPerOp *= 1.20
		}
	}
	deltas := Compare(base, slow, 0.10, filter)
	var tripped int
	for _, d := range deltas {
		if d.Regressed {
			tripped++
			if d.Name != "BenchmarkTable3BoardSnoop" {
				t.Fatalf("wrong benchmark flagged: %+v", d)
			}
		}
	}
	if tripped != 1 {
		t.Fatalf("synthetic 20%% slowdown tripped %d gates, want 1 (deltas %+v)", tripped, deltas)
	}

	noisy := parseSample(t)
	for i := range noisy {
		noisy[i].NsPerOp *= 1.05
	}
	for _, d := range Compare(base, noisy, 0.10, filter) {
		if d.Regressed {
			t.Fatalf("5%% noise tripped the 10%% gate: %+v", d)
		}
	}

	// The filter keeps unrelated benchmarks out of the gate entirely.
	for _, d := range deltas {
		if !filter.MatchString(d.Name) {
			t.Fatalf("unfiltered benchmark compared: %+v", d)
		}
	}
}

// TestCompareMetricGatesAllocs covers the -benchmem gate: B/op within the
// threshold passes, growth beyond it fails, and a benchmark whose baseline
// allocs/op was 0 regresses the moment it allocates at all — no threshold
// can excuse a formerly allocation-free hot path that starts allocating.
func TestCompareMetricGatesAllocs(t *testing.T) {
	const memSample = `
Benchmark%s 	 1000	 500.0 ns/op	 %d B/op	 %d allocs/op
`
	parse := func(bops, allocs int) []Summary {
		t.Helper()
		rs, err := Parse(strings.NewReader(fmt.Sprintf(memSample, "Table3BoardSnoop", bops, allocs)))
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(rs)
	}
	base := parse(100, 0)
	filter := regexp.MustCompile(`Table3`)

	for _, d := range CompareMetric(base, parse(105, 0), "B/op", 0.10, filter) {
		if d.Regressed {
			t.Fatalf("5%% B/op growth tripped the 10%% gate: %+v", d)
		}
	}
	mds := CompareMetric(base, parse(150, 0), "B/op", 0.10, filter)
	if len(mds) != 1 || !mds[0].Regressed {
		t.Fatalf("50%% B/op growth not flagged: %+v", mds)
	}
	// Zero-baseline rule: 0 -> 1 allocs/op regresses at any threshold,
	// 0 -> 0 passes.
	mds = CompareMetric(base, parse(100, 1), "allocs/op", 10.0, filter)
	if len(mds) != 1 || !mds[0].Regressed {
		t.Fatalf("allocation on a zero-alloc baseline not flagged: %+v", mds)
	}
	for _, d := range CompareMetric(base, parse(100, 0), "allocs/op", 0.0, filter) {
		if d.Regressed {
			t.Fatalf("0 -> 0 allocs/op flagged: %+v", d)
		}
	}
	// ns/op is addressable through the same gate, and a metric missing
	// from either side is skipped rather than failed.
	if mds := CompareMetric(base, parse(100, 0), "ns/op", 0.10, filter); len(mds) != 1 || mds[0].Regressed {
		t.Fatalf("ns/op via CompareMetric: %+v", mds)
	}
	if mds := CompareMetric(parseSample(t), parse(100, 0), "B/op", 0.10, filter); len(mds) != 0 {
		t.Fatalf("metric absent from baseline still compared: %+v", mds)
	}
}

func TestSpeedupAndParity(t *testing.T) {
	ss := parseSample(t)
	ratio, lo, hi, err := Speedup(ss, "BenchmarkBoardSnoopParallel")
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1 || hi != 8 || ratio != 3.0 {
		t.Fatalf("speedup = %v (procs %d->%d)", ratio, lo, hi)
	}
	if err := ParityError(ss, "BenchmarkBoardSnoopParallel", "missratio"); err != nil {
		t.Fatal(err)
	}
	// Break parity and expect an error.
	for i := range ss {
		if ss[i].Name == "BenchmarkBoardSnoopParallel" && ss[i].Procs == 8 {
			ss[i].Metrics["missratio"] = 0.6
		}
	}
	if err := ParityError(ss, "BenchmarkBoardSnoopParallel", "missratio"); err == nil {
		t.Fatal("missratio divergence not detected")
	}
	if _, _, _, err := Speedup(ss, "BenchmarkTable3BoardSnoop"); err == nil {
		t.Fatal("speedup with one variant should error")
	}
}

func TestRatio(t *testing.T) {
	rs, err := Parse(strings.NewReader(`
BenchmarkTraceReadV1 	 20000	 11.5 ns/op	 11.5 ns/rec
BenchmarkTraceReadV2Pipeline 	 20000	 33.0 ns/op	 10.0 ns/rec	 1.000 workers
BenchmarkTraceReadV2Pipeline-4 	 20000	 12.0 ns/op	 4.6 ns/rec	 4.000 workers
`))
	if err != nil {
		t.Fatal(err)
	}
	ss := Summarize(rs)
	ratio, baseProcs, newProcs, err := Ratio(ss, "BenchmarkTraceReadV1", "BenchmarkTraceReadV2Pipeline", "ns/rec")
	if err != nil {
		t.Fatal(err)
	}
	if baseProcs != 1 || newProcs != 4 {
		t.Fatalf("procs = %d vs %d, want 1 vs 4", baseProcs, newProcs)
	}
	if ratio != 11.5/4.6 {
		t.Fatalf("ratio = %v, want %v", ratio, 11.5/4.6)
	}
	if _, _, _, err := Ratio(ss, "BenchmarkMissing", "BenchmarkTraceReadV2Pipeline", "ns/rec"); err == nil {
		t.Fatal("missing base accepted")
	}
	if _, _, _, err := Ratio(ss, "BenchmarkTraceReadV1", "BenchmarkTraceReadV2Pipeline", "nope"); err == nil {
		t.Fatal("missing metric accepted")
	}
}

func TestParseRejectsBadValue(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX \t 100 \t nan7 ns/op\n"))
	if err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestMedianEven(t *testing.T) {
	rs, err := Parse(strings.NewReader(fmt.Sprintf(
		"BenchmarkY \t 10 \t %d ns/op\nBenchmarkY \t 10 \t %d ns/op\n", 100, 200)))
	if err != nil {
		t.Fatal(err)
	}
	if got := Summarize(rs)[0].NsPerOp; got != 150 {
		t.Fatalf("even median = %v", got)
	}
}

// TestCompareMetricUpGatesThroughput: the higher-is-better gate fails
// only when a rate metric falls, never when it rises — the direction
// the tx/s throughput floor needs.
func TestCompareMetricUpGatesThroughput(t *testing.T) {
	const txSample = "BenchmarkBoardSustainedTxPerSec/shards8-8 \t 1000 \t 50.0 ns/op \t %g tx/s\n"
	parse := func(rate float64) []Summary {
		t.Helper()
		rs, err := Parse(strings.NewReader(fmt.Sprintf(txSample, rate)))
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(rs)
	}
	base := parse(100e6)
	filter := regexp.MustCompile(`SustainedTxPerSec`)

	// A 3x improvement must pass (the lower-is-better gate would fail it).
	mds := CompareMetricUp(base, parse(300e6), "tx/s", 0.10, filter)
	if len(mds) != 1 || mds[0].Regressed {
		t.Fatalf("3x throughput improvement flagged as regression: %+v", mds)
	}
	if !mds[0].HigherBetter {
		t.Fatalf("delta not marked higher-is-better: %+v", mds[0])
	}
	if down := CompareMetric(base, parse(300e6), "tx/s", 0.10, filter); len(down) != 1 || !down[0].Regressed {
		t.Fatalf("sanity: lower-is-better gate should fail a 3x rate rise: %+v", down)
	}

	// A 5% dip passes a 10% threshold; a 50% dip fails.
	if mds := CompareMetricUp(base, parse(95e6), "tx/s", 0.10, filter); len(mds) != 1 || mds[0].Regressed {
		t.Fatalf("5%% dip tripped the 10%% gate: %+v", mds)
	}
	if mds := CompareMetricUp(base, parse(50e6), "tx/s", 0.10, filter); len(mds) != 1 || !mds[0].Regressed {
		t.Fatalf("50%% throughput collapse not flagged: %+v", mds)
	}

	// Zero current = collapsed rate, regresses at any threshold; zero
	// baseline passes (first measurement, nothing to ratchet).
	if mds := CompareMetricUp(base, parse(0), "tx/s", 10.0, filter); len(mds) != 1 || !mds[0].Regressed {
		t.Fatalf("zero current rate not flagged: %+v", mds)
	}
	if mds := CompareMetricUp(parse(0), parse(100e6), "tx/s", 0.10, filter); len(mds) != 1 || mds[0].Regressed {
		t.Fatalf("zero baseline flagged: %+v", mds)
	}
}
