package stats

import "testing"

func TestTailKeepsTrailingBuckets(t *testing.T) {
	ts := NewTimeSeries(10)
	for i := 0; i < 10; i++ {
		ts.Observe(uint64(i)*10, uint64(i), 10)
	}
	tail := ts.Tail(0.5)
	if tail.Len() != 5 {
		t.Fatalf("Tail(0.5).Len = %d, want 5", tail.Len())
	}
	if tail.BucketWidth() != 10 {
		t.Fatalf("BucketWidth = %d", tail.BucketWidth())
	}
	// The kept buckets are the last five (ratios 0.5..0.9).
	if tail.Ratio(0) != 0.5 || tail.Ratio(4) != 0.9 {
		t.Fatalf("Tail ratios = %v", tail.Ratios())
	}
	// Tail(1) is the whole series.
	if ts.Tail(1).Len() != ts.Len() {
		t.Fatal("Tail(1) truncated")
	}
}

func TestTailRejectsBadFraction(t *testing.T) {
	ts := NewTimeSeries(10)
	for _, frac := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Tail(%v) did not panic", frac)
				}
			}()
			ts.Tail(frac)
		}()
	}
}

func TestTailExcludesWarmupSpikes(t *testing.T) {
	// Declining cold-start ramp then flat: the full series has a steep
	// head; the tail must show no spikes.
	ts := NewTimeSeries(1)
	for i := 0; i < 40; i++ {
		num := uint64(5)
		if i < 8 {
			num = uint64(100 - i*10)
		}
		ts.Observe(uint64(i), num, 100)
	}
	if got := ts.Tail(0.5).Spikes(1.5); len(got) != 0 {
		t.Fatalf("tail has spurious spikes %v", got)
	}
}

func TestTimeSeriesString(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Observe(0, 1, 4)
	if got := ts.String(); got != "timeseries{buckets=1 width=100 mean=0.2500}" {
		t.Fatalf("String = %q", got)
	}
}
