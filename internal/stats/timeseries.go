package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TimeSeries accumulates (numerator, denominator) event pairs into
// fixed-width buckets along a logical time axis (bus cycles or references)
// and reports the per-bucket ratio. The board uses it to build miss-ratio
// profiles over the course of a run, the mechanism behind Figure 10's
// detection of the periodic OS journaling spikes.
type TimeSeries struct {
	bucketWidth uint64
	num, den    []uint64
}

// NewTimeSeries creates a series whose buckets span bucketWidth units of
// the time axis. bucketWidth must be positive.
func NewTimeSeries(bucketWidth uint64) *TimeSeries {
	if bucketWidth == 0 {
		panic("stats: TimeSeries bucket width must be positive")
	}
	return &TimeSeries{bucketWidth: bucketWidth}
}

// Observe records den denominator events of which num were numerator
// events (e.g. den references, num misses) at the given time coordinate.
func (ts *TimeSeries) Observe(at, num, den uint64) {
	i := int(at / ts.bucketWidth)
	for len(ts.num) <= i {
		ts.num = append(ts.num, 0)
		ts.den = append(ts.den, 0)
	}
	ts.num[i] += num
	ts.den[i] += den
}

// BucketWidth returns the width of each bucket on the time axis.
func (ts *TimeSeries) BucketWidth() uint64 { return ts.bucketWidth }

// Len returns the number of buckets observed so far.
func (ts *TimeSeries) Len() int { return len(ts.num) }

// Ratio returns the numerator/denominator ratio of bucket i, or 0 for an
// empty bucket.
func (ts *TimeSeries) Ratio(i int) float64 { return Ratio(ts.num[i], ts.den[i]) }

// Ratios returns the per-bucket ratios as a slice.
func (ts *TimeSeries) Ratios() []float64 {
	out := make([]float64, len(ts.num))
	for i := range out {
		out[i] = ts.Ratio(i)
	}
	return out
}

// Mean returns the ratio aggregated over all buckets (total numerator over
// total denominator), not the mean of per-bucket ratios.
func (ts *TimeSeries) Mean() float64 {
	var n, d uint64
	for i := range ts.num {
		n += ts.num[i]
		d += ts.den[i]
	}
	return Ratio(n, d)
}

// Spikes returns the indices of buckets whose ratio exceeds a local
// baseline by at least factor (e.g. factor 2 keeps buckets at 2x the
// baseline). It is how the Figure 10 analysis turns a profile into
// "periodic spikes every ~5 minutes".
//
// The baseline for each bucket is the median of its surrounding window
// (up to four buckets each side), which makes detection robust against
// slow trends — a declining cold-start ramp is not a spike, a periodic
// bump above its neighborhood is. Buckets with an empty denominator are
// ignored.
func (ts *TimeSeries) Spikes(factor float64) []int {
	const window = 4
	ratios := ts.Ratios()
	var out []int
	var neighborhood []float64
	for i, r := range ratios {
		if ts.den[i] == 0 {
			continue
		}
		neighborhood = neighborhood[:0]
		for j := i - window; j <= i+window; j++ {
			if j == i || j < 0 || j >= len(ratios) || ts.den[j] == 0 {
				continue
			}
			neighborhood = append(neighborhood, ratios[j])
		}
		if len(neighborhood) == 0 {
			continue
		}
		sort.Float64s(neighborhood)
		base := neighborhood[len(neighborhood)/2]
		if base == 0 {
			if r > 0 {
				out = append(out, i)
			}
			continue
		}
		if r >= base*factor {
			out = append(out, i)
		}
	}
	return out
}

// DominantPeriod estimates the spacing, in buckets, between recurring
// spikes, returning 0 when fewer than two spikes exist. The estimate is the
// rounded mean gap between consecutive spike indices, collapsing runs of
// adjacent buckets that belong to one spike.
func (ts *TimeSeries) DominantPeriod(factor float64) int {
	spikes := ts.Spikes(factor)
	if len(spikes) < 2 {
		return 0
	}
	// Collapse adjacent indices into single spike events.
	var events []int
	for i, s := range spikes {
		if i == 0 || s != spikes[i-1]+1 {
			events = append(events, s)
		}
	}
	if len(events) < 2 {
		return 0
	}
	var total int
	for i := 1; i < len(events); i++ {
		total += events[i] - events[i-1]
	}
	return int(math.Round(float64(total) / float64(len(events)-1)))
}

// Tail returns a new series containing only the trailing fraction frac
// (0 < frac <= 1) of the buckets. Spike analyses use it to exclude the
// cold-start ramp, whose elevated miss ratios would otherwise register as
// spurious spikes.
func (ts *TimeSeries) Tail(frac float64) *TimeSeries {
	if frac <= 0 || frac > 1 {
		panic("stats: Tail fraction must be in (0,1]")
	}
	start := int(float64(len(ts.num)) * (1 - frac))
	out := NewTimeSeries(ts.bucketWidth)
	out.num = append(out.num, ts.num[start:]...)
	out.den = append(out.den, ts.den[start:]...)
	return out
}

// Sparkline renders the series as a one-line ASCII profile, useful in CLI
// output for eyeballing Figure 10-style periodicity.
func (ts *TimeSeries) Sparkline() string {
	const glyphs = " .:-=+*#%@"
	ratios := ts.Ratios()
	var max float64
	for _, r := range ratios {
		if r > max {
			max = r
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(ratios))
	}
	var sb strings.Builder
	for _, r := range ratios {
		i := int(r / max * float64(len(glyphs)-1))
		sb.WriteByte(glyphs[i])
	}
	return sb.String()
}

// String summarizes the series.
func (ts *TimeSeries) String() string {
	return fmt.Sprintf("timeseries{buckets=%d width=%d mean=%.4f}", ts.Len(), ts.bucketWidth, ts.Mean())
}
