package stats

import (
	"math"
	"testing"
)

func TestTimeSeriesBucketing(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Observe(0, 1, 10)
	ts.Observe(99, 1, 10)
	ts.Observe(100, 5, 10)
	ts.Observe(250, 0, 10)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	if got := ts.Ratio(0); got != 0.1 {
		t.Fatalf("bucket0 ratio = %v, want 0.1", got)
	}
	if got := ts.Ratio(1); got != 0.5 {
		t.Fatalf("bucket1 ratio = %v, want 0.5", got)
	}
	if got := ts.Ratio(2); got != 0 {
		t.Fatalf("bucket2 ratio = %v, want 0", got)
	}
}

func TestTimeSeriesMeanIsAggregate(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Observe(0, 1, 100) // 1%
	ts.Observe(10, 9, 10) // 90%, tiny denominator
	// Aggregate: 10/110, not (0.01+0.9)/2.
	want := 10.0 / 110.0
	if got := ts.Mean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestTimeSeriesZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTimeSeries(0) did not panic")
		}
	}()
	NewTimeSeries(0)
}

// buildSpikySeries makes a flat 2% miss-ratio profile with spikes to 20%
// every `period` buckets, mimicking the Figure 10 journaling signature.
func buildSpikySeries(buckets, period int) *TimeSeries {
	ts := NewTimeSeries(1000)
	for i := 0; i < buckets; i++ {
		num := uint64(20)
		if period > 0 && i%period == 0 && i > 0 {
			num = 200
		}
		ts.Observe(uint64(i)*1000, num, 1000)
	}
	return ts
}

func TestSpikesDetectsPeriodicSpikes(t *testing.T) {
	ts := buildSpikySeries(100, 10)
	spikes := ts.Spikes(3)
	if len(spikes) != 9 {
		t.Fatalf("Spikes = %v, want 9 spikes", spikes)
	}
	for _, s := range spikes {
		if s%10 != 0 {
			t.Fatalf("spurious spike at bucket %d", s)
		}
	}
}

func TestSpikesFlatSeriesHasNone(t *testing.T) {
	ts := buildSpikySeries(100, 0)
	if spikes := ts.Spikes(3); len(spikes) != 0 {
		t.Fatalf("flat series reported spikes %v", spikes)
	}
}

func TestDominantPeriod(t *testing.T) {
	ts := buildSpikySeries(200, 25)
	if got := ts.DominantPeriod(3); got != 25 {
		t.Fatalf("DominantPeriod = %d, want 25", got)
	}
}

func TestDominantPeriodTooFewSpikes(t *testing.T) {
	ts := buildSpikySeries(15, 10) // only one spike at bucket 10
	if got := ts.DominantPeriod(3); got != 0 {
		t.Fatalf("DominantPeriod = %d, want 0", got)
	}
}

func TestDominantPeriodCollapsesAdjacent(t *testing.T) {
	ts := NewTimeSeries(1)
	for i := 0; i < 60; i++ {
		num := uint64(2)
		// Two-bucket-wide spikes every 20 buckets.
		if i > 0 && (i%20 == 0 || i%20 == 1) {
			num = 50
		}
		ts.Observe(uint64(i), num, 100)
	}
	if got := ts.DominantPeriod(3); got != 20 {
		t.Fatalf("DominantPeriod = %d, want 20", got)
	}
}

func TestSparkline(t *testing.T) {
	ts := buildSpikySeries(50, 10)
	line := ts.Sparkline()
	if len(line) != 50 {
		t.Fatalf("Sparkline length %d, want 50", len(line))
	}
	if line[10] == line[5] {
		t.Fatalf("spike bucket renders same glyph as baseline: %q", line)
	}
}

func TestSparklineEmptySeries(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Observe(0, 0, 0)
	if got := ts.Sparkline(); got != " " {
		t.Fatalf("Sparkline of empty = %q", got)
	}
}

func TestRatiosSliceMatchesRatio(t *testing.T) {
	ts := buildSpikySeries(30, 7)
	rs := ts.Ratios()
	for i := range rs {
		if rs[i] != ts.Ratio(i) {
			t.Fatalf("Ratios[%d] = %v != Ratio(%d) = %v", i, rs[i], i, ts.Ratio(i))
		}
	}
}
