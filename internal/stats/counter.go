// Package stats implements the measurement side of the MemorIES board: the
// 40-bit hardware event counters described in §3 of the paper ("more than
// 400 counters ... each counter is 40-bit wide"), named counter banks with
// group prefixes, interval time series used for miss-ratio profiles
// (Figure 10), and plain-text table/CSV rendering for the experiment
// harness.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CounterMax is the saturation value of a 40-bit hardware counter. At the
// paper's typical 20% utilization of a 100MHz bus this is over 30 hours of
// events, so saturation is an exceptional condition worth surfacing.
const CounterMax uint64 = 1<<40 - 1

// Counter is a 40-bit saturating event counter. The zero value is ready to
// use. It is not safe for concurrent use; the board steps all counters from
// a single lock-step loop, matching the hardware.
type Counter struct {
	v         uint64
	saturated bool
}

// Add increments the counter by n, saturating at CounterMax.
func (c *Counter) Add(n uint64) {
	if n > CounterMax-c.v {
		c.v = CounterMax
		c.saturated = true
		return
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Saturated reports whether the counter has ever hit CounterMax.
func (c *Counter) Saturated() bool { return c.saturated }

// Reset clears the counter and its saturation flag.
func (c *Counter) Reset() { c.v, c.saturated = 0, false }

// Bank is a collection of named counters, as presented by the board's
// console interface. Counter names are hierarchical with '.' separators,
// e.g. "node0.read.miss"; Group extracts sub-banks by prefix.
type Bank struct {
	counters map[string]*Counter
	order    []string
}

// NewBank returns an empty counter bank.
func NewBank() *Bank {
	return &Bank{counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it at zero if
// it does not exist. Creating counters up front (at board initialization)
// keeps the hot path allocation-free.
func (b *Bank) Counter(name string) *Counter {
	if c, ok := b.counters[name]; ok {
		return c
	}
	c := &Counter{}
	b.counters[name] = c
	b.order = append(b.order, name)
	return c
}

// Lookup returns the named counter, or nil if it was never created.
func (b *Bank) Lookup(name string) *Counter { return b.counters[name] }

// Value returns the value of the named counter, or 0 if absent.
func (b *Bank) Value(name string) uint64 {
	if c := b.counters[name]; c != nil {
		return c.v
	}
	return 0
}

// Len returns the number of counters in the bank.
func (b *Bank) Len() int { return len(b.counters) }

// Ordered returns the bank's counter names and the counters themselves in
// creation order, index-aligned. The counter pointers alias the bank's
// live counters: callers that hold them (the observability mirror) read
// values without re-probing the map, but must only do so from the
// goroutine that owns the bank.
func (b *Bank) Ordered() ([]string, []*Counter) {
	names := make([]string, len(b.order))
	copy(names, b.order)
	counters := make([]*Counter, len(names))
	for i, name := range names {
		counters[i] = b.counters[name]
	}
	return names, counters
}

// Names returns all counter names in creation order.
func (b *Bank) Names() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// ResetAll clears every counter in the bank.
func (b *Bank) ResetAll() {
	for _, c := range b.counters {
		c.Reset()
	}
}

// Snapshot returns a copy of all counter values, keyed by name.
func (b *Bank) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(b.counters))
	for name, c := range b.counters {
		out[name] = c.v
	}
	return out
}

// Group returns the names of counters sharing the given dot-separated
// prefix, sorted. A prefix of "node0" matches "node0.read.miss" but not
// "node01.read.miss".
func (b *Bank) Group(prefix string) []string {
	var out []string
	p := prefix + "."
	for name := range b.counters {
		if strings.HasPrefix(name, p) || name == prefix {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Dump renders the bank (optionally filtered by prefix; empty matches all)
// as "name value" lines sorted by name, the format the console software
// extracts over the parallel port.
func (b *Bank) Dump(prefix string) string {
	names := make([]string, 0, len(b.counters))
	for name := range b.counters {
		if prefix == "" || strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		c := b.counters[name]
		sat := ""
		if c.saturated {
			sat = " (saturated)"
		}
		fmt.Fprintf(&sb, "%s %d%s\n", name, c.v, sat)
	}
	return sb.String()
}

// Ratio returns a/b as a float, or 0 when b is zero. Miss ratios and
// utilization figures throughout the experiments use it.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
