package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// harness to print the paper's tables and figure data series.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
