package stats

import "memories/internal/checkpoint"

// Restore sets the counter to a checkpointed value, clamping to the
// 40-bit hardware range (a corrupt snapshot must not produce a counter
// the hardware could never hold).
func (c *Counter) Restore(v uint64, saturated bool) {
	if v > CounterMax {
		v = CounterMax
		saturated = true
	}
	c.v, c.saturated = v, saturated
}

// SaveState serializes every counter (name, value, saturation flag) in
// creation order.
func (b *Bank) SaveState(e *checkpoint.Enc) {
	e.U32(uint32(len(b.order)))
	for _, name := range b.order {
		c := b.counters[name]
		e.Str(name)
		e.U64(c.v)
		e.Bool(c.saturated)
	}
}

// RestoreState loads counter values into the existing bank, so that
// cached *Counter pointers held by the board and the obs mirror remain
// valid. Counters are reset first; a snapshot naming a counter this
// bank does not have means the configurations differ, which is reported
// as corruption.
func (b *Bank) RestoreState(d *checkpoint.Dec) error {
	b.ResetAll()
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		name := d.Str()
		v := d.U64()
		sat := d.Bool()
		if d.Err() != nil {
			break
		}
		c := b.counters[name]
		if c == nil {
			return d.Failf("snapshot counter %q not present in this bank", name)
		}
		c.Restore(v, sat)
	}
	return d.Err()
}
