package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 || c.Saturated() {
		t.Fatal("zero value not clean")
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Reset left %d", c.Value())
	}
}

func TestCounterSaturates(t *testing.T) {
	var c Counter
	c.Add(CounterMax - 1)
	if c.Saturated() {
		t.Fatal("saturated too early")
	}
	c.Add(1)
	if c.Value() != CounterMax {
		t.Fatalf("Value = %d, want max", c.Value())
	}
	if c.Saturated() {
		t.Fatal("exact max should not set saturated flag") // landing exactly on max is representable
	}
	c.Inc()
	if c.Value() != CounterMax || !c.Saturated() {
		t.Fatalf("overflow: value=%d saturated=%v", c.Value(), c.Saturated())
	}
	c.Add(1 << 50)
	if c.Value() != CounterMax {
		t.Fatal("counter exceeded 40 bits")
	}
}

func TestCounterNeverExceeds40Bits(t *testing.T) {
	f := func(adds []uint64) bool {
		var c Counter
		for _, n := range adds {
			c.Add(n)
			if c.Value() > CounterMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounterResetClearsSaturation(t *testing.T) {
	var c Counter
	c.Add(CounterMax)
	c.Inc()
	if !c.Saturated() {
		t.Fatal("expected saturation")
	}
	c.Reset()
	if c.Saturated() || c.Value() != 0 {
		t.Fatal("Reset did not clear saturation")
	}
}

func TestBankCreateAndLookup(t *testing.T) {
	b := NewBank()
	c1 := b.Counter("node0.read.miss")
	c2 := b.Counter("node0.read.miss")
	if c1 != c2 {
		t.Fatal("Counter not idempotent")
	}
	c1.Add(7)
	if b.Value("node0.read.miss") != 7 {
		t.Fatal("Value mismatch")
	}
	if b.Lookup("nope") != nil {
		t.Fatal("Lookup of absent name not nil")
	}
	if b.Value("nope") != 0 {
		t.Fatal("Value of absent name not 0")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBankGroupPrefixBoundary(t *testing.T) {
	b := NewBank()
	b.Counter("node0.read.miss").Inc()
	b.Counter("node0.read.hit").Inc()
	b.Counter("node01.read.miss").Inc()
	g := b.Group("node0")
	if len(g) != 2 {
		t.Fatalf("Group(node0) = %v, want 2 entries", g)
	}
	for _, name := range g {
		if strings.HasPrefix(name, "node01") {
			t.Fatalf("Group(node0) leaked %q", name)
		}
	}
}

func TestBankNamesOrderAndSnapshot(t *testing.T) {
	b := NewBank()
	names := []string{"z", "a", "m"}
	for i, n := range names {
		b.Counter(n).Add(uint64(i + 1))
	}
	got := b.Names()
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("Names() = %v, want creation order %v", got, names)
		}
	}
	snap := b.Snapshot()
	if snap["z"] != 1 || snap["a"] != 2 || snap["m"] != 3 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// Snapshot is a copy: mutating it must not affect the bank.
	snap["z"] = 99
	if b.Value("z") != 1 {
		t.Fatal("Snapshot aliases bank storage")
	}
}

func TestBankResetAll(t *testing.T) {
	b := NewBank()
	b.Counter("a").Add(5)
	b.Counter("b").Add(9)
	b.ResetAll()
	if b.Value("a") != 0 || b.Value("b") != 0 {
		t.Fatal("ResetAll left nonzero counters")
	}
}

func TestBankDump(t *testing.T) {
	b := NewBank()
	b.Counter("bus.cycles").Add(100)
	b.Counter("bus.reads").Add(60)
	b.Counter("node0.miss").Add(3)
	dump := b.Dump("bus.")
	if !strings.Contains(dump, "bus.cycles 100") || !strings.Contains(dump, "bus.reads 60") {
		t.Fatalf("Dump missing entries:\n%s", dump)
	}
	if strings.Contains(dump, "node0") {
		t.Fatalf("Dump prefix filter leaked:\n%s", dump)
	}
	// Sorted order.
	if strings.Index(dump, "bus.cycles") > strings.Index(dump, "bus.reads") {
		t.Fatalf("Dump not sorted:\n%s", dump)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator should be 0")
	}
	if got := Ratio(1, 4); got != 0.25 {
		t.Fatalf("Ratio(1,4) = %v", got)
	}
}
