package stats

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("TABLE X. Demo", "Name", "Count", "Ratio")
	tb.AddRow("alpha", 10, 0.25)
	tb.AddRow("beta-longer", 2000, 12.5)
	s := tb.String()
	if !strings.HasPrefix(s, "TABLE X. Demo\n") {
		t.Fatalf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "Name") || !strings.Contains(lines[1], "Ratio") {
		t.Fatalf("header malformed: %q", lines[1])
	}
	// Column alignment: "Count" column starts at same offset in all rows.
	off := strings.Index(lines[3], "10")
	if off < 0 || !strings.Contains(lines[4][:off+4], "2000") {
		t.Logf("alignment layout:\n%s", s)
	}
	if !strings.Contains(s, "0.2500") {
		t.Fatalf("float <1 should use 4 decimals:\n%s", s)
	}
	if !strings.Contains(s, "12.50") {
		t.Fatalf("float >=1 should use 2 decimals:\n%s", s)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.0371, "0.0371"},
		{5.5, "5.50"},
		{150.2, "150.2"},
	}
	for _, c := range cases {
		if got := formatFloat(c.v); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("plain", `with "quote", comma`)
	csv := tb.CSV()
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableEmptyRows(t *testing.T) {
	tb := NewTable("Empty", "only")
	s := tb.String()
	if !strings.Contains(s, "only") {
		t.Fatalf("header missing:\n%s", s)
	}
}
