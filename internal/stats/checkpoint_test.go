package stats

import (
	"errors"
	"testing"

	"memories/internal/checkpoint"
)

// Round trip: values, saturation flags, and creation order survive, and
// restore lands in the existing counters so cached pointers stay live.
func TestBankCheckpointRoundTrip(t *testing.T) {
	b := NewBank()
	b.Counter("snoops").Add(12345)
	b.Counter("hits").Add(CounterMax + 99) // saturates at the 40-bit cap
	b.Counter("zero")

	var e checkpoint.Enc
	b.SaveState(&e)

	b2 := NewBank()
	// Same counter set, scrambled pre-restore values: restore must
	// overwrite everything, including counters the snapshot saw as zero.
	snoops := b2.Counter("snoops")
	b2.Counter("hits")
	b2.Counter("zero").Add(777)

	d := checkpoint.NewDec("bank", 0, e.Bytes())
	if err := b2.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if snoops.Value() != 12345 {
		t.Fatalf("snoops = %d, want 12345 (cached pointer must see restored value)", snoops.Value())
	}
	if got := b2.Value("hits"); got != CounterMax {
		t.Fatalf("hits = %d, want saturated %d", got, CounterMax)
	}
	if !b2.Counter("hits").Saturated() {
		t.Fatal("hits lost its saturation flag")
	}
	if got := b2.Value("zero"); got != 0 {
		t.Fatalf("zero = %d, want 0 after restore", got)
	}
}

// A snapshot naming a counter this bank does not have is a
// configuration mismatch, reported as corruption.
func TestBankRestoreUnknownCounter(t *testing.T) {
	b := NewBank()
	b.Counter("only-here").Inc()
	var e checkpoint.Enc
	b.SaveState(&e)

	other := NewBank()
	other.Counter("different")
	err := other.RestoreState(checkpoint.NewDec("bank", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", err)
	}
}

// Restore clamps values above the 40-bit hardware range rather than
// materializing a counter the hardware could never hold.
func TestCounterRestoreClamp(t *testing.T) {
	var c Counter
	c.Restore(CounterMax+1, false)
	if c.Value() != CounterMax || !c.Saturated() {
		t.Fatalf("got (%d, %v), want clamped (%d, true)", c.Value(), c.Saturated(), uint64(CounterMax))
	}
	c.Restore(5, true)
	if c.Value() != 5 || !c.Saturated() {
		t.Fatalf("got (%d, %v), want (5, true)", c.Value(), c.Saturated())
	}
}
