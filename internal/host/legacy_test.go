package host

import (
	"fmt"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/workload"
)

// This file retains a verbatim port of the pre-event-wheel host — the
// lock-step loop that advanced global time as every reference was pulled
// from the merged stream — as the equivalence oracle for the
// discrete-event rewrite. TestHostMatchesLegacyPort sweeps
// configs × workloads × seeds and requires the bus transaction stream and
// final Stats to be bit-identical, the same discipline as the PR-2
// seq-stamped shard drain and the PR-4 cache legacy-port tests.
//
// Do not "modernize" this copy: its value is that it does not share code
// with the host under test.

type legacyCPU struct {
	id   int
	host *legacyHost
	l1   *cache.Cache
	coh  *cache.Cache
}

type legacyHost struct {
	cfg   Config
	bus   *bus.Bus
	cpus  []*legacyCPU
	gen   workload.Generator
	rng   *workload.RNG
	stats Stats

	idleCarry    float64
	cyclesPerRef float64
	ioAddr       uint64

	tx bus.Transaction
}

func newLegacyHost(t *testing.T, cfg Config, gen workload.Generator) *legacyHost {
	t.Helper()
	if cfg.MissOverlap <= 0 {
		cfg.MissOverlap = 1
	}
	h := &legacyHost{
		cfg: cfg,
		bus: bus.New(cfg.Bus),
		gen: gen,
		rng: workload.NewRNG(cfg.Seed),
	}
	h.cyclesPerRef = cfg.CPI * float64(cfg.Bus.ClockMHz) / float64(cfg.CPUClockMHz) / float64(cfg.NumCPUs)
	for i := 0; i < cfg.NumCPUs; i++ {
		c := &legacyCPU{id: i, host: h}
		l1geom, err := addr.NewGeometry(cfg.L1Bytes, cfg.LineSize, cfg.L1Assoc)
		if err != nil {
			t.Fatalf("legacy L1 geometry: %v", err)
		}
		l1 := cache.MustNew(cache.Config{Geometry: l1geom, Policy: cache.LRU})
		if cfg.L2Enabled {
			l2geom, err := addr.NewGeometry(cfg.L2Bytes, cfg.LineSize, cfg.L2Assoc)
			if err != nil {
				t.Fatalf("legacy L2 geometry: %v", err)
			}
			c.l1 = l1
			c.coh = cache.MustNew(cache.Config{Geometry: l2geom, Policy: cache.LRU})
		} else {
			c.coh = l1
		}
		h.cpus = append(h.cpus, c)
		h.bus.Attach(c)
	}
	return h
}

func (h *legacyHost) Step() bool {
	ref, ok := h.gen.Next()
	if !ok {
		return false
	}
	h.stats.Refs++
	h.stats.Instructions += ref.Instrs

	h.idleCarry += float64(ref.Instrs) * h.cyclesPerRef
	if h.idleCarry >= 1 {
		n := uint64(h.idleCarry)
		h.bus.Idle(n)
		h.idleCarry -= float64(n)
	}

	if h.cfg.IOFraction > 0 && h.rng.Chance(h.cfg.IOFraction) {
		h.injectIO(ref.CPU)
	}

	c := h.cpus[ref.CPU%len(h.cpus)]
	c.access(ref.Addr, ref.Write)
	return true
}

func (h *legacyHost) Run(n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		if !h.Step() {
			break
		}
	}
	return i
}

func (h *legacyHost) injectIO(cpuID int) {
	h.stats.IOOps++
	h.ioAddr += 8
	var cmd bus.Command
	switch h.rng.Intn(4) {
	case 0:
		cmd = bus.IORead
	case 1:
		cmd = bus.IOWrite
	case 2:
		cmd = bus.Interrupt
	default:
		cmd = bus.Sync
	}
	h.tx = bus.Transaction{
		Cmd:   cmd,
		Addr:  (1 << 52) | (h.ioAddr & 0xffff),
		Size:  8,
		SrcID: cpuID,
	}
	h.bus.Issue(&h.tx)
}

func (c *legacyCPU) access(a uint64, write bool) {
	h := c.host
	geom := c.coh.Geometry()
	line := geom.LineAddr(a)

	if c.l1 != nil {
		if c.l1.Access(line) != stInvalid {
			h.stats.L1Hits++
			if !write {
				return
			}
			st := c.coh.Access(line)
			switch st {
			case stModified:
				return
			case stExclusive:
				c.coh.SetState(line, stModified)
				return
			case stShared:
				c.upgrade(line)
				return
			case stInvalid:
				panic("legacy host: L1 hit without L2 backing (inclusion broken)")
			}
			return
		}
		h.stats.L1Misses++
	}

	st := c.coh.Access(line)
	switch {
	case st == stInvalid:
		c.miss(line, write)
	case write && st == stShared:
		h.stats.L2Hits++
		c.upgrade(line)
	case write && st == stExclusive:
		h.stats.L2Hits++
		c.coh.SetState(line, stModified)
	default:
		h.stats.L2Hits++
	}
	if c.l1 != nil {
		c.l1.Fill(line, 1)
	}
}

func (h *legacyHost) issueWithRetry(tx *bus.Transaction) bus.SnoopResponse {
	for attempt := 0; ; attempt++ {
		resp := h.bus.Issue(tx)
		if resp != bus.RespRetry {
			return resp
		}
		if attempt >= retryLimit {
			h.stats.RetryExhausted++
			return resp
		}
		h.stats.Retried++
		h.bus.Idle(retryDelayCycles)
	}
}

func (c *legacyCPU) upgrade(line uint64) {
	h := c.host
	h.stats.Upgrades++
	h.tx = bus.Transaction{
		Cmd:   bus.DClaim,
		Addr:  line,
		SrcID: c.id,
	}
	h.issueWithRetry(&h.tx)
	c.coh.SetState(line, stModified)
}

func (c *legacyCPU) miss(line uint64, write bool) {
	h := c.host
	h.stats.L2Misses++
	cmd := bus.Read
	if write {
		cmd = bus.RWITM
	}
	h.tx = bus.Transaction{
		Cmd:   cmd,
		Addr:  line,
		Size:  int(h.cfg.LineSize),
		SrcID: c.id,
	}
	resp := h.issueWithRetry(&h.tx)

	h.idleCarry += h.cfg.MissStallBusCycles / h.cfg.MissOverlap
	if h.idleCarry >= 1 {
		n := uint64(h.idleCarry)
		h.bus.Idle(n)
		h.idleCarry -= float64(n)
	}

	fill := uint8(stExclusive)
	switch {
	case write:
		fill = stModified
	case resp == bus.RespShared || resp == bus.RespModified:
		fill = stShared
	}
	victim, evicted := c.coh.Fill(line, fill)
	if evicted {
		if c.l1 != nil {
			c.l1.Invalidate(victim.Addr)
		}
		if victim.State == stModified {
			h.stats.Castouts++
			h.tx = bus.Transaction{
				Cmd:   bus.Castout,
				Addr:  victim.Addr,
				Size:  int(h.cfg.LineSize),
				SrcID: c.id,
			}
			h.issueWithRetry(&h.tx)
		}
	}
}

func (c *legacyCPU) BusID() int { return c.id }

func (c *legacyCPU) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	if !tx.Cmd.IsMemoryOp() {
		return bus.RespNull
	}
	h := c.host
	line := c.coh.Geometry().LineAddr(tx.Addr)
	st := c.coh.Probe(line)
	if st == stInvalid {
		return bus.RespNull
	}
	switch tx.Cmd {
	case bus.Read:
		switch st {
		case stModified:
			h.stats.IntervModSup++
			c.coh.SetState(line, stShared)
			return bus.RespModified
		case stExclusive:
			h.stats.IntervShrSup++
			c.coh.SetState(line, stShared)
			return bus.RespShared
		default:
			return bus.RespShared
		}
	case bus.RWITM, bus.DClaim, bus.Flush:
		h.stats.Invalidations++
		c.coh.Invalidate(line)
		if c.l1 != nil {
			c.l1.Invalidate(line)
		}
		if st == stModified {
			h.stats.IntervModSup++
			return bus.RespModified
		}
		return bus.RespShared
	case bus.Clean:
		if st == stModified {
			c.coh.SetState(line, stShared)
			return bus.RespModified
		}
		return bus.RespNull
	default:
		return bus.RespNull
	}
}

// streamSpy records every bus transaction it snoops (as a passive
// observer, BusID -1) so two engines' full address streams can be
// compared bit-for-bit.
type streamSpy struct {
	txs []bus.Transaction
}

func (s *streamSpy) BusID() int { return -1 }

func (s *streamSpy) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	s.txs = append(s.txs, *tx)
	return bus.RespNull
}

// equivalenceConfigs are the geometry/timing points the legacy sweep
// covers: the paper 8-way default, a small skewed-associativity L2, an
// L2-disabled host (L1 is the coherence point), and a 12-way S7A ceiling
// with I/O injection exercised throughout.
func equivalenceConfigs() []Config {
	base := DefaultConfig()
	base.L1Bytes = 8 * addr.KB
	base.L2Bytes = 256 * addr.KB

	small := base
	small.NumCPUs = 4
	small.L2Bytes = 64 * addr.KB
	small.L2Assoc = 1

	noL2 := base
	noL2.NumCPUs = 8
	noL2.L2Enabled = false
	noL2.L1Bytes = 16 * addr.KB

	wide := base
	wide.NumCPUs = 12
	wide.IOFraction = 0.01

	return []Config{base, small, noL2, wide}
}

func equivalenceWorkloads(ncpu int, seed uint64) map[string]func() workload.Generator {
	return map[string]func() workload.Generator{
		"uniform": func() workload.Generator {
			return workload.NewUniform(workload.UniformConfig{
				NumCPUs: ncpu, FootprintByte: 2 * addr.MB, WriteFraction: 0.3, Seed: seed,
			})
		},
		"zipf": func() workload.Generator {
			return workload.NewZipfian(workload.ZipfConfig{
				NumCPUs: ncpu, FootprintByte: 4 * addr.MB, WriteFraction: 0.25, Seed: seed,
			})
		},
		"tpcc": func() workload.Generator {
			cfg := workload.ScaledTPCCConfig(4096)
			cfg.NumCPUs = ncpu
			cfg.Seed = seed
			return workload.NewTPCC(cfg)
		},
	}
}

// TestHostMatchesLegacyPort is the rewrite's equivalence oracle: for
// every config × workload × seed, the event-driven host must produce a
// bus transaction stream and final Stats bit-identical to the retained
// lock-step port.
func TestHostMatchesLegacyPort(t *testing.T) {
	const refs = 20000
	seeds := []uint64{1, 97}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for ci, cfg := range equivalenceConfigs() {
		for _, seed := range seeds {
			cfg := cfg
			cfg.Seed = seed
			for name, mk := range equivalenceWorkloads(cfg.NumCPUs, seed) {
				t.Run(fmt.Sprintf("cfg%d/%s/seed%d", ci, name, seed), func(t *testing.T) {
					legacy := newLegacyHost(t, cfg, mk())
					legacySpy := &streamSpy{}
					legacy.bus.Attach(legacySpy)

					h := MustNew(cfg, mk())
					spy := &streamSpy{}
					h.Bus().Attach(spy)

					if got, want := h.Run(refs), legacy.Run(refs); got != want {
						t.Fatalf("processed %d refs, legacy %d", got, want)
					}
					if got, want := h.Stats(), legacy.stats; got != want {
						t.Fatalf("stats diverged:\n new   %+v\n legacy %+v", got, want)
					}
					if got, want := h.Bus().Stats(), legacy.bus.Stats(); got != want {
						t.Fatalf("bus stats diverged:\n new   %+v\n legacy %+v", got, want)
					}
					if got, want := h.Bus().Cycle(), legacy.bus.Cycle(); got != want {
						t.Fatalf("bus cycle %d, legacy %d", got, want)
					}
					if len(spy.txs) != len(legacySpy.txs) {
						t.Fatalf("%d bus transactions, legacy %d", len(spy.txs), len(legacySpy.txs))
					}
					for i := range spy.txs {
						if spy.txs[i] != legacySpy.txs[i] {
							t.Fatalf("tx %d diverged:\n new    %+v\n legacy %+v",
								i, spy.txs[i], legacySpy.txs[i])
						}
					}
				})
			}
		}
	}
}
