package host

import (
	"errors"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/workload"
)

// scriptGen replays a fixed list of references.
type scriptGen struct {
	refs []workload.Ref
	i    int
}

func (s *scriptGen) Name() string     { return "script" }
func (s *scriptGen) Footprint() int64 { return 1 << 30 }
func (s *scriptGen) Next() (workload.Ref, bool) {
	if s.i >= len(s.refs) {
		return workload.Ref{}, false
	}
	r := s.refs[s.i]
	s.i++
	if r.Instrs == 0 {
		r.Instrs = 1
	}
	return r, true
}

// busSpy records all transactions passively.
type busSpy struct {
	seen []bus.Transaction
}

func (s *busSpy) BusID() int { return -1 }
func (s *busSpy) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	s.seen = append(s.seen, *tx)
	return bus.RespNull
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumCPUs = 4
	cfg.L1Bytes = 8 * addr.KB
	cfg.L2Bytes = 64 * addr.KB
	cfg.IOFraction = 0
	return cfg
}

func (s *busSpy) byCmd(cmd bus.Command) []bus.Transaction {
	var out []bus.Transaction
	for _, tx := range s.seen {
		if tx.Cmd == cmd {
			out = append(out, tx)
		}
	}
	return out
}

func TestColdReadMissGoesToBus(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{{Addr: 0x10000, CPU: 0}}}
	h := MustNew(testConfig(), gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(10)
	reads := spy.byCmd(bus.Read)
	if len(reads) != 1 {
		t.Fatalf("reads on bus = %d, want 1", len(reads))
	}
	if reads[0].Addr != 0x10000 || reads[0].SrcID != 0 {
		t.Fatalf("read tx = %+v", reads[0])
	}
	s := h.Stats()
	if s.L2Misses != 1 || s.L1Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRepeatReadHitsInL1(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x10000, CPU: 0},
		{Addr: 0x10000, CPU: 0},
		{Addr: 0x10040, CPU: 0}, // same 128B line
	}}
	h := MustNew(testConfig(), gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(10)
	if len(spy.seen) != 1 {
		t.Fatalf("bus transactions = %d, want 1 (only the cold miss)", len(spy.seen))
	}
	if h.Stats().L1Hits != 2 {
		t.Fatalf("L1Hits = %d, want 2", h.Stats().L1Hits)
	}
}

func TestWriteMissUsesRWITM(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{{Addr: 0x20000, CPU: 1, Write: true}}}
	h := MustNew(testConfig(), gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(10)
	if len(spy.byCmd(bus.RWITM)) != 1 {
		t.Fatalf("RWITM count = %d, want 1", len(spy.byCmd(bus.RWITM)))
	}
}

func TestWriteToSharedUpgradesWithDClaim(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x30000, CPU: 0},              // cpu0 reads: E
		{Addr: 0x30000, CPU: 1},              // cpu1 reads: both S
		{Addr: 0x30000, CPU: 0, Write: true}, // cpu0 writes: DClaim
		{Addr: 0x30000, CPU: 1},              // cpu1 re-reads: miss (invalidated)
	}}
	h := MustNew(testConfig(), gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(10)
	if n := len(spy.byCmd(bus.DClaim)); n != 1 {
		t.Fatalf("DClaim count = %d, want 1", n)
	}
	// cpu1's second read must be a fresh bus read (its copy was killed).
	if n := len(spy.byCmd(bus.Read)); n != 3 {
		t.Fatalf("Read count = %d, want 3", n)
	}
	if h.Stats().Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestModifiedInterventionOnRemoteRead(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x40000, CPU: 0, Write: true}, // cpu0 owns M
		{Addr: 0x40000, CPU: 1},              // cpu1 reads: mod intervention
	}}
	h := MustNew(testConfig(), gen)
	h.Run(10)
	if h.Stats().IntervModSup != 1 {
		t.Fatalf("IntervModSup = %d, want 1", h.Stats().IntervModSup)
	}
}

func TestExclusiveDowngradeSuppliesShared(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x50000, CPU: 0}, // cpu0 E
		{Addr: 0x50000, CPU: 1}, // cpu1 read: shared intervention
	}}
	h := MustNew(testConfig(), gen)
	h.Run(10)
	if h.Stats().IntervShrSup != 1 {
		t.Fatalf("IntervShrSup = %d, want 1", h.Stats().IntervShrSup)
	}
}

func TestDirtyEvictionCastsOut(t *testing.T) {
	cfg := testConfig()
	// Direct-mapped tiny L2 to force conflict evictions.
	cfg.L2Bytes = 8 * addr.KB
	cfg.L2Assoc = 1
	cfg.L1Bytes = 8 * addr.KB
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x00000, CPU: 0, Write: true},
		{Addr: 0x10000, CPU: 0, Write: true}, // same set (8KB DM), evicts dirty
	}}
	h := MustNew(cfg, gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(10)
	casts := spy.byCmd(bus.Castout)
	if len(casts) != 1 {
		t.Fatalf("Castout count = %d, want 1", len(casts))
	}
	if casts[0].Addr != 0 {
		t.Fatalf("castout addr = %#x, want 0", casts[0].Addr)
	}
}

func TestL2DisabledMakesL1CoherencePoint(t *testing.T) {
	cfg := testConfig()
	cfg.L2Enabled = false
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x60000, CPU: 0},
		{Addr: 0x60000, CPU: 0},
	}}
	h := MustNew(cfg, gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(10)
	if len(spy.seen) != 1 {
		t.Fatalf("bus transactions = %d, want 1", len(spy.seen))
	}
	// With the small L1 as the only cache, misses reach the bus sooner:
	// a sweep larger than L1 must produce more traffic than with L2 on.
	sweep := func(l2 bool) uint64 {
		cfg := testConfig()
		cfg.L2Enabled = l2
		var refs []workload.Ref
		for a := uint64(0); a < 64*1024; a += 128 {
			refs = append(refs, workload.Ref{Addr: a, CPU: 0})
		}
		refs = append(refs, refs...) // two passes
		h := MustNew(cfg, &scriptGen{refs: refs})
		h.Run(uint64(len(refs)))
		return h.Stats().L2Misses
	}
	if sweep(false) <= sweep(true) {
		t.Fatal("disabling L2 should increase bus misses for a 64KB sweep")
	}
}

func TestInclusionHoldsUnderRandomLoad(t *testing.T) {
	cfg := testConfig()
	gen := workload.NewUniform(workload.UniformConfig{
		NumCPUs: cfg.NumCPUs, FootprintByte: 2 * addr.MB, WriteFraction: 0.3, Seed: 9,
	})
	h := MustNew(cfg, gen)
	h.Run(300_000)
	if bad, violated := h.CheckInclusion(); violated {
		t.Fatalf("inclusion violated at %#x", bad)
	}
}

func TestUtilizationInPaperBand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCPUs = 8
	gen := workload.NewTPCC(workload.ScaledTPCCConfig(256))
	h := MustNew(cfg, gen)
	h.Run(400_000)
	u := h.Bus().Utilization()
	if u < 0.01 || u > 0.42 {
		t.Fatalf("bus utilization %.3f outside sane band (paper observed 2-20%%)", u)
	}
}

func TestIOInjection(t *testing.T) {
	cfg := testConfig()
	cfg.IOFraction = 0.2
	gen := workload.NewUniform(workload.UniformConfig{NumCPUs: 4, FootprintByte: addr.MB, Seed: 2})
	h := MustNew(cfg, gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(10_000)
	if h.Stats().IOOps == 0 {
		t.Fatal("no I/O injected")
	}
	nonMem := 0
	for _, tx := range spy.seen {
		if !tx.Cmd.IsMemoryOp() {
			nonMem++
		}
	}
	if uint64(nonMem) != h.Stats().IOOps {
		t.Fatalf("bus saw %d non-memory ops, stats say %d", nonMem, h.Stats().IOOps)
	}
}

func TestRunStopsAtStreamEnd(t *testing.T) {
	gen := &scriptGen{refs: make([]workload.Ref, 5)}
	h := MustNew(testConfig(), gen)
	if n := h.Run(100); n != 5 {
		t.Fatalf("Run = %d, want 5", n)
	}
}

func TestEstimatedRuntimeGrowsWithMisses(t *testing.T) {
	mk := func(l2bytes int64) float64 {
		cfg := testConfig()
		cfg.L2Bytes = l2bytes
		gen := workload.NewUniform(workload.UniformConfig{
			NumCPUs: 4, FootprintByte: 4 * addr.MB, Seed: 3,
		})
		h := MustNew(cfg, gen)
		h.Run(200_000)
		return h.EstimatedRuntimeSeconds()
	}
	small, big := mk(16*addr.KB), mk(4*addr.MB)
	if small <= big {
		t.Fatalf("runtime with small L2 (%.4fs) not above big L2 (%.4fs)", small, big)
	}
}

func TestInstructionsAccumulated(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x1000, CPU: 0, Instrs: 10},
		{Addr: 0x2000, CPU: 1, Instrs: 20},
	}}
	h := MustNew(testConfig(), gen)
	h.Run(10)
	if h.Stats().Instructions != 30 {
		t.Fatalf("Instructions = %d, want 30", h.Stats().Instructions)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.NumCPUs = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("accepted zero CPUs")
	}
	cfg = testConfig()
	cfg.L2Bytes = 100 // not pow2
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("accepted invalid L2 geometry")
	}
}

// TestCacheFootprintIsPackedWordPerSlot pins the host-side cost of the
// packed directory layout: LRU caches carry no sidecars, so the modeled
// SMP's L1+L2 tag storage is exactly one 8-byte word per slot.
func TestCacheFootprintIsPackedWordPerSlot(t *testing.T) {
	h := MustNew(testConfig(), &scriptGen{})
	var slots int64
	for _, c := range h.cpus {
		if c.l1 != nil {
			slots += c.l1.SlotCount()
		}
		slots += c.coh.SlotCount()
	}
	if slots == 0 {
		t.Fatal("host built no cache slots")
	}
	if got := h.CacheFootprint(); got != 8*slots {
		t.Fatalf("CacheFootprint = %d, want %d (8 B x %d slots)", got, 8*slots, slots)
	}
}

// failGen emits n good references and then fails its stream, modeling a
// trace reader hitting a truncated file.
type failGen struct {
	left int
	err  error
}

func (g *failGen) Name() string     { return "failing" }
func (g *failGen) Footprint() int64 { return 1 << 20 }
func (g *failGen) Err() error       { return g.err }
func (g *failGen) Next() (workload.Ref, bool) {
	if g.left == 0 {
		g.err = errTruncated
		return workload.Ref{}, false
	}
	g.left--
	return workload.Ref{Addr: uint64(g.left) * 128, Instrs: 1}, true
}

var errTruncated = errors.New("trace truncated")

// TestRunSurfacesExhaustionVsError is the regression test for the Err
// sentinel: Step returning false used to conflate "stream finished" with
// "stream broke"; Err and RunE now tell them apart.
func TestRunSurfacesExhaustionVsError(t *testing.T) {
	// Normal end of stream: ErrExhausted.
	done := MustNew(testConfig(), &scriptGen{refs: []workload.Ref{{Addr: 4096}, {Addr: 8192}}})
	if n, err := done.RunE(10); n != 2 || !errors.Is(err, ErrExhausted) {
		t.Fatalf("RunE = (%d, %v), want (2, ErrExhausted)", n, err)
	}
	if !errors.Is(done.Err(), ErrExhausted) {
		t.Fatalf("Err = %v, want ErrExhausted", done.Err())
	}

	// Broken stream: the generator's own error, wrapped — distinct from
	// exhaustion.
	broken := MustNew(testConfig(), &failGen{left: 5})
	n, err := broken.RunE(10)
	if n != 5 {
		t.Fatalf("RunE processed %d refs, want 5", n)
	}
	if !errors.Is(err, errTruncated) || errors.Is(err, ErrExhausted) {
		t.Fatalf("RunE error = %v, want wrapped errTruncated", err)
	}

	// A full run reports no terminal condition.
	live := MustNew(testConfig(), &failGen{left: 100})
	if n, err := live.RunE(10); n != 10 || err != nil {
		t.Fatalf("RunE = (%d, %v), want (10, nil)", n, err)
	}
	if live.Err() != nil {
		t.Fatalf("Err = %v mid-stream, want nil", live.Err())
	}
}

// TestCheckInclusionNonDefaultGeometries exercises the inclusion checker
// away from the 8-way default: an L2-disabled host (no L1/L2 pair, so
// inclusion is vacuous), a direct-mapped L2 under heavy eviction
// pressure, and a deliberately broken hierarchy.
func TestCheckInclusionNonDefaultGeometries(t *testing.T) {
	// L2 off: the L1 is the coherence point; nothing to violate.
	noL2 := testConfig()
	noL2.NumCPUs = 2
	noL2.L2Enabled = false
	h := MustNew(noL2, workload.NewUniform(workload.UniformConfig{
		NumCPUs: 2, FootprintByte: addr.MB, WriteFraction: 0.3, Seed: 3,
	}))
	h.Run(20000)
	if bad, violated := h.CheckInclusion(); violated {
		t.Fatalf("L2-off host reported inclusion violation at %#x", bad)
	}

	// Direct-mapped 32KB L2 over a 16KB 4-way L1: constant L2 evictions
	// must keep invalidating the L1 to preserve inclusion.
	tight := testConfig()
	tight.NumCPUs = 12
	tight.L1Bytes = 16 * addr.KB
	tight.L1Assoc = 4
	tight.L2Bytes = 32 * addr.KB
	tight.L2Assoc = 1
	h = MustNew(tight, workload.NewUniform(workload.UniformConfig{
		NumCPUs: 12, FootprintByte: 4 * addr.MB, WriteFraction: 0.3, Seed: 5,
	}))
	h.Run(50000)
	if bad, violated := h.CheckInclusion(); violated {
		t.Fatalf("inclusion violated at line %#x", bad)
	}

	// Break inclusion by hand (invalidate an L2 line behind the L1's
	// back); the checker must catch it and name the line.
	gen := &scriptGen{refs: []workload.Ref{{Addr: 0x40000, CPU: 0}}}
	h = MustNew(testConfig(), gen)
	h.Run(1)
	line := h.cpus[0].coh.Geometry().LineAddr(0x40000)
	h.cpus[0].coh.Invalidate(line)
	bad, violated := h.CheckInclusion()
	if !violated || bad != line {
		t.Fatalf("CheckInclusion = (%#x, %v), want (%#x, true)", bad, violated, line)
	}
}

// TestEstimatedRuntimeNonDefaultGeometries cross-checks the runtime
// model against the closed-form expectation at machine shapes other
// than the 8-way default.
func TestEstimatedRuntimeNonDefaultGeometries(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"2cpu", func(c *Config) { c.NumCPUs = 2 }},
		{"12cpu-overlap4", func(c *Config) { c.NumCPUs = 12; c.MissOverlap = 4 }},
		{"l2off-fastclock", func(c *Config) { c.L2Enabled = false; c.CPUClockMHz = 500; c.CPI = 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(&cfg)
			h := MustNew(cfg, workload.NewUniform(workload.UniformConfig{
				NumCPUs: cfg.NumCPUs, FootprintByte: 2 * addr.MB, WriteFraction: 0.2, Seed: 7,
			}))
			h.Run(30000)
			s := h.Stats()
			if s.L2Misses == 0 {
				t.Fatal("degenerate run: no misses")
			}
			cpuHz := float64(cfg.CPUClockMHz) * 1e6
			busHz := float64(cfg.Bus.ClockMHz) * 1e6
			want := float64(s.Instructions)*cfg.CPI/cpuHz/float64(cfg.NumCPUs) +
				float64(s.L2Misses)*cfg.MissStallBusCycles/busHz/cfg.MissOverlap/float64(cfg.NumCPUs)
			got := h.EstimatedRuntimeSeconds()
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("EstimatedRuntimeSeconds = %g, want %g", got, want)
			}
			if got <= 0 {
				t.Fatalf("runtime estimate %g not positive", got)
			}
		})
	}
}
