package host

import (
	"fmt"

	"memories/internal/bus"
	"memories/internal/workload"
)

// This file is the discrete-event side of the host: per-CPU actors that
// schedule their next bus-visible event (L2-miss issue, ownership
// upgrade, I/O injection, wakeup after a stall) at an absolute bus-cycle
// timestamp, and the two engines that order those events:
//
//   - EngineWheel pops events from the hierarchical timing wheel in
//     (cycle, cpuID) order. Idle CPUs schedule nothing and cost zero, so
//     wall-clock scales with bus events, not machine size.
//   - EngineLockStep polls every CPU each bus cycle in ID order — the
//     pre-wheel host structure, retained as the baseline the wheel's
//     speedup is measured (and CI-gated) against.
//
// Both engines drive the same actor handlers, and actors only ever
// schedule their own next event at a cycle >= their current one. Under
// that discipline the engines are interchangeable: the wheel pops
// (cycle, cpuID)-ordered events; the poller visits cycles in ascending
// order and, within a cycle, drains each CPU fully in ID order — which
// is the same total order, since no actor can insert an event for
// another actor or in the past. TestPerCPUWheelMatchesLockStep holds the
// two engines to bit-identical bus streams and Stats.

// Engine selects how a per-CPU host orders its events.
type Engine int

const (
	// EngineWheel is the hierarchical timing wheel (the default).
	EngineWheel Engine = iota
	// EngineLockStep polls all CPUs every bus cycle; O(NumCPUs) per
	// cycle regardless of activity. Baseline for scaling comparisons.
	EngineLockStep
)

// pendKind is the one outstanding scheduled event an actor keeps.
type pendKind uint8

const (
	pendNone pendKind = iota
	// pendWake: pull and filter references until the next bus-visible
	// event is found.
	pendWake
	// pendIssueMiss: an L2 miss whose Read/RWITM address tenure is due.
	pendIssueMiss
	// pendIssueUpgrade: a DClaim ownership upgrade due; may degrade to a
	// full miss if a peer invalidated the line in the meantime.
	pendIssueUpgrade
	// pendIO: an injected I/O/interrupt/sync transaction is due.
	pendIO
)

// wakeBurst bounds how many references one wakeup may filter before
// yielding the scheduler, so an all-hit stream cannot starve other
// actors' due events within the same cycle.
const wakeBurst = 1024

// NewPerCPU builds a discrete-event host where each CPU consumes its own
// reference stream. streams must have exactly cfg.NumCPUs entries; a nil
// entry leaves that CPU idle — it is never scheduled and costs nothing,
// which is what lets a 256-way host with 8 active streams run at the
// speed of an 8-way. Stream refs are taken as-is except that their CPU
// field is ignored: stream i always executes on CPU i.
//
// Unlike the merged-stream host (New), per-CPU timing does not divide
// compute time by NumCPUs: each actor advances its own clock by
// CPI·(busClock/cpuClock) per instruction plus its own un-overlapped
// miss stalls, and the bus interleaves actors by timestamp.
func NewPerCPU(cfg Config, streams []workload.Generator, engine Engine) (*Host, error) {
	if len(streams) != cfg.NumCPUs {
		return nil, fmt.Errorf("host: %d streams for %d CPUs", len(streams), cfg.NumCPUs)
	}
	h, err := New(cfg, nil)
	if err != nil {
		return nil, err
	}
	h.perCPU = true
	h.engine = engine
	h.cyclesPerInstr = cfg.CPI * float64(cfg.Bus.ClockMHz) / float64(cfg.CPUClockMHz)
	if engine == EngineWheel {
		h.wheel = newEventWheel(0)
	}
	for i, c := range h.cpus {
		if streams[i] == nil {
			// An idle CPU can never hold a cache line (nothing drives its
			// access path), so its snoop is a guaranteed Null: take it off
			// the bus entirely. This is what makes snoops O(busy CPUs)
			// rather than O(machine size).
			h.bus.Detach(c)
			c.done = true
			continue
		}
		c.gen = streams[i]
		// Decorrelate per-CPU I/O draws without a shared RNG: golden
		// ratio stride, the same mix the workload RNG zero-seed guard
		// uses.
		c.rng = workload.NewRNG(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
		h.live++
		c.schedule(pendWake, 0)
	}
	if h.live == 0 {
		return nil, fmt.Errorf("host: all %d streams are nil", cfg.NumCPUs)
	}
	return h, nil
}

// MustNewPerCPU is NewPerCPU for statically known-good configurations.
func MustNewPerCPU(cfg Config, streams []workload.Generator, engine Engine) *Host {
	h, err := NewPerCPU(cfg, streams, engine)
	if err != nil {
		panic(err)
	}
	return h
}

// PerCPU reports whether this host runs per-CPU streams on the
// discrete-event engines rather than a merged stream.
func (h *Host) PerCPU() bool { return h.perCPU }

// Events returns how many scheduler events have been dispatched. For the
// wheel engine this is the total work the scheduler did; comparing it
// against NumCPUs × cycles (what the lock-step poller inspects) is the
// algorithmic speedup of the rewrite.
func (h *Host) Events() uint64 { return h.events }

// Live returns how many actors still have stream left.
func (h *Host) Live() int { return h.live }

// schedule records the actor's next event and, on the wheel engine,
// inserts it. The lock-step engine finds pending events by polling, so
// recording the (kind, cycle) pair is all it needs.
func (c *cpu) schedule(kind pendKind, cycle uint64) {
	c.pend = kind
	c.pendCycle = cycle
	if c.host.wheel != nil {
		c.host.wheel.Schedule(cycle, int32(c.id))
	}
}

// dispatch runs one due event on its actor.
func (h *Host) dispatch(c *cpu) {
	h.events++
	kind := c.pend
	c.pend = pendNone
	switch kind {
	case pendWake:
		c.wake()
	case pendIO:
		c.issueIO()
	case pendIssueMiss, pendIssueUpgrade:
		c.commit(kind)
		c.schedule(pendWake, c.clock)
	}
}

// RunCycles advances a per-CPU host until the bus clock reaches target
// cycles, processing every event scheduled before it. It returns the
// number of scheduler events dispatched.
func (h *Host) RunCycles(target uint64) uint64 {
	if !h.perCPU {
		panic("host: RunCycles requires a per-CPU host (NewPerCPU)")
	}
	start := h.events
	if h.engine == EngineLockStep {
		h.runCyclesLockStep(target)
	} else {
		h.runCyclesWheel(target)
	}
	h.bus.AdvanceTo(target)
	return h.events - start
}

func (h *Host) runCyclesWheel(target uint64) {
	for h.live > 0 {
		cycle, _, ok := h.wheel.Peek()
		if !ok || cycle >= target {
			return
		}
		_, cpuID, _ := h.wheel.Pop()
		h.dispatch(h.cpus[cpuID])
	}
	h.finish()
}

func (h *Host) runCyclesLockStep(target uint64) {
	for cyc := h.lockCursor; cyc < target; cyc++ {
		h.lockCursor = cyc
		for _, c := range h.cpus {
			for !c.done && c.pend != pendNone && c.pendCycle <= cyc {
				h.dispatch(c)
			}
		}
		if h.live == 0 {
			h.finish()
			break
		}
	}
	h.lockCursor = target
}

// stepEvent dispatches the single next due event, reporting false when
// every stream is exhausted.
func (h *Host) stepEvent() bool {
	if h.live == 0 {
		h.finish()
		return false
	}
	if h.engine == EngineLockStep {
		for {
			for _, c := range h.cpus {
				if !c.done && c.pend != pendNone && c.pendCycle <= h.lockCursor {
					h.dispatch(c)
					return true
				}
			}
			h.lockCursor++
		}
	}
	_, cpuID, ok := h.wheel.Pop()
	if !ok {
		h.finish()
		return false
	}
	h.dispatch(h.cpus[cpuID])
	return true
}

// finish latches the terminal condition once every actor is done.
func (h *Host) finish() {
	if h.live == 0 && h.err == nil {
		h.err = ErrExhausted
	}
}

// wake pulls references from the actor's stream and filters them through
// its private hierarchy until one needs the bus (or an I/O injection
// fires), then schedules that bus event at the actor's local clock.
func (c *cpu) wake() {
	h := c.host
	startClock := c.clock
	for spin := 0; spin < wakeBurst; spin++ {
		var ref workload.Ref
		if c.hasBuf {
			ref = c.buf
			c.hasBuf = false
		} else {
			r, ok := c.gen.Next()
			if !ok {
				c.done = true
				h.live--
				if h.err == nil {
					if er, ok := c.gen.(workload.ErrReporter); ok && er.Err() != nil {
						h.err = fmt.Errorf("host: cpu %d stream: %w", c.id, er.Err())
					}
				}
				return // never rescheduled: a drained actor costs zero
			}
			ref = r
			h.stats.Refs++
			h.stats.Instructions += ref.Instrs

			// Compute time accrues on this CPU's own clock.
			c.carry += float64(ref.Instrs) * h.cyclesPerInstr
			if c.carry >= 1 {
				n := uint64(c.carry)
				c.clock += n
				c.carry -= float64(n)
			}

			if h.cfg.IOFraction > 0 && c.rng.Chance(h.cfg.IOFraction) {
				c.buf, c.hasBuf = ref, true
				switch c.rng.Intn(4) {
				case 0:
					c.pendIOCmd = bus.IORead
				case 1:
					c.pendIOCmd = bus.IOWrite
				case 2:
					c.pendIOCmd = bus.Interrupt
				default:
					c.pendIOCmd = bus.Sync
				}
				c.schedule(pendIO, c.clock)
				return
			}
		}
		if c.filter(ref.Addr, ref.Write) {
			return
		}
	}
	// Burst cap hit on an all-hit stream: yield to peers with due events
	// at this cycle, forcing progress if the refs carried no instructions.
	if c.clock == startClock {
		c.clock++
	}
	c.schedule(pendWake, c.clock)
}

// filter runs one reference through the private hierarchy up to the
// coherence point. Hits commit immediately and return false; a reference
// that needs the bus records the pending tenure, schedules its issue at
// the actor's local clock, and returns true. The coherence decision is
// re-derived at issue time (commit), so peer invalidations that land in
// between are honored exactly as on real hardware.
func (c *cpu) filter(a uint64, write bool) bool {
	h := c.host
	line := c.coh.Geometry().LineAddr(a)

	if c.l1 != nil {
		if c.l1.Access(line) != stInvalid {
			h.stats.L1Hits++
			if !write {
				return false
			}
			st := c.coh.Access(line)
			switch st {
			case stModified:
				return false
			case stExclusive:
				c.coh.SetState(line, stModified)
				return false
			case stShared:
				c.pendLine, c.pendWrite, c.pendFill = line, true, false
				c.schedule(pendIssueUpgrade, c.clock)
				return true
			case stInvalid:
				panic("host: L1 hit without L2 backing (inclusion broken)")
			}
			return false
		}
		h.stats.L1Misses++
	}

	st := c.coh.Access(line)
	switch {
	case st == stInvalid:
		c.pendLine, c.pendWrite, c.pendFill = line, write, true
		c.schedule(pendIssueMiss, c.clock)
		return true
	case write && st == stShared:
		c.pendLine, c.pendWrite, c.pendFill = line, true, true
		c.schedule(pendIssueUpgrade, c.clock)
		return true
	case write && st == stExclusive:
		h.stats.L2Hits++
		c.coh.SetState(line, stModified)
	default:
		h.stats.L2Hits++
	}
	if c.l1 != nil {
		c.l1.Fill(line, 1)
	}
	return false
}

// commit performs the bus-visible half of a pending reference at its
// scheduled cycle, re-probing the coherence state first: between filter
// and commit other actors may have issued, and a planned upgrade whose
// line was invalidated degrades to a full miss.
func (c *cpu) commit(kind pendKind) {
	h := c.host
	line := c.pendLine
	if kind == pendIssueUpgrade {
		switch c.coh.Probe(line) {
		case stShared:
			if c.pendFill {
				h.stats.L2Hits++
			}
			c.upgradeAt(line)
		case stInvalid:
			c.missAt(line, true)
		default:
			// Raced to E/M (defensive: no current snoop reaction raises
			// a peer's state, so this is unreachable today).
			if c.pendFill {
				h.stats.L2Hits++
			}
			c.coh.SetState(line, stModified)
		}
	} else {
		// A line Invalid at filter time stays Invalid: only this CPU
		// fills its own cache.
		c.missAt(line, c.pendWrite)
	}
	if c.pendFill && c.l1 != nil {
		c.l1.Fill(line, 1)
	}
}

// issueIO puts the drawn I/O/interrupt/sync transaction on the bus at
// the actor's clock, then resumes the buffered reference.
func (c *cpu) issueIO() {
	h := c.host
	h.stats.IOOps++
	c.ioAddr += 8
	h.tx = bus.Transaction{
		Cmd:   c.pendIOCmd,
		Addr:  (1 << 52) | uint64(c.id)<<20 | (c.ioAddr & 0xffff),
		Size:  8,
		SrcID: c.id,
	}
	h.bus.IssueAt(c.clock, &h.tx)
	c.syncClock()
	c.schedule(pendWake, c.clock)
}

// syncClock pulls the actor's clock up to the bus: an actor cannot run
// ahead of its own just-completed tenure (bus contention shows up here —
// if earlier-scheduled actors kept the bus busy past this actor's
// timestamp, the wait becomes local stall time).
func (c *cpu) syncClock() {
	if cyc := c.host.bus.Cycle(); cyc > c.clock {
		c.clock = cyc
	}
}

// issueAtWithRetry is the per-CPU twin of issueWithRetry: the back-off
// delay accrues on the actor's own clock rather than the global bus
// idle counter.
func (c *cpu) issueAtWithRetry(tx *bus.Transaction) bus.SnoopResponse {
	h := c.host
	for attempt := 0; ; attempt++ {
		resp := h.bus.IssueAt(c.clock, tx)
		c.syncClock()
		if resp != bus.RespRetry {
			return resp
		}
		if attempt >= retryLimit {
			h.stats.RetryExhausted++
			return resp
		}
		h.stats.Retried++
		c.clock += retryDelayCycles
	}
}

// upgradeAt claims exclusive ownership of a shared line via DClaim at
// the actor's clock.
func (c *cpu) upgradeAt(line uint64) {
	h := c.host
	h.stats.Upgrades++
	h.tx = bus.Transaction{
		Cmd:   bus.DClaim,
		Addr:  line,
		SrcID: c.id,
	}
	c.issueAtWithRetry(&h.tx)
	c.coh.SetState(line, stModified)
}

// missAt fetches a line at the actor's clock, accrues the un-overlapped
// miss stall locally, fills the hierarchy, and writes back any dirty
// victim.
func (c *cpu) missAt(line uint64, write bool) {
	h := c.host
	h.stats.L2Misses++
	cmd := bus.Read
	if write {
		cmd = bus.RWITM
	}
	h.tx = bus.Transaction{
		Cmd:   cmd,
		Addr:  line,
		Size:  int(h.cfg.LineSize),
		SrcID: c.id,
	}
	resp := c.issueAtWithRetry(&h.tx)

	c.carry += h.cfg.MissStallBusCycles / h.cfg.MissOverlap
	if c.carry >= 1 {
		n := uint64(c.carry)
		c.clock += n
		c.carry -= float64(n)
	}

	fill := uint8(stExclusive)
	switch {
	case write:
		fill = stModified
	case resp == bus.RespShared || resp == bus.RespModified:
		fill = stShared
	}
	victim, evicted := c.coh.Fill(line, fill)
	if evicted {
		if c.l1 != nil {
			c.l1.Invalidate(victim.Addr)
		}
		if victim.State == stModified {
			h.stats.Castouts++
			h.tx = bus.Transaction{
				Cmd:   bus.Castout,
				Addr:  victim.Addr,
				Size:  int(h.cfg.LineSize),
				SrcID: c.id,
			}
			c.issueAtWithRetry(&h.tx)
		}
	}
}
