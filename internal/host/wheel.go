package host

import "math/bits"

// eventWheel is a hierarchical timing wheel (Varghese & Lauck) ordering
// per-CPU events by absolute bus cycle. Three levels of 256 slots cover
// the next 2^24 cycles at granularities of 1, 256, and 65536 cycles; an
// unsorted overflow list holds anything further out. Scheduling is O(1);
// popping is O(1) amortized — advancing across an empty region jumps
// directly to the next occupied slot via per-level occupancy bitmaps, so
// idle CPUs (which schedule nothing) cost zero.
//
// Pop order is the total order (cycle, cpu, seq): earliest cycle first,
// ties broken by CPU ID, then by schedule order (seq) for repeated
// schedules of the same CPU at the same cycle. The host proper keeps at
// most one outstanding event per CPU, so (cycle, cpu) is already unique
// there; the seq tiebreak makes the wheel total-ordered for any input,
// which is the property FuzzEventWheel checks.
//
// Scheduling in the past is clamped to the current time: the wheel never
// reorders an event before one already popped.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	// wheelSpan is the horizon covered by the leveled slots; cycles at or
	// beyond now's 2^24-cycle epoch boundary go to the overflow list.
	wheelSpan = 1 << (wheelBits * wheelLevels)
)

// wheelEvent is one scheduled wakeup: which CPU, at which absolute cycle.
type wheelEvent struct {
	cycle uint64
	seq   uint64
	cpu   int32
}

type eventWheel struct {
	now      uint64 // all unpopped events have cycle >= now
	seq      uint64 // schedule stamp for same-(cycle,cpu) tie-breaking
	size     int
	level    [wheelLevels][wheelSlots][]wheelEvent
	occ      [wheelLevels][wheelSlots / 64]uint64 // occupancy bitmaps
	overflow []wheelEvent
}

// newEventWheel creates a wheel whose clock starts at cycle start.
func newEventWheel(start uint64) *eventWheel {
	return &eventWheel{now: start}
}

// Len returns the number of scheduled, not-yet-popped events.
func (w *eventWheel) Len() int { return w.size }

// Now returns the wheel clock: the cycle of the last popped event (or the
// start cycle). Schedules earlier than Now clamp to it.
func (w *eventWheel) Now() uint64 { return w.now }

// Schedule adds an event for cpu at the given absolute cycle, clamping
// cycles in the past to the current wheel time. It returns the effective
// (possibly clamped) cycle.
func (w *eventWheel) Schedule(cycle uint64, cpu int32) uint64 {
	if cycle < w.now {
		cycle = w.now
	}
	ev := wheelEvent{cycle: cycle, seq: w.seq, cpu: cpu}
	w.seq++
	w.place(ev)
	w.size++
	return cycle
}

// place routes an event to the finest level whose current block contains
// its cycle, or to the overflow list beyond the 2^24 horizon.
func (w *eventWheel) place(ev wheelEvent) {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		shift := uint(wheelBits * (lvl + 1))
		if ev.cycle>>shift == w.now>>shift {
			slot := int(ev.cycle>>(wheelBits*lvl)) & wheelMask
			w.level[lvl][slot] = append(w.level[lvl][slot], ev)
			w.occ[lvl][slot>>6] |= 1 << (slot & 63)
			return
		}
	}
	w.overflow = append(w.overflow, ev)
}

// nextOcc returns the first occupied slot index >= from at level lvl, or
// -1 when the rest of the level is empty.
func (w *eventWheel) nextOcc(lvl, from int) int {
	if from >= wheelSlots {
		return -1
	}
	word := from >> 6
	mask := w.occ[lvl][word] &^ ((1 << (from & 63)) - 1)
	for {
		if mask != 0 {
			return word<<6 + bits.TrailingZeros64(mask)
		}
		word++
		if word >= wheelSlots/64 {
			return -1
		}
		mask = w.occ[lvl][word]
	}
}

// cascade drains one slot at level lvl and re-places its events, which
// now land at a finer level (w.now has advanced into their block).
func (w *eventWheel) cascade(lvl, slot int) {
	evs := w.level[lvl][slot]
	w.level[lvl][slot] = w.level[lvl][slot][:0]
	w.occ[lvl][slot>>6] &^= 1 << (slot & 63)
	for _, ev := range evs {
		w.place(ev)
	}
}

// advance moves w.now forward until the level-0 slot holding the next
// event is reachable, cascading coarser slots and refilling from the
// overflow list as epoch boundaries are crossed. It returns the level-0
// slot index of the earliest event, or -1 when the wheel is empty.
func (w *eventWheel) advance() int {
	if w.size == 0 {
		return -1
	}
	for {
		if slot := w.nextOcc(0, int(w.now)&wheelMask); slot >= 0 {
			return slot
		}
		// Level 0 exhausted for this 256-cycle block: jump to the next
		// occupied coarser slot and cascade it down.
		if slot := w.nextOcc(1, int(w.now>>wheelBits)&wheelMask+1); slot >= 0 {
			w.now = w.now&^uint64(wheelSpan>>wheelBits-1) | uint64(slot)<<wheelBits
			w.cascade(1, slot)
			continue
		}
		if slot := w.nextOcc(2, int(w.now>>(2*wheelBits))&wheelMask+1); slot >= 0 {
			w.now = w.now&^uint64(wheelSpan-1) | uint64(slot)<<(2*wheelBits)
			w.cascade(2, slot)
			continue
		}
		// Every leveled slot is empty; the remaining events live in a
		// future epoch on the overflow list. Jump to the earliest one's
		// epoch and redistribute the events that fall inside it.
		min := w.overflow[0].cycle
		for _, ev := range w.overflow[1:] {
			if ev.cycle < min {
				min = ev.cycle
			}
		}
		w.now = min &^ uint64(wheelSpan-1)
		rest := w.overflow[:0]
		for _, ev := range w.overflow {
			if ev.cycle>>uint(wheelBits*wheelLevels) == w.now>>uint(wheelBits*wheelLevels) {
				w.place(ev)
			} else {
				rest = append(rest, ev)
			}
		}
		w.overflow = rest
	}
}

// Peek reports the (cycle, cpu) of the next event without removing it.
func (w *eventWheel) Peek() (uint64, int32, bool) {
	slot := w.advance()
	if slot < 0 {
		return 0, 0, false
	}
	ev := w.level[0][slot][w.minIdx(slot)]
	return ev.cycle, ev.cpu, true
}

// Pop removes and returns the next event in (cycle, cpu, seq) order.
func (w *eventWheel) Pop() (uint64, int32, bool) {
	slot := w.advance()
	if slot < 0 {
		return 0, 0, false
	}
	evs := w.level[0][slot]
	i := w.minIdx(slot)
	ev := evs[i]
	evs[i] = evs[len(evs)-1]
	w.level[0][slot] = evs[:len(evs)-1]
	if len(evs) == 1 {
		w.occ[0][slot>>6] &^= 1 << (slot & 63)
	}
	w.size--
	w.now = ev.cycle
	return ev.cycle, ev.cpu, true
}

// minIdx returns the index of the (cpu, seq)-minimal event in a level-0
// slot. All events in a level-0 slot share one cycle, so this is the
// head of the total order.
func (w *eventWheel) minIdx(slot int) int {
	evs := w.level[0][slot]
	best := 0
	for i := 1; i < len(evs); i++ {
		if evs[i].cpu < evs[best].cpu ||
			(evs[i].cpu == evs[best].cpu && evs[i].seq < evs[best].seq) {
			best = i
		}
	}
	return best
}
