package host

import (
	"sort"
	"testing"
)

// drainWheel pops everything, returning the sequence of events.
func drainWheel(w *eventWheel) []wheelEvent {
	var out []wheelEvent
	for {
		cyc, cpu, ok := w.Pop()
		if !ok {
			return out
		}
		out = append(out, wheelEvent{cycle: cyc, cpu: cpu})
	}
}

func TestWheelOrdersByCycleThenCPU(t *testing.T) {
	w := newEventWheel(0)
	// Deliberately scheduled out of order, spanning all three levels and
	// the overflow list (cycle 1<<30 is beyond the 2^24 horizon).
	ins := []wheelEvent{
		{cycle: 1 << 30, cpu: 0},
		{cycle: 3, cpu: 7},
		{cycle: 70000, cpu: 2},
		{cycle: 3, cpu: 1},
		{cycle: 500, cpu: 9},
		{cycle: 0, cpu: 4},
		{cycle: 70000, cpu: 0},
		{cycle: 1 << 30, cpu: 200},
	}
	for _, ev := range ins {
		w.Schedule(ev.cycle, ev.cpu)
	}
	if got, want := w.Len(), len(ins); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	got := drainWheel(w)
	want := append([]wheelEvent(nil), ins...)
	sort.Slice(want, func(i, j int) bool {
		if want[i].cycle != want[j].cycle {
			return want[i].cycle < want[j].cycle
		}
		return want[i].cpu < want[j].cpu
	})
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].cycle != want[i].cycle || got[i].cpu != want[i].cpu {
			t.Fatalf("pop %d = (%d, cpu %d), want (%d, cpu %d)",
				i, got[i].cycle, got[i].cpu, want[i].cycle, want[i].cpu)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", w.Len())
	}
}

func TestWheelClampsPastSchedules(t *testing.T) {
	w := newEventWheel(0)
	w.Schedule(100, 1)
	if cyc, cpu, _ := w.Pop(); cyc != 100 || cpu != 1 {
		t.Fatalf("pop = (%d, %d), want (100, 1)", cyc, cpu)
	}
	// Scheduling before the popped cycle clamps to it; time never runs
	// backwards.
	if got := w.Schedule(7, 2); got != 100 {
		t.Fatalf("clamped cycle = %d, want 100", got)
	}
	if cyc, _, _ := w.Pop(); cyc != 100 {
		t.Fatalf("clamped pop cycle = %d, want 100", cyc)
	}
	if w.Now() != 100 {
		t.Fatalf("Now = %d, want 100", w.Now())
	}
}

func TestWheelInterleavedScheduleAndPop(t *testing.T) {
	// Re-scheduling after each pop (the host's steady state: every actor
	// keeps exactly one event outstanding) must keep global order even as
	// blocks wrap and cascade.
	w := newEventWheel(0)
	clocks := []uint64{0, 0, 0, 0}
	for i := range clocks {
		w.Schedule(clocks[i], int32(i))
	}
	var last uint64
	for n := 0; n < 10000; n++ {
		cyc, cpu, ok := w.Pop()
		if !ok {
			t.Fatalf("wheel empty at pop %d", n)
		}
		if cyc < last {
			t.Fatalf("pop %d went backwards: %d after %d", n, cyc, last)
		}
		if cyc != clocks[cpu] {
			t.Fatalf("pop %d: cpu %d at cycle %d, want %d", n, cpu, cyc, clocks[cpu])
		}
		last = cyc
		// Deterministic pseudo-random stride, crossing every level.
		stride := uint64(1 + (n*2654435761)%100000)
		clocks[cpu] += stride
		w.Schedule(clocks[cpu], cpu)
	}
}

func TestWheelPeekMatchesPop(t *testing.T) {
	w := newEventWheel(0)
	for i := int32(0); i < 32; i++ {
		w.Schedule(uint64(i)*977, i%8)
	}
	for w.Len() > 0 {
		pc, pcpu, ok := w.Peek()
		if !ok {
			t.Fatal("Peek empty while Len > 0")
		}
		gc, gcpu, _ := w.Pop()
		if pc != gc || pcpu != gcpu {
			t.Fatalf("Peek (%d, %d) != Pop (%d, %d)", pc, pcpu, gc, gcpu)
		}
	}
	if _, _, ok := w.Peek(); ok {
		t.Fatal("Peek reported an event on an empty wheel")
	}
}

// FuzzEventWheel drives random schedule/pop sequences against a sorted
// reference model: every pop must come out in (cycle, cpuID, seq) total
// order with past schedules clamped, and no event may be lost or
// duplicated.
func FuzzEventWheel(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x00, 0x03, 0x00})
	f.Add([]byte{
		0x01, 0xff, 0xff, 0x01, // schedule far
		0x1f, 0x01, 0x00, 0x02, // schedule shifted into overflow
		0x00,                   // pop
		0x01, 0x00, 0x00, 0x01, // schedule at now (clamped)
		0x00, 0x00, 0x00, // pops
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		// The reference model is O(n) per pop; cap the op stream so huge
		// generated inputs don't turn the oracle quadratic-slow.
		if len(data) > 2048 {
			data = data[:2048]
		}
		type modelEvent struct {
			cycle, seq uint64
			cpu        int32
		}
		w := newEventWheel(0)
		var model []modelEvent
		var modelNow, seq uint64

		popBoth := func() {
			cyc, cpu, ok := w.Pop()
			if !ok {
				if len(model) != 0 {
					t.Fatalf("wheel empty with %d events outstanding", len(model))
				}
				return
			}
			best := 0
			for i := 1; i < len(model); i++ {
				m, b := model[i], model[best]
				if m.cycle < b.cycle ||
					(m.cycle == b.cycle && (m.cpu < b.cpu ||
						(m.cpu == b.cpu && m.seq < b.seq))) {
					best = i
				}
			}
			want := model[best]
			model = append(model[:best], model[best+1:]...)
			if cyc != want.cycle || cpu != want.cpu {
				t.Fatalf("pop = (%d, cpu %d), want (%d, cpu %d)",
					cyc, cpu, want.cycle, want.cpu)
			}
			if cyc < modelNow {
				t.Fatalf("pop cycle %d ran backwards past %d", cyc, modelNow)
			}
			modelNow = cyc
		}

		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			if op&1 == 0 {
				popBoth()
				continue
			}
			if len(data) < 3 {
				break
			}
			// delta spans all wheel levels and the overflow epoch list:
			// up to 16 bits shifted left by up to 15. op bit 5 schedules
			// into the past to exercise the clamp.
			shift := uint(op>>1) & 15
			delta := uint64(data[0]) | uint64(data[1])<<8
			cpu := int32(data[2])
			data = data[3:]
			cycle := modelNow + delta<<shift
			if op&0x20 != 0 {
				if d := delta << shift; d <= modelNow {
					cycle = modelNow - d
				} else {
					cycle = 0
				}
			}
			want := cycle
			if want < modelNow {
				want = modelNow
			}
			if got := w.Schedule(cycle, cpu); got != want {
				t.Fatalf("Schedule(%d) = %d with now %d, want %d", cycle, got, modelNow, want)
			}
			model = append(model, modelEvent{cycle: want, seq: seq, cpu: cpu})
			seq++
			if len(model) != w.Len() {
				t.Fatalf("Len = %d, model has %d", w.Len(), len(model))
			}
		}
		for len(model) > 0 {
			popBoth()
		}
		if _, _, ok := w.Pop(); ok {
			t.Fatal("wheel still had events after the model drained")
		}
	})
}
