// Package host models the machine MemorIES plugs into: an S7A-class SMP
// whose processors, private L1/L2 caches, and snooping 6xx bus produce the
// transaction stream the board observes.
//
// The model is deliberately scoped to what the board can see. Processors
// consume a workload.Generator's reference stream; private caches filter
// it; only L2 misses, ownership upgrades, and castouts reach the bus —
// plus the I/O, interrupt, and sync traffic the board's address filter
// must reject. MESI coherence runs between the private caches, including
// cache-to-cache interventions, so the bus stream has the same command mix
// a real 6xx machine would show.
//
// Fidelity note on retries: when a transaction draws a combined Retry
// (only possible from a board configured with RetryOnOverflow), the
// requester backs off and re-issues, but peer caches commit their snoop
// reactions on the first attempt rather than waiting for the combined
// response. The re-issued transaction finds those reactions already
// applied, which is idempotent for every MESI action, so coherence is
// unaffected; only the intervention/invalidation counters can run one
// event high per retry.
//
// Timing: each instruction advances the bus clock by
// CPI * (busClock/cpuClock) / NumCPUs idle cycles, and each L2 miss stalls
// its processor for a memory latency. Together these place bus utilization
// in the paper's observed 2-20% band for ordinary workloads, which is what
// keeps the board's SDRAM (42% throughput) comfortably ahead of the bus.
package host

import (
	"errors"
	"fmt"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/workload"
)

// ErrExhausted is the terminal condition Host.Err reports after the
// workload stream ended normally. A generator that failed (its
// workload.ErrReporter carries a non-nil error) surfaces that error
// instead, so callers can tell "ran out of trace" from "trace broke".
var ErrExhausted = errors.New("host: workload stream exhausted")

// Private-cache line states (cache.Cache state bytes). The host caches use
// a fixed MESI protocol — the *programmable* protocol machinery belongs to
// the board, which emulates caches below these.
const (
	stInvalid   = cache.StateInvalid
	stShared    = 1
	stExclusive = 2
	stModified  = 3
)

// Config describes the host machine.
type Config struct {
	// NumCPUs is the processor count (the S7A tops out at 12; the
	// paper's case studies use 8).
	NumCPUs int
	// CPUClockMHz is the processor clock (262 MHz Northstar).
	CPUClockMHz int
	// CPI is the average cycles per instruction excluding L2-miss stalls;
	// commercial workloads on this class of machine run at CPI 4-8.
	CPI float64
	// MissStallBusCycles is the processor stall per L2 miss, in bus
	// cycles (~600ns loaded memory latency at 100 MHz = 60 cycles).
	MissStallBusCycles float64
	// MissOverlap is how many outstanding misses overlap machine-wide;
	// these in-order processors sustain little memory parallelism, so the
	// default is 2. Lower values mean more of each miss's latency shows
	// up as bus idle time, pushing utilization down toward the 2-20% the
	// paper observed.
	MissOverlap float64
	// LineSize is the cache line size for L1 and L2 (the S7A uses 128B).
	LineSize int64
	// L1Bytes/L1Assoc size the per-CPU L1 (data) cache.
	L1Bytes int64
	L1Assoc int
	// L2Bytes/L2Assoc size the per-CPU L2. The S7A allows reconfiguring
	// at boot from 8MB 4-way down to 1MB direct-mapped — the knob the
	// paper's Table 5 exploits.
	L2Bytes int64
	L2Assoc int
	// L2Enabled false turns the L2 off entirely; the board then emulates
	// an L2 rather than an L3 (paper §1).
	L2Enabled bool
	// IOFraction is the probability of injecting an I/O / interrupt /
	// sync transaction between references, exercising the board's
	// address filter.
	IOFraction float64
	// Bus is the bus configuration.
	Bus bus.Config
	// Seed drives the host's internal randomness (I/O injection).
	Seed uint64
}

// DefaultConfig returns the paper's host: an 8-way S7A with 8MB 4-way L2s.
func DefaultConfig() Config {
	return Config{
		NumCPUs:            8,
		CPUClockMHz:        262,
		CPI:                6,
		MissStallBusCycles: 60,
		MissOverlap:        2,
		LineSize:           128,
		L1Bytes:            64 * addr.KB,
		L1Assoc:            2,
		L2Bytes:            8 * addr.MB,
		L2Assoc:            4,
		L2Enabled:          true,
		IOFraction:         0.002,
		Bus:                bus.DefaultConfig(),
		Seed:               1,
	}
}

// Stats aggregates host activity.
type Stats struct {
	Refs          uint64 // workload references processed
	Instructions  uint64 // instructions executed (sum of Ref.Instrs)
	L1Hits        uint64
	L1Misses      uint64
	L2Hits        uint64 // hits in the coherence (lowest private) cache
	L2Misses      uint64 // misses that went to the bus
	Upgrades      uint64 // DClaim ownership upgrades
	Castouts      uint64 // dirty evictions written back on the bus
	IntervModSup  uint64 // interventions supplied from a Modified line
	IntervShrSup  uint64 // snoop responses supplied Shared
	Invalidations uint64 // lines lost to other CPUs' writes
	IOOps         uint64 // injected non-memory transactions
	Retried       uint64 // transactions re-issued after a bus retry
	// RetryExhausted counts transactions abandoned after retryLimit
	// re-issues. A nonzero value means some device retried the same
	// operation ~1000 times in a row — on real hardware this is a hung
	// bus; in the model it flags a board (or injected fault) stuck in a
	// permanent-retry state, and the affected reference proceeds as if it
	// had completed so the run can finish and be diagnosed from counters.
	RetryExhausted uint64
}

// cpu is one processor with its private hierarchy. The coherence cache is
// the L2 when enabled, otherwise the L1.
//
// In a per-CPU host (NewPerCPU) the processor is also a discrete-event
// actor: it consumes its own reference stream, keeps a local clock in
// bus cycles, and always has at most one scheduled event (pend) — the
// next point it becomes bus-visible. The actor fields stay zero in a
// merged-stream host.
type cpu struct {
	id   int
	host *Host
	l1   *cache.Cache // nil when the L1 is the coherence cache
	coh  *cache.Cache

	// Discrete-event actor state (per-CPU mode only).
	gen       workload.Generator // this CPU's private stream (nil = idle)
	rng       *workload.RNG      // per-CPU I/O injection draws
	clock     uint64             // local time, absolute bus cycles
	carry     float64            // fractional local cycles pending
	ioAddr    uint64             // per-CPU I/O register cursor
	pend      pendKind           // the one outstanding scheduled event
	pendCycle uint64             // absolute cycle pend is due
	pendLine  uint64             // line address of a pending miss/upgrade
	pendWrite bool               // pending miss is a store
	pendFill  bool               // commit must fill the L1 (L2-path refs)
	pendIOCmd bus.Command        // drawn command of a pending I/O event
	buf       workload.Ref       // reference paused behind a pending I/O
	hasBuf    bool
	done      bool // stream exhausted; never scheduled again
}

// Host is the modeled SMP.
type Host struct {
	cfg   Config
	bus   *bus.Bus
	cpus  []*cpu
	gen   workload.Generator
	rng   *workload.RNG
	stats Stats

	idleCarry    float64 // fractional idle bus cycles pending
	cyclesPerRef float64 // idle cycles per instruction
	ioAddr       uint64
	err          error // terminal condition; see Err

	// Discrete-event state (per-CPU mode only; see percpu.go).
	perCPU         bool
	engine         Engine
	wheel          *eventWheel // nil on EngineLockStep
	events         uint64      // scheduler events dispatched
	live           int         // actors with stream remaining
	lockCursor     uint64      // lock-step engine's poll cycle
	cyclesPerInstr float64     // per-CPU compute cycles per instruction

	// tx is the scratch transaction reused by every bus issue on the
	// step hot path. Safe because no snooper retains the pointer past
	// its Snoop/ObserveResponse call (the board copies the fields it
	// buffers), and the host is single-threaded; it is what makes
	// Host.Step allocation-free.
	tx bus.Transaction
}

// New builds the host. The workload generator may be nil and set later
// with SetWorkload.
func New(cfg Config, gen workload.Generator) (*Host, error) {
	if cfg.NumCPUs <= 0 {
		return nil, fmt.Errorf("host: NumCPUs must be positive")
	}
	if cfg.CPUClockMHz <= 0 || cfg.CPI <= 0 {
		return nil, fmt.Errorf("host: invalid clocking")
	}
	if cfg.MissOverlap <= 0 {
		cfg.MissOverlap = 1
	}
	h := &Host{
		cfg: cfg,
		bus: bus.New(cfg.Bus),
		gen: gen,
		rng: workload.NewRNG(cfg.Seed),
	}
	h.cyclesPerRef = cfg.CPI * float64(cfg.Bus.ClockMHz) / float64(cfg.CPUClockMHz) / float64(cfg.NumCPUs)
	for i := 0; i < cfg.NumCPUs; i++ {
		c := &cpu{id: i, host: h}
		l1geom, err := addr.NewGeometry(cfg.L1Bytes, cfg.LineSize, cfg.L1Assoc)
		if err != nil {
			return nil, fmt.Errorf("host: L1: %v", err)
		}
		l1 := cache.MustNew(cache.Config{Geometry: l1geom, Policy: cache.LRU})
		if cfg.L2Enabled {
			l2geom, err := addr.NewGeometry(cfg.L2Bytes, cfg.LineSize, cfg.L2Assoc)
			if err != nil {
				return nil, fmt.Errorf("host: L2: %v", err)
			}
			c.l1 = l1
			c.coh = cache.MustNew(cache.Config{Geometry: l2geom, Policy: cache.LRU})
		} else {
			c.coh = l1
		}
		h.cpus = append(h.cpus, c)
		h.bus.Attach(c)
	}
	return h, nil
}

// MustNew is New for statically known-good configurations.
func MustNew(cfg Config, gen workload.Generator) *Host {
	h, err := New(cfg, gen)
	if err != nil {
		panic(err)
	}
	return h
}

// Bus returns the host's 6xx bus, where observers (the MemorIES board)
// attach.
func (h *Host) Bus() *bus.Bus { return h.bus }

// Config returns the host configuration.
func (h *Host) Config() Config { return h.cfg }

// Stats returns a copy of the host statistics.
func (h *Host) Stats() Stats { return h.stats }

// SetWorkload replaces the workload generator.
func (h *Host) SetWorkload(gen workload.Generator) { h.gen = gen }

// Generator returns the current workload generator (nil if unset).
func (h *Host) Generator() workload.Generator { return h.gen }

// Err reports the host's terminal condition: nil while the stream is
// live, ErrExhausted after it ended normally, or the generator's own
// error (wrapped) when the stream failed. In per-CPU mode the first
// failing stream, in deterministic event order, wins.
func (h *Host) Err() error { return h.err }

// Step advances the host by one unit — a workload reference in merged
// mode, a scheduler event in per-CPU mode — returning false when the
// workload stream has ended. Err distinguishes exhaustion from failure.
func (h *Host) Step() bool {
	if h.perCPU {
		return h.stepEvent()
	}
	ref, ok := h.gen.Next()
	if !ok {
		if h.err == nil {
			if er, ok := h.gen.(workload.ErrReporter); ok && er.Err() != nil {
				h.err = fmt.Errorf("host: workload %q: %w", h.gen.Name(), er.Err())
			} else {
				h.err = ErrExhausted
			}
		}
		return false
	}
	h.stats.Refs++
	h.stats.Instructions += ref.Instrs

	// Compute time: instructions advance the bus clock as idle cycles.
	h.idleCarry += float64(ref.Instrs) * h.cyclesPerRef
	if h.idleCarry >= 1 {
		n := uint64(h.idleCarry)
		h.bus.Idle(n)
		h.idleCarry -= float64(n)
	}

	// Occasional non-memory traffic for the address filter to reject.
	if h.cfg.IOFraction > 0 && h.rng.Chance(h.cfg.IOFraction) {
		h.injectIO(ref.CPU)
	}

	c := h.cpus[ref.CPU%len(h.cpus)]
	c.access(ref.Addr, ref.Write)
	return true
}

// Run processes up to n references, returning how many were processed.
// A short count means the stream ended; Err tells exhaustion from
// failure. A per-CPU host advances in whole scheduler events, and one
// wakeup may filter several references, so the count can overshoot n by
// a fraction of an event.
func (h *Host) Run(n uint64) uint64 {
	if h.perCPU {
		start := h.stats.Refs
		for h.live > 0 && h.stats.Refs-start < n {
			h.stepEvent()
		}
		if h.live == 0 {
			h.finish()
		}
		return h.stats.Refs - start
	}
	var i uint64
	for ; i < n; i++ {
		if !h.Step() {
			break
		}
	}
	return i
}

// RunE is Run with the terminal condition surfaced: it returns a nil
// error when all n references were processed, and otherwise the reason
// the stream stopped short — ErrExhausted for a normal end of stream, or
// the generator's own error.
func (h *Host) RunE(n uint64) (uint64, error) {
	done := h.Run(n)
	if done < n {
		return done, h.err
	}
	return done, nil
}

// injectIO issues one I/O-register, interrupt, or sync transaction.
func (h *Host) injectIO(cpuID int) {
	h.stats.IOOps++
	h.ioAddr += 8
	var cmd bus.Command
	switch h.rng.Intn(4) {
	case 0:
		cmd = bus.IORead
	case 1:
		cmd = bus.IOWrite
	case 2:
		cmd = bus.Interrupt
	default:
		cmd = bus.Sync
	}
	h.tx = bus.Transaction{
		Cmd:   cmd,
		Addr:  (1 << 52) | (h.ioAddr & 0xffff), // I/O space, outside memory
		Size:  8,
		SrcID: cpuID,
	}
	h.bus.Issue(&h.tx)
}

// access runs one reference through the private hierarchy.
func (c *cpu) access(a uint64, write bool) {
	h := c.host
	geom := c.coh.Geometry()
	line := geom.LineAddr(a)

	// L1 filter (valid-bit only; coherence state lives in the L2).
	if c.l1 != nil {
		if c.l1.Access(line) != stInvalid {
			h.stats.L1Hits++
			if !write {
				return
			}
			// Write hits still need ownership at the coherence point.
			st := c.coh.Access(line)
			switch st {
			case stModified:
				return
			case stExclusive:
				c.coh.SetState(line, stModified)
				return
			case stShared:
				c.upgrade(line)
				return
			case stInvalid:
				// L1 had the line but L2 lost it (inclusion violation
				// would be a bug; the eviction path below prevents it).
				panic("host: L1 hit without L2 backing (inclusion broken)")
			}
			return
		}
		h.stats.L1Misses++
	}

	st := c.coh.Access(line)
	switch {
	case st == stInvalid:
		c.miss(line, write)
	case write && st == stShared:
		h.stats.L2Hits++
		c.upgrade(line)
	case write && st == stExclusive:
		h.stats.L2Hits++
		c.coh.SetState(line, stModified)
	default:
		h.stats.L2Hits++
	}
	if c.l1 != nil {
		c.l1.Fill(line, 1)
	}
}

// retryDelayCycles is how long a processor backs off before re-issuing a
// retried transaction; retryLimit bounds livelock in pathological setups
// (a board misconfigured to retry everything).
const (
	retryDelayCycles = 16
	retryLimit       = 1000
)

// issueWithRetry puts a transaction on the bus, honoring the 6xx retry
// protocol: a combined Retry response means some device (in practice only
// an overflowing MemorIES board) could not accept it, and the requester
// must back off and re-issue. After retryLimit consecutive retries the
// host gives up on the transaction — counting the event in
// Stats.RetryExhausted — and treats it as complete, trading accuracy for
// forward progress exactly once per pathological operation.
func (h *Host) issueWithRetry(tx *bus.Transaction) bus.SnoopResponse {
	for attempt := 0; ; attempt++ {
		resp := h.bus.Issue(tx)
		if resp != bus.RespRetry {
			return resp
		}
		if attempt >= retryLimit {
			h.stats.RetryExhausted++
			return resp
		}
		h.stats.Retried++
		h.bus.Idle(retryDelayCycles)
	}
}

// upgrade claims exclusive ownership of a shared line via DClaim.
func (c *cpu) upgrade(line uint64) {
	h := c.host
	h.stats.Upgrades++
	h.tx = bus.Transaction{
		Cmd:   bus.DClaim,
		Addr:  line,
		SrcID: c.id,
	}
	h.issueWithRetry(&h.tx)
	c.coh.SetState(line, stModified)
}

// miss fetches a line from the bus with the appropriate command, fills the
// hierarchy, and writes back any dirty victim.
func (c *cpu) miss(line uint64, write bool) {
	h := c.host
	h.stats.L2Misses++
	cmd := bus.Read
	if write {
		cmd = bus.RWITM
	}
	h.tx = bus.Transaction{
		Cmd:   cmd,
		Addr:  line,
		Size:  int(h.cfg.LineSize),
		SrcID: c.id,
	}
	resp := h.issueWithRetry(&h.tx)

	// Memory-latency stall; only MissOverlap misses hide each other.
	h.idleCarry += h.cfg.MissStallBusCycles / h.cfg.MissOverlap
	if h.idleCarry >= 1 {
		n := uint64(h.idleCarry)
		h.bus.Idle(n)
		h.idleCarry -= float64(n)
	}

	fill := uint8(stExclusive)
	switch {
	case write:
		fill = stModified
	case resp == bus.RespShared || resp == bus.RespModified:
		fill = stShared
	}
	victim, evicted := c.coh.Fill(line, fill)
	if evicted {
		if c.l1 != nil {
			c.l1.Invalidate(victim.Addr) // inclusion
		}
		if victim.State == stModified {
			h.stats.Castouts++
			h.tx = bus.Transaction{
				Cmd:   bus.Castout,
				Addr:  victim.Addr,
				Size:  int(h.cfg.LineSize),
				SrcID: c.id,
			}
			h.issueWithRetry(&h.tx)
		}
	}
}

// BusID implements bus.Snooper.
func (c *cpu) BusID() int { return c.id }

// Snoop implements bus.Snooper: MESI reactions of this CPU's private
// hierarchy to other CPUs' transactions.
func (c *cpu) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	if !tx.Cmd.IsMemoryOp() {
		return bus.RespNull
	}
	h := c.host
	line := c.coh.Geometry().LineAddr(tx.Addr)
	st := c.coh.Probe(line)
	if st == stInvalid {
		return bus.RespNull
	}
	switch tx.Cmd {
	case bus.Read:
		switch st {
		case stModified:
			h.stats.IntervModSup++
			c.coh.SetState(line, stShared)
			return bus.RespModified
		case stExclusive:
			h.stats.IntervShrSup++
			c.coh.SetState(line, stShared)
			return bus.RespShared
		default:
			return bus.RespShared
		}
	case bus.RWITM, bus.DClaim, bus.Flush:
		h.stats.Invalidations++
		c.coh.Invalidate(line)
		if c.l1 != nil {
			c.l1.Invalidate(line)
		}
		if st == stModified {
			h.stats.IntervModSup++
			return bus.RespModified
		}
		return bus.RespShared
	case bus.Clean:
		if st == stModified {
			c.coh.SetState(line, stShared)
			return bus.RespModified
		}
		return bus.RespNull
	default: // Castout, Push: no reaction
		return bus.RespNull
	}
}

// CacheFootprint returns the total backing-store bytes of the host's
// private cache hierarchy (every CPU's L1 and coherence-point cache),
// from the packed tag-word layout. The host caches model real hardware
// rather than board SDRAM, but the same single-word-per-slot encoding
// keeps the full-machine emulation footprint proportional to tags, not
// data.
func (h *Host) CacheFootprint() int64 {
	var total int64
	for _, c := range h.cpus {
		if c.l1 != nil {
			total += c.l1.DirectoryBytes()
		}
		total += c.coh.DirectoryBytes()
	}
	return total
}

// CheckInclusion verifies L1 ⊆ L2 for every CPU; tests call it after
// random workloads. It returns the first violating address, if any.
func (h *Host) CheckInclusion() (uint64, bool) {
	for _, c := range h.cpus {
		if c.l1 == nil {
			continue
		}
		var bad uint64
		found := false
		c.l1.ForEachValid(func(line uint64, _ uint8) {
			if !found && c.coh.Probe(line) == stInvalid {
				bad, found = line, true
			}
		})
		if found {
			return bad, true
		}
	}
	return 0, false
}

// EstimatedRuntimeSeconds models wall-clock execution time for the work
// processed so far: instruction time plus un-overlapped L2-miss stalls.
// Table 5's runtime comparisons between L2 configurations come from this.
func (h *Host) EstimatedRuntimeSeconds() float64 {
	cpuHz := float64(h.cfg.CPUClockMHz) * 1e6
	instrSec := float64(h.stats.Instructions) * h.cfg.CPI / cpuHz / float64(h.cfg.NumCPUs)
	busHz := float64(h.cfg.Bus.ClockMHz) * 1e6
	stallSec := float64(h.stats.L2Misses) * h.cfg.MissStallBusCycles / busHz / h.cfg.MissOverlap / float64(h.cfg.NumCPUs)
	return instrSec + stallSec
}
