package host

import (
	"errors"
	"fmt"
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/workload"
)

// perCPUTestConfig is a geometry small enough to generate dense
// coherence traffic from megabyte streams.
func perCPUTestConfig(ncpu int) Config {
	cfg := DefaultConfig()
	cfg.NumCPUs = ncpu
	cfg.L1Bytes = 8 * addr.KB
	cfg.L2Bytes = 64 * addr.KB
	cfg.IOFraction = 0
	return cfg
}

// perCPUStreams builds `active` single-CPU Zipf streams (remaining CPUs
// idle). Every stream draws over the same region (each fresh Layout
// allocates from the same base), so the streams conflict and exercise
// upgrades, invalidations, and interventions across actors.
func perCPUStreams(ncpu, active int, seed uint64) []workload.Generator {
	streams := make([]workload.Generator, ncpu)
	for i := 0; i < active; i++ {
		streams[i] = workload.NewZipfian(workload.ZipfConfig{
			NumCPUs:       1,
			FootprintByte: addr.MB,
			WriteFraction: 0.3,
			Seed:          seed + uint64(i),
		})
	}
	return streams
}

// TestPerCPUWheelMatchesLockStep is the per-CPU engines' equivalence
// oracle: the hierarchical wheel and the lock-step poller must dispatch
// the same events in the same order, producing bit-identical bus
// transaction streams, Stats, and event counts.
func TestPerCPUWheelMatchesLockStep(t *testing.T) {
	const cycles = 120000
	for _, tc := range []struct {
		name   string
		ncpu   int
		active int
		iofrac float64
	}{
		{"8cpu-8active", 8, 8, 0},
		{"16cpu-4active", 16, 4, 0},
		{"12cpu-3active-io", 12, 3, 0.01},
	} {
		for _, seed := range []uint64{1, 41} {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				cfg := perCPUTestConfig(tc.ncpu)
				cfg.IOFraction = tc.iofrac
				cfg.Seed = seed

				wheelHost := MustNewPerCPU(cfg, perCPUStreams(tc.ncpu, tc.active, seed), EngineWheel)
				wheelSpy := &streamSpy{}
				wheelHost.Bus().Attach(wheelSpy)

				lockHost := MustNewPerCPU(cfg, perCPUStreams(tc.ncpu, tc.active, seed), EngineLockStep)
				lockSpy := &streamSpy{}
				lockHost.Bus().Attach(lockSpy)

				wheelHost.RunCycles(cycles)
				lockHost.RunCycles(cycles)

				if got, want := wheelHost.Events(), lockHost.Events(); got != want {
					t.Fatalf("wheel dispatched %d events, lock-step %d", got, want)
				}
				if got, want := wheelHost.Stats(), lockHost.Stats(); got != want {
					t.Fatalf("stats diverged:\n wheel %+v\n lock  %+v", got, want)
				}
				if got, want := wheelHost.Bus().Stats(), lockHost.Bus().Stats(); got != want {
					t.Fatalf("bus stats diverged:\n wheel %+v\n lock  %+v", got, want)
				}
				if len(wheelSpy.txs) != len(lockSpy.txs) {
					t.Fatalf("wheel issued %d transactions, lock-step %d",
						len(wheelSpy.txs), len(lockSpy.txs))
				}
				for i := range wheelSpy.txs {
					if wheelSpy.txs[i] != lockSpy.txs[i] {
						t.Fatalf("tx %d diverged:\n wheel %+v\n lock  %+v",
							i, wheelSpy.txs[i], lockSpy.txs[i])
					}
				}
				if wheelHost.Stats().L2Misses == 0 || wheelHost.Stats().Invalidations == 0 {
					t.Fatalf("degenerate run (stats %+v); streams must conflict", wheelHost.Stats())
				}
			})
		}
	}
}

// TestPerCPUIdleCPUsCostZero pins the tentpole property: growing the
// machine with idle CPUs changes neither the event count nor the bus
// stream — an idle CPU is never scheduled, so it costs nothing.
func TestPerCPUIdleCPUsCostZero(t *testing.T) {
	const cycles, active = 100000, 4
	type result struct {
		events uint64
		stats  Stats
		txs    []bus.Transaction
	}
	run := func(ncpu int) result {
		h := MustNewPerCPU(perCPUTestConfig(ncpu), perCPUStreams(ncpu, active, 7), EngineWheel)
		spy := &streamSpy{}
		h.Bus().Attach(spy)
		h.RunCycles(cycles)
		return result{events: h.Events(), stats: h.Stats(), txs: spy.txs}
	}
	base := run(8)
	if base.events == 0 {
		t.Fatal("no events dispatched")
	}
	for _, ncpu := range []int{64, 256} {
		got := run(ncpu)
		if got.events != base.events {
			t.Errorf("%d CPUs dispatched %d events, 8 CPUs %d — idle CPUs must cost zero",
				ncpu, got.events, base.events)
		}
		if got.stats != base.stats {
			t.Errorf("%d CPUs stats diverged from 8 CPUs:\n %+v\n %+v", ncpu, got.stats, base.stats)
		}
		if len(got.txs) != len(base.txs) {
			t.Fatalf("%d CPUs issued %d transactions, 8 CPUs %d", ncpu, len(got.txs), len(base.txs))
		}
		for i := range got.txs {
			if got.txs[i] != base.txs[i] {
				t.Fatalf("%d CPUs tx %d diverged: %+v vs %+v", ncpu, i, got.txs[i], base.txs[i])
			}
		}
	}
}

// TestPerCPURunCountsRefs checks the reference-based Run contract in
// per-CPU mode and that Step keeps dispatching single events.
func TestPerCPURunCountsRefs(t *testing.T) {
	h := MustNewPerCPU(perCPUTestConfig(8), perCPUStreams(8, 4, 3), EngineWheel)
	got := h.Run(5000)
	// Whole-event granularity: one wakeup may filter a few refs past n.
	if got < 5000 || got > 5000+wakeBurst {
		t.Fatalf("Run(5000) = %d, want [5000, 5000+burst]", got)
	}
	if refs := h.Stats().Refs; refs != got {
		t.Fatalf("Refs = %d, Run returned %d", refs, got)
	}
	if h.Err() != nil {
		t.Fatalf("Err = %v on a live stream", h.Err())
	}
	if !h.Step() {
		t.Fatal("Step = false on a live stream")
	}
}

// TestPerCPUExhaustion runs finite streams dry: Run must stop short,
// Err must report ErrExhausted, and further Steps must refuse.
func TestPerCPUExhaustion(t *testing.T) {
	streams := perCPUStreams(8, 2, 9)
	for i, s := range streams {
		if s != nil {
			streams[i] = workload.Limit(s, 1000)
		}
	}
	h := MustNewPerCPU(perCPUTestConfig(8), streams, EngineWheel)
	n, err := h.RunE(10000)
	if n != 2000 {
		t.Fatalf("RunE processed %d refs, want 2000", n)
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("RunE error = %v, want ErrExhausted", err)
	}
	if h.Live() != 0 {
		t.Fatalf("Live = %d after exhaustion", h.Live())
	}
	if h.Step() {
		t.Fatal("Step = true after exhaustion")
	}
}

// TestPerCPUValidation covers constructor rejection paths.
func TestPerCPUValidation(t *testing.T) {
	cfg := perCPUTestConfig(4)
	if _, err := NewPerCPU(cfg, make([]workload.Generator, 3), EngineWheel); err == nil {
		t.Fatal("stream/CPU count mismatch accepted")
	}
	if _, err := NewPerCPU(cfg, make([]workload.Generator, 4), EngineWheel); err == nil {
		t.Fatal("all-nil streams accepted")
	}
}

// TestPerCPURunCyclesRequiresPerCPU pins the merged-host guard.
func TestPerCPURunCyclesRequiresPerCPU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunCycles on a merged host did not panic")
		}
	}()
	h := MustNew(perCPUTestConfig(4), workload.NewUniform(workload.UniformConfig{
		NumCPUs: 4, FootprintByte: addr.MB, Seed: 1,
	}))
	h.RunCycles(100)
}

// TestPerCPUInclusionHolds runs conflicting streams at a non-default
// geometry and verifies L1 ⊆ L2 inclusion afterwards.
func TestPerCPUInclusionHolds(t *testing.T) {
	cfg := perCPUTestConfig(16)
	cfg.L2Assoc = 1 // direct-mapped L2 maximizes eviction pressure
	h := MustNewPerCPU(cfg, perCPUStreams(16, 8, 5), EngineWheel)
	h.RunCycles(150000)
	if bad, violated := h.CheckInclusion(); violated {
		t.Fatalf("inclusion violated at line %#x", bad)
	}
}
