package host

import (
	"testing"

	"memories/internal/bus"
	"memories/internal/workload"
)

// rawIssuer lets tests push hand-crafted transactions at the host's CPUs
// from a phantom device.
func rawIssue(h *Host, cmd bus.Command, a uint64, src int) bus.SnoopResponse {
	return h.Bus().Issue(&bus.Transaction{Cmd: cmd, Addr: a, Size: 128, SrcID: src})
}

func TestSnoopCleanDowngradesModified(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{{Addr: 0x70000, CPU: 0, Write: true}}}
	h := MustNew(testConfig(), gen)
	h.Run(1)
	// A Clean from a phantom device (ID 99): cpu0 must answer modified
	// and keep a clean copy.
	if resp := rawIssue(h, bus.Clean, 0x70000, 99); resp != bus.RespModified {
		t.Fatalf("Clean response = %v, want modified", resp)
	}
	if resp := rawIssue(h, bus.Clean, 0x70000, 99); resp != bus.RespNull {
		t.Fatalf("second Clean response = %v, want null (already clean)", resp)
	}
	// The line must still be readable without a new bus read.
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.SetWorkload(&scriptGen{refs: []workload.Ref{{Addr: 0x70000, CPU: 0}}})
	h.Run(1)
	if len(spy.seen) != 0 {
		t.Fatalf("read after Clean went to the bus: %+v", spy.seen)
	}
}

func TestSnoopFlushInvalidates(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{{Addr: 0x80000, CPU: 1, Write: true}}}
	h := MustNew(testConfig(), gen)
	h.Run(1)
	if resp := rawIssue(h, bus.Flush, 0x80000, 99); resp != bus.RespModified {
		t.Fatalf("Flush response = %v, want modified", resp)
	}
	// The line is gone: a re-read must miss to the bus.
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.SetWorkload(&scriptGen{refs: []workload.Ref{{Addr: 0x80000, CPU: 1}}})
	h.Run(1)
	if len(spy.byCmd(bus.Read)) != 1 {
		t.Fatal("read after Flush did not reach the bus")
	}
	if h.Stats().Invalidations == 0 {
		t.Fatal("Flush invalidation not counted")
	}
}

func TestSnoopIgnoresNonMemoryAndCastout(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{{Addr: 0x90000, CPU: 0}}}
	h := MustNew(testConfig(), gen)
	h.Run(1)
	for _, cmd := range []bus.Command{bus.IORead, bus.Interrupt, bus.Sync, bus.Castout, bus.Push} {
		if resp := rawIssue(h, cmd, 0x90000, 99); resp != bus.RespNull {
			t.Fatalf("%v response = %v, want null", cmd, resp)
		}
	}
	// Line still present.
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.SetWorkload(&scriptGen{refs: []workload.Ref{{Addr: 0x90000, CPU: 0}}})
	h.Run(1)
	if len(spy.seen) != 0 {
		t.Fatal("benign snoops disturbed the cache")
	}
}

func TestL2OffDirtyEvictionStillCastsOut(t *testing.T) {
	cfg := testConfig()
	cfg.L2Enabled = false
	cfg.L1Bytes = 8 << 10 // 8KB direct... 2-way; 32 sets
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x00000, CPU: 0, Write: true},
		{Addr: 0x08000, CPU: 0, Write: true}, // may conflict in 8KB L1
		{Addr: 0x10000, CPU: 0, Write: true}, // forces eviction in 2-way set
	}}
	h := MustNew(cfg, gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(3)
	if len(spy.byCmd(bus.Castout)) == 0 {
		t.Fatal("dirty eviction from the L1 coherence cache produced no castout")
	}
}

func TestUpgradeRaceLosesCopy(t *testing.T) {
	// cpu0 and cpu1 both hold a line shared; cpu1 writes (DClaim); cpu0's
	// copy must vanish including from its L1.
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0xA0000, CPU: 0},
		{Addr: 0xA0000, CPU: 1},
		{Addr: 0xA0000, CPU: 1, Write: true},
		{Addr: 0xA0000, CPU: 0}, // must go to the bus again
	}}
	h := MustNew(testConfig(), gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(4)
	if got := len(spy.byCmd(bus.Read)); got != 3 {
		t.Fatalf("reads on bus = %d, want 3 (third read re-fetches)", got)
	}
	if bad, violated := h.CheckInclusion(); violated {
		t.Fatalf("inclusion violated at %#x", bad)
	}
}

func TestIntervenedReadFillsShared(t *testing.T) {
	// cpu0 dirty; cpu1 reads (intervention); cpu1 then writes: the write
	// must need a DClaim (proof the fill state was Shared, not Exclusive).
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0xB0000, CPU: 0, Write: true},
		{Addr: 0xB0000, CPU: 1},
		{Addr: 0xB0000, CPU: 1, Write: true},
	}}
	h := MustNew(testConfig(), gen)
	spy := &busSpy{}
	h.Bus().Attach(spy)
	h.Run(3)
	if got := len(spy.byCmd(bus.DClaim)); got != 1 {
		t.Fatalf("DClaims = %d, want 1 (fill after intervention must be Shared)", got)
	}
}
