package host

import (
	"errors"
	"testing"

	"memories/internal/checkpoint"
	"memories/internal/workload"
)

// Save mid-run, restore into a freshly constructed twin, and run both
// forward: every statistic, the bus clock, and the private caches must
// stay bit-identical — the resume-equivalence oracle at host scope.
func TestHostCheckpointContinuation(t *testing.T) {
	mk := func() *Host {
		return MustNew(DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	}
	h := mk()
	h.Run(20_000)

	var e checkpoint.Enc
	if err := h.SaveState(&e); err != nil {
		t.Fatal(err)
	}
	h2 := mk()
	d := checkpoint.NewDec("host", 0, e.Bytes())
	if err := h2.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d unread payload bytes", d.Remaining())
	}
	if h2.Stats() != h.Stats() {
		t.Fatalf("stats diverge immediately after restore:\n%+v\n%+v", h2.Stats(), h.Stats())
	}

	h.Run(20_000)
	h2.Run(20_000)
	if h2.Stats() != h.Stats() {
		t.Fatalf("stats diverge after resumed run:\n%+v\n%+v", h2.Stats(), h.Stats())
	}
}

// A snapshot from one workload must not restore into a host driving
// another: the generator name is the fingerprint.
func TestHostRestoreRejectsWrongGenerator(t *testing.T) {
	src := MustNew(DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	src.Run(1000)
	var e checkpoint.Enc
	if err := src.SaveState(&e); err != nil {
		t.Fatal(err)
	}

	dst := MustNew(DefaultConfig(), workload.NewTPCH(workload.ScaledTPCHConfig(4096)))
	err := dst.RestoreState(checkpoint.NewDec("host", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", err)
	}
}

// stackGen stands in for the splash kernels: a generator whose state
// lives in goroutine stacks and therefore cannot be checkpointed.
type stackGen struct{}

func (stackGen) Name() string               { return "stack-resident" }
func (stackGen) Next() (workload.Ref, bool) { return workload.Ref{Addr: 128, Instrs: 1}, true }
func (stackGen) Footprint() int64           { return 1 << 20 }

func TestHostSaveRejectsNonCheckpointableGenerator(t *testing.T) {
	h := MustNew(DefaultConfig(), stackGen{})
	h.Run(100)
	var e checkpoint.Enc
	if err := h.SaveState(&e); err == nil {
		t.Fatal("SaveState accepted a non-checkpointable generator")
	}
	if err := h.RestoreState(checkpoint.NewDec("host", 0, nil)); err == nil {
		t.Fatal("RestoreState accepted a non-checkpointable generator")
	}
}
