package host

import (
	"errors"
	"testing"

	"memories/internal/checkpoint"
	"memories/internal/workload"
)

// Save mid-run, restore into a freshly constructed twin, and run both
// forward: every statistic, the bus clock, and the private caches must
// stay bit-identical — the resume-equivalence oracle at host scope.
func TestHostCheckpointContinuation(t *testing.T) {
	mk := func() *Host {
		return MustNew(DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	}
	h := mk()
	h.Run(20_000)

	var e checkpoint.Enc
	if err := h.SaveState(&e); err != nil {
		t.Fatal(err)
	}
	h2 := mk()
	d := checkpoint.NewDec("host", 0, e.Bytes())
	if err := h2.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d unread payload bytes", d.Remaining())
	}
	if h2.Stats() != h.Stats() {
		t.Fatalf("stats diverge immediately after restore:\n%+v\n%+v", h2.Stats(), h.Stats())
	}

	h.Run(20_000)
	h2.Run(20_000)
	if h2.Stats() != h.Stats() {
		t.Fatalf("stats diverge after resumed run:\n%+v\n%+v", h2.Stats(), h.Stats())
	}
}

// Per-CPU resume equivalence: snapshot a discrete-event host mid-run —
// with actors parked at different local clocks and pending events — and
// the restored twin must replay the identical event order on both
// engines. The uninterrupted run is the oracle.
func TestHostCheckpointContinuationPerCPU(t *testing.T) {
	for _, engine := range []Engine{EngineWheel, EngineLockStep} {
		name := "wheel"
		if engine == EngineLockStep {
			name = "lockstep"
		}
		t.Run(name, func(t *testing.T) {
			cfg := perCPUTestConfig(16)
			cfg.IOFraction = 0.01 // park some actors on pending I/O events
			mk := func() *Host {
				return MustNewPerCPU(cfg, perCPUStreams(16, 6, 11), engine)
			}
			const half = 60_000
			oracle := mk()
			oracle.RunCycles(2 * half)

			h := mk()
			h.RunCycles(half)
			var e checkpoint.Enc
			if err := h.SaveState(&e); err != nil {
				t.Fatal(err)
			}
			h2 := mk()
			d := checkpoint.NewDec("host", 0, e.Bytes())
			if err := h2.RestoreState(d); err != nil {
				t.Fatal(err)
			}
			if d.Remaining() != 0 {
				t.Fatalf("%d unread payload bytes", d.Remaining())
			}
			if h2.Stats() != h.Stats() {
				t.Fatalf("stats diverge immediately after restore:\n%+v\n%+v", h2.Stats(), h.Stats())
			}
			if h2.Events() != h.Events() {
				t.Fatalf("events %d after restore, want %d", h2.Events(), h.Events())
			}
			h2.RunCycles(2 * half)
			if h2.Stats() != oracle.Stats() {
				t.Fatalf("stats diverge from uninterrupted run:\n%+v\n%+v", h2.Stats(), oracle.Stats())
			}
			if h2.Events() != oracle.Events() {
				t.Fatalf("events %d after resume, oracle %d", h2.Events(), oracle.Events())
			}
			if h2.Bus().Stats() != oracle.Bus().Stats() {
				t.Fatalf("bus stats diverge from uninterrupted run:\n%+v\n%+v",
					h2.Bus().Stats(), oracle.Bus().Stats())
			}
		})
	}
}

// A per-CPU snapshot must not restore into a merged-stream host (or
// vice versa): the mode byte is part of the fingerprint.
func TestHostRestoreRejectsModeMismatch(t *testing.T) {
	src := MustNewPerCPU(perCPUTestConfig(8), perCPUStreams(8, 4, 3), EngineWheel)
	src.RunCycles(10_000)
	var e checkpoint.Enc
	if err := src.SaveState(&e); err != nil {
		t.Fatal(err)
	}
	dst := MustNew(DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	err := dst.RestoreState(checkpoint.NewDec("host", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", err)
	}
}

// A version-1 snapshot (no leading version byte; it began with the
// generator-name string) must be rejected by the version check, not
// misdecoded.
func TestHostRestoreRejectsV1Snapshot(t *testing.T) {
	var e checkpoint.Enc
	e.Str("tpcc-oltp") // how a v1 host section began
	e.U64(42)
	dst := MustNew(DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	err := dst.RestoreState(checkpoint.NewDec("host", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", err)
	}
}

// A snapshot from one workload must not restore into a host driving
// another: the generator name is the fingerprint.
func TestHostRestoreRejectsWrongGenerator(t *testing.T) {
	src := MustNew(DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	src.Run(1000)
	var e checkpoint.Enc
	if err := src.SaveState(&e); err != nil {
		t.Fatal(err)
	}

	dst := MustNew(DefaultConfig(), workload.NewTPCH(workload.ScaledTPCHConfig(4096)))
	err := dst.RestoreState(checkpoint.NewDec("host", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", err)
	}
}

// stackGen stands in for the splash kernels: a generator whose state
// lives in goroutine stacks and therefore cannot be checkpointed.
type stackGen struct{}

func (stackGen) Name() string               { return "stack-resident" }
func (stackGen) Next() (workload.Ref, bool) { return workload.Ref{Addr: 128, Instrs: 1}, true }
func (stackGen) Footprint() int64           { return 1 << 20 }

func TestHostSaveRejectsNonCheckpointableGenerator(t *testing.T) {
	h := MustNew(DefaultConfig(), stackGen{})
	h.Run(100)
	var e checkpoint.Enc
	if err := h.SaveState(&e); err == nil {
		t.Fatal("SaveState accepted a non-checkpointable generator")
	}
	if err := h.RestoreState(checkpoint.NewDec("host", 0, nil)); err == nil {
		t.Fatal("RestoreState accepted a non-checkpointable generator")
	}
}
