package host

import (
	"testing"

	"memories/internal/bus"
	"memories/internal/workload"
)

// permaRetrier answers Retry to every memory operation forever — the
// pathological device the retry limit exists for (a wedged board that
// can never drain its buffers).
type permaRetrier struct{ snoops uint64 }

func (p *permaRetrier) BusID() int { return -1 }
func (p *permaRetrier) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	if !tx.Cmd.IsMemoryOp() {
		return bus.RespNull
	}
	p.snoops++
	return bus.RespRetry
}

// TestRetryExhaustionAgainstPermanentRetrier: the host must neither
// livelock nor wrap — after retryLimit attempts per operation it gives
// up, counts RetryExhausted, and completes the run.
func TestRetryExhaustionAgainstPermanentRetrier(t *testing.T) {
	gen := &scriptGen{refs: []workload.Ref{
		{Addr: 0x10000, CPU: 0},
		{Addr: 0x20000, CPU: 1, Write: true},
	}}
	h := MustNew(testConfig(), gen)
	pr := &permaRetrier{}
	h.Bus().Attach(pr)

	if got := h.Run(2); got != 2 {
		t.Fatalf("host livelocked: processed %d of 2 refs", got)
	}
	st := h.Stats()
	// Read miss -> 1 bus op; write miss -> RWITM. Each is retried
	// retryLimit times, then abandoned.
	if want := uint64(2 * retryLimit); st.Retried != want {
		t.Fatalf("Retried = %d, want %d", st.Retried, want)
	}
	if st.RetryExhausted != 2 {
		t.Fatalf("RetryExhausted = %d, want 2", st.RetryExhausted)
	}
	if pr.snoops != uint64(2*(retryLimit+1)) {
		t.Fatalf("retrier snooped %d times, want %d", pr.snoops, 2*(retryLimit+1))
	}
}

// TestRetryExhaustedZeroInHealthyRuns: the counter must stay zero when
// nothing on the bus misbehaves.
func TestRetryExhaustedZeroInHealthyRuns(t *testing.T) {
	h := MustNew(testConfig(), workload.NewUniform(workload.UniformConfig{
		NumCPUs: 4, FootprintByte: 1 << 24, WriteFraction: 0.3, Seed: 2,
	}))
	h.Run(20_000)
	if st := h.Stats(); st.Retried != 0 || st.RetryExhausted != 0 {
		t.Fatalf("healthy run recorded retries: %+v", st)
	}
}
