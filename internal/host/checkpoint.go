package host

import (
	"fmt"

	"memories/internal/checkpoint"
	"memories/internal/workload"
)

// SaveState serializes the host: generator identity + stream position,
// the host RNG, the accumulated statistics, the bus, and every CPU's
// private caches. The generator must implement workload.Checkpointer
// (the splash kernels do not — their state lives in goroutine stacks).
func (h *Host) SaveState(e *checkpoint.Enc) error {
	if h.gen == nil {
		return fmt.Errorf("host: no workload generator to checkpoint")
	}
	ck, ok := h.gen.(workload.Checkpointer)
	if !ok {
		return fmt.Errorf("host: generator %q is not checkpointable", h.gen.Name())
	}
	e.Str(h.gen.Name())
	if err := ck.SaveState(e); err != nil {
		return err
	}
	e.U64(h.rng.State())
	e.F64(h.idleCarry)
	e.U64(h.ioAddr)
	e.U64(h.stats.Refs)
	e.U64(h.stats.Instructions)
	e.U64(h.stats.L1Hits)
	e.U64(h.stats.L1Misses)
	e.U64(h.stats.L2Hits)
	e.U64(h.stats.L2Misses)
	e.U64(h.stats.Upgrades)
	e.U64(h.stats.Castouts)
	e.U64(h.stats.IntervModSup)
	e.U64(h.stats.IntervShrSup)
	e.U64(h.stats.Invalidations)
	e.U64(h.stats.IOOps)
	e.U64(h.stats.Retried)
	e.U64(h.stats.RetryExhausted)
	h.bus.SaveState(e)
	e.U32(uint32(len(h.cpus)))
	for _, c := range h.cpus {
		e.Bool(c.l1 != nil)
		if c.l1 != nil {
			c.l1.SaveState(e)
		}
		c.coh.SaveState(e)
	}
	return nil
}

// RestoreState loads a host checkpoint into an identically configured
// host (same Config, same generator construction). The generator name
// is cross-checked so a snapshot from a different workload is rejected
// rather than silently misapplied.
func (h *Host) RestoreState(d *checkpoint.Dec) error {
	if h.gen == nil {
		return fmt.Errorf("host: no workload generator to restore into")
	}
	ck, ok := h.gen.(workload.Checkpointer)
	if !ok {
		return fmt.Errorf("host: generator %q is not checkpointable", h.gen.Name())
	}
	if got, want := d.Str(), h.gen.Name(); got != want {
		return d.Failf("generator %q != configured %q", got, want)
	}
	if err := ck.RestoreState(d); err != nil {
		return err
	}
	h.rng.SetState(d.U64())
	h.idleCarry = d.F64()
	h.ioAddr = d.U64()
	h.stats.Refs = d.U64()
	h.stats.Instructions = d.U64()
	h.stats.L1Hits = d.U64()
	h.stats.L1Misses = d.U64()
	h.stats.L2Hits = d.U64()
	h.stats.L2Misses = d.U64()
	h.stats.Upgrades = d.U64()
	h.stats.Castouts = d.U64()
	h.stats.IntervModSup = d.U64()
	h.stats.IntervShrSup = d.U64()
	h.stats.Invalidations = d.U64()
	h.stats.IOOps = d.U64()
	h.stats.Retried = d.U64()
	h.stats.RetryExhausted = d.U64()
	if err := h.bus.RestoreState(d); err != nil {
		return err
	}
	if got, want := int(d.U32()), len(h.cpus); got != want {
		return d.Failf("cpu count %d != configured %d", got, want)
	}
	for _, c := range h.cpus {
		hasL1 := d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if hasL1 != (c.l1 != nil) {
			return d.Failf("cpu %d L1 presence %v != configured %v", c.id, hasL1, c.l1 != nil)
		}
		if c.l1 != nil {
			if _, err := c.l1.RestoreState(d); err != nil {
				return err
			}
		}
		if _, err := c.coh.RestoreState(d); err != nil {
			return err
		}
	}
	return d.Err()
}
