package host

import (
	"fmt"

	"memories/internal/bus"
	"memories/internal/checkpoint"
	"memories/internal/workload"
)

// hostSectionVersion is the host checkpoint format. Version 2 added the
// discrete-event state: a mode flag and, for per-CPU hosts, every
// actor's stream position, local clock, and pending scheduled event.
// The wheel itself is not serialized — it is rebuilt on restore by
// re-scheduling each actor's pending event, which reproduces the exact
// pop order because each actor keeps at most one event and the order is
// the total (cycle, cpuID).
//
// Version-1 snapshots (which began with the generator-name string) fail
// the version check up front with a decode error rather than
// misdecoding.
const hostSectionVersion = 2

// SaveState serializes the host: format version, mode, generator
// identity + stream position (per actor in per-CPU mode, along with each
// actor's clock and pending event), the accumulated statistics, the bus,
// and every CPU's private caches. Generators must implement
// workload.Checkpointer (the splash kernels do not — their state lives
// in goroutine stacks).
func (h *Host) SaveState(e *checkpoint.Enc) error {
	e.U8(hostSectionVersion)
	e.Bool(h.perCPU)
	if h.perCPU {
		if err := h.saveActors(e); err != nil {
			return err
		}
	} else {
		if h.gen == nil {
			return fmt.Errorf("host: no workload generator to checkpoint")
		}
		ck, ok := h.gen.(workload.Checkpointer)
		if !ok {
			return fmt.Errorf("host: generator %q is not checkpointable", h.gen.Name())
		}
		e.Str(h.gen.Name())
		if err := ck.SaveState(e); err != nil {
			return err
		}
		e.U64(h.rng.State())
		e.F64(h.idleCarry)
		e.U64(h.ioAddr)
	}
	e.U64(h.stats.Refs)
	e.U64(h.stats.Instructions)
	e.U64(h.stats.L1Hits)
	e.U64(h.stats.L1Misses)
	e.U64(h.stats.L2Hits)
	e.U64(h.stats.L2Misses)
	e.U64(h.stats.Upgrades)
	e.U64(h.stats.Castouts)
	e.U64(h.stats.IntervModSup)
	e.U64(h.stats.IntervShrSup)
	e.U64(h.stats.Invalidations)
	e.U64(h.stats.IOOps)
	e.U64(h.stats.Retried)
	e.U64(h.stats.RetryExhausted)
	h.bus.SaveState(e)
	e.U32(uint32(len(h.cpus)))
	for _, c := range h.cpus {
		e.Bool(c.l1 != nil)
		if c.l1 != nil {
			c.l1.SaveState(e)
		}
		c.coh.SaveState(e)
	}
	return nil
}

// saveActors writes the per-CPU discrete-event state: each actor's
// stream, RNG, local clock, and the one pending scheduled event.
func (h *Host) saveActors(e *checkpoint.Enc) error {
	e.U64(h.events)
	e.U32(uint32(len(h.cpus)))
	for _, c := range h.cpus {
		e.Bool(c.gen != nil)
		if c.gen == nil {
			continue
		}
		ck, ok := c.gen.(workload.Checkpointer)
		if !ok {
			return fmt.Errorf("host: cpu %d generator %q is not checkpointable", c.id, c.gen.Name())
		}
		e.Str(c.gen.Name())
		if err := ck.SaveState(e); err != nil {
			return err
		}
		e.U64(c.rng.State())
		e.U64(c.clock)
		e.F64(c.carry)
		e.U64(c.ioAddr)
		e.U8(uint8(c.pend))
		e.U64(c.pendCycle)
		e.U64(c.pendLine)
		e.Bool(c.pendWrite)
		e.Bool(c.pendFill)
		e.U8(uint8(c.pendIOCmd))
		e.Bool(c.hasBuf)
		if c.hasBuf {
			e.U64(c.buf.Addr)
			e.Bool(c.buf.Write)
			e.I64(int64(c.buf.CPU))
			e.U64(c.buf.Instrs)
		}
		e.Bool(c.done)
	}
	return nil
}

// RestoreState loads a host checkpoint into an identically configured
// host (same Config, same generator construction, same mode). Generator
// names are cross-checked so a snapshot from a different workload is
// rejected rather than silently misapplied.
func (h *Host) RestoreState(d *checkpoint.Dec) error {
	if v := d.U8(); v != hostSectionVersion {
		if d.Err() != nil {
			return d.Err()
		}
		return d.Failf("host section version %d, want %d", v, hostSectionVersion)
	}
	perCPU := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if perCPU != h.perCPU {
		return d.Failf("snapshot per-CPU mode %v != configured %v", perCPU, h.perCPU)
	}
	if h.perCPU {
		if err := h.restoreActors(d); err != nil {
			return err
		}
	} else {
		if h.gen == nil {
			return fmt.Errorf("host: no workload generator to restore into")
		}
		ck, ok := h.gen.(workload.Checkpointer)
		if !ok {
			return fmt.Errorf("host: generator %q is not checkpointable", h.gen.Name())
		}
		if got, want := d.Str(), h.gen.Name(); got != want {
			return d.Failf("generator %q != configured %q", got, want)
		}
		if err := ck.RestoreState(d); err != nil {
			return err
		}
		h.rng.SetState(d.U64())
		h.idleCarry = d.F64()
		h.ioAddr = d.U64()
	}
	h.err = nil
	h.stats.Refs = d.U64()
	h.stats.Instructions = d.U64()
	h.stats.L1Hits = d.U64()
	h.stats.L1Misses = d.U64()
	h.stats.L2Hits = d.U64()
	h.stats.L2Misses = d.U64()
	h.stats.Upgrades = d.U64()
	h.stats.Castouts = d.U64()
	h.stats.IntervModSup = d.U64()
	h.stats.IntervShrSup = d.U64()
	h.stats.Invalidations = d.U64()
	h.stats.IOOps = d.U64()
	h.stats.Retried = d.U64()
	h.stats.RetryExhausted = d.U64()
	if err := h.bus.RestoreState(d); err != nil {
		return err
	}
	if got, want := int(d.U32()), len(h.cpus); got != want {
		return d.Failf("cpu count %d != configured %d", got, want)
	}
	for _, c := range h.cpus {
		hasL1 := d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if hasL1 != (c.l1 != nil) {
			return d.Failf("cpu %d L1 presence %v != configured %v", c.id, hasL1, c.l1 != nil)
		}
		if c.l1 != nil {
			if _, err := c.l1.RestoreState(d); err != nil {
				return err
			}
		}
		if _, err := c.coh.RestoreState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

// restoreActors loads the per-CPU discrete-event state and rebuilds the
// scheduler: the wheel is repopulated from each actor's pending event;
// the lock-step cursor rewinds to the earliest one.
func (h *Host) restoreActors(d *checkpoint.Dec) error {
	h.events = d.U64()
	if got, want := int(d.U32()), len(h.cpus); got != want {
		return d.Failf("actor count %d != configured %d", got, want)
	}
	for _, c := range h.cpus {
		hasGen := d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if hasGen != (c.gen != nil) {
			return d.Failf("cpu %d stream presence %v != configured %v", c.id, hasGen, c.gen != nil)
		}
		if c.gen == nil {
			continue
		}
		ck, ok := c.gen.(workload.Checkpointer)
		if !ok {
			return fmt.Errorf("host: cpu %d generator %q is not checkpointable", c.id, c.gen.Name())
		}
		if got, want := d.Str(), c.gen.Name(); got != want {
			return d.Failf("cpu %d generator %q != configured %q", c.id, got, want)
		}
		if err := ck.RestoreState(d); err != nil {
			return err
		}
		c.rng.SetState(d.U64())
		c.clock = d.U64()
		c.carry = d.F64()
		c.ioAddr = d.U64()
		c.pend = pendKind(d.U8())
		c.pendCycle = d.U64()
		c.pendLine = d.U64()
		c.pendWrite = d.Bool()
		c.pendFill = d.Bool()
		c.pendIOCmd = bus.Command(d.U8())
		c.hasBuf = d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		c.buf = workload.Ref{}
		if c.hasBuf {
			c.buf.Addr = d.U64()
			c.buf.Write = d.Bool()
			c.buf.CPU = int(d.I64())
			c.buf.Instrs = d.U64()
		}
		c.done = d.Bool()
	}
	if d.Err() != nil {
		return d.Err()
	}
	// Rebuild the scheduler from the restored pending events.
	h.live = 0
	if h.engine == EngineWheel {
		h.wheel = newEventWheel(0)
	}
	h.lockCursor = 0
	first := true
	for _, c := range h.cpus {
		if c.gen == nil || c.done {
			continue
		}
		h.live++
		if c.pend == pendNone {
			return d.Failf("cpu %d live without a pending event", c.id)
		}
		if h.wheel != nil {
			h.wheel.Schedule(c.pendCycle, int32(c.id))
		}
		if first || c.pendCycle < h.lockCursor {
			h.lockCursor = c.pendCycle
			first = false
		}
	}
	return nil
}
