// Package faults is a deterministic, seedable fault-injection layer for
// the MemorIES board model. It interposes on the bus/board boundary (the
// injector attaches to the bus in the board's place and forwards traffic)
// and on the SDRAM tag store (through the board's corruption and stall
// hooks), injecting the failure modes the paper's months-of-lab-use
// reliability claim never exercised:
//
//   - snoop-stream faults: dropped transactions (the board's bus receiver
//     misses an address tenure), duplicated transactions, and
//     burst-compressed transaction storms that overflow the 512-entry
//     transaction buffers and drive the overflow-retry path end to end;
//   - tag-store bit flips modeling SDRAM soft errors, injected behind the
//     ECC sidecar's back so that scrub and wild-state handling must find
//     them;
//   - transient node-controller stalls that freeze the SDRAM channel and
//     let buffered work pile up.
//
// Injection is driven by a seeded xorshift generator, so every run is
// reproducible. When Shadow is enabled the injector also keeps a golden
// software model (simbase.TraceSim) fed from the board's drain hook: the
// shadow processes exactly the post-buffering transaction stream the
// board's directories saw — including duplicates and bursts — so any
// divergence between the two is attributable to tag-store corruption, not
// to stream or timing differences. CheckDivergence turns that comparison
// into the "faults.divergence" counter.
//
// All injector counters live in the board's own counter bank under the
// "faults." prefix, so the console `dump` command surfaces them alongside
// the board's counters.
package faults

import (
	"fmt"

	"memories/internal/bus"
	"memories/internal/core"
	"memories/internal/sdram"
	"memories/internal/simbase"
	"memories/internal/stats"
	"memories/internal/tracefile"
	"memories/internal/workload"
)

// Config sets per-transaction fault probabilities. All probabilities are
// evaluated independently per accepted memory transaction; zero disables
// that fault class.
type Config struct {
	// Seed drives the injection RNG; 0 is remapped by workload.NewRNG.
	Seed uint64
	// DropProb is the probability the board never sees a transaction.
	DropProb float64
	// DupProb is the probability a transaction is presented to the board
	// twice (one synthetic replay).
	DupProb float64
	// BurstProb is the probability a transaction is followed by a
	// synthetic same-cycle burst of BurstLen replays, the event that
	// overflows the transaction buffers.
	BurstProb float64
	// BurstLen is the number of replays per burst; 0 defaults to the
	// board's buffer depth plus a margin, guaranteeing overflow.
	BurstLen int
	// BitFlipProb is the probability a random tag-store bit (one of the
	// packed word's sdram.WordPayloadBits tag/state bits of a random slot
	// of a random node) is flipped.
	BitFlipProb float64
	// StallProb is the probability the node controllers' SDRAM channels
	// are stalled for StallCycles.
	StallProb float64
	// StallCycles is the stall duration; 0 defaults to 1000 cycles.
	StallCycles uint64
	// Shadow maintains the golden software model for divergence
	// detection. Requires every board node to share one snoop group.
	Shadow bool
}

// Injector wraps a core.Board as a bus.Snooper. Attach the injector to
// the bus instead of the board.
type Injector struct {
	cfg   Config
	board *core.Board
	rng   *workload.RNG

	shadow *simbase.TraceSim

	cDropped      *stats.Counter
	cDuplicated   *stats.Counter
	cBursts       *stats.Counter
	cBurstTxns    *stats.Counter
	cBitFlips     *stats.Counter
	cFlipsValid   *stats.Counter
	cStalls       *stats.Counter
	cSynthRetry   *stats.Counter
	cRetrySeen    *stats.Counter
	cDivergence   *stats.Counter
	lastForwarded bool
}

// New builds an injector over board. The board must not be attached to
// the bus itself; the injector forwards to it.
func New(board *core.Board, cfg Config) (*Injector, error) {
	if cfg.DropProb < 0 || cfg.DropProb > 1 ||
		cfg.DupProb < 0 || cfg.DupProb > 1 ||
		cfg.BurstProb < 0 || cfg.BurstProb > 1 ||
		cfg.BitFlipProb < 0 || cfg.BitFlipProb > 1 ||
		cfg.StallProb < 0 || cfg.StallProb > 1 {
		return nil, fmt.Errorf("faults: probabilities must be in [0,1]")
	}
	if cfg.BurstLen == 0 {
		cfg.BurstLen = board.Config().BufferDepth + 64
	}
	if cfg.StallCycles == 0 {
		cfg.StallCycles = 1000
	}
	inj := &Injector{
		cfg:   cfg,
		board: board,
		rng:   workload.NewRNG(cfg.Seed),
	}
	if cfg.Shadow {
		bcfg := board.Config()
		var tns []simbase.TraceNodeConfig
		for i, nc := range bcfg.Nodes {
			if nc.Group != bcfg.Nodes[0].Group {
				return nil, fmt.Errorf("faults: shadow requires a single snoop group (node %d in group %d)", i, nc.Group)
			}
			tns = append(tns, simbase.TraceNodeConfig{
				CPUs:     nc.CPUs,
				Geometry: nc.Geometry,
				Policy:   nc.Policy,
				Protocol: nc.Protocol,
			})
		}
		shadow, err := simbase.NewTraceSim(tns)
		if err != nil {
			return nil, fmt.Errorf("faults: shadow: %v", err)
		}
		inj.shadow = shadow
		board.SetDrainObserver(func(_, _ uint64, cmd bus.Command, addr uint64, src int) {
			shadow.Process(tracefile.Record{Addr: addr, Cmd: cmd, SrcID: uint8(src)})
		})
	}
	bank := board.Counters()
	inj.cDropped = bank.Counter("faults.dropped")
	inj.cDuplicated = bank.Counter("faults.duplicated")
	inj.cBursts = bank.Counter("faults.bursts")
	inj.cBurstTxns = bank.Counter("faults.burst-txns")
	inj.cBitFlips = bank.Counter("faults.bitflips")
	inj.cFlipsValid = bank.Counter("faults.bitflips.valid")
	inj.cStalls = bank.Counter("faults.stalls")
	inj.cSynthRetry = bank.Counter("faults.retry.synthetic")
	inj.cRetrySeen = bank.Counter("faults.retry.observed")
	inj.cDivergence = bank.Counter("faults.divergence")
	return inj, nil
}

// Board returns the wrapped board.
func (inj *Injector) Board() *core.Board { return inj.board }

// Shadow returns the golden software model, or nil when disabled.
func (inj *Injector) Shadow() *simbase.TraceSim { return inj.shadow }

// BusID implements bus.Snooper with the board's passive (negative) ID.
func (inj *Injector) BusID() int { return inj.board.BusID() }

// Snoop implements bus.Snooper: it rolls the fault dice, applies
// tag-store and stall faults, and forwards (or drops, or replays) the
// transaction to the board. The board's own response — RespNull, or
// RespRetry on buffer overflow — is returned to the bus unchanged.
func (inj *Injector) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	inj.lastForwarded = false
	if !tx.Cmd.IsMemoryOp() {
		// Non-memory traffic is filtered before the transaction buffers
		// on the real board; faults in that path are invisible.
		return inj.board.Snoop(tx)
	}

	if inj.cfg.BitFlipProb > 0 && inj.rng.Chance(inj.cfg.BitFlipProb) {
		inj.flipRandomBit()
	}
	if inj.cfg.StallProb > 0 && inj.rng.Chance(inj.cfg.StallProb) {
		inj.cStalls.Inc()
		inj.board.StallTagStores(inj.cfg.StallCycles)
	}
	if inj.cfg.DropProb > 0 && inj.rng.Chance(inj.cfg.DropProb) {
		inj.cDropped.Inc()
		return bus.RespNull
	}

	resp := inj.board.Snoop(tx)
	inj.lastForwarded = true

	replays := 0
	if inj.cfg.BurstProb > 0 && inj.rng.Chance(inj.cfg.BurstProb) {
		inj.cBursts.Inc()
		replays = inj.cfg.BurstLen
	} else if inj.cfg.DupProb > 0 && inj.rng.Chance(inj.cfg.DupProb) {
		inj.cDuplicated.Inc()
		replays = 1
	}
	for i := 0; i < replays; i++ {
		// Synthetic replays model a burst arriving back-to-back at the
		// same bus cycle: the SDRAMs cannot drain between them, so the
		// buffer fills. Replays are invisible to the bus; only their
		// buffer-pressure side effects (and eventual overflow retries on
		// real traffic) escape the board.
		cp := *tx
		if inj.board.Snoop(&cp) == bus.RespRetry {
			inj.cSynthRetry.Inc()
		} else {
			inj.cBurstTxns.Inc()
		}
	}
	return resp
}

// ObserveResponse implements bus.ResponseObserver, forwarding the
// combined response to the board for transactions the board saw.
func (inj *Injector) ObserveResponse(tx *bus.Transaction, combined bus.SnoopResponse) {
	if combined == bus.RespRetry {
		inj.cRetrySeen.Inc()
	}
	if inj.lastForwarded {
		inj.board.ObserveResponse(tx, combined)
	}
	inj.lastForwarded = false
}

// flipRandomBit corrupts one uniformly random payload bit (the packed
// word's tag and state fields; the rank bits carry no protected data and
// the check byte is attacked through double flips elsewhere) of a random
// slot in a random node directory, bypassing the in-word check byte
// exactly as an SDRAM soft error would.
func (inj *Injector) flipRandomBit() {
	nodeIdx := int(inj.rng.Intn(int64(inj.board.NumNodes())))
	slots := inj.board.DirectorySlots(nodeIdx)
	slot := inj.rng.Intn(slots)
	bit := inj.rng.Intn(sdram.WordPayloadBits)
	var tagXor uint64
	var stateXor uint8
	if bit < sdram.WordTagBits {
		tagXor = 1 << uint(bit)
	} else {
		stateXor = 1 << uint(bit-sdram.WordTagBits)
	}
	inj.cBitFlips.Inc()
	if inj.board.CorruptDirectory(nodeIdx, slot, tagXor, stateXor) {
		inj.cFlipsValid.Inc()
	}
}

// DivergenceReport summarizes one golden-shadow comparison.
type DivergenceReport struct {
	// Nodes is the number of nodes whose hit/miss counters differ from
	// the shadow's.
	Nodes int
	// Delta is the summed absolute difference across the four hit/miss
	// counters of all nodes.
	Delta uint64
}

// CheckDivergence compares every node's hit/miss counters against the
// golden shadow and adds one "faults.divergence" event per diverged
// node. Call it after core.Board.Flush so both models have processed the
// full stream. It panics if the shadow is disabled.
func (inj *Injector) CheckDivergence() DivergenceReport {
	if inj.shadow == nil {
		panic("faults: CheckDivergence without Shadow enabled")
	}
	var rep DivergenceReport
	for i := 0; i < inj.board.NumNodes(); i++ {
		bv := inj.board.Node(i)
		sv := inj.shadow.NodeStats(i)
		d := absDiff(bv.ReadHit, sv.ReadHit) +
			absDiff(bv.ReadMiss, sv.ReadMiss) +
			absDiff(bv.WriteHit, sv.WriteHit) +
			absDiff(bv.WriteMiss, sv.WriteMiss)
		if d > 0 {
			rep.Nodes++
			rep.Delta += d
			inj.cDivergence.Inc()
		}
	}
	return rep
}

// Divergence returns the accumulated divergence event count.
func (inj *Injector) Divergence() uint64 { return inj.cDivergence.Value() }

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
