package faults

import (
	"bytes"
	"strings"
	"testing"

	"memories/internal/addr"
	"memories/internal/cache"
	"memories/internal/coherence"
	"memories/internal/console"
	"memories/internal/core"
	"memories/internal/host"
	"memories/internal/stats"
	"memories/internal/workload"
)

func testBoardConfig() core.Config {
	return core.Config{Nodes: []core.NodeConfig{{
		Name:     "a",
		CPUs:     []int{0, 1, 2, 3, 4, 5, 6, 7},
		Geometry: addr.MustGeometry(1*addr.MB, 128, 8),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
	}}}
}

// run wires host -> injector -> board over refs TPC-C references and
// returns both for inspection.
func run(t *testing.T, bcfg core.Config, fcfg Config, refs uint64) (*core.Board, *Injector, *host.Host) {
	t.Helper()
	b, err := core.NewBoard(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := New(b, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := host.New(host.DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	if err != nil {
		t.Fatal(err)
	}
	h.Bus().Attach(inj)
	h.Run(refs)
	b.Flush()
	return b, inj, h
}

func TestConfigValidation(t *testing.T) {
	b, err := core.NewBoard(testBoardConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{DropProb: -0.1}, {DropProb: 1.5}, {DupProb: 2}, {BurstProb: -1},
		{BitFlipProb: 1.01}, {StallProb: -0.001},
	} {
		if _, err := New(b, bad); err == nil {
			t.Fatalf("accepted config %+v", bad)
		}
	}
}

func TestShadowRequiresSingleGroup(t *testing.T) {
	cfg := testBoardConfig()
	cfg.Nodes = append(cfg.Nodes, core.NodeConfig{
		Name:     "b",
		CPUs:     []int{0, 1, 2, 3, 4, 5, 6, 7},
		Geometry: addr.MustGeometry(1*addr.MB, 128, 8),
		Policy:   cache.LRU,
		Protocol: coherence.MESI(),
		Group:    1,
	})
	b, err := core.NewBoard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(b, Config{Shadow: true}); err == nil {
		t.Fatal("shadow accepted a multi-group board")
	}
}

// TestDeterminism: identical seeds must reproduce the exact same fault
// schedule and therefore identical counters.
func TestDeterminism(t *testing.T) {
	fcfg := Config{Seed: 42, DropProb: 0.02, DupProb: 0.02, BitFlipProb: 0.01, StallProb: 0.001}
	b1, _, _ := run(t, testBoardConfig(), fcfg, 50_000)
	b2, _, _ := run(t, testBoardConfig(), fcfg, 50_000)
	s1, s2 := b1.Counters().Snapshot(), b2.Counters().Snapshot()
	if len(s1) != len(s2) {
		t.Fatalf("counter sets differ: %d vs %d", len(s1), len(s2))
	}
	for name, v := range s1 {
		if s2[name] != v {
			t.Fatalf("counter %s differs: %d vs %d", name, v, s2[name])
		}
	}
}

func TestDropEverything(t *testing.T) {
	b, _, _ := run(t, testBoardConfig(), Config{Seed: 1, DropProb: 1}, 20_000)
	if got := b.Counters().Value("filter.accepted"); got != 0 {
		t.Fatalf("board accepted %d transactions through a 100%% drop fault", got)
	}
	if b.Counters().Value("faults.dropped") == 0 {
		t.Fatal("drops not counted")
	}
}

// TestStreamFaultsNeverDiverge: the golden shadow is defined over the
// post-fault stream, so drops, duplicates, and stalls must never cause
// board/shadow divergence — only tag corruption can.
func TestStreamFaultsNeverDiverge(t *testing.T) {
	_, inj, _ := run(t, testBoardConfig(), Config{
		Seed: 5, DropProb: 0.05, DupProb: 0.05, StallProb: 0.001, StallCycles: 3000, Shadow: true,
	}, 60_000)
	if rep := inj.CheckDivergence(); rep.Delta != 0 {
		t.Fatalf("stream faults diverged: %+v", rep)
	}
}

// TestScrubHealsBitFlips: with ECC and background scrub on, injected
// flips are found and repaired, and the shadow stays near the board.
func TestScrubHealsBitFlips(t *testing.T) {
	bcfg := testBoardConfig()
	bcfg.ECC = true
	bcfg.ScrubIntervalCycles = 10_000
	b, inj, _ := run(t, bcfg, Config{Seed: 3, BitFlipProb: 0.02, Shadow: true}, 60_000)
	if b.Counters().Value("faults.bitflips") == 0 {
		t.Fatal("no flips injected")
	}
	healed := b.Counters().Value("nodea.ecc.corrected") + b.Counters().Value("nodea.ecc.invalidated")
	if healed == 0 {
		t.Fatal("scrub repaired nothing")
	}
	if b.Counters().Value("scrub.passes") == 0 {
		t.Fatal("background scrub never ran")
	}
	rep := inj.CheckDivergence()
	refs := b.Node(0).Refs()
	if float64(rep.Delta) > 0.001*float64(refs) {
		t.Fatalf("scrubbed board drifted %d counts over %d refs", rep.Delta, refs)
	}
}

// TestUnscrubbedFlipsAreDetected: the same corruption without scrub must
// be visible to the divergence detector — silent drift is the one
// unacceptable outcome.
func TestUnscrubbedFlipsAreDetected(t *testing.T) {
	b, inj, _ := run(t, testBoardConfig(), Config{Seed: 3, BitFlipProb: 0.02, Shadow: true}, 60_000)
	if b.Counters().Value("faults.bitflips.valid") == 0 {
		t.Fatal("no flip hit a valid entry; raise the rate or refs")
	}
	if rep := inj.CheckDivergence(); rep.Delta == 0 {
		t.Fatal("corruption without scrub went undetected")
	}
	if inj.Divergence() == 0 {
		t.Fatal("divergence counter not surfaced")
	}
}

// TestCounterSaturationUnderSustainedInjection: a 40-bit counter driven
// past its ceiling by fault events must saturate (never wrap) and report
// it through Saturated() and the console dump.
func TestCounterSaturationUnderSustainedInjection(t *testing.T) {
	b, err := core.NewBoard(testBoardConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := New(b, Config{Seed: 2, BitFlipProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-age the flip counter to just below the 40-bit ceiling, as if
	// injection had been running for weeks.
	flips := b.Counters().Counter("faults.bitflips")
	flips.Add(stats.CounterMax - 3)

	h, err := host.New(host.DefaultConfig(), workload.NewTPCC(workload.ScaledTPCCConfig(4096)))
	if err != nil {
		t.Fatal(err)
	}
	h.Bus().Attach(inj)
	h.Run(1_000)
	b.Flush()

	if v := flips.Value(); v != stats.CounterMax {
		t.Fatalf("counter wrapped or stalled: %d (max %d)", v, stats.CounterMax)
	}
	if !flips.Saturated() {
		t.Fatal("Saturated() not set")
	}
	var out bytes.Buffer
	if err := console.New(b, &out).Execute("stats faults.bitflips"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(saturated)") {
		t.Fatalf("console dump hides saturation:\n%s", out.String())
	}
}
