package faults

import (
	"errors"
	"testing"

	"memories/internal/checkpoint"
	"memories/internal/core"
)

// Round trip with the shadow model enabled: RNG position and golden
// state land in an identically configured twin, and the twin's shadow
// agrees with the restored board (no false divergence on resume).
func TestInjectorCheckpointRoundTrip(t *testing.T) {
	fcfg := Config{Seed: 11, DropProb: 0.01, DupProb: 0.01, Shadow: true}
	_, inj, _ := run(t, testBoardConfig(), fcfg, 5000)

	var e checkpoint.Enc
	inj.SaveState(&e)

	board2, err := core.NewBoard(testBoardConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj2, err := New(board2, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	inj2.lastForwarded = true // restore must clear response-phase scratch
	d := checkpoint.NewDec("faults", 0, e.Bytes())
	if err := inj2.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d unread payload bytes", d.Remaining())
	}
	if inj2.rng.State() != inj.rng.State() {
		t.Fatalf("rng state %#x != saved %#x", inj2.rng.State(), inj.rng.State())
	}
	if inj2.lastForwarded {
		t.Fatal("lastForwarded survived restore; it is dead state between transactions")
	}
	if inj2.Shadow() == nil {
		t.Fatal("shadow model missing after restore")
	}
}

// The no-shadow variant exercises the short encoding.
func TestInjectorCheckpointRoundTripNoShadow(t *testing.T) {
	fcfg := Config{Seed: 11, DropProb: 0.01}
	_, inj, _ := run(t, testBoardConfig(), fcfg, 2000)

	var e checkpoint.Enc
	inj.SaveState(&e)

	board2, err := core.NewBoard(testBoardConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj2, err := New(board2, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj2.RestoreState(checkpoint.NewDec("faults", 0, e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if inj2.rng.State() != inj.rng.State() {
		t.Fatalf("rng state %#x != saved %#x", inj2.rng.State(), inj.rng.State())
	}
}

// A snapshot taken without divergence detection cannot restore into an
// injector that has it (and vice versa): the shadow flag is part of the
// configuration fingerprint.
func TestInjectorRestoreShadowMismatch(t *testing.T) {
	_, inj, _ := run(t, testBoardConfig(), Config{Seed: 3}, 1000)
	var e checkpoint.Enc
	inj.SaveState(&e)

	board2, err := core.NewBoard(testBoardConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj2, err := New(board2, Config{Seed: 3, Shadow: true})
	if err != nil {
		t.Fatal(err)
	}
	rerr := inj2.RestoreState(checkpoint.NewDec("faults", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(rerr, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", rerr)
	}
}
