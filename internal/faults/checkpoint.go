package faults

import "memories/internal/checkpoint"

// SaveState serializes the injector's RNG position and, when divergence
// detection is enabled, the shadow simulator's full state. The fault
// counters live in the board's bank and travel with the board sections.
// lastForwarded is response-phase scratch; a checkpoint is only taken
// between transactions, where it is dead state.
func (inj *Injector) SaveState(e *checkpoint.Enc) {
	e.U64(inj.rng.State())
	e.Bool(inj.shadow != nil)
	if inj.shadow != nil {
		inj.shadow.SaveState(e)
	}
}

// RestoreState loads an injector checkpoint. The snapshot must have
// been taken with the same Shadow setting.
func (inj *Injector) RestoreState(d *checkpoint.Dec) error {
	inj.rng.SetState(d.U64())
	hasShadow := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasShadow != (inj.shadow != nil) {
		return d.Failf("shadow presence %v != configured %v", hasShadow, inj.shadow != nil)
	}
	inj.lastForwarded = false
	if inj.shadow != nil {
		return inj.shadow.RestoreState(d)
	}
	return nil
}
