package bus

import (
	"testing"
	"testing/quick"
)

// fakeSnooper records what it sees and returns a fixed response.
type fakeSnooper struct {
	id   int
	resp SnoopResponse
	seen []Transaction
}

func (f *fakeSnooper) BusID() int { return f.id }
func (f *fakeSnooper) Snoop(tx *Transaction) SnoopResponse {
	f.seen = append(f.seen, *tx)
	return f.resp
}

func TestCommandClassification(t *testing.T) {
	memOps := []Command{Read, RWITM, DClaim, Castout, Push, Clean, Flush}
	nonMem := []Command{IORead, IOWrite, Interrupt, Sync, TLBSync}
	for _, c := range memOps {
		if !c.IsMemoryOp() {
			t.Errorf("%v should be a memory op", c)
		}
	}
	for _, c := range nonMem {
		if c.IsMemoryOp() {
			t.Errorf("%v should not be a memory op", c)
		}
	}
	if DClaim.CarriesData() {
		t.Error("DClaim carries no data")
	}
	if !Read.CarriesData() || !Castout.CarriesData() {
		t.Error("Read/Castout carry data")
	}
	for _, c := range []Command{RWITM, DClaim, Castout, IOWrite} {
		if !c.IsWrite() {
			t.Errorf("%v should be a write", c)
		}
	}
	if Read.IsWrite() || Push.IsWrite() {
		t.Error("Read/Push are not writes")
	}
}

func TestCommandString(t *testing.T) {
	if Read.String() != "read" || RWITM.String() != "rwitm" {
		t.Fatal("command names wrong")
	}
	if Command(200).String() != "command(200)" {
		t.Fatal("out-of-range command name")
	}
	if NumCommands() != int(TLBSync)+1 {
		t.Fatal("NumCommands inconsistent")
	}
	names := map[string]bool{}
	for c := 0; c < NumCommands(); c++ {
		n := Command(c).String()
		if names[n] {
			t.Fatalf("duplicate command name %q", n)
		}
		names[n] = true
	}
}

func TestSnoopResponseString(t *testing.T) {
	want := map[SnoopResponse]string{
		RespNull: "null", RespShared: "shared", RespModified: "modified", RespRetry: "retry",
	}
	for r, n := range want {
		if r.String() != n {
			t.Fatalf("%v.String() = %q", r, r.String())
		}
	}
	if SnoopResponse(9).String() != "resp(9)" {
		t.Fatal("out-of-range response name")
	}
}

func TestBusConfigAccessor(t *testing.T) {
	b := New(Config{ClockMHz: 50, WidthBytes: 8})
	if got := b.Config(); got.ClockMHz != 50 || got.WidthBytes != 8 {
		t.Fatalf("Config = %+v", got)
	}
	if b.Utilization() != 0 {
		t.Fatal("fresh bus utilization nonzero")
	}
}

func TestCombinePriority(t *testing.T) {
	order := []SnoopResponse{RespNull, RespShared, RespModified, RespRetry}
	for i, lo := range order {
		for _, hi := range order[i:] {
			if got := Combine(lo, hi); got != hi {
				t.Errorf("Combine(%v,%v) = %v, want %v", lo, hi, got, hi)
			}
			if got := Combine(hi, lo); got != hi {
				t.Errorf("Combine(%v,%v) = %v, want %v", hi, lo, got, hi)
			}
		}
	}
}

func TestCombineCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint8) bool {
		x, y, z := SnoopResponse(a%4), SnoopResponse(b%4), SnoopResponse(c%4)
		if Combine(x, y) != Combine(y, x) {
			return false
		}
		return Combine(Combine(x, y), z) == Combine(x, Combine(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusSelfSnoopSuppressed(t *testing.T) {
	b := New(DefaultConfig())
	self := &fakeSnooper{id: 3}
	other := &fakeSnooper{id: 4}
	passive := &fakeSnooper{id: -1}
	b.Attach(self)
	b.Attach(other)
	b.Attach(passive)

	b.Issue(&Transaction{Cmd: Read, Addr: 0x1000, Size: 128, SrcID: 3})
	if len(self.seen) != 0 {
		t.Error("source device snooped its own transaction")
	}
	if len(other.seen) != 1 {
		t.Errorf("other device saw %d transactions, want 1", len(other.seen))
	}
	if len(passive.seen) != 1 {
		t.Errorf("passive observer saw %d transactions, want 1", len(passive.seen))
	}
}

func TestBusPassiveObserverSeesEverything(t *testing.T) {
	b := New(DefaultConfig())
	passive := &fakeSnooper{id: -1}
	b.Attach(passive)
	for src := 0; src < 8; src++ {
		b.Issue(&Transaction{Cmd: Read, Addr: uint64(src) << 12, Size: 128, SrcID: src})
	}
	if len(passive.seen) != 8 {
		t.Fatalf("passive saw %d, want 8", len(passive.seen))
	}
}

func TestBusCombinedResponse(t *testing.T) {
	b := New(DefaultConfig())
	b.Attach(&fakeSnooper{id: 0, resp: RespShared})
	b.Attach(&fakeSnooper{id: 1, resp: RespModified})
	b.Attach(&fakeSnooper{id: 2, resp: RespNull})
	got := b.Issue(&Transaction{Cmd: Read, Addr: 0, Size: 128, SrcID: 7})
	if got != RespModified {
		t.Fatalf("combined = %v, want modified", got)
	}
}

func TestBusRetryCounted(t *testing.T) {
	b := New(DefaultConfig())
	b.Attach(&fakeSnooper{id: 0, resp: RespRetry})
	b.Issue(&Transaction{Cmd: Read, Addr: 0, Size: 128, SrcID: 1})
	if b.Stats().Retries != 1 {
		t.Fatalf("Retries = %d, want 1", b.Stats().Retries)
	}
}

func TestBusCycleAccounting(t *testing.T) {
	b := New(Config{ClockMHz: 100, WidthBytes: 16})
	// Read of 128B: 1 address cycle + 8 data beats = 9 busy cycles.
	b.Issue(&Transaction{Cmd: Read, Addr: 0, Size: 128, SrcID: 0})
	if b.Cycle() != 9 {
		t.Fatalf("cycle = %d, want 9", b.Cycle())
	}
	// DClaim: address only.
	b.Issue(&Transaction{Cmd: DClaim, Addr: 0, SrcID: 0})
	if b.Cycle() != 10 {
		t.Fatalf("cycle = %d, want 10", b.Cycle())
	}
	if got := b.Stats().BusyCycles; got != 10 {
		t.Fatalf("busy = %d, want 10", got)
	}
}

func TestBusRetriedTransactionSkipsDataTenure(t *testing.T) {
	b := New(Config{ClockMHz: 100, WidthBytes: 16})
	b.Attach(&fakeSnooper{id: 0, resp: RespRetry})
	b.Issue(&Transaction{Cmd: Read, Addr: 0, Size: 128, SrcID: 1})
	if b.Cycle() != 1 {
		t.Fatalf("retried read consumed %d cycles, want 1 (address tenure only)", b.Cycle())
	}
}

func TestBusUtilization(t *testing.T) {
	b := New(Config{ClockMHz: 100, WidthBytes: 16})
	b.Issue(&Transaction{Cmd: Read, Addr: 0, Size: 128, SrcID: 0}) // 9 busy
	b.Idle(91)                                                     // total 100
	if got := b.Utilization(); got != 0.09 {
		t.Fatalf("utilization = %v, want 0.09", got)
	}
}

func TestBusAdvanceToNeverRewinds(t *testing.T) {
	b := New(DefaultConfig())
	b.Idle(50)
	b.AdvanceTo(40)
	if b.Cycle() != 50 {
		t.Fatalf("AdvanceTo rewound clock to %d", b.Cycle())
	}
	b.AdvanceTo(60)
	if b.Cycle() != 60 {
		t.Fatalf("AdvanceTo failed to advance: %d", b.Cycle())
	}
}

func TestBusSequenceAndCycleStamping(t *testing.T) {
	b := New(DefaultConfig())
	passive := &fakeSnooper{id: -1}
	b.Attach(passive)
	for i := 0; i < 5; i++ {
		b.Issue(&Transaction{Cmd: DClaim, Addr: uint64(i), SrcID: 0})
	}
	for i, tx := range passive.seen {
		if tx.Seq != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, tx.Seq)
		}
		if i > 0 && tx.Cycle <= passive.seen[i-1].Cycle {
			t.Fatalf("cycles not monotone: %d then %d", passive.seen[i-1].Cycle, tx.Cycle)
		}
	}
}

func TestBusPerCommandStats(t *testing.T) {
	b := New(DefaultConfig())
	b.Issue(&Transaction{Cmd: Read, Size: 128})
	b.Issue(&Transaction{Cmd: Read, Size: 128})
	b.Issue(&Transaction{Cmd: Castout, Size: 128})
	s := b.Stats()
	if s.ByCommand[Read] != 2 || s.ByCommand[Castout] != 1 {
		t.Fatalf("per-command stats wrong: %+v", s.ByCommand)
	}
	if s.Transactions != 3 {
		t.Fatalf("Transactions = %d", s.Transactions)
	}
}

func TestBusSeconds(t *testing.T) {
	b := New(Config{ClockMHz: 100, WidthBytes: 16})
	if got := b.Seconds(100e6); got != 1.0 {
		t.Fatalf("Seconds(100e6) = %v, want 1", got)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero clock did not panic")
		}
	}()
	New(Config{ClockMHz: 0, WidthBytes: 16})
}

func TestDataBeatsRounding(t *testing.T) {
	b := New(Config{ClockMHz: 100, WidthBytes: 16})
	cases := []struct {
		size int
		want uint64
	}{
		{0, 0}, {1, 1}, {16, 1}, {17, 2}, {128, 8}, {1024, 64},
	}
	for _, c := range cases {
		if got := b.dataBeats(c.size); got != c.want {
			t.Errorf("dataBeats(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

// observingSnooper is a fakeSnooper that also records combined responses.
type observingSnooper struct {
	fakeSnooper
	combined []SnoopResponse
}

func (o *observingSnooper) ObserveResponse(tx *Transaction, combined SnoopResponse) {
	o.combined = append(o.combined, combined)
}

// Detach exists so the discrete-event host can take guaranteed-Null
// snoopers (idle CPUs) off the bus: a detached device is neither probed
// nor told combined responses, and the remaining devices' combined
// response is unaffected.
func TestBusDetach(t *testing.T) {
	b := New(DefaultConfig())
	stay := &fakeSnooper{id: 0, resp: RespShared}
	gone := &observingSnooper{fakeSnooper: fakeSnooper{id: 1}}
	b.Attach(stay)
	b.Attach(gone)

	b.Issue(&Transaction{Cmd: Read, Addr: 0x1000, Size: 128, SrcID: 7})
	if len(gone.seen) != 1 || len(gone.combined) != 1 {
		t.Fatalf("attached device saw %d snoops, %d combined responses; want 1, 1",
			len(gone.seen), len(gone.combined))
	}

	b.Detach(gone)
	got := b.Issue(&Transaction{Cmd: Read, Addr: 0x2000, Size: 128, SrcID: 7})
	if len(gone.seen) != 1 || len(gone.combined) != 1 {
		t.Fatal("detached device still probed")
	}
	if got != RespShared {
		t.Fatalf("combined = %v after detach, want shared from remaining snooper", got)
	}
	if len(stay.seen) != 2 {
		t.Fatalf("remaining snooper saw %d transactions, want 2", len(stay.seen))
	}

	// Detaching an unknown (or already detached) snooper is a no-op.
	b.Detach(gone)
	b.Detach(&fakeSnooper{id: 9})
	if b.Issue(&Transaction{Cmd: Read, Addr: 0x3000, Size: 128, SrcID: 7}) != RespShared {
		t.Fatal("no-op detach disturbed the snooper list")
	}
}

// IssueAt is AdvanceTo + Issue: the event-ordered arbitration entry for
// the discrete-event host. The clock jumps forward to the scheduled
// cycle when the bus is free, and stays put (arbitration: the actor
// contends at the later, current cycle) when the bus has already moved
// past it.
func TestBusIssueAt(t *testing.T) {
	b := New(DefaultConfig())
	snooper := &fakeSnooper{id: 1}
	b.Attach(snooper)

	// Future cycle: the clock advances to it and stamps the tenure there.
	tx := Transaction{Cmd: Read, Addr: 0x1000, Size: 128, SrcID: 0}
	b.IssueAt(500, &tx)
	if tx.Cycle != 500 {
		t.Fatalf("tx stamped at cycle %d, want 500", tx.Cycle)
	}
	after := b.Cycle()
	if want := uint64(500 + 1 + 8); after != want { // addr tenure + 128B/16B beats
		t.Fatalf("bus cycle %d after issue, want %d", after, want)
	}

	// Past cycle: the clock must not run backwards; the transaction
	// issues at the current (later) cycle.
	tx2 := Transaction{Cmd: DClaim, Addr: 0x2000, SrcID: 0}
	b.IssueAt(100, &tx2)
	if tx2.Cycle != after {
		t.Fatalf("past-scheduled tx stamped at %d, want current cycle %d", tx2.Cycle, after)
	}
	if tx2.Seq != tx.Seq+1 {
		t.Fatalf("seq %d, want %d", tx2.Seq, tx.Seq+1)
	}
}
