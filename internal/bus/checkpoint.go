package bus

import "memories/internal/checkpoint"

// SaveState serializes the bus clock, the transaction sequence, and the
// activity statistics. Attached snoopers are reattached by the caller,
// not stored.
func (b *Bus) SaveState(e *checkpoint.Enc) {
	e.U64(b.cycle)
	e.U64(b.seq)
	e.U64(b.stats.Transactions)
	e.U64(b.stats.Retries)
	e.U64(b.stats.BusyCycles)
	byCmd := make([]uint64, numCommands)
	copy(byCmd, b.stats.ByCommand[:])
	e.U64Slice(byCmd)
}

// RestoreState loads a checkpointed bus state.
func (b *Bus) RestoreState(d *checkpoint.Dec) error {
	b.cycle = d.U64()
	b.seq = d.U64()
	b.stats.Transactions = d.U64()
	b.stats.Retries = d.U64()
	b.stats.BusyCycles = d.U64()
	byCmd := d.U64Slice()
	if d.Err() != nil {
		return d.Err()
	}
	if len(byCmd) != numCommands {
		return d.Failf("command histogram length %d != %d commands", len(byCmd), numCommands)
	}
	copy(b.stats.ByCommand[:], byCmd)
	return nil
}
