// Package bus models the 6xx SMP memory bus that the MemorIES board plugs
// into: split address/data tenures, per-CPU source IDs, snoop responses
// with a combined-response resolution, and retry semantics.
//
// The model is transaction-level, not signal-level. Devices attach as
// Snoopers; for every address tenure the bus presents the transaction to
// every snooper (except the source) and combines their responses with the
// 6xx priority rule (Retry > Modified > Shared > Null). Passive devices —
// MemorIES above all — snoop every transaction but normally answer Null;
// the only active behaviour the board is permitted is posting Retry when
// its transaction buffers are full (paper §3.3), which this model
// faithfully allows.
package bus

import "fmt"

// Command enumerates 6xx bus transaction types. The set covers what the
// paper's address filter must distinguish: cacheable memory operations
// (kept), and I/O register accesses, interrupts, and sync traffic
// (filtered out before they reach the emulated node controllers).
type Command uint8

const (
	// Read is a cacheable read miss (load or instruction fetch).
	Read Command = iota
	// RWITM (read-with-intent-to-modify) is a store miss: fetch the line
	// and claim exclusive ownership.
	RWITM
	// DClaim claims ownership of a line already held shared (store hit on
	// shared data); no data transfer.
	DClaim
	// Castout writes a modified line back to memory on replacement.
	Castout
	// Push is a cache-to-cache intervention data transfer: a snooper that
	// held the line modified supplies it to the requester.
	Push
	// Clean forces write-back of a modified line without invalidation.
	Clean
	// Flush forces write-back and invalidation.
	Flush
	// IORead and IOWrite are non-cacheable I/O register accesses.
	IORead
	IOWrite
	// Interrupt is an interrupt delivery transaction.
	Interrupt
	// Sync is a memory-barrier completion transaction.
	Sync
	// TLBSync is TLB-shootdown completion traffic.
	TLBSync

	numCommands = int(TLBSync) + 1
)

var commandNames = [...]string{
	Read:      "read",
	RWITM:     "rwitm",
	DClaim:    "dclaim",
	Castout:   "castout",
	Push:      "push",
	Clean:     "clean",
	Flush:     "flush",
	IORead:    "io-read",
	IOWrite:   "io-write",
	Interrupt: "interrupt",
	Sync:      "sync",
	TLBSync:   "tlbsync",
}

// String returns the lower-case mnemonic for the command.
func (c Command) String() string {
	if int(c) < len(commandNames) {
		return commandNames[c]
	}
	return fmt.Sprintf("command(%d)", uint8(c))
}

// NumCommands is the number of distinct bus commands; counter banks size
// per-command counters with it.
func NumCommands() int { return numCommands }

// IsMemoryOp reports whether the command addresses cacheable memory and is
// therefore relevant to cache emulation. The address filter FPGA forwards
// exactly these (paper §3.1).
func (c Command) IsMemoryOp() bool {
	switch c {
	case Read, RWITM, DClaim, Castout, Push, Clean, Flush:
		return true
	}
	return false
}

// CarriesData reports whether the transaction has a data tenure (occupies
// data-bus beats) in addition to its address tenure.
func (c Command) CarriesData() bool {
	switch c {
	case Read, RWITM, Castout, Push, Clean, Flush, IORead, IOWrite:
		return true
	}
	return false
}

// IsWrite reports whether the command is a write-class operation from the
// memory system's point of view (modifies or claims the line).
func (c Command) IsWrite() bool {
	switch c {
	case RWITM, DClaim, Castout, IOWrite:
		return true
	}
	return false
}

// Transaction is one bus operation as observed during its address tenure.
type Transaction struct {
	Seq   uint64  // monotonically increasing issue sequence number
	Cycle uint64  // bus cycle of the address tenure
	Cmd   Command // transaction type
	Addr  uint64  // physical address
	Size  int     // bytes transferred in the data tenure (line size; 8 for I/O)
	SrcID int     // bus ID of the requesting processor or device
}

// SnoopResponse is a device's reply during the snoop window. Responses
// combine across devices by priority.
type SnoopResponse uint8

const (
	// RespNull: the snooper holds no copy and has nothing to say.
	RespNull SnoopResponse = iota
	// RespShared: the snooper holds a clean copy; the requester must load
	// the line in a shared state.
	RespShared
	// RespModified: the snooper holds the line modified and will intervene
	// (cache-to-cache transfer).
	RespModified
	// RespRetry: the snooper cannot process the transaction now; the
	// requester must re-issue it later.
	RespRetry
)

// String returns the response mnemonic.
func (r SnoopResponse) String() string {
	switch r {
	case RespNull:
		return "null"
	case RespShared:
		return "shared"
	case RespModified:
		return "modified"
	case RespRetry:
		return "retry"
	}
	return fmt.Sprintf("resp(%d)", uint8(r))
}

// Combine merges two snoop responses using 6xx priority:
// Retry > Modified > Shared > Null.
func Combine(a, b SnoopResponse) SnoopResponse {
	if b > a {
		return b
	}
	return a
}

// Snooper is a device attached to the bus. Snoop is called for every
// transaction whose SrcID differs from the device's own ID.
type Snooper interface {
	// BusID returns the device's bus ID; the bus suppresses self-snoops.
	// Purely passive observers (like the MemorIES board) return a negative
	// ID so that they see every transaction including those from any CPU.
	BusID() int
	// Snoop observes tx and returns this device's snoop response.
	Snoop(tx *Transaction) SnoopResponse
}

// ResponseObserver is an optional extension: devices implementing it are
// told the combined snoop response after every transaction they snooped.
// The MemorIES board uses it to drop operations that another device
// retried — §3.3: "memory operations that are rejected by other system
// bus devices are filtered out and do not take up any transaction buffer
// space".
type ResponseObserver interface {
	ObserveResponse(tx *Transaction, combined SnoopResponse)
}

// Stats aggregates bus activity. BusyCycles counts address+data tenure
// cycles; utilization is BusyCycles over total elapsed cycles, the number
// the paper reports as "2% to 20% across 2 platforms, 2 OSes, and 2
// benchmarks".
type Stats struct {
	Transactions uint64
	Retries      uint64 // transactions that received a combined Retry
	BusyCycles   uint64
	ByCommand    [numCommands]uint64
}

// Config sets the physical bus parameters.
type Config struct {
	// ClockMHz is the bus clock; the S7A's 6xx bus runs at 100 MHz.
	ClockMHz int
	// WidthBytes is the data path width per beat; the 6xx data bus is
	// 16 bytes (128 bits) wide.
	WidthBytes int
}

// DefaultConfig returns the host bus as used in the paper's case studies.
func DefaultConfig() Config { return Config{ClockMHz: 100, WidthBytes: 16} }

// Bus is the shared 6xx memory bus. It is single-threaded by design: the
// host model issues transactions in program order per cycle, matching the
// single physical address tenure per bus clock.
type Bus struct {
	cfg      Config
	cycle    uint64
	seq      uint64
	snoopers []Snooper
	// observers caches the snoopers that implement ResponseObserver
	// (with their bus IDs) so Issue's combined-response phase is a plain
	// slice walk instead of a per-transaction interface type assertion.
	observers []observerEntry
	stats     Stats
}

type observerEntry struct {
	ro ResponseObserver
	id int
}

// New creates a bus with the given configuration.
func New(cfg Config) *Bus {
	if cfg.ClockMHz <= 0 || cfg.WidthBytes <= 0 {
		panic("bus: invalid configuration")
	}
	return &Bus{cfg: cfg}
}

// Attach registers a snooper. Attach order determines snoop order, which
// is observable only through identical-priority response ties and thus
// does not affect results. The device's BusID is sampled here and must
// be stable for its lifetime (true of every device in this codebase:
// CPUs are numbered at construction, passive observers are fixed at -1).
func (b *Bus) Attach(s Snooper) {
	b.snoopers = append(b.snoopers, s)
	if ro, ok := s.(ResponseObserver); ok {
		b.observers = append(b.observers, observerEntry{ro: ro, id: s.BusID()})
	}
}

// Detach removes a previously attached snooper (and, if it observed
// combined responses, that registration too). Detaching a device whose
// snoop can only ever answer Null — e.g. an idle CPU whose cache can
// never hold a line — leaves every combined response unchanged; it only
// removes the wasted probe. Unknown snoopers are ignored.
func (b *Bus) Detach(s Snooper) {
	for i, sn := range b.snoopers {
		if sn == s {
			b.snoopers = append(b.snoopers[:i], b.snoopers[i+1:]...)
			break
		}
	}
	if ro, ok := s.(ResponseObserver); ok {
		for i, o := range b.observers {
			if o.ro == ro {
				b.observers = append(b.observers[:i], b.observers[i+1:]...)
				break
			}
		}
	}
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Cycle returns the current bus cycle.
func (b *Bus) Cycle() uint64 { return b.cycle }

// AdvanceTo moves the bus clock forward to cycle c (idle time between
// transactions); it never moves the clock backwards.
func (b *Bus) AdvanceTo(c uint64) {
	if c > b.cycle {
		b.cycle = c
	}
}

// Idle advances the bus clock by n idle cycles.
func (b *Bus) Idle(n uint64) { b.cycle += n }

// Stats returns a copy of the accumulated bus statistics.
func (b *Bus) Stats() Stats { return b.stats }

// Utilization returns busy cycles over total cycles so far.
func (b *Bus) Utilization() float64 {
	if b.cycle == 0 {
		return 0
	}
	return float64(b.stats.BusyCycles) / float64(b.cycle)
}

// dataBeats returns the number of data-bus beats for a transfer of size
// bytes, rounding up to whole beats.
func (b *Bus) dataBeats(size int) uint64 {
	if size <= 0 {
		return 0
	}
	return uint64((size + b.cfg.WidthBytes - 1) / b.cfg.WidthBytes)
}

// Issue places a transaction on the bus: it stamps the cycle and sequence
// number, presents the address tenure to every snooper, combines their
// responses, and advances the clock over the address and (unless retried)
// data tenures. The caller owns re-issue on RespRetry.
func (b *Bus) Issue(tx *Transaction) SnoopResponse {
	tx.Seq = b.seq
	b.seq++
	tx.Cycle = b.cycle

	resp := RespNull
	for _, s := range b.snoopers {
		if id := s.BusID(); id >= 0 && id == tx.SrcID {
			continue
		}
		resp = Combine(resp, s.Snoop(tx))
	}
	// Combined-response phase: every participating device sees the
	// outcome.
	for _, o := range b.observers {
		if o.id >= 0 && o.id == tx.SrcID {
			continue
		}
		o.ro.ObserveResponse(tx, resp)
	}

	b.stats.Transactions++
	b.stats.ByCommand[tx.Cmd]++

	// Address tenure always costs one cycle.
	busy := uint64(1)
	if resp == RespRetry {
		b.stats.Retries++
	} else if tx.Cmd.CarriesData() {
		busy += b.dataBeats(tx.Size)
	}
	b.stats.BusyCycles += busy
	b.cycle += busy
	return resp
}

// IssueAt advances the bus clock to cycle (if it is ahead of the current
// clock) and issues tx. It is the event-ordered arbitration entry point
// for the discrete-event host: actors compute the absolute bus cycle of
// their next bus-visible event and the scheduler calls IssueAt in
// (cycle, cpuID) pop order, so the clock only moves forward. An actor
// whose scheduled cycle has already passed — the bus was busy with an
// earlier tenure — contends and issues at the current, later cycle,
// which is exactly bus arbitration.
func (b *Bus) IssueAt(cycle uint64, tx *Transaction) SnoopResponse {
	b.AdvanceTo(cycle)
	return b.Issue(tx)
}

// Seconds converts a cycle count on this bus into wall-clock seconds,
// used by the real-time model for Tables 3 and 4.
func (b *Bus) Seconds(cycles uint64) float64 {
	return float64(cycles) / (float64(b.cfg.ClockMHz) * 1e6)
}
