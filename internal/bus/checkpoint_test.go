package bus

import (
	"errors"
	"testing"

	"memories/internal/checkpoint"
)

func TestBusCheckpointRoundTrip(t *testing.T) {
	b := New(DefaultConfig())
	b.cycle, b.seq = 987654, 3210
	b.stats.Transactions = 41
	b.stats.Retries = 7
	b.stats.BusyCycles = 99
	for i := range b.stats.ByCommand {
		b.stats.ByCommand[i] = uint64(i * i)
	}

	var e checkpoint.Enc
	b.SaveState(&e)

	b2 := New(DefaultConfig())
	d := checkpoint.NewDec("bus", 0, e.Bytes())
	if err := b2.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d unread payload bytes", d.Remaining())
	}
	if b2.cycle != b.cycle || b2.seq != b.seq {
		t.Fatalf("clock (%d,%d) != saved (%d,%d)", b2.cycle, b2.seq, b.cycle, b.seq)
	}
	if b2.stats != b.stats {
		t.Fatalf("stats %+v != saved %+v", b2.stats, b.stats)
	}
}

// A histogram of the wrong width means the snapshot came from a
// different command-set revision; it must be rejected, not truncated.
func TestBusRestoreBadHistogram(t *testing.T) {
	var e checkpoint.Enc
	for i := 0; i < 5; i++ {
		e.U64(uint64(i))
	}
	e.U64Slice(make([]uint64, numCommands-1))

	b := New(DefaultConfig())
	err := b.RestoreState(checkpoint.NewDec("bus", 0, e.Bytes()))
	var ce *checkpoint.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *checkpoint.CorruptError", err)
	}
}
