package numa

import (
	"reflect"
	"runtime"
	"testing"
)

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"  \n", nil, true},
		{"0", []int{0}, true},
		{"0-3", []int{0, 1, 2, 3}, true},
		{"0-3,8", []int{0, 1, 2, 3, 8}, true},
		{"0-1,4-5,9", []int{0, 1, 4, 5, 9}, true},
		{"7-7", []int{7}, true},
		{"3-1", nil, false},
		{"-1", nil, false},
		{"a-b", nil, false},
		{"1,,2", nil, false},
		{"1-", nil, false},
	}
	for _, tc := range cases {
		got, err := ParseCPUList(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseCPUList(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTopologyFromLists(t *testing.T) {
	// Two nodes, with CPUs 2 and 5 offline and node 2 memory-only.
	topo, err := TopologyFromLists([]string{"0-3", "4-7", ""}, "0-1,3-4,6-7")
	if err != nil {
		t.Fatal(err)
	}
	want := Topology{Nodes: []TopoNode{
		{ID: 0, CPUs: []int{0, 1, 3}},
		{ID: 1, CPUs: []int{4, 6, 7}},
		{ID: 2, CPUs: []int{}},
	}}
	if !reflect.DeepEqual(topo, want) {
		t.Fatalf("topology = %+v, want %+v", topo, want)
	}
	if topo.TotalCPUs() != 6 {
		t.Fatalf("TotalCPUs = %d, want 6", topo.TotalCPUs())
	}

	if _, err := TopologyFromLists([]string{"0-x"}, ""); err == nil {
		t.Fatal("bad node cpulist accepted")
	}
	if _, err := TopologyFromLists([]string{"0"}, "junk"); err == nil {
		t.Fatal("bad online cpulist accepted")
	}
}

func TestDetectTopologyNeverEmpty(t *testing.T) {
	topo := DetectTopology()
	if len(topo.Nodes) == 0 || topo.TotalCPUs() == 0 {
		t.Fatalf("detected topology has no CPUs: %+v", topo)
	}
}

func TestPlaceShardsSingleNode(t *testing.T) {
	topo := Topology{Nodes: []TopoNode{{ID: 0, CPUs: []int{0, 1, 2, 3}}}}
	got := topo.PlaceShards(4)
	want := [][]int{{0}, {1}, {2}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("placement = %v, want %v", got, want)
	}
}

func TestPlaceShardsMoreShardsThanCores(t *testing.T) {
	topo := Topology{Nodes: []TopoNode{{ID: 0, CPUs: []int{0, 1}}}}
	got := topo.PlaceShards(8)
	if len(got) != 8 {
		t.Fatalf("placement has %d entries, want 8", len(got))
	}
	// Assignment wraps round-robin over the node's CPUs: every shard
	// still gets exactly one stable CPU, and the load spreads evenly.
	counts := map[int]int{}
	for s, cpus := range got {
		if len(cpus) != 1 {
			t.Fatalf("shard %d pinned to %v, want exactly one CPU", s, cpus)
		}
		counts[cpus[0]]++
	}
	if counts[0] != 4 || counts[1] != 4 {
		t.Fatalf("wrap distribution = %v, want 4 shards per CPU", counts)
	}
}

func TestPlaceShardsAcrossNodes(t *testing.T) {
	topo := Topology{Nodes: []TopoNode{
		{ID: 0, CPUs: []int{0, 1}},
		{ID: 1, CPUs: []int{2, 3}},
	}}
	got := topo.PlaceShards(4)
	// Block partition: shards 0-1 on node 0, shards 2-3 on node 1.
	want := [][]int{{0}, {1}, {2}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("placement = %v, want %v", got, want)
	}
}

func TestPlaceShardsSkipsOfflineNodes(t *testing.T) {
	// Node 0 is memory-only (all CPUs offline): every shard must land
	// on node 1's CPUs.
	topo := Topology{Nodes: []TopoNode{
		{ID: 0, CPUs: nil},
		{ID: 1, CPUs: []int{4, 5}},
	}}
	for s, cpus := range topo.PlaceShards(4) {
		if len(cpus) != 1 || (cpus[0] != 4 && cpus[0] != 5) {
			t.Fatalf("shard %d pinned to %v, want a node-1 CPU", s, cpus)
		}
	}
}

func TestPlaceShardsNoCPUs(t *testing.T) {
	topo := Topology{}
	got := topo.PlaceShards(3)
	if len(got) != 3 {
		t.Fatalf("placement has %d entries, want 3", len(got))
	}
	for s, cpus := range got {
		if cpus != nil {
			t.Fatalf("shard %d pinned to %v on an empty topology", s, cpus)
		}
	}
	if got := topo.PlaceShards(0); len(got) != 0 {
		t.Fatalf("PlaceShards(0) = %v, want empty", got)
	}
}

// TestPinThreadCurrentCPU exercises the real affinity syscall on CPU 0
// (which always exists); on platforms without affinity support it
// verifies the no-op contract instead. The pin runs on a locked
// goroutine so the restricted thread is retired with it rather than
// returning to the scheduler pool.
func TestPinThreadCurrentCPU(t *testing.T) {
	errc := make(chan error, 1)
	go func() {
		runtime.LockOSThread() // never unlocked: the thread dies with the goroutine
		if err := PinThread([]int{0}); err != nil {
			errc <- err
			return
		}
		if err := PinThread(nil); err != nil {
			errc <- err
			return
		}
		// Out-of-range CPUs are ignored, never an error.
		errc <- PinThread([]int{-1, 1 << 20})
	}()
	if err := <-errc; err != nil {
		t.Fatalf("PinThread: %v", err)
	}
	_ = PinSupported()
}
