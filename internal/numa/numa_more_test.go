package numa

import (
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
)

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with empty config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestBusIDIsPassive(t *testing.T) {
	e := MustNew(mkConfig(2, false))
	if e.BusID() >= 0 {
		t.Fatal("NUMA emulator must be a passive observer (negative bus ID)")
	}
}

func TestCastoutIntoRemoteCache(t *testing.T) {
	e := MustNew(mkConfig(2, true))
	// Node 0 reads a remote line (home 1): it lands in the remote cache.
	issue(e, bus.Read, 4096, 0)
	// Node 0 casts it out: the remote-cache copy must turn dirty, which a
	// later read by node 1's CPU surfaces as an intervention.
	issue(e, bus.Castout, 4096, 0)
	issue(e, bus.Read, 4096, 2)
	if e.Counters().Value("numa0.intervention.supplied") != 1 {
		t.Fatalf("castout into remote cache lost dirtiness:\n%s", e.Counters().Dump("numa0"))
	}
}

func TestCastoutOfUntrackedLineAllocates(t *testing.T) {
	e := MustNew(mkConfig(2, false))
	issue(e, bus.Castout, 0, 0) // nothing cached, nothing in directory
	// The L3 must now hold the line dirty.
	before := e.Node(0).L3Miss
	issue(e, bus.Read, 0, 0)
	if e.Node(0).L3Miss != before {
		t.Fatal("castout did not allocate into the L3")
	}
}

func TestSnoopRespNullAlways(t *testing.T) {
	e := MustNew(mkConfig(2, false))
	tx := &bus.Transaction{Cmd: bus.RWITM, Addr: 0, Size: 128, SrcID: 0}
	if got := e.Snoop(tx); got != bus.RespNull {
		t.Fatalf("passive emulator answered %v", got)
	}
}

func TestDirtyWriteeMissesElsewhereInvalidatedViaDirectory(t *testing.T) {
	// Three-node machine: 0 and 1 cache a line; 2 writes it; both lose it.
	cfg := Config{
		HomeInterleaveBytes: 4 * addr.KB,
		Directory:           addr.MustGeometry(16*addr.KB, 128, 4),
	}
	for i := 0; i < 3; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeConfig{
			CPUs:   []int{i},
			L3:     addr.MustGeometry(32*addr.KB, 128, 4),
			Policy: cache.LRU,
		})
	}
	e := MustNew(cfg)
	issue(e, bus.Read, 0, 0)
	issue(e, bus.Read, 0, 1)
	issue(e, bus.RWITM, 0, 2)
	if got := e.Node(0).InvalidationsSent; got != 2 {
		t.Fatalf("invalidations sent = %d, want 2 (both sharers)", got)
	}
	for _, src := range []int{0, 1} {
		before := e.Node(src).L3Miss
		issue(e, bus.Read, 0, src)
		if e.Node(src).L3Miss != before+1 {
			t.Fatalf("node %d kept a stale copy", src)
		}
	}
}
