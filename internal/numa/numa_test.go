package numa

import (
	"testing"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
)

func mkConfig(nodes int, remote bool) Config {
	cfg := Config{
		HomeInterleaveBytes: 4 * addr.KB,
		Directory:           addr.MustGeometry(16*addr.KB, 128, 4), // 128 sparse entries
	}
	for i := 0; i < nodes; i++ {
		nc := NodeConfig{
			CPUs:   []int{i * 2, i*2 + 1},
			L3:     addr.MustGeometry(32*addr.KB, 128, 4),
			Policy: cache.LRU,
		}
		if remote {
			nc.Remote = addr.MustGeometry(16*addr.KB, 128, 2)
		}
		cfg.Nodes = append(cfg.Nodes, nc)
	}
	return cfg
}

func issue(e *Emulator, cmd bus.Command, a uint64, src int) {
	e.Snoop(&bus.Transaction{Cmd: cmd, Addr: a, Size: 128, SrcID: src})
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("accepted empty config")
	}
	cfg := mkConfig(2, false)
	cfg.HomeInterleaveBytes = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted zero interleave")
	}
	cfg = mkConfig(2, false)
	cfg.Directory = addr.Geometry{}
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted missing directory")
	}
	cfg = mkConfig(2, false)
	cfg.Nodes[1].CPUs = cfg.Nodes[0].CPUs
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted duplicate CPUs")
	}
	if _, err := New(mkConfig(8, false)); err == nil {
		t.Fatal("accepted 8 nodes (sharer mask is 7 wide)")
	}
}

func TestHomeInterleaving(t *testing.T) {
	e := MustNew(mkConfig(4, false))
	if e.HomeOf(0) != 0 || e.HomeOf(4096) != 1 || e.HomeOf(3*4096) != 3 || e.HomeOf(4*4096) != 0 {
		t.Fatal("home interleaving wrong")
	}
}

func TestLocalVsRemoteClassification(t *testing.T) {
	e := MustNew(mkConfig(4, false))
	issue(e, bus.Read, 0, 0)    // home 0, cpu0 -> node0: local
	issue(e, bus.Read, 4096, 0) // home 1: remote
	issue(e, bus.Read, 8192, 2) // home 2, cpu2 -> node1: remote
	issue(e, bus.Read, 4096, 2) // home 1, node1: local
	v0, v1 := e.Node(0), e.Node(1)
	if v0.Local != 1 || v0.Remote != 1 {
		t.Fatalf("node0 = %+v", v0)
	}
	if v1.Local != 1 || v1.Remote != 1 {
		t.Fatalf("node1 = %+v", v1)
	}
	if v0.RemoteFraction() != 0.5 {
		t.Fatalf("remote fraction = %v", v0.RemoteFraction())
	}
}

func TestL3HitAfterFill(t *testing.T) {
	e := MustNew(mkConfig(2, false))
	issue(e, bus.Read, 0, 0)
	issue(e, bus.Read, 0, 0)
	v := e.Node(0)
	if v.L3Miss != 1 || v.L3Hit != 1 {
		t.Fatalf("node0 = %+v", v)
	}
}

func TestRemoteCacheHoldsRemoteLines(t *testing.T) {
	e := MustNew(mkConfig(2, true))
	issue(e, bus.Read, 4096, 0) // home 1, read by node 0: remote-cache fill
	issue(e, bus.Read, 4096, 0) // L3 miss path... remote cache hit
	v := e.Node(0)
	if v.RemMiss != 1 {
		t.Fatalf("remote cache misses = %d, want 1: %+v", v.RemMiss, v)
	}
	if v.RemHit+v.L3Hit != 1 {
		t.Fatalf("second access should hit somewhere: %+v", v)
	}
}

func TestWriteInvalidatesOtherSharers(t *testing.T) {
	e := MustNew(mkConfig(2, false))
	issue(e, bus.Read, 0, 0)  // node0 caches line (home 0)
	issue(e, bus.Read, 0, 2)  // node1 caches it too
	issue(e, bus.RWITM, 0, 2) // node1 writes: node0 must be invalidated
	if got := e.Node(0).InvalidationsSent; got != 1 {
		t.Fatalf("invalidations sent by home 0 = %d, want 1", got)
	}
	// node0 rereads: must miss in its L3.
	before := e.Node(0).L3Miss
	issue(e, bus.Read, 0, 0)
	if e.Node(0).L3Miss != before+1 {
		t.Fatal("invalidation did not remove node0's copy")
	}
}

func TestDirtyReadSuppliesIntervention(t *testing.T) {
	e := MustNew(mkConfig(2, false))
	issue(e, bus.RWITM, 0, 0) // node0 dirty owner
	issue(e, bus.Read, 0, 2)  // node1 reads: node0 intervenes + writes back
	bank := e.Counters()
	if bank.Value("numa0.intervention.supplied") != 1 {
		t.Fatalf("interventions: %s", bank.Dump("numa0"))
	}
	if bank.Value("numa0.writebacks") != 1 {
		t.Fatal("owner must write back on read of dirty line")
	}
}

func TestSparseDirectoryEvictionNotifiesSharers(t *testing.T) {
	cfg := mkConfig(2, false)
	// Tiny directory: 2 sets x 1 way of 128B coherence units.
	cfg.Directory = addr.MustGeometry(256, 128, 1)
	e := MustNew(cfg)
	// Fill entry for line 0 (home 0, set 0), cached by node 0.
	issue(e, bus.Read, 0, 0)
	// A conflicting line (same directory set on home 0): 8KB stride
	// keeps home 0 (interleave 4KB x 2 nodes) and maps to set 0.
	issue(e, bus.Read, 8192, 0)
	v := e.Node(0)
	if v.DirEvictions != 1 {
		t.Fatalf("directory evictions = %d, want 1", v.DirEvictions)
	}
	if v.InvalidationsSent != 1 {
		t.Fatalf("eviction notifications = %d, want 1", v.InvalidationsSent)
	}
	// The original line must be gone from node 0's L3.
	before := e.Node(0).L3Miss
	issue(e, bus.Read, 0, 0)
	if e.Node(0).L3Miss != before+1 {
		t.Fatal("evicted directory entry left a stale cached copy")
	}
}

func TestCastoutMarksDirty(t *testing.T) {
	e := MustNew(mkConfig(2, false))
	issue(e, bus.Read, 0, 0)
	issue(e, bus.Castout, 0, 0)
	// A read from the other node must now trigger an intervention.
	issue(e, bus.Read, 0, 2)
	if e.Counters().Value("numa0.intervention.supplied") != 1 {
		t.Fatal("castout did not mark the directory entry dirty")
	}
}

func TestNonMemoryAndUnassignedIgnored(t *testing.T) {
	e := MustNew(mkConfig(2, false))
	issue(e, bus.IORead, 0, 0)
	issue(e, bus.Read, 0, 11) // unassigned CPU
	v := e.Node(0)
	if v.Local+v.Remote != 0 {
		t.Fatalf("filtered traffic processed: %+v", v)
	}
}

func TestDirectoryStateEncoding(t *testing.T) {
	st := dirState(0b0101, true)
	if dirSharers(st) != 0b0101 || !dirDirty(st) {
		t.Fatalf("encode/decode mismatch: %b", st)
	}
	st = dirState(0b0010, false)
	if dirSharers(st) != 0b0010 || dirDirty(st) {
		t.Fatalf("encode/decode mismatch: %b", st)
	}
	if dirState(0b0001, false) == cache.StateInvalid {
		t.Fatal("present entry encodes as invalid")
	}
}

// TestDirectoryBytesIsPackedWordPerSlot pins the NUMA node footprint:
// with LRU everywhere, L3 + sparse directory + remote cache cost
// exactly one 8-byte packed word per slot.
func TestDirectoryBytesIsPackedWordPerSlot(t *testing.T) {
	e, err := New(mkConfig(2, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		n := e.nodes[i]
		slots := n.l3.SlotCount() + n.dir.SlotCount() + n.remote.SlotCount()
		if got := e.DirectoryBytes(i); got != 8*slots {
			t.Fatalf("node %d DirectoryBytes = %d, want %d (8 B x %d slots)", i, got, 8*slots, slots)
		}
	}
}
