package numa

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file models the *host* machine's NUMA topology (as opposed to
// the emulated NUMA mode in numa.go) so the sharded snoop pipeline can
// place its workers: each shard worker is pinned near the memory that
// holds its slice of the tag directories, keeping tag-store traffic
// node-local. Detection reads the Linux sysfs node/cpu layout; on other
// platforms (or a sysfs-less container) it degrades to a single node
// covering every schedulable CPU, which still yields a stable
// one-CPU-per-shard pinning.

// TopoNode is one host NUMA node and its online CPUs.
type TopoNode struct {
	ID   int
	CPUs []int
}

// Topology is the host machine's node/CPU layout.
type Topology struct {
	Nodes []TopoNode
}

// TotalCPUs counts the online CPUs across all nodes.
func (t Topology) TotalCPUs() int {
	n := 0
	for _, node := range t.Nodes {
		n += len(node.CPUs)
	}
	return n
}

// ParseCPUList parses the Linux sysfs cpulist format: comma-separated
// decimal CPU ids and inclusive ranges, e.g. "0-3,8,10-11". An empty
// (or all-whitespace) list parses to nil, which sysfs uses for a
// memory-only node.
func ParseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("numa: empty entry in cpulist %q", s)
		}
		lo, hi, found := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("numa: bad cpu %q in cpulist %q", lo, s)
		}
		b := a
		if found {
			b, err = strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("numa: bad range %q in cpulist %q", part, s)
			}
		}
		for c := a; c <= b; c++ {
			cpus = append(cpus, c)
		}
	}
	return cpus, nil
}

// TopologyFromLists builds a topology from per-node cpulist strings
// (index = node id) intersected with an online cpulist ("" means every
// listed CPU is online). Nodes left with no online CPUs are kept with
// an empty CPU set, mirroring a memory-only or fully-offlined node.
// This is the pure core of DetectTopology, separated for tests.
func TopologyFromLists(nodeLists []string, online string) (Topology, error) {
	onlineSet := map[int]bool(nil)
	if strings.TrimSpace(online) != "" {
		cpus, err := ParseCPUList(online)
		if err != nil {
			return Topology{}, err
		}
		onlineSet = make(map[int]bool, len(cpus))
		for _, c := range cpus {
			onlineSet[c] = true
		}
	}
	var t Topology
	for id, list := range nodeLists {
		cpus, err := ParseCPUList(list)
		if err != nil {
			return Topology{}, err
		}
		kept := make([]int, 0, len(cpus))
		for _, c := range cpus {
			if onlineSet == nil || onlineSet[c] {
				kept = append(kept, c)
			}
		}
		sort.Ints(kept)
		t.Nodes = append(t.Nodes, TopoNode{ID: id, CPUs: kept})
	}
	return t, nil
}

// fallbackTopology is the single-node view used when sysfs is absent:
// one node holding CPUs 0..NumCPU-1.
func fallbackTopology() Topology {
	cpus := make([]int, runtime.NumCPU())
	for i := range cpus {
		cpus[i] = i
	}
	return Topology{Nodes: []TopoNode{{ID: 0, CPUs: cpus}}}
}

// DetectTopology reads the host topology from Linux sysfs
// (/sys/devices/system/node/node*/cpulist intersected with
// /sys/devices/system/cpu/online). Any read or parse failure — other
// platforms, restricted containers — falls back to a single node over
// runtime.NumCPU CPUs, so callers never need to special-case detection.
func DetectTopology() Topology {
	const nodeDir = "/sys/devices/system/node"
	entries, err := os.ReadDir(nodeDir)
	if err != nil {
		return fallbackTopology()
	}
	maxNode := -1
	lists := map[int]string{}
	for _, e := range entries {
		var id int
		if _, err := fmt.Sscanf(e.Name(), "node%d", &id); err != nil || id < 0 {
			continue
		}
		b, err := os.ReadFile(nodeDir + "/" + e.Name() + "/cpulist")
		if err != nil {
			continue
		}
		lists[id] = string(b)
		if id > maxNode {
			maxNode = id
		}
	}
	if maxNode < 0 {
		return fallbackTopology()
	}
	nodeLists := make([]string, maxNode+1)
	for id, l := range lists {
		nodeLists[id] = l
	}
	online := ""
	if b, err := os.ReadFile("/sys/devices/system/cpu/online"); err == nil {
		online = string(b)
	}
	t, err := TopologyFromLists(nodeLists, online)
	if err != nil || t.TotalCPUs() == 0 {
		return fallbackTopology()
	}
	return t
}

// PlaceShards maps each of n shards to the single host CPU its worker
// should pin to, returning one CPU list per shard (empty = leave the
// worker unpinned). Shards are block-partitioned across nodes — shard s
// goes to node s*nodes/n — so neighboring shards (and the directory
// slices they own) cluster on the same node, and within a node shards
// round-robin over that node's CPUs. With more shards than CPUs the
// assignment wraps: several workers share a CPU but each still has a
// stable home node. Nodes with no online CPUs are skipped.
func (t Topology) PlaceShards(n int) [][]int {
	placement := make([][]int, n)
	if n <= 0 {
		return placement
	}
	var nodes []TopoNode
	for _, node := range t.Nodes {
		if len(node.CPUs) > 0 {
			nodes = append(nodes, node)
		}
	}
	if len(nodes) == 0 {
		return placement // nothing to pin to
	}
	// next[i] rotates through node i's CPUs as shards land on it.
	next := make([]int, len(nodes))
	for s := 0; s < n; s++ {
		ni := s * len(nodes) / n
		node := nodes[ni]
		cpu := node.CPUs[next[ni]%len(node.CPUs)]
		next[ni]++
		placement[s] = []int{cpu}
	}
	return placement
}
