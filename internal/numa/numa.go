// Package numa implements the board's NUMA emulation modes (paper §2.3):
// partitioning the memory address space across emulated NUMA nodes, using
// each node controller's private memory to hold both an L3 tag directory
// and the sparse directory [WEB93] for its home partition, and optionally
// a remote-cache tag directory.
//
// As with the main cache-emulation mode, the emulator is a passive bus
// observer: it can invalidate entries in its *own* emulated structures
// when a sparse-directory entry is displaced, but it cannot touch the
// host's L1/L2 caches — the approximation the paper calls out ("the L2
// cache can be turned off or reduced to a smaller size to get a good
// approximation").
package numa

import (
	"fmt"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/stats"
)

// L3 line states used by the NUMA emulator's per-node L3 directories.
const (
	l3Invalid = cache.StateInvalid
	l3Clean   = 1
	l3Dirty   = 2
)

// Directory entry state encoding: bit 0 marks dirty (single owner), bits
// 1..5 are the sharer mask shifted left by one so any present entry is
// nonzero.
func dirState(sharers uint8, dirty bool) uint8 {
	s := sharers << 1
	if dirty {
		s |= 1
	}
	return s
}

func dirSharers(st uint8) uint8 { return st >> 1 }
func dirDirty(st uint8) bool    { return st&1 != 0 }

// NodeConfig describes one emulated NUMA node.
type NodeConfig struct {
	// CPUs are the host bus IDs belonging to this node.
	CPUs []int
	// L3 is the node's shared cache geometry.
	L3 addr.Geometry
	// Policy is the L3/remote-cache replacement policy.
	Policy cache.Policy
	// Remote, if non-zero, adds a remote cache holding lines whose home
	// is another node (the "remote cache emulation" mode).
	Remote addr.Geometry
}

// Config describes the emulated NUMA machine.
type Config struct {
	Nodes []NodeConfig
	// HomeInterleaveBytes is the granularity of the home-node
	// interleaving: address block i lives on node i % len(Nodes).
	HomeInterleaveBytes int64
	// Directory is the per-home sparse-directory geometry; its "line
	// size" is the coherence granularity (normally the L3 line size).
	Directory addr.Geometry
}

// Emulator is the NUMA directory emulation engine.
type Emulator struct {
	cfg   Config
	bank  *stats.Bank
	nodes []*node
	owner map[int]*node
}

type node struct {
	id     int
	cfg    NodeConfig
	l3     *cache.Cache
	remote *cache.Cache // nil unless configured
	dir    *cache.Cache // sparse directory for this node's home partition

	cLocal, cRemote       *stats.Counter
	cL3Hit, cL3Miss       *stats.Counter
	cRemHit, cRemMiss     *stats.Counter
	cDirEvict, cInvalSent *stats.Counter
	cDirHit, cDirAlloc    *stats.Counter
	cInterventionSupplied *stats.Counter
	cWritebacks           *stats.Counter
}

// New builds the emulator.
func New(cfg Config) (*Emulator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("numa: need at least one node")
	}
	if len(cfg.Nodes) > 7 {
		return nil, fmt.Errorf("numa: at most 7 nodes (sharer mask width), got %d", len(cfg.Nodes))
	}
	if cfg.HomeInterleaveBytes <= 0 {
		return nil, fmt.Errorf("numa: home interleave must be positive")
	}
	if cfg.Directory.Sets == 0 {
		return nil, fmt.Errorf("numa: sparse directory geometry required")
	}
	e := &Emulator{cfg: cfg, bank: stats.NewBank(), owner: make(map[int]*node)}
	for i, nc := range cfg.Nodes {
		if len(nc.CPUs) == 0 {
			return nil, fmt.Errorf("numa: node %d owns no CPUs", i)
		}
		l3, err := cache.New(cache.Config{Geometry: nc.L3, Policy: nc.Policy})
		if err != nil {
			return nil, fmt.Errorf("numa: node %d L3: %v", i, err)
		}
		dir, err := cache.New(cache.Config{Geometry: cfg.Directory, Policy: nc.Policy})
		if err != nil {
			return nil, fmt.Errorf("numa: node %d directory: %v", i, err)
		}
		n := &node{id: i, cfg: nc, l3: l3, dir: dir}
		if nc.Remote.Sets != 0 {
			rc, err := cache.New(cache.Config{Geometry: nc.Remote, Policy: nc.Policy})
			if err != nil {
				return nil, fmt.Errorf("numa: node %d remote cache: %v", i, err)
			}
			n.remote = rc
		}
		p := fmt.Sprintf("numa%d.", i)
		n.cLocal = e.bank.Counter(p + "requests.local")
		n.cRemote = e.bank.Counter(p + "requests.remote")
		n.cL3Hit = e.bank.Counter(p + "l3.hit")
		n.cL3Miss = e.bank.Counter(p + "l3.miss")
		n.cRemHit = e.bank.Counter(p + "remote-cache.hit")
		n.cRemMiss = e.bank.Counter(p + "remote-cache.miss")
		n.cDirEvict = e.bank.Counter(p + "directory.evictions")
		n.cInvalSent = e.bank.Counter(p + "directory.invalidations-sent")
		n.cDirHit = e.bank.Counter(p + "directory.hit")
		n.cDirAlloc = e.bank.Counter(p + "directory.allocated")
		n.cInterventionSupplied = e.bank.Counter(p + "intervention.supplied")
		n.cWritebacks = e.bank.Counter(p + "writebacks")
		for _, id := range nc.CPUs {
			if e.owner[id] != nil {
				return nil, fmt.Errorf("numa: CPU %d assigned twice", id)
			}
			e.owner[id] = n
		}
		e.nodes = append(e.nodes, n)
	}
	return e, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Emulator {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Counters exposes the emulator's counter bank.
func (e *Emulator) Counters() *stats.Bank { return e.bank }

// HomeOf returns the home node index for an address.
func (e *Emulator) HomeOf(a uint64) int {
	return int((a / uint64(e.cfg.HomeInterleaveBytes)) % uint64(len(e.nodes)))
}

// BusID implements bus.Snooper (passive).
func (e *Emulator) BusID() int { return -1 }

// Snoop implements bus.Snooper.
func (e *Emulator) Snoop(tx *bus.Transaction) bus.SnoopResponse {
	if !tx.Cmd.IsMemoryOp() {
		return bus.RespNull
	}
	req := e.owner[tx.SrcID]
	if req == nil {
		return bus.RespNull
	}
	switch tx.Cmd {
	case bus.Read:
		e.access(req, tx.Addr, false)
	case bus.RWITM, bus.DClaim, bus.Flush:
		e.access(req, tx.Addr, true)
	case bus.Castout, bus.Clean:
		e.castout(req, tx.Addr)
	}
	return bus.RespNull
}

// access emulates a read or write from a CPU of node req.
func (e *Emulator) access(req *node, a uint64, write bool) {
	home := e.nodes[e.HomeOf(a)]
	local := home == req
	if local {
		req.cLocal.Inc()
	} else {
		req.cRemote.Inc()
	}

	// The requester's caching structures: L3 for local lines, L3 then
	// remote cache for remote lines.
	e.lookupCached(req, a, write, local)

	// Home directory bookkeeping.
	st := home.dir.Access(a)
	if st != cache.StateInvalid {
		home.cDirHit.Inc()
		sharers := dirSharers(st)
		if write {
			// Invalidate every other sharer's cached copies.
			for _, other := range e.nodes {
				if other != req && sharers&(1<<uint(other.id)) != 0 {
					e.invalidateCached(other, a)
					home.cInvalSent.Inc()
				}
			}
			if dirDirty(st) && sharers&(1<<uint(req.id)) == 0 {
				// Dirty elsewhere: owner supplies the line.
				for _, other := range e.nodes {
					if other != req && sharers&(1<<uint(other.id)) != 0 {
						other.cInterventionSupplied.Inc()
					}
				}
			}
			home.dir.SetState(a, dirState(1<<uint(req.id), true))
			return
		}
		if dirDirty(st) && sharers&(1<<uint(req.id)) == 0 {
			for _, other := range e.nodes {
				if other != req && sharers&(1<<uint(other.id)) != 0 {
					other.cInterventionSupplied.Inc()
					other.cWritebacks.Inc()
				}
			}
			// Read of a dirty line cleans it (owner writes back).
			home.dir.SetState(a, dirState(sharers|1<<uint(req.id), false))
		} else {
			home.dir.SetState(a, dirState(sharers|1<<uint(req.id), dirDirty(st)))
		}
		return
	}

	// Directory miss: allocate a sparse entry, possibly displacing one.
	home.cDirAlloc.Inc()
	victim, evicted := home.dir.Fill(a, dirState(1<<uint(req.id), write))
	if evicted {
		home.cDirEvict.Inc()
		// The displaced entry's sharers must drop their copies: this is
		// the sparse-directory eviction-notification path of §2.3.
		sharers := dirSharers(victim.State)
		for _, other := range e.nodes {
			if sharers&(1<<uint(other.id)) != 0 {
				e.invalidateCached(other, victim.Addr)
				home.cInvalSent.Inc()
			}
		}
		if dirDirty(victim.State) {
			home.cWritebacks.Inc()
		}
	}
}

// lookupCached probes and updates the requester's L3 (and remote cache
// for remote lines), filling on miss. Returns whether any level hit.
func (e *Emulator) lookupCached(req *node, a uint64, write, local bool) bool {
	state := uint8(l3Clean)
	if write {
		state = l3Dirty
	}
	if st := req.l3.Access(a); st != l3Invalid {
		req.cL3Hit.Inc()
		if write {
			req.l3.SetState(a, l3Dirty)
		}
		return true
	}
	req.cL3Miss.Inc()
	if !local && req.remote != nil {
		if st := req.remote.Access(a); st != l3Invalid {
			req.cRemHit.Inc()
			if write {
				req.remote.SetState(a, l3Dirty)
			}
			return true
		}
		req.cRemMiss.Inc()
		req.remote.Fill(a, state)
		return false
	}
	req.l3.Fill(a, state)
	return false
}

// invalidateCached drops a line from a node's L3 and remote cache.
func (e *Emulator) invalidateCached(n *node, a uint64) {
	n.l3.Invalidate(a)
	if n.remote != nil {
		n.remote.Invalidate(a)
	}
}

// castout absorbs a dirty writeback into the requester's L3 and marks the
// directory entry dirty for that node.
func (e *Emulator) castout(req *node, a uint64) {
	if req.l3.Probe(a) != l3Invalid {
		req.l3.SetState(a, l3Dirty)
	} else if home := e.nodes[e.HomeOf(a)]; home != req && req.remote != nil && req.remote.Probe(a) != l3Invalid {
		req.remote.SetState(a, l3Dirty)
	} else {
		req.l3.Fill(a, l3Dirty)
	}
	home := e.nodes[e.HomeOf(a)]
	if st := home.dir.Probe(a); st != cache.StateInvalid {
		home.dir.SetState(a, dirState(dirSharers(st)|1<<uint(req.id), true))
	}
}

// View is a read-only per-node summary.
type View struct {
	Local, Remote     uint64
	L3Hit, L3Miss     uint64
	RemHit, RemMiss   uint64
	DirEvictions      uint64
	InvalidationsSent uint64
}

// DirectoryBytes returns the total backing-store bytes of node i's
// emulated structures: its L3 tags, sparse home directory, and remote
// cache (when configured) — all packed one word per slot.
func (e *Emulator) DirectoryBytes(i int) int64 {
	n := e.nodes[i]
	total := n.l3.DirectoryBytes() + n.dir.DirectoryBytes()
	if n.remote != nil {
		total += n.remote.DirectoryBytes()
	}
	return total
}

// Node returns the view of node i.
func (e *Emulator) Node(i int) View {
	n := e.nodes[i]
	return View{
		Local:             n.cLocal.Value(),
		Remote:            n.cRemote.Value(),
		L3Hit:             n.cL3Hit.Value(),
		L3Miss:            n.cL3Miss.Value(),
		RemHit:            n.cRemHit.Value(),
		RemMiss:           n.cRemMiss.Value(),
		DirEvictions:      n.cDirEvict.Value(),
		InvalidationsSent: n.cInvalSent.Value(),
	}
}

// RemoteFraction returns the fraction of node i's requests whose home is
// another node — the basic NUMA placement metric.
func (v View) RemoteFraction() float64 {
	return stats.Ratio(v.Remote, v.Local+v.Remote)
}
