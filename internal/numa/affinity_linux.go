//go:build linux

package numa

import (
	"fmt"
	"syscall"
	"unsafe"
)

// PinThread restricts the calling OS thread to the given host CPUs via
// sched_setaffinity(2). Callers must hold runtime.LockOSThread for the
// pin to mean anything — otherwise the goroutine migrates off the
// pinned thread. An empty CPU set is a no-op. CPUs above 1023 are
// ignored (the fixed mask covers 1024 CPUs, ample for this tool).
func PinThread(cpus []int) error {
	var mask [16]uint64 // 1024 CPUs
	n := 0
	for _, c := range cpus {
		if c >= 0 && c < len(mask)*64 {
			mask[c/64] |= 1 << (uint(c) % 64)
			n++
		}
	}
	if n == 0 {
		return nil
	}
	// tid 0 = the calling thread.
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return fmt.Errorf("numa: sched_setaffinity(%v): %w", cpus, errno)
	}
	return nil
}

// PinSupported reports whether PinThread can take effect on this
// platform.
func PinSupported() bool { return true }
