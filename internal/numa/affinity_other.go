//go:build !linux

package numa

// PinThread is a no-op on platforms without sched_setaffinity (Darwin
// offers no public thread-to-core binding). Shard workers still benefit
// from runtime.LockOSThread keeping each worker on one OS thread.
func PinThread(cpus []int) error { return nil }

// PinSupported reports whether PinThread can take effect on this
// platform.
func PinSupported() bool { return false }
