// Package service turns the MemorIES library into a long-running,
// multi-tenant emulation service: the shape the paper implies when it
// describes the board as a shared lab instrument that "plugs into" a
// live SMP and emulates memory systems for whoever is driving it, and
// the shape the ROADMAP names for production ("emulation as a
// service").
//
// The HTTP surface (cmd/memoriesd serves it):
//
//	POST   /sessions            create a configured board (optionally
//	                            warm-started from a checkpoint corpus)
//	GET    /sessions            list live sessions
//	POST   /sessions/{id}/trace stream MIES0001/MIES0002 trace bytes or
//	                            a JSON workload spec in (async ingest)
//	GET    /sessions/{id}/stats poll emulation results
//	DELETE /sessions/{id}       tear the session down
//	GET    /healthz             liveness (reports draining)
//	GET    /metrics             Prometheus text with per-session labels
//	GET    /metrics.json        one JSON snapshot object
//
// Resource bounds are explicit because the service faces many tenants
// at once: the session pool is bounded (MaxSessions), each session's
// emulated directory footprint is quota-checked before the board is
// allocated (MaxDirectoryBytes), and ingest is flow-controlled the way
// the board itself is. Paper §3.3: when the node controllers' 512-entry
// transaction buffer fills, the address filter posts a bus Retry and
// the requester re-issues. Here each session's bounded ingest queue is
// that transaction buffer, and HTTP 429 + Retry-After is the bus
// retry: the client owns the re-issue, exactly as bus devices do on
// RespRetry.
//
// On SIGTERM (cmd/memoriesd wires the signal to Drain) the service
// stops admitting sessions and ingest, lets every session's worker
// finish its queued blocks, checkpoints each board crash-safely into
// CheckpointDir, and only then lets the process exit — so a fleet
// rollout never loses a tenant's accumulated emulation state.
package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"memories/internal/obs"
)

// Config bounds the service.
type Config struct {
	// MaxSessions bounds the pool of concurrent boards. Creation
	// beyond it returns 503 + Retry-After.
	MaxSessions int
	// MaxDirectoryBytes is the per-session quota on emulated directory
	// footprint (the packed tag store's size, 8 B/slot). Checked from
	// the requested geometry before the board is allocated; exceeding
	// it returns 413.
	MaxDirectoryBytes int64
	// MaxInflight is each session's ingest queue depth in blocks — the
	// service-level transaction buffer. A full queue returns 429 +
	// Retry-After.
	MaxInflight int
	// MaxBodyBytes caps one ingest request body.
	MaxBodyBytes int64
	// CheckpointDir receives one checkpoint per live session on Drain
	// ("" disables drain checkpoints).
	CheckpointDir string
	// CorpusDir is where warm-start checkpoints are looked up; create
	// requests may only name files inside it ("" disables warm starts).
	CorpusDir string
	// RetryAfter is the flow-control hint returned with 429/503
	// responses (default 1s).
	RetryAfter time.Duration
	// EnablePprof mounts the /debug/pprof endpoints (cmd/memoriesd's
	// -pprof flag) so service-mode hot paths can be profiled live. Off
	// by default: the endpoints expose stacks and timings, so operators
	// opt in explicitly.
	EnablePprof bool
}

// DefaultConfig returns production-shaped defaults sized for a single
// mid-range host.
func DefaultConfig() Config {
	return Config{
		MaxSessions:       256,
		MaxDirectoryBytes: 64 << 20,
		MaxInflight:       8,
		MaxBodyBytes:      8 << 20,
		RetryAfter:        time.Second,
	}
}

// Server is the multi-tenant session service.
type Server struct {
	cfg Config
	reg *obs.Registry
	mux *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*Session
	draining bool
	nextID   uint64

	ln   net.Listener
	hsrv *http.Server

	// Service-level counters, exported unlabeled under "service.".
	cCreated      *obs.Counter
	cDestroyed    *obs.Counter
	cRejectedPool *obs.Counter
	cRejectedMem  *obs.Counter
	cRetryPosted  *obs.Counter // 429s: the HTTP analogue of buffer.retry-posted
	cBlocks       *obs.Counter
	cRecords      *obs.Counter
	cDrained      *obs.Counter

	// applyHook, when non-nil, runs inside every session worker's block
	// apply while the session lock is held. Tests use it to hold a
	// session's consumer slow and provoke 429 backpressure
	// deterministically.
	applyHook func()
}

// New builds a server. The registry is created internally and exposed
// via Registry for embedding processes.
func New(cfg Config) *Server {
	def := DefaultConfig()
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = def.MaxSessions
	}
	if cfg.MaxDirectoryBytes <= 0 {
		cfg.MaxDirectoryBytes = def.MaxDirectoryBytes
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = def.MaxInflight
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = def.RetryAfter
	}
	s := &Server{
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		sessions: make(map[string]*Session),
	}
	s.cCreated = s.reg.Counter("service.sessions.created")
	s.cDestroyed = s.reg.Counter("service.sessions.destroyed")
	s.cRejectedPool = s.reg.Counter("service.sessions.rejected.pool")
	s.cRejectedMem = s.reg.Counter("service.sessions.rejected.quota")
	s.cRetryPosted = s.reg.Counter("service.ingest.retry-posted")
	s.cBlocks = s.reg.Counter("service.ingest.blocks")
	s.cRecords = s.reg.Counter("service.ingest.records")
	s.cDrained = s.reg.Counter("service.sessions.drained")
	s.reg.RegisterGaugeFunc("service.sessions.live", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Registry returns the server's metrics registry (per-session counters
// live under "session.<id>.", service counters under "service.").
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the service's HTTP handler, for embedding in an
// existing mux or httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (":0" works for tests) and serves in the
// background. It returns once the listener is bound.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.hsrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// session looks a live session up by ID.
func (s *Server) session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// Drain performs graceful shutdown: no new sessions or ingest are
// admitted, every session's queued blocks finish, and each board is
// checkpointed into CheckpointDir (when configured). It returns the
// number of sessions drained and the first checkpoint error, if any.
// Sessions stay queryable (stats) during and after the drain; Close
// shuts the HTTP listener down.
func (s *Server) Drain(ctx context.Context) (int, error) {
	s.mu.Lock()
	s.draining = true
	list := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		// A nil entry is a placeholder for a session still being built;
		// its creator re-checks draining before publishing and tears it
		// down itself.
		if sess != nil {
			list = append(list, sess)
		}
	}
	s.mu.Unlock()

	for _, sess := range list {
		sess.closeIntake()
	}
	var firstErr error
	for _, sess := range list {
		select {
		case <-sess.done:
		case <-ctx.Done():
			return 0, fmt.Errorf("service: drain interrupted with %d sessions pending: %w", len(list), ctx.Err())
		}
		if s.cfg.CheckpointDir != "" {
			if _, err := sess.checkpointTo(s.cfg.CheckpointDir); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.cDrained.Inc()
	}
	return len(list), firstErr
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close stops the HTTP listener (if Start ran). It does not drain;
// call Drain first for a graceful exit.
func (s *Server) Close() error {
	if s.hsrv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	return s.hsrv.Shutdown(ctx)
}
