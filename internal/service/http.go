package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"memories/internal/checkpoint"
	"memories/internal/obs"
	"memories/internal/prof"
	"memories/internal/tracefile"
)

// CreateRequest is the POST /sessions body. Only Cache is commonly
// needed; everything else defaults to the paper's single-L3 shape.
type CreateRequest struct {
	// ID names the session ([a-zA-Z0-9_.-], ≤64 chars); generated when
	// empty.
	ID string `json:"id,omitempty"`
	// Cache is the emulated cache capacity ("64KB".."8GB").
	Cache string `json:"cache,omitempty"`
	// LineBytes is the line size (default 128).
	LineBytes int64 `json:"line_bytes,omitempty"`
	// Assoc is the associativity (default 8).
	Assoc int `json:"assoc,omitempty"`
	// Policy selects replacement: lru, plru, fifo, random.
	Policy string `json:"policy,omitempty"`
	// Protocol selects a shipped coherence table by name (mesi, msi,
	// moesi, write-once). Mutually exclusive with ProtocolMap.
	Protocol string `json:"protocol,omitempty"`
	// ProtocolMap is inline map-file text for a custom coherence
	// protocol ("bring your own protocol"). The text runs the full
	// load-time gauntlet — parse, compile, exhaustive model check —
	// before any board is built; incoherent tables are rejected with
	// the checker's counterexample trace. File paths are deliberately
	// not accepted here.
	ProtocolMap string `json:"protocol_map,omitempty"`
	// CPUs is how many host bus IDs feed the node (default 8).
	CPUs int `json:"cpus,omitempty"`
	// ECC enables SECDED protection on the emulated tag store.
	ECC bool `json:"ecc,omitempty"`
	// Seed drives workload-mode host randomness.
	Seed uint64 `json:"seed,omitempty"`
	// WarmStart names a checkpoint file in the server's corpus
	// directory to restore the board from before any ingest.
	WarmStart string `json:"warm_start,omitempty"`
}

// SessionInfo is the create/list response shape.
type SessionInfo struct {
	ID             string `json:"id"`
	Geometry       string `json:"geometry"`
	Protocol       string `json:"protocol"`
	DirectoryBytes int64  `json:"directory_bytes"`
	WarmStart      string `json:"warm_start,omitempty"`
	ECCHealed      uint64 `json:"ecc_healed,omitempty"`
}

// NodeStats is one emulated node's results in a stats response.
type NodeStats struct {
	Name      string  `json:"name"`
	Geometry  string  `json:"geometry"`
	Protocol  string  `json:"protocol"`
	ReadHit   uint64  `json:"read_hit"`
	ReadMiss  uint64  `json:"read_miss"`
	WriteHit  uint64  `json:"write_hit"`
	WriteMiss uint64  `json:"write_miss"`
	MissRatio float64 `json:"miss_ratio"`
}

// StatsResponse is the GET /sessions/{id}/stats body.
type StatsResponse struct {
	ID        string      `json:"id"`
	Mode      string      `json:"mode"`
	Ingested  uint64      `json:"ingested"`
	Accepted  uint64      `json:"accepted"`
	Rejected  uint64      `json:"rejected_429"`
	Queue     int64       `json:"queue_depth"`
	Nodes     []NodeStats `json:"nodes"`
	Overflow  uint64      `json:"buffer_overflow"`
	LastCycle uint64      `json:"last_cycle"`
	WarmStart string      `json:"warm_start,omitempty"`
	Ckpt      string      `json:"last_checkpoint,omitempty"`
}

// IngestResponse is the POST /sessions/{id}/trace body on 202.
type IngestResponse struct {
	Accepted uint64 `json:"accepted"`
	Queue    int64  `json:"queue_depth"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// retryAfter sets the flow-control hint on 429/503 responses.
func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /sessions", s.handleCreate)
	s.mux.HandleFunc("GET /sessions", s.handleList)
	s.mux.HandleFunc("POST /sessions/{id}/trace", s.handleIngest)
	s.mux.HandleFunc("GET /sessions/{id}/stats", s.handleStats)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleStats)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	if s.cfg.EnablePprof {
		prof.RegisterHTTP(s.mux)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req CreateRequest
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "parse request: %v", err)
			return
		}
	}
	bcfg, hcfg, dirBytes, err := buildBoardConfig(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Quota before allocation: the footprint is derived from the
	// requested geometry, so an over-quota board never materializes.
	if dirBytes > s.cfg.MaxDirectoryBytes {
		s.cRejectedMem.Inc()
		writeErr(w, http.StatusRequestEntityTooLarge,
			"directory footprint %d exceeds per-session quota %d", dirBytes, s.cfg.MaxDirectoryBytes)
		return
	}

	// Admission: reserve the ID and a pool slot atomically.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.retryAfter(w)
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.cRejectedPool.Inc()
		s.retryAfter(w)
		writeErr(w, http.StatusServiceUnavailable,
			"session pool full (%d); retry later", s.cfg.MaxSessions)
		return
	}
	id := req.ID
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("s-%06d", s.nextID)
	}
	if !idRx.MatchString(id) {
		s.mu.Unlock()
		writeErr(w, http.StatusBadRequest, "invalid session id %q", id)
		return
	}
	if _, dup := s.sessions[id]; dup {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "session %q already exists", id)
		return
	}
	// Hold the slot with a nil placeholder while building outside the
	// lock (board allocation can be large).
	s.sessions[id] = nil
	s.mu.Unlock()

	sess, err := s.newSession(id, bcfg, hcfg, bcfg.Nodes[0].Geometry.LineSize)
	if err == nil && req.WarmStart != "" {
		if werr := sess.warmStartFrom(s.cfg.CorpusDir, req.WarmStart); werr != nil {
			sess.teardown()
			err = werr
		}
	}
	if err != nil {
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		code := http.StatusBadRequest
		var ce *checkpoint.CorruptError
		if errors.As(err, &ce) {
			code = http.StatusUnprocessableEntity
		}
		writeErr(w, code, "%v", err)
		return
	}
	s.mu.Lock()
	if s.draining {
		// Drain began while the board was building; it never saw this
		// session, so refuse admission and tear it down ourselves.
		delete(s.sessions, id)
		s.mu.Unlock()
		sess.teardown()
		s.retryAfter(w)
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.cCreated.Inc()
	writeJSON(w, http.StatusCreated, s.info(sess))
}

func (s *Server) info(sess *Session) SessionInfo {
	nc := sess.board.Config().Nodes[0]
	return SessionInfo{
		ID:             sess.ID,
		Geometry:       nc.Geometry.String(),
		Protocol:       nc.Protocol.Name,
		DirectoryBytes: sess.dirBytes,
		WarmStart:      sess.warmStart,
		ECCHealed:      sess.eccHealed,
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	infos := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess != nil {
			infos = append(infos, s.info(sess))
		}
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

// handleIngest accepts one block of work: raw trace bytes (either
// MIES format, auto-detected from the magic) or a JSON workload spec.
// Ingest is asynchronous — 202 means queued, and stats report when it
// has been applied. A full queue returns the bus-retry: 429 +
// Retry-After, client owns the re-issue.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	if s.Draining() {
		s.retryAfter(w)
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "read body: %v", err)
		return
	}
	var blk block
	var count uint64
	switch {
	case len(body) >= 8 && (string(body[:8]) == tracefile.Magic || string(body[:8]) == tracefile.MagicV2):
		rr, err := tracefile.Open(bytes.NewReader(body))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "trace: %v", err)
			return
		}
		var recs []tracefile.Record
		for {
			rec, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				writeErr(w, http.StatusBadRequest, "trace: %v", err)
				return
			}
			recs = append(recs, rec)
		}
		if len(recs) == 0 {
			writeErr(w, http.StatusBadRequest, "trace: empty")
			return
		}
		if !sess.setMode(modeTrace) {
			writeErr(w, http.StatusConflict, "session is workload-driven; trace ingest refused")
			return
		}
		blk = block{recs: recs, enq: time.Now()}
		count = uint64(len(recs))
	default:
		spec, err := parseWorkloadSpec(body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		if !sess.setMode(modeWorkload) {
			writeErr(w, http.StatusConflict, "session is trace-driven; workload ingest refused")
			return
		}
		gen, err := spec.build(sess.hcfg.NumCPUs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := sess.ensureHost(); err != nil {
			writeErr(w, http.StatusBadRequest, "host: %v", err)
			return
		}
		blk = block{gen: gen, refs: spec.Refs, enq: time.Now()}
		count = spec.Refs
	}
	ok, closed := sess.enqueue(blk)
	if closed {
		s.retryAfter(w)
		writeErr(w, http.StatusServiceUnavailable, "session draining")
		return
	}
	if !ok {
		s.retryAfter(w)
		writeErr(w, http.StatusTooManyRequests,
			"ingest queue full (%d blocks in flight); retry after backoff", s.cfg.MaxInflight)
		return
	}
	sess.accepted.Add(count)
	s.cBlocks.Inc()
	writeJSON(w, http.StatusAccepted, IngestResponse{Accepted: count, Queue: sess.inflight.Load()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, sess.stats())
}

// stats snapshots the session under its lock, so the numbers are a
// consistent quiesce-point view even while the worker is feeding.
func (sess *Session) stats() StatsResponse {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	resp := StatsResponse{
		ID:        sess.ID,
		Ingested:  sess.ingested.Load(),
		Accepted:  sess.accepted.Load(),
		Rejected:  sess.rejected.Load(),
		Queue:     sess.inflight.Load(),
		Overflow:  sess.board.Counters().Value("buffer.overflow"),
		LastCycle: sess.board.LastCycle(),
		WarmStart: sess.warmStart,
		Ckpt:      sess.lastCkpt,
	}
	switch sess.mode.Load() {
	case modeTrace:
		resp.Mode = "trace"
	case modeWorkload:
		resp.Mode = "workload"
	default:
		resp.Mode = "idle"
	}
	for i := 0; i < sess.board.NumNodes(); i++ {
		v := sess.board.Node(i)
		resp.Nodes = append(resp.Nodes, NodeStats{
			Name:      v.Name,
			Geometry:  v.Geometry,
			Protocol:  v.Protocol,
			ReadHit:   v.ReadHit,
			ReadMiss:  v.ReadMiss,
			WriteHit:  v.WriteHit,
			WriteMiss: v.WriteMiss,
			MissRatio: v.MissRatio(),
		})
	}
	return resp
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	if sess != nil {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no such session")
		return
	}
	// Teardown first so the response carries truly final numbers: the
	// worker finishes its queued blocks before stats are read.
	sess.teardown()
	final := sess.stats()
	s.cDestroyed.Inc()
	writeJSON(w, http.StatusOK, final)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		s.retryAfter(w)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.reg.Request()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePromWith(w, s.reg.Snapshot(), obs.SplitSessionLabel)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	s.reg.Request()
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteJSON(w, s.reg.Snapshot())
}
