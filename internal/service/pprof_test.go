package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPprofEndpointsGated: the /debug/pprof surface exists only when
// EnablePprof is set — live profiling is an operator opt-in, never a
// default exposure.
func TestPprofEndpointsGated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnablePprof = true
	_, base := testServer(t, cfg)

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200 (%s)", path, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index lists no profiles: %s", body)
	}

	// Disabled (the default): same paths 404, and the rest of the
	// surface is unaffected.
	_, plain := testServer(t, DefaultConfig())
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/profile"} {
		resp, err := http.Get(plain + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on plain server = %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err = http.Get(plain + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d with pprof disabled", resp.StatusCode)
	}
}
