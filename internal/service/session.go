package service

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memories/internal/addr"
	"memories/internal/bus"
	"memories/internal/cache"
	"memories/internal/checkpoint"
	"memories/internal/coherence"
	"memories/internal/core"
	"memories/internal/host"
	"memories/internal/obs"
	"memories/internal/tracefile"
	"memories/internal/workload"
	"memories/protocols"
)

// Session modes: a session is driven either by raw trace records (the
// board replays them directly) or by a synthetic workload spec (a
// modeled host generates the bus stream). Mixing the two in one
// session would interleave two incompatible bus clocks, so the first
// ingest fixes the mode.
const (
	modeUnset = iota
	modeTrace
	modeWorkload
)

// ingestLatencyBounds bucket the enqueue→applied wait of one ingest
// block, in nanoseconds (64µs .. 4s).
var ingestLatencyBounds = []uint64{
	1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24,
	1 << 26, 1 << 28, 1 << 30, 1 << 32,
}

// block is one unit of queued ingest work.
type block struct {
	recs []tracefile.Record // trace mode
	gen  workload.Generator // workload mode: swap generator first (may be nil)
	refs uint64             // workload mode: references to run
	enq  time.Time
}

// Session is one tenant's board (and, in workload mode, its modeled
// host), fed by a single worker goroutine through a bounded queue.
//
// Locking: mu guards the board, host, and trace-clock fields. The
// worker holds it while applying a block; HTTP handlers hold it while
// reading stats or writing checkpoints. The board's counters are plain
// single-writer 40-bit counters, so every touch goes through mu — the
// lock-free mirror path is reserved for /metrics scrapes.
type Session struct {
	ID      string
	srv     *Server
	created time.Time

	mu    sync.Mutex
	board *core.Board
	h     *host.Host   // nil until the first workload ingest
	mode  atomic.Int32 // modeUnset/modeTrace/modeWorkload
	seq   uint64       // trace-mode bus sequence stamp
	cycle uint64       // trace-mode bus cycle stamp
	txbuf []bus.Transaction

	hcfg     host.Config // host configuration if workload mode engages
	lineSize int64

	// Intake: senders hold sendMu.RLock and test closed before posting
	// to blocks; closeIntake write-locks, flips closed, and closes the
	// channel, so no send can race the close.
	sendMu   sync.RWMutex
	closed   bool
	blocks   chan block
	inflight atomic.Int64
	done     chan struct{}

	ingested atomic.Uint64 // records/refs applied to the board
	accepted atomic.Uint64 // records/refs admitted to the queue
	rejected atomic.Uint64 // ingest requests bounced with 429

	dirBytes   int64
	warmStart  string // corpus checkpoint the session restored from
	eccHealed  uint64 // ECC repairs made while warm-starting
	lastCkpt   string
	cIngested  *obs.Counter
	cRejected  *obs.Counter
	latHist    *obs.Histogram
	queueGauge string
}

var idRx = regexp.MustCompile(`^[a-zA-Z0-9_.-]{1,64}$`)

// newSession allocates the board, attaches it to the registry under
// "session.<id>", and starts the worker.
func (s *Server) newSession(id string, bcfg core.Config, hcfg host.Config, lineSize int64) (*Session, error) {
	b, err := core.NewBoard(bcfg)
	if err != nil {
		return nil, err
	}
	sess := &Session{
		ID:       id,
		srv:      s,
		created:  time.Now(),
		board:    b,
		hcfg:     hcfg,
		lineSize: lineSize,
		blocks:   make(chan block, s.cfg.MaxInflight),
		done:     make(chan struct{}),
	}
	for i := 0; i < b.NumNodes(); i++ {
		sess.dirBytes += b.DirectoryBytes(i)
	}
	prefix := "session." + id
	if err := b.Observe(s.reg, nil, prefix, 0); err != nil {
		return nil, err
	}
	sess.cIngested = s.reg.Counter(prefix + ".ingest.records")
	sess.cRejected = s.reg.Counter(prefix + ".ingest.retry-posted")
	sess.latHist = s.reg.Histogram(prefix+".ingest.wait_ns", ingestLatencyBounds)
	sess.queueGauge = prefix + ".ingest.queue"
	s.reg.RegisterGaugeFunc(sess.queueGauge, func() float64 {
		return float64(sess.inflight.Load())
	})
	go sess.worker()
	return sess, nil
}

// worker is the session's single consumer: it owns all board mutation.
func (s *Session) worker() {
	defer close(s.done)
	for blk := range s.blocks {
		s.apply(blk)
		s.inflight.Add(-1)
		s.latHist.Observe(uint64(time.Since(blk.enq)))
	}
}

// apply runs one block against the board under the session lock.
func (s *Session) apply(blk block) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hook := s.srv.applyHook; hook != nil {
		hook()
	}
	var n uint64
	if blk.recs != nil {
		txs := s.txbuf[:0]
		for _, r := range blk.recs {
			s.cycle++
			s.seq++
			txs = append(txs, bus.Transaction{
				Seq:   s.seq,
				Cycle: s.cycle,
				Cmd:   r.Cmd,
				Addr:  r.Addr,
				Size:  int(s.lineSize),
				SrcID: int(r.SrcID),
			})
		}
		s.txbuf = txs
		s.board.SnoopBatch(txs)
		s.board.Flush()
		n = uint64(len(blk.recs))
	} else {
		if blk.gen != nil {
			s.h.SetWorkload(blk.gen)
		}
		n = s.h.Run(blk.refs)
		s.board.Flush()
	}
	s.ingested.Add(n)
	s.cIngested.Add(n)
	s.srv.cRecords.Add(n)
	s.board.PublishObs()
}

// enqueue posts a block, applying the board's §3.3 flow control: a
// full queue is the full transaction buffer, so the caller gets the
// HTTP bus-retry (ok=false → 429) and owns the re-issue.
func (s *Session) enqueue(blk block) (ok, closed bool) {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return false, true
	}
	select {
	case s.blocks <- blk:
		s.inflight.Add(1)
		return true, false
	default:
		s.rejected.Add(1)
		s.cRejected.Inc()
		s.srv.cRetryPosted.Inc()
		return false, false
	}
}

// setMode fixes the session's drive mode on first ingest; a later
// ingest of the other kind is refused (ok=false).
func (s *Session) setMode(m int32) bool {
	if s.mode.CompareAndSwap(modeUnset, m) {
		return true
	}
	return s.mode.Load() == m
}

// ensureHost lazily builds the modeled host the first time a workload
// spec arrives, attaching the board to its bus. Safe to call from the
// ingest handler: the worker never touches s.h before the first
// workload block, and that block cannot be queued until this returns.
func (s *Session) ensureHost() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.h != nil {
		return nil
	}
	h, err := host.New(s.hcfg, nil)
	if err != nil {
		return err
	}
	h.Bus().Attach(s.board)
	s.h = h
	return nil
}

// closeIntake stops accepting blocks; the worker drains what is queued
// and exits. Idempotent.
func (s *Session) closeIntake() {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.blocks)
	}
}

// checkpointTo flushes the board and writes its checkpoint crash-
// safely to dir/<id>.ckpt, returning the path.
func (s *Session) checkpointTo(dir string) (string, error) {
	path := filepath.Join(dir, s.ID+".ckpt")
	s.mu.Lock()
	defer s.mu.Unlock()
	s.board.Flush()
	s.board.PublishObs()
	if err := s.board.WriteCheckpointFile(path); err != nil {
		return "", fmt.Errorf("service: checkpoint session %s: %w", s.ID, err)
	}
	s.lastCkpt = path
	return path, nil
}

// warmStartFrom restores the board from a checkpoint file in the
// corpus directory. Must run before any ingest (the caller holds the
// only reference at create time, so no locking races).
func (s *Session) warmStartFrom(corpusDir, name string) error {
	if corpusDir == "" {
		return fmt.Errorf("service: warm starts disabled (no corpus dir)")
	}
	// The name must be a bare file name inside the corpus — reject
	// path traversal outright rather than cleaning it.
	if name != filepath.Base(name) || name == "." || name == ".." {
		return fmt.Errorf("service: warm-start name %q must be a bare corpus file name", name)
	}
	snap, err := checkpoint.ReadFile(filepath.Join(corpusDir, name))
	if err != nil {
		return err
	}
	rep, err := core.RestoreBoard(s.board, snap)
	if err != nil {
		return err
	}
	s.warmStart = name
	s.eccHealed = rep.ECCCorrected
	// The restored board carries its checkpointed cycle clock; trace
	// stamping must resume after it or the drain ordering would see
	// time run backwards.
	s.cycle = s.board.LastCycle()
	s.seq = s.cycle
	s.board.PublishObs()
	return nil
}

// teardown detaches the session's metrics namespace.
func (s *Session) teardown() {
	s.closeIntake()
	<-s.done
	s.srv.reg.RemovePrefix("session." + s.ID)
}

// buildBoardConfig translates a create request into a board config,
// validating geometry, policy, and protocol.
func buildBoardConfig(req *CreateRequest) (core.Config, host.Config, int64, error) {
	if req.Cache == "" {
		req.Cache = "1MB"
	}
	size, err := addr.ParseSize(req.Cache)
	if err != nil {
		return core.Config{}, host.Config{}, 0, err
	}
	line := req.LineBytes
	if line == 0 {
		line = 128
	}
	assoc := req.Assoc
	if assoc == 0 {
		assoc = 8
	}
	g, err := addr.NewGeometry(size, line, assoc)
	if err != nil {
		return core.Config{}, host.Config{}, 0, err
	}
	pol := cache.LRU
	if req.Policy != "" {
		if pol, err = cache.ParsePolicy(req.Policy); err != nil {
			return core.Config{}, host.Config{}, 0, err
		}
	}
	var proto *coherence.Table
	switch {
	case req.ProtocolMap != "":
		// Inline map text only — never a server-side file path, which
		// would let any API client read the server's filesystem. The
		// full gauntlet (parse, compile, model check) runs before the
		// table touches a board.
		if req.Protocol != "" {
			return core.Config{}, host.Config{}, 0, fmt.Errorf("service: protocol and protocol_map are mutually exclusive")
		}
		var err error
		if proto, err = protocols.Verify(req.ProtocolMap); err != nil {
			return core.Config{}, host.Config{}, 0, fmt.Errorf("service: protocol_map rejected: %w", err)
		}
	default:
		protoName := strings.ToLower(req.Protocol)
		if protoName == "" {
			protoName = "mesi"
		}
		var err error
		if proto, err = protocols.Load(protoName); err != nil {
			return core.Config{}, host.Config{}, 0, fmt.Errorf("service: unknown protocol %q", protoName)
		}
	}
	ncpu := req.CPUs
	if ncpu == 0 {
		ncpu = 8
	}
	if ncpu < 1 || ncpu > core.MaxBusID {
		return core.Config{}, host.Config{}, 0, fmt.Errorf("service: cpus %d out of range [1,%d]", ncpu, core.MaxBusID)
	}
	cpus := make([]int, ncpu)
	for i := range cpus {
		cpus[i] = i
	}
	bcfg := core.Config{
		Nodes: []core.NodeConfig{{
			Name:     "a",
			CPUs:     cpus,
			Geometry: g,
			Policy:   pol,
			Protocol: proto,
		}},
		ECC: req.ECC,
	}
	hcfg := host.DefaultConfig()
	hcfg.NumCPUs = ncpu
	hcfg.LineSize = line
	if req.Seed != 0 {
		hcfg.Seed = req.Seed
	}
	// The packed directory stores one 8-byte word per slot (DESIGN.md
	// §4c); computing the footprint from the geometry lets the quota
	// check run before the board allocates anything.
	dirBytes := (g.SizeBytes / g.LineSize) * 8
	return bcfg, hcfg, dirBytes, nil
}
