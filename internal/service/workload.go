package service

import (
	"encoding/json"
	"fmt"

	"memories/internal/addr"
	"memories/internal/workload"
	"memories/internal/workload/splash"
)

// WorkloadSpec is the JSON alternative to raw trace ingest: instead of
// streaming bus records in, the tenant asks the session's modeled host
// to run one of the built-in workload models for a number of
// references. Specs queue like trace blocks and run in order; each may
// switch the generator.
type WorkloadSpec struct {
	// Workload selects the model: tpcc, tpch, web, uniform, or a
	// SPLASH2 kernel name.
	Workload string `json:"workload"`
	// Refs is how many references to run (required, bounded).
	Refs uint64 `json:"refs"`
	// Scale divides the paper-size footprint for tpcc/tpch/web
	// (default 2048, which fits CI).
	Scale int64 `json:"scale,omitempty"`
	// Footprint sizes the uniform workload ("64MB"; default 16MB).
	Footprint string `json:"footprint,omitempty"`
	// WriteFraction is the uniform workload's write probability.
	WriteFraction float64 `json:"write_fraction,omitempty"`
	// Seed drives generator randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Size picks the SPLASH2 problem size: paper, classic, test
	// (default test — service sessions want bounded setup cost).
	Size string `json:"size,omitempty"`
}

// MaxSpecRefs bounds one workload block so a single request cannot
// monopolize a session worker for minutes.
const MaxSpecRefs = 50_000_000

func parseWorkloadSpec(body []byte) (*WorkloadSpec, error) {
	var spec WorkloadSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		return nil, fmt.Errorf("service: body is neither a MIES trace nor a workload spec: %v", err)
	}
	if spec.Workload == "" {
		return nil, fmt.Errorf("service: workload spec missing \"workload\"")
	}
	if spec.Refs == 0 {
		return nil, fmt.Errorf("service: workload spec missing \"refs\"")
	}
	if spec.Refs > MaxSpecRefs {
		return nil, fmt.Errorf("service: refs %d exceeds per-block cap %d", spec.Refs, MaxSpecRefs)
	}
	return &spec, nil
}

// build constructs the generator for ncpu host processors.
func (spec *WorkloadSpec) build(ncpu int) (workload.Generator, error) {
	scale := spec.Scale
	if scale <= 0 {
		scale = 2048
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	switch spec.Workload {
	case "tpcc":
		cfg := workload.ScaledTPCCConfig(scale)
		cfg.NumCPUs = ncpu
		cfg.Seed = seed
		return workload.NewTPCC(cfg), nil
	case "tpch":
		cfg := workload.ScaledTPCHConfig(scale)
		cfg.NumCPUs = ncpu
		cfg.Seed = seed
		return workload.NewTPCH(cfg), nil
	case "web":
		cfg := workload.ScaledWebConfig(scale)
		cfg.NumCPUs = ncpu
		cfg.Seed = seed
		return workload.NewWeb(cfg), nil
	case "uniform":
		foot := int64(16 << 20)
		if spec.Footprint != "" {
			var err error
			if foot, err = addr.ParseSize(spec.Footprint); err != nil {
				return nil, err
			}
		}
		return workload.NewUniform(workload.UniformConfig{
			NumCPUs:       ncpu,
			FootprintByte: foot,
			WriteFraction: spec.WriteFraction,
			Seed:          seed,
		}), nil
	default:
		sz := splash.SizeTest
		switch spec.Size {
		case "paper":
			sz = splash.SizePaper
		case "classic":
			sz = splash.SizeClassic
		case "", "test":
		default:
			return nil, fmt.Errorf("service: unknown splash size %q", spec.Size)
		}
		if g := splash.New(spec.Workload, sz, ncpu, seed); g != nil {
			return g, nil
		}
		return nil, fmt.Errorf("service: unknown workload %q (want tpcc, tpch, web, uniform, or one of %v)",
			spec.Workload, splash.Names())
	}
}
