package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"memories/internal/bus"
	"memories/internal/checkpoint"
	"memories/internal/core"
	"memories/internal/tracefile"
	"memories/protocols"
)

// testServer starts a service on a loopback port and returns its base
// URL; the listener is torn down with the test.
func testServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, "http://" + srv.Addr()
}

// traceBody encodes n records as a MIES0001 stream with a fixed stride.
func traceBody(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatalf("trace writer: %v", err)
	}
	for i := 0; i < n; i++ {
		cmd := bus.Read
		if i%4 == 3 {
			cmd = bus.RWITM
		}
		rec := tracefile.Record{Addr: uint64(i) * 64, Cmd: cmd, SrcID: uint8(i % 4)}
		if err := w.Write(rec); err != nil {
			t.Fatalf("trace write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("trace flush: %v", err)
	}
	return buf.Bytes()
}

func traceBodyV2(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := tracefile.NewV2Writer(&buf)
	if err != nil {
		t.Fatalf("v2 writer: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Write(tracefile.Record{Addr: uint64(i) * 128, Cmd: bus.Read}); err != nil {
			t.Fatalf("v2 write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("v2 flush: %v", err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func drainBody(resp *http.Response) string {
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(b)
}

// pollStats polls until the session's queue is empty and every
// accepted record has been applied.
func pollStats(t *testing.T, base, id string) StatsResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/sessions/" + id + "/stats")
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		var st StatsResponse
		decodeInto(t, resp, &st)
		if st.Queue == 0 && st.Ingested >= st.Accepted {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s never drained: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, base := testServer(t, Config{})

	resp := postJSON(t, base+"/sessions", CreateRequest{
		ID: "alpha", Cache: "64KB", LineBytes: 64, Assoc: 2, Protocol: "MESI",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var info SessionInfo
	decodeInto(t, resp, &info)
	if info.ID != "alpha" || info.DirectoryBytes != (64<<10/64)*8 {
		t.Fatalf("create info = %+v", info)
	}

	// Ingest two v1 blocks and one v2 block; all go to the same clock.
	for i, body := range [][]byte{traceBody(t, 500), traceBody(t, 500), traceBodyV2(t, 250)} {
		resp, err := http.Post(base+"/sessions/alpha/trace", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d: %s", i, resp.StatusCode, drainBody(resp))
		}
		var ir IngestResponse
		decodeInto(t, resp, &ir)
		if ir.Accepted == 0 {
			t.Fatalf("ingest %d accepted 0", i)
		}
	}

	st := pollStats(t, base, "alpha")
	if st.Mode != "trace" {
		t.Fatalf("mode = %q, want trace", st.Mode)
	}
	if st.Ingested != 1250 || st.Accepted != 1250 {
		t.Fatalf("ingested/accepted = %d/%d, want 1250/1250", st.Ingested, st.Accepted)
	}
	if st.LastCycle != 1250 {
		t.Fatalf("last_cycle = %d, want 1250", st.LastCycle)
	}
	if len(st.Nodes) != 1 || st.Nodes[0].ReadHit+st.Nodes[0].ReadMiss == 0 {
		t.Fatalf("node stats missing: %+v", st.Nodes)
	}

	// List shows the session.
	resp, err := http.Get(base + "/sessions")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	var list []SessionInfo
	decodeInto(t, resp, &list)
	if len(list) != 1 || list[0].ID != "alpha" {
		t.Fatalf("list = %+v", list)
	}

	// Delete returns the final stats and frees the slot.
	req, _ := http.NewRequest(http.MethodDelete, base+"/sessions/alpha", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	var final StatsResponse
	decodeInto(t, resp, &final)
	if final.Ingested != 1250 {
		t.Fatalf("final ingested = %d", final.Ingested)
	}
	resp, err = http.Get(base + "/sessions/alpha/stats")
	if err != nil {
		t.Fatalf("stats after delete: %v", err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats after delete: status %d", resp.StatusCode)
	}
	drainBody(resp)
}

func TestCreateValidation(t *testing.T) {
	srv, base := testServer(t, Config{MaxDirectoryBytes: 1 << 20})

	cases := []struct {
		name string
		req  CreateRequest
		want int
	}{
		{"bad protocol", CreateRequest{Protocol: "dragon", Cache: "64KB"}, http.StatusBadRequest},
		{"bad policy", CreateRequest{Policy: "belady", Cache: "64KB"}, http.StatusBadRequest},
		{"bad id", CreateRequest{ID: "no spaces", Cache: "64KB"}, http.StatusBadRequest},
		{"bad geometry", CreateRequest{Cache: "100KB", LineBytes: 96}, http.StatusBadRequest},
		{"over quota", CreateRequest{Cache: "1GB", LineBytes: 64}, http.StatusRequestEntityTooLarge},
		{"warm start disabled", CreateRequest{Cache: "64KB", WarmStart: "x.ckpt"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, base+"/sessions", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, drainBody(resp))
			continue
		}
		drainBody(resp)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("rejected creates leaked %d sessions", n)
	}

	// Duplicate ID conflicts.
	for i, want := range []int{http.StatusCreated, http.StatusConflict} {
		resp := postJSON(t, base+"/sessions", CreateRequest{ID: "dup", Cache: "64KB", LineBytes: 64})
		if resp.StatusCode != want {
			t.Fatalf("dup create %d: status %d, want %d", i, resp.StatusCode, want)
		}
		drainBody(resp)
	}
}

func TestPoolFull(t *testing.T) {
	_, base := testServer(t, Config{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		resp := postJSON(t, base+"/sessions", CreateRequest{Cache: "64KB", LineBytes: 64})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		drainBody(resp)
	}
	resp := postJSON(t, base+"/sessions", CreateRequest{Cache: "64KB", LineBytes: 64})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third create: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("pool-full 503 missing Retry-After")
	}
	drainBody(resp)
}

// TestBackpressure429 wedges the session worker via the apply hook so
// the bounded queue fills, then verifies the HTTP bus-retry: 429 +
// Retry-After, and that a re-issue after release succeeds.
func TestBackpressure429(t *testing.T) {
	srv, base := testServer(t, Config{MaxInflight: 2})
	release := make(chan struct{})
	var once sync.Once
	gate := make(chan struct{})
	srv.applyHook = func() {
		once.Do(func() { close(gate) })
		<-release
	}

	resp := postJSON(t, base+"/sessions", CreateRequest{ID: "slow", Cache: "64KB", LineBytes: 64})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	drainBody(resp)

	body := traceBody(t, 100)
	// First block wedges in the worker; wait until it is actually held
	// so the queue accounting below is deterministic.
	resp, err := http.Post(base+"/sessions/slow/trace", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest 0: status %d", resp.StatusCode)
	}
	drainBody(resp)
	<-gate

	// Two more fill the queue; the next must bounce with 429.
	var got429 bool
	for i := 0; i < 3; i++ {
		resp, err := http.Post(base+"/sessions/slow/trace", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 missing Retry-After")
			}
		default:
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
		drainBody(resp)
	}
	if !got429 {
		t.Fatal("queue never bounced with 429")
	}

	// Release the worker; the client re-issues and the session drains.
	close(release)
	resp, err = http.Post(base+"/sessions/slow/trace", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("re-issue: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("re-issue: status %d", resp.StatusCode)
	}
	drainBody(resp)
	st := pollStats(t, base, "slow")
	if st.Rejected == 0 {
		t.Fatalf("stats rejected_429 = 0, want >0: %+v", st)
	}
	if v := srv.Registry().Counter("service.ingest.retry-posted").Value(); v == 0 {
		t.Fatal("service.ingest.retry-posted counter = 0")
	}
}

func TestModeConflict(t *testing.T) {
	_, base := testServer(t, Config{})
	resp := postJSON(t, base+"/sessions", CreateRequest{ID: "tr", Cache: "64KB", LineBytes: 64})
	drainBody(resp)

	resp, err := http.Post(base+"/sessions/tr/trace", "application/octet-stream", bytes.NewReader(traceBody(t, 10)))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trace ingest: status %d", resp.StatusCode)
	}
	drainBody(resp)

	resp = postJSON(t, base+"/sessions/tr/trace", WorkloadSpec{Workload: "uniform", Refs: 100})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("workload into trace session: status %d, want 409 (%s)", resp.StatusCode, drainBody(resp))
	}
	drainBody(resp)
}

func TestWorkloadSession(t *testing.T) {
	_, base := testServer(t, Config{})
	resp := postJSON(t, base+"/sessions", CreateRequest{ID: "wl", Cache: "64KB", LineBytes: 64, CPUs: 4, Seed: 7})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	drainBody(resp)

	for _, spec := range []WorkloadSpec{
		{Workload: "tpcc", Refs: 5000},
		{Workload: "uniform", Refs: 5000, Footprint: "1MB", WriteFraction: 0.3},
	} {
		resp = postJSON(t, base+"/sessions/wl/trace", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: status %d: %s", spec.Workload, resp.StatusCode, drainBody(resp))
		}
		drainBody(resp)
	}
	st := pollStats(t, base, "wl")
	if st.Mode != "workload" {
		t.Fatalf("mode = %q", st.Mode)
	}
	if st.Ingested != 10000 {
		t.Fatalf("ingested = %d, want 10000", st.Ingested)
	}
	if st.Nodes[0].ReadHit+st.Nodes[0].ReadMiss+st.Nodes[0].WriteHit+st.Nodes[0].WriteMiss == 0 {
		t.Fatal("workload produced no cache activity")
	}

	// Unknown workload and over-cap refs are refused.
	for _, spec := range []WorkloadSpec{
		{Workload: "nosuch", Refs: 10},
		{Workload: "uniform", Refs: MaxSpecRefs + 1},
	} {
		resp = postJSON(t, base+"/sessions/wl/trace", spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", spec.Workload, resp.StatusCode)
		}
		drainBody(resp)
	}
}

// TestDrainCheckpoint is the acceptance criterion: SIGTERM-style drain
// mid-load checkpoints every session, and a restored board matches the
// drained session's counters exactly.
func TestDrainCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, base := testServer(t, Config{CheckpointDir: dir})

	const n = 4
	for i := 0; i < n; i++ {
		resp := postJSON(t, base+"/sessions", CreateRequest{
			ID: fmt.Sprintf("d%d", i), Cache: "64KB", LineBytes: 64, Assoc: 2,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		drainBody(resp)
		resp, err := http.Post(base+fmt.Sprintf("/sessions/d%d/trace", i),
			"application/octet-stream", bytes.NewReader(traceBody(t, 300+100*i)))
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
		drainBody(resp)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drained, err := srv.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if drained != n {
		t.Fatalf("drained %d sessions, want %d", drained, n)
	}

	// Admission is closed during/after drain.
	resp := postJSON(t, base+"/sessions", CreateRequest{Cache: "64KB", LineBytes: 64})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: status %d, want 503", resp.StatusCode)
	}
	drainBody(resp)
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", resp.StatusCode)
	}
	drainBody(resp)

	// Every session produced a checkpoint file.
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("d%d", i)
		if _, err := os.Stat(filepath.Join(dir, id+".ckpt")); err != nil {
			t.Fatalf("missing checkpoint: %v", err)
		}
	}

	// Restore d1 into a fresh, identically configured board and compare
	// every counter with the drained session's live board.
	live := srv.session("d1")
	if live == nil {
		t.Fatal("session d1 gone after drain")
	}
	snap, err := checkpoint.ReadFile(filepath.Join(dir, "d1.ckpt"))
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	fresh, err := core.NewBoard(live.board.Config())
	if err != nil {
		t.Fatalf("fresh board: %v", err)
	}
	if _, err := core.RestoreBoard(fresh, snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := fresh.Counters().Dump(""), live.board.Counters().Dump(""); got != want {
		t.Fatalf("restored counters diverge:\n got: %s\nwant: %s", got, want)
	}
	if fresh.LastCycle() != live.board.LastCycle() {
		t.Fatalf("restored cycle %d != live %d", fresh.LastCycle(), live.board.LastCycle())
	}
}

// TestWarmStart checkpoints one session's board into a corpus, then
// creates a new session warm-started from it and verifies the restored
// state and resumed cycle clock.
func TestWarmStart(t *testing.T) {
	corpus := t.TempDir()

	// Phase 1: build the corpus by draining a loaded server into it.
	srv1, base1 := testServer(t, Config{CheckpointDir: corpus})
	resp := postJSON(t, base1+"/sessions", CreateRequest{ID: "seed", Cache: "64KB", LineBytes: 64, Assoc: 2})
	drainBody(resp)
	resp, err := http.Post(base1+"/sessions/seed/trace", "application/octet-stream", bytes.NewReader(traceBody(t, 800)))
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seed ingest: %v status %d", err, resp.StatusCode)
	}
	drainBody(resp)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := srv1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wantDump := srv1.session("seed").board.Counters().Dump("")

	// Phase 2: warm-start a session from the corpus on a fresh server.
	_, base2 := testServer(t, Config{CorpusDir: corpus})
	resp = postJSON(t, base2+"/sessions", CreateRequest{
		ID: "warm", Cache: "64KB", LineBytes: 64, Assoc: 2, WarmStart: "seed.ckpt",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("warm create: status %d: %s", resp.StatusCode, drainBody(resp))
	}
	var info SessionInfo
	decodeInto(t, resp, &info)
	if info.WarmStart != "seed.ckpt" {
		t.Fatalf("info.WarmStart = %q", info.WarmStart)
	}
	st := pollStats(t, base2, "warm")
	if st.LastCycle != 800 {
		t.Fatalf("warm session cycle = %d, want 800", st.LastCycle)
	}
	if st.WarmStart != "seed.ckpt" {
		t.Fatalf("stats warm_start = %q", st.WarmStart)
	}

	srv2b, base2b := testServer(t, Config{CorpusDir: corpus})
	resp = postJSON(t, base2b+"/sessions", CreateRequest{
		ID: "warm2", Cache: "64KB", LineBytes: 64, Assoc: 2, WarmStart: "seed.ckpt",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("warm2 create: status %d", resp.StatusCode)
	}
	drainBody(resp)
	if got := srv2b.session("warm2").board.Counters().Dump(""); got != wantDump {
		t.Fatalf("warm-started counters diverge:\n got: %s\nwant: %s", got, wantDump)
	}

	// Geometry mismatch: the checkpoint fingerprints its config.
	resp = postJSON(t, base2+"/sessions", CreateRequest{
		ID: "wrong", Cache: "128KB", LineBytes: 64, Assoc: 2, WarmStart: "seed.ckpt",
	})
	if resp.StatusCode == http.StatusCreated {
		t.Fatal("mismatched warm start was accepted")
	}
	drainBody(resp)

	// Path traversal is rejected outright.
	resp = postJSON(t, base2+"/sessions", CreateRequest{
		Cache: "64KB", LineBytes: 64, WarmStart: "../seed.ckpt",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal warm start: status %d, want 400", resp.StatusCode)
	}
	drainBody(resp)

	// A corrupt checkpoint is a 422, distinct from caller error.
	bad := filepath.Join(corpus, "bad.ckpt")
	raw, err := os.ReadFile(filepath.Join(corpus, "seed.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, base2+"/sessions", CreateRequest{
		Cache: "64KB", LineBytes: 64, Assoc: 2, WarmStart: "bad.ckpt",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt warm start: status %d, want 422 (%s)", resp.StatusCode, drainBody(resp))
	}
	drainBody(resp)
}

// TestMetricsLabels verifies /metrics rewrites session namespaces into
// Prometheus labels and tears them down with the session.
func TestMetricsLabels(t *testing.T) {
	srv, base := testServer(t, Config{})
	resp := postJSON(t, base+"/sessions", CreateRequest{ID: "m-1", Cache: "64KB", LineBytes: 64})
	drainBody(resp)
	resp, err := http.Post(base+"/sessions/m-1/trace", "application/octet-stream", bytes.NewReader(traceBody(t, 50)))
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %v status %d", err, resp.StatusCode)
	}
	drainBody(resp)
	pollStats(t, base, "m-1")

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	text := drainBody(resp)
	if !strings.Contains(text, `session="m-1"`) {
		t.Fatalf("metrics missing session label:\n%s", text)
	}
	if !strings.Contains(text, "memories_service_sessions_created") {
		t.Fatalf("metrics missing service counters:\n%s", text)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/sessions/m-1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	drainBody(resp)
	if n := srv.Registry().RemovePrefix("session.m-1"); n != 0 {
		t.Fatalf("teardown left %d session series behind", n)
	}
}

// TestConcurrentClients drives 8 parallel client goroutines through
// full lifecycles against one server; run under -race this is the
// stress check for the session map, queue, and counter paths.
func TestConcurrentClients(t *testing.T) {
	_, base := testServer(t, Config{MaxInflight: 4})
	body := traceBody(t, 200)

	const clients = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := 0; s < 3; s++ {
				id := fmt.Sprintf("c%d-s%d", c, s)
				b, _ := json.Marshal(CreateRequest{ID: id, Cache: "64KB", LineBytes: 64, Assoc: 2})
				resp, err := http.Post(base+"/sessions", "application/json", bytes.NewReader(b))
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusCreated {
					errc <- fmt.Errorf("%s create: status %d", id, resp.StatusCode)
					return
				}
				drainBody(resp)
				for i := 0; i < 4; i++ {
					for {
						resp, err := http.Post(base+"/sessions/"+id+"/trace",
							"application/octet-stream", bytes.NewReader(body))
						if err != nil {
							errc <- err
							return
						}
						code := resp.StatusCode
						drainBody(resp)
						if code == http.StatusAccepted {
							break
						}
						if code != http.StatusTooManyRequests {
							errc <- fmt.Errorf("%s ingest: status %d", id, code)
							return
						}
						time.Sleep(time.Millisecond)
					}
				}
				req, _ := http.NewRequest(http.MethodDelete, base+"/sessions/"+id, nil)
				resp, err = http.DefaultClient.Do(req)
				if err != nil {
					errc <- err
					return
				}
				var final StatsResponse
				if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
					resp.Body.Close()
					errc <- err
					return
				}
				resp.Body.Close()
				if final.Ingested != 800 {
					errc <- fmt.Errorf("%s final ingested = %d, want 800", id, final.Ingested)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestIngestErrors(t *testing.T) {
	_, base := testServer(t, Config{MaxBodyBytes: 1 << 10})
	resp := postJSON(t, base+"/sessions", CreateRequest{ID: "e", Cache: "64KB", LineBytes: 64})
	drainBody(resp)

	// Unknown session.
	resp, err := http.Post(base+"/sessions/ghost/trace", "application/octet-stream", bytes.NewReader(traceBody(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost ingest: status %d", resp.StatusCode)
	}
	drainBody(resp)

	// Garbage body: neither trace magic nor a workload spec.
	resp, err = http.Post(base+"/sessions/e/trace", "application/octet-stream", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage ingest: status %d", resp.StatusCode)
	}
	drainBody(resp)

	// Body over the cap is refused.
	resp, err = http.Post(base+"/sessions/e/trace", "application/octet-stream", bytes.NewReader(traceBody(t, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d", resp.StatusCode)
	}
	drainBody(resp)
}

// A custom protocol arrives as inline map text and runs the full
// load-time gauntlet: a coherent table builds the session (and names
// it), an incoherent one is rejected with the model checker's
// counterexample, and combining protocol with protocol_map is an error.
func TestCreateProtocolMap(t *testing.T) {
	srv, base := testServer(t, Config{})

	src, err := protocols.Source("write-once")
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, base+"/sessions", CreateRequest{
		ID: "custom", Cache: "64KB", LineBytes: 64, ProtocolMap: src,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("inline map rejected: status %d: %s", resp.StatusCode, drainBody(resp))
	}
	var info SessionInfo
	decodeInto(t, resp, &info)
	if info.Protocol != "write-once" {
		t.Fatalf("session protocol = %q, want write-once", info.Protocol)
	}

	// Drop the writeback from MESI's snooped-dirty-read rule: parses
	// fine, fails the model check with a stale-read counterexample.
	bad := strings.Replace(src,
		"snoop-read M * -> S respond-modified writeback",
		"snoop-read M * -> S respond-modified", 1)
	if bad == src {
		t.Fatal("mutation did not apply")
	}
	resp = postJSON(t, base+"/sessions", CreateRequest{Cache: "64KB", LineBytes: 64, ProtocolMap: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("incoherent map: status %d, want 400", resp.StatusCode)
	}
	if body := drainBody(resp); !strings.Contains(body, "stale read") {
		t.Fatalf("incoherent map error lacks the checker verdict: %s", body)
	}

	resp = postJSON(t, base+"/sessions", CreateRequest{Cache: "64KB", LineBytes: 64, Protocol: "msi", ProtocolMap: src})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("protocol+protocol_map: status %d, want 400", resp.StatusCode)
	}
	drainBody(resp)

	if n := srv.SessionCount(); n != 1 {
		t.Fatalf("session count = %d, want 1 (only the valid create)", n)
	}
}
