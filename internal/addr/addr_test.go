package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, v := range []int64{1, 2, 4, 128, 1 << 30, 1 << 40} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []int64{0, -1, -2, 3, 6, 100, (1 << 30) + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestLog2(t *testing.T) {
	for i := uint(0); i < 62; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(1<<%d) = %d", i, got)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(3) did not panic")
		}
	}()
	Log2(3)
}

func TestNewGeometryValid(t *testing.T) {
	cases := []struct {
		size, line int64
		assoc      int
		wantSets   int64
	}{
		{2 * MB, 128, 1, 16384},
		{8 * GB, 16 * KB, 8, 65536},
		{64 * MB, 128, 4, 131072},
		{1 * MB, 128, 8, 1024},
		{32 * KB, 64, 2, 256},
		{128, 128, 1, 1},
	}
	for _, c := range cases {
		g, err := NewGeometry(c.size, c.line, c.assoc)
		if err != nil {
			t.Errorf("NewGeometry(%d,%d,%d): %v", c.size, c.line, c.assoc, err)
			continue
		}
		if g.Sets != c.wantSets {
			t.Errorf("NewGeometry(%d,%d,%d).Sets = %d, want %d", c.size, c.line, c.assoc, g.Sets, c.wantSets)
		}
		if g.Lines() != c.size/c.line {
			t.Errorf("Lines() = %d, want %d", g.Lines(), c.size/c.line)
		}
	}
}

func TestNewGeometryInvalid(t *testing.T) {
	cases := []struct {
		size, line int64
		assoc      int
	}{
		{3 * MB, 128, 1},    // size not pow2
		{2 * MB, 100, 1},    // line not pow2
		{2 * MB, 128, 0},    // assoc < 1
		{2 * MB, 128, -4},   // negative assoc
		{64, 128, 1},        // size < line
		{256, 128, 3},       // lines not divisible (also sets non-pow2)
		{2 * MB, 128, 1000}, // sets not pow2 after division
	}
	for _, c := range cases {
		if _, err := NewGeometry(c.size, c.line, c.assoc); err == nil {
			t.Errorf("NewGeometry(%d,%d,%d) accepted invalid geometry", c.size, c.line, c.assoc)
		}
	}
}

func TestGeometrySplitRoundTrip(t *testing.T) {
	g := MustGeometry(64*MB, 128, 4)
	f := func(a uint64) bool {
		tag, idx := g.Tag(a), g.Index(a)
		return g.Rebuild(tag, idx) == g.LineAddr(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGeometryIndexRange(t *testing.T) {
	g := MustGeometry(16*MB, 1024, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a := rng.Uint64()
		if idx := g.Index(a); idx < 0 || idx >= g.Sets {
			t.Fatalf("Index(%#x) = %d out of [0,%d)", a, idx, g.Sets)
		}
	}
}

func TestGeometryAdjacentLinesDifferentIndex(t *testing.T) {
	g := MustGeometry(1*MB, 128, 1)
	for a := uint64(0); a < uint64(g.Sets)*uint64(g.LineSize); a += uint64(g.LineSize) {
		next := a + uint64(g.LineSize)
		if g.Tag(a) == g.Tag(next) && g.Index(a) == g.Index(next) {
			t.Fatalf("adjacent lines %#x,%#x map to same (tag,index)", a, next)
		}
	}
}

func TestGeometryString(t *testing.T) {
	cases := []struct {
		g    Geometry
		want string
	}{
		{MustGeometry(64*MB, 128, 4), "64MB 4-way, 128B lines"},
		{MustGeometry(16*MB, 1*KB, 1), "16MB direct-mapped, 1KB lines"},
		{MustGeometry(1*GB, 16*KB, 8), "1GB 8-way, 16KB lines"},
	}
	for _, c := range cases {
		if got := c.g.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestFormatSize(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{128, "128B"},
		{64 * KB, "64KB"},
		{8 * MB, "8MB"},
		{1 * GB, "1GB"},
		{8 * GB, "8GB"},
		{1536, "1536B"}, // not a whole KB multiple... actually 1536 = 1.5KB; falls to B
	}
	for _, c := range cases {
		if got := FormatSize(c.in); got != c.want {
			t.Errorf("FormatSize(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"128B", 128},
		{"128", 128},
		{"64KB", 64 * KB},
		{"64kb", 64 * KB},
		{"8MB", 8 * MB},
		{"8MiB", 8 * MB},
		{"1GB", GB},
		{"2G", 2 * GB},
		{" 512 KB ", 512 * KB},
		{"0", 0},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "12XB", "-5MB", "1.5MB"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) succeeded, want error", bad)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	f := func(exp uint8) bool {
		e := exp % 34 // up to 8GB
		v := int64(1) << e
		got, err := ParseSize(FormatSize(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
