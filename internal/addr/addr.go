// Package addr provides address arithmetic shared by every cache-like
// structure in the emulator: power-of-two geometry, tag/index/offset
// splitting, and human-friendly size parsing and formatting.
//
// All caches in MemorIES (the emulated L2/L3 node directories, the host's
// private caches, the NUMA sparse directory and remote caches) address
// memory through the same tag/index/offset decomposition, so it lives here
// rather than in any one of them.
package addr

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Size units in bytes.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int64) bool {
	return v > 0 && v&(v-1) == 0
}

// Log2 returns the base-2 logarithm of v. It panics if v is not a positive
// power of two; geometry constructors validate before calling it.
func Log2(v int64) uint {
	if !IsPow2(v) {
		panic(fmt.Sprintf("addr: Log2 of non-power-of-two %d", v))
	}
	return uint(bits.TrailingZeros64(uint64(v)))
}

// Geometry describes a set-associative cache layout. The zero value is not
// usable; construct with NewGeometry.
type Geometry struct {
	SizeBytes int64 // total capacity in bytes
	LineSize  int64 // line (block) size in bytes
	Assoc     int   // ways per set; 1 = direct mapped
	Sets      int64 // number of sets (derived)

	offBits uint // low bits addressing within a line
	idxBits uint // bits selecting the set
}

// NewGeometry validates and derives a cache geometry. Size and line size
// must be powers of two; associativity must divide the number of lines.
// These mirror the MemorIES board constraints (Table 2 of the paper): the
// board supports 2MB-8GB capacity, direct-mapped through 8-way, and
// 128B-16KB lines, but the geometry type itself is range-agnostic so the
// host's small L1/L2 caches reuse it.
func NewGeometry(sizeBytes, lineSize int64, assoc int) (Geometry, error) {
	switch {
	case !IsPow2(sizeBytes):
		return Geometry{}, fmt.Errorf("addr: cache size %d is not a power of two", sizeBytes)
	case !IsPow2(lineSize):
		return Geometry{}, fmt.Errorf("addr: line size %d is not a power of two", lineSize)
	case assoc < 1:
		return Geometry{}, fmt.Errorf("addr: associativity %d < 1", assoc)
	case sizeBytes < lineSize:
		return Geometry{}, fmt.Errorf("addr: cache size %d smaller than line size %d", sizeBytes, lineSize)
	}
	lines := sizeBytes / lineSize
	if int64(assoc) > lines {
		return Geometry{}, fmt.Errorf("addr: associativity %d exceeds %d lines", assoc, lines)
	}
	if lines%int64(assoc) != 0 {
		return Geometry{}, fmt.Errorf("addr: %d lines not divisible by associativity %d", lines, assoc)
	}
	sets := lines / int64(assoc)
	if !IsPow2(sets) {
		return Geometry{}, fmt.Errorf("addr: derived set count %d is not a power of two", sets)
	}
	return Geometry{
		SizeBytes: sizeBytes,
		LineSize:  lineSize,
		Assoc:     assoc,
		Sets:      sets,
		offBits:   Log2(lineSize),
		idxBits:   Log2(sets),
	}, nil
}

// MustGeometry is NewGeometry for statically known-good parameters.
func MustGeometry(sizeBytes, lineSize int64, assoc int) Geometry {
	g, err := NewGeometry(sizeBytes, lineSize, assoc)
	if err != nil {
		panic(err)
	}
	return g
}

// Lines returns the total number of lines in the cache.
func (g Geometry) Lines() int64 { return g.Sets * int64(g.Assoc) }

// LineAddr returns the line-aligned address containing a.
func (g Geometry) LineAddr(a uint64) uint64 { return a &^ (uint64(g.LineSize) - 1) }

// Index returns the set index for address a.
func (g Geometry) Index(a uint64) int64 {
	return int64((a >> g.offBits) & (uint64(g.Sets) - 1))
}

// Tag returns the tag for address a (the address bits above the index).
func (g Geometry) Tag(a uint64) uint64 { return a >> (g.offBits + g.idxBits) }

// Rebuild reconstructs the line-aligned address from a tag and set index;
// it is the inverse of Tag/Index and is used when a victim line's address
// must be recovered for castout traffic.
func (g Geometry) Rebuild(tag uint64, index int64) uint64 {
	return tag<<(g.offBits+g.idxBits) | uint64(index)<<g.offBits
}

// String renders the geometry in the paper's style, e.g.
// "64MB 4-way, 128B lines".
func (g Geometry) String() string {
	way := fmt.Sprintf("%d-way", g.Assoc)
	if g.Assoc == 1 {
		way = "direct-mapped"
	}
	return fmt.Sprintf("%s %s, %s lines", FormatSize(g.SizeBytes), way, FormatSize(g.LineSize))
}

// FormatSize renders a byte count with binary units (128B, 64KB, 8MB, 1GB).
// Sizes are always powers of two in this codebase, so no fractions appear
// for valid geometries; other values fall back to the largest exact unit.
func FormatSize(b int64) string {
	switch {
	case b >= GB && b%GB == 0:
		return strconv.FormatInt(b/GB, 10) + "GB"
	case b >= MB && b%MB == 0:
		return strconv.FormatInt(b/MB, 10) + "MB"
	case b >= KB && b%KB == 0:
		return strconv.FormatInt(b/KB, 10) + "KB"
	default:
		return strconv.FormatInt(b, 10) + "B"
	}
}

// ParseSize parses strings like "128B", "64KB", "8MB", "1GB" (case
// insensitive, optional "iB" suffix accepted) into a byte count.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	t = strings.TrimSuffix(t, "IB")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "G"):
		mult, t = GB, strings.TrimSuffix(t, "G")
	case strings.HasSuffix(t, "M"):
		mult, t = MB, strings.TrimSuffix(t, "M")
	case strings.HasSuffix(t, "K"):
		mult, t = KB, strings.TrimSuffix(t, "K")
	case strings.HasSuffix(t, "B"):
		t = strings.TrimSuffix(t, "B")
		switch {
		case strings.HasSuffix(t, "G"):
			mult, t = GB, strings.TrimSuffix(t, "G")
		case strings.HasSuffix(t, "M"):
			mult, t = MB, strings.TrimSuffix(t, "M")
		case strings.HasSuffix(t, "K"):
			mult, t = KB, strings.TrimSuffix(t, "K")
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("addr: cannot parse size %q: %v", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("addr: negative size %q", s)
	}
	return n * mult, nil
}
