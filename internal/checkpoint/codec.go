package checkpoint

import (
	"encoding/binary"
	"math"
)

// Enc builds a section payload. All integers are little-endian; strings
// and slices carry a u32 length prefix. The zero value is ready to use.
type Enc struct {
	b []byte
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a byte 0/1.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// I64 appends an int64 as its two's-complement bits.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits (bit-exact round trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// U64Slice appends a length-prefixed []uint64.
func (e *Enc) U64Slice(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// I64Slice appends a length-prefixed []int64.
func (e *Enc) I64Slice(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// U8Slice appends a length-prefixed []uint8.
func (e *Enc) U8Slice(v []uint8) {
	e.U32(uint32(len(v)))
	e.b = append(e.b, v...)
}

// Dec reads a section payload with sticky-error semantics: the first
// failure (read past end, oversized slice) latches a *CorruptError and
// every subsequent accessor returns zero values. Callers check Err()
// once at the end instead of after every field.
type Dec struct {
	section string
	base    int64 // file offset of the section, for error reporting
	b       []byte
	off     int
	err     *CorruptError
}

// NewDec wraps a payload. section and base feed error reports.
func NewDec(section string, base int64, payload []byte) *Dec {
	return &Dec{section: section, base: base, b: payload}
}

// Err returns the latched corruption error, if any.
func (d *Dec) Err() error {
	if d.err != nil {
		return d.err
	}
	return nil
}

// Failf latches a caller-detected mismatch (wrong fingerprint, value
// out of range) as a CorruptError attributed to this section.
func (d *Dec) Failf(format string, args ...any) *CorruptError {
	if d.err == nil {
		d.err = corruptf(d.section, d.base, format, args...)
	}
	return d.err
}

// Remaining returns the number of unread payload bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// take returns the next n bytes, or latches truncation.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.Failf("payload truncated: need %d bytes at payload offset %d, have %d", n, d.off, d.Remaining())
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a 0/1 byte; anything else is corruption.
func (d *Dec) Bool() bool {
	v := d.U8()
	if d.err == nil && v > 1 {
		d.Failf("invalid bool byte %d", v)
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// sliceLen reads a length prefix and guards it against the remaining
// payload so corrupt lengths cannot drive huge allocations.
func (d *Dec) sliceLen(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > d.Remaining()/elemSize) {
		d.Failf("slice length %d exceeds remaining payload (%d bytes)", n, d.Remaining())
		return 0
	}
	return n
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.sliceLen(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// U64Slice reads a length-prefixed []uint64.
func (d *Dec) U64Slice() []uint64 {
	n := d.sliceLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = d.U64()
	}
	return v
}

// I64Slice reads a length-prefixed []int64.
func (d *Dec) I64Slice() []int64 {
	n := d.sliceLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.I64()
	}
	return v
}

// U8Slice reads a length-prefixed []uint8 (copied out of the payload).
func (d *Dec) U8Slice() []uint8 {
	n := d.sliceLen(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	v := make([]uint8, n)
	copy(v, b)
	return v
}

// Close verifies the payload was fully consumed and returns the final
// status. Unread bytes mean the writer and reader disagree about the
// section layout — corruption from the restorer's point of view.
func (d *Dec) Close() error {
	if d.err == nil && d.Remaining() != 0 {
		d.Failf("%d unread bytes at end of section", d.Remaining())
	}
	return d.Err()
}
