package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Rotation manages a directory of numbered checkpoints so that a save
// never clobbers the last good one and a restore can fall back past a
// corrupt newest entry. Files are named <Base>-00000001.ckpt and so on;
// Save writes the next sequence number and prunes beyond Keep.
type Rotation struct {
	Dir  string
	Base string
	Keep int // how many entries to retain; <=0 means 3
}

const rotationExt = ".ckpt"

// keep returns the effective retention count.
func (r *Rotation) keep() int {
	if r.Keep <= 0 {
		return 3
	}
	return r.Keep
}

// entries returns the rotation's files sorted by sequence, oldest
// first, with their sequence numbers.
func (r *Rotation) entries() (paths []string, seqs []int, err error) {
	des, err := os.ReadDir(r.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	prefix := r.Base + "-"
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, rotationExt) {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), rotationExt))
		if err != nil || seq < 0 {
			continue
		}
		paths = append(paths, filepath.Join(r.Dir, name))
		seqs = append(seqs, seq)
	}
	sort.Sort(&bySeq{paths, seqs})
	return paths, seqs, nil
}

type bySeq struct {
	paths []string
	seqs  []int
}

func (s *bySeq) Len() int           { return len(s.seqs) }
func (s *bySeq) Less(i, j int) bool { return s.seqs[i] < s.seqs[j] }
func (s *bySeq) Swap(i, j int) {
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
	s.seqs[i], s.seqs[j] = s.seqs[j], s.seqs[i]
}

// Save writes the next checkpoint in the sequence via WriteFileAtomic
// and prunes the oldest entries beyond Keep. It returns the path of the
// new checkpoint.
func (r *Rotation) Save(build func(*Writer) error) (string, error) {
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return "", err
	}
	paths, seqs, err := r.entries()
	if err != nil {
		return "", err
	}
	next := 1
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	path := filepath.Join(r.Dir, fmt.Sprintf("%s-%08d%s", r.Base, next, rotationExt))
	if err := WriteFileAtomic(path, build); err != nil {
		return "", err
	}
	// Prune oldest entries beyond the retention count (the new file
	// makes len(paths)+1 total). Pruning is best-effort.
	for excess := len(paths) + 1 - r.keep(); excess > 0; excess-- {
		os.Remove(paths[0])
		paths = paths[1:]
	}
	return path, nil
}

// Latest returns the newest checkpoint path, or "" if none exist.
func (r *Rotation) Latest() (string, error) {
	paths, _, err := r.entries()
	if err != nil || len(paths) == 0 {
		return "", err
	}
	return paths[len(paths)-1], nil
}

// LoadLatest walks the rotation newest-first, skipping entries that
// fail to decode or that apply rejects with a *CorruptError, and
// returns the path that restored successfully plus the corrupt entries
// it skipped. Non-corruption errors from apply abort immediately.
func (r *Rotation) LoadLatest(apply func(*Snapshot) error) (path string, skipped []error, err error) {
	paths, _, err := r.entries()
	if err != nil {
		return "", nil, err
	}
	for i := len(paths) - 1; i >= 0; i-- {
		snap, err := ReadFile(paths[i])
		if err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				skipped = append(skipped, err)
				continue
			}
			return "", skipped, err
		}
		if err := apply(snap); err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				if ce.Path == "" {
					ce.Path = paths[i]
				}
				skipped = append(skipped, err)
				continue
			}
			return "", skipped, err
		}
		return paths[i], skipped, nil
	}
	if len(skipped) > 0 {
		return "", skipped, fmt.Errorf("checkpoint: all %d rotation entries under %s corrupt (newest: %v)",
			len(skipped), filepath.Join(r.Dir, r.Base), skipped[0])
	}
	return "", nil, fmt.Errorf("checkpoint: no rotation entries under %s", filepath.Join(r.Dir, r.Base))
}

// LoadAny resolves a user-supplied -resume argument: an exact file path
// restores that file; a path with no such file is treated as a rotation
// base (dir + base name) and the newest restorable entry wins, falling
// back past corrupt ones. It returns the path actually restored and the
// corrupt entries skipped along the way.
func LoadAny(path string, apply func(*Snapshot) error) (actual string, skipped []error, err error) {
	if st, err := os.Stat(path); err == nil && !st.IsDir() {
		snap, err := ReadFile(path)
		if err != nil {
			return "", nil, err
		}
		if err := apply(snap); err != nil {
			if ce, ok := err.(*CorruptError); ok && ce.Path == "" {
				ce.Path = path
			}
			return "", nil, err
		}
		return path, nil, nil
	}
	rot := &Rotation{Dir: filepath.Dir(path), Base: strings.TrimSuffix(filepath.Base(path), rotationExt)}
	return rot.LoadLatest(apply)
}
