package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Every codec type round trips bit-exactly through an Enc/Dec pair.
func TestCodecRoundTrip(t *testing.T) {
	var e Enc
	e.U8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xDEADBEEF)
	e.U64(1 << 63)
	e.I64(-42)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.Str("hello, 世界")
	e.Str("")
	e.U64Slice([]uint64{1, 1 << 40, 0})
	e.U64Slice(nil)
	e.I64Slice([]int64{-1, 0, 1 << 50})
	e.U8Slice([]byte{9, 8, 7})

	d := NewDec("codec", 0, e.Bytes())
	if got := d.U8(); got != 0xAB {
		t.Fatalf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<63 {
		t.Fatalf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 inf = %v", got)
	}
	if got := d.Str(); got != "hello, 世界" {
		t.Fatalf("Str = %q", got)
	}
	if got := d.Str(); got != "" {
		t.Fatalf("empty Str = %q", got)
	}
	u := d.U64Slice()
	if len(u) != 3 || u[0] != 1 || u[1] != 1<<40 || u[2] != 0 {
		t.Fatalf("U64Slice = %v", u)
	}
	if got := d.U64Slice(); len(got) != 0 {
		t.Fatalf("nil U64Slice = %v", got)
	}
	i := d.I64Slice()
	if len(i) != 3 || i[0] != -1 || i[2] != 1<<50 {
		t.Fatalf("I64Slice = %v", i)
	}
	b := d.U8Slice()
	if len(b) != 3 || b[0] != 9 {
		t.Fatalf("U8Slice = %v", b)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

// CorruptError reports the section name, file offset, and reason — the
// three things a postmortem needs.
func TestCorruptErrorMessage(t *testing.T) {
	d := NewDec("node0.cache", 4096, nil)
	err := d.Failf("bad tag word %d", 7)
	msg := err.Error()
	for _, want := range []string{"node0.cache", "4096", "bad tag word 7"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	if err.Section != "node0.cache" || err.Offset != 4096 {
		t.Fatalf("fields not populated: %+v", err)
	}
}

// Snapshot.Has distinguishes present sections from absent ones without
// consuming them.
func TestSnapshotHas(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var e Enc
	e.U64(1)
	if err := w.Section("alpha", e.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Has("alpha") {
		t.Fatal("Has(alpha) = false for a present section")
	}
	if snap.Has("omega") {
		t.Fatal("Has(omega) = true for an absent section")
	}
}

// Sequence numbers order the rotation, not filename order: an unpadded
// seq 9 is older than seq 10 even though "…-9" sorts after "…-10".
func TestRotationSequenceOrdering(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, v uint64) {
		t.Helper()
		err := WriteFileAtomic(filepath.Join(dir, name), func(w *Writer) error {
			var e Enc
			e.U64(v)
			return w.Section("v", e.Bytes())
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	write("ck-9.ckpt", 9)
	write("ck-10.ckpt", 10)

	rot := &Rotation{Dir: dir, Base: "ck"}
	latest, err := rot.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != "ck-10.ckpt" {
		t.Fatalf("Latest = %s, want ck-10.ckpt", latest)
	}
	var got uint64
	path, skipped, err := LoadAny(filepath.Join(dir, "ck"), func(s *Snapshot) error {
		d, err := s.Dec("v")
		if err != nil {
			return err
		}
		got = d.U64()
		return d.Err()
	})
	if err != nil || len(skipped) != 0 {
		t.Fatalf("LoadAny: path=%s skipped=%v err=%v", path, skipped, err)
	}
	if got != 10 {
		t.Fatalf("restored seq %d, want 10", got)
	}
}

// LoadAny on an exact path whose bytes are corrupt reports the file
// rather than falling back to a rotation that does not exist.
func TestLoadAnyExactFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "solo.ckpt")
	if err := os.WriteFile(path, []byte("MIESCKPTgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadAny(path, func(*Snapshot) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}
