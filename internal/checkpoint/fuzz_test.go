package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotDecode feeds arbitrary bytes to the container parser:
// every input must either decode cleanly or fail with a *CorruptError.
// Panics and unbounded allocations are the bugs being hunted.
func FuzzSnapshotDecode(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	if err := buildTwoSections(w); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte(Magic))
	f.Add([]byte{})
	for _, cut := range []int{8, 12, 13, len(good) - 4} {
		f.Add(append([]byte(nil), good[:cut]...))
	}
	mut := append([]byte(nil), good...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Decode error is %T (%v), want *CorruptError", err, err)
			}
			return
		}
		// A valid decode must survive field-level reads without panics.
		for _, sec := range snap.Sections() {
			d := NewDec(sec.Name, sec.Offset, sec.Payload)
			for d.Err() == nil && d.Remaining() > 0 {
				_ = d.U8()
			}
		}
	})
}
