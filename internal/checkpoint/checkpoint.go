// Package checkpoint implements the MemorIES snapshot container: a
// versioned, section-framed format that serializes the full emulation
// state (packed cache words, counter banks, RNG cursors) so a crashed
// or interrupted run can resume from its last quiescent point instead
// of repeating the Fig. 8 warm-up.
//
// The container is deliberately dumb: a magic + version header, then a
// sequence of named sections each carrying its own length and CRC-32,
// then a trailer with the section count and a whole-file digest. Every
// consumer of a section owns its payload encoding (via Enc/Dec); the
// container only guarantees that what comes out is byte-identical to
// what went in, or that the failure is reported as a *CorruptError
// naming the section and file offset.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Magic opens every checkpoint file.
const Magic = "MIESCKPT"

// FormatVersion is the container version this build writes. Readers
// reject anything newer; older versions are upgraded in place if the
// format ever changes incompatibly.
const FormatVersion = 1

// maxSectionName bounds section names (they fit a u8 length prefix).
const maxSectionName = 255

// CorruptError reports a checkpoint that cannot be decoded or applied.
// Offset is the byte offset of the failing structure within the file
// (-1 when unknown, e.g. a semantic mismatch detected after framing).
type CorruptError struct {
	Path    string // file path, when known
	Section string // section name, when the failure is section-local
	Offset  int64  // byte offset of the failing frame, -1 if unknown
	Reason  string
}

// Error implements error.
func (e *CorruptError) Error() string {
	s := "checkpoint: corrupt"
	if e.Path != "" {
		s += " " + e.Path
	}
	if e.Section != "" {
		s += fmt.Sprintf(" section %q", e.Section)
	}
	if e.Offset >= 0 {
		s += fmt.Sprintf(" at offset %d", e.Offset)
	}
	return s + ": " + e.Reason
}

// corruptf builds a CorruptError with formatting.
func corruptf(section string, offset int64, format string, args ...any) *CorruptError {
	return &CorruptError{Section: section, Offset: offset, Reason: fmt.Sprintf(format, args...)}
}

// Writer streams a checkpoint: header, then Section calls, then Close
// for the trailer. It keeps a running CRC-32 of everything written so
// the trailer can seal the whole file.
type Writer struct {
	w        io.Writer
	fileCRC  uint32
	sections uint32
	names    map[string]bool
	closed   bool
	err      error
}

// NewWriter writes the header and returns a section writer.
func NewWriter(w io.Writer) (*Writer, error) {
	cw := &Writer{w: w, names: make(map[string]bool)}
	var hdr [12]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	if err := cw.writeCRC(hdr[:]); err != nil {
		return nil, err
	}
	return cw, nil
}

// writeCRC writes b and folds it into the running file digest.
func (w *Writer) writeCRC(b []byte) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return err
	}
	w.fileCRC = crc32.Update(w.fileCRC, crc32.IEEETable, b)
	return nil
}

// Section frames one named payload. Names must be unique within a file
// and non-empty (a zero length byte is the trailer sentinel).
func (w *Writer) Section(name string, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("checkpoint: Section %q after Close", name)
	}
	if name == "" || len(name) > maxSectionName {
		return fmt.Errorf("checkpoint: section name %q length out of range (1..%d)", name, maxSectionName)
	}
	if w.names[name] {
		return fmt.Errorf("checkpoint: duplicate section %q", name)
	}
	w.names[name] = true
	var hdr [1 + maxSectionName + 8 + 4]byte
	hdr[0] = byte(len(name))
	n := 1 + copy(hdr[1:], name)
	binary.LittleEndian.PutUint64(hdr[n:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n+8:], crc32.ChecksumIEEE(payload))
	if err := w.writeCRC(hdr[:n+12]); err != nil {
		return err
	}
	if err := w.writeCRC(payload); err != nil {
		return err
	}
	w.sections++
	return nil
}

// Close writes the trailer: the zero sentinel, the section count, and
// the whole-file CRC (which covers everything before it).
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	var tr [5]byte
	binary.LittleEndian.PutUint32(tr[1:], w.sections)
	if err := w.writeCRC(tr[:]); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], w.fileCRC)
	if _, err := w.w.Write(crc[:]); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Section is one decoded frame of a snapshot.
type Section struct {
	Name    string
	Offset  int64 // byte offset of the section header in the file
	Payload []byte
}

// Snapshot is a fully verified, decoded checkpoint.
type Snapshot struct {
	Version  uint32
	sections []Section
	byName   map[string]*Section
}

// Sections returns the sections in file order.
func (s *Snapshot) Sections() []Section { return s.sections }

// Section returns the named section, or a CorruptError if absent —
// a missing section means the file does not carry the state the caller
// needs, which is a form of corruption from the restorer's view.
func (s *Snapshot) Section(name string) (*Section, error) {
	if sec, ok := s.byName[name]; ok {
		return sec, nil
	}
	return nil, corruptf(name, -1, "section missing")
}

// Has reports whether the named section is present.
func (s *Snapshot) Has(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Dec returns a payload decoder for the named section.
func (s *Snapshot) Dec(name string) (*Dec, error) {
	sec, err := s.Section(name)
	if err != nil {
		return nil, err
	}
	return NewDec(sec.Name, sec.Offset, sec.Payload), nil
}

// Decode parses and verifies a whole checkpoint image. Every framing
// or digest failure is a *CorruptError carrying the byte offset of the
// failing structure.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < 12 {
		return nil, corruptf("", 0, "file too short (%d bytes) for header", len(b))
	}
	if string(b[:8]) != Magic {
		return nil, corruptf("", 0, "bad magic %q", string(b[:8]))
	}
	version := binary.LittleEndian.Uint32(b[8:])
	if version == 0 || version > FormatVersion {
		return nil, corruptf("", 8, "unsupported format version %d (this build reads <= %d)", version, FormatVersion)
	}
	snap := &Snapshot{Version: version, byName: make(map[string]*Section)}
	off := int64(12)
	for {
		if off >= int64(len(b)) {
			return nil, corruptf("", off, "truncated: no trailer")
		}
		nameLen := int(b[off])
		if nameLen == 0 {
			break // trailer sentinel
		}
		secOff := off
		if off+1+int64(nameLen)+12 > int64(len(b)) {
			return nil, corruptf("", secOff, "truncated section header")
		}
		name := string(b[off+1 : off+1+int64(nameLen)])
		off += 1 + int64(nameLen)
		payloadLen := binary.LittleEndian.Uint64(b[off:])
		crc := binary.LittleEndian.Uint32(b[off+8:])
		off += 12
		if payloadLen > uint64(int64(len(b))-off) {
			return nil, corruptf(name, secOff, "payload length %d exceeds remaining file (%d bytes)", payloadLen, int64(len(b))-off)
		}
		payload := b[off : off+int64(payloadLen)]
		off += int64(payloadLen)
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, corruptf(name, secOff, "payload CRC mismatch: stored %08x, computed %08x", crc, got)
		}
		if _, dup := snap.byName[name]; dup {
			return nil, corruptf(name, secOff, "duplicate section")
		}
		snap.sections = append(snap.sections, Section{Name: name, Offset: secOff, Payload: payload})
		snap.byName[name] = &snap.sections[len(snap.sections)-1]
	}
	// Trailer: sentinel already consumed-checked; need count + file CRC.
	if off+9 > int64(len(b)) {
		return nil, corruptf("", off, "truncated trailer")
	}
	count := binary.LittleEndian.Uint32(b[off+1:])
	if count != uint32(len(snap.sections)) {
		return nil, corruptf("", off, "trailer section count %d != %d sections read", count, len(snap.sections))
	}
	fileCRC := binary.LittleEndian.Uint32(b[off+5:])
	if got := crc32.ChecksumIEEE(b[:off+5]); got != fileCRC {
		return nil, corruptf("", off+5, "file CRC mismatch: stored %08x, computed %08x", fileCRC, got)
	}
	if off+9 != int64(len(b)) {
		return nil, corruptf("", off+9, "%d trailing bytes after trailer", int64(len(b))-(off+9))
	}
	return snap, nil
}

// ReadFile loads and verifies a checkpoint file. CorruptErrors carry
// the path.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(b)
	if err != nil {
		if ce, ok := err.(*CorruptError); ok {
			ce.Path = path
		}
		return nil, err
	}
	return snap, nil
}

// WriteFileAtomic writes a checkpoint crash-safely: the sections are
// built into a temp file in the target directory, synced to stable
// storage, and renamed over the destination. A crash at any point
// leaves either the old file or the new one, never a torn mix.
func WriteFileAtomic(path string, build func(*Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w, err := NewWriter(f)
	if err != nil {
		return err
	}
	if err := build(w); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	tmp = "" // renamed; nothing to clean up
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss. Best
// effort: some filesystems (and platforms) reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
