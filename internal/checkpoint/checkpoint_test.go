package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildTwoSections writes a representative two-section checkpoint.
func buildTwoSections(w *Writer) error {
	var e Enc
	e.U64(0xdeadbeef)
	e.Str("hello")
	e.I64Slice([]int64{-1, 0, 7})
	if err := w.Section("alpha", e.Bytes()); err != nil {
		return err
	}
	var e2 Enc
	e2.Bool(true)
	e2.F64(3.25)
	e2.U8Slice([]byte{1, 2, 3})
	return w.Section("beta", e2.Bytes())
}

func encodeTwoSections(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := buildTwoSections(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	snap, err := Decode(encodeTwoSections(t))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != FormatVersion {
		t.Fatalf("version = %d, want %d", snap.Version, FormatVersion)
	}
	if len(snap.Sections()) != 2 {
		t.Fatalf("sections = %d, want 2", len(snap.Sections()))
	}
	d, err := snap.Dec("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.U64(); got != 0xdeadbeef {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	sl := d.I64Slice()
	if len(sl) != 3 || sl[0] != -1 || sl[2] != 7 {
		t.Errorf("I64Slice = %v", sl)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := snap.Dec("beta")
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Bool() || d2.F64() != 3.25 {
		t.Error("beta fields mismatch")
	}
	if got := d2.U8Slice(); len(got) != 3 || got[1] != 2 {
		t.Errorf("U8Slice = %v", got)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingSection(t *testing.T) {
	snap, err := Decode(encodeTwoSections(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = snap.Section("gamma")
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "gamma" {
		t.Fatalf("missing section: err = %v", err)
	}
}

// TestCorruptSectionReported flips a payload byte and requires the
// error to name the section and its file offset.
func TestCorruptSectionReported(t *testing.T) {
	b := encodeTwoSections(t)
	good, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := good.Section("beta")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside beta's payload: beta's frame starts at
	// beta.Offset; the payload begins after nameLen(1)+name+len(8)+crc(4).
	mut := append([]byte(nil), b...)
	payloadStart := beta.Offset + 1 + int64(len("beta")) + 12
	mut[payloadStart] ^= 0xff
	_, err = Decode(mut)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Section != "beta" {
		t.Errorf("Section = %q, want beta", ce.Section)
	}
	if ce.Offset != beta.Offset {
		t.Errorf("Offset = %d, want %d", ce.Offset, beta.Offset)
	}
	if !strings.Contains(ce.Reason, "CRC") {
		t.Errorf("Reason = %q, want CRC mismatch", ce.Reason)
	}
}

func TestTruncation(t *testing.T) {
	b := encodeTwoSections(t)
	for _, cut := range []int{0, 5, 12, len(b) / 2, len(b) - 1} {
		_, err := Decode(b[:cut])
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("Decode(b[:%d]) err = %v, want *CorruptError", cut, err)
		}
	}
	// Trailing garbage is also corruption.
	_, err := Decode(append(append([]byte(nil), b...), 0x55))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Errorf("trailing byte: err = %v, want *CorruptError", err)
	}
}

func TestUnsupportedVersion(t *testing.T) {
	b := encodeTwoSections(t)
	mut := append([]byte(nil), b...)
	mut[8] = 0x99
	_, err := Decode(mut)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "version") {
		t.Fatalf("err = %v, want version CorruptError", err)
	}
}

func TestWriterRejectsDuplicates(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section("x", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("x", nil); err == nil {
		t.Fatal("duplicate section accepted")
	}
	if err := w.Section("", nil); err == nil {
		t.Fatal("empty section name accepted")
	}
}

func TestDecStickyErrors(t *testing.T) {
	d := NewDec("s", 0, []byte{1, 2})
	_ = d.U64() // past end: latches
	if d.Err() == nil {
		t.Fatal("no error after reading past end")
	}
	// Subsequent reads stay zero without panicking.
	if d.U32() != 0 || d.Str() != "" || d.U64Slice() != nil {
		t.Error("accessor returned non-zero after latched error")
	}
	// Oversized slice length must not allocate.
	var e Enc
	e.U32(1 << 30)
	d2 := NewDec("s", 0, e.Bytes())
	if got := d2.U64Slice(); got != nil || d2.Err() == nil {
		t.Errorf("oversized slice: got %v, err %v", got, d2.Err())
	}
	// Unread bytes at Close are corruption.
	d3 := NewDec("s", 0, []byte{1, 2, 3})
	d3.U8()
	if d3.Close() == nil {
		t.Error("Close accepted unread bytes")
	}
}

// TestWriteFileAtomicPreservesOld crashes the build mid-way and checks
// the previous checkpoint survives untouched.
func TestWriteFileAtomicPreservesOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := WriteFileAtomic(path, buildTwoSections); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = WriteFileAtomic(path, func(w *Writer) error {
		_ = w.Section("partial", []byte("junk"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, now) {
		t.Fatal("failed write clobbered the previous checkpoint")
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 1 {
		t.Fatalf("temp file left behind: %v", des)
	}
}

func TestRotationSavePrune(t *testing.T) {
	rot := &Rotation{Dir: t.TempDir(), Base: "board", Keep: 2}
	var paths []string
	for i := 0; i < 4; i++ {
		p, err := rot.Save(buildTwoSections)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// Only the newest 2 remain.
	for i, p := range paths {
		_, err := os.Stat(p)
		if i < 2 && err == nil {
			t.Errorf("old entry %s not pruned", p)
		}
		if i >= 2 && err != nil {
			t.Errorf("entry %s missing: %v", p, err)
		}
	}
	latest, err := rot.Latest()
	if err != nil || latest != paths[3] {
		t.Fatalf("Latest = %q, %v; want %q", latest, err, paths[3])
	}
}

// TestRotationFallback corrupts the newest entry and requires
// LoadLatest to fall back to the previous one, reporting the skip.
func TestRotationFallback(t *testing.T) {
	rot := &Rotation{Dir: t.TempDir(), Base: "board", Keep: 3}
	if _, err := rot.Save(buildTwoSections); err != nil {
		t.Fatal(err)
	}
	newest, err := rot.Save(buildTwoSections)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest file's mid-section bytes.
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var applied int
	path, skipped, err := rot.LoadLatest(func(s *Snapshot) error {
		applied++
		_, err := s.Section("alpha")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if path == newest {
		t.Fatal("restored the corrupt newest entry")
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped = %v, want 1 entry", skipped)
	}
	var ce *CorruptError
	if !errors.As(skipped[0], &ce) || ce.Path != newest {
		t.Errorf("skipped[0] = %v, want CorruptError for %s", skipped[0], newest)
	}
	if applied != 1 {
		t.Errorf("apply ran %d times, want 1", applied)
	}
}

// TestRotationFallbackOnApplyReject: an entry that decodes but fails a
// semantic check (wrong fingerprint) also falls back.
func TestRotationFallbackOnApplyReject(t *testing.T) {
	rot := &Rotation{Dir: t.TempDir(), Base: "board"}
	if _, err := rot.Save(buildTwoSections); err != nil {
		t.Fatal(err)
	}
	if _, err := rot.Save(buildTwoSections); err != nil {
		t.Fatal(err)
	}
	first := true
	path, skipped, err := rot.LoadLatest(func(s *Snapshot) error {
		if first {
			first = false
			return corruptf("meta", -1, "config fingerprint mismatch")
		}
		return nil
	})
	if err != nil || len(skipped) != 1 {
		t.Fatalf("path=%q skipped=%v err=%v", path, skipped, err)
	}
}

func TestLoadAny(t *testing.T) {
	dir := t.TempDir()
	exact := filepath.Join(dir, "one.ckpt")
	if err := WriteFileAtomic(exact, buildTwoSections); err != nil {
		t.Fatal(err)
	}
	actual, skipped, err := LoadAny(exact, func(*Snapshot) error { return nil })
	if err != nil || actual != exact || len(skipped) != 0 {
		t.Fatalf("exact: actual=%q skipped=%v err=%v", actual, skipped, err)
	}
	// Rotation-base fallback: no file named "board", but board-*.ckpt.
	rot := &Rotation{Dir: dir, Base: "board"}
	p, err := rot.Save(buildTwoSections)
	if err != nil {
		t.Fatal(err)
	}
	actual, _, err = LoadAny(filepath.Join(dir, "board"), func(*Snapshot) error { return nil })
	if err != nil || actual != p {
		t.Fatalf("rotation: actual=%q err=%v, want %q", actual, err, p)
	}
	if _, _, err := LoadAny(filepath.Join(dir, "absent"), func(*Snapshot) error { return nil }); err == nil {
		t.Fatal("absent path restored")
	}
}
