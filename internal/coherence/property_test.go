package coherence

import (
	"math/rand"
	"testing"
)

// randomTable builds an arbitrary fully-populated (not necessarily
// semantically sane) protocol table from a seed.
func randomTable(seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{Name: "fuzz"}
	actions := []Action{
		0, ActAllocate | ActFetchMemory, ActAllocate | ActFetchIntervention,
		ActInvalidateOthers, ActWriteback, ActRespondShared, ActRespondModified,
		ActAllocate | ActFetchMemory | ActInvalidateOthers,
	}
	for op := 0; op < NumOps; op++ {
		for st := 0; st < NumStates; st++ {
			for sn := 0; sn < NumSnoopIns; sn++ {
				t.Set(Op(op), State(st), SnoopIn(sn),
					State(rng.Intn(NumStates)), actions[rng.Intn(len(actions))])
			}
		}
	}
	return t
}

// TestMapFileRoundTripRandomTables: serialize -> parse must be the
// identity for arbitrary tables, not just the shipped protocols.
func TestMapFileRoundTripRandomTables(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		orig := randomTable(seed)
		text, err := MapFileString(orig)
		if err != nil {
			t.Fatalf("seed %d: serialize: %v", seed, err)
		}
		parsed, err := ParseMapFileString(text)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !tablesEqual(orig, parsed) {
			t.Fatalf("seed %d: round trip changed the table", seed)
		}
	}
}

// TestValidateNeverPanics: Validate must reject or accept arbitrary
// tables without panicking, and MustLookup never panics on a validated
// table.
func TestValidateNeverPanics(t *testing.T) {
	valid := 0
	for seed := int64(0); seed < 200; seed++ {
		tab := randomTable(seed)
		if err := tab.Validate(); err != nil {
			continue
		}
		valid++
		for op := 0; op < NumOps; op++ {
			for st := 0; st < NumStates; st++ {
				for sn := 0; sn < NumSnoopIns; sn++ {
					tab.MustLookup(Op(op), State(st), SnoopIn(sn))
				}
			}
		}
	}
	t.Logf("%d of 200 random tables validated clean", valid)
}

// TestStatesReachabilityStopsAtInvalidOnlyTable: a table whose every
// transition stays Invalid uses exactly one state.
func TestStatesReachabilityStopsAtInvalidOnlyTable(t *testing.T) {
	tab := &Table{Name: "inert"}
	for op := 0; op < NumOps; op++ {
		for st := 0; st < NumStates; st++ {
			tab.SetAllSnoops(Op(op), State(st), Invalid, 0)
		}
	}
	states := tab.States()
	if len(states) != 1 || states[0] != Invalid {
		t.Fatalf("States() = %v", states)
	}
}
