package coherence

import (
	"strings"
	"testing"
)

func TestStateRoundTrip(t *testing.T) {
	for s := State(0); int(s) < NumStates; s++ {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("ParseState(%q) = %v,%v", s.String(), got, err)
		}
	}
	if _, err := ParseState("Q"); err == nil {
		t.Error("ParseState accepted unknown state")
	}
}

func TestOpRoundTrip(t *testing.T) {
	for o := Op(0); int(o) < NumOps; o++ {
		got, err := ParseOp(o.String())
		if err != nil || got != o {
			t.Errorf("ParseOp(%q) = %v,%v", o.String(), got, err)
		}
	}
	if !LocalRead.IsLocal() || !LocalCastout.IsLocal() {
		t.Error("local ops misclassified")
	}
	if SnoopRead.IsLocal() || SnoopCastout.IsLocal() {
		t.Error("snoop ops misclassified")
	}
}

func TestSnoopInRoundTrip(t *testing.T) {
	for s := SnoopIn(0); int(s) < NumSnoopIns; s++ {
		got, err := ParseSnoopIn(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSnoopIn(%q) = %v,%v", s.String(), got, err)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	if Invalid.IsValid() {
		t.Error("Invalid.IsValid")
	}
	for _, s := range []State{Shared, Exclusive, Modified, Owned} {
		if !s.IsValid() {
			t.Errorf("%v.IsValid = false", s)
		}
	}
	if !Modified.IsDirty() || !Owned.IsDirty() {
		t.Error("dirty states misclassified")
	}
	if Shared.IsDirty() || Exclusive.IsDirty() || Invalid.IsDirty() {
		t.Error("clean states misclassified")
	}
}

func TestActionStringAndParse(t *testing.T) {
	a := ActAllocate | ActFetchMemory
	s := a.String()
	if !strings.Contains(s, "allocate") || !strings.Contains(s, "fetch-memory") {
		t.Fatalf("Action.String = %q", s)
	}
	if Action(0).String() != "-" {
		t.Fatal("empty action should render as '-'")
	}
	got, err := ParseAction("invalidate-others")
	if err != nil || got != ActInvalidateOthers {
		t.Fatalf("ParseAction = %v,%v", got, err)
	}
	if _, err := ParseAction("explode"); err == nil {
		t.Fatal("ParseAction accepted unknown action")
	}
}

func TestBuiltinsValidate(t *testing.T) {
	for _, name := range []string{"msi", "mesi", "moesi"} {
		tab := Builtin(name)
		if tab == nil {
			t.Fatalf("Builtin(%q) = nil", name)
		}
		if err := tab.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if Builtin("nope") != nil {
		t.Error("Builtin accepted unknown name")
	}
}

func TestBuiltinStateSets(t *testing.T) {
	cases := []struct {
		tab  *Table
		want []State
	}{
		{MSI(), []State{Invalid, Shared, Modified}},
		{MESI(), []State{Invalid, Shared, Exclusive, Modified}},
		{MOESI(), []State{Invalid, Shared, Exclusive, Modified, Owned}},
	}
	for _, c := range cases {
		got := c.tab.States()
		if len(got) != len(c.want) {
			t.Errorf("%s uses states %v, want %v", c.tab.Name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s uses states %v, want %v", c.tab.Name, got, c.want)
				break
			}
		}
	}
}

func TestMESIKeyTransitions(t *testing.T) {
	tab := MESI()
	cases := []struct {
		op       Op
		cur      State
		snoop    SnoopIn
		wantNext State
		wantActs Action
	}{
		{LocalRead, Invalid, SnoopNone, Exclusive, ActAllocate | ActFetchMemory},
		{LocalRead, Invalid, SnoopShared, Shared, ActAllocate | ActFetchMemory},
		{LocalRead, Invalid, SnoopModified, Shared, ActAllocate | ActFetchIntervention},
		{LocalWrite, Shared, SnoopNone, Modified, ActInvalidateOthers},
		{LocalWrite, Exclusive, SnoopNone, Modified, 0},
		{SnoopRead, Modified, SnoopNone, Shared, ActRespondModified | ActWriteback},
		{SnoopWrite, Shared, SnoopNone, Invalid, 0},
		{SnoopWrite, Modified, SnoopNone, Invalid, ActRespondModified},
	}
	for _, c := range cases {
		e := tab.MustLookup(c.op, c.cur, c.snoop)
		if e.Next != c.wantNext || e.Actions != c.wantActs {
			t.Errorf("%s/%s/%s -> (%s,%s), want (%s,%s)",
				c.op, c.cur, c.snoop, e.Next, e.Actions, c.wantNext, c.wantActs)
		}
	}
}

func TestMSIReadsAllocateShared(t *testing.T) {
	e := MSI().MustLookup(LocalRead, Invalid, SnoopNone)
	if e.Next != Shared {
		t.Fatalf("MSI read-miss allocates %v, want S", e.Next)
	}
}

func TestMOESIKeepsDirtyDataOnSnoopRead(t *testing.T) {
	tab := MOESI()
	e := tab.MustLookup(SnoopRead, Modified, SnoopNone)
	if e.Next != Owned {
		t.Fatalf("MOESI M snoop-read -> %v, want O", e.Next)
	}
	if e.Actions.Has(ActWriteback) {
		t.Fatal("MOESI must not write back on snoop-read")
	}
	if !e.Actions.Has(ActRespondModified) {
		t.Fatal("MOESI owner must intervene")
	}
}

func TestMustLookupPanicsOnUndefined(t *testing.T) {
	tab := &Table{Name: "empty"}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on empty table did not panic")
		}
	}()
	tab.MustLookup(LocalRead, Invalid, SnoopNone)
}

func TestValidateCatchesMissingTransition(t *testing.T) {
	tab := MESI()
	tab.Name = "broken"
	// Knock out one entry by rebuilding a partial table.
	partial := &Table{Name: "partial"}
	partial.Set(LocalRead, Invalid, SnoopNone, Shared, ActAllocate|ActFetchMemory)
	if err := partial.Validate(); err == nil {
		t.Fatal("Validate accepted a table with holes")
	}
	_ = tab
}

func TestValidateCatchesSnoopWriteKeepingLine(t *testing.T) {
	tab := MESI()
	tab.Name = "bad-snoop-write"
	tab.SetAllSnoops(SnoopWrite, Shared, Shared, 0) // illegal: must invalidate
	if err := tab.Validate(); err == nil {
		t.Fatal("Validate accepted snoop-write that keeps the line")
	} else if !strings.Contains(err.Error(), "snoop-write") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateCatchesAllocationWithoutSource(t *testing.T) {
	tab := MESI()
	tab.Name = "bad-alloc"
	tab.Set(LocalRead, Invalid, SnoopNone, Exclusive, ActAllocate) // no data source
	if err := tab.Validate(); err == nil {
		t.Fatal("Validate accepted allocation without data source")
	}
}

func TestValidateCatchesHiddenDirtyOwner(t *testing.T) {
	tab := MESI()
	tab.Name = "hidden-owner"
	tab.SetAllSnoops(SnoopRead, Modified, Shared, 0) // silent downgrade
	if err := tab.Validate(); err == nil {
		t.Fatal("Validate accepted silent dirty downgrade")
	}
}

func TestValidateIgnoresUnusedStates(t *testing.T) {
	// MSI never reaches E or O; Validate must not demand transitions for
	// them.
	if err := MSI().Validate(); err != nil {
		t.Fatalf("MSI validation failed on unused states: %v", err)
	}
}
