// Package coherence implements MemorIES's programmable cache-coherence
// engine. Paper §3.2: "The cache state transitions are modeled as a lookup
// table which consists of the type of memory operation, the current state
// of the cache entry, and the resulting state from other cache nodes. The
// table lookup map file is loaded into each cache node controller FPGA
// during the initialization phase."
//
// A Table maps (operation, current line state, snoop result from the other
// caches) to a next state plus an action set. Tables are data: they can be
// built programmatically (MSI, MESI, MOESI constructors), written to and
// parsed from a textual map-file format, and different tables can be
// loaded into different node controllers in the same run — exactly the
// experiment §3.2 describes.
package coherence

import (
	"fmt"
	"sort"
	"strings"
)

// State is a cache-line coherence state. Invalid must be zero so that it
// coincides with cache.StateInvalid.
type State uint8

const (
	// Invalid: no copy present.
	Invalid State = iota
	// Shared: clean copy, other caches may hold it too.
	Shared
	// Exclusive: clean copy, no other cache holds it.
	Exclusive
	// Modified: dirty copy, sole owner.
	Modified
	// Owned: dirty copy, but other caches may hold shared copies; this
	// cache is responsible for the write-back (MOESI only).
	Owned

	// NumStates is the number of coherence states.
	NumStates = int(Owned) + 1
)

var stateNames = [NumStates]string{"I", "S", "E", "M", "O"}

// String returns the single-letter state mnemonic.
func (s State) String() string {
	if int(s) < NumStates {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ParseState parses a single-letter state mnemonic.
func ParseState(t string) (State, error) {
	for i, n := range stateNames {
		if strings.EqualFold(t, n) {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("coherence: unknown state %q", t)
}

// IsDirty reports whether the state obliges this cache to supply or write
// back the data.
func (s State) IsDirty() bool { return s == Modified || s == Owned }

// IsValid reports whether a line in this state is present.
func (s State) IsValid() bool { return s != Invalid }

// Op is the class of memory operation presented to the protocol table.
// Local ops come from processors belonging to this emulated node; snoop
// ops are observed from other nodes (or other emulated caches).
type Op uint8

const (
	// LocalRead: a processor of this node issued a cacheable read.
	LocalRead Op = iota
	// LocalWrite: a processor of this node issued RWITM or DClaim.
	LocalWrite
	// LocalCastout: a processor of this node cast out a modified line;
	// the emulated shared cache absorbs it.
	LocalCastout
	// SnoopRead: a processor of a different node read the line.
	SnoopRead
	// SnoopWrite: a processor of a different node claimed the line.
	SnoopWrite
	// SnoopCastout: a different node cast out the line (visible on the
	// shared bus; usually a no-op for this cache).
	SnoopCastout

	// NumOps is the number of operation classes.
	NumOps = int(SnoopCastout) + 1
)

var opNames = [NumOps]string{
	"read", "write", "castout", "snoop-read", "snoop-write", "snoop-castout",
}

// String returns the map-file mnemonic for the op.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp parses a map-file op mnemonic.
func ParseOp(t string) (Op, error) {
	for i, n := range opNames {
		if strings.EqualFold(t, n) {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("coherence: unknown op %q", t)
}

// IsLocal reports whether the op originates from this node's processors.
func (o Op) IsLocal() bool { return o <= LocalCastout }

// SnoopIn is "the resulting state from other cache nodes" — the combined
// snoop outcome the requesting controller sees from its peers.
type SnoopIn uint8

const (
	// SnoopNone: no other cache holds the line.
	SnoopNone SnoopIn = iota
	// SnoopShared: at least one other cache holds a clean copy.
	SnoopShared
	// SnoopModified: another cache owns the line dirty and intervenes.
	SnoopModified

	// NumSnoopIns is the number of snoop-input classes.
	NumSnoopIns = int(SnoopModified) + 1
)

var snoopNames = [NumSnoopIns]string{"none", "shared", "modified"}

// String returns the map-file mnemonic.
func (s SnoopIn) String() string {
	if int(s) < NumSnoopIns {
		return snoopNames[s]
	}
	return fmt.Sprintf("snoop(%d)", uint8(s))
}

// ParseSnoopIn parses a map-file snoop mnemonic.
func ParseSnoopIn(t string) (SnoopIn, error) {
	for i, n := range snoopNames {
		if strings.EqualFold(t, n) {
			return SnoopIn(i), nil
		}
	}
	return 0, fmt.Errorf("coherence: unknown snoop input %q", t)
}

// Action is a bit set of side effects a transition requests from the node
// controller.
type Action uint16

const (
	// ActAllocate: install the line in the cache (on miss).
	ActAllocate Action = 1 << iota
	// ActFetchMemory: data comes from memory.
	ActFetchMemory
	// ActFetchIntervention: data comes from a peer cache (cache-to-cache
	// transfer; Figure 12's mod-int / shr-int events).
	ActFetchIntervention
	// ActInvalidateOthers: peers must drop their copies.
	ActInvalidateOthers
	// ActWriteback: this cache must write dirty data back to memory
	// (downgrade or replacement).
	ActWriteback
	// ActRespondShared: snoop side — answer "shared" on the bus.
	ActRespondShared
	// ActRespondModified: snoop side — answer "modified" and supply data.
	ActRespondModified
)

var actionNames = []struct {
	bit  Action
	name string
}{
	{ActAllocate, "allocate"},
	{ActFetchMemory, "fetch-memory"},
	{ActFetchIntervention, "fetch-intervention"},
	{ActInvalidateOthers, "invalidate-others"},
	{ActWriteback, "writeback"},
	{ActRespondShared, "respond-shared"},
	{ActRespondModified, "respond-modified"},
}

// Has reports whether all bits in a are set.
func (a Action) Has(bits Action) bool { return a&bits == bits }

// String renders the action set as space-separated mnemonics, "-" if empty.
func (a Action) String() string {
	if a == 0 {
		return "-"
	}
	var parts []string
	for _, an := range actionNames {
		if a.Has(an.bit) {
			parts = append(parts, an.name)
		}
	}
	return strings.Join(parts, " ")
}

// ParseAction parses a single action mnemonic.
func ParseAction(t string) (Action, error) {
	for _, an := range actionNames {
		if strings.EqualFold(t, an.name) {
			return an.bit, nil
		}
	}
	return 0, fmt.Errorf("coherence: unknown action %q", t)
}

// Entry is one transition: the next state and the actions to perform.
type Entry struct {
	Next    State
	Actions Action
	defined bool
}

// Table is a complete protocol lookup table. Index with Lookup; the zero
// value is an empty table to be populated with Set or by the parser.
type Table struct {
	// Name identifies the protocol ("mesi", "mosi", custom names from map
	// files).
	Name    string
	entries [NumOps][NumStates][NumSnoopIns]Entry

	// Rule provenance, recorded only by the map-file parser so Compile
	// can distinguish a legal wildcard-then-refine sequence from two
	// rules that genuinely disagree. Programmatic Set calls leave it
	// zero: last-wins, never ambiguous.
	prov  [NumOps][NumStates][NumSnoopIns]ruleProv
	ambig []ambiguity
}

// ruleProv records which kind of map-file rule last wrote a cell.
type ruleProv struct {
	level uint8 // 0 = programmatic/none, 1 = '*' wildcard, 2 = exact snoop
	line  int32
}

// ambiguity records a conflict between two parsed rules of equal or
// inverted specificity claiming the same cell with different entries.
type ambiguity struct {
	op             Op
	st             State
	sn             SnoopIn
	line, prevLine int32
}

// applyParsed installs a parsed rule (snoopIdx < 0 means the '*'
// wildcard), tracking provenance. A more specific rule overriding a
// less specific one is the documented refinement idiom; an equally or
// less specific rule that changes an existing cell is recorded as an
// ambiguity for Compile to reject. Restating an identical entry is
// always legal.
func (t *Table) applyParsed(op Op, st State, snoopIdx int, next State, actions Action, line int) {
	level, lo, hi := uint8(2), snoopIdx, snoopIdx+1
	if snoopIdx < 0 {
		level, lo, hi = 1, 0, NumSnoopIns
	}
	for sn := lo; sn < hi; sn++ {
		e := Entry{Next: next, Actions: actions, defined: true}
		old := t.prov[op][st][sn]
		if old.level != 0 && level <= old.level && t.entries[op][st][sn] != e &&
			len(t.ambig) < 16 {
			t.ambig = append(t.ambig, ambiguity{
				op: op, st: st, sn: SnoopIn(sn),
				line: int32(line), prevLine: old.line,
			})
		}
		t.entries[op][st][sn] = e
		t.prov[op][st][sn] = ruleProv{level: level, line: int32(line)}
	}
}

// Set defines the transition for (op, cur, snoop).
func (t *Table) Set(op Op, cur State, snoop SnoopIn, next State, actions Action) {
	t.entries[op][cur][snoop] = Entry{Next: next, Actions: actions, defined: true}
}

// SetAllSnoops defines the same transition for every snoop input; most
// snoop-side and hit transitions do not depend on it.
func (t *Table) SetAllSnoops(op Op, cur State, next State, actions Action) {
	for s := 0; s < NumSnoopIns; s++ {
		t.Set(op, cur, SnoopIn(s), next, actions)
	}
}

// Lookup returns the transition for (op, cur, snoop) and whether it is
// defined.
func (t *Table) Lookup(op Op, cur State, snoop SnoopIn) (Entry, bool) {
	e := t.entries[op][cur][snoop]
	return e, e.defined
}

// MustLookup is Lookup that panics on undefined transitions; controllers
// call it only after Validate has passed.
func (t *Table) MustLookup(op Op, cur State, snoop SnoopIn) Entry {
	e, ok := t.Lookup(op, cur, snoop)
	if !ok {
		panic(fmt.Sprintf("coherence: undefined transition %s/%s/%s in protocol %s", op, cur, snoop, t.Name))
	}
	return e
}

// States returns the set of states reachable from Invalid under the table,
// i.e. the states the protocol actually uses.
func (t *Table) States() []State {
	seen := [NumStates]bool{}
	seen[Invalid] = true
	changed := true
	for changed {
		changed = false
		for op := 0; op < NumOps; op++ {
			for st := 0; st < NumStates; st++ {
				if !seen[st] {
					continue
				}
				for sn := 0; sn < NumSnoopIns; sn++ {
					e := t.entries[op][st][sn]
					if e.defined && !seen[e.Next] {
						seen[e.Next] = true
						changed = true
					}
				}
			}
		}
	}
	var out []State
	for st := 0; st < NumStates; st++ {
		if seen[st] {
			out = append(out, State(st))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the table for structural soundness; every failure is
// a typed *CompileError:
//
//   - every (op, state, snoop) reachable combination is defined for states
//     the protocol uses (ErrMissingTransition);
//   - a snoop-write always leaves the line Invalid — another cache claimed
//     exclusive ownership (ErrSnoopWriteKeepsCopy);
//   - a local op on an Invalid line that allocates fetches data from
//     somewhere, memory or intervention (ErrNoDataSource);
//   - transitions from Invalid without ActAllocate stay Invalid
//     (ErrLeavesInvalid);
//   - dirty states answer snoop-reads with respond-modified or a
//     writeback — ownership must be visible (ErrHiddenDirty).
//
// Compile enforces a stricter superset (adding ambiguity and
// unreachable-state rejection) and is what node controllers run before
// loading a table; Check additionally model-checks the protocol's
// reachable state space.
func (t *Table) Validate() error {
	used := map[State]bool{}
	for _, s := range t.States() {
		used[s] = true
	}
	for op := 0; op < NumOps; op++ {
		for st := 0; st < NumStates; st++ {
			if !used[State(st)] {
				continue
			}
			for sn := 0; sn < NumSnoopIns; sn++ {
				e := t.entries[op][st][sn]
				if !e.defined {
					return &CompileError{
						Protocol: t.Name, Kind: ErrMissingTransition,
						Op: Op(op), State: State(st), Snoop: SnoopIn(sn), HasCell: true,
					}
				}
				if err := t.lintCell(Op(op), State(st), SnoopIn(sn), e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
