package coherence

// Built-in protocol tables. These are the tables shipped with the board's
// console software; experiments that need a custom protocol write a map
// file instead (see mapfile.go).

// MESI returns the standard four-state invalidation protocol used by the
// emulated shared caches by default.
func MESI() *Table {
	t := &Table{Name: "mesi"}

	// Local read.
	t.Set(LocalRead, Invalid, SnoopNone, Exclusive, ActAllocate|ActFetchMemory)
	t.Set(LocalRead, Invalid, SnoopShared, Shared, ActAllocate|ActFetchMemory)
	t.Set(LocalRead, Invalid, SnoopModified, Shared, ActAllocate|ActFetchIntervention)
	t.SetAllSnoops(LocalRead, Shared, Shared, 0)
	t.SetAllSnoops(LocalRead, Exclusive, Exclusive, 0)
	t.SetAllSnoops(LocalRead, Modified, Modified, 0)

	// Local write (RWITM on miss, DClaim on shared hit).
	t.Set(LocalWrite, Invalid, SnoopNone, Modified, ActAllocate|ActFetchMemory|ActInvalidateOthers)
	t.Set(LocalWrite, Invalid, SnoopShared, Modified, ActAllocate|ActFetchMemory|ActInvalidateOthers)
	t.Set(LocalWrite, Invalid, SnoopModified, Modified, ActAllocate|ActFetchIntervention|ActInvalidateOthers)
	t.SetAllSnoops(LocalWrite, Shared, Modified, ActInvalidateOthers)
	t.SetAllSnoops(LocalWrite, Exclusive, Modified, 0)
	t.SetAllSnoops(LocalWrite, Modified, Modified, 0)

	// Local castout: the L2 below pushed a dirty line into this cache.
	t.SetAllSnoops(LocalCastout, Invalid, Modified, ActAllocate)
	t.SetAllSnoops(LocalCastout, Shared, Modified, 0)
	t.SetAllSnoops(LocalCastout, Exclusive, Modified, 0)
	t.SetAllSnoops(LocalCastout, Modified, Modified, 0)

	// Snoop read from another node.
	t.SetAllSnoops(SnoopRead, Invalid, Invalid, 0)
	t.SetAllSnoops(SnoopRead, Shared, Shared, ActRespondShared)
	t.SetAllSnoops(SnoopRead, Exclusive, Shared, ActRespondShared)
	t.SetAllSnoops(SnoopRead, Modified, Shared, ActRespondModified|ActWriteback)

	// Snoop write from another node.
	t.SetAllSnoops(SnoopWrite, Invalid, Invalid, 0)
	t.SetAllSnoops(SnoopWrite, Shared, Invalid, 0)
	t.SetAllSnoops(SnoopWrite, Exclusive, Invalid, 0)
	t.SetAllSnoops(SnoopWrite, Modified, Invalid, ActRespondModified)

	// Snoop castout: another node wrote a line back; no state change
	// here. Only MESI's own four states get rows — Owned is not part of
	// this protocol and the compiler rejects rules for unreachable
	// states.
	for _, st := range []State{Invalid, Shared, Exclusive, Modified} {
		t.SetAllSnoops(SnoopCastout, st, st, 0)
	}
	return t
}

// MSI returns the three-state protocol: reads always allocate Shared, so
// a first write to private data costs an extra upgrade. The MESI-vs-MSI
// comparison is a natural use of the board's per-node protocol loading.
func MSI() *Table {
	t := &Table{Name: "msi"}

	t.Set(LocalRead, Invalid, SnoopNone, Shared, ActAllocate|ActFetchMemory)
	t.Set(LocalRead, Invalid, SnoopShared, Shared, ActAllocate|ActFetchMemory)
	t.Set(LocalRead, Invalid, SnoopModified, Shared, ActAllocate|ActFetchIntervention)
	t.SetAllSnoops(LocalRead, Shared, Shared, 0)
	t.SetAllSnoops(LocalRead, Modified, Modified, 0)

	t.Set(LocalWrite, Invalid, SnoopNone, Modified, ActAllocate|ActFetchMemory|ActInvalidateOthers)
	t.Set(LocalWrite, Invalid, SnoopShared, Modified, ActAllocate|ActFetchMemory|ActInvalidateOthers)
	t.Set(LocalWrite, Invalid, SnoopModified, Modified, ActAllocate|ActFetchIntervention|ActInvalidateOthers)
	t.SetAllSnoops(LocalWrite, Shared, Modified, ActInvalidateOthers)
	t.SetAllSnoops(LocalWrite, Modified, Modified, 0)

	t.SetAllSnoops(LocalCastout, Invalid, Modified, ActAllocate)
	t.SetAllSnoops(LocalCastout, Shared, Modified, 0)
	t.SetAllSnoops(LocalCastout, Modified, Modified, 0)

	t.SetAllSnoops(SnoopRead, Invalid, Invalid, 0)
	t.SetAllSnoops(SnoopRead, Shared, Shared, ActRespondShared)
	t.SetAllSnoops(SnoopRead, Modified, Shared, ActRespondModified|ActWriteback)

	t.SetAllSnoops(SnoopWrite, Invalid, Invalid, 0)
	t.SetAllSnoops(SnoopWrite, Shared, Invalid, 0)
	t.SetAllSnoops(SnoopWrite, Modified, Invalid, ActRespondModified)

	t.SetAllSnoops(SnoopCastout, Invalid, Invalid, 0)
	t.SetAllSnoops(SnoopCastout, Shared, Shared, 0)
	t.SetAllSnoops(SnoopCastout, Modified, Modified, 0)
	return t
}

// MOESI returns the five-state protocol: a dirty line snooped by a reader
// moves to Owned and keeps supplying interventions instead of writing back
// to memory. It models the "efficient cache-to-cache transfer
// implementations" the paper recommends for FMM-like sharing-heavy
// workloads (§5.3).
func MOESI() *Table {
	t := &Table{Name: "moesi"}

	t.Set(LocalRead, Invalid, SnoopNone, Exclusive, ActAllocate|ActFetchMemory)
	t.Set(LocalRead, Invalid, SnoopShared, Shared, ActAllocate|ActFetchMemory)
	t.Set(LocalRead, Invalid, SnoopModified, Shared, ActAllocate|ActFetchIntervention)
	t.SetAllSnoops(LocalRead, Shared, Shared, 0)
	t.SetAllSnoops(LocalRead, Exclusive, Exclusive, 0)
	t.SetAllSnoops(LocalRead, Modified, Modified, 0)
	t.SetAllSnoops(LocalRead, Owned, Owned, 0)

	t.Set(LocalWrite, Invalid, SnoopNone, Modified, ActAllocate|ActFetchMemory|ActInvalidateOthers)
	t.Set(LocalWrite, Invalid, SnoopShared, Modified, ActAllocate|ActFetchMemory|ActInvalidateOthers)
	t.Set(LocalWrite, Invalid, SnoopModified, Modified, ActAllocate|ActFetchIntervention|ActInvalidateOthers)
	t.SetAllSnoops(LocalWrite, Shared, Modified, ActInvalidateOthers)
	t.SetAllSnoops(LocalWrite, Exclusive, Modified, 0)
	t.SetAllSnoops(LocalWrite, Modified, Modified, 0)
	t.SetAllSnoops(LocalWrite, Owned, Modified, ActInvalidateOthers)

	t.SetAllSnoops(LocalCastout, Invalid, Modified, ActAllocate)
	t.SetAllSnoops(LocalCastout, Shared, Modified, 0)
	t.SetAllSnoops(LocalCastout, Exclusive, Modified, 0)
	t.SetAllSnoops(LocalCastout, Modified, Modified, 0)
	t.SetAllSnoops(LocalCastout, Owned, Modified, 0)

	t.SetAllSnoops(SnoopRead, Invalid, Invalid, 0)
	t.SetAllSnoops(SnoopRead, Shared, Shared, ActRespondShared)
	t.SetAllSnoops(SnoopRead, Exclusive, Shared, ActRespondShared)
	// The MOESI difference: dirty data stays dirty (Owned), supplied by
	// intervention with no memory writeback.
	t.SetAllSnoops(SnoopRead, Modified, Owned, ActRespondModified)
	t.SetAllSnoops(SnoopRead, Owned, Owned, ActRespondModified)

	t.SetAllSnoops(SnoopWrite, Invalid, Invalid, 0)
	t.SetAllSnoops(SnoopWrite, Shared, Invalid, 0)
	t.SetAllSnoops(SnoopWrite, Exclusive, Invalid, 0)
	t.SetAllSnoops(SnoopWrite, Modified, Invalid, ActRespondModified)
	t.SetAllSnoops(SnoopWrite, Owned, Invalid, ActRespondModified)

	for st := 0; st < NumStates; st++ {
		t.SetAllSnoops(SnoopCastout, State(st), State(st), 0)
	}
	return t
}

// Builtin returns the named built-in protocol table, or nil if unknown.
func Builtin(name string) *Table {
	switch name {
	case "mesi":
		return MESI()
	case "msi":
		return MSI()
	case "moesi":
		return MOESI()
	}
	return nil
}
