package coherence

import (
	"errors"
	"strings"
	"testing"
)

func TestCheckAcceptsBuiltins(t *testing.T) {
	for _, tab := range []*Table{MSI(), MESI(), MOESI()} {
		if err := Check(tab); err != nil {
			t.Errorf("Check(%s): %v", tab.Name, err)
		}
		// More caches must not change the verdict: the violation
		// classes are all expressible with 3, but the model must stay
		// clean at any width.
		for n := 2; n <= 5; n++ {
			if err := CheckN(tab, n); err != nil {
				t.Errorf("CheckN(%s, %d): %v", tab.Name, n, err)
			}
		}
	}
}

func TestCheckNBounds(t *testing.T) {
	if err := CheckN(MESI(), 1); err == nil {
		t.Fatal("CheckN(1) accepted")
	}
	if err := CheckN(MESI(), maxCheckCaches+1); err == nil {
		t.Fatalf("CheckN(%d) accepted", maxCheckCaches+1)
	}
}

// mutate parses the MESI map file text, replaces the rule lines matching
// prefix with repl, and returns the table.
func mutateMESI(t *testing.T, prefix, repl string) *Table {
	t.Helper()
	src, err := MapFileString(MESI())
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	replaced := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, prefix) {
			if !replaced {
				out = append(out, repl)
				replaced = true
			}
			continue
		}
		out = append(out, line)
	}
	if !replaced {
		t.Fatalf("no line with prefix %q in:\n%s", prefix, src)
	}
	tab, err := ParseMapFileString(strings.Join(out, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCheckRejectsDroppedWriteback(t *testing.T) {
	// MESI's snoop-read M downgrade without the writeback: the first
	// reader gets fresh data by intervention, but memory is never
	// updated, so a third reader (snoop input now merely "shared", no
	// intervention) fetches stale memory. BFS finds that three-event
	// counterexample before the deeper evict-evict lost-write one.
	tab := mutateMESI(t, "snoop-read M", "snoop-read M * -> S respond-modified")
	err := Check(tab)
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Kind != ViolationStaleRead {
		t.Fatalf("want ViolationStaleRead, got %v", err)
	}
	if len(ce.Trace) == 0 {
		t.Fatal("counterexample trace empty")
	}
	// With only two caches the shortest counterexample changes shape
	// (evict the downgraded copy, refetch stale memory) but the
	// mutation is still caught.
	err = CheckN(tab, 2)
	if !errors.As(err, &ce) || ce.Kind != ViolationStaleRead {
		t.Fatalf("want ViolationStaleRead at n=2, got %v", err)
	}
}

func TestCheckRejectsSharedModified(t *testing.T) {
	// Granting M on a shared write without peers invalidating: the
	// writer's DClaim leaves the peer copy valid next to an M copy.
	tab := mutateMESI(t, "snoop-write S", "snoop-write S * -> S -")
	err := Check(tab)
	// The compiler's bus lint already rejects a snoop-write that keeps
	// a copy; Check surfaces it as the typed compile error.
	var comp *CompileError
	if !errors.As(err, &comp) || comp.Kind != ErrSnoopWriteKeepsCopy {
		t.Fatalf("want ErrSnoopWriteKeepsCopy, got %v", err)
	}
}

func TestCheckRejectsStaleFetch(t *testing.T) {
	// Fetch from memory while a peer holds the line dirty: the dirty
	// peer answers the snoop but the requester's table ignores the
	// intervention... the supplied-data semantics save it. Break the
	// peer side instead: snoop-read on M responds shared (stale memory
	// data reaches the reader).
	tab := mutateMESI(t, "snoop-read M", "snoop-read M * -> S respond-shared writeback")
	// respond-shared + writeback keeps lint happy (ownership surfaces
	// via the writeback) — but the writeback flushes to memory, so the
	// read is satisfied from now-fresh memory. Coherent! Verify Check
	// agrees, then drop the writeback too.
	if err := Check(tab); err != nil {
		t.Fatalf("writeback-flush variant should be coherent, got %v", err)
	}
}

func TestCheckRejectsThrashLoop(t *testing.T) {
	// A read hit that drops the line: every other read misses the data
	// it just had; the line never stabilizes.
	tab := mutateMESI(t, "read S", "read S * -> I -")
	err := Check(tab)
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Kind != ViolationLivelock {
		t.Fatalf("want ViolationLivelock, got %v", err)
	}
}

func TestCheckRejectsSilentDirtyWrite(t *testing.T) {
	// A shared write that never reaches M nor memory: the value only
	// lives in a clean S copy and dies on eviction.
	tab := mutateMESI(t, "write S", "write S * -> S invalidate-others")
	err := Check(tab)
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Kind != ViolationLostWrite {
		t.Fatalf("want ViolationLostWrite, got %v", err)
	}
}

func TestCheckErrorRendering(t *testing.T) {
	tab := mutateMESI(t, "snoop-read M", "snoop-read M * -> S respond-modified")
	err := Check(tab)
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{"protocol mesi", "stale read", "cache"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestCheckDeterministic(t *testing.T) {
	tab := mutateMESI(t, "snoop-read M", "snoop-read M * -> S respond-modified")
	first := Check(tab).Error()
	for i := 0; i < 5; i++ {
		if got := Check(tab).Error(); got != first {
			t.Fatalf("verdict not deterministic:\n%s\n%s", first, got)
		}
	}
}
