package coherence_test

import (
	"fmt"

	"memories/internal/coherence"
)

// ExampleCheck model-checks a deliberately broken MESI variant whose
// dirty snoop-read downgrade forgot the writeback: the first reader is
// served by intervention, but memory is never updated, so a later read
// that misses with only clean sharers on the bus observes stale data.
func ExampleCheck() {
	tab := coherence.MESI()
	tab.Name = "mesi-no-wb"
	tab.SetAllSnoops(coherence.SnoopRead, coherence.Modified,
		coherence.Shared, coherence.ActRespondModified) // writeback dropped
	err := coherence.Check(tab)
	fmt.Println(err)
	// Output:
	// protocol mesi-no-wb: stale read: cache2 observes stale data (state S+ S+ S- mem-) after [cache0 write, cache1 read, cache2 read]
}
