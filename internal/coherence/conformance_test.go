package coherence

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shippedTables loads every protocols/*.map into a parsed Table.
func shippedTables(t *testing.T) map[string]*Table {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "protocols", "*.map"))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*Table{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := ParseMapFileString(string(data))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		out[tab.Name] = tab
	}
	if len(out) < 4 {
		t.Fatalf("expected at least 4 shipped protocols, found %d", len(out))
	}
	return out
}

// assertEngineMatchesTable checks cell-by-cell equality: for every
// (op, state, snoop) over the table's used states the compiled engine
// must return exactly the table's entry, and for unused states the
// identity transition.
func assertEngineMatchesTable(t *testing.T, tab *Table) {
	t.Helper()
	eng, err := Compile(tab)
	if err != nil {
		t.Fatalf("compile %s: %v", tab.Name, err)
	}
	used := map[State]bool{}
	for _, s := range tab.States() {
		used[s] = true
	}
	for op := 0; op < NumOps; op++ {
		for st := 0; st < NumStates; st++ {
			for sn := 0; sn < NumSnoopIns; sn++ {
				got := eng.Lookup(Op(op), State(st), SnoopIn(sn))
				if !used[State(st)] {
					if got.Next != State(st) || got.Actions != 0 {
						t.Fatalf("%s: unused state %s not identity: %s/%s/%s -> %s %v",
							tab.Name, State(st), Op(op), State(st), SnoopIn(sn), got.Next, got.Actions)
					}
					continue
				}
				want := tab.MustLookup(Op(op), State(st), SnoopIn(sn))
				if got.Next != want.Next || got.Actions != want.Actions {
					t.Fatalf("%s: engine diverges at %s/%s/%s: engine %s %v, table %s %v",
						tab.Name, Op(op), State(st), SnoopIn(sn),
						got.Next, got.Actions, want.Next, want.Actions)
				}
			}
		}
	}
}

// TestEngineConformsShipped proves the compiled engine bit-identical to
// the parsed table for every shipped protocol file and every builtin.
func TestEngineConformsShipped(t *testing.T) {
	for name, tab := range shippedTables(t) {
		t.Run(name, func(t *testing.T) { assertEngineMatchesTable(t, tab) })
	}
	for _, name := range []string{"msi", "mesi", "moesi"} {
		t.Run("builtin-"+name, func(t *testing.T) { assertEngineMatchesTable(t, Builtin(name)) })
	}
}

// randomCompilableTable builds a fully random table that nonetheless
// satisfies every compile-time invariant: all five states are forced
// reachable, snoop-writes invalidate, Invalid is only left by an
// allocating local op, and dirty snoop-reads surface ownership.
// Everything else — next states, action sets — is drawn from rng.
func randomCompilableTable(rng *rand.Rand, name string) *Table {
	tab := &Table{Name: name}
	all := []State{Invalid, Shared, Exclusive, Modified, Owned}
	randActions := func() Action {
		return Action(rng.Intn(1<<7)) &^ (ActAllocate | ActFetchMemory | ActFetchIntervention)
	}
	for op := 0; op < NumOps; op++ {
		for _, st := range all {
			for sn := 0; sn < NumSnoopIns; sn++ {
				o, s := Op(op), st
				var next State
				var acts Action
				switch {
				case s == Invalid && o.IsLocal():
					if rng.Intn(2) == 0 {
						next, acts = Invalid, 0
					} else {
						next = all[1+rng.Intn(4)]
						acts = ActAllocate | ActFetchMemory | randActions()
					}
				case s == Invalid: // snoop ops never allocate
					next, acts = Invalid, 0
				case o == SnoopWrite:
					next, acts = Invalid, randActions()
				case o == SnoopRead && s.IsDirty():
					next = all[rng.Intn(5)]
					acts = ActWriteback | randActions()
				default:
					next = all[rng.Intn(5)]
					acts = randActions()
				}
				tab.Set(o, s, SnoopIn(sn), next, acts)
			}
		}
	}
	// Force reachability of every state regardless of the random draws
	// above (castout-allocate needs no data source: L2 deposits data).
	tab.Set(LocalCastout, Invalid, SnoopNone, Shared, ActAllocate)
	tab.Set(LocalCastout, Invalid, SnoopShared, Exclusive, ActAllocate)
	tab.Set(LocalCastout, Invalid, SnoopModified, Modified, ActAllocate)
	tab.Set(LocalRead, Invalid, SnoopNone, Owned, ActAllocate|ActFetchMemory)
	return tab
}

// TestEngineConformsRandomTables compiles randomly generated (valid)
// tables and demands exhaustive engine/table equality on each.
func TestEngineConformsRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		tab := randomCompilableTable(rng, fmt.Sprintf("rand%d", i))
		assertEngineMatchesTable(t, tab)
	}
}

// diffState is one side of the differential controller pair: per-cache
// line states evolved exactly the way internal/core's node does it
// (snoop-in derived from peer states; peers snoop with SnoopNone).
type diffState struct {
	st [4]State
}

func (d *diffState) snoopIn(self int) SnoopIn {
	in := SnoopNone
	for i, s := range d.st {
		if i == self || !s.IsValid() {
			continue
		}
		if s.IsDirty() {
			return SnoopModified
		}
		in = SnoopShared
	}
	return in
}

// TestEngineTableDifferentialStream drives a table-backed and an
// engine-backed controller through identical randomized op streams (the
// legacy_test.go pattern: the old path as reference model) and demands
// bit-identical transitions and states at every step, for all four
// shipped protocols across several seeds.
func TestEngineTableDifferentialStream(t *testing.T) {
	localOps := []Op{LocalRead, LocalWrite, LocalCastout}
	snoopFor := map[Op]Op{LocalRead: SnoopRead, LocalWrite: SnoopWrite, LocalCastout: SnoopCastout}
	for name, tab := range shippedTables(t) {
		eng, err := Compile(tab)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				var tabSide, engSide diffState
				for step := 0; step < 5000; step++ {
					self := rng.Intn(len(tabSide.st))
					op := localOps[rng.Intn(len(localOps))]

					in := tabSide.snoopIn(self)
					if got := engSide.snoopIn(self); got != in {
						t.Fatalf("step %d: snoop-in diverged: table %s, engine %s", step, in, got)
					}
					te := tab.MustLookup(op, tabSide.st[self], in)
					ee := eng.Lookup(op, engSide.st[self], in)
					if te != ee {
						t.Fatalf("step %d: %s/%s/%s: table %s %v, engine %s %v",
							step, op, tabSide.st[self], in, te.Next, te.Actions, ee.Next, ee.Actions)
					}
					tabSide.st[self], engSide.st[self] = te.Next, ee.Next

					sop := snoopFor[op]
					for peer := range tabSide.st {
						if peer == self {
							continue
						}
						tp := tab.MustLookup(sop, tabSide.st[peer], SnoopNone)
						ep := eng.Lookup(sop, engSide.st[peer], SnoopNone)
						if tp != ep {
							t.Fatalf("step %d peer %d: %s/%s: table %s %v, engine %s %v",
								step, peer, sop, tabSide.st[peer], tp.Next, tp.Actions, ep.Next, ep.Actions)
						}
						tabSide.st[peer], engSide.st[peer] = tp.Next, ep.Next
					}
					if tabSide != engSide {
						t.Fatalf("step %d: controller states diverged: table %v, engine %v",
							step, tabSide.st, engSide.st)
					}
				}
			})
		}
	}
}

// mutation is one seeded single-rule edit of a shipped map file. old is
// replaced by new (new == "" deletes the rule); the mutated source must
// then be rejected at the stated layer with the stated typed error.
type mutation struct {
	name  string
	proto string // shipped protocol the mutation applies to
	old   string // verbatim rule line to replace
	new   string // replacement (may hold two lines; empty deletes)

	wantParse     bool           // expect a *ParseError
	wantCompile   CompileErrKind // valid when wantParse is false and wantViolation is false
	wantCheck     bool
	wantViolation ViolationKind // valid when wantCheck is true
}

var mutations = []mutation{
	// --- msi ---
	{name: "msi-drop-writeback", proto: "msi",
		old:       "snoop-read M * -> S writeback respond-modified",
		new:       "snoop-read M * -> S respond-modified",
		wantCheck: true, wantViolation: ViolationStaleRead},
	{name: "msi-snoop-write-keeps-copy", proto: "msi",
		old:         "snoop-write S * -> I -",
		new:         "snoop-write S * -> S -",
		wantCompile: ErrSnoopWriteKeepsCopy},
	{name: "msi-hidden-dirty", proto: "msi",
		old:         "snoop-read M * -> S writeback respond-modified",
		new:         "snoop-read M * -> M -",
		wantCompile: ErrHiddenDirty},
	{name: "msi-leaves-invalid", proto: "msi",
		old:         "read I none -> S allocate fetch-memory",
		new:         "read I none -> S fetch-memory",
		wantCompile: ErrLeavesInvalid},
	{name: "msi-no-data-source", proto: "msi",
		old:         "read I none -> S allocate fetch-memory",
		new:         "read I none -> S allocate",
		wantCompile: ErrNoDataSource},
	{name: "msi-read-thrash-livelock", proto: "msi",
		old:       "read S * -> S -",
		new:       "read S * -> I -",
		wantCheck: true, wantViolation: ViolationLivelock},
	{name: "msi-unknown-state", proto: "msi",
		old:       "read M * -> M -",
		new:       "read Q * -> Q -",
		wantParse: true},
	{name: "msi-missing-transition", proto: "msi",
		old:         "write M * -> M -",
		new:         "",
		wantCompile: ErrMissingTransition},

	// --- mesi ---
	{name: "mesi-drop-writeback", proto: "mesi",
		old:       "snoop-read M * -> S writeback respond-modified",
		new:       "snoop-read M * -> S respond-modified",
		wantCheck: true, wantViolation: ViolationStaleRead},
	{name: "mesi-exclusive-while-shared", proto: "mesi",
		old:       "read I shared -> S allocate fetch-memory",
		new:       "read I shared -> E allocate fetch-memory",
		wantCheck: true, wantViolation: ViolationConflictingCopies},
	{name: "mesi-snoop-write-keeps-exclusive", proto: "mesi",
		old:         "snoop-write E * -> I -",
		new:         "snoop-write E * -> E -",
		wantCompile: ErrSnoopWriteKeepsCopy},
	{name: "mesi-silent-write-on-exclusive", proto: "mesi",
		old:       "write E * -> M -",
		new:       "write E * -> E -",
		wantCheck: true, wantViolation: ViolationLostWrite},
	{name: "mesi-silent-write-on-shared", proto: "mesi",
		old:       "write S * -> M invalidate-others",
		new:       "write S * -> S invalidate-others",
		wantCheck: true, wantViolation: ViolationLostWrite},
	{name: "mesi-ambiguous-restatement", proto: "mesi",
		old:         "read S * -> S -",
		new:         "read S * -> S -\nread S * -> I -",
		wantCompile: ErrAmbiguousRule},
	{name: "mesi-unreachable-owned", proto: "mesi",
		old:         "snoop-castout M * -> M -",
		new:         "snoop-castout M * -> M -\nsnoop-castout O * -> O -",
		wantCompile: ErrUnreachableState},

	// --- moesi ---
	{name: "moesi-owner-hides-dirty", proto: "moesi",
		old:         "snoop-read O * -> O respond-modified",
		new:         "snoop-read O * -> O -",
		wantCompile: ErrHiddenDirty},
	{name: "moesi-snoop-write-keeps-owned", proto: "moesi",
		old:         "snoop-write O * -> I respond-modified",
		new:         "snoop-write O * -> O respond-modified",
		wantCompile: ErrSnoopWriteKeepsCopy},
	{name: "moesi-demote-owner-to-shared", proto: "moesi",
		// Rerouting M's snoop-read to S leaves O defined but unreachable.
		old:         "snoop-read M * -> O respond-modified",
		new:         "snoop-read M * -> S respond-modified",
		wantCompile: ErrUnreachableState},
	{name: "moesi-read-drops-owner", proto: "moesi",
		// The dropped owner re-reads stale memory while a fresh S peer
		// still holds the line, so the checker hits the stale read
		// before any write is actually lost.
		old:       "read O * -> O -",
		new:       "read O * -> I -",
		wantCheck: true, wantViolation: ViolationStaleRead},
	{name: "moesi-unknown-action", proto: "moesi",
		old:       "write O * -> M invalidate-others",
		new:       "write O * -> M invalidate_others",
		wantParse: true},

	// --- write-once ---
	{name: "write-once-drop-writeback", proto: "write-once",
		old:       "snoop-read M * -> S writeback respond-modified",
		new:       "snoop-read M * -> S respond-modified",
		wantCheck: true, wantViolation: ViolationStaleRead},
	{name: "write-once-exclusive-from-dirty-peer", proto: "write-once",
		old:       "read I modified -> S allocate fetch-intervention",
		new:       "read I modified -> E allocate fetch-intervention",
		wantCheck: true, wantViolation: ViolationConflictingCopies},
	{name: "write-once-missing-transition", proto: "write-once",
		old:         "read E * -> E -",
		new:         "",
		wantCompile: ErrMissingTransition},
	{name: "write-once-snoop-write-keeps-copy", proto: "write-once",
		old:         "snoop-write E * -> I -",
		new:         "snoop-write E * -> S -",
		wantCompile: ErrSnoopWriteKeepsCopy},
}

// TestCheckRejectsMutations seeds single-rule incoherence into each
// shipped map and asserts the load-time gauntlet rejects every mutant
// at the right layer with the right typed error. The unmutated sources
// all pass (assets_test.go), so each rejection is attributable to its
// one-line edit.
func TestCheckRejectsMutations(t *testing.T) {
	sources := map[string]string{}
	for name, tab := range shippedTables(t) {
		src, err := MapFileString(tab)
		if err != nil {
			t.Fatal(err)
		}
		sources[name] = src
	}
	perProto := map[string]int{}
	for _, m := range mutations {
		perProto[m.proto]++
		m := m
		t.Run(m.name, func(t *testing.T) {
			src, ok := sources[m.proto]
			if !ok {
				t.Fatalf("no shipped protocol %q", m.proto)
			}
			mutated := strings.Replace(src, m.old+"\n", m.new+"\n", 1)
			if m.new != "" && !strings.Contains(mutated, m.new) {
				t.Fatalf("mutation did not apply: %q not found in %s", m.old, m.proto)
			}
			if mutated == src {
				t.Fatalf("mutation is a no-op: %q", m.old)
			}

			tab, err := ParseMapFileString(mutated)
			if m.wantParse {
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Fatalf("want *ParseError, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("mutant failed to parse (wanted a later-stage rejection): %v", err)
			}

			err = Check(tab)
			if err == nil {
				t.Fatal("incoherent mutant accepted")
			}
			if m.wantCheck {
				var ce *CheckError
				if !errors.As(err, &ce) {
					t.Fatalf("want *CheckError, got %T: %v", err, err)
				}
				if ce.Kind != m.wantViolation {
					t.Fatalf("violation = %s, want %s (%v)", ce.Kind, m.wantViolation, err)
				}
				if len(ce.Trace) == 0 {
					t.Fatalf("violation carries no counterexample trace: %v", err)
				}
				return
			}
			var comp *CompileError
			if !errors.As(err, &comp) {
				t.Fatalf("want *CompileError, got %T: %v", err, err)
			}
			if comp.Kind != m.wantCompile {
				t.Fatalf("compile error = %s, want %s (%v)", comp.Kind, m.wantCompile, err)
			}
		})
	}
	if len(mutations) < 20 {
		t.Fatalf("mutation suite shrank to %d entries; keep at least 20", len(mutations))
	}
	for proto, n := range perProto {
		if n < 4 {
			t.Fatalf("protocol %s has only %d mutations; every shipped map needs at least 4", proto, n)
		}
	}
}
