package coherence

import (
	"strings"
	"testing"
)

func tablesEqual(a, b *Table) bool {
	if a.Name != b.Name {
		return false
	}
	for op := 0; op < NumOps; op++ {
		for st := 0; st < NumStates; st++ {
			for sn := 0; sn < NumSnoopIns; sn++ {
				if a.entries[op][st][sn] != b.entries[op][st][sn] {
					return false
				}
			}
		}
	}
	return true
}

func TestMapFileRoundTripBuiltins(t *testing.T) {
	for _, name := range []string{"msi", "mesi", "moesi"} {
		orig := Builtin(name)
		text, err := MapFileString(orig)
		if err != nil {
			t.Fatalf("%s: serialize: %v", name, err)
		}
		parsed, err := ParseMapFileString(text)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", name, err, text)
		}
		if !tablesEqual(orig, parsed) {
			t.Fatalf("%s: round trip changed the table:\n%s", name, text)
		}
		if err := parsed.Validate(); err != nil {
			t.Fatalf("%s: parsed table invalid: %v", name, err)
		}
	}
}

func TestParseMapFileComments(t *testing.T) {
	src := `
# a custom protocol
protocol demo
read I * -> S allocate fetch-memory   # trailing comment
read S * -> S -
`
	tab, err := ParseMapFileString(src)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "demo" {
		t.Fatalf("Name = %q", tab.Name)
	}
	e, ok := tab.Lookup(LocalRead, Invalid, SnoopShared)
	if !ok || e.Next != Shared || !e.Actions.Has(ActAllocate|ActFetchMemory) {
		t.Fatalf("wildcard transition wrong: %+v ok=%v", e, ok)
	}
	e, ok = tab.Lookup(LocalRead, Shared, SnoopNone)
	if !ok || e.Next != Shared || e.Actions != 0 {
		t.Fatalf("dash-action transition wrong: %+v ok=%v", e, ok)
	}
}

func TestParseMapFileOverride(t *testing.T) {
	src := `protocol demo
read I * -> S allocate fetch-memory
read I modified -> S allocate fetch-intervention
`
	tab, err := ParseMapFileString(src)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := tab.Lookup(LocalRead, Invalid, SnoopModified)
	if !e.Actions.Has(ActFetchIntervention) {
		t.Fatal("later specific line did not override wildcard")
	}
	e, _ = tab.Lookup(LocalRead, Invalid, SnoopNone)
	if !e.Actions.Has(ActFetchMemory) {
		t.Fatal("override clobbered unrelated snoop input")
	}
}

func TestParseMapFileErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing protocol", "read I * -> S allocate fetch-memory\n"},
		{"bad op", "protocol p\nfrobnicate I * -> S\n"},
		{"bad state", "protocol p\nread Z * -> S allocate fetch-memory\n"},
		{"bad snoop", "protocol p\nread I maybe -> S allocate fetch-memory\n"},
		{"missing arrow", "protocol p\nread I * S allocate\n"},
		{"bad action", "protocol p\nread I * -> S levitate\n"},
		{"short line", "protocol p\nread I *\n"},
		{"protocol extra args", "protocol a b\n"},
	}
	for _, c := range cases {
		if _, err := ParseMapFileString(c.src); err == nil {
			t.Errorf("%s: parse succeeded, want error", c.name)
		}
	}
}

func TestMapFileOutputIsStable(t *testing.T) {
	a, err := MapFileString(MESI())
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	b, err := MapFileString(MESI())
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	if a != b {
		t.Fatal("map file serialization not deterministic")
	}
	if !strings.Contains(a, "protocol mesi") {
		t.Fatalf("missing protocol header:\n%s", a)
	}
	// Wildcard collapsing: hit transitions should use '*'.
	if !strings.Contains(a, "read S * -> S") {
		t.Fatalf("expected collapsed wildcard for read-hit:\n%s", a)
	}
}

// TestCustomProtocolFromMapFile builds a write-through-style protocol not
// shipped as a builtin and checks Validate flags nothing.
func TestCustomProtocolFromMapFile(t *testing.T) {
	src := `protocol write-once
read I none -> E allocate fetch-memory
read I shared -> S allocate fetch-memory
read I modified -> S allocate fetch-intervention
read S * -> S -
read E * -> E -
read M * -> M -
write I * -> M allocate fetch-memory invalidate-others
write S * -> M invalidate-others
write E * -> M -
write M * -> M -
castout I * -> M allocate
castout S * -> M -
castout E * -> M -
castout M * -> M -
snoop-read I * -> I -
snoop-read S * -> S respond-shared
snoop-read E * -> S respond-shared
snoop-read M * -> S respond-modified writeback
snoop-write I * -> I -
snoop-write S * -> I -
snoop-write E * -> I -
snoop-write M * -> I respond-modified
snoop-castout I * -> I -
snoop-castout S * -> S -
snoop-castout E * -> E -
snoop-castout M * -> M -
`
	tab, err := ParseMapFileString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.Name != "write-once" {
		t.Fatalf("Name = %q", tab.Name)
	}
}
