package coherence

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Map-file format. One directive per line, '#' comments, blank lines
// ignored:
//
//	protocol <name>
//	<op> <state> <snoop|*> -> <next-state> [action ...]
//
// '*' in the snoop column defines the transition for every snoop input
// (and is how hit transitions, which do not depend on peers, are written).
// Later lines override earlier ones, so a map file can start from a broad
// wildcard and refine. This mirrors the FPGA "table lookup map file"
// loaded at initialization (paper §3.2).

// WriteMapFile serializes the table in map-file form. Runs of snoop inputs
// with identical entries collapse to '*'.
func WriteMapFile(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "protocol %s\n", t.Name)
	fmt.Fprintf(bw, "# op state snoop -> next actions\n")
	for op := 0; op < NumOps; op++ {
		for st := 0; st < NumStates; st++ {
			entries := t.entries[op][st]
			defined := 0
			for sn := 0; sn < NumSnoopIns; sn++ {
				if entries[sn].defined {
					defined++
				}
			}
			if defined == 0 {
				continue
			}
			allSame := defined == NumSnoopIns
			for sn := 1; allSame && sn < NumSnoopIns; sn++ {
				if entries[sn] != entries[0] {
					allSame = false
				}
			}
			if allSame {
				e := entries[0]
				fmt.Fprintf(bw, "%s %s * -> %s %s\n", Op(op), State(st), e.Next, e.Actions)
				continue
			}
			for sn := 0; sn < NumSnoopIns; sn++ {
				if e := entries[sn]; e.defined {
					fmt.Fprintf(bw, "%s %s %s -> %s %s\n", Op(op), State(st), SnoopIn(sn), e.Next, e.Actions)
				}
			}
		}
	}
	return bw.Flush()
}

// MapFileString returns the map-file text for t.
func MapFileString(t *Table) (string, error) {
	var sb strings.Builder
	if err := WriteMapFile(&sb, t); err != nil {
		return "", fmt.Errorf("coherence: serializing protocol %q: %w", t.Name, err)
	}
	return sb.String(), nil
}

// ParseError reports a syntactically invalid map file: an unknown op,
// state, snoop or action mnemonic, or a malformed directive. Line is
// the 1-based map-file line, 0 when the defect is not tied to one.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
	}
	return e.Msg
}

// ParseMapFile parses a protocol map file. Syntax defects return a
// typed *ParseError. The returned table is NOT validated; callers
// decide whether to require Compile/Check (the board's console software
// does before loading a table into a node controller).
func ParseMapFile(r io.Reader) (*Table, error) {
	t := &Table{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if strings.EqualFold(fields[0], "protocol") {
			if len(fields) != 2 {
				return nil, &ParseError{Line: lineNo, Msg: "protocol directive needs exactly one name"}
			}
			t.Name = fields[1]
			continue
		}
		if err := parseTransition(t, fields, lineNo); err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Name == "" {
		return nil, &ParseError{Msg: "coherence: map file missing protocol directive"}
	}
	return t, nil
}

func parseTransition(t *Table, fields []string, lineNo int) error {
	// <op> <state> <snoop|*> -> <next> [action...]
	if len(fields) < 5 {
		return fmt.Errorf("transition needs at least 5 fields, got %d", len(fields))
	}
	if fields[3] != "->" {
		return fmt.Errorf("expected '->' in fourth field, got %q", fields[3])
	}
	op, err := ParseOp(fields[0])
	if err != nil {
		return err
	}
	st, err := ParseState(fields[1])
	if err != nil {
		return err
	}
	next, err := ParseState(fields[4])
	if err != nil {
		return err
	}
	var actions Action
	for _, f := range fields[5:] {
		if f == "-" {
			continue
		}
		a, err := ParseAction(f)
		if err != nil {
			return err
		}
		actions |= a
	}
	if fields[2] == "*" {
		t.applyParsed(op, st, -1, next, actions, lineNo)
		return nil
	}
	sn, err := ParseSnoopIn(fields[2])
	if err != nil {
		return err
	}
	t.applyParsed(op, st, int(sn), next, actions, lineNo)
	return nil
}

// ParseMapFileString parses a map file held in a string.
func ParseMapFileString(s string) (*Table, error) {
	return ParseMapFile(strings.NewReader(s))
}
