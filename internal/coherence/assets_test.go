package coherence

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedProtocolFiles parses, compiles, and model-checks every
// protocol map file shipped in the repository's protocols/ directory —
// the artifacts a user would load through the console's loadmap command
// or the -protocol flag — and requires each to survive a
// format→reparse→format round trip byte-identically.
func TestShippedProtocolFiles(t *testing.T) {
	files, err := filepath.Glob("../../protocols/*.map")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected at least 4 shipped protocol files, found %v", files)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := ParseMapFile(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := tab.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", path, err)
		}
		eng, err := Compile(tab)
		if err != nil {
			t.Errorf("%s: Compile: %v", path, err)
			continue
		}
		if eng.Name() != tab.Name || tab.Name == "" {
			t.Errorf("%s: engine name %q vs table %q", path, eng.Name(), tab.Name)
		}
		if err := Check(tab); err != nil {
			t.Errorf("%s: Check: %v", path, err)
		}
		// The canonical serialization must be a fixed point: format the
		// parsed table, reparse, format again, byte-identical.
		once, err := MapFileString(tab)
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := ParseMapFileString(once)
		if err != nil {
			t.Errorf("%s: reparse of formatted output: %v", path, err)
			continue
		}
		twice, err := MapFileString(reparsed)
		if err != nil {
			t.Fatal(err)
		}
		if once != twice {
			t.Errorf("%s: format→reparse→format is not byte-identical:\n--- first\n%s--- second\n%s", path, once, twice)
		}
	}
}

// TestShippedBuiltinsMatchFiles confirms the shipped msi/mesi/moesi files
// are exactly the built-in tables (regenerate them with WriteMapFile if
// the builtins change).
func TestShippedBuiltinsMatchFiles(t *testing.T) {
	for _, name := range []string{"msi", "mesi", "moesi"} {
		data, err := os.ReadFile(filepath.Join("../../protocols", name+".map"))
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseMapFileString(string(data))
		if err != nil {
			t.Fatal(err)
		}
		if !tablesEqual(parsed, Builtin(name)) {
			t.Errorf("protocols/%s.map out of date with the built-in table", name)
		}
	}
}
