package coherence

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedProtocolFiles parses and validates every protocol map file
// shipped in the repository's protocols/ directory — the artifacts a user
// would load through the console's loadmap command.
func TestShippedProtocolFiles(t *testing.T) {
	files, err := filepath.Glob("../../protocols/*.map")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected at least 4 shipped protocol files, found %v", files)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := ParseMapFile(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := tab.Validate(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if tab.Name == "" {
			t.Errorf("%s: unnamed protocol", path)
		}
	}
}

// TestShippedBuiltinsMatchFiles confirms the shipped msi/mesi/moesi files
// are exactly the built-in tables (regenerate them with WriteMapFile if
// the builtins change).
func TestShippedBuiltinsMatchFiles(t *testing.T) {
	for _, name := range []string{"msi", "mesi", "moesi"} {
		data, err := os.ReadFile(filepath.Join("../../protocols", name+".map"))
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseMapFileString(string(data))
		if err != nil {
			t.Fatal(err)
		}
		if !tablesEqual(parsed, Builtin(name)) {
			t.Errorf("protocols/%s.map out of date with the built-in table", name)
		}
	}
}
