package coherence

// Check is the model checker behind "machine-verified at load": it
// explores the FULL reachable state space of N peer caches contending
// for one line under a compiled protocol and rejects incoherence with a
// counterexample trace. The abstraction tracks, besides each cache's
// protocol state, one bit of data: whether a copy (and memory) holds
// the latest written value. That is enough to catch the classic
// failure classes — two writable copies, a reader observing stale data
// after a write, a dirty line dropped with its writeback lost, and
// protocol livelock — while keeping the space tiny (≤ (2·NumStates)^N
// · 2 states), so exhaustive breadth-first search is exact and runs in
// microseconds.
//
// Event semantics mirror the board (internal/core): a local op computes
// its snoop input from the peers' current states (dirty peer →
// modified, any valid peer → shared, else none), the local cache takes
// its transition, and every peer applies the matching snoop row. A
// peer answering respond-modified supplies the data on the bus,
// superseding a memory fetch; a peer writeback flushes its copy's
// value to memory. Castout is deliberately NOT in the event alphabet:
// on this board it models the hierarchy below pushing a dirty victim
// into the emulated cache (paper §3.4's non-inclusive passive
// emulation), whose legality depends on the lower level's protocol,
// outside this single-level model. Eviction is: a dirty copy writes
// its value back, a clean copy is silently dropped — exactly the
// directory's replacement path.

import "fmt"

// CheckEvent is one step of a counterexample trace.
type CheckEvent uint8

const (
	// EvRead: a processor under the given cache issued a read.
	EvRead CheckEvent = iota
	// EvWrite: a processor under the given cache issued a write
	// (RWITM on miss, DClaim on hit).
	EvWrite
	// EvEvict: the given cache evicted the line (capacity victim).
	EvEvict
)

var checkEventNames = [...]string{"read", "write", "evict"}

// String returns the event mnemonic.
func (e CheckEvent) String() string {
	if int(e) < len(checkEventNames) {
		return checkEventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// ViolationKind classifies the incoherence a CheckError reports.
type ViolationKind uint8

const (
	// ViolationConflictingCopies: a writable copy (E or M) coexists
	// with any other valid copy, or two caches are dirty at once.
	ViolationConflictingCopies ViolationKind = iota
	// ViolationStaleRead: a read (or the read half of a
	// read-with-intent-to-modify) observed data older than the last
	// write.
	ViolationStaleRead
	// ViolationLostWrite: the latest written value is gone — memory is
	// stale and no valid cache copy holds it (a writeback was dropped).
	ViolationLostWrite
	// ViolationLivelock: repeating a single operation from one cache
	// cycles through states forever without reaching a fixed point.
	ViolationLivelock
)

var violationNames = [...]string{
	ViolationConflictingCopies: "conflicting copies",
	ViolationStaleRead:         "stale read",
	ViolationLostWrite:         "lost write",
	ViolationLivelock:          "livelock",
}

// String returns a short description of the violation.
func (k ViolationKind) String() string {
	if int(k) < len(violationNames) {
		return violationNames[k]
	}
	return fmt.Sprintf("violation(%d)", uint8(k))
}

// CheckStep is one event of a counterexample trace.
type CheckStep struct {
	Cache int
	Event CheckEvent
}

// CheckError reports a coherence violation with the shortest event
// sequence (from the all-Invalid initial state) that produces it.
type CheckError struct {
	Protocol string
	Kind     ViolationKind
	Trace    []CheckStep
	Detail   string
}

func (e *CheckError) Error() string {
	s := fmt.Sprintf("protocol %s: %s", e.Protocol, e.Kind)
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	if len(e.Trace) > 0 {
		s += " after ["
		for i, st := range e.Trace {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("cache%d %s", st.Cache, st.Event)
		}
		s += "]"
	}
	return s
}

// ckState is the abstract system state: per-cache protocol state plus
// a freshness bit (does this copy hold the latest written value), and
// one freshness bit for memory. Encoded 4 bits per cache + 1 bit.
type ckState struct {
	st    [maxCheckCaches]State
	fresh [maxCheckCaches]bool
	mem   bool
}

const maxCheckCaches = 6

func (s *ckState) key(n int) uint32 {
	k := uint32(0)
	for i := 0; i < n; i++ {
		nib := uint32(s.st[i])
		if s.fresh[i] {
			nib |= 8
		}
		k = k<<4 | nib
	}
	if s.mem {
		k |= 1 << 31
	}
	return k
}

func (s *ckState) render(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += s.st[i].String()
		if s.st[i].IsValid() {
			if s.fresh[i] {
				out += "+"
			} else {
				out += "-"
			}
		}
	}
	if s.mem {
		return out + " mem+"
	}
	return out + " mem-"
}

// checker holds one exploration run.
type checker struct {
	eng    *Engine
	n      int
	parent map[uint32]traceLink
}

type traceLink struct {
	prev  uint32
	step  CheckStep
	first bool // true for the initial state (no predecessor)
}

// Check compiles the table and exhaustively model-checks it with 3
// peer caches (enough to exhibit every violation class the model can
// express, including owner/sharer/writer triangles). It returns nil
// only when the protocol is coherent; defects surface as *CompileError
// (structural) or *CheckError (semantic, with a counterexample trace).
func Check(t *Table) error { return CheckN(t, 3) }

// CheckN model-checks the table with n caches, 2 ≤ n ≤ 6.
func CheckN(t *Table, n int) error {
	eng, err := Compile(t)
	if err != nil {
		return err
	}
	if n < 2 || n > maxCheckCaches {
		return fmt.Errorf("coherence: CheckN needs 2..%d caches, got %d", maxCheckCaches, n)
	}
	ck := &checker{eng: eng, n: n, parent: map[uint32]traceLink{}}
	return ck.run(t.Name)
}

// trace reconstructs the event path from the initial state to key.
func (ck *checker) trace(key uint32, extra ...CheckStep) []CheckStep {
	var rev []CheckStep
	for {
		l := ck.parent[key]
		if l.first {
			break
		}
		rev = append(rev, l.step)
		key = l.prev
	}
	out := make([]CheckStep, 0, len(rev)+len(extra))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return append(out, extra...)
}

func (ck *checker) run(name string) error {
	init := ckState{mem: true}
	ck.parent[init.key(ck.n)] = traceLink{first: true}
	queue := []ckState{init}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curKey := cur.key(ck.n)

		// Livelock probe: from this reachable state, repeating any
		// single (cache, read|write) event must reach a fixed point.
		for i := 0; i < ck.n; i++ {
			for _, ev := range []CheckEvent{EvRead, EvWrite} {
				if err := ck.probeLivelock(name, cur, curKey, i, ev); err != nil {
					return err
				}
			}
		}

		for i := 0; i < ck.n; i++ {
			for _, ev := range []CheckEvent{EvRead, EvWrite, EvEvict} {
				if ev == EvEvict && !cur.st[i].IsValid() {
					continue
				}
				next, stale := ck.step(cur, i, ev)
				stepHere := CheckStep{Cache: i, Event: ev}
				if stale {
					return &CheckError{
						Protocol: name, Kind: ViolationStaleRead,
						Trace:  ck.trace(curKey, stepHere),
						Detail: fmt.Sprintf("cache%d observes stale data (state %s)", i, next.render(ck.n)),
					}
				}
				nextKey := next.key(ck.n)
				if _, seen := ck.parent[nextKey]; seen {
					continue
				}
				ck.parent[nextKey] = traceLink{prev: curKey, step: stepHere}
				if err := ck.invariants(name, &next, nextKey); err != nil {
					return err
				}
				queue = append(queue, next)
			}
		}
	}
	return nil
}

// invariants checks the state-level coherence properties.
func (ck *checker) invariants(name string, s *ckState, key uint32) error {
	dirty, writable, valid := 0, 0, 0
	anyFresh := false
	for i := 0; i < ck.n; i++ {
		st := s.st[i]
		if st.IsValid() {
			valid++
			if s.fresh[i] {
				anyFresh = true
			}
		}
		if st.IsDirty() {
			dirty++
		}
		if st == Exclusive || st == Modified {
			writable++
		}
	}
	if dirty > 1 || (writable > 0 && valid > 1) || writable > 1 {
		return &CheckError{
			Protocol: name, Kind: ViolationConflictingCopies,
			Trace:  ck.trace(key),
			Detail: fmt.Sprintf("state %s", s.render(ck.n)),
		}
	}
	if !s.mem && !anyFresh {
		return &CheckError{
			Protocol: name, Kind: ViolationLostWrite,
			Trace:  ck.trace(key),
			Detail: fmt.Sprintf("latest value lost: state %s", s.render(ck.n)),
		}
	}
	return nil
}

// probeLivelock repeats one (cache, event) from cur; the chain is
// deterministic, so it either reaches a fixed point or cycles. A cycle
// through ≥2 distinct states means the line never stabilizes under a
// repeated operation — livelock.
func (ck *checker) probeLivelock(name string, cur ckState, curKey uint32, cache int, ev CheckEvent) error {
	seen := map[uint32]bool{cur.key(ck.n): true}
	s := cur
	for {
		next, _ := ck.step(s, cache, ev)
		nk := next.key(ck.n)
		if nk == s.key(ck.n) {
			return nil // fixed point: the op is idempotent from here
		}
		if seen[nk] {
			return &CheckError{
				Protocol: name, Kind: ViolationLivelock,
				Trace: ck.trace(curKey, CheckStep{Cache: cache, Event: ev}),
				Detail: fmt.Sprintf("repeating cache%d %s never reaches a fixed point (cycle at %s)",
					cache, ev, next.render(ck.n)),
			}
		}
		seen[nk] = true
		s = next
	}
}

// step applies one event and returns the successor plus whether the
// event observed stale data.
func (ck *checker) step(cur ckState, i int, ev CheckEvent) (ckState, bool) {
	next := cur
	switch ev {
	case EvEvict:
		// Replacement: the directory writes dirty victims back and
		// drops clean ones — not a protocol-table transition.
		if cur.st[i].IsDirty() {
			next.mem = cur.fresh[i]
		}
		next.st[i] = Invalid
		next.fresh[i] = false
		return next, false
	case EvRead, EvWrite:
		localOp, snoopOp := LocalRead, SnoopRead
		if ev == EvWrite {
			localOp, snoopOp = LocalWrite, SnoopWrite
		}

		// Combined snoop input from the peers, as Board.process derives it.
		snoopIn := SnoopNone
		for j := 0; j < ck.n; j++ {
			if j == i {
				continue
			}
			if cur.st[j].IsDirty() {
				snoopIn = SnoopModified
				break
			}
			if cur.st[j].IsValid() {
				snoopIn = SnoopShared
			}
		}
		local := ck.eng.Lookup(localOp, cur.st[i], snoopIn)

		// Peer snoop responses from their pre-event states. A
		// respond-modified peer drives the data on the bus; a
		// writeback flushes the peer's value to memory.
		supplied, supplierFresh := false, false
		for j := 0; j < ck.n; j++ {
			if j == i {
				continue
			}
			pe := ck.eng.Lookup(snoopOp, cur.st[j], SnoopNone)
			if pe.Actions.Has(ActRespondModified) && !supplied {
				supplied, supplierFresh = true, cur.fresh[j]
			}
			if pe.Actions.Has(ActWriteback) {
				next.mem = cur.fresh[j]
			}
			next.st[j] = pe.Next
			if !pe.Next.IsValid() {
				next.fresh[j] = false
			}
		}

		// Data observation. A miss fetches the line — from the
		// supplying peer if one intervened, else from memory (post any
		// peer writeback) — whether or not it allocates a copy; a hit
		// reads the local copy.
		stale := false
		if cur.st[i] == Invalid {
			acquired := next.mem
			if supplied {
				acquired = supplierFresh
			}
			if local.Actions.Has(ActAllocate) {
				next.fresh[i] = acquired
			}
			stale = !acquired
		} else {
			stale = !cur.fresh[i]
		}
		next.st[i] = local.Next
		if !local.Next.IsValid() {
			next.fresh[i] = false
		}

		if ev == EvWrite {
			// The write creates the newest value: every other copy and
			// memory become stale. If the protocol keeps no copy
			// (write-through), the value commits to memory instead.
			for j := 0; j < ck.n; j++ {
				next.fresh[j] = false
			}
			if local.Next.IsValid() {
				next.fresh[i] = true
				next.mem = false
			} else {
				next.mem = true
			}
		}
		return next, stale
	}
	return next, false
}
