package coherence

// The protocol compiler. ParseMapFile produces a Table — a sparse,
// provenance-carrying rule set. Compile lowers it into an Engine: the
// dense op×state×snoop transition array a node controller FPGA consumes
// (paper §3.2 — "the table lookup map file is loaded into each cache
// node controller FPGA during the initialization phase"). Compilation is
// where a protocol is judged: unknown mnemonics are caught by the
// parser, and everything structural — missing transitions, ambiguous
// rules left over after wildcard expansion, states that can never be
// reached, transitions that violate bus invariants — is a typed
// *CompileError here, never a silent default at lookup time.

import "fmt"

// CompileErrKind classifies what a CompileError rejected.
type CompileErrKind uint8

const (
	// ErrUnnamed: the table has no protocol name.
	ErrUnnamed CompileErrKind = iota
	// ErrMissingTransition: a reachable (op, state, snoop) cell is
	// undefined.
	ErrMissingTransition
	// ErrAmbiguousRule: after wildcard expansion two map-file rules
	// claim the same cell with different transitions and neither is more
	// specific than the other (or a late wildcard tramples an earlier
	// exact rule).
	ErrAmbiguousRule
	// ErrUnreachableState: a state has transition rules but can never be
	// entered from Invalid.
	ErrUnreachableState
	// ErrSnoopWriteKeepsCopy: a snoop-write (another cache claimed
	// exclusive ownership) leaves this cache with a valid copy.
	ErrSnoopWriteKeepsCopy
	// ErrNoDataSource: an allocation has neither fetch-memory nor
	// fetch-intervention.
	ErrNoDataSource
	// ErrLeavesInvalid: a transition leaves Invalid without allocating.
	ErrLeavesInvalid
	// ErrHiddenDirty: a dirty line answers a snoop-read without
	// respond-modified or a writeback, hiding ownership from the bus.
	ErrHiddenDirty
)

var compileErrNames = [...]string{
	ErrUnnamed:             "unnamed protocol",
	ErrMissingTransition:   "missing transition",
	ErrAmbiguousRule:       "ambiguous rule",
	ErrUnreachableState:    "unreachable state",
	ErrSnoopWriteKeepsCopy: "snoop-write keeps copy",
	ErrNoDataSource:        "allocation without data source",
	ErrLeavesInvalid:       "leaves Invalid without allocating",
	ErrHiddenDirty:         "dirty line hides ownership",
}

// String returns a short description of the error kind.
func (k CompileErrKind) String() string {
	if int(k) < len(compileErrNames) {
		return compileErrNames[k]
	}
	return fmt.Sprintf("compile-error(%d)", uint8(k))
}

// CompileError reports why a table failed to compile. Op/State/Snoop
// identify the offending cell when HasCell is true; Line and PrevLine
// carry map-file line numbers when the table came from the parser (zero
// for programmatically built tables).
type CompileError struct {
	Protocol string
	Kind     CompileErrKind
	Op       Op
	State    State
	Snoop    SnoopIn
	HasCell  bool
	Line     int
	PrevLine int
	Detail   string
}

func (e *CompileError) Error() string {
	s := fmt.Sprintf("protocol %s: %s", e.Protocol, e.Kind)
	if e.HasCell {
		s += fmt.Sprintf(": %s/%s/%s", e.Op, e.State, e.Snoop)
	}
	if e.Line > 0 {
		s += fmt.Sprintf(" (line %d", e.Line)
		if e.PrevLine > 0 {
			s += fmt.Sprintf(" vs line %d", e.PrevLine)
		}
		s += ")"
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Engine is a compiled protocol: the dense transition array the board's
// hot path indexes directly. Compile guarantees every cell for a state
// the protocol uses is defined, so Lookup is total over used states —
// no existence check, no branch, no allocation.
type Engine struct {
	name     string
	usedMask uint8
	entries  [NumOps * NumStates * NumSnoopIns]Entry
}

// Name returns the compiled protocol's name.
func (e *Engine) Name() string { return e.name }

// Lookup returns the transition for (op, cur, snoop). For states the
// protocol does not use the entry is the identity transition (stay,
// no actions); callers guard with Uses when the state byte can be
// corrupt.
func (e *Engine) Lookup(op Op, cur State, snoop SnoopIn) Entry {
	return e.entries[(int(op)*NumStates+int(cur))*NumSnoopIns+int(snoop)]
}

// Uses reports whether the protocol can put a line into state s. The
// mask lets controllers sanitize directory bytes: a state outside the
// compiled protocol's reachable set is corruption, even if it is a
// legal state for some other protocol.
func (e *Engine) Uses(s State) bool {
	return int(s) < NumStates && e.usedMask>>uint(s)&1 != 0
}

// UsedMask returns the reachable-state set as a bit mask (bit i set
// when State(i) is used).
func (e *Engine) UsedMask() uint8 { return e.usedMask }

// States returns the protocol's reachable states in ascending order.
func (e *Engine) States() []State {
	var out []State
	for st := 0; st < NumStates; st++ {
		if e.usedMask>>uint(st)&1 != 0 {
			out = append(out, State(st))
		}
	}
	return out
}

// Compile validates a table and lowers it into an Engine. All
// structural defects are *CompileError values:
//
//   - the table must be named (ErrUnnamed);
//   - map-file rules must be unambiguous after wildcard expansion
//     (ErrAmbiguousRule) — an exact rule may refine an earlier
//     wildcard, but two rules of equal specificity that disagree, or a
//     wildcard overriding an earlier exact rule, are rejected;
//   - every state with transition rules must be reachable from Invalid
//     (ErrUnreachableState);
//   - every (op, state, snoop) cell of every reachable state must be
//     defined (ErrMissingTransition);
//   - plus the bus-invariant lints documented on Validate.
func Compile(t *Table) (*Engine, error) {
	if t.Name == "" {
		return nil, &CompileError{Protocol: "(unnamed)", Kind: ErrUnnamed}
	}
	if len(t.ambig) > 0 {
		a := t.ambig[0]
		return nil, &CompileError{
			Protocol: t.Name, Kind: ErrAmbiguousRule,
			Op: a.op, State: a.st, Snoop: a.sn, HasCell: true,
			Line: int(a.line), PrevLine: int(a.prevLine),
			Detail: "rules of equal or lower specificity disagree",
		}
	}
	var usedMask uint8
	used := [NumStates]bool{}
	for _, s := range t.States() {
		used[s] = true
		usedMask |= 1 << uint(s)
	}
	for st := 0; st < NumStates; st++ {
		if used[st] {
			continue
		}
		for op := 0; op < NumOps; op++ {
			for sn := 0; sn < NumSnoopIns; sn++ {
				if t.entries[op][st][sn].defined {
					return nil, &CompileError{
						Protocol: t.Name, Kind: ErrUnreachableState,
						Op: Op(op), State: State(st), Snoop: SnoopIn(sn), HasCell: true,
						Line:   int(t.prov[op][st][sn].line),
						Detail: fmt.Sprintf("state %s has rules but is never entered from %s", State(st), Invalid),
					}
				}
			}
		}
	}
	eng := &Engine{name: t.Name, usedMask: usedMask}
	for op := 0; op < NumOps; op++ {
		for st := 0; st < NumStates; st++ {
			for sn := 0; sn < NumSnoopIns; sn++ {
				idx := (op*NumStates+st)*NumSnoopIns + sn
				if !used[st] {
					eng.entries[idx] = Entry{Next: State(st)}
					continue
				}
				e := t.entries[op][st][sn]
				if !e.defined {
					return nil, &CompileError{
						Protocol: t.Name, Kind: ErrMissingTransition,
						Op: Op(op), State: State(st), Snoop: SnoopIn(sn), HasCell: true,
					}
				}
				if err := t.lintCell(Op(op), State(st), SnoopIn(sn), e); err != nil {
					return nil, err
				}
				eng.entries[idx] = e
			}
		}
	}
	return eng, nil
}

// lintCell applies the bus-invariant checks to one defined cell,
// returning a typed *CompileError on violation.
func (t *Table) lintCell(op Op, st State, sn SnoopIn, e Entry) error {
	mk := func(kind CompileErrKind, detail string) error {
		return &CompileError{
			Protocol: t.Name, Kind: kind,
			Op: op, State: st, Snoop: sn, HasCell: true,
			Line:   int(t.prov[op][st][sn].line),
			Detail: detail,
		}
	}
	switch {
	case op == SnoopWrite && st != Invalid && e.Next != Invalid:
		return mk(ErrSnoopWriteKeepsCopy, fmt.Sprintf("snoop-write must invalidate, got next=%s", e.Next))
	case op.IsLocal() && st == Invalid && e.Actions.Has(ActAllocate) &&
		op != LocalCastout &&
		!e.Actions.Has(ActFetchMemory) && !e.Actions.Has(ActFetchIntervention):
		return mk(ErrNoDataSource, "allocation without a data source")
	case st == Invalid && !e.Actions.Has(ActAllocate) && e.Next != Invalid:
		return mk(ErrLeavesInvalid, "leaves Invalid without allocating")
	case op == SnoopRead && st.IsDirty() &&
		!e.Actions.Has(ActRespondModified) && !e.Actions.Has(ActWriteback):
		return mk(ErrHiddenDirty, "dirty line must surface ownership on snoop-read")
	}
	return nil
}
