package coherence

import (
	"strings"
	"testing"
)

// FuzzParseMapFile throws arbitrary text at the map-file parser. The
// parser guards the console's protocol-load path, so it must never
// panic, and any input it accepts must survive a serialize/re-parse
// round trip (the re-serialized form is the fixed point).
func FuzzParseMapFile(f *testing.F) {
	for _, t := range []*Table{MESI(), MSI(), MOESI()} {
		text, err := MapFileString(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(text)
	}
	f.Add("protocol p\nread I * -> S -\n")
	f.Add("protocol p\nread I * -> S fetch\nwrite S hit -> M -\n")
	f.Add("# comment only\n")
	f.Add("protocol\n")
	f.Add("protocol p extra\n")
	f.Add("read I * -> S\nprotocol late\n")
	f.Add("read I bogus -> S -\n")
	f.Add("read I * => S -\n")
	f.Add("read I * -> S unknown-action\n")
	f.Add(strings.Repeat("read I * -> S -\n", 100))
	f.Add("protocol p\nREAD i * -> s -\n")

	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ParseMapFileString(input)
		if err != nil {
			return
		}
		if tab.Name == "" {
			t.Fatal("accepted a table with no protocol name")
		}
		text, err := MapFileString(tab)
		if err != nil {
			t.Fatalf("accepted table does not serialize: %v", err)
		}
		tab2, err := ParseMapFileString(text)
		if err != nil {
			t.Fatalf("serialized form does not re-parse: %v\n%s", err, text)
		}
		text2, err := MapFileString(tab2)
		if err != nil {
			t.Fatal(err)
		}
		if text != text2 {
			t.Fatalf("round trip not a fixed point:\n--- first\n%s\n--- second\n%s", text, text2)
		}
	})
}
