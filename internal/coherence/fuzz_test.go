package coherence

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseMapFile throws arbitrary text at the map-file parser. The
// parser guards the console's protocol-load path, so it must never
// panic, and any input it accepts must survive a serialize/re-parse
// round trip (the re-serialized form is the fixed point).
func FuzzParseMapFile(f *testing.F) {
	for _, t := range []*Table{MESI(), MSI(), MOESI()} {
		text, err := MapFileString(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(text)
	}
	f.Add("protocol p\nread I * -> S -\n")
	f.Add("protocol p\nread I * -> S fetch\nwrite S hit -> M -\n")
	f.Add("# comment only\n")
	f.Add("protocol\n")
	f.Add("protocol p extra\n")
	f.Add("read I * -> S\nprotocol late\n")
	f.Add("read I bogus -> S -\n")
	f.Add("read I * => S -\n")
	f.Add("read I * -> S unknown-action\n")
	f.Add(strings.Repeat("read I * -> S -\n", 100))
	f.Add("protocol p\nREAD i * -> s -\n")

	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ParseMapFileString(input)
		if err != nil {
			return
		}
		if tab.Name == "" {
			t.Fatal("accepted a table with no protocol name")
		}
		text, err := MapFileString(tab)
		if err != nil {
			t.Fatalf("accepted table does not serialize: %v", err)
		}
		tab2, err := ParseMapFileString(text)
		if err != nil {
			t.Fatalf("serialized form does not re-parse: %v\n%s", err, text)
		}
		text2, err := MapFileString(tab2)
		if err != nil {
			t.Fatal(err)
		}
		if text != text2 {
			t.Fatalf("round trip not a fixed point:\n--- first\n%s\n--- second\n%s", text, text2)
		}
	})
}

// FuzzProtocolCompile throws arbitrary map text at the full parse +
// compile pipeline. Neither stage may panic; compilation must be
// deterministic; and any table that compiles must yield an engine whose
// every used-state cell is bit-identical to the table (the conformance
// property, under fuzz).
func FuzzProtocolCompile(f *testing.F) {
	for _, t := range []*Table{MESI(), MSI(), MOESI()} {
		text, err := MapFileString(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(text)
	}
	// A deliberately incoherent map: the dirty line answers the snoop
	// but the writeback is gone, so memory is never made current.
	f.Add("protocol bad\n" +
		"read I none -> S allocate fetch-memory\n" +
		"read I shared -> S allocate fetch-memory\n" +
		"read I modified -> S allocate fetch-intervention\n" +
		"read S * -> S -\nread M * -> M -\n" +
		"write I * -> M allocate fetch-memory invalidate-others\n" +
		"write S * -> M invalidate-others\nwrite M * -> M -\n" +
		"castout I * -> M allocate\ncastout S * -> M -\ncastout M * -> M -\n" +
		"snoop-read I * -> I -\nsnoop-read S * -> S respond-shared\n" +
		"snoop-read M * -> S respond-modified\n" +
		"snoop-write I * -> I -\nsnoop-write S * -> I -\nsnoop-write M * -> I respond-modified\n" +
		"snoop-castout I * -> I -\nsnoop-castout S * -> S -\nsnoop-castout M * -> M -\n")
	f.Add("protocol p\nread I * -> S -\n")                     // leaves Invalid without allocating
	f.Add("protocol p\nread I * -> S allocate\n")              // allocation without a data source
	f.Add("protocol p\nsnoop-write S * -> S -\n")              // snoop-write keeps the copy
	f.Add("protocol p\nread S * -> S -\nread S none -> M -\n") // refinement, legal
	f.Add("protocol p\nread S none -> M -\nread S * -> S -\n") // wildcard tramples exact: ambiguous
	f.Add("protocol p\nsnoop-castout O * -> O -\n")            // unreachable state

	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ParseMapFileString(input)
		if err != nil {
			return
		}
		eng, cerr := Compile(tab)
		eng2, cerr2 := Compile(tab)
		if (cerr == nil) != (cerr2 == nil) {
			t.Fatalf("compile verdict not deterministic: %v vs %v", cerr, cerr2)
		}
		if cerr != nil {
			var comp *CompileError
			if !errors.As(cerr, &comp) {
				t.Fatalf("compile rejection is not a *CompileError: %T %v", cerr, cerr)
			}
			if comp.Error() != cerr2.Error() {
				t.Fatalf("compile error not deterministic: %q vs %q", comp.Error(), cerr2.Error())
			}
			return
		}
		used := map[State]bool{}
		for _, s := range tab.States() {
			used[s] = true
		}
		for op := 0; op < NumOps; op++ {
			for st := 0; st < NumStates; st++ {
				for sn := 0; sn < NumSnoopIns; sn++ {
					got := eng.Lookup(Op(op), State(st), SnoopIn(sn))
					if got != eng2.Lookup(Op(op), State(st), SnoopIn(sn)) {
						t.Fatal("two compiles of one table disagree")
					}
					if !used[State(st)] {
						if got.Next != State(st) || got.Actions != 0 {
							t.Fatalf("unused state %s not identity at %s/%s", State(st), Op(op), SnoopIn(sn))
						}
						continue
					}
					want := tab.MustLookup(Op(op), State(st), SnoopIn(sn))
					if got.Next != want.Next || got.Actions != want.Actions {
						t.Fatalf("engine diverges from table at %s/%s/%s", Op(op), State(st), SnoopIn(sn))
					}
				}
			}
		}
	})
}

// FuzzModelCheck runs the exhaustive checker on arbitrary parsed map
// text: it must never panic, its verdict (including the rendered
// counterexample) must be deterministic, and acceptance implies the
// table compiled — Check's contract is a superset of Compile's.
func FuzzModelCheck(f *testing.F) {
	for _, t := range []*Table{MESI(), MSI(), MOESI()} {
		text, err := MapFileString(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(text)
	}
	// The same deliberately incoherent map as FuzzProtocolCompile: it
	// compiles cleanly and only the state-space search catches it.
	f.Add("protocol bad\n" +
		"read I none -> S allocate fetch-memory\n" +
		"read I shared -> S allocate fetch-memory\n" +
		"read I modified -> S allocate fetch-intervention\n" +
		"read S * -> S -\nread M * -> M -\n" +
		"write I * -> M allocate fetch-memory invalidate-others\n" +
		"write S * -> M invalidate-others\nwrite M * -> M -\n" +
		"castout I * -> M allocate\ncastout S * -> M -\ncastout M * -> M -\n" +
		"snoop-read I * -> I -\nsnoop-read S * -> S respond-shared\n" +
		"snoop-read M * -> S respond-modified\n" +
		"snoop-write I * -> I -\nsnoop-write S * -> I -\nsnoop-write M * -> I respond-modified\n" +
		"snoop-castout I * -> I -\nsnoop-castout S * -> S -\nsnoop-castout M * -> M -\n")
	f.Add("protocol p\nread I * -> S allocate fetch-memory\n")
	f.Add("protocol livelock\nread I none -> S allocate fetch-memory\nread S * -> I -\n")

	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ParseMapFileString(input)
		if err != nil {
			return
		}
		err1 := Check(tab)
		err2 := Check(tab)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("check verdict not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("check error not deterministic:\n%q\n%q", err1.Error(), err2.Error())
			}
			return
		}
		if _, cerr := Compile(tab); cerr != nil {
			t.Fatalf("Check accepted a table Compile rejects: %v", cerr)
		}
	})
}
