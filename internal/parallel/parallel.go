// Package parallel provides the small deterministic worker-pool
// primitives shared by the experiment rig and the sharded board
// pipeline. The contract that matters everywhere in this repository is
// *bit-identical results at any parallelism level*: every task runs
// exactly once, writes only to its own result slot, and error selection
// is by lowest task index — so a sweep run with one worker and the same
// sweep run with eight produce the same values, the same tables, and
// the same failure, in the same order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Normalize clamps a requested parallelism level to [1, n]: zero or
// negative requests mean "use every core" (GOMAXPROCS), and there is
// never a reason to run more workers than tasks.
func Normalize(par, n int) int {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	return par
}

// ForEach runs fn(0) .. fn(n-1) on up to par concurrent workers and
// returns the error of the lowest-index failing task (nil when every
// task succeeded). Unlike errgroup-style helpers it does NOT cancel on
// first error: every task always runs, so side effects (result slots,
// counter snapshots) are identical whether or not an earlier task
// failed, and identical at every parallelism level. With par <= 1 the
// tasks run serially on the calling goroutine in index order — the
// deterministic golden path `-parallel 1` selects.
func ForEach(par, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	par = Normalize(par, n)
	if par == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) with up to par workers and returns the
// results in index order. Error selection follows ForEach: the
// lowest-index failure wins, and every task runs regardless.
func Map[T any](par, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(par, n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}
