package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	for _, c := range []struct{ par, n, min, max int }{
		{0, 10, 1, 10},  // 0 means GOMAXPROCS, clamped to n
		{-3, 10, 1, 10}, // negative likewise
		{4, 2, 2, 2},    // never more workers than tasks
		{1, 100, 1, 1},
		{8, 8, 8, 8},
	} {
		got := Normalize(c.par, c.n)
		if got < c.min || got > c.max {
			t.Errorf("Normalize(%d, %d) = %d, want in [%d, %d]", c.par, c.n, got, c.min, c.max)
		}
	}
}

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	for _, par := range []int{1, 2, 8, 64} {
		const n = 200
		var counts [n]atomic.Int64
		if err := ForEach(par, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("par %d: task %d ran %d times", par, i, got)
			}
		}
	}
}

// TestForEachErrorSelection: the lowest-index error wins regardless of
// completion order, and later tasks still run — the property that keeps
// parallel failure output identical to serial failure output.
func TestForEachErrorSelection(t *testing.T) {
	for _, par := range []int{1, 4} {
		var ran atomic.Int64
		errA := errors.New("a")
		err := ForEach(par, 10, func(i int) error {
			ran.Add(1)
			switch i {
			case 3:
				return errA
			case 7:
				return errors.New("b")
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("par %d: err = %v, want lowest-index error %v", par, err, errA)
		}
		if ran.Load() != 10 {
			t.Fatalf("par %d: only %d tasks ran after error", par, ran.Load())
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestMapDeterministic: results land in index order and are identical
// at every parallelism level.
func TestMapDeterministic(t *testing.T) {
	want, err := Map(1, 50, func(i int) (string, error) {
		return fmt.Sprintf("v%d", i*i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		got, err := Map(par, 50, func(i int) (string, error) {
			return fmt.Sprintf("v%d", i*i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("par %d: result[%d] = %q, want %q", par, i, got[i], want[i])
			}
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(4, 8, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Non-failing slots are still populated.
	if out[7] != 7 {
		t.Fatalf("out[7] = %d", out[7])
	}
}
