package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestFlagsRegister(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Flags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-trace", "c"}); err != nil {
		t.Fatal(err)
	}
	if c.CPUProfile != "a" || c.MemProfile != "b" || c.Trace != "c" {
		t.Fatalf("parsed config = %+v", c)
	}
}

func TestStartNil(t *testing.T) {
	var c *Config
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be a safe no-op
}

func TestStartAll(t *testing.T) {
	dir := t.TempDir()
	c := &Config{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the collections have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	stop()
	stop() // idempotent
	for _, p := range []string{c.CPUProfile, c.MemProfile, c.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile output missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartBadPaths(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "no-such-dir", "out")
	for _, c := range []*Config{
		{CPUProfile: bad},
		{Trace: bad},
	} {
		if _, err := c.Start(); err == nil {
			t.Fatalf("unwritable %+v accepted", c)
		}
	}
	// A bad memprofile path surfaces at stop time (stderr, not error),
	// after the run's data has already been collected; it must not panic.
	stop, err := (&Config{MemProfile: bad}).Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
