package prof

import (
	"net/http"
	"net/http/pprof"
)

// RegisterHTTP mounts the standard /debug/pprof endpoints on mux, so a
// long-running service can be profiled live with the same toolchain the
// file-based flags feed:
//
//	go tool pprof http://host/debug/pprof/profile?seconds=30
//	go tool pprof http://host/debug/pprof/heap
//	curl -o t.out http://host/debug/pprof/trace?seconds=5
//
// The handlers come straight from net/http/pprof; registering them
// explicitly (rather than importing that package for its
// DefaultServeMux side effect) keeps them off any mux that did not ask,
// which is what lets the daemon gate them behind a flag.
func RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
