// Package prof gives the measurement commands (cmd/experiments,
// cmd/tracesim) a shared set of profiling flags so hot-loop work can be
// attributed with the standard Go toolchain:
//
//	experiments -bench table3 -cpuprofile cpu.pb.gz
//	go tool pprof cpu.pb.gz
//
// The flags are plain stdlib runtime/pprof and runtime/trace plumbing;
// the point of centralizing them is that every command spells them the
// same way and stops them in the right order (trace and CPU profile
// first, then the end-of-run heap snapshot).
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config holds the destinations parsed from the command line. Empty
// strings mean "off".
type Config struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Flags registers -cpuprofile, -memprofile, and -trace on fs and returns
// the Config they fill in after fs.Parse.
func Flags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write an end-of-run heap profile to this file")
	fs.StringVar(&c.Trace, "trace", "", "write a runtime execution trace to this file")
	return c
}

// Start begins whichever collections are configured and returns a stop
// function that finishes them (idempotent — safe to call on both the
// error and success paths). A nil Config starts nothing.
func (c *Config) Start() (stop func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	var cpuF, traceF *os.File
	cleanup := func() {
		if traceF != nil {
			trace.Stop()
			traceF.Close()
			traceF = nil
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
			cpuF = nil
		}
	}
	if c.CPUProfile != "" {
		cpuF, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			return nil, fmt.Errorf("prof: %v", err)
		}
	}
	if c.Trace != "" {
		traceF, err = os.Create(c.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %v", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("prof: %v", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		cleanup()
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
